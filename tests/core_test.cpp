// Integration tests for the paper's protocols (src/core) running on the
// metered engines.
#include <gtest/gtest.h>

#include "circuit/builders.h"
#include "core/adaptive_detect.h"
#include "core/circuit_sim.h"
#include "core/dlp_triangle.h"
#include "core/mm_triangle.h"
#include "core/turan_detect.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "graph/turan.h"
#include "util/rng.h"

namespace cclique {
namespace {

// ---------------------------------------------------------------- Theorem 2

TEST(CircuitSim, ParityMatchesDirectEvaluation) {
  Rng rng(1);
  const int n = 8;
  Circuit c = parity_tree(n * n, 4);
  CircuitSimulation sim(c, n);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> inputs(static_cast<std::size_t>(n * n));
    for (auto&& x : inputs) x = rng.coin();
    CliqueUnicast net(n, sim.plan().recommended_bandwidth);
    auto result = sim.run_round_robin(net, inputs);
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0], c.evaluate(inputs)[0]);
  }
}

TEST(CircuitSim, MajorityWithHeavyGate) {
  Rng rng(2);
  const int n = 8;
  // A single threshold gate over n^2 inputs: weight n^2 + 1 >= 2ns, so it
  // is heavy — exercises the Definition 1 aggregation path.
  Circuit c = majority(n * n);
  CircuitSimulation sim(c, n);
  EXPECT_GE(sim.plan().heavy_gates, 1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> inputs(static_cast<std::size_t>(n * n));
    for (auto&& x : inputs) x = rng.coin();
    CliqueUnicast net(n, sim.plan().recommended_bandwidth);
    auto result = sim.run_round_robin(net, inputs);
    EXPECT_EQ(result.outputs[0], c.evaluate(inputs)[0]);
  }
}

TEST(CircuitSim, RandomCircuitsDifferentialFuzz) {
  Rng rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 6;
    Circuit c = random_layered_circuit(/*inputs=*/n * n, /*width=*/15,
                                       /*depth=*/4, /*fanin=*/6, rng);
    CircuitSimulation sim(c, n);
    std::vector<bool> inputs(static_cast<std::size_t>(n * n));
    for (auto&& x : inputs) x = rng.coin();
    CliqueUnicast net(n, sim.plan().recommended_bandwidth);
    auto result = sim.run_round_robin(net, inputs);
    EXPECT_EQ(result.outputs[0], c.evaluate(inputs)[0]) << "trial " << trial;
  }
}

TEST(CircuitSim, MultiOutputOperator) {
  Rng rng(4);
  const int n = 6;
  // Remark 3: operators with many outputs. Output = all bottom MOD gates of
  // a depth-2 circuit plus the top gate.
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < n * n; ++i) ins.push_back(c.add_input());
  std::vector<int> mods;
  for (int g = 0; g < 10; ++g) {
    std::vector<int> wires;
    for (int k = 0; k < 7; ++k) wires.push_back(ins[rng.uniform(ins.size())]);
    mods.push_back(c.add_mod(wires, 3));
  }
  for (int m : mods) c.mark_output(m);
  c.mark_output(c.add_gate(GateKind::kXor, mods));
  CircuitSimulation sim(c, n);
  std::vector<bool> inputs(static_cast<std::size_t>(n * n));
  for (auto&& x : inputs) x = rng.coin();
  CliqueUnicast net(n, sim.plan().recommended_bandwidth);
  auto result = sim.run_round_robin(net, inputs);
  const auto expect = c.evaluate(inputs);
  ASSERT_EQ(result.outputs.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(result.outputs[i], expect[i]);
  }
}

TEST(CircuitSim, PlanRespectsPaperBounds) {
  Rng rng(5);
  const int n = 10;
  Circuit c = random_layered_circuit(n * n, 30, 5, 8, rng);
  CircuitSimulation sim(c, n);
  const auto& plan = sim.plan();
  EXPECT_LE(plan.heavy_gates, n);
  EXPECT_LE(plan.max_light_weight,
            static_cast<std::size_t>(4 * n) * static_cast<std::size_t>(plan.s));
  EXPECT_GE(plan.s, 1);
}

TEST(CircuitSim, RoundsScaleWithDepthNotSize) {
  // Theorem 2's shape: at fixed n, rounds grow ~linearly in depth for
  // constant-width layers.
  Rng rng(6);
  const int n = 6;
  std::vector<int> rounds;
  for (int depth : {2, 4, 8}) {
    Circuit c = random_layered_circuit(n * n, 12, depth, 4, rng);
    CircuitSimulation sim(c, n);
    CliqueUnicast net(n, sim.plan().recommended_bandwidth);
    std::vector<bool> inputs(static_cast<std::size_t>(n * n), true);
    auto result = sim.run_round_robin(net, inputs);
    rounds.push_back(result.stats.rounds);
  }
  EXPECT_LT(rounds[2], 8 * rounds[0]) << "rounds should track depth, not blow up";
  EXPECT_GT(rounds[2], rounds[0]);
}

TEST(CircuitSim, ArbitraryInputPartition) {
  Rng rng(7);
  const int n = 6;
  Circuit c = parity_tree(n * n, 3);
  CircuitSimulation sim(c, n);
  std::vector<bool> inputs(static_cast<std::size_t>(n * n));
  std::vector<int> owner(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = rng.coin();
    owner[i] = static_cast<int>(rng.uniform(n));  // skewed random partition
  }
  CliqueUnicast net(n, sim.plan().recommended_bandwidth);
  auto result = sim.run(net, inputs, owner);
  EXPECT_EQ(result.outputs[0], c.evaluate(inputs)[0]);
}

// ------------------------------------------------------------------- §2.1

TEST(MmTriangle, SoundOnTriangleFreeGraphs) {
  Rng rng(8);
  // Bipartite (triangle-free) inputs: the verdict must always be "no".
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = complete_bipartite(5, 5);
    CliqueUnicast net(10, 64);
    auto result = mm_triangle_detect(net, g, /*reps=*/4, rng);
    EXPECT_FALSE(result.detected);
  }
}

TEST(MmTriangle, DetectsPlantedTriangles) {
  Rng rng(9);
  Graph g = gnp(10, 0.12, rng);
  plant_subgraph(g, complete_graph(3), rng);
  ASSERT_GT(count_triangles(g), 0u);
  bool any = false;
  for (int attempt = 0; attempt < 3 && !any; ++attempt) {
    CliqueUnicast net(10, 64);
    any = mm_triangle_detect(net, g, /*reps=*/10, rng).detected;
  }
  EXPECT_TRUE(any) << "10 reps x 3 attempts: miss probability < 1e-3";
}

TEST(MmTriangle, StrassenGrowsSlowerThanNaive) {
  // The asymptotic content of §2.1: the Strassen circuit's wire count grows
  // like 7^{log2 n} against the naive 8^{log2 n}; at small n the Strassen
  // constant is larger, so we compare growth factors across a doubling.
  Rng rng(10);
  Graph g8 = gnp(8, 0.3, rng), g16 = gnp(16, 0.3, rng);
  CliqueUnicast a(8, 64), b(16, 64), c(8, 64), d(16, 64);
  const double s8 = static_cast<double>(mm_triangle_detect(a, g8, 1, rng, true).circuit_wires);
  const double s16 = static_cast<double>(mm_triangle_detect(b, g16, 1, rng, true).circuit_wires);
  const double n8 = static_cast<double>(mm_triangle_detect(c, g8, 1, rng, false).circuit_wires);
  const double n16 = static_cast<double>(mm_triangle_detect(d, g16, 1, rng, false).circuit_wires);
  EXPECT_LT(s16 / s8, n16 / n8)
      << "Strassen growth per doubling must be below the naive cubic rate";
}

// ------------------------------------------------------------- [8] baseline

TEST(DlpTriangle, ExactOnRandomGraphs) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 20;
    Graph g = gnp(n, 0.05 + 0.04 * trial, rng);
    CliqueUnicast net(n, 32);
    auto result = dlp_triangle_detect(net, g);
    EXPECT_EQ(result.detected, count_triangles(g) > 0) << "trial " << trial;
  }
}

TEST(DlpTriangle, ExactOnAdversarialShapes) {
  CliqueUnicast net1(12, 32);
  EXPECT_FALSE(dlp_triangle_detect(net1, complete_bipartite(6, 6)).detected);
  CliqueUnicast net2(12, 32);
  EXPECT_TRUE(dlp_triangle_detect(net2, complete_graph(12)).detected);
  CliqueUnicast net3(15, 32);
  EXPECT_FALSE(dlp_triangle_detect(net3, cycle_graph(15)).detected);
}

TEST(DlpTriangle, PromisedVariantFindsRichTriangles) {
  Rng rng(12);
  const int n = 24;
  Graph g = gnp(n, 0.5, rng);  // hundreds of triangles
  const std::uint64_t t = count_triangles(g);
  ASSERT_GT(t, 50u);
  CliqueUnicast net(n, 32);
  auto result = dlp_triangle_detect_promised(net, g, t, /*runs=*/6, rng);
  EXPECT_TRUE(result.detected);
}

TEST(DlpTriangle, PromisedSoundOnTriangleFree) {
  Rng rng(13);
  Graph g = complete_bipartite(12, 12);
  CliqueUnicast net(24, 32);
  auto result = dlp_triangle_detect_promised(net, g, 10, 3, rng);
  EXPECT_FALSE(result.detected);
}

// ---------------------------------------------------------------- Theorem 7

class TuranDetectTest : public ::testing::TestWithParam<int> {};

TEST_P(TuranDetectTest, MatchesGroundTruthOnRandomInputs) {
  const int variant = GetParam();
  Rng rng(100 + variant);
  Graph h = variant == 0   ? path_graph(3)
            : variant == 1 ? cycle_graph(4)
            : variant == 2 ? complete_graph(4)
            : variant == 3 ? complete_bipartite(2, 2)
                           : cycle_graph(5);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 24;
    Graph g = gnp(n, 0.03 + 0.05 * trial, rng);
    CliqueBroadcast net(n, 16);
    auto result = turan_subgraph_detect(net, g, h);
    EXPECT_EQ(result.contains_h, contains_subgraph(g, h))
        << "variant " << variant << " trial " << trial;
    if (result.embedding.has_value()) {
      for (const Edge& e : h.edges()) {
        EXPECT_TRUE(g.has_edge((*result.embedding)[static_cast<std::size_t>(e.u)],
                               (*result.embedding)[static_cast<std::size_t>(e.v)]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, TuranDetectTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(TuranDetect, HFreeExtremalInputReconstructs) {
  // A C4-free polarity graph is the hardest H-free input: its degeneracy
  // sits right at the Claim 6 cap.
  const Graph er = polarity_graph(5);
  CliqueBroadcast net(er.num_vertices(), 16);
  auto result = turan_subgraph_detect(net, er, cycle_graph(4));
  EXPECT_FALSE(result.contains_h);
  EXPECT_TRUE(result.reconstructed);
}

TEST(TuranDetect, DenseInputShortCircuitsViaClaim6) {
  // A dense graph (degeneracy above the cap) must be declared H-containing
  // even without reconstruction.
  Graph g = complete_graph(30);
  CliqueBroadcast net(30, 16);
  auto result = turan_subgraph_detect(net, g, path_graph(3));
  EXPECT_TRUE(result.contains_h);
  EXPECT_FALSE(result.reconstructed);
}

TEST(TuranDetect, FullBroadcastBaselineIsExact) {
  Rng rng(14);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gnp(18, 0.2, rng);
    CliqueBroadcast net(18, 8);
    auto result = full_broadcast_detect(net, g, complete_graph(3));
    EXPECT_EQ(result.contains_h, count_triangles(g) > 0);
  }
}

TEST(TuranDetect, RoundsFlatInNForTreePatternsUnlikeFullBroadcast) {
  // Theorem 7's shape: for a tree pattern the degeneracy cap — hence the
  // sketch size and round count — is *constant in n*, while the trivial
  // algorithm's rounds grow linearly. (The absolute crossover sits at
  // larger n because each sketch field element is 61 bits.)
  Rng rng(15);
  int turan_rounds[2], full_rounds[2];
  int idx = 0;
  for (int n : {48, 96}) {
    Graph g = random_tree(n, rng);
    CliqueBroadcast fast(n, 8), slow(n, 8);
    auto f = turan_subgraph_detect(fast, g, path_graph(4));
    auto s = full_broadcast_detect(slow, g, path_graph(4));
    EXPECT_EQ(f.contains_h, s.contains_h);
    turan_rounds[idx] = f.stats.rounds;
    full_rounds[idx] = s.stats.rounds;
    ++idx;
  }
  EXPECT_LE(turan_rounds[1], turan_rounds[0] + 1)
      << "tree-pattern sketch rounds must not grow with n";
  EXPECT_GE(full_rounds[1], 2 * full_rounds[0] - 1)
      << "full-broadcast rounds grow ~linearly in n";
}

// ---------------------------------------------------------------- Theorem 9

TEST(AdaptiveDetect, MatchesGroundTruth) {
  Rng rng(16);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 24;
    Graph g = gnp(n, 0.05 + 0.06 * trial, rng);
    CliqueBroadcast net(n, 16);
    auto result = adaptive_subgraph_detect(net, g, complete_graph(3), rng);
    EXPECT_EQ(result.contains_h, count_triangles(g) > 0) << "trial " << trial;
    if (result.embedding.has_value()) {
      const auto& m = *result.embedding;
      EXPECT_TRUE(g.has_edge(m[0], m[1]));
      EXPECT_TRUE(g.has_edge(m[1], m[2]));
      EXPECT_TRUE(g.has_edge(m[0], m[2]));
    }
  }
}

TEST(AdaptiveDetect, HFreeVerdictIsDefinitive) {
  Rng rng(17);
  Graph g = complete_bipartite(12, 12);  // triangle-free
  CliqueBroadcast net(24, 16);
  auto result = adaptive_subgraph_detect(net, g, complete_graph(3), rng);
  EXPECT_FALSE(result.contains_h);
  EXPECT_EQ(result.final_level, 0) << "H-free verdicts must come from G_0";
}

TEST(AdaptiveDetect, FindsCopiesInDenseGraphs) {
  Rng rng(18);
  Graph g = gnp(32, 0.5, rng);
  ASSERT_GT(count_triangles(g), 0u);
  CliqueBroadcast net(32, 16);
  auto result = adaptive_subgraph_detect(net, g, complete_graph(3), rng);
  EXPECT_TRUE(result.contains_h);
}

TEST(AdaptiveDetect, WorksForC4Patterns) {
  Rng rng(19);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = gnp(20, 0.1 + 0.1 * trial, rng);
    CliqueBroadcast net(20, 16);
    auto result = adaptive_subgraph_detect(net, g, cycle_graph(4), rng);
    EXPECT_EQ(result.contains_h, contains_cycle(g, 4));
  }
}

}  // namespace
}  // namespace cclique
