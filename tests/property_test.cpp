// Cross-module property sweeps: broad randomized instantiations of the
// full pipelines, with invariants checked against ground truth. These are
// the "keep the system honest" tests — every protocol is compared to an
// exact reference on every drawn instance.
#include <gtest/gtest.h>

#include <tuple>

#include "circuit/builders.h"
#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "core/adaptive_detect.h"
#include "core/circuit_sim.h"
#include "core/dlp_subgraph.h"
#include "core/turan_detect.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "lowerbound/bipartite_lb.h"
#include "lowerbound/clique_lb.h"
#include "lowerbound/cycle_lb.h"
#include "lowerbound/disjointness_reduction.h"
#include "routing/router.h"
#include "sketch/sketch.h"
#include "util/rng.h"

namespace cclique {
namespace {

// ------------------------------------------------------- circuit pipeline

class CircuitSimSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CircuitSimSweep, CompiledProtocolMatchesDirectEvaluation) {
  const auto [n, depth, width] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + depth * 10 + width));
  for (int trial = 0; trial < 3; ++trial) {
    Circuit c = random_layered_circuit(n * n, width, depth, 5, rng);
    CircuitSimulation sim(c, n);
    std::vector<bool> inputs(static_cast<std::size_t>(n * n));
    for (auto&& x : inputs) x = rng.coin();
    CliqueUnicast net(n, sim.plan().recommended_bandwidth);
    auto result = sim.run_round_robin(net, inputs);
    ASSERT_EQ(result.outputs[0], c.evaluate(inputs)[0])
        << "n=" << n << " depth=" << depth << " width=" << width;
    // Invariant: plan bounds hold on every instance.
    EXPECT_LE(sim.plan().heavy_gates, n);
    EXPECT_LE(sim.plan().max_light_weight,
              4 * static_cast<std::size_t>(n) * static_cast<std::size_t>(sim.plan().s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CircuitSimSweep,
    ::testing::Values(std::make_tuple(4, 2, 6), std::make_tuple(4, 6, 10),
                      std::make_tuple(6, 3, 20), std::make_tuple(8, 5, 12),
                      std::make_tuple(8, 2, 40), std::make_tuple(10, 4, 8)));

// Bandwidth-1 stress: the theorem's rounds scale by the chunking factor but
// correctness must be unaffected.
TEST(CircuitSimProperty, BandwidthOneIsCorrect) {
  Rng rng(77);
  const int n = 5;
  Circuit c = parity_tree(n * n, 3);
  CircuitSimulation sim(c, n);
  std::vector<bool> inputs(static_cast<std::size_t>(n * n));
  for (auto&& x : inputs) x = rng.coin();
  CliqueUnicast net(n, 1);
  auto result = sim.run_round_robin(net, inputs);
  EXPECT_EQ(result.outputs[0], c.evaluate(inputs)[0]);
  EXPECT_GT(result.stats.rounds, 10) << "b=1 must pay the chunking factor";
}

// ------------------------------------------------------- routing invariants

class RoutingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RoutingSweep, AllRoutersAgreeOnDeliveredMultiset) {
  const auto [n, load, bw] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + load * 10 + bw));
  RoutingDemand d;
  d.payload_bits = 12;
  for (int i = 0; i < n * load; ++i) {
    d.messages.push_back(RoutedMessage{
        static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n))),
        static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n))),
        rng.uniform(1ULL << 12)});
  }
  auto fingerprint = [](const RoutingResult& r) {
    std::uint64_t acc = 0;
    for (std::size_t v = 0; v < r.delivered.size(); ++v) {
      for (const auto& [src, payload] : r.delivered[v]) {
        acc += (v + 1) * 1000003ULL + static_cast<std::uint64_t>(src) * 10007ULL +
               payload * 31ULL;
      }
    }
    return acc;
  };
  CliqueUnicast n1(n, bw), n2(n, bw), n3(n, bw);
  const auto r1 = route_direct(n1, d);
  const auto r2 = route_two_phase(n2, d);
  const auto r3 = route_valiant(n3, d, rng);
  EXPECT_EQ(fingerprint(r1), fingerprint(r2));
  EXPECT_EQ(fingerprint(r2), fingerprint(r3));
  // Engine invariant: accounted bits equal rounds' worth of traffic at most.
  EXPECT_LE(n2.stats().max_edge_bits_in_round, static_cast<std::uint64_t>(bw));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoutingSweep,
    ::testing::Values(std::make_tuple(4, 2, 8), std::make_tuple(8, 4, 16),
                      std::make_tuple(8, 1, 4), std::make_tuple(16, 8, 32),
                      std::make_tuple(12, 3, 5)));

// ---------------------------------------------- detection vs ground truth

class DetectionSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DetectionSweep, AllThreeDetectorsMatchExactSearch) {
  const auto [pattern_id, density] = GetParam();
  Rng rng(static_cast<std::uint64_t>(pattern_id * 997 + density * 1000));
  const Graph h = pattern_id == 0   ? complete_graph(3)
                  : pattern_id == 1 ? cycle_graph(4)
                  : pattern_id == 2 ? path_graph(4)
                                    : complete_graph(4);
  const int n = 20;
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = gnp(n, density, rng);
    const bool truth = contains_subgraph(g, h);
    CliqueBroadcast b1(n, 16), b2(n, 16);
    CliqueUnicast u1(n, 32);
    EXPECT_EQ(turan_subgraph_detect(b1, g, h).contains_h, truth);
    EXPECT_EQ(adaptive_subgraph_detect(b2, g, h, rng).contains_h, truth);
    EXPECT_EQ(dlp_subgraph_detect(u1, g, h).detected, truth);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndDensities, DetectionSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.05, 0.15, 0.3)));

// --------------------------------------------- reconstruction invariants

class SketchSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SketchSweep, ReconstructionMatchesAtDegeneracyThreshold) {
  const auto [n, density] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 31 + density * 997));
  Graph g = gnp(n, density, rng);
  const int k = std::max(1, compute_degeneracy(g).degeneracy);
  std::vector<NodeSketch> sketches;
  for (int v = 0; v < n; ++v) sketches.push_back(make_sketch(g, v, k));
  auto at_k = reconstruct_from_sketches(sketches, k, n);
  ASSERT_TRUE(at_k.success);
  EXPECT_EQ(at_k.graph, g);
  // One below the threshold must fail (soundly) whenever k > 1.
  if (k > 1) {
    std::vector<NodeSketch> small;
    for (int v = 0; v < n; ++v) small.push_back(make_sketch(g, v, k - 1));
    EXPECT_FALSE(reconstruct_from_sketches(small, k - 1, n).success);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, SketchSweep,
    ::testing::Combine(::testing::Values(16, 32, 48),
                       ::testing::Values(0.08, 0.2, 0.4)));

// ------------------------------------------------ reduction battery

TEST(ReductionProperty, AllGadgetsSolveManyRandomInstances) {
  Rng rng(123);
  struct Case {
    LowerBoundGraph lbg;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({clique_lower_bound_graph(4, 5), "K4/Lemma14"});
  cases.push_back({clique_lower_bound_graph(5, 4), "K5/Lemma14"});
  cases.push_back({cycle_lower_bound_graph(4, 6, rng), "C4/Lemma18"});
  cases.push_back({cycle_lower_bound_graph(5, 6, rng), "C5/Lemma18"});
  cases.push_back({cycle_lower_bound_graph(6, 6, rng), "C6/Lemma18"});
  cases.push_back({bipartite_lower_bound_graph(2, 2, 10), "K22/Lemma21"});
  cases.push_back({bipartite_lower_bound_graph(3, 3, 10), "K33/Lemma21"});
  for (auto& c : cases) {
    const std::size_t m = c.lbg.f.edges().size();
    ASSERT_GT(m, 0u) << c.name;
    BroadcastDetector detect = [&](CliqueBroadcast& net, const Graph& g) {
      return full_broadcast_detect(net, g, c.lbg.h).contains_h;
    };
    for (int t = 0; t < 8; ++t) {
      DisjointnessInstance inst = (t % 2 == 0)
                                      ? random_disjoint_instance(m, 0.6, rng)
                                      : random_intersecting_instance(m, 0.6, rng);
      auto out = solve_disjointness_via_detection(c.lbg, inst, 8, detect);
      EXPECT_TRUE(out.correct) << c.name << " trial " << t;
    }
  }
}

// ------------------------------------------------ engine accounting laws

TEST(EngineProperty, BitAccountingIsExact) {
  Rng rng(321);
  const int n = 6;
  CliqueUnicast net(n, 10);
  std::uint64_t expected_bits = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<int>> plan(static_cast<std::size_t>(n),
                                       std::vector<int>(static_cast<std::size_t>(n), 0));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) {
          plan[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              static_cast<int>(rng.uniform(11));  // 0..10 bits
          expected_bits += static_cast<std::uint64_t>(
              plan[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
        }
      }
    }
    // Messages are drawn before the round: send callbacks must be local
    // (comm/model.h), and the parallel scheduler relies on it — a shared
    // Rng inside the callback would be both a discipline violation and a
    // data race at CC_THREADS > 1.
    std::vector<std::vector<Message>> outbox(static_cast<std::size_t>(n),
                                             std::vector<Message>(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        Message m;
        for (int bit = 0; bit < plan[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]; ++bit) {
          m.push_bit(rng.coin());
        }
        outbox[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = std::move(m);
      }
    }
    net.round([&](int i) { return outbox[static_cast<std::size_t>(i)]; },
              [](int, const std::vector<Message>&) {});
  }
  EXPECT_EQ(net.stats().total_bits, expected_bits);
  EXPECT_EQ(net.stats().rounds, 20);
}

TEST(EngineProperty, CutBitsNeverExceedTotal) {
  Rng rng(654);
  const int n = 8;
  CliqueBroadcast net(n, 16);
  std::vector<int> side(static_cast<std::size_t>(n));
  for (auto& s : side) s = rng.coin() ? 1 : 0;
  net.set_cut(side);
  for (int round = 0; round < 10; ++round) {
    // Pre-drawn for the same locality reason as above.
    std::vector<Message> writes(static_cast<std::size_t>(n));
    for (auto& m : writes) {
      const int len = static_cast<int>(rng.uniform(17));
      for (int bit = 0; bit < len; ++bit) m.push_bit(rng.coin());
    }
    net.round([&](int i) { return writes[static_cast<std::size_t>(i)]; });
  }
  EXPECT_LE(net.stats().cut_bits, net.stats().total_bits);
}

}  // namespace
}  // namespace cclique
