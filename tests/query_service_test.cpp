// Unit, negative-path, guard-twin, and concurrency-determinism tests for
// the serving layer (core/query_service): artifact cache coherence over
// mutations, the zero-cost cache-hit contract (serving_plan CC_CHECKs),
// stale-batch rejection, eviction answer-stability, the oblivious guard's
// declared-residency boundary, and byte-identical answers/CommStats across
// the CC_THREADS x CC_KERNEL grid. The high-volume differential fuzzer
// lives in serving_property_test.cpp.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "core/apsp.h"
#include "core/query_service.h"
#include "graph/generators.h"
#include "linalg/tropical.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {
namespace {

/// Scoped environment override (the engine_determinism_test /
/// kernel_dispatch_test idiom): engines and dispatchers re-read their
/// variables per construction / per call, so each run uses fresh objects.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// Weighted fixture: a connected-ish gnp graph with random small weights.
struct Fixture {
  Graph g;
  std::vector<std::uint32_t> w;
};

Fixture weighted_gnp(int n, double p, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f;
  f.g = gnp(n, p, rng);
  f.w.resize(f.g.num_edges());
  for (auto& x : f.w) x = static_cast<std::uint32_t>(1 + rng.uniform(1 << 10));
  return f;
}

/// Reference k-hop reachability from the unit-weight Dijkstra matrix (hop
/// distance == unit-weight shortest path).
std::uint64_t reach_reference(const TropicalMat& hop, int u, int v, int k) {
  if (u == v) return 1;
  return hop.get(u, v) <= static_cast<std::uint64_t>(k) ? 1 : 0;
}

TEST(QueryService, AnswersMatchDirectRuns) {
  const Fixture f = weighted_gnp(14, 0.35, 101);
  const int n = f.g.num_vertices();
  QueryService svc(f.g, f.w);

  // Ground truth from direct runs: a fresh APSP protocol run plus Dijkstra,
  // and the standalone counting protocols.
  CliqueUnicast net(n, 64);
  const ApspResult direct = apsp_run(net, f.g, f.w);
  ASSERT_EQ(direct.dist, apsp_dijkstra_reference(f.g, f.w));
  CliqueUnicast net2(n, 64);
  const AlgebraicCountResult tri = triangle_count_algebraic(net2, f.g);
  const AlgebraicCountResult c4 = four_cycle_count_algebraic(net2, f.g);
  const std::vector<std::uint32_t> unit(f.g.num_edges(), 1);
  const TropicalMat hop = apsp_dijkstra_reference(f.g, unit);

  QueryBatch batch = svc.new_batch();
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) batch.push(Query::dist(u, v));
  }
  for (int v = 0; v < n; ++v) batch.push(Query::ecc(v));
  batch.push(Query::diameter());
  batch.push(Query::radius());
  batch.push(Query::triangles());
  batch.push(Query::four_cycles());
  for (int u = 0; u < n; ++u) {
    for (int k : {0, 1, 2, 5}) batch.push(Query::reach(u, (u + 3) % n, k));
  }
  const BatchResult r = svc.answer(batch);
  ASSERT_EQ(r.answers.size(), batch.size());

  std::size_t i = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(r.answers[i++], direct.dist.get(u, v)) << "dist " << u << "," << v;
    }
  }
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(r.answers[i++], direct.eccentricity[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(r.answers[i++], direct.diameter);
  EXPECT_EQ(r.answers[i++], direct.radius);
  EXPECT_EQ(r.answers[i++], tri.count);
  EXPECT_EQ(r.answers[i++], c4.count);
  for (int u = 0; u < n; ++u) {
    for (int k : {0, 1, 2, 5}) {
      EXPECT_EQ(r.answers[i++], reach_reference(hop, u, (u + 3) % n, k))
          << "reach " << u << " k=" << k;
    }
  }
}

TEST(QueryService, ColdMissCostMatchesPlansAndWarmHitsChargeZero) {
  const Fixture f = weighted_gnp(12, 0.3, 7);
  const int n = f.g.num_vertices();
  QueryService svc(f.g, f.w);

  QueryBatch cold = svc.new_batch();
  cold.push(Query::dist(0, n - 1));
  cold.push(Query::triangles());
  cold.push(Query::reach(0, n - 1, 3));
  const BatchResult rc = svc.answer(cold);
  // Cold cost: one full protocol run per class — two APSP schedules (the
  // weighted closure and the unit-weight hop chain) plus the counting run.
  const ApspPlan ap = apsp_plan(n, 64);
  const CountingArtifactPlan cp = counting_artifacts_plan(n, 64);
  EXPECT_EQ(rc.rounds, 2 * ap.total_rounds + cp.total_rounds);
  EXPECT_EQ(rc.bits, 2 * ap.total_bits + cp.total_bits);
  EXPECT_EQ(rc.misses, 3u);
  EXPECT_EQ(rc.hits, 0u);

  // Warm: identical stream, all three classes resident — the plan prices
  // zero and the protocol CC_CHECKs the measured delta against it.
  QueryBatch warm = svc.new_batch();
  warm.push(Query::dist(0, n - 1));
  warm.push(Query::triangles());
  warm.push(Query::reach(0, n - 1, 3));
  const CommStats before = svc.stats();
  const BatchResult rw = svc.answer(warm);
  EXPECT_EQ(rw.rounds, 0);
  EXPECT_EQ(rw.bits, 0u);
  EXPECT_EQ(rw.plan.total_rounds, 0);
  EXPECT_EQ(rw.plan.total_bits, 0u);
  EXPECT_EQ(rw.hits, 3u);
  EXPECT_EQ(rw.misses, 0u);
  EXPECT_EQ(svc.stats(), before);  // not a single bit moved
  EXPECT_EQ(rw.answers, rc.answers);
}

TEST(QueryService, MutationInvalidatesAndRevertRestoresArtifacts) {
  const Fixture f = weighted_gnp(10, 0.4, 13);
  QueryService svc(f.g, f.w);
  QueryBatch warmup = svc.new_batch();
  warmup.push(Query::diameter());
  svc.answer(warmup);

  // A batch admitted before the mutation is permanently stale.
  QueryBatch stale = svc.new_batch();
  stale.push(Query::diameter());
  int a = -1, b = -1;
  for (int u = 0; u < svc.n() && a < 0; ++u) {
    for (int v = u + 1; v < svc.n() && a < 0; ++v) {
      if (!svc.graph().has_edge(u, v)) {
        a = u;
        b = v;
      }
    }
  }
  ASSERT_GE(a, 0) << "fixture unexpectedly complete";
  const std::uint64_t fp_before = svc.fingerprint();
  ASSERT_TRUE(svc.add_edge(a, b, 2));
  EXPECT_NE(svc.fingerprint(), fp_before);
  EXPECT_THROW(svc.answer(stale), InvariantError);

  // The new fingerprint misses (fresh run), and reverting the mutation
  // restores the original fingerprint — the old artifact hits again.
  QueryBatch fresh = svc.new_batch();
  fresh.push(Query::diameter());
  const BatchResult rf = svc.answer(fresh);
  EXPECT_EQ(rf.misses, 1u);
  ASSERT_TRUE(svc.remove_edge(a, b));
  EXPECT_EQ(svc.fingerprint(), fp_before);
  QueryBatch reverted = svc.new_batch();
  reverted.push(Query::diameter());
  const BatchResult rr = svc.answer(reverted);
  EXPECT_EQ(rr.hits, 1u);
  EXPECT_EQ(rr.rounds, 0);
}

TEST(QueryService, IdempotentMutationsKeepVersionAndBatchesAlive) {
  const Fixture f = weighted_gnp(10, 0.4, 17);
  QueryService svc(f.g, f.w);
  QueryBatch warm = svc.new_batch();
  warm.push(Query::radius());
  svc.answer(warm);

  const std::uint64_t version = svc.version();
  QueryBatch batch = svc.new_batch();
  batch.push(Query::radius());
  const std::vector<Edge> edges = svc.graph().edges();
  ASSERT_FALSE(edges.empty());
  // Re-adding an existing edge and removing an absent one change nothing:
  // no version bump, admitted batches stay valid, artifacts stay hot.
  EXPECT_FALSE(svc.add_edge(edges[0].u, edges[0].v, 999));
  EXPECT_FALSE(svc.remove_edge(0, 0 == edges[0].u && 1 == edges[0].v ? 2 : 1) &&
               svc.graph().has_edge(0, 1));
  svc.remove_edge(0, 0);  // self-loop never exists; also a no-op
  EXPECT_EQ(svc.version(), version);
  const BatchResult r = svc.answer(batch);
  EXPECT_EQ(r.hits, 1u);
  EXPECT_EQ(r.rounds, 0);
}

TEST(QueryService, SetGraphBumpsVersionAndRejectsOldBatches) {
  const Fixture f = weighted_gnp(8, 0.5, 23);
  QueryService svc(f.g, f.w);
  QueryBatch old_batch = svc.new_batch();
  old_batch.push(Query::diameter());
  const Fixture f2 = weighted_gnp(8, 0.5, 24);
  svc.set_graph(f2.g, f2.w);
  EXPECT_THROW(svc.answer(old_batch), InvariantError);
  // Replacing with a different vertex count rebuilds the engine.
  const Fixture f3 = weighted_gnp(12, 0.4, 25);
  svc.set_graph(f3.g, f3.w);
  EXPECT_EQ(svc.n(), 12);
  EXPECT_EQ(svc.answer_one(Query::dist(0, 0)), 0u);
}

TEST(QueryService, MalformedQueriesThrow) {
  const Fixture f = weighted_gnp(8, 0.5, 29);
  QueryService svc(f.g, f.w);
  const int n = svc.n();
  EXPECT_THROW(svc.answer_one(Query::dist(n, 0)), PreconditionError);
  EXPECT_THROW(svc.answer_one(Query::dist(0, -1)), PreconditionError);
  EXPECT_THROW(svc.answer_one(Query::ecc(n)), PreconditionError);
  EXPECT_THROW(svc.answer_one(Query::reach(0, n, 1)), PreconditionError);
  EXPECT_THROW(svc.answer_one(Query::reach(0, 1, -1)), PreconditionError);
  // A malformed query poisons its whole batch before any protocol runs:
  // the engine must not have moved a bit.
  const CommStats before = svc.stats();
  QueryBatch batch = svc.new_batch();
  batch.push(Query::dist(0, 1));
  batch.push(Query::dist(0, n));
  EXPECT_THROW(svc.answer(batch), PreconditionError);
  EXPECT_EQ(svc.stats(), before);
}

TEST(QueryService, DisconnectedPairsUseTheInBandInfinity) {
  // Two disjoint triangles: cross-component distances are +inf in-band,
  // never an exception; reachability is 0 at any hop budget.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  QueryService svc(g);
  EXPECT_EQ(svc.answer_one(Query::dist(0, 3)), kTropicalInf);
  EXPECT_EQ(svc.answer_one(Query::ecc(0)), kTropicalInf);
  EXPECT_EQ(svc.answer_one(Query::diameter()), kTropicalInf);
  EXPECT_EQ(svc.answer_one(Query::reach(0, 3, 1000)), 0u);
  EXPECT_EQ(svc.answer_one(Query::dist(0, 2)), 1u);
}

TEST(QueryService, SingleVertexClique) {
  QueryService svc(Graph(1));
  EXPECT_EQ(svc.answer_one(Query::dist(0, 0)), 0u);
  EXPECT_EQ(svc.answer_one(Query::ecc(0)), 0u);
  EXPECT_EQ(svc.answer_one(Query::diameter()), 0u);
  EXPECT_EQ(svc.answer_one(Query::radius()), 0u);
  EXPECT_EQ(svc.answer_one(Query::triangles()), 0u);
  EXPECT_EQ(svc.answer_one(Query::four_cycles()), 0u);
  EXPECT_EQ(svc.answer_one(Query::reach(0, 0, 0)), 1u);
  // On a 1-clique every plan is zero rounds — even the cold miss.
  EXPECT_EQ(svc.stats().rounds, 0);
  EXPECT_EQ(svc.stats().total_bits, 0u);
}

TEST(QueryService, HopChainAnswersExactHopBudgets) {
  // A path maximizes hop sensitivity: reach(0, j, k) iff j <= k, exercising
  // every power of the chain (incl. budgets between powers of two).
  const int n = 13;
  QueryService svc(path_graph(n));
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(svc.answer_one(Query::reach(0, j, k)), j <= k ? 1u : 0u)
          << "j=" << j << " k=" << k;
    }
  }
  // Weighted distances must NOT leak into hop budgets: a heavy edge is
  // still one hop.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  QueryService heavy(g, {1000000, 1000000});
  EXPECT_EQ(heavy.answer_one(Query::reach(0, 2, 2)), 1u);
  EXPECT_EQ(heavy.answer_one(Query::reach(0, 2, 1)), 0u);
  EXPECT_EQ(heavy.answer_one(Query::dist(0, 2)), 2000000u);
}

TEST(QueryService, EvictionUnderSizeCapNeverChangesAnswers) {
  const Fixture f = weighted_gnp(12, 0.35, 31);
  QueryService unbounded(f.g, f.w);
  QueryService::Config tiny;
  tiny.capacity_words = 1;  // nothing survives between batches
  QueryService capped(f.g, f.w, tiny);

  Rng rng(97);
  std::uint64_t capped_rounds = 0;
  for (int round = 0; round < 4; ++round) {
    QueryBatch bu = unbounded.new_batch();
    QueryBatch bc = capped.new_batch();
    for (int i = 0; i < 25; ++i) {
      const int u = static_cast<int>(rng.uniform(12));
      const int v = static_cast<int>(rng.uniform(12));
      Query q = Query::dist(u, v);
      switch (rng.uniform(5)) {
        case 0: q = Query::ecc(v); break;
        case 1: q = Query::triangles(); break;
        case 2: q = Query::four_cycles(); break;
        case 3: q = Query::reach(u, v, static_cast<int>(rng.uniform(6))); break;
        default: break;
      }
      bu.push(q);
      bc.push(q);
    }
    const BatchResult ru = unbounded.answer(bu);
    const BatchResult rc = capped.answer(bc);
    EXPECT_EQ(ru.answers, rc.answers) << "round " << round;
    capped_rounds += static_cast<std::uint64_t>(rc.rounds);
  }
  EXPECT_GT(capped.cache_evictions(), 0u);
  EXPECT_EQ(unbounded.cache_evictions(), 0u);
  // The cap costs rounds (every batch re-misses) but never answers.
  EXPECT_GT(capped_rounds, static_cast<std::uint64_t>(0));
  EXPECT_GT(capped.cache_misses(), unbounded.cache_misses());
}

// ---------------------------------------------------------------------------
// Oblivious / locality guard twins.

TEST(QueryServiceGuards, ResidencyProbeIsDeclaredOnEveryBatch) {
  const Fixture f = weighted_gnp(8, 0.5, 37);
  QueryService svc(f.g, f.w);
  const std::uint64_t before = oblivious::declared_use_count();
  svc.answer_one(Query::diameter());
  if (oblivious::enabled()) {
    // answer() probed all three classes through the declared boundary.
    EXPECT_GE(oblivious::declared_use_count(), before + 3);
  } else {
    EXPECT_EQ(oblivious::declared_use_count(), 0u);
  }
}

TEST(QueryServiceGuards, UndeclaredResidencyProbeInsideSinkThrows) {
  const Fixture f = weighted_gnp(8, 0.5, 41);
  QueryService svc(f.g, f.w);
  svc.answer_one(Query::diameter());
  // The negative twin of declared_residency: the same probe without the
  // declaration is a schedule decision leaking payload history.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("undeclared serving schedule"));
  if (oblivious::enabled()) {
    EXPECT_THROW(svc.cache().resident(ArtifactClass::kApsp, svc.fingerprint()),
                 ModelViolation);
  } else {
    EXPECT_FALSE(svc.cache().resident(ArtifactClass::kCounting, 12345));
  }
}

TEST(QueryServiceGuards, ArtifactReadInsideSinkThrows) {
  // Wiring an *answer* into a length decision must trip the matrices' own
  // source taint: serve from a warm cache inside an armed sink.
  ScopedEnv serial("CC_THREADS", "1");  // keep the read on the sink's thread
  const Fixture f = weighted_gnp(8, 0.5, 43);
  QueryService svc(f.g, f.w);
  svc.answer_one(Query::dist(0, 1));  // warm: the sinked run below is hit-only
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("schedule shaped by an answer"));
  if (oblivious::enabled()) {
    EXPECT_THROW(svc.answer_one(Query::dist(0, 1)), ModelViolation);
  } else {
    EXPECT_EQ(svc.answer_one(Query::dist(0, 1)),
              svc.answer_one(Query::dist(0, 1)));
  }
}

TEST(QueryServiceGuards, ServingRunsCleanUnderArmedGuards) {
  // Tier-1 runs this suite under the locality and oblivious presets too:
  // a full mixed batch (cold + warm + mutation) must not trip either guard.
  const Fixture f = weighted_gnp(10, 0.4, 47);
  QueryService svc(f.g, f.w);
  QueryBatch batch = svc.new_batch();
  batch.push(Query::dist(0, 9));
  batch.push(Query::triangles());
  batch.push(Query::reach(0, 9, 4));
  svc.answer(batch);
  svc.remove_edge(0, 9);  // make the add below effective regardless of fixture
  svc.add_edge(0, 9, 7);
  QueryBatch after = svc.new_batch();
  after.push(Query::dist(0, 9));
  after.push(Query::four_cycles());
  const BatchResult r = svc.answer(after);
  EXPECT_LE(r.answers[0], 7u);  // the fresh weight-7 edge caps the distance
  SUCCEED() << (locality::enabled() ? "locality armed" : "locality off");
}

// ---------------------------------------------------------------------------
// Concurrency determinism grid.

struct GridRun {
  std::vector<std::uint64_t> answers;
  CommStats stats;
};

GridRun run_grid_stream() {
  const Fixture f = weighted_gnp(16, 0.3, 53);
  QueryService svc(f.g, f.w);
  GridRun out;
  Rng rng(59);
  for (int phase = 0; phase < 3; ++phase) {
    QueryBatch batch = svc.new_batch();
    for (int i = 0; i < 64; ++i) {
      const int u = static_cast<int>(rng.uniform(16));
      const int v = static_cast<int>(rng.uniform(16));
      switch (rng.uniform(6)) {
        case 0: batch.push(Query::dist(u, v)); break;
        case 1: batch.push(Query::ecc(v)); break;
        case 2: batch.push(Query::diameter()); break;
        case 3: batch.push(Query::triangles()); break;
        case 4: batch.push(Query::four_cycles()); break;
        default: batch.push(Query::reach(u, v, static_cast<int>(rng.uniform(8))));
      }
    }
    const BatchResult r = svc.answer(batch);
    out.answers.insert(out.answers.end(), r.answers.begin(), r.answers.end());
    // Mutate between phases so the stream covers invalidation + re-miss.
    if (phase == 0) svc.add_edge(0, 15, 3);
    if (phase == 1) svc.remove_edge(0, 15);
  }
  out.stats = svc.stats();
  return out;
}

TEST(QueryServiceDeterminism, AnswersAndStatsIdenticalAcrossThreadsAndKernels) {
  ScopedEnv base_threads("CC_THREADS", "1");
  ScopedEnv base_kernel("CC_KERNEL", "scalar");
  const GridRun base = run_grid_stream();
  ASSERT_FALSE(base.answers.empty());
  for (const char* threads : {"1", "2", "8"}) {
    for (const char* kernel : {"scalar", "avx2"}) {
      ScopedEnv t("CC_THREADS", threads);
      ScopedEnv k("CC_KERNEL", kernel);
      const GridRun run = run_grid_stream();
      EXPECT_EQ(run.answers, base.answers)
          << "CC_THREADS=" << threads << " CC_KERNEL=" << kernel;
      EXPECT_EQ(run.stats, base.stats)
          << "CC_THREADS=" << threads << " CC_KERNEL=" << kernel;
    }
  }
}

}  // namespace
}  // namespace cclique
