// Tests for the communication engines: model semantics, bandwidth
// enforcement, exact accounting, cut metering.
#include <gtest/gtest.h>

#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "comm/congest.h"
#include "comm/nof.h"
#include "comm/two_party.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace cclique {
namespace {

Message bits_of(std::uint64_t v, int w) {
  Message m;
  m.push_uint(v, w);
  return m;
}

TEST(CliqueUnicast, DeliversPointToPoint) {
  CliqueUnicast net(4, 8);
  std::vector<std::vector<std::uint64_t>> got(4, std::vector<std::uint64_t>(4, 0));
  net.round(
      [&](int i) {
        std::vector<Message> box(4);
        for (int j = 0; j < 4; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = bits_of(static_cast<std::uint64_t>(10 * i + j), 8);
        }
        return box;
      },
      [&](int r, const std::vector<Message>& inbox) {
        for (int j = 0; j < 4; ++j) {
          if (j != r) got[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] = inbox[static_cast<std::size_t>(j)].read_uint(0, 8);
        }
      });
  for (int r = 0; r < 4; ++r) {
    for (int j = 0; j < 4; ++j) {
      if (j != r) {
        EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)],
                  static_cast<std::uint64_t>(10 * j + r));
      }
    }
  }
  EXPECT_EQ(net.stats().rounds, 1);
  EXPECT_EQ(net.stats().total_bits, 12u * 8u);
  EXPECT_EQ(net.stats().total_messages, 12u);
}

TEST(CliqueUnicast, BandwidthEnforced) {
  CliqueUnicast net(3, 4);
  EXPECT_THROW(net.round(
                   [&](int i) {
                     std::vector<Message> box(3);
                     if (i == 0) box[1] = bits_of(0, 5);  // 5 > 4 bits
                     return box;
                   },
                   [](int, const std::vector<Message>&) {}),
               ModelViolation);
}

TEST(CliqueUnicast, SelfMessageRejected) {
  CliqueUnicast net(3, 4);
  EXPECT_THROW(net.round(
                   [&](int i) {
                     std::vector<Message> box(3);
                     box[static_cast<std::size_t>(i)] = bits_of(1, 1);
                     return box;
                   },
                   [](int, const std::vector<Message>&) {}),
               ModelViolation);
}

TEST(CliqueUnicast, PerPlayerAccounting) {
  const int n = 5;
  CliqueUnicast net(n, 8);
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = bits_of(0, 2);
        }
        return box;
      },
      [](int, const std::vector<Message>&) {});
  ASSERT_EQ(net.stats().per_player_sent_bits.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(net.stats().per_player_recv_bits.size(), static_cast<std::size_t>(n));
  std::uint64_t sent_sum = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(net.stats().per_player_sent_bits[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(2 * (n - 1)));
    EXPECT_EQ(net.stats().per_player_recv_bits[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(2 * (n - 1)));
    sent_sum += net.stats().per_player_sent_bits[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(sent_sum, net.stats().total_bits);
}

TEST(CliqueBroadcast, PerPlayerAccounting) {
  const int n = 4;
  CliqueBroadcast net(n, 8);
  // Player i writes i+1 bits.
  net.round([&](int i) { return bits_of(0, i + 1); });
  const std::uint64_t board_total = 1 + 2 + 3 + 4;
  EXPECT_EQ(net.stats().total_bits, board_total);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(net.stats().per_player_sent_bits[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i + 1));
    // Each player reads everyone else's writes.
    EXPECT_EQ(net.stats().per_player_recv_bits[static_cast<std::size_t>(i)],
              board_total - static_cast<std::uint64_t>(i + 1));
  }
}

TEST(CliqueUnicast, CutMetering) {
  CliqueUnicast net(4, 8);
  net.set_cut({0, 0, 1, 1});
  net.round(
      [&](int i) {
        std::vector<Message> box(4);
        for (int j = 0; j < 4; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = bits_of(0, 2);
        }
        return box;
      },
      [](int, const std::vector<Message>&) {});
  // 8 of the 12 directed pairs cross the cut.
  EXPECT_EQ(net.stats().cut_bits, 8u * 2u);
}

TEST(CliqueUnicast, PayloadHelperChunksAtBandwidth) {
  CliqueUnicast net(3, 4);
  std::vector<std::vector<Message>> payload(3, std::vector<Message>(3));
  payload[0][1] = bits_of(0x3FF, 10);  // 10 bits -> 3 rounds at b=4
  std::vector<std::vector<Message>> received;
  const int rounds = unicast_payloads(net, payload, &received);
  EXPECT_EQ(rounds, 3);
  EXPECT_EQ(received[1][0].read_uint(0, 10), 0x3FFu);
  EXPECT_EQ(net.stats().rounds, 3);
}

TEST(CliqueUnicast, PayloadHelperAllPairs) {
  CliqueUnicast net(5, 7);
  std::vector<std::vector<Message>> payload(5, std::vector<Message>(5));
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (i != j) payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = bits_of(static_cast<std::uint64_t>(i * 5 + j), 13);
    }
  }
  std::vector<std::vector<Message>> received;
  unicast_payloads(net, payload, &received);
  for (int r = 0; r < 5; ++r) {
    for (int j = 0; j < 5; ++j) {
      if (j == r) continue;
      EXPECT_EQ(received[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)].read_uint(0, 13),
                static_cast<std::uint64_t>(j * 5 + r));
    }
  }
}

TEST(CliqueBroadcast, BlackboardVisibleToAll) {
  CliqueBroadcast net(3, 8);
  const auto& board = net.round([&](int i) { return bits_of(static_cast<std::uint64_t>(i + 40), 8); });
  ASSERT_EQ(board.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(board[static_cast<std::size_t>(i)].read_uint(0, 8), static_cast<std::uint64_t>(i + 40));
  }
  EXPECT_EQ(net.stats().rounds, 1);
  EXPECT_EQ(net.stats().total_bits, 24u);
}

TEST(CliqueBroadcast, BandwidthEnforced) {
  CliqueBroadcast net(3, 2);
  EXPECT_THROW(net.round([&](int) { return bits_of(0, 3); }), ModelViolation);
}

TEST(CliqueBroadcast, PayloadChunking) {
  CliqueBroadcast net(4, 3);
  std::vector<Message> payloads(4);
  payloads[2] = bits_of(0b1011011, 7);  // 7 bits at b=3 -> 3 rounds
  int rounds = 0;
  const auto assembled = broadcast_payloads(net, payloads, &rounds);
  EXPECT_EQ(rounds, 3);
  EXPECT_EQ(assembled[2].read_uint(0, 7), 0b1011011u);
  EXPECT_TRUE(assembled[0].empty());
}

TEST(CliqueBroadcast, CutChargesEveryWrittenBit) {
  CliqueBroadcast net(4, 8);
  net.set_cut({0, 1, 0, 1});
  net.round([&](int) { return bits_of(0, 5); });
  EXPECT_EQ(net.stats().cut_bits, 4u * 5u);
}

TEST(Congest, OnlyGraphEdgesCarry) {
  const Graph topo = path_graph(3);  // 0-1-2
  CongestUnicast net(topo, 4);
  std::vector<int> heard_by_2;
  net.round(
      [&](int v) {
        std::vector<Message> box(static_cast<std::size_t>(topo.degree(v)));
        for (std::size_t k = 0; k < box.size(); ++k) box[k] = bits_of(static_cast<std::uint64_t>(v), 2);
        return box;
      },
      [&](int v, const std::vector<Message>& inbox) {
        if (v != 2) return;
        for (std::size_t k = 0; k < inbox.size(); ++k) {
          heard_by_2.push_back(static_cast<int>(inbox[k].read_uint(0, 2)));
        }
      });
  // Node 2 has a single neighbor: node 1.
  EXPECT_EQ(heard_by_2, (std::vector<int>{1}));
}

TEST(Congest, OutboxSizeMustMatchDegree) {
  CongestUnicast net(cycle_graph(4), 4);
  EXPECT_THROW(net.round([&](int) { return std::vector<Message>(1); },
                         [](int, const std::vector<Message>&) {}),
               ModelViolation);
}

TEST(Congest, CutMetersOnlyCutEdges) {
  const Graph topo = path_graph(4);  // 0-1-2-3
  CongestUnicast net(topo, 8);
  net.set_cut({0, 0, 1, 1});
  net.round(
      [&](int v) {
        std::vector<Message> box(static_cast<std::size_t>(topo.degree(v)));
        for (auto& m : box) m = bits_of(0, 3);
        return box;
      },
      [](int, const std::vector<Message>&) {});
  // Only edge 1-2 crosses; both directions carry 3 bits.
  EXPECT_EQ(net.stats().cut_bits, 6u);
}

TEST(TwoParty, InstanceGenerators) {
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    EXPECT_TRUE(random_disjoint_instance(50, 0.4, rng).disjoint());
    EXPECT_FALSE(random_intersecting_instance(50, 0.4, rng).disjoint());
  }
}

TEST(TwoParty, TrivialProtocolCorrectAndMetered) {
  Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    DisjointnessInstance inst = random_disjointness(64, 0.1, rng);
    TwoPartyChannel ch;
    EXPECT_EQ(trivial_disjointness_protocol(inst, &ch), inst.disjoint());
    EXPECT_EQ(ch.total_bits(), 65u);
    EXPECT_EQ(ch.alice_bits(), 64u);
    EXPECT_EQ(ch.bob_bits(), 1u);
  }
}

TEST(Nof, InstanceGenerators) {
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    EXPECT_FALSE(random_nof_disjoint(40, 0.5, rng).intersecting());
    EXPECT_TRUE(random_nof_intersecting(40, 0.5, rng).intersecting());
  }
}

TEST(Nof, BlackboardAccounting) {
  NofBlackboard board;
  board.write(0, bits_of(0, 10));
  board.write(1, bits_of(0, 5));
  board.write(0, bits_of(0, 1));
  EXPECT_EQ(board.total_bits(), 16u);
  EXPECT_EQ(board.bits_by(0), 11u);
  EXPECT_EQ(board.bits_by(2), 0u);
}

}  // namespace
}  // namespace cclique
