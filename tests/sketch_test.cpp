// Tests for the Becker-et-al. one-round reconstruction sketches.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/degeneracy.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "sketch/sketch.h"
#include "util/rng.h"

namespace cclique {
namespace {

std::vector<NodeSketch> all_sketches(const Graph& g, int k) {
  std::vector<NodeSketch> s;
  for (int v = 0; v < g.num_vertices(); ++v) s.push_back(make_sketch(g, v, k));
  return s;
}

TEST(Sketch, BitSizeIsOKLogN) {
  EXPECT_EQ(sketch_bits(3, 100), static_cast<std::size_t>(7 + 6 * 61));
  // Doubling k doubles the field part.
  EXPECT_GT(sketch_bits(8, 100), 2 * sketch_bits(4, 100) - 10);
}

TEST(Decode, EmptySet) {
  auto r = decode_power_sums(std::vector<std::uint64_t>(6, 0), 0, 50);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(Decode, SingleElement) {
  Graph g(10);
  g.add_edge(3, 7);
  const NodeSketch s = make_sketch(g, 3, 2);
  auto r = decode_power_sums(s.power_sums, s.degree, 10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::vector<int>{7}));
}

TEST(Decode, FullNeighborhoods) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(30, 0.15, rng);
    const int k = g.max_degree();
    for (int v = 0; v < 30; ++v) {
      const NodeSketch s = make_sketch(g, v, std::max(1, k));
      auto r = decode_power_sums(s.power_sums, s.degree, 30);
      ASSERT_TRUE(r.has_value()) << "vertex " << v;
      auto expect = g.neighbors(v);
      std::sort(r->begin(), r->end());
      EXPECT_EQ(*r, expect);
    }
  }
}

TEST(Decode, RejectsWrongCount) {
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const NodeSketch s = make_sketch(g, 0, 3);
  // Claiming degree 3 against a 2-neighbor sketch must fail verification.
  EXPECT_FALSE(decode_power_sums(s.power_sums, 3, 10).has_value());
}

TEST(Reconstruction, ExactOnLowDegeneracyGraphs) {
  Rng rng(2);
  // Trees (degeneracy 1), cycles (2), and sparse random graphs.
  std::vector<Graph> cases;
  cases.push_back(random_tree(40, rng));
  cases.push_back(cycle_graph(35));
  cases.push_back(gnp(40, 0.05, rng));
  cases.push_back(star_graph(25));
  for (const Graph& g : cases) {
    const int k = std::max(1, compute_degeneracy(g).degeneracy);
    auto result = reconstruct_from_sketches(all_sketches(g, k), k, g.num_vertices());
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.graph, g);
  }
}

TEST(Reconstruction, ExactAtParameterEqualToDegeneracy) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = gnp(30, 0.12, rng);
    const int k = std::max(1, compute_degeneracy(g).degeneracy);
    auto result = reconstruct_from_sketches(all_sketches(g, k), k, 30);
    ASSERT_TRUE(result.success) << "k = degeneracy must always succeed";
    EXPECT_EQ(result.graph, g);
  }
}

TEST(Reconstruction, FailsSoundlyWhenParameterTooSmall) {
  // K_12 has degeneracy 11; parameter 3 must fail (and not hallucinate).
  Graph g = complete_graph(12);
  auto result = reconstruct_from_sketches(all_sketches(g, 3), 3, 12);
  EXPECT_FALSE(result.success);
}

TEST(Reconstruction, SucceedsAboveDegeneracy) {
  Rng rng(4);
  Graph g = gnp(25, 0.2, rng);
  const int k = compute_degeneracy(g).degeneracy;
  auto result = reconstruct_from_sketches(all_sketches(g, k + 3), k + 3, 25);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.graph, g);
}

TEST(Reconstruction, PolarityGraphRoundTrip) {
  // The C4-free workhorse of Theorem 7: moderately dense, degeneracy ~ q.
  const Graph er = polarity_graph(5);
  const int k = compute_degeneracy(er).degeneracy;
  auto result =
      reconstruct_from_sketches(all_sketches(er, k), k, er.num_vertices());
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.graph, er);
}

TEST(Reconstruction, EmptyAndTinyGraphs) {
  Graph empty(5);
  auto r1 = reconstruct_from_sketches(all_sketches(empty, 1), 1, 5);
  ASSERT_TRUE(r1.success);
  EXPECT_EQ(r1.graph.num_edges(), 0u);

  Graph single(2);
  single.add_edge(0, 1);
  auto r2 = reconstruct_from_sketches(all_sketches(single, 1), 1, 2);
  ASSERT_TRUE(r2.success);
  EXPECT_TRUE(r2.graph.has_edge(0, 1));
}

// Parameterized sweep: reconstruction across densities at matching k.
class ReconstructionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ReconstructionSweep, RoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  Graph g = gnp(36, GetParam(), rng);
  const int k = std::max(1, compute_degeneracy(g).degeneracy);
  auto result = reconstruct_from_sketches(all_sketches(g, k), k, 36);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.graph, g);
}

INSTANTIATE_TEST_SUITE_P(Densities, ReconstructionSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2, 0.35, 0.5));

}  // namespace
}  // namespace cclique
