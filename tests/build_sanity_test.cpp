// Compile-time and build-configuration invariants the rest of the suites
// silently depend on. If this suite fails, fix the build system, not the
// library.
#include <gtest/gtest.h>

#include <cassert>
#include <climits>
#include <cstdint>

#include "util/check.h"

namespace cclique {
namespace {

// The library is written against C++17 (structured bindings, if-init,
// std::optional in public interfaces).
static_assert(__cplusplus >= 201703L, "cclique requires C++17 or newer");

// bitvec/field arithmetic assumes 64-bit unsigned words and 8-bit bytes.
static_assert(sizeof(std::uint64_t) * CHAR_BIT == 64, "need 64-bit words");
static_assert(CHAR_BIT == 8, "need 8-bit bytes");

TEST(BuildSanity, CxxStandardIsCxx17OrNewer) {
  EXPECT_GE(__cplusplus, 201703L);
}

TEST(BuildSanity, NdebugIsOffInTestConfig) {
  // Tests exercise assert()-style paths and must not be compiled with
  // NDEBUG; tests/CMakeLists.txt appends -UNDEBUG to guarantee it.
#ifdef NDEBUG
  FAIL() << "NDEBUG is defined in the test configuration";
#endif
  bool assert_ran = false;
  assert((assert_ran = true));
  EXPECT_TRUE(assert_ran) << "assert() was compiled out";
}

TEST(BuildSanity, ChecksAreActiveRegardlessOfBuildType) {
  // CC_* checks are exception-based and documented as active in every
  // build type — they must fire even if a config were to define NDEBUG.
  EXPECT_THROW(CC_REQUIRE(false, "build sanity"), PreconditionError);
  EXPECT_THROW(CC_CHECK(false, "build sanity"), InvariantError);
  EXPECT_THROW(CC_MODEL(false, "build sanity"), ModelViolation);
}

}  // namespace
}  // namespace cclique
