// Tests for the Section 3 lower-bound machinery: Definition 10 gadgets
// (machine-verified), Lemma 13 / Theorem 24 reductions run end-to-end, and
// the counting bound.
#include <gtest/gtest.h>

#include <cmath>

#include "core/turan_detect.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "lowerbound/bipartite_lb.h"
#include "lowerbound/clique_lb.h"
#include "lowerbound/counting_bound.h"
#include "lowerbound/cycle_lb.h"
#include "lowerbound/disjointness_reduction.h"
#include "lowerbound/nof_reduction.h"
#include "util/rng.h"

namespace cclique {
namespace {

BroadcastDetector exact_detector(const Graph& h) {
  return [h](CliqueBroadcast& net, const Graph& g) {
    return full_broadcast_detect(net, g, h).contains_h;
  };
}

// ------------------------------------------------------ Lemma 14 (cliques)

TEST(CliqueLb, StructureAndSize) {
  for (int l : {4, 5, 6}) {
    auto lbg = clique_lower_bound_graph(l, 3);
    EXPECT_TRUE(verify_structure(lbg));
    EXPECT_EQ(lbg.g_prime.num_vertices(), 4 * 3 + l - 4);
    EXPECT_EQ(lbg.f.edges().size(), 9u) << "K_{N,N} with N=3 has N^2 edges";
  }
}

TEST(CliqueLb, Observation11Holds) {
  Rng rng(1);
  for (int l : {4, 5}) {
    auto lbg = clique_lower_bound_graph(l, 3);
    EXPECT_TRUE(verify_observation_11(lbg, /*trials=*/30, rng)) << "l=" << l;
  }
}

TEST(CliqueLb, ConditionIIExhaustive) {
  // Full embedding enumeration at small sizes.
  EXPECT_TRUE(verify_condition_ii(clique_lower_bound_graph(4, 2)));
  EXPECT_TRUE(verify_condition_ii(clique_lower_bound_graph(4, 3)));
  EXPECT_TRUE(verify_condition_ii(clique_lower_bound_graph(5, 2)));
}

TEST(CliqueLb, ReductionSolvesDisjointness) {
  Rng rng(2);
  auto lbg = clique_lower_bound_graph(4, 4);
  const std::size_t m = lbg.f.edges().size();
  int correct = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    DisjointnessInstance inst = (t % 2 == 0)
                                    ? random_disjoint_instance(m, 0.5, rng)
                                    : random_intersecting_instance(m, 0.5, rng);
    auto out = solve_disjointness_via_detection(lbg, inst, /*bandwidth=*/8,
                                                exact_detector(lbg.h));
    correct += out.correct ? 1 : 0;
    EXPECT_GT(out.bits_exchanged, 0u);
  }
  EXPECT_EQ(correct, trials) << "exact detector must always answer correctly";
}

TEST(CliqueLb, InstanceSizeScalesQuadratically) {
  // |E_F| = N^2 = Θ(n^2): that is what makes the bound Ω(n/b).
  auto small = clique_lower_bound_graph(4, 4);
  auto large = clique_lower_bound_graph(4, 8);
  EXPECT_EQ(small.f.edges().size(), 16u);
  EXPECT_EQ(large.f.edges().size(), 64u);
}

// ------------------------------------------------------- Lemma 18 (cycles)

class CycleLbTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleLbTest, StructureAndObservation11) {
  const int l = GetParam();
  Rng rng(3);
  auto lbg = cycle_lower_bound_graph(l, 6, rng);
  EXPECT_TRUE(verify_structure(lbg));
  EXPECT_TRUE(verify_observation_11(lbg, /*trials=*/25, rng)) << "l=" << l;
}

INSTANTIATE_TEST_SUITE_P(Lengths, CycleLbTest, ::testing::Values(4, 5, 6, 7, 8));

TEST(CycleLb, ConditionIIExhaustive) {
  Rng rng(4);
  EXPECT_TRUE(verify_condition_ii(cycle_lower_bound_graph(4, 4, rng)));
  EXPECT_TRUE(verify_condition_ii(cycle_lower_bound_graph(5, 4, rng)));
  EXPECT_TRUE(verify_condition_ii(cycle_lower_bound_graph(6, 4, rng)));
}

TEST(CycleLb, ReductionSolvesDisjointness) {
  Rng rng(5);
  auto lbg = cycle_lower_bound_graph(5, 6, rng);
  const std::size_t m = lbg.f.edges().size();
  for (int t = 0; t < 10; ++t) {
    DisjointnessInstance inst = (t % 2 == 0)
                                    ? random_disjoint_instance(m, 0.6, rng)
                                    : random_intersecting_instance(m, 0.6, rng);
    auto out = solve_disjointness_via_detection(lbg, inst, 8, exact_detector(lbg.h));
    EXPECT_TRUE(out.correct);
  }
}

TEST(CycleLb, DeltaSparsity) {
  // Definition 12: each A-B path crosses the cut exactly once, so the cut
  // is N out of ~N*l/2 vertices' worth of edges.
  Rng rng(6);
  auto lbg = cycle_lower_bound_graph(6, 8, rng);
  EXPECT_EQ(partition_cut_size(lbg), 8u);
}

// -------------------------------------------------- Lemma 21 (K_{l,m})

class BipartiteLbTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BipartiteLbTest, StructureAndObservation11) {
  const auto [l, m] = GetParam();
  Rng rng(7);
  auto lbg = bipartite_lower_bound_graph(l, m, 8);
  EXPECT_TRUE(verify_structure(lbg));
  EXPECT_TRUE(verify_observation_11(lbg, /*trials=*/20, rng))
      << "K_{" << l << "," << m << "}";
}

INSTANTIATE_TEST_SUITE_P(Shapes, BipartiteLbTest,
                         ::testing::Values(std::make_pair(2, 2),
                                           std::make_pair(3, 3),
                                           std::make_pair(4, 4)));

TEST(BipartiteLb, AsymmetricShapesAreRejected) {
  // Documented Lemma 21 gap: for m > l, P = {u_i} ∪ (l-1 W_R hubs) vs
  // Q = (m-l+1 A-neighbors of i) ∪ {v_i} ∪ W_L is a parasitic K_{l,m}
  // using only one player's input, so the constructor refuses the shape.
  EXPECT_THROW(bipartite_lower_bound_graph(2, 3, 8), PreconditionError);
  EXPECT_THROW(bipartite_lower_bound_graph(3, 4, 8), PreconditionError);
  EXPECT_THROW(bipartite_lower_bound_graph(4, 2, 8), PreconditionError);
}

TEST(BipartiteLb, AsymmetricParasiteDemonstrated) {
  // Rebuild the K_{3,4} parasite by hand to pin the gap: one player's
  // edges alone create the pattern in the (unrestricted) template wiring.
  // Template pieces: u_i (i in R), its two A-neighbors, v_i, W_L, W_R.
  // We emulate the wiring on 7 concrete vertices.
  Graph g(7);
  // 0 = u_i, 1,2 = A-neighbors (phi_A(L)), 3 = v_i, 4 = w_L, 5,6 = w_R.
  g.add_edge(0, 1);  // Alice input edge
  g.add_edge(0, 2);  // Alice input edge
  g.add_edge(0, 3);  // matching u_i ~ v_i
  g.add_edge(0, 4);  // w_L ~ phi_A(R)
  for (int wr : {5, 6}) {
    g.add_edge(wr, 1);  // W_R ~ phi_A(L)
    g.add_edge(wr, 2);
    g.add_edge(wr, 3);  // W_R ~ phi_B(R)
    g.add_edge(wr, 4);  // W_R ~ W_L
  }
  EXPECT_TRUE(contains_subgraph(g, complete_bipartite(3, 4)))
      << "the parasitic K_{3,4} must exist without any Bob edges";
}

TEST(BipartiteLb, ConditionIIExhaustiveSmall) {
  EXPECT_TRUE(verify_condition_ii(bipartite_lower_bound_graph(2, 2, 6)));
}

TEST(BipartiteLb, ReductionSolvesDisjointness) {
  Rng rng(8);
  auto lbg = bipartite_lower_bound_graph(2, 2, 8);
  const std::size_t m = lbg.f.edges().size();
  ASSERT_GT(m, 0u);
  for (int t = 0; t < 10; ++t) {
    DisjointnessInstance inst = (t % 2 == 0)
                                    ? random_disjoint_instance(m, 0.6, rng)
                                    : random_intersecting_instance(m, 0.6, rng);
    auto out = solve_disjointness_via_detection(lbg, inst, 8, exact_detector(lbg.h));
    EXPECT_TRUE(out.correct);
  }
}

TEST(BipartiteLb, CarrierDensityIsThetaN32) {
  // |E_F| = Θ(N^{3/2}) drives the Ω(sqrt(n)/b) bound.
  auto lbg = bipartite_lower_bound_graph(2, 2, 160);
  const double n = 160.0;
  EXPECT_GT(static_cast<double>(lbg.f.edges().size()), 0.2 * std::pow(n, 1.5));
}

// ------------------------------------------------------------- Theorem 24

TEST(NofReduction, GraphInstantiationRespectsForeheads) {
  Rng rng(9);
  auto rs = ruzsa_szemeredi_graph(8);
  const std::size_t m = rs.triangles.size();
  ASSERT_GT(m, 0u);
  NofDisjointnessInstance inst = random_nof_instance(m, 0.5, rng);
  const Graph gx = instantiate_nof_graph(rs, inst);
  for (std::size_t i = 0; i < m; ++i) {
    const Triangle& t = rs.triangles[i];
    EXPECT_EQ(gx.has_edge(t.a, t.b), static_cast<bool>(inst.xc[i]));
    EXPECT_EQ(gx.has_edge(t.b, t.c), static_cast<bool>(inst.xa[i]));
    EXPECT_EQ(gx.has_edge(t.c, t.a), static_cast<bool>(inst.xb[i]));
  }
}

TEST(NofReduction, TriangleIffTripleIntersection) {
  Rng rng(10);
  auto rs = ruzsa_szemeredi_graph(10);
  const std::size_t m = rs.triangles.size();
  for (int t = 0; t < 20; ++t) {
    NofDisjointnessInstance inst = (t % 2 == 0)
                                       ? random_nof_disjoint(m, 0.6, rng)
                                       : random_nof_intersecting(m, 0.6, rng);
    const Graph gx = instantiate_nof_graph(rs, inst);
    EXPECT_EQ(count_triangles(gx) > 0, inst.intersecting()) << "trial " << t;
  }
}

TEST(NofReduction, EndToEndSolvesDisjointness) {
  Rng rng(11);
  auto rs = ruzsa_szemeredi_graph(6);
  const std::size_t m = rs.triangles.size();
  BroadcastTriangleDetector detector = [](CliqueBroadcast& net, const Graph& g) {
    return full_broadcast_detect(net, g, complete_graph(3)).contains_h;
  };
  for (int t = 0; t < 10; ++t) {
    NofDisjointnessInstance inst = (t % 2 == 0)
                                       ? random_nof_disjoint(m, 0.5, rng)
                                       : random_nof_intersecting(m, 0.5, rng);
    auto out = solve_nof_disjointness_via_triangles(rs, inst, 8, detector);
    EXPECT_TRUE(out.correct);
    EXPECT_GT(out.blackboard_bits, 0u);
  }
}

TEST(NofReduction, ImpliedBoundComputes) {
  auto rs = ruzsa_szemeredi_graph(32);
  EXPECT_GT(implied_triangle_round_bound(rs, 1), 0.0);
}

// ----------------------------------------------------------- Counting bound

TEST(CountingBound, CloseToTrivialUpperBound) {
  for (int n : {8, 16, 32, 64}) {
    auto cb = counting_lower_bound(n, 1);
    EXPECT_GT(cb.lower_bound_rounds, 0.0);
    EXPECT_LE(cb.lower_bound_rounds, cb.upper_bound_rounds);
    // (n - O(log n))/b: within O(log n) of n/b.
    EXPECT_GE(cb.lower_bound_rounds,
              cb.upper_bound_rounds - 3.0 * std::log2(n) - 3.0);
  }
}

TEST(CountingBound, ScalesInverselyWithBandwidth) {
  auto b1 = counting_lower_bound(32, 1);
  auto b4 = counting_lower_bound(32, 4);
  EXPECT_NEAR(b1.lower_bound_rounds / 4.0, b4.lower_bound_rounds, 2.0);
}

// ------------------------------------------------- Lemma 13 cost accounting

TEST(Lemma13, BitsExchangedMatchRoundsTimesNB) {
  Rng rng(12);
  auto lbg = clique_lower_bound_graph(4, 4);
  const std::size_t m = lbg.f.edges().size();
  DisjointnessInstance inst = random_disjoint_instance(m, 0.5, rng);
  const int b = 8;
  auto out = solve_disjointness_via_detection(lbg, inst, b, exact_detector(lbg.h));
  const std::uint64_t n = static_cast<std::uint64_t>(lbg.g_prime.num_vertices());
  // cut_bits <= rounds * n * b (every blackboard bit crosses once).
  EXPECT_LE(out.bits_exchanged,
            static_cast<std::uint64_t>(out.detection_rounds) * n * b + 1);
}

}  // namespace
}  // namespace cclique
