// Tests for GF(2)/Boolean matrix algebra, Shamir's reduction, and the
// F_{2^61-1} dense-matrix kernels.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/subgraph.h"
#include "linalg/f2matrix.h"
#include "linalg/mat61.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(F2Matrix, SetGet) {
  F2Matrix m(70);
  m.set(0, 69, true);
  m.set(69, 0, true);
  EXPECT_TRUE(m.get(0, 69));
  EXPECT_FALSE(m.get(1, 69));
  m.set(0, 69, false);
  EXPECT_FALSE(m.get(0, 69));
}

TEST(F2Matrix, AdditionIsXor) {
  Rng rng(1);
  const F2Matrix a = F2Matrix::random(20, rng);
  const F2Matrix b = F2Matrix::random(20, rng);
  const F2Matrix c = a + b;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      EXPECT_EQ(c.get(i, j), a.get(i, j) != b.get(i, j));
    }
  }
  EXPECT_EQ(a + a, F2Matrix(20));
}

TEST(F2Matrix, IdentityIsNeutral) {
  Rng rng(2);
  const F2Matrix a = F2Matrix::random(17, rng);
  EXPECT_EQ(f2_multiply_naive(a, F2Matrix::identity(17)), a);
  EXPECT_EQ(f2_multiply_naive(F2Matrix::identity(17), a), a);
}

TEST(F2Matrix, NaiveMatchesScalarDefinition) {
  Rng rng(3);
  const int n = 9;
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  const F2Matrix c = f2_multiply_naive(a, b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      bool sum = false;
      for (int k = 0; k < n; ++k) sum = sum != (a.get(i, k) && b.get(k, j));
      EXPECT_EQ(c.get(i, j), sum);
    }
  }
}

class StrassenTest : public ::testing::TestWithParam<int> {};

TEST_P(StrassenTest, MatchesNaive) {
  const int n = GetParam();
  Rng rng(100 + n);
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  EXPECT_EQ(f2_multiply_strassen(a, b, /*cutoff=*/2), f2_multiply_naive(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, StrassenTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 30, 64, 100));

TEST(F2Matrix, StrassenOddSizesMatchNaive) {
  // Regression for the odd-size bailout: odd blocks used to fall back to
  // the full Θ(n³) naive product (and the top level padded to the next
  // power of two); the recursion now peels odd levels down to their even
  // core and patches with rank-1/border terms, so large odd sizes stay on
  // the Strassen path and must still be exact.
  Rng rng(77);
  for (int n : {31, 63, 127}) {
    const F2Matrix a = F2Matrix::random(n, rng);
    const F2Matrix b = F2Matrix::random(n, rng);
    EXPECT_EQ(f2_multiply_strassen(a, b, /*cutoff=*/16), f2_multiply_naive(a, b))
        << "n=" << n;
  }
}

TEST(F2Matrix, RandomFillsWordsAndMasksTail) {
  // The word-filling random() must keep the bits beyond column n-1 zero —
  // operator== compares raw words, so tail garbage would break equality.
  Rng rng(9);
  const int n = 70;  // tail word uses 6 of 64 bits
  const F2Matrix m = F2Matrix::random(n, rng);
  F2Matrix rebuilt(n);
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      rebuilt.set(i, j, m.get(i, j));
      ones += m.get(i, j) ? 1 : 0;
    }
  }
  EXPECT_EQ(m, rebuilt);  // fails iff random() left tail bits set
  // Distribution sanity: about half the n^2 bits are set.
  EXPECT_GT(ones, n * n / 2 - 3 * n);
  EXPECT_LT(ones, n * n / 2 + 3 * n);
}

TEST(F2Matrix, AssociativityHolds) {
  Rng rng(4);
  const int n = 24;
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  const F2Matrix c = F2Matrix::random(n, rng);
  EXPECT_EQ(f2_multiply_naive(f2_multiply_naive(a, b), c),
            f2_multiply_naive(a, f2_multiply_naive(b, c)));
}

TEST(BoolMultiply, MatchesScalarDefinition) {
  Rng rng(5);
  const int n = 12;
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  const F2Matrix c = bool_multiply(a, b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      bool any = false;
      for (int k = 0; k < n; ++k) any = any || (a.get(i, k) && b.get(k, j));
      EXPECT_EQ(c.get(i, j), any);
    }
  }
}

TEST(Shamir, OneSidedAndComplete) {
  Rng rng(6);
  const int n = 16;
  for (int trial = 0; trial < 5; ++trial) {
    const F2Matrix a = F2Matrix::random(n, rng);
    const F2Matrix b = F2Matrix::random(n, rng);
    const F2Matrix exact = bool_multiply(a, b);
    const F2Matrix approx = bool_multiply_via_f2(a, b, /*reps=*/20, rng);
    int missed = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        // One-sided: approx 1 implies exact 1.
        if (approx.get(i, j)) {
          EXPECT_TRUE(exact.get(i, j));
        }
        if (exact.get(i, j) && !approx.get(i, j)) ++missed;
      }
    }
    // With 20 reps, per-entry miss probability is 2^-20.
    EXPECT_EQ(missed, 0);
  }
}

TEST(TriangleViaMm, MatchesCombinatorialCount) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = gnp(24, 0.08 + 0.02 * trial, rng);
    EXPECT_EQ(has_triangle_via_mm(F2Matrix::adjacency(g)),
              count_triangles(g) > 0);
  }
}

TEST(Mat61, IdentityIsNeutral) {
  Rng rng(11);
  const Mat61 a = Mat61::random(9, rng);
  EXPECT_EQ(m61_multiply_schoolbook(a, Mat61::identity(9)), a);
  EXPECT_EQ(m61_multiply_schoolbook(Mat61::identity(9), a), a);
}

TEST(Mat61, SchoolbookMatchesScalarDefinition) {
  Rng rng(12);
  const int n = 7;
  const Mat61 a = Mat61::random(n, rng);
  const Mat61 b = Mat61::random(n, rng);
  const Mat61 c = m61_multiply_schoolbook(a, b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint64_t acc = 0;
      for (int k = 0; k < n; ++k) {
        acc = Mersenne61::add(acc, Mersenne61::mul(a.get(i, k), b.get(k, j)));
      }
      EXPECT_EQ(c.get(i, j), acc);
    }
  }
}

class Mat61BlockedTest : public ::testing::TestWithParam<int> {};

TEST_P(Mat61BlockedTest, BlockedMatchesSchoolbook) {
  const int n = GetParam();
  Rng rng(200 + n);
  const Mat61 a = Mat61::random(n, rng);
  const Mat61 b = Mat61::random(n, rng);
  EXPECT_EQ(m61_multiply_blocked(a, b), m61_multiply_schoolbook(a, b));
}

// Sizes straddle the k-panel depth (32) so the lazy-reduction folds at the
// panel boundaries are exercised, including a partial trailing panel.
INSTANTIATE_TEST_SUITE_P(Sizes, Mat61BlockedTest,
                         ::testing::Values(1, 2, 5, 31, 32, 33, 70));

TEST(Mat61, BlockedSurvivesMaximalEntries) {
  // All-(p-1) matrices maximize every product in the 128-bit accumulator —
  // the worst case for the panel-overflow bound.
  const int n = 40;
  Mat61 a(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a.set(i, j, Mersenne61::kP - 1);
  }
  EXPECT_EQ(m61_multiply_blocked(a, a), m61_multiply_schoolbook(a, a));
}

TEST(Mat61, AdjacencySymmetricZeroDiagonal) {
  Rng rng(13);
  Graph g = gnp(12, 0.5, rng);
  const Mat61 a = Mat61::adjacency(g);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.get(i, i), 0u);
    for (int j = 0; j < 12; ++j) EXPECT_EQ(a.get(i, j), a.get(j, i));
  }
}

TEST(Adjacency, SymmetricZeroDiagonal) {
  Rng rng(8);
  Graph g = gnp(15, 0.4, rng);
  const F2Matrix a = F2Matrix::adjacency(g);
  for (int i = 0; i < 15; ++i) {
    EXPECT_FALSE(a.get(i, i));
    for (int j = 0; j < 15; ++j) EXPECT_EQ(a.get(i, j), a.get(j, i));
  }
}

}  // namespace
}  // namespace cclique
