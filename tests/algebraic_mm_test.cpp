// Tests for the distributed algebraic matrix-multiplication protocol
// (core/algebraic_mm) and its transport substrate, the two-hop balanced
// relay (unicast_payloads_relayed): correctness over both rings, exact
// agreement between the measured schedule and the data-independent plan,
// the O(n^{1/3}) round series at perfect cubes, exact triangle / 4-cycle
// counts against brute force, and scheduler-independence of the stats.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/algebraic_mm.h"
#include "core/mm_triangle.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "linalg/f2matrix.h"
#include "linalg/mat61.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(RelayedPayloads, RoundTripsSkewedDemand) {
  // A demand matrix with wildly uneven payload sizes (the shape the MM
  // distribution phase produces): everything must arrive intact, and the
  // relay must beat direct chunking on rounds because no single edge
  // carries a whole payload.
  const int n = 13;
  const int bandwidth = 8;
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  Rng rng(5);
  for (int v = 0; v < n; ++v) {
    // Two heavy streams per player (like a block distribution) plus a thin
    // one; lengths are data-independent functions of the pair only.
    for (int d : {1, 5, 7}) {
      const int p = (v + d) % n;
      const int bits = d == 7 ? 9 : 400 + v;
      for (int t = 0; t < bits; ++t) {
        payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)].push_bit(
            rng.coin());
      }
    }
  }
  CliqueUnicast relayed_net(n, bandwidth);
  std::vector<std::vector<Message>> got;
  const int relay_rounds = unicast_payloads_relayed(relayed_net, payload, &got);
  for (int r = 0; r < n; ++r) {
    for (int v = 0; v < n; ++v) {
      if (v == r) continue;
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)],
                payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(r)])
          << "payload " << v << " -> " << r;
    }
  }
  EXPECT_EQ(relayed_net.stats().rounds, relay_rounds);
  CliqueUnicast direct_net(n, bandwidth);
  std::vector<std::vector<Message>> direct_got;
  const int direct_rounds = unicast_payloads(direct_net, payload, &direct_got);
  // Direct chunking pays ceil(max payload / b) >= 51 rounds; the relay
  // spreads each player's ~0.8k total bits over all n links (~9 per hop).
  EXPECT_LT(relay_rounds, direct_rounds);
}

TEST(RelayedPayloads, RejectsSelfPayloads) {
  CliqueUnicast net(4, 8);
  std::vector<std::vector<Message>> payload(4, std::vector<Message>(4));
  payload[2][2].push_bit(true);
  std::vector<std::vector<Message>> got;
  EXPECT_THROW(unicast_payloads_relayed(net, payload, &got), PreconditionError);
}

TEST(RelayedPayloads, NonUniformWidthsRoundTrip) {
  // Payload widths spread across the relay's regimes: zero-length (no
  // chunks at all), sub-chunk (len < n, so most relays carry an empty
  // chunk of this payload), exactly n bits (every chunk one bit), and
  // multi-word streams — all mixed in one delivery, including the mixed
  // remainder chunks the (src + dst) rotation exists to spread. Lengths
  // are a pair-only function, as the globally-known-lengths contract
  // requires.
  const int n = 9;
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  Rng rng(23);
  for (int v = 0; v < n; ++v) {
    for (int p = 0; p < n; ++p) {
      if (p == v) continue;
      // Widths 0, 3, 9 (== n), 70, 131, ... per (v, p) residue class.
      const int widths[] = {0, 3, 9, 70, 131, 1};
      const int bits = widths[(v * 2 + p) % 6] + ((v + p) % 2 == 0 ? 0 : v);
      for (int t = 0; t < bits; ++t) {
        payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)].push_bit(
            rng.coin());
      }
    }
  }
  CliqueUnicast net(n, 16);
  std::vector<std::vector<Message>> got;
  const int rounds = unicast_payloads_relayed(net, payload, &got);
  EXPECT_EQ(net.stats().rounds, rounds);
  for (int r = 0; r < n; ++r) {
    for (int v = 0; v < n; ++v) {
      if (v == r) continue;
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)],
                payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(r)])
          << "payload " << v << " -> " << r;
    }
  }
}

TEST(RelayedPayloads, TwoPlayerDegenerate) {
  // n = 2: each player is the only possible relay for the other, and half
  // of every payload stays local (the self-relay chunk). The smallest
  // non-trivial instance of the chunk arithmetic must still round-trip.
  const int n = 2;
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  Rng rng(29);
  for (int t = 0; t < 33; ++t) payload[0][1].push_bit(rng.coin());
  for (int t = 0; t < 7; ++t) payload[1][0].push_bit(rng.coin());
  CliqueUnicast net(n, 4);
  std::vector<std::vector<Message>> got;
  unicast_payloads_relayed(net, payload, &got);
  EXPECT_EQ(got[1][0], payload[0][1]);
  EXPECT_EQ(got[0][1], payload[1][0]);
}

class AlgebraicMmSizes : public ::testing::TestWithParam<int> {};

// Sizes cover the degenerate one-triple grid (m=1), non-cubes with idle
// players and ragged last intervals, and perfect cubes.
INSTANTIATE_TEST_SUITE_P(Sizes, AlgebraicMmSizes,
                         ::testing::Values(1, 2, 5, 8, 11, 27, 30));

TEST_P(AlgebraicMmSizes, F2MatchesNaive) {
  const int n = GetParam();
  Rng rng(300 + n);
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  CliqueUnicast net(n, 16);
  F2Matrix c;
  const AlgebraicMmResult r = algebraic_mm_f2(net, a, b, &c);
  EXPECT_EQ(c, f2_multiply_naive(a, b));
  EXPECT_EQ(r.total_rounds, r.plan.total_rounds);
  EXPECT_EQ(r.total_bits, r.plan.total_bits);
  EXPECT_EQ(net.stats().rounds, r.total_rounds);
}

TEST_P(AlgebraicMmSizes, M61MatchesSchoolbook) {
  const int n = GetParam();
  Rng rng(400 + n);
  const Mat61 a = Mat61::random(n, rng);
  const Mat61 b = Mat61::random(n, rng);
  CliqueUnicast net(n, 64);
  Mat61 c;
  const AlgebraicMmResult r = algebraic_mm_m61(net, a, b, &c);
  EXPECT_EQ(c, m61_multiply_schoolbook(a, b));
  EXPECT_EQ(r.total_rounds, r.plan.total_rounds);
  EXPECT_EQ(r.total_bits, r.plan.total_bits);
}

TEST(AlgebraicMm, RoundsFollowCubeRootSeries) {
  // At perfect cubes with bandwidth 64 and 61-bit words the exact schedule
  // collapses to 6 * n^{1/3} rounds: each of the four relay hops carries
  // per-edge loads of 2*n^{1/3}*61 (distribution) and n^{1/3}*61
  // (aggregation) bits. This is the measured-vs-predicted contract of
  // bench_e17 asserted as a hard equality.
  for (int cbrt : {2, 3, 4}) {
    const int n = cbrt * cbrt * cbrt;
    const AlgebraicMmPlan plan = algebraic_mm_plan(n, 61, 64);
    EXPECT_EQ(plan.grid, cbrt);
    EXPECT_EQ(plan.block, n / cbrt);
    EXPECT_EQ(plan.total_rounds, 6 * cbrt) << "n=" << n;
    EXPECT_EQ(plan.distribute_rounds, 4 * cbrt) << "n=" << n;
    EXPECT_EQ(plan.aggregate_rounds, 2 * cbrt) << "n=" << n;
  }
}

TEST(AlgebraicMm, PerPlayerLoadIsBalanced) {
  // The relay schedule's whole point: no player ships more than
  // ~(2 per-player block loads) and no edge more than ~load/n per hop.
  const int n = 27;
  Rng rng(7);
  const Mat61 a = Mat61::random(n, rng);
  const Mat61 b = Mat61::random(n, rng);
  CliqueUnicast net(n, 64);
  Mat61 c;
  const AlgebraicMmResult r = algebraic_mm_m61(net, a, b, &c);
  const CommStats& s = net.stats();
  std::uint64_t max_sent = 0, min_sent = UINT64_MAX;
  for (int v = 0; v < n; ++v) {
    max_sent = std::max(max_sent, s.per_player_sent_bits[static_cast<std::size_t>(v)]);
    min_sent = std::min(min_sent, s.per_player_sent_bits[static_cast<std::size_t>(v)]);
  }
  // Relaying equalizes totals: the heaviest sender carries at most ~2x the
  // lightest (perfect-cube grids are symmetric; slack covers chunk floors).
  EXPECT_LT(max_sent, 2 * min_sent);
  // Pre-relay per-player load: 2 m^2 slices of `block` elements out of the
  // distribution phase plus block^2 partials out of aggregation, minus the
  // few self-payload slices a triple player keeps locally.
  const std::uint64_t ideal = static_cast<std::uint64_t>(2 * 9 * 9 + 9 * 9) * 61u;
  EXPECT_LE(r.plan.max_player_send_bits, ideal);
  EXPECT_GE(r.plan.max_player_send_bits, ideal - 3 * 9 * 61u);
}

TEST(AlgebraicMm, StatsAreThreadCountInvariant) {
  // The protocol only speaks round_fill through unicast_payloads, so the
  // engine determinism contract must carry over verbatim.
  auto run = [] {
    Rng rng(55);
    const int n = 12;
    const Mat61 a = Mat61::random(n, rng);
    const Mat61 b = Mat61::random(n, rng);
    CliqueUnicast net(n, 32);
    Mat61 c;
    algebraic_mm_m61(net, a, b, &c);
    return net.stats();
  };
  const char* old = std::getenv("CC_THREADS");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("CC_THREADS", "1", 1);
  const CommStats serial = run();
  for (const char* threads : {"2", "5"}) {
    ::setenv("CC_THREADS", threads, 1);
    EXPECT_EQ(run(), serial) << "CC_THREADS=" << threads;
  }
  if (old != nullptr) {
    ::setenv("CC_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("CC_THREADS");
  }
}

TEST(CountFourCycles, MatchesEmbeddingCount) {
  // Ground-truth the codegree counter against the generic embedding
  // counter: C4 has 8 automorphisms.
  Rng rng(21);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = gnp(9, 0.2 + 0.1 * trial, rng);
    EXPECT_EQ(count_four_cycles(g),
              count_subgraph_embeddings(g, cycle_graph(4)) / 8)
        << g.to_string();
  }
}

TEST(CountFourCycles, StructuredGraphs) {
  EXPECT_EQ(count_four_cycles(cycle_graph(4)), 1u);
  EXPECT_EQ(count_four_cycles(cycle_graph(8)), 0u);
  EXPECT_EQ(count_four_cycles(star_graph(10)), 0u);
  EXPECT_EQ(count_four_cycles(complete_bipartite(3, 3)), 9u);  // C(3,2)^2
  EXPECT_EQ(count_four_cycles(complete_graph(6)), 45u);        // 3 * C(6,4)
}

TEST(AlgebraicCounting, TriangleCountMatchesBruteForce) {
  Rng rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 10 + 5 * trial;
    Graph g = gnp(n, 0.25 + 0.1 * trial, rng);
    CliqueUnicast net(n, 64);
    const AlgebraicCountResult r = triangle_count_algebraic(net, g);
    EXPECT_EQ(r.count, count_triangles(g)) << "n=" << n;
    EXPECT_EQ(r.total_rounds, r.mm.total_rounds + r.share_rounds);
    EXPECT_EQ(net.stats().rounds, r.total_rounds);
  }
}

TEST(AlgebraicCounting, TriangleCountStructuredGraphs) {
  struct Case {
    Graph g;
    std::uint64_t expect;
  };
  const Case cases[] = {
      {complete_graph(10), 120},        // C(10,3)
      {complete_bipartite(4, 5), 0},    // bipartite: triangle-free
      {cycle_graph(9), 0},
      {star_graph(8), 0},
  };
  for (const Case& c : cases) {
    CliqueUnicast net(c.g.num_vertices(), 64);
    EXPECT_EQ(triangle_count_algebraic(net, c.g).count, c.expect);
  }
}

TEST(AlgebraicCounting, FourCycleCountMatchesBruteForce) {
  Rng rng(41);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 9 + 6 * trial;
    Graph g = gnp(n, 0.2 + 0.1 * trial, rng);
    CliqueUnicast net(n, 64);
    const AlgebraicCountResult r = four_cycle_count_algebraic(net, g);
    EXPECT_EQ(r.count, count_four_cycles(g)) << "n=" << n;
  }
}

TEST(AlgebraicCounting, FourCycleCountStructuredGraphs) {
  struct Case {
    Graph g;
    std::uint64_t expect;
  };
  Rng rng(3);
  const Case cases[] = {
      {cycle_graph(4), 1},
      {complete_bipartite(3, 3), 9},
      {complete_graph(6), 45},
      {random_tree(20, rng), 0},  // acyclic
  };
  for (const Case& c : cases) {
    CliqueUnicast net(c.g.num_vertices(), 64);
    EXPECT_EQ(four_cycle_count_algebraic(net, c.g).count, c.expect);
  }
}

TEST(AlgebraicBackend, AgreesWithCircuitBackendAndTruth) {
  Rng rng(61);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 12;
    Graph g = gnp(n, 0.15 + 0.1 * trial, rng);
    const bool truth = count_triangles(g) > 0;
    CliqueUnicast alg_net(n, 64);
    const MmTriangleResult alg =
        mm_triangle_run(alg_net, g, /*reps=*/1, rng, TriangleBackend::kAlgebraic);
    EXPECT_TRUE(alg.exact);
    EXPECT_EQ(alg.detected, truth);
    EXPECT_EQ(alg.triangle_count, count_triangles(g));
    CliqueUnicast circ_net(n, 64);
    const MmTriangleResult circ = mm_triangle_run(circ_net, g, /*reps=*/10, rng,
                                                  TriangleBackend::kCircuitStrassen);
    EXPECT_FALSE(circ.exact);
    // Circuit backend is one-sided; with reps=10 a planted triangle is
    // missed with probability <= (3/4)^10, so equality is overwhelmingly
    // likely — and a false positive would be a hard bug.
    if (!truth) {
      EXPECT_FALSE(circ.detected);
    }
  }
}

}  // namespace
}  // namespace cclique
