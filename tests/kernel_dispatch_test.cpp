// The kernel-dispatch determinism gate (linalg/kernels): every
// {scalar, avx2-if-available} x CC_THREADS combination must produce
// bit-identical products for both semirings, CC_KERNEL must parse like
// CC_THREADS (unrecognized -> scalar, avx2 on a non-AVX2 host -> graceful
// scalar fallback, never a crash), and routing core/algebraic_mm and
// core/apsp through the dispatcher must leave CommStats untouched.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "comm/clique_unicast.h"
#include "core/algebraic_mm.h"
#include "core/apsp.h"
#include "graph/generators.h"
#include "linalg/kernels.h"
#include "linalg/mat61.h"
#include "linalg/tropical.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {
namespace {

/// Scoped environment override (same idiom as engine_determinism_test's
/// ScopedThreads) — active_kernel() re-reads CC_KERNEL on every call, so a
/// scoped set is enough to steer dispatch inside the block.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// The ablation grid: every kernel this host can run, crossed with the
/// thread counts the CI legs pin (1, 2, 8).
std::vector<KernelKind> runnable_kernels() {
  std::vector<KernelKind> kinds = {KernelKind::kScalar};
  if (cpu_has_avx2()) kinds.push_back(KernelKind::kAvx2);
  return kinds;
}

const int kThreadGrid[] = {1, 2, 8};

// --------------------------------------------------------------- Mat61 grid

/// Every (kernel, threads) cell must equal the schoolbook reference — not
/// just each other — so a shared systematic bug cannot self-certify.
void expect_m61_grid_matches(const Mat61& a, const Mat61& b) {
  const Mat61 ref = m61_multiply_schoolbook(a, b);
  for (KernelKind kind : runnable_kernels()) {
    for (int threads : kThreadGrid) {
      const Mat61 got = m61_multiply_kernel(a, b, kind, threads);
      EXPECT_EQ(got, ref) << "kernel=" << kernel_name(kind)
                          << " threads=" << threads << " n=" << a.n();
    }
  }
}

TEST(KernelDispatchM61, RandomMatricesMatchSchoolbookAcrossGrid) {
  Rng rng(20260807);
  // Odd sizes exercise the AVX2 kernels' vectorized-prefix/scalar-tail
  // column split (67 = 16*4 + 3 leaves a 3-column tail) and the gathered
  // quad-k passes' 1/2/3-lane remainders.
  for (int n : {1, 2, 3, 19, 64, 67}) {
    const Mat61 a = Mat61::random(n, rng);
    const Mat61 b = Mat61::random(n, rng);
    expect_m61_grid_matches(a, b);
  }
}

TEST(KernelDispatchM61, StructuredMatricesMatchSchoolbookAcrossGrid) {
  Rng rng(7);
  const Graph g = gnp(53, 0.3, rng);
  const Mat61 adj = Mat61::adjacency(g);  // sparse 0/1 — hits the aik==0 skip
  expect_m61_grid_matches(adj, adj);
  expect_m61_grid_matches(Mat61::identity(53), adj);
  expect_m61_grid_matches(Mat61(53), adj);  // all-zero
  // Worst-case magnitudes: every entry p-1 stresses the limb folds' upper
  // bounds (the depth-6 panel analysis is tight exactly here).
  Mat61 maxed(33);
  for (int i = 0; i < 33; ++i) {
    for (int j = 0; j < 33; ++j) maxed.set(i, j, Mersenne61::kP - 1);
  }
  expect_m61_grid_matches(maxed, maxed);
}

// ------------------------------------------------------------ tropical grid

void expect_tropical_grid_matches(const TropicalMat& a, const TropicalMat& b) {
  const TropicalMat ref = tropical_multiply_schoolbook(a, b);
  for (KernelKind kind : runnable_kernels()) {
    for (int threads : kThreadGrid) {
      const TropicalMat got = tropical_multiply_kernel(a, b, kind, threads);
      EXPECT_EQ(got, ref) << "kernel=" << kernel_name(kind)
                          << " threads=" << threads << " n=" << a.n();
    }
  }
}

TEST(KernelDispatchTropical, InfDensitySweepMatchesSchoolbookAcrossGrid) {
  Rng rng(99);
  for (int n : {1, 3, 21, 64, 67}) {
    // inf-free, mixed, inf-heavy, and all-inf inputs: the +inf lane-masking
    // argument must hold at every density, including degenerate extremes.
    for (double inf_prob : {0.0, 0.25, 0.7, 1.0}) {
      const TropicalMat a = TropicalMat::random(n, rng, /*bound=*/1u << 20, inf_prob);
      const TropicalMat b = TropicalMat::random(n, rng, /*bound=*/1u << 20, inf_prob);
      expect_tropical_grid_matches(a, b);
    }
  }
}

TEST(KernelDispatchTropical, StructuredDistanceMatricesMatchAcrossGrid) {
  Rng rng(4242);
  const Graph g = gnp(45, 0.12, rng);
  std::vector<std::uint32_t> weights;
  weights.reserve(static_cast<std::size_t>(g.num_edges()));
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    weights.push_back(static_cast<std::uint32_t>(rng.uniform(1000) + 1));
  }
  const TropicalMat d = TropicalMat::from_weighted_graph(g, weights);
  expect_tropical_grid_matches(d, d);
  expect_tropical_grid_matches(TropicalMat::identity(45), d);
  expect_tropical_grid_matches(TropicalMat(45), d);  // all-+inf
  // Saturation boundary: near-kInf finite entries whose sums cross kInf.
  const TropicalMat near_inf =
      TropicalMat::random(32, rng, kTropicalInf, /*inf_prob=*/0.3);
  expect_tropical_grid_matches(near_inf, near_inf);
}

// ------------------------------------------------------------- env parsing

TEST(KernelDispatchEnv, AutoEmptyAndUnsetPickTheBestAvailableKernel) {
  const KernelKind best =
      cpu_has_avx2() ? KernelKind::kAvx2 : KernelKind::kScalar;
  {
    ScopedEnv e("CC_KERNEL", "auto");
    EXPECT_EQ(active_kernel(), best);
  }
  {
    ScopedEnv e("CC_KERNEL", "");
    EXPECT_EQ(active_kernel(), best);
  }
}

TEST(KernelDispatchEnv, ScalarAndUnrecognizedValuesFailSafeToScalar) {
  for (const char* v : {"scalar", "SCALAR", "avx512", "3", "garbage"}) {
    ScopedEnv e("CC_KERNEL", v);
    EXPECT_EQ(active_kernel(), KernelKind::kScalar) << "CC_KERNEL=" << v;
  }
}

TEST(KernelDispatchEnv, Avx2RequestNeverCrashesOnAnyHost) {
  // On an AVX2 host the request is honored; on any other host it must fall
  // back to scalar with a notice — never throw, never crash. Either way a
  // dispatch-path product must still be correct.
  ScopedEnv e("CC_KERNEL", "avx2");
  const KernelKind k = active_kernel();
  if (cpu_has_avx2()) {
    EXPECT_EQ(k, KernelKind::kAvx2);
  } else {
    EXPECT_EQ(k, KernelKind::kScalar);
  }
  Rng rng(5);
  const Mat61 a = Mat61::random(20, rng);
  const Mat61 b = Mat61::random(20, rng);
  EXPECT_EQ(m61_multiply_dispatch(a, b), m61_multiply_schoolbook(a, b));
}

TEST(KernelDispatchEnv, ExplicitAvx2KernelRequiresAvx2Support) {
  // The explicit-grid API is strict where the env knob is forgiving: asking
  // for a kernel the host cannot run is a precondition error.
  if (cpu_has_avx2()) {
    GTEST_SKIP() << "host supports AVX2 — the strict-precondition branch is "
                    "only reachable on non-AVX2 hosts";
  }
  Rng rng(6);
  const Mat61 a = Mat61::random(8, rng);
  EXPECT_THROW(m61_multiply_kernel(a, a, KernelKind::kAvx2, 1),
               PreconditionError);
  const TropicalMat t = TropicalMat::random(8, rng);
  EXPECT_THROW(tropical_multiply_kernel(t, t, KernelKind::kAvx2, 1),
               PreconditionError);
}

TEST(KernelDispatchEnv, DispatchHonorsKernelAndThreadKnobsTogether) {
  Rng rng(77);
  const Mat61 a = Mat61::random(40, rng);
  const Mat61 b = Mat61::random(40, rng);
  const Mat61 ref = m61_multiply_schoolbook(a, b);
  const TropicalMat ta = TropicalMat::random(40, rng, 1u << 16, 0.2);
  const TropicalMat tb = TropicalMat::random(40, rng, 1u << 16, 0.2);
  const TropicalMat tref = tropical_multiply_schoolbook(ta, tb);
  for (const char* kernel : {"auto", "scalar", "avx2"}) {
    for (const char* threads : {"1", "2", "8", "not-a-number"}) {
      ScopedEnv ek("CC_KERNEL", kernel);
      ScopedEnv et("CC_THREADS", threads);
      EXPECT_EQ(m61_multiply_dispatch(a, b), ref)
          << "CC_KERNEL=" << kernel << " CC_THREADS=" << threads;
      EXPECT_EQ(tropical_multiply_dispatch(ta, tb), tref)
          << "CC_KERNEL=" << kernel << " CC_THREADS=" << threads;
    }
  }
}

// ----------------------------------------------- protocol-level determinism

/// CommStats must be kernel-independent: the kernels are local compute
/// between metered phases, so the full distributed protocols must report
/// identical schedules (and results) under every CC_KERNEL setting.
TEST(KernelDispatchProtocol, AlgebraicMmAndApspStatsAreKernelIndependent) {
  Rng rng(31337);
  const Graph g = gnp(24, 0.4, rng);
  std::vector<std::uint32_t> weights;
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    weights.push_back(static_cast<std::uint32_t>(rng.uniform(100) + 1));
  }

  struct Run {
    AlgebraicCountResult tri;
    ApspResult apsp;
  };
  auto run_protocols = [&]() {
    CliqueUnicast net1(24, /*bandwidth=*/64);
    Run r;
    r.tri = triangle_count_algebraic(net1, g);
    CliqueUnicast net2(24, /*bandwidth=*/64);
    r.apsp = apsp_run(net2, g, weights, TropicalKernel::kBlocked);
    return r;
  };

  ScopedEnv base("CC_KERNEL", "scalar");
  const Run ref = run_protocols();
  for (const char* kernel : {"auto", "avx2"}) {
    ScopedEnv e("CC_KERNEL", kernel);
    const Run got = run_protocols();
    EXPECT_EQ(got.tri.count, ref.tri.count) << "CC_KERNEL=" << kernel;
    EXPECT_EQ(got.tri.total_rounds, ref.tri.total_rounds);
    EXPECT_EQ(got.tri.mm.total_bits, ref.tri.mm.total_bits);
    EXPECT_EQ(got.apsp.dist, ref.apsp.dist) << "CC_KERNEL=" << kernel;
    EXPECT_EQ(got.apsp.total_rounds, ref.apsp.total_rounds);
    EXPECT_EQ(got.apsp.total_bits, ref.apsp.total_bits);
  }
}

/// The blocked multiply wrappers (the pre-dispatch public API) must agree
/// with the kernel layer they now delegate to.
TEST(KernelDispatchProtocol, BlockedWrappersDelegateToScalarKernels) {
  Rng rng(11);
  const Mat61 a = Mat61::random(37, rng);
  const Mat61 b = Mat61::random(37, rng);
  EXPECT_EQ(m61_multiply_blocked(a, b),
            m61_multiply_kernel(a, b, KernelKind::kScalar, 1));
  const TropicalMat ta = TropicalMat::random(37, rng, 1u << 12, 0.3);
  const TropicalMat tb = TropicalMat::random(37, rng, 1u << 12, 0.3);
  EXPECT_EQ(tropical_multiply_blocked(ta, tb),
            tropical_multiply_kernel(ta, tb, KernelKind::kScalar, 1));
}

/// AVX2 coverage notice: on hosts without AVX2 the vector half of the grid
/// is unreachable; make that visible as a skip instead of silently passing.
TEST(KernelDispatchProtocol, Avx2GridActuallyRanOnThisHost) {
  if (!cpu_has_avx2()) {
    GTEST_SKIP() << "host lacks AVX2 (or build lacks the AVX2 TU) — grid "
                    "tests covered the scalar kernels only";
  }
  SUCCEED();
}

}  // namespace
}  // namespace cclique
