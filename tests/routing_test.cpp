// Tests for the routing substrate — correctness of all three routers and
// the balanced-demand round bounds the Theorem 2 simulation relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "routing/router.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cclique {
namespace {

// Sorts delivered (source, payload) pairs for comparison.
using Delivered = std::vector<std::vector<std::pair<int, std::uint64_t>>>;

std::multiset<std::tuple<int, int, std::uint64_t>> flatten(const RoutingDemand& d) {
  std::multiset<std::tuple<int, int, std::uint64_t>> out;
  for (const auto& m : d.messages) out.insert({m.dest, m.source, m.payload});
  return out;
}

std::multiset<std::tuple<int, int, std::uint64_t>> flatten(const Delivered& del) {
  std::multiset<std::tuple<int, int, std::uint64_t>> out;
  for (std::size_t v = 0; v < del.size(); ++v) {
    for (const auto& [src, payload] : del[v]) {
      out.insert({static_cast<int>(v), src, payload});
    }
  }
  return out;
}

RoutingDemand random_balanced_demand(int n, int per_player, int width, Rng& rng) {
  RoutingDemand d;
  d.payload_bits = width;
  // Per-player out quota exactly per_player; destinations drawn from a
  // random permutation-of-slots construction keeping in-load balanced too.
  std::vector<int> dest_slots;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < per_player; ++k) dest_slots.push_back(v);
  }
  rng.shuffle(dest_slots);
  std::size_t cursor = 0;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < per_player; ++k) {
      d.messages.push_back(RoutedMessage{
          v, dest_slots[cursor++],
          rng.uniform(width >= 64 ? ~0ULL : (1ULL << width))});
    }
  }
  return d;
}

TEST(Routing, DemandLoadHelpers) {
  RoutingDemand d;
  d.payload_bits = 4;
  d.messages = {{0, 1, 5}, {0, 2, 6}, {1, 2, 7}};
  EXPECT_EQ(d.max_out(3), 2u);
  EXPECT_EQ(d.max_in(3), 2u);
}

TEST(Routing, DirectDeliversEverything) {
  Rng rng(1);
  CliqueUnicast net(6, 8);
  RoutingDemand d = random_balanced_demand(6, 4, 8, rng);
  RoutingResult r = route_direct(net, d);
  EXPECT_EQ(flatten(r.delivered), flatten(d));
}

TEST(Routing, TwoPhaseDeliversEverything) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    CliqueUnicast net(8, 16);
    RoutingDemand d = random_balanced_demand(8, 6, 10, rng);
    RoutingResult r = route_two_phase(net, d);
    EXPECT_EQ(flatten(r.delivered), flatten(d));
  }
}

TEST(Routing, ValiantDeliversEverything) {
  Rng rng(3);
  CliqueUnicast net(8, 16);
  RoutingDemand d = random_balanced_demand(8, 6, 10, rng);
  RoutingResult r = route_valiant(net, d, rng);
  EXPECT_EQ(flatten(r.delivered), flatten(d));
}

TEST(Routing, EmptyDemand) {
  CliqueUnicast net(4, 8);
  RoutingDemand d;
  d.payload_bits = 4;
  RoutingResult r = route_two_phase(net, d);
  EXPECT_EQ(r.rounds, 0);
  for (const auto& v : r.delivered) EXPECT_TRUE(v.empty());
}

TEST(Routing, SelfMessagesDeliveredLocally) {
  CliqueUnicast net(3, 8);
  RoutingDemand d;
  d.payload_bits = 5;
  d.messages = {{1, 1, 17}, {2, 0, 9}};
  RoutingResult r = route_direct(net, d);
  ASSERT_EQ(r.delivered[1].size(), 1u);
  EXPECT_EQ(r.delivered[1][0].second, 17u);
}

TEST(Routing, PayloadWidthValidated) {
  CliqueUnicast net(3, 8);
  RoutingDemand d;
  d.payload_bits = 3;
  d.messages = {{0, 1, 9}};  // 9 needs 4 bits
  EXPECT_THROW(route_direct(net, d), PreconditionError);
}

// The headline property: hot-pair demands (all of one player's messages to
// a single destination) sink the direct router but stay O(c) for the
// two-phase router.
TEST(Routing, TwoPhaseSpreadsHotPairs) {
  const int n = 16;
  RoutingDemand d;
  d.payload_bits = 8;
  // Player 0 sends n messages, all to player 1 (in-load of 1 is n = c*n
  // with c=1; out-load of 0 is n).
  for (int k = 0; k < n; ++k) {
    d.messages.push_back(RoutedMessage{0, 1, static_cast<std::uint64_t>(k)});
  }
  CliqueUnicast direct_net(n, 16);
  const int direct_rounds = route_direct(direct_net, d).rounds;
  CliqueUnicast relay_net(n, 16);
  const int relay_rounds = route_two_phase(relay_net, d).rounds;
  EXPECT_GE(direct_rounds, n / 2) << "direct routing must serialize the hot pair";
  EXPECT_LE(relay_rounds, 6) << "two-phase routing must spread the hot pair";
}

// Deterministic O(c) bound: for c-balanced demands the two-phase router's
// rounds must not grow with n (at fixed record width / bandwidth ratio).
TEST(Routing, TwoPhaseRoundsScaleWithLoadNotSize) {
  Rng rng(5);
  std::map<int, int> rounds_by_n;
  for (int n : {8, 16, 32}) {
    CliqueUnicast net(n, 32);
    RoutingDemand d = random_balanced_demand(n, 2 * n, 8, rng);  // c = 2
    rounds_by_n[n] = route_two_phase(net, d).rounds;
  }
  // Allow slack of 2 rounds for addressing-width growth.
  EXPECT_LE(rounds_by_n[32], rounds_by_n[8] + 2)
      << "two-phase rounds should be O(c), not O(n)";
}

TEST(Routing, TwoPhaseRoundsGrowLinearlyInC) {
  Rng rng(6);
  const int n = 12;
  std::vector<int> rounds;
  for (int c : {1, 2, 4}) {
    CliqueUnicast net(n, 32);
    RoutingDemand d = random_balanced_demand(n, c * n, 8, rng);
    rounds.push_back(route_two_phase(net, d).rounds);
  }
  EXPECT_LT(rounds[2], 8 * rounds[0] + 8) << "rounds should track c roughly linearly";
  EXPECT_GT(rounds[2], rounds[0]) << "more load must cost more rounds";
}

// DESIGN.md §4a, asserted directly from the per-player accounting: both
// relay phases have per-edge load <= ceil(M/n) + 1 records when every
// player sends and receives <= M messages. Summed over a player's n links
// and the two phases, that caps every player's sent (and received) bits at
// 2 * n * (ceil(M/n) + 1) * record_bits — a certificate the aggregate
// max_edge_bits_in_round cannot give.
TEST(Routing, TwoPhasePerPlayerLoadCertificate) {
  Rng rng(11);
  const int n = 16;
  const int c = 3;  // per-player demand M = c * n
  const int width = 8;
  CliqueUnicast net(n, 32);
  RoutingDemand d = random_balanced_demand(n, c * n, width, rng);
  const std::size_t M = static_cast<std::size_t>(c) * static_cast<std::size_t>(n);
  ASSERT_EQ(d.max_out(n), M);
  ASSERT_EQ(d.max_in(n), M);
  route_two_phase(net, d);

  const std::uint64_t record_bits =
      static_cast<std::uint64_t>(bits_for(static_cast<std::uint64_t>(n)) + width);
  const std::uint64_t edge_cap_records = M / static_cast<std::size_t>(n) + 1;  // ceil(M/n) + 1
  const std::uint64_t player_cap_bits =
      2 * static_cast<std::uint64_t>(n) * edge_cap_records * record_bits;
  const CommStats& s = net.stats();
  ASSERT_EQ(s.per_player_sent_bits.size(), static_cast<std::size_t>(n));
  std::uint64_t sent_sum = 0, recv_sum = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_LE(s.per_player_sent_bits[static_cast<std::size_t>(i)], player_cap_bits)
        << "player " << i << " overloaded on send";
    EXPECT_LE(s.per_player_recv_bits[static_cast<std::size_t>(i)], player_cap_bits)
        << "player " << i << " overloaded on receive";
    sent_sum += s.per_player_sent_bits[static_cast<std::size_t>(i)];
    recv_sum += s.per_player_recv_bits[static_cast<std::size_t>(i)];
  }
  // Unicast delivers every sent bit to exactly one receiver.
  EXPECT_EQ(sent_sum, s.total_bits);
  EXPECT_EQ(recv_sum, s.total_bits);
}

TEST(Routing, ValiantNearBalanced) {
  Rng rng(7);
  const int n = 16;
  CliqueUnicast net(n, 32);
  RoutingDemand d = random_balanced_demand(n, n, 8, rng);  // c = 1
  RoutingResult r = route_valiant(net, d, rng);
  EXPECT_LE(r.rounds, 16) << "valiant should stay near O(c + log n / log log n)";
}

TEST(Routing, DeterministicScheduleIsReproducible) {
  Rng rng(8);
  RoutingDemand d = random_balanced_demand(8, 8, 8, rng);
  CliqueUnicast net1(8, 16), net2(8, 16);
  RoutingResult r1 = route_two_phase(net1, d);
  RoutingResult r2 = route_two_phase(net2, d);
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(flatten(r1.delivered), flatten(r2.delivered));
  EXPECT_EQ(net1.stats().total_bits, net2.stats().total_bits);
}

TEST(Routing, DuplicatePayloadsSurvive) {
  // Identical (source, dest, payload) triples must all arrive (multiset
  // semantics) — the circuit simulator relies on counts.
  CliqueUnicast net(4, 16);
  RoutingDemand d;
  d.payload_bits = 4;
  d.messages = {{0, 2, 7}, {0, 2, 7}, {0, 2, 7}};
  RoutingResult r = route_two_phase(net, d);
  EXPECT_EQ(r.delivered[2].size(), 3u);
}

TEST(Routing, BandwidthOneStillCorrect) {
  Rng rng(9);
  CliqueUnicast net(5, 1);
  RoutingDemand d = random_balanced_demand(5, 3, 4, rng);
  RoutingResult r = route_two_phase(net, d);
  EXPECT_EQ(flatten(r.delivered), flatten(d));
  EXPECT_GT(r.rounds, 4) << "b=1 must chunk multi-bit records over rounds";
}

}  // namespace
}  // namespace cclique
