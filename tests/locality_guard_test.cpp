// Negative-test suite for the runtime locality guard
// (analysis/locality_guard.h): seeded cross-player accesses inside engine
// callbacks must throw ModelViolation in CCLIQUE_LOCALITY builds, naming
// both players and the registration site, and the same protocols must be
// untouched in default builds (the guard compiles to nothing). The tests
// branch on locality::enabled() so one source covers both build modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/locality_guard.h"
#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "comm/congest.h"
#include "comm/nof.h"
#include "comm/two_party.h"
#include "graph/generators.h"
#include "util/check.h"

namespace cclique {
namespace {

Message bits_of(std::uint64_t v, int w) {
  Message m;
  m.push_uint(v, w);
  return m;
}

TEST(LocalityGuard, ScopeTracksCurrentPlayerWhenEnabled) {
  EXPECT_EQ(locality::current_player(), locality::kNoPlayer);
  {
    locality::PlayerScope outer(3);
    if (locality::enabled()) {
      EXPECT_EQ(locality::current_player(), 3);
      {
        locality::PlayerScope inner(7);
        EXPECT_EQ(locality::current_player(), 7);
      }
      // Nested scopes restore the previous player, not kNoPlayer.
      EXPECT_EQ(locality::current_player(), 3);
    } else {
      EXPECT_EQ(locality::current_player(), locality::kNoPlayer);
    }
  }
  EXPECT_EQ(locality::current_player(), locality::kNoPlayer);
}

TEST(LocalityGuard, PerPlayerAllowsSelfAndOrchestratorAccess) {
  locality::PerPlayer<int> state(4, CC_LOCALITY_SITE("test state"));
  // Orchestrator level (no scope): unrestricted in every build.
  for (int i = 0; i < 4; ++i) state[i] = 10 * i;
  {
    locality::PlayerScope scope(2);
    EXPECT_EQ(state[2], 20);  // own element: always legal
    state[2] = 21;
  }
  EXPECT_EQ(state.raw()[2], 21);
  const std::vector<int> out = state.take();
  EXPECT_EQ(out.size(), 4u);
}

TEST(LocalityGuard, CrossPlayerAccessThrowsWhenEnabled) {
  locality::PerPlayer<int> state(4, CC_LOCALITY_SITE("cross test state"));
  locality::PlayerScope scope(1);
  if (locality::enabled()) {
    EXPECT_THROW(state[3], ModelViolation);
  } else {
    EXPECT_NO_THROW(state[3]);
  }
}

TEST(LocalityGuard, ViolationMessageNamesBothPlayersAndSite) {
  if (!locality::enabled()) GTEST_SKIP() << "guard compiled out";
  locality::PerPlayer<int> state(8, CC_LOCALITY_SITE("secret counters"));
  locality::PlayerScope scope(5);
  try {
    state[2] = 1;
    FAIL() << "cross-player write must throw";
  } catch (const ModelViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("player 5"), std::string::npos) << what;
    EXPECT_NE(what.find("player 2"), std::string::npos) << what;
    EXPECT_NE(what.find("secret counters"), std::string::npos) << what;
    EXPECT_NE(what.find("locality_guard_test.cpp"), std::string::npos) << what;
  }
}

TEST(LocalityGuard, BoundsAreCheckedInEveryBuild) {
  locality::PerPlayer<int> state(3, CC_LOCALITY_SITE("bounds state"));
  EXPECT_THROW(state[3], PreconditionError);
  EXPECT_THROW(state[-1], PreconditionError);
}

TEST(LocalityGuard, MineResolvesToScopedElement) {
  locality::PerPlayer<int> state(4, CC_LOCALITY_SITE("mine state"));
  state[2] = 42;
  if (locality::enabled()) {
    locality::PlayerScope scope(2);
    EXPECT_EQ(state.mine(), 42);
  } else {
    // Without the guard there is no scope tracking: mine() has nothing to
    // resolve against and refuses instead of guessing.
    locality::PlayerScope scope(2);
    EXPECT_THROW(state.mine(), PreconditionError);
  }
}

// --- seeded violations through the real engines -------------------------

TEST(LocalityGuard, UnicastSendCallbackCannotReadAnotherPlayersState) {
  const int n = 6;
  CliqueUnicast net(n, 8);
  locality::PerPlayer<std::uint64_t> secret(
      n, CC_LOCALITY_SITE("per-player secret"));
  for (int i = 0; i < n; ++i) secret[i] = static_cast<std::uint64_t>(i);
  const auto leaky_send = [&](int i) {
    std::vector<Message> box(static_cast<std::size_t>(n));
    // Planted violation: player i reads player (i+1)%n's private value.
    const std::uint64_t stolen = secret[(i + 1) % n];
    box[static_cast<std::size_t>((i + 1) % n)] = bits_of(stolen, 5);
    return box;
  };
  const auto no_recv = [](int, const std::vector<Message>&) {};
  if (locality::enabled()) {
    EXPECT_THROW(net.round(leaky_send, no_recv), ModelViolation);
    // The violating round commits nothing and the engine stays usable.
    EXPECT_EQ(net.stats().rounds, 0);
    EXPECT_EQ(net.stats().total_bits, 0u);
  } else {
    EXPECT_NO_THROW(net.round(leaky_send, no_recv));
    EXPECT_EQ(net.stats().rounds, 1);
  }
  net.round([&](int) { return std::vector<Message>(static_cast<std::size_t>(n)); },
            no_recv);
}

TEST(LocalityGuard, UnicastRecvCallbackCannotReadAnotherPlayersState) {
  const int n = 5;
  CliqueUnicast net(n, 8);
  locality::PerPlayer<std::uint64_t> inbox_state(
      n, CC_LOCALITY_SITE("per-player decode state"));
  const auto send = [&](int i) {
    std::vector<Message> box(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      if (j != i) box[static_cast<std::size_t>(j)] = bits_of(1, 2);
    }
    return box;
  };
  const auto leaky_recv = [&](int r, const std::vector<Message>&) {
    // Planted violation: the receiver peeks at player 0's slot. Receiver 0
    // itself is legal (self access), so seed from the other players.
    if (r != 0) inbox_state[0] += 1;
  };
  if (locality::enabled()) {
    EXPECT_THROW(net.round(send, leaky_recv), ModelViolation);
  } else {
    EXPECT_NO_THROW(net.round(send, leaky_recv));
  }
}

TEST(LocalityGuard, RoundFillCallbackIsScopedToo) {
  const int n = 4;
  CliqueUnicast net(n, 8);
  locality::PerPlayer<std::uint64_t> secret(
      n, CC_LOCALITY_SITE("fill-path secret"));
  const auto leaky_fill = [&](int i, Message* box) {
    if (i == 2) box[0] = bits_of(secret[1], 3);  // 2 reads 1's state
  };
  const auto no_recv = [](int, const std::vector<Message>&) {};
  if (locality::enabled()) {
    EXPECT_THROW(net.round_fill(leaky_fill, no_recv), ModelViolation);
  } else {
    EXPECT_NO_THROW(net.round_fill(leaky_fill, no_recv));
  }
}

TEST(LocalityGuard, BroadcastCallbackIsScoped) {
  const int n = 4;
  CliqueBroadcast net(n, 8);
  locality::PerPlayer<std::uint64_t> secret(
      n, CC_LOCALITY_SITE("broadcast secret"));
  for (int i = 0; i < n; ++i) secret[i] = static_cast<std::uint64_t>(i) + 1;
  const auto leaky_bcast = [&](int i) {
    return bits_of(secret[(i + 1) % n], 4);
  };
  if (locality::enabled()) {
    EXPECT_THROW(net.round(leaky_bcast), ModelViolation);
  } else {
    EXPECT_NO_THROW(net.round(leaky_bcast));
  }
}

TEST(LocalityGuard, CongestCallbacksAreScoped) {
  const int n = 6;
  CongestUnicast net(cycle_graph(n), 8);
  locality::PerPlayer<std::uint64_t> secret(
      n, CC_LOCALITY_SITE("congest secret"));
  const auto leaky_send = [&](int v) {
    std::vector<Message> box(2);
    if (v == 3) box[0] = bits_of(secret[4], 3);  // 3 reads 4's state
    return box;
  };
  const auto no_recv = [](int, const std::vector<Message>&) {};
  if (locality::enabled()) {
    EXPECT_THROW(net.round(leaky_send, no_recv), ModelViolation);
  } else {
    EXPECT_NO_THROW(net.round(leaky_send, no_recv));
  }
}

TEST(LocalityGuard, NofBlackboardWriteMustMatchActiveScope) {
  NofBlackboard board;
  // Orchestrator level: any attribution is fine (reductions run unscoped).
  board.write(1, bits_of(0, 4));
  EXPECT_EQ(board.total_bits(), 4u);
  locality::PlayerScope scope(0);
  board.write(0, bits_of(0, 2));  // own budget: always legal
  if (locality::enabled()) {
    EXPECT_THROW(board.write(2, bits_of(0, 1)), ModelViolation);
    EXPECT_EQ(board.total_bits(), 6u);  // rejected write charged nothing
  } else {
    EXPECT_NO_THROW(board.write(2, bits_of(0, 1)));
    EXPECT_EQ(board.total_bits(), 7u);
  }
}

TEST(LocalityGuard, TwoPartyChannelSendMustMatchActiveScope) {
  TwoPartyChannel channel;
  channel.send_from_bob(bits_of(0, 3));  // unscoped: fine
  locality::PlayerScope scope(0);        // Alice's scope
  channel.send_from_alice(bits_of(0, 2));
  if (locality::enabled()) {
    EXPECT_THROW(channel.send_from_bob(bits_of(0, 1)), ModelViolation);
  } else {
    EXPECT_NO_THROW(channel.send_from_bob(bits_of(0, 1)));
  }
}

}  // namespace
}  // namespace cclique
