// Tests for the extremal constructions and the Turán machinery — the
// combinatorial backbone of the Section 3 bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/degeneracy.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/ruzsa_szemeredi.h"
#include "graph/subgraph.h"
#include "graph/turan.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(Turan, ChromaticNumbers) {
  EXPECT_EQ(chromatic_number(complete_graph(5)), 5);
  EXPECT_EQ(chromatic_number(cycle_graph(6)), 2);
  EXPECT_EQ(chromatic_number(cycle_graph(7)), 3);
  EXPECT_EQ(chromatic_number(complete_bipartite(3, 4)), 2);
  EXPECT_EQ(chromatic_number(path_graph(5)), 2);
  EXPECT_EQ(chromatic_number(Graph(3)), 1);
}

TEST(Turan, BipartitionSizes) {
  int a = 0, b = 0;
  EXPECT_TRUE(bipartition_sizes(complete_bipartite(3, 5), &a, &b));
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 5);
  EXPECT_FALSE(bipartition_sizes(complete_graph(3), &a, &b));
  EXPECT_TRUE(bipartition_sizes(cycle_graph(8), &a, &b));
  EXPECT_EQ(a, 4);
  EXPECT_EQ(b, 4);
}

TEST(Turan, CliqueBoundIsExactTuran) {
  // ex(n, K_3) = n^2/4.
  const TuranBound b = turan_upper_bound(100, complete_graph(3));
  EXPECT_TRUE(b.exact);
  EXPECT_DOUBLE_EQ(b.value, 2500.0);
}

TEST(Turan, OddCycleBound) {
  const TuranBound b = turan_upper_bound(60, cycle_graph(5));
  EXPECT_TRUE(b.exact);
  EXPECT_DOUBLE_EQ(b.value, 900.0);
}

TEST(Turan, C4BoundIsReiman) {
  const TuranBound b = turan_upper_bound(1000, cycle_graph(4));
  // Reiman: (1 + sqrt(3997)) * 250 ≈ 16055.
  EXPECT_NEAR(b.value, (1.0 + std::sqrt(3997.0)) * 250.0, 1e-6);
}

TEST(Turan, ForestBoundLinear) {
  const TuranBound b = turan_upper_bound(500, path_graph(4));  // 3-edge tree
  EXPECT_LE(b.value, 3.0 * 500.0 + 1);
}

TEST(Turan, BoundsDominateTrueExtremalGraphs) {
  // Any C4-free graph we can build must respect the C4 bound.
  const Graph er = polarity_graph(7);
  const TuranBound b =
      turan_upper_bound(static_cast<std::uint64_t>(er.num_vertices()), cycle_graph(4));
  EXPECT_GE(b.value, static_cast<double>(er.num_edges()));
}

TEST(Turan, Claim6CapHoldsOnHFreeGraphs) {
  Rng rng(1);
  // C4-free polarity graph: degeneracy <= 4 ex(n, C4)/n.
  const Graph er = polarity_graph(11);
  const int cap = degeneracy_cap_if_h_free(
      static_cast<std::uint64_t>(er.num_vertices()), cycle_graph(4));
  EXPECT_LE(compute_degeneracy(er).degeneracy, cap);
  // Triangle-free bipartite graph vs K3 cap.
  const Graph kb = complete_bipartite(20, 20);
  const int cap3 = degeneracy_cap_if_h_free(40, complete_graph(3));
  EXPECT_LE(compute_degeneracy(kb).degeneracy, cap3);
  // Random H-free graphs: sample and reject.
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(40, 0.08, rng);
    if (!contains_subgraph(g, complete_graph(4))) {
      EXPECT_LE(compute_degeneracy(g).degeneracy,
                degeneracy_cap_if_h_free(40, complete_graph(4)));
    }
  }
}

TEST(Extremal, TuranGraphIsExtremal) {
  const Graph t = turan_graph(12, 3);
  EXPECT_FALSE(contains_clique(t, 4));
  EXPECT_TRUE(contains_clique(t, 3));
  // Balanced 3-partite on 12: 3 * (4*4) = 48 edges.
  EXPECT_EQ(t.num_edges(), 48u);
}

TEST(Extremal, PolarityGraphC4Free) {
  for (std::uint64_t q : {2, 3, 5, 7}) {
    const Graph er = polarity_graph(q);
    EXPECT_EQ(er.num_vertices(), static_cast<int>(q * q + q + 1));
    EXPECT_FALSE(contains_cycle(er, 4)) << "ER_" << q << " must be C4-free";
    // Edge count ~ q(q+1)^2/2 (within the absolute-point correction).
    const double expect = static_cast<double>(q) * (q + 1) * (q + 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(er.num_edges()), expect, expect * 0.25);
  }
}

TEST(Extremal, PolarityGraphDensityIsThetaN32) {
  const Graph er = polarity_graph(13);
  const double n = er.num_vertices();
  const double ratio = static_cast<double>(er.num_edges()) / std::pow(n, 1.5);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.7);
}

TEST(Extremal, IncidenceGraphGirthSix) {
  for (std::uint64_t q : {2, 3, 5}) {
    const Graph inc = incidence_graph_pg2(q);
    EXPECT_EQ(inc.num_vertices(), static_cast<int>(2 * (q * q + q + 1)));
    EXPECT_EQ(inc.num_edges(), (q + 1) * (q * q + q + 1));
    EXPECT_EQ(girth(inc), 6);
  }
}

TEST(Extremal, HighGirthGraphRespectsBound) {
  Rng rng(2);
  for (int g : {5, 6, 8}) {
    const Graph hg = high_girth_graph(40, g, rng);
    const int measured = girth(hg);
    EXPECT_TRUE(measured == -1 || measured > g)
        << "requested girth > " << g << ", got " << measured;
    EXPECT_GT(hg.num_edges(), 40u / 2) << "greedy should pack many edges";
  }
}

TEST(Extremal, DenseClFreeGraphIsClFree) {
  // Exact structural witnesses per class (a generic backtracking search
  // proving cycle *absence* is exponential; these checks are equivalent):
  //  - l = 4: C4-free <=> every vertex pair has at most one common neighbor;
  //  - odd l: the construction is bipartite, so it has no odd cycle at all;
  //  - even l >= 6: the construction has girth > l.
  Rng rng(3);
  {
    const Graph f = dense_cl_free_graph(40, 4, rng);
    for (int u = 0; u < f.num_vertices(); ++u) {
      for (int v = u + 1; v < f.num_vertices(); ++v) {
        EXPECT_LE(f.common_neighbor_count(u, v), 1)
            << "C4 witness at pair (" << u << "," << v << ")";
      }
    }
    EXPECT_GT(f.num_edges(), 20u);
  }
  for (int l : {5, 7}) {
    const Graph f = dense_cl_free_graph(40, l, rng);
    int a = 0, b = 0;
    EXPECT_TRUE(bipartition_sizes(f, &a, &b)) << "odd-l carrier must be bipartite";
    EXPECT_GT(f.num_edges(), 20u);
  }
  for (int l : {6, 8}) {
    const Graph f = dense_cl_free_graph(40, l, rng);
    const int gi = girth(f);
    EXPECT_TRUE(gi == -1 || gi > l) << "l = " << l << " girth " << gi;
    EXPECT_GT(f.num_edges(), 20u);
  }
}

TEST(Extremal, BipartiteC4FreeGraph) {
  const Graph f = bipartite_c4_free_graph(40);
  int a = 0, b = 0;
  EXPECT_TRUE(bipartition_sizes(f, &a, &b));
  EXPECT_FALSE(contains_cycle(f, 4));
  EXPECT_GT(f.num_edges(), 40u);
}

TEST(Behrend, SetsAreProgressionFree) {
  for (std::uint64_t m : {10, 100, 1000, 5000}) {
    const auto s = behrend_set(m);
    EXPECT_TRUE(is_progression_free(s));
    EXPECT_FALSE(s.empty());
    for (std::uint64_t v : s) EXPECT_LT(v, m);
  }
}

TEST(Behrend, DetectsPlantedProgression) {
  EXPECT_FALSE(is_progression_free({1, 3, 5}));
  EXPECT_TRUE(is_progression_free({1, 2, 4, 8}));
  EXPECT_FALSE(is_progression_free({0, 4, 8}));
}

TEST(Behrend, DensityBeatsTrivial) {
  // Behrend/greedy sets should be much larger than the sqrt(m) baseline.
  const auto s = behrend_set(2000);
  EXPECT_GT(s.size(), static_cast<std::size_t>(std::sqrt(2000.0)));
}

TEST(RuzsaSzemeredi, EveryEdgeInExactlyOneTriangle) {
  for (int m : {5, 20, 60}) {
    const auto rs = ruzsa_szemeredi_graph(m);
    // The canonical triangles are edge-disjoint and cover all edges:
    // 3 * #triangles == #edges.
    EXPECT_EQ(3 * rs.triangles.size(), rs.graph.num_edges());
    // And they are ALL the triangles of the graph.
    EXPECT_EQ(count_triangles(rs.graph), rs.triangles.size());
    for (const Triangle& t : rs.triangles) {
      EXPECT_TRUE(rs.graph.has_edge(t.a, t.b));
      EXPECT_TRUE(rs.graph.has_edge(t.b, t.c));
      EXPECT_TRUE(rs.graph.has_edge(t.a, t.c));
    }
  }
}

TEST(RuzsaSzemeredi, TriangleCountMatchesFormula) {
  const int m = 50;
  const auto rs = ruzsa_szemeredi_graph(m);
  EXPECT_EQ(rs.triangles.size(), static_cast<std::size_t>(m) * behrend_set(m).size());
  EXPECT_EQ(rs.graph.num_vertices(), 6 * m);
}

TEST(RuzsaSzemeredi, Tripartite) {
  const auto rs = ruzsa_szemeredi_graph(20);
  const int m = rs.m;
  for (const Edge& e : rs.graph.edges()) {
    auto part = [&](int v) { return v < m ? 0 : (v < 3 * m ? 1 : 2); };
    EXPECT_NE(part(e.u), part(e.v)) << "parts must be independent sets";
  }
}

}  // namespace
}  // namespace cclique
