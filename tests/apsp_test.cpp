// Tests for the min-plus workload: the tropical matrix substrate
// (linalg/tropical), the distributed distance product (min_plus_mm over the
// shared block-MM schedule), and exact APSP by repeated squaring
// (core/apsp) — correctness against per-source Dijkstra on a spread of
// generators (including disconnected and zero-weight-edge graphs), exact
// agreement between the measured schedule and apsp_plan, the degenerate
// m = 1 decomposition, the derived eccentricity/diameter/radius queries,
// and scheduler-independence of the stats.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/apsp.h"
#include "graph/generators.h"
#include "linalg/tropical.h"
#include "util/rng.h"

namespace cclique {
namespace {

std::vector<std::uint32_t> random_weights(const Graph& g, Rng& rng,
                                          std::uint32_t bound) {
  std::vector<std::uint32_t> w(g.num_edges());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(bound));
  return w;
}

std::vector<std::uint32_t> unit_weights(const Graph& g) {
  return std::vector<std::uint32_t>(g.num_edges(), 1);
}

// ---------------------------------------------------------------- tropical

TEST(Tropical, SaturatingAdd) {
  EXPECT_EQ(tropical_add(0, 0), 0u);
  EXPECT_EQ(tropical_add(3, 4), 7u);
  EXPECT_EQ(tropical_add(kTropicalInf, 0), kTropicalInf);
  EXPECT_EQ(tropical_add(0, kTropicalInf), kTropicalInf);
  EXPECT_EQ(tropical_add(kTropicalInf, kTropicalInf), kTropicalInf);
  // Finite sums that reach the infinity encoding saturate instead of
  // producing a bogus huge "finite" value.
  EXPECT_EQ(tropical_add(kTropicalInf - 1, 1), kTropicalInf);
  EXPECT_EQ(tropical_add(kTropicalInf - 1, 2), kTropicalInf);
  EXPECT_EQ(tropical_add(kTropicalInf - 1, 0), kTropicalInf - 1);
}

TEST(Tropical, DefaultMatrixIsSemiringZero) {
  const TropicalMat z(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(z.get(i, j), kTropicalInf);
  }
  // Semiring zero is the identity of ⊕ (entrywise min): Z ⊗ A = Z.
  Rng rng(1);
  const TropicalMat a = TropicalMat::random(3, rng, 100);
  EXPECT_EQ(tropical_multiply_schoolbook(z, a), z);
  EXPECT_EQ(tropical_multiply_schoolbook(a, z), z);
}

TEST(Tropical, IdentityIsMultiplicativeIdentity) {
  Rng rng(2);
  for (int n : {1, 4, 7}) {
    const TropicalMat a = TropicalMat::random(n, rng, 1000, 0.2);
    const TropicalMat id = TropicalMat::identity(n);
    EXPECT_EQ(tropical_multiply_schoolbook(id, a), a) << "n=" << n;
    EXPECT_EQ(tropical_multiply_schoolbook(a, id), a) << "n=" << n;
    EXPECT_EQ(tropical_multiply_blocked(id, a), a) << "n=" << n;
    EXPECT_EQ(tropical_multiply_blocked(a, id), a) << "n=" << n;
  }
}

TEST(Tropical, BlockedKernelMatchesSchoolbook) {
  Rng rng(3);
  // Sweep density of +inf entries from inf-free to all-inf; the kernels
  // must agree exactly, including on saturating near-kInf sums.
  for (int n : {1, 2, 5, 8, 16}) {
    for (double inf_prob : {0.0, 0.3, 0.9, 1.0}) {
      const TropicalMat a = TropicalMat::random(n, rng, kTropicalInf, inf_prob);
      const TropicalMat b = TropicalMat::random(n, rng, kTropicalInf, inf_prob);
      EXPECT_EQ(tropical_multiply_blocked(a, b), tropical_multiply_schoolbook(a, b))
          << "n=" << n << " inf_prob=" << inf_prob;
    }
  }
}

TEST(Tropical, SetRejectsOutOfCarrierValues) {
  TropicalMat m(2);
  EXPECT_THROW(m.set(0, 0, kTropicalInf + 1), PreconditionError);
  EXPECT_THROW(m.min_at(0, 0, ~0ULL), PreconditionError);
  EXPECT_THROW(m.get(2, 0), PreconditionError);
}

TEST(Tropical, FromWeightedGraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const TropicalMat w = TropicalMat::from_weighted_graph(g, {5, 0});
  EXPECT_EQ(w.get(0, 0), 0u);
  EXPECT_EQ(w.get(0, 1), 5u);
  EXPECT_EQ(w.get(1, 0), 5u);
  EXPECT_EQ(w.get(1, 2), 0u);  // zero-weight edge is a real edge, not "absent"
  EXPECT_EQ(w.get(0, 2), kTropicalInf);
  EXPECT_EQ(w.get(3, 0), kTropicalInf);
  EXPECT_THROW(TropicalMat::from_weighted_graph(g, {1}), PreconditionError);
}

// ----------------------------------------------------- distributed product

class MinPlusMmSizes : public ::testing::TestWithParam<int> {};

// Sizes cover the degenerate one-triple grid (m=1, n in [1, 8)), non-cubes
// with idle players and ragged last intervals, and a perfect cube.
INSTANTIATE_TEST_SUITE_P(Sizes, MinPlusMmSizes,
                         ::testing::Values(1, 2, 5, 7, 8, 11, 27));

TEST_P(MinPlusMmSizes, MatchesSchoolbook) {
  const int n = GetParam();
  Rng rng(500 + n);
  const TropicalMat a = TropicalMat::random(n, rng, 1u << 20, 0.25);
  const TropicalMat b = TropicalMat::random(n, rng, 1u << 20, 0.25);
  CliqueUnicast net(n, 64);
  TropicalMat c;
  const MinPlusResult r = min_plus_mm(net, a, b, &c);
  EXPECT_EQ(c, tropical_multiply_schoolbook(a, b));
  EXPECT_EQ(r.total_rounds, r.plan.total_rounds);
  EXPECT_EQ(r.total_bits, r.plan.total_bits);
  EXPECT_EQ(net.stats().rounds, r.total_rounds);
}

TEST(MinPlusMm, DegenerateGridRunsOneTriple) {
  // n < 8 means m = 1: the whole product is one block at player 0, every
  // row owner ships its rows in, player 0 ships all partial rows out.
  for (int n : {2, 3, 7}) {
    const AlgebraicMmPlan plan = apsp_plan(n, 64).product;
    EXPECT_EQ(plan.grid, 1) << "n=" << n;
    EXPECT_EQ(plan.block, n) << "n=" << n;
  }
}

TEST(MinPlusMm, ScheduleMatchesM61Product) {
  // One distance product costs the identical data-independent schedule as
  // the F_{2^61-1} product: same 61-bit word width, same geometry, so
  // exactly 6 * n^{1/3} rounds at perfect cubes with b = 64.
  for (int cbrt : {2, 3}) {
    const int n = cbrt * cbrt * cbrt;
    const AlgebraicMmPlan m61 = algebraic_mm_plan(n, 61, 64);
    const AlgebraicMmPlan trop = apsp_plan(n, 64).product;
    EXPECT_EQ(trop.total_rounds, m61.total_rounds);
    EXPECT_EQ(trop.total_bits, m61.total_bits);
    EXPECT_EQ(trop.total_rounds, 6 * cbrt);
  }
}

TEST(MinPlusMm, KernelChoiceDoesNotChangeScheduleOrOutput) {
  const int n = 11;
  Rng rng(77);
  const TropicalMat a = TropicalMat::random(n, rng, 1u << 16, 0.4);
  const TropicalMat b = TropicalMat::random(n, rng, 1u << 16, 0.4);
  CliqueUnicast net_blocked(n, 32);
  CliqueUnicast net_school(n, 32);
  TropicalMat c_blocked, c_school;
  const MinPlusResult rb =
      min_plus_mm(net_blocked, a, b, &c_blocked, TropicalKernel::kBlocked);
  const MinPlusResult rs =
      min_plus_mm(net_school, a, b, &c_school, TropicalKernel::kSchoolbook);
  EXPECT_EQ(c_blocked, c_school);
  EXPECT_EQ(rb.total_rounds, rs.total_rounds);
  EXPECT_EQ(rb.total_bits, rs.total_bits);
  EXPECT_EQ(net_blocked.stats(), net_school.stats());
}

// ------------------------------------------------------------------- APSP

struct ApspCase {
  const char* name;
  Graph g;
  std::vector<std::uint32_t> weights;
};

std::vector<ApspCase> apsp_cases() {
  Rng rng(2026);
  std::vector<ApspCase> cases;
  cases.push_back({"single_vertex", Graph(1), {}});
  cases.push_back({"two_path", path_graph(2), {3}});
  cases.push_back({"edgeless", Graph(6), {}});
  {
    Graph g = path_graph(9);
    cases.push_back({"path_unit", g, unit_weights(g)});
  }
  {
    Graph g = cycle_graph(10);
    cases.push_back({"cycle_random", g, random_weights(g, rng, 1000)});
  }
  {
    Graph g = complete_graph(8);
    cases.push_back({"complete_random", g, random_weights(g, rng, 50)});
  }
  {
    Graph g = star_graph(12);
    cases.push_back({"star_random", g, random_weights(g, rng, 1u << 20)});
  }
  {
    Graph g = complete_bipartite(4, 5);
    cases.push_back({"bipartite_random", g, random_weights(g, rng, 100)});
  }
  {
    Graph g = gnp(20, 0.3, rng);
    cases.push_back({"gnp_random", g, random_weights(g, rng, 1u << 16)});
  }
  {
    Graph g = gnm(16, 22, rng);
    cases.push_back({"gnm_random", g, random_weights(g, rng, 1u << 10)});
  }
  {
    Graph g = random_tree(15, rng);
    cases.push_back({"tree_random", g, random_weights(g, rng, 500)});
  }
  {
    // Disconnected: two G(n, p) components — cross-component distances must
    // come out +infinity and the diameter must be infinite.
    Graph g = gnp(7, 0.6, rng).disjoint_union(gnp(6, 0.6, rng));
    cases.push_back({"disconnected_gnp", g, random_weights(g, rng, 200)});
  }
  {
    // Zero-weight edges: distances collapse along 0-edges; Dijkstra with
    // non-negative weights handles them, and so must the squaring.
    Graph g = gnp(14, 0.35, rng);
    std::vector<std::uint32_t> w(g.num_edges());
    for (std::size_t e = 0; e < w.size(); ++e) {
      w[e] = e % 3 == 0 ? 0u : static_cast<std::uint32_t>(rng.uniform(64));
    }
    cases.push_back({"zero_weight_mix", g, std::move(w)});
  }
  {
    Graph g = gnp(13, 0.4, rng);
    cases.push_back({"all_zero_weights", g,
                     std::vector<std::uint32_t>(g.num_edges(), 0)});
  }
  return cases;
}

TEST(Apsp, MatchesDijkstraOnAllGenerators) {
  for (const ApspCase& c : apsp_cases()) {
    CliqueUnicast net(c.g.num_vertices(), 64);
    const ApspResult r = apsp_run(net, c.g, c.weights);
    EXPECT_EQ(r.dist, apsp_dijkstra_reference(c.g, c.weights)) << c.name;
    EXPECT_EQ(r.total_rounds, r.plan.total_rounds) << c.name;
    EXPECT_EQ(r.total_bits, r.plan.total_bits) << c.name;
    EXPECT_EQ(net.stats().rounds, r.total_rounds) << c.name;
    EXPECT_EQ(static_cast<int>(r.products.size()), r.plan.squarings) << c.name;
  }
}

TEST(Apsp, SchoolbookKernelAgreesEverywhere) {
  for (const ApspCase& c : apsp_cases()) {
    CliqueUnicast net_b(c.g.num_vertices(), 64);
    CliqueUnicast net_s(c.g.num_vertices(), 64);
    const ApspResult rb = apsp_run(net_b, c.g, c.weights, TropicalKernel::kBlocked);
    const ApspResult rs = apsp_run(net_s, c.g, c.weights, TropicalKernel::kSchoolbook);
    EXPECT_EQ(rb.dist, rs.dist) << c.name;
    EXPECT_EQ(net_b.stats(), net_s.stats()) << c.name;
  }
}

TEST(Apsp, PlanSquaringCounts) {
  // ⌈log2(n-1)⌉ squarings reach paths of <= n-1 edges; 1- and 2-cliques
  // need none (W is already the closure).
  const struct {
    int n;
    int squarings;
  } expect[] = {{1, 0}, {2, 0}, {3, 1}, {4, 2}, {5, 2}, {9, 3}, {17, 4}, {27, 5}};
  for (const auto& e : expect) {
    EXPECT_EQ(apsp_plan(e.n, 64).squarings, e.squarings) << "n=" << e.n;
  }
}

TEST(Apsp, PlanFollowsCubeRootLogSeries) {
  // At perfect cubes with b = 64 every squaring is exactly 6 * n^{1/3}
  // rounds and the eccentricity exchange is one more round, so the whole
  // run is 6 * n^{1/3} * ceil(log2(n-1)) + 1 rounds — the measured-vs-
  // predicted contract of bench_e18 asserted as a hard equality.
  for (int cbrt : {2, 3, 4}) {
    const int n = cbrt * cbrt * cbrt;
    const ApspPlan plan = apsp_plan(n, 64);
    EXPECT_EQ(plan.ecc_rounds, 1) << "n=" << n;
    EXPECT_EQ(plan.total_rounds, 6 * cbrt * plan.squarings + 1) << "n=" << n;
  }
}

TEST(Apsp, EccentricityDiameterRadius) {
  {
    // Unit-weight path P_9: diameter 8, radius 4 (center vertex 4),
    // eccentricity of endpoint 0 is 8.
    Graph g = path_graph(9);
    CliqueUnicast net(9, 64);
    const ApspResult r = apsp_run(net, g, unit_weights(g));
    EXPECT_EQ(r.diameter, 8u);
    EXPECT_EQ(r.radius, 4u);
    EXPECT_EQ(r.eccentricity[0], 8u);
    EXPECT_EQ(r.eccentricity[4], 4u);
  }
  {
    // Unit-weight cycle C_10: vertex-transitive, ecc = 5 everywhere.
    Graph g = cycle_graph(10);
    CliqueUnicast net(10, 64);
    const ApspResult r = apsp_run(net, g, unit_weights(g));
    EXPECT_EQ(r.diameter, 5u);
    EXPECT_EQ(r.radius, 5u);
  }
  {
    // Weighted star: ecc(center) = max spoke, diameter = two heaviest
    // spokes, radius = ecc of the center.
    Graph g = star_graph(5);  // center 0, spokes 1..4
    CliqueUnicast net(5, 64);
    const ApspResult r = apsp_run(net, g, {2, 3, 5, 7});
    EXPECT_EQ(r.eccentricity[0], 7u);
    EXPECT_EQ(r.radius, 7u);
    EXPECT_EQ(r.diameter, 12u);  // 5 + 7 through the center
  }
  {
    // Disconnected: infinite diameter AND infinite radius (every vertex
    // misses the other component).
    Graph g = complete_graph(3).disjoint_union(complete_graph(2));
    CliqueUnicast net(5, 64);
    const ApspResult r = apsp_run(net, g, unit_weights(g));
    EXPECT_EQ(r.diameter, kTropicalInf);
    EXPECT_EQ(r.radius, kTropicalInf);
  }
  {
    // Single vertex: ecc 0, no exchange rounds.
    CliqueUnicast net(1, 64);
    const ApspResult r = apsp_run(net, Graph(1), {});
    EXPECT_EQ(r.diameter, 0u);
    EXPECT_EQ(r.radius, 0u);
    EXPECT_EQ(r.total_rounds, 0);
  }
}

TEST(Apsp, LargeWeightsDoNotSaturateFinitePaths) {
  // Max uint32 weights on a path: the end-to-end distance is (n-1) * (2^32-1),
  // far below kTropicalInf — saturation must only ever mean "unreachable".
  Graph g = path_graph(6);
  const std::vector<std::uint32_t> w(g.num_edges(), 0xFFFFFFFFu);
  CliqueUnicast net(6, 64);
  const ApspResult r = apsp_run(net, g, w);
  EXPECT_EQ(r.dist.get(0, 5), 5ull * 0xFFFFFFFFull);
  EXPECT_LT(r.diameter, kTropicalInf);
}

TEST(Apsp, RejectsMismatchedInputs) {
  Graph g = path_graph(4);
  CliqueUnicast wrong_n(5, 64);
  EXPECT_THROW(apsp_run(wrong_n, g, unit_weights(g)), PreconditionError);
  CliqueUnicast net(4, 64);
  EXPECT_THROW(apsp_run(net, g, {1, 2}), PreconditionError);
}

TEST(Apsp, StatsAreThreadCountInvariant) {
  // The protocol only speaks round_fill through unicast_payloads(_relayed),
  // so the engine determinism contract must carry over verbatim.
  auto run = [] {
    Rng rng(88);
    Graph g = gnp(12, 0.4, rng);
    const std::vector<std::uint32_t> w = random_weights(g, rng, 1u << 12);
    CliqueUnicast net(12, 32);
    apsp_run(net, g, w);
    return net.stats();
  };
  const char* old = std::getenv("CC_THREADS");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("CC_THREADS", "1", 1);
  const CommStats serial = run();
  for (const char* threads : {"2", "5"}) {
    ::setenv("CC_THREADS", threads, 1);
    EXPECT_EQ(run(), serial) << "CC_THREADS=" << threads;
  }
  if (old != nullptr) {
    ::setenv("CC_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("CC_THREADS");
  }
}

}  // namespace
}  // namespace cclique
