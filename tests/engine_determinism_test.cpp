// Adversarial tests for the transport core's parallel round scheduler
// (comm/engine.h): CommStats must be bit-identical at every CC_THREADS
// setting, and exceptions raised on worker threads must propagate
// deterministically (lowest player wins, nothing committed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/locality_guard.h"
#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "comm/congest.h"
#include "comm/engine.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace cclique {
namespace {

/// Scoped CC_THREADS override. Engines read the variable when they first
/// schedule a round, so each protocol run constructs fresh engines.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("CC_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("CC_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("CC_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("CC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

Message bits_of(std::uint64_t v, int w) {
  Message m;
  m.push_uint(v, w);
  return m;
}

/// A fixed protocol exercising every engine and both round paths: a legacy
/// unicast round, chunked all-pairs payloads (round_fill), chunked
/// broadcasts, and a CONGEST round — all with a registered cut.
struct ProtocolStats {
  CommStats unicast;
  CommStats broadcast;
  CommStats congest;
};

ProtocolStats run_fixed_protocol() {
  ProtocolStats out;
  const int n = 12;
  {
    CliqueUnicast net(n, 16);
    std::vector<int> side(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) side[static_cast<std::size_t>(i)] = i % 2;
    net.set_cut(side);
    // Legacy round: deterministic per-pair messages of varying width.
    net.round(
        [&](int i) {
          std::vector<Message> box(static_cast<std::size_t>(n));
          for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            box[static_cast<std::size_t>(j)] =
                bits_of(static_cast<std::uint64_t>(i * n + j), 1 + (i + j) % 13);
          }
          return box;
        },
        [](int, const std::vector<Message>&) {});
    // Arena path: all-pairs payload streams of varying lengths.
    std::vector<std::vector<Message>> payload(
        static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        Message& m = payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        for (int t = 0; t < 5 + 7 * ((i + 3 * j) % 9); ++t) m.push_bit((i + j + t) % 3 == 0);
      }
    }
    std::vector<std::vector<Message>> received;
    unicast_payloads(net, payload, &received);
    // Spot-check delivery so the determinism test also proves transport.
    EXPECT_EQ(received[1][0], payload[0][1]);
    out.unicast = net.stats();
  }
  {
    CliqueBroadcast net(n, 8);
    std::vector<int> side(static_cast<std::size_t>(n), 0);
    side[0] = 1;
    net.set_cut(side);
    std::vector<Message> payloads(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int t = 0; t < 3 + 5 * (i % 4); ++t) {
        payloads[static_cast<std::size_t>(i)].push_bit((i + t) % 2 == 0);
      }
    }
    int rounds = 0;
    const auto assembled = broadcast_payloads(net, payloads, &rounds);
    EXPECT_EQ(assembled[3], payloads[3]);
    out.broadcast = net.stats();
  }
  {
    CongestUnicast net(cycle_graph(n), 6);
    net.round(
        [&](int v) {
          std::vector<Message> box(2);
          box[0] = bits_of(static_cast<std::uint64_t>(v), 5);
          box[1] = bits_of(static_cast<std::uint64_t>(v) + 1, 3 + v % 4);
          return box;
        },
        [](int, const std::vector<Message>&) {});
    out.congest = net.stats();
  }
  return out;
}

TEST(EngineDeterminism, CommStatsBitIdenticalAcrossThreadCounts) {
  ScopedThreads base("1");
  const ProtocolStats serial = run_fixed_protocol();
  // Fixed protocol sanity: something nontrivial was charged everywhere.
  EXPECT_GT(serial.unicast.total_bits, 0u);
  EXPECT_GT(serial.unicast.cut_bits, 0u);
  EXPECT_GT(serial.broadcast.cut_bits, 0u);
  EXPECT_GT(serial.congest.total_bits, 0u);
  for (const char* threads : {"2", "8"}) {
    ScopedThreads scoped(threads);
    const ProtocolStats parallel = run_fixed_protocol();
    // Every field, including cut_bits, max_edge_bits_in_round, and the
    // per-player vectors, must match the serial run exactly.
    EXPECT_EQ(parallel.unicast, serial.unicast) << "CC_THREADS=" << threads;
    EXPECT_EQ(parallel.broadcast, serial.broadcast) << "CC_THREADS=" << threads;
    EXPECT_EQ(parallel.congest, serial.congest) << "CC_THREADS=" << threads;
  }
}

TEST(EngineDeterminism, ModelViolationPropagatesFromWorkerThread) {
  ScopedThreads scoped("8");
  CliqueUnicast net(8, 4);
  const auto oversend = [&](int i) {
    std::vector<Message> box(8);
    if (i == 5) box[2] = bits_of(0, 5);  // 5 > 4 bits, raised on a worker
    return box;
  };
  EXPECT_THROW(net.round(oversend, [](int, const std::vector<Message>&) {}),
               ModelViolation);
  // A violating round commits nothing and leaves the engine usable.
  EXPECT_EQ(net.stats().rounds, 0);
  EXPECT_EQ(net.stats().total_bits, 0u);
  net.round([&](int) { return std::vector<Message>(8); },
            [](int, const std::vector<Message>&) {});
  EXPECT_EQ(net.stats().rounds, 1);
}

TEST(EngineDeterminism, ArenaOverflowThrowsFromWorkerThread) {
  ScopedThreads scoped("8");
  CliqueUnicast net(8, 4);
  EXPECT_THROW(net.round_fill(
                   [&](int i, Message* box) {
                     if (i == 3) box[6].push_uint(0, 5);  // past capacity 4
                   },
                   [](int, const std::vector<Message>&) {}),
               ModelViolation);
  EXPECT_EQ(net.stats().rounds, 0);
}

TEST(EngineDeterminism, LowestPlayerExceptionWinsAtEveryThreadCount) {
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreads scoped(threads);
    CliqueUnicast net(16, 8);
    // Two different players fail with different exception types; the
    // scheduler must always surface player 2's, regardless of which worker
    // observed its own failure first.
    const auto send = [&](int i) -> std::vector<Message> {
      if (i == 2) throw PreconditionError("player 2 failed");
      if (i == 9) throw InvariantError("player 9 failed");
      return std::vector<Message>(16);
    };
    EXPECT_THROW(net.round(send, [](int, const std::vector<Message>&) {}),
                 PreconditionError)
        << "CC_THREADS=" << threads;
  }
}

TEST(EngineDeterminism, LocalityViolationPropagatesAtEveryThreadCount) {
  // A cross-player access tripped by the locality guard must behave exactly
  // like every other worker-thread exception: it escapes the engine at any
  // CC_THREADS setting, the violating round commits nothing, and the engine
  // stays usable. In guard-off builds the same protocol runs untouched.
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreads scoped(threads);
    const int n = 12;
    CliqueUnicast net(n, 8);
    locality::PerPlayer<std::uint64_t> secret(
        n, CC_LOCALITY_SITE("thread-test secret"));
    const auto leaky_send = [&](int i) {
      std::vector<Message> box(static_cast<std::size_t>(n));
      if (i == 7) box[0] = bits_of(secret[4], 3);  // 7 reads 4's state
      return box;
    };
    const auto no_recv = [](int, const std::vector<Message>&) {};
    if (locality::enabled()) {
      EXPECT_THROW(net.round(leaky_send, no_recv), ModelViolation)
          << "CC_THREADS=" << threads;
      EXPECT_EQ(net.stats().rounds, 0) << "CC_THREADS=" << threads;
      EXPECT_EQ(net.stats().total_bits, 0u) << "CC_THREADS=" << threads;
    } else {
      EXPECT_NO_THROW(net.round(leaky_send, no_recv));
    }
    net.round([&](int) { return std::vector<Message>(static_cast<std::size_t>(n)); },
              no_recv);
    EXPECT_GE(net.stats().rounds, 1) << "CC_THREADS=" << threads;
  }
}

TEST(EngineDeterminism, LowestPlayerWinsForLocalityViolations) {
  if (!locality::enabled()) GTEST_SKIP() << "guard compiled out";
  // Two players violate the locality discipline in the same round; the
  // scheduler's lowest-player-wins rule applies to guard exceptions exactly
  // as it does to CC_* exceptions, so the surfaced message must name the
  // lower violator at every thread count.
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreads scoped(threads);
    const int n = 16;
    CliqueUnicast net(n, 8);
    locality::PerPlayer<std::uint64_t> secret(
        n, CC_LOCALITY_SITE("contested secret"));
    const auto send = [&](int i) {
      std::vector<Message> box(static_cast<std::size_t>(n));
      if (i == 3 || i == 11) box[0] = bits_of(secret[(i + 1) % n], 3);
      return box;
    };
    try {
      net.round(send, [](int, const std::vector<Message>&) {});
      FAIL() << "seeded violations must throw (CC_THREADS=" << threads << ")";
    } catch (const ModelViolation& e) {
      EXPECT_NE(std::string(e.what()).find("player 3"), std::string::npos)
          << "CC_THREADS=" << threads << ": " << e.what();
    }
    EXPECT_EQ(net.stats().rounds, 0) << "CC_THREADS=" << threads;
  }
}

TEST(EngineDeterminism, ThreadCountParsing) {
  {
    ScopedThreads scoped("3");
    EXPECT_EQ(cc_thread_count(), 3);
  }
  {
    ScopedThreads scoped("not-a-number");
    EXPECT_EQ(cc_thread_count(), 1);
  }
  {
    ScopedThreads scoped("-2");
    EXPECT_EQ(cc_thread_count(), 1);
  }
}

}  // namespace
}  // namespace cclique
