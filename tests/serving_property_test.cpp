// Property / differential fuzzer for the serving layer (core/query_service).
//
// Seeded random streams of interleaved point queries and graph mutations run
// against a QueryService while every answer is checked against independent
// ground truth: a per-version lazy oracle (Dijkstra distances, unit-weight
// BFS hop distances, brute-force triangle / 4-cycle counts straight off the
// adjacency structure) plus occasional fresh protocol cross-checks
// (apsp_run, triangle_count_algebraic) that bypass the cache entirely. On
// the first divergence the stream is shrunk by replaying prefixes into a
// fresh service and the minimal failing prefix is reported — a fuzzer
// counterexample is useless if it takes 10^4 ops to reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/algebraic_mm.h"
#include "core/apsp.h"
#include "core/query_service.h"
#include "graph/generators.h"
#include "linalg/tropical.h"
#include "util/rng.h"

namespace cclique {
namespace {

// ---------------------------------------------------------------------------
// Stream vocabulary: one op is either a query or a mutation. Mutations close
// the current batch (a batch never spans versions); queries accumulate into
// the open batch and are flushed in chunks.

struct Op {
  enum class Kind { kQuery, kAddEdge, kRemoveEdge } kind = Kind::kQuery;
  Query query;
  int u = 0;
  int v = 0;
  std::uint32_t w = 1;
};

std::string describe(const Op& op) {
  std::ostringstream os;
  switch (op.kind) {
    case Op::Kind::kAddEdge:
      os << "add(" << op.u << "," << op.v << ",w=" << op.w << ")";
      return os.str();
    case Op::Kind::kRemoveEdge:
      os << "remove(" << op.u << "," << op.v << ")";
      return os.str();
    case Op::Kind::kQuery:
      break;
  }
  const Query& q = op.query;
  switch (q.kind) {
    case QueryKind::kDist: os << "dist(" << q.u << "," << q.v << ")"; break;
    case QueryKind::kEcc: os << "ecc(" << q.v << ")"; break;
    case QueryKind::kDiameter: os << "diameter()"; break;
    case QueryKind::kRadius: os << "radius()"; break;
    case QueryKind::kTriangles: os << "triangles()"; break;
    case QueryKind::kFourCycles: os << "four_cycles()"; break;
    case QueryKind::kReach:
      os << "reach(" << q.u << "," << q.v << ",k=" << q.k << ")";
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Ground-truth oracle, rebuilt lazily per graph version from the *current*
// graph + weight assignment. Deliberately protocol-free: Dijkstra for both
// metrics and O(n^2)-per-pair combinatorics for the counts, so a bug in the
// matrix protocols cannot cancel against itself.

class Oracle {
 public:
  void invalidate() { fresh_ = false; }

  void ensure(const Graph& g, const std::vector<std::uint32_t>& weights) {
    if (fresh_) return;
    const int n = g.num_vertices();
    dist_ = apsp_dijkstra_reference(g, weights);
    const std::vector<std::uint32_t> unit(g.num_edges(), 1);
    hops_ = apsp_dijkstra_reference(g, unit);
    ecc_.assign(static_cast<std::size_t>(n), 0);
    diameter_ = 0;
    radius_ = n > 0 ? kTropicalInf : 0;
    for (int v = 0; v < n; ++v) {
      std::uint64_t e = 0;
      for (int u = 0; u < n; ++u) e = std::max(e, dist_.get(v, u));
      ecc_[static_cast<std::size_t>(v)] = e;
      diameter_ = std::max(diameter_, e);
      radius_ = std::min(radius_, e);
    }
    // #triangles = (1/3) sum over edges of |N(u) ∩ N(v)|.
    std::uint64_t tri3 = 0;
    for (const Edge& e : g.edges()) {
      tri3 += static_cast<std::uint64_t>(g.common_neighbor_count(e.u, e.v));
    }
    triangles_ = tri3 / 3;
    // #C4 = sum over unordered pairs {u,v} of C(codeg(u,v), 2) / 2 — each
    // 4-cycle is counted once per diagonal pair, and it has two diagonals.
    std::uint64_t c4_twice = 0;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        const std::uint64_t c =
            static_cast<std::uint64_t>(g.common_neighbor_count(u, v));
        c4_twice += c * (c - 1) / 2;
      }
    }
    four_cycles_ = c4_twice / 2;
    fresh_ = true;
  }

  std::uint64_t answer(const Query& q) const {
    switch (q.kind) {
      case QueryKind::kDist: return dist_.get(q.u, q.v);
      case QueryKind::kEcc: return ecc_[static_cast<std::size_t>(q.v)];
      case QueryKind::kDiameter: return diameter_;
      case QueryKind::kRadius: return radius_;
      case QueryKind::kTriangles: return triangles_;
      case QueryKind::kFourCycles: return four_cycles_;
      case QueryKind::kReach:
        if (q.u == q.v) return 1;
        return hops_.get(q.u, q.v) <= static_cast<std::uint64_t>(q.k) ? 1 : 0;
    }
    return 0;
  }

 private:
  bool fresh_ = false;
  TropicalMat dist_;
  TropicalMat hops_;
  std::vector<std::uint64_t> ecc_;
  std::uint64_t diameter_ = 0;
  std::uint64_t radius_ = 0;
  std::uint64_t triangles_ = 0;
  std::uint64_t four_cycles_ = 0;
};

// ---------------------------------------------------------------------------
// Stream generation and replay.

Query random_query(int n, Rng& rng) {
  const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
  const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
  switch (rng.uniform(10)) {
    case 0: return Query::ecc(v);
    case 1: return Query::diameter();
    case 2: return Query::radius();
    case 3: return Query::triangles();
    case 4: return Query::four_cycles();
    case 5:
    case 6:
      return Query::reach(u, v, static_cast<int>(rng.uniform(
                                    static_cast<std::uint64_t>(n) + 2)));
    default: return Query::dist(u, v);
  }
}

std::vector<Op> make_stream(int n, std::size_t ops, double mutate_p, Rng& rng) {
  std::vector<Op> stream;
  stream.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    Op op;
    if (rng.bernoulli(mutate_p) && n >= 2) {
      int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n - 1)));
      if (v >= u) ++v;
      const bool add = rng.bernoulli(0.5);
      op.kind = add ? Op::Kind::kAddEdge : Op::Kind::kRemoveEdge;
      op.u = u;
      op.v = v;
      op.w = static_cast<std::uint32_t>(1 + rng.uniform(1 << 8));
    } else {
      op.kind = Op::Kind::kQuery;
      op.query = random_query(n, rng);
    }
    stream.push_back(op);
  }
  return stream;
}

/// Replays ops [0, limit) into a fresh service, checking every flushed
/// answer against the oracle. Returns the index of the op whose batch first
/// diverged, or nullopt if the prefix replays clean. `flush_every` bounds
/// batch size so divergence localizes to a small window.
std::optional<std::size_t> replay(const Graph& g0,
                                  const std::vector<std::uint32_t>& w0,
                                  const std::vector<Op>& stream,
                                  std::size_t limit, std::size_t flush_every,
                                  std::string* detail) {
  QueryService svc(g0, w0);
  Oracle oracle;
  std::vector<std::uint32_t> weights = w0;

  QueryBatch batch = svc.new_batch();
  std::vector<std::size_t> batch_ops;  // stream index of each pushed query

  auto flush = [&]() -> std::optional<std::size_t> {
    if (batch.size() == 0) return std::nullopt;
    oracle.ensure(svc.graph(), weights);
    const BatchResult r = svc.answer(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::uint64_t want = oracle.answer(batch.queries()[i]);
      if (r.answers[i] != want) {
        if (detail != nullptr) {
          std::ostringstream os;
          os << describe(stream[batch_ops[i]]) << " => " << r.answers[i]
             << ", oracle says " << want;
          *detail = os.str();
        }
        return batch_ops[i];
      }
    }
    batch = svc.new_batch();
    batch_ops.clear();
    return std::nullopt;
  };

  // Keeps the edges()-aligned weight vector the oracle consumes in lockstep
  // with the service's mutations (the service keeps its own copy; the
  // oracle needs a twin). Call after a successful add_edge.
  auto sync_weights_after_add = [&](int u, int v, std::uint32_t w) {
    const int cu = std::min(u, v), cv = std::max(u, v);
    std::size_t pos = 0;
    for (const Edge& e : svc.graph().edges()) {
      if (e.u == cu && e.v == cv) break;
      ++pos;
    }
    weights.insert(weights.begin() + static_cast<std::ptrdiff_t>(pos), w);
  };

  for (std::size_t i = 0; i < limit && i < stream.size(); ++i) {
    const Op& op = stream[i];
    switch (op.kind) {
      case Op::Kind::kQuery:
        batch.push(op.query);
        batch_ops.push_back(i);
        if (batch.size() >= flush_every) {
          if (auto bad = flush()) return bad;
        }
        break;
      case Op::Kind::kAddEdge: {
        if (auto bad = flush()) return bad;
        if (svc.add_edge(op.u, op.v, op.w)) {
          sync_weights_after_add(op.u, op.v, op.w);
          oracle.invalidate();
        }
        batch = svc.new_batch();
        batch_ops.clear();
        break;
      }
      case Op::Kind::kRemoveEdge: {
        if (auto bad = flush()) return bad;
        const int cu = std::min(op.u, op.v);
        const int cv = std::max(op.u, op.v);
        // Capture the removed edge's position before mutating.
        std::size_t pos = 0;
        bool found = false;
        for (const Edge& e : svc.graph().edges()) {
          if (e.u == cu && e.v == cv) {
            found = true;
            break;
          }
          ++pos;
        }
        if (svc.remove_edge(op.u, op.v) && found) {
          weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(pos));
          oracle.invalidate();
        }
        batch = svc.new_batch();
        batch_ops.clear();
        break;
      }
    }
  }
  return flush();
}

/// Shrinks a failing stream to the shortest prefix that still diverges and
/// reports it. Prefix replay is the right shrinker here because the state is
/// a fold over the stream — any failing prefix is a complete reproducer.
void shrink_and_fail(const Graph& g0, const std::vector<std::uint32_t>& w0,
                     const std::vector<Op>& stream, std::size_t first_bad,
                     std::size_t flush_every, const std::string& graph_name) {
  std::size_t lo = 0, hi = first_bad + 1;  // replay of hi ops must fail
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (replay(g0, w0, stream, mid, flush_every, nullptr).has_value()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::string detail;
  replay(g0, w0, stream, hi, flush_every, &detail);
  std::ostringstream os;
  os << "serving diverged on graph '" << graph_name << "' — minimal failing "
     << "prefix is " << hi << " ops: " << detail << "\nprefix tail:";
  const std::size_t start = hi >= 12 ? hi - 12 : 0;
  for (std::size_t i = start; i < hi && i < stream.size(); ++i) {
    os << "\n  [" << i << "] " << describe(stream[i]);
  }
  FAIL() << os.str();
}

struct NamedGraph {
  std::string name;
  Graph g;
};

std::vector<NamedGraph> generator_zoo(Rng& rng) {
  std::vector<NamedGraph> zoo;
  zoo.push_back({"complete_8", complete_graph(8)});
  zoo.push_back({"cycle_11", cycle_graph(11)});
  zoo.push_back({"path_12", path_graph(12)});
  zoo.push_back({"star_10", star_graph(10)});
  zoo.push_back({"bipartite_5_6", complete_bipartite(5, 6)});
  zoo.push_back({"gnp_sparse", gnp(14, 0.15, rng)});
  zoo.push_back({"gnp_dense", gnp(12, 0.6, rng)});
  zoo.push_back({"gnm_13_20", gnm(13, 20, rng)});
  zoo.push_back({"tree_15", random_tree(15, rng)});
  Graph planted = gnp(12, 0.2, rng);
  plant_subgraph(planted, complete_graph(4), rng);
  zoo.push_back({"planted_k4", shuffled(planted, rng)});
  zoo.push_back({"singleton", Graph(1)});
  zoo.push_back({"empty_6", Graph(6)});
  return zoo;
}

// ---------------------------------------------------------------------------
// The fuzzers.

TEST(ServingProperty, DifferentialFuzzAgainstLazyOracle) {
  Rng zoo_rng(2026);
  const std::vector<NamedGraph> zoo = generator_zoo(zoo_rng);
  ASSERT_GE(zoo.size(), 10u);
  std::size_t total_ops = 0;
  for (std::size_t gi = 0; gi < zoo.size(); ++gi) {
    const NamedGraph& ng = zoo[gi];
    Rng rng(7000 + gi);
    std::vector<std::uint32_t> w(ng.g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(1 + rng.uniform(1 << 8));
    // ~900 ops per graph across the 12-graph zoo -> >= 10^4 mixed ops total.
    const std::size_t ops = 900;
    const std::vector<Op> stream =
        make_stream(ng.g.num_vertices(), ops, /*mutate_p=*/0.04, rng);
    total_ops += stream.size();
    std::string detail;
    const auto bad =
        replay(ng.g, w, stream, stream.size(), /*flush_every=*/16, &detail);
    if (bad.has_value()) {
      shrink_and_fail(ng.g, w, stream, *bad, 16, ng.name);
    }
  }
  EXPECT_GE(total_ops, 10000u);
}

TEST(ServingProperty, MutationHeavyFuzzSmallGraphs) {
  // High mutation rate on tiny graphs stresses invalidation, revert-to-hit,
  // and the empty/disconnected edge of every artifact class.
  for (int n : {2, 3, 5}) {
    Rng rng(static_cast<std::uint64_t>(900 + n));
    Graph g(n);
    const std::vector<Op> stream = make_stream(n, 700, /*mutate_p=*/0.35, rng);
    std::string detail;
    const auto bad = replay(g, {}, stream, stream.size(), 4, &detail);
    if (bad.has_value()) {
      std::ostringstream name;
      name << "mutation_heavy_n" << n;
      shrink_and_fail(g, {}, stream, *bad, 4, name.str());
    }
  }
}

TEST(ServingProperty, CrossCheckAgainstFreshProtocolRuns) {
  // The lazy oracle is protocol-free; this leg closes the loop against the
  // protocols themselves. Fresh engines, no cache — served answers must
  // match a from-scratch apsp_run / counting run after every mutation.
  Rng rng(4242);
  Graph g = gnp(13, 0.3, rng);
  std::vector<std::uint32_t> w(g.num_edges());
  for (auto& x : w) x = static_cast<std::uint32_t>(1 + rng.uniform(100));
  QueryService svc(g, w);
  // Mirror the service's weight vector through the mutations below so each
  // fresh run sees exactly the state the service serves from.
  std::vector<std::uint32_t> weights = w;
  auto check_all = [&]() {
    const Graph& cur = svc.graph();
    const int n = cur.num_vertices();
    CliqueUnicast apsp_net(n, 64);
    const ApspResult direct = apsp_run(apsp_net, cur, weights);
    CliqueUnicast count_net(n, 64);
    const AlgebraicCountResult tri = triangle_count_algebraic(count_net, cur);
    const AlgebraicCountResult c4 = four_cycle_count_algebraic(count_net, cur);
    QueryBatch batch = svc.new_batch();
    for (int u = 0; u < n; ++u) batch.push(Query::dist(u, (u * 5 + 1) % n));
    batch.push(Query::diameter());
    batch.push(Query::radius());
    batch.push(Query::triangles());
    batch.push(Query::four_cycles());
    const BatchResult r = svc.answer(batch);
    std::size_t i = 0;
    for (int u = 0; u < n; ++u) {
      ASSERT_EQ(r.answers[i++], direct.dist.get(u, (u * 5 + 1) % n)) << "u=" << u;
    }
    ASSERT_EQ(r.answers[i++], direct.diameter);
    ASSERT_EQ(r.answers[i++], direct.radius);
    ASSERT_EQ(r.answers[i++], tri.count);
    ASSERT_EQ(r.answers[i++], c4.count);
  };

  check_all();
  // Mutate (tracking weights), re-check from fresh protocol runs each time.
  for (int step = 0; step < 5; ++step) {
    int u = static_cast<int>(rng.uniform(13));
    int v = static_cast<int>(rng.uniform(12));
    if (v >= u) ++v;
    const int cu = std::min(u, v), cv = std::max(u, v);
    if (svc.graph().has_edge(u, v)) {
      std::size_t pos = 0;
      for (const Edge& e : svc.graph().edges()) {
        if (e.u == cu && e.v == cv) break;
        ++pos;
      }
      ASSERT_TRUE(svc.remove_edge(u, v));
      weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(pos));
    } else {
      const auto wt = static_cast<std::uint32_t>(1 + rng.uniform(100));
      ASSERT_TRUE(svc.add_edge(u, v, wt));
      std::size_t pos = 0;
      for (const Edge& e : svc.graph().edges()) {
        if (e.u == cu && e.v == cv) break;
        ++pos;
      }
      weights.insert(weights.begin() + static_cast<std::ptrdiff_t>(pos), wt);
    }
    check_all();
  }
}

}  // namespace
}  // namespace cclique
