// Tests for the circuit substrate: gate semantics, Definition 1
// separability, layering, builders, and the GF(2) matrix circuits.
#include <gtest/gtest.h>

#include <tuple>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "circuit/mm_circuit.h"
#include "graph/generators.h"
#include "linalg/f2matrix.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(Circuit, AndOrXorSemantics) {
  Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  c.mark_output(c.add_gate(GateKind::kAnd, {a, b}));
  c.mark_output(c.add_gate(GateKind::kOr, {a, b}));
  c.mark_output(c.add_gate(GateKind::kXor, {a, b}));
  c.mark_output(c.add_not(a));
  for (int x = 0; x < 4; ++x) {
    const bool va = x & 1, vb = x & 2;
    auto out = c.evaluate({va, vb});
    EXPECT_EQ(out[0], va && vb);
    EXPECT_EQ(out[1], va || vb);
    EXPECT_EQ(out[2], va != vb);
    EXPECT_EQ(out[3], !va);
  }
}

TEST(Circuit, ModGateSemantics) {
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(c.add_input());
  c.mark_output(c.add_mod(ins, 3));
  for (int x = 0; x < 32; ++x) {
    std::vector<bool> v;
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      v.push_back((x >> i) & 1);
      ones += (x >> i) & 1;
    }
    EXPECT_EQ(c.evaluate(v)[0], ones % 3 == 0);
  }
}

TEST(Circuit, ThresholdGateSemantics) {
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(c.add_input());
  c.mark_output(c.add_threshold(ins, 4));
  for (int x = 0; x < 64; ++x) {
    std::vector<bool> v;
    int ones = 0;
    for (int i = 0; i < 6; ++i) {
      v.push_back((x >> i) & 1);
      ones += (x >> i) & 1;
    }
    EXPECT_EQ(c.evaluate(v)[0], ones >= 4);
  }
}

TEST(Circuit, LutGateSemantics) {
  Circuit c;
  const int a = c.add_input();
  const int b = c.add_input();
  // LUT for implication a -> b: table indexed by (b << 1) | a.
  c.mark_output(c.add_lut({a, b}, {true, false, true, true}));
  EXPECT_TRUE(c.evaluate({false, false})[0]);
  EXPECT_FALSE(c.evaluate({true, false})[0]);
  EXPECT_TRUE(c.evaluate({false, true})[0]);
  EXPECT_TRUE(c.evaluate({true, true})[0]);
}

TEST(Circuit, ConstGates) {
  Circuit c;
  c.mark_output(c.add_const(true));
  c.mark_output(c.add_const(false));
  auto out = c.evaluate({});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(Circuit, WireAndLayerAccounting) {
  Circuit c = parity_tree(16, 4);
  EXPECT_EQ(c.num_inputs(), 16);
  // 16 leaves -> 4 XOR4 -> 1 XOR4: wires = 16 + 4 = 20, depth 2.
  EXPECT_EQ(c.num_wires(), 20u);
  EXPECT_EQ(c.depth(), 2);
  auto layers = c.layers();
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0].size(), 16u);
  EXPECT_EQ(layers[1].size(), 4u);
  EXPECT_EQ(layers[2].size(), 1u);
}

// Definition 1 invariant: for random partitions of a gate's in-wires,
// combine(partials) must equal direct evaluation, and each partial must fit
// separability_bits().
class SeparabilityTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(SeparabilityTest, PartitionInvariance) {
  Rng rng(42);
  const GateKind kind = GetParam();
  for (int fanin : {1, 2, 5, 9}) {
    Circuit c;
    std::vector<int> ins;
    for (int i = 0; i < fanin; ++i) ins.push_back(c.add_input());
    int gid = -1;
    switch (kind) {
      case GateKind::kAnd:
      case GateKind::kOr:
      case GateKind::kXor:
        gid = c.add_gate(kind, ins);
        break;
      case GateKind::kMod:
        gid = c.add_mod(ins, 3);
        break;
      case GateKind::kThreshold:
        gid = c.add_threshold(ins, (fanin + 1) / 2);
        break;
      default:
        FAIL() << "unsupported parameterization";
    }
    const int bits = c.separability_bits(gid);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> values(static_cast<std::size_t>(fanin));
      for (auto&& v : values) v = rng.coin();
      // Random partition into up to 3 parts.
      std::vector<std::vector<int>> parts(3);
      for (int i = 0; i < fanin; ++i) {
        parts[rng.uniform(3)].push_back(i);
      }
      std::vector<PartAggregate> aggs;
      for (const auto& part : parts) {
        if (part.empty()) continue;
        std::vector<bool> pv;
        for (int pos : part) pv.push_back(values[static_cast<std::size_t>(pos)]);
        PartAggregate agg = c.partial_aggregate(gid, part, pv);
        EXPECT_LE(agg.bits, bits);
        if (agg.bits < 64) {
          EXPECT_EQ(agg.value >> agg.bits, 0u) << "aggregate overflows its width";
        }
        aggs.push_back(agg);
      }
      EXPECT_EQ(c.combine(gid, aggs), c.eval_gate(gid, values));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSeparableKinds, SeparabilityTest,
                         ::testing::Values(GateKind::kAnd, GateKind::kOr,
                                           GateKind::kXor, GateKind::kMod,
                                           GateKind::kThreshold));

TEST(Circuit, SeparabilityBitsMatchPaper) {
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < 63; ++i) ins.push_back(c.add_input());
  EXPECT_EQ(c.separability_bits(c.add_gate(GateKind::kAnd, ins)), 1);
  EXPECT_EQ(c.separability_bits(c.add_mod(ins, 6)), 3);       // ceil(log2 6)
  EXPECT_EQ(c.separability_bits(c.add_threshold(ins, 10)), 6);  // ceil(log2 64)
}

TEST(Builders, ParityTreeComputesParity) {
  Rng rng(1);
  for (int fanin : {2, 3, 7}) {
    Circuit c = parity_tree(20, fanin);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> v(20);
      bool parity = false;
      for (auto&& x : v) {
        const bool bit = rng.coin();
        x = bit;
        parity = parity != bit;
      }
      EXPECT_EQ(c.evaluate(v)[0], parity);
    }
  }
}

TEST(Builders, MajorityMatchesDefinition) {
  Rng rng(2);
  Circuit c = majority(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> v(9);
    int ones = 0;
    for (auto&& x : v) {
      const bool bit = rng.coin();
      x = bit;
      ones += bit;
    }
    EXPECT_EQ(c.evaluate(v)[0], ones >= 5);
  }
}

TEST(Builders, ModModCircuitDepth2) {
  Rng rng(3);
  Circuit c = mod_mod_circuit(30, 6, 10, 8, rng);
  EXPECT_EQ(c.depth(), 2);
  // Evaluate once to ensure structural validity.
  std::vector<bool> v(30, true);
  c.evaluate(v);
}

TEST(Builders, RandomLayeredCircuitEvaluates) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    Circuit c = random_layered_circuit(10, 8, 4, 5, rng);
    EXPECT_EQ(c.depth(), 5);  // 4 layers + output XOR
    std::vector<bool> v(10);
    for (auto&& x : v) x = rng.coin();
    c.evaluate(v);
  }
}

// The GF(2) matrix circuits must agree with the numeric library for both
// the naive and Strassen builds.
class MmCircuitTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MmCircuitTest, MatchesNumericProduct) {
  const auto [n, strassen] = GetParam();
  Rng rng(100 + n);
  Circuit c = f2_matmul_circuit(n, strassen);
  for (int trial = 0; trial < 3; ++trial) {
    const F2Matrix a = F2Matrix::random(n, rng);
    const F2Matrix b = F2Matrix::random(n, rng);
    std::vector<bool> inputs;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) inputs.push_back(a.get(i, j));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) inputs.push_back(b.get(i, j));
    }
    const auto out = c.evaluate(inputs);
    const F2Matrix expect = f2_multiply_naive(a, b);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(out[static_cast<std::size_t>(i * n + j)], expect.get(i, j))
            << "entry (" << i << "," << j << ") n=" << n << " strassen=" << strassen;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgorithms, MmCircuitTest,
    ::testing::Values(std::make_tuple(1, false), std::make_tuple(2, false),
                      std::make_tuple(3, false), std::make_tuple(4, true),
                      std::make_tuple(5, true), std::make_tuple(7, true),
                      std::make_tuple(8, true)));

TEST(MmCircuit, StrassenHasSubcubicWires) {
  const std::size_t w16 = f2_matmul_circuit(16, true).num_wires();
  const std::size_t w32 = f2_matmul_circuit(32, true).num_wires();
  // Strassen growth factor per doubling is 7 (plus O(n^2) additions);
  // naive would be 8. Accept anything clearly below 7.8.
  const double factor = static_cast<double>(w32) / static_cast<double>(w16);
  EXPECT_LT(factor, 7.8);
  EXPECT_GT(factor, 5.0);
}

TEST(MmCircuit, OddSizeWireCostTracksEvenNeighbor) {
  // Regression for the odd-size bailout: an odd n must cost about what its
  // even neighbors cost, not the next power of two (n=33 used to pad to 64,
  // ~7x the wires) and not the cubic naive block.
  const std::size_t w32 = f2_matmul_circuit(32, true).num_wires();
  const std::size_t w33 = f2_matmul_circuit(33, true).num_wires();
  const std::size_t w34 = f2_matmul_circuit(34, true).num_wires();
  EXPECT_LE(w32, w33);
  EXPECT_LE(w33, w34 + w34 / 8);  // within the per-level padding slack
  EXPECT_LT(static_cast<double>(w33), 1.6 * static_cast<double>(w32));
}

TEST(TriangleWitnessCircuit, SoundOnTriangleFree) {
  Rng rng(5);
  Circuit c = triangle_witness_circuit(8, 6, rng);
  // Bipartite graph: no triangles; witness must be 0 for any masks.
  Graph g = complete_bipartite(4, 4);
  std::vector<bool> inputs(64, false);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      inputs[static_cast<std::size_t>(i * 8 + j)] = i != j && g.has_edge(i, j);
    }
  }
  EXPECT_FALSE(c.evaluate(inputs)[0]);
}

TEST(TriangleWitnessCircuit, CompleteOnTriangles) {
  Rng rng(6);
  // K_8 has many triangles; with 8 reps failure prob (3/4)^8 < 0.1 per
  // circuit; use 3 independent circuits to make the test robust.
  Graph g = complete_graph(8);
  std::vector<bool> inputs(64, false);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      inputs[static_cast<std::size_t>(i * 8 + j)] = i != j;
    }
  }
  bool any = false;
  for (int t = 0; t < 3 && !any; ++t) {
    Circuit c = triangle_witness_circuit(8, 8, rng);
    any = c.evaluate(inputs)[0];
  }
  EXPECT_TRUE(any);
}

TEST(Circuit, DagOrderEnforced) {
  Circuit c;
  EXPECT_THROW(c.add_not(0), PreconditionError);  // no gate 0 yet
}

}  // namespace
}  // namespace cclique
