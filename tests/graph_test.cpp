// Unit tests for the graph substrate: core structure, generators,
// degeneracy, Lemma 8 sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sampling.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddEdgeIsSymmetricAndIdempotent) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(1, 3));
  EXPECT_FALSE(g.add_edge(3, 1));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(2, 2), PreconditionError);
}

TEST(Graph, RemoveEdge) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  EXPECT_EQ(g.neighbors(2), (std::vector<int>{0, 3, 4}));
  EXPECT_EQ(g.degree(2), 3);
}

TEST(Graph, EdgesCanonicalOrder) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  auto e = g.edges();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], Edge(0, 2));
  EXPECT_EQ(e[1], Edge(1, 3));
}

TEST(Graph, InducedSubgraph) {
  Graph g = complete_graph(5);
  Graph sub = g.induced_subgraph({0, 2, 4});
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 3u);
}

TEST(Graph, RelabelPreservesStructure) {
  Rng rng(1);
  Graph g = gnp(20, 0.3, rng);
  std::vector<int> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  Graph h = g.relabeled(perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(h.has_edge(perm[static_cast<std::size_t>(e.u)],
                           perm[static_cast<std::size_t>(e.v)]));
  }
}

TEST(Graph, DisjointUnion) {
  Graph a = complete_graph(3);
  Graph b = cycle_graph(4);
  Graph u = a.disjoint_union(b);
  EXPECT_EQ(u.num_vertices(), 7);
  EXPECT_EQ(u.num_edges(), a.num_edges() + b.num_edges());
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(3, 4));
  EXPECT_FALSE(u.has_edge(0, 3));
}

TEST(Graph, CommonNeighborCount) {
  Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  EXPECT_EQ(g.common_neighbor_count(0, 1), 2);
}

TEST(Generators, CompleteGraph) {
  Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5);
}

TEST(Generators, CycleAndPath) {
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(star_graph(5).degree(0), 4);
}

TEST(Generators, CompleteBipartite) {
  Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_FALSE(g.has_edge(0, 1));  // within left side
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Generators, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, GnpDensity) {
  Rng rng(3);
  Graph g = gnp(60, 0.25, rng);
  const double expect = 0.25 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expect, expect * 0.25);
}

TEST(Generators, GnmExactCount) {
  Rng rng(4);
  EXPECT_EQ(gnm(20, 57, rng).num_edges(), 57u);
  EXPECT_EQ(gnm(10, 45, rng).num_edges(), 45u);  // complete
  EXPECT_EQ(gnm(10, 40, rng).num_edges(), 40u);  // dense path
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  for (int n : {1, 2, 3, 10, 50}) {
    Graph t = random_tree(n, rng);
    EXPECT_EQ(t.num_edges(), static_cast<std::size_t>(n - 1));
    // Connectivity via peeling: a tree has degeneracy 1.
    if (n >= 2) {
      EXPECT_EQ(compute_degeneracy(t).degeneracy, 1);
    }
  }
}

TEST(Generators, PlantSubgraphCreatesCopy) {
  Rng rng(6);
  Graph g(20);
  Graph h = complete_graph(4);
  auto image = plant_subgraph(g, h, rng);
  ASSERT_EQ(image.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(g.has_edge(image[i], image[j]));
    }
  }
}

TEST(Degeneracy, EmptyAndSingleton) {
  EXPECT_EQ(compute_degeneracy(Graph(0)).degeneracy, 0);
  EXPECT_EQ(compute_degeneracy(Graph(1)).degeneracy, 0);
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(compute_degeneracy(complete_graph(7)).degeneracy, 6);
  EXPECT_EQ(compute_degeneracy(cycle_graph(9)).degeneracy, 2);
  EXPECT_EQ(compute_degeneracy(path_graph(9)).degeneracy, 1);
  EXPECT_EQ(compute_degeneracy(star_graph(9)).degeneracy, 1);
  EXPECT_EQ(compute_degeneracy(complete_bipartite(3, 8)).degeneracy, 3);
}

TEST(Degeneracy, OrderIsWitness) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(40, 0.2, rng);
    auto res = compute_degeneracy(g);
    EXPECT_TRUE(is_elimination_order(g, res.order, res.degeneracy));
    // Minimality: no witness for k-1 should follow from the definition;
    // check the weaker sanity that a too-small k fails for this order.
    if (res.degeneracy > 0) {
      EXPECT_FALSE(is_elimination_order(g, res.order, res.degeneracy - 1) &&
                   true)
          << "bucket order should be tight for its own degeneracy";
    }
  }
}

TEST(Degeneracy, MonotoneUnderSubgraphs) {
  Rng rng(8);
  Graph g = gnp(30, 0.3, rng);
  const int k = compute_degeneracy(g).degeneracy;
  std::vector<int> some(15);
  std::iota(some.begin(), some.end(), 0);
  EXPECT_LE(compute_degeneracy(g.induced_subgraph(some)).degeneracy, k);
}

TEST(Sampling, LevelZeroIsIdentity) {
  Rng rng(9);
  Graph g = gnp(30, 0.4, rng);
  auto x = draw_sampling_values(30, rng);
  EXPECT_EQ(mod_sampled_subgraph(g, x, 0), g);
}

TEST(Sampling, LevelsAreNested) {
  Rng rng(10);
  Graph g = gnp(40, 0.5, rng);
  auto x = draw_sampling_values(40, rng);
  auto levels = mod_sampled_hierarchy(g, x);
  for (std::size_t j = 1; j < levels.size(); ++j) {
    for (const Edge& e : levels[j].edges()) {
      EXPECT_TRUE(levels[j - 1].has_edge(e.u, e.v))
          << "G_" << j << " must be a subgraph of G_" << j - 1;
    }
  }
}

TEST(Sampling, EdgeSurvivalRateNearTwoPowMinusJ) {
  Rng rng(11);
  Graph g = complete_graph(64);
  double total0 = 0, total2 = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    auto x = draw_sampling_values(64, rng);
    total0 += static_cast<double>(mod_sampled_subgraph(g, x, 1).num_edges());
    total2 += static_cast<double>(mod_sampled_subgraph(g, x, 2).num_edges());
  }
  const double m = static_cast<double>(g.num_edges());
  EXPECT_NEAR(total0 / trials / m, 0.5, 0.05);
  EXPECT_NEAR(total2 / trials / m, 0.25, 0.05);
}

// Lemma 8 headline property: degeneracy of G_j concentrates around k 2^-j
// while k 2^-j stays above the log n noise floor.
TEST(Sampling, Lemma8DegeneracyConcentration) {
  Rng rng(12);
  // A graph with large, well-defined degeneracy: K_48 plus a sparse fringe.
  Graph g = complete_graph(48).disjoint_union(path_graph(16));
  const int k = compute_degeneracy(g).degeneracy;
  ASSERT_EQ(k, 47);
  double ratio_sum = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    auto x = draw_sampling_values(g.num_vertices(), rng);
    const int kj = compute_degeneracy(mod_sampled_subgraph(g, x, 1)).degeneracy;
    ratio_sum += static_cast<double>(kj) / (static_cast<double>(k) / 2.0);
  }
  // Concentration is modest at this scale; 0.9..1.1 is the paper's w.h.p.
  // band for k 2^-j >= c log n, we allow a wider empirical band.
  EXPECT_NEAR(ratio_sum / trials, 1.0, 0.25);
}

}  // namespace
}  // namespace cclique
