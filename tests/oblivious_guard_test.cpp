// Negative-test suite for the runtime obliviousness guard
// (analysis/oblivious_guard.h): payload reads seeded inside engine length
// sinks must throw ModelViolation in CCLIQUE_OBLIVIOUS builds, naming both
// the source accessor and the sink, and the same protocols must be
// untouched in default builds (the guard compiles to nothing). The tests
// branch on oblivious::enabled() so one source covers both build modes,
// mirroring locality_guard_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "comm/congest.h"
#include "comm/nof.h"
#include "comm/two_party.h"
#include "core/algebraic_mm.h"
#include "core/apsp.h"
#include "core/mst.h"
#include "graph/generators.h"
#include "linalg/mat61.h"
#include "linalg/tropical.h"
#include "util/check.h"

namespace cclique {
namespace {

/// Scoped CC_THREADS override (same shape as engine_determinism_test.cpp).
/// Engines read the variable when they first schedule a round, so each
/// protocol run constructs fresh engines.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("CC_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("CC_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("CC_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("CC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

Message bits_of(std::uint64_t v, int w) {
  Message m;
  m.push_uint(v, w);
  return m;
}

Mat61 counting_matrix(int n) {
  Mat61 a(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a.set(i, j, static_cast<std::uint64_t>(i * n + j + 1));
    }
  }
  return a;
}

TEST(ObliviousGuard, ScopeTracksActiveSinkWhenEnabled) {
  EXPECT_EQ(oblivious::active_sink(), nullptr);
  {
    oblivious::SinkScope outer("outer sink");
    if (oblivious::enabled()) {
      EXPECT_STREQ(oblivious::active_sink(), "outer sink");
      {
        oblivious::SinkScope inner("inner sink");
        EXPECT_STREQ(oblivious::active_sink(), "inner sink");
      }
      // Nested scopes restore the previous sink, not "no sink".
      EXPECT_STREQ(oblivious::active_sink(), "outer sink");
    } else {
      EXPECT_EQ(oblivious::active_sink(), nullptr);
    }
  }
  EXPECT_EQ(oblivious::active_sink(), nullptr);
}

TEST(ObliviousGuard, PayloadReadsOutsideSinksAreFree) {
  // Orchestrator-level reads (payload building, decoding, result checks)
  // are unrestricted in every build.
  const Mat61 a = counting_matrix(4);
  EXPECT_NO_THROW(a.get(1, 2));
  EXPECT_NO_THROW(a.row(3));
  EXPECT_NO_THROW(a.data());
}

TEST(ObliviousGuard, TaintedReadInsideSinkNamesSourceAndSink) {
  const Mat61 a = counting_matrix(4);
  oblivious::SinkScope sink("test length sink");
  if (!oblivious::enabled()) {
    EXPECT_NO_THROW(a.get(0, 0));
    return;
  }
  try {
    a.get(0, 0);
    FAIL() << "payload read inside a sink must throw";
  } catch (const ModelViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Mat61::get"), std::string::npos) << what;
    EXPECT_NE(what.find("mat61.h"), std::string::npos) << what;
    EXPECT_NE(what.find("test length sink"), std::string::npos) << what;
    EXPECT_NE(what.find("declared_dependence"), std::string::npos) << what;
  }
}

TEST(ObliviousGuard, DeclaredDependenceSuppressesAndCounts) {
  const Mat61 a = counting_matrix(3);
  const TropicalMat t(3);
  oblivious::SinkScope sink("declared test sink");
  const std::uint64_t before = oblivious::declared_use_count();
  {
    [[maybe_unused]] auto dd = oblivious::declared_dependence(
        CC_OBLIVIOUS_SITE("test sparse schedule"));
    EXPECT_NO_THROW(a.get(1, 1));
    EXPECT_NO_THROW(t.get(2, 2));
  }
  if (oblivious::enabled()) {
    // Both reads were counted, and the declaration does not outlive its
    // scope: the next read throws again.
    EXPECT_EQ(oblivious::declared_use_count(), before + 2);
    EXPECT_THROW(a.get(0, 2), ModelViolation);
  } else {
    EXPECT_EQ(oblivious::declared_use_count(), 0u);
    EXPECT_NO_THROW(a.get(0, 2));
  }
}

// --- seeded violations through the real engines -------------------------

TEST(ObliviousGuard, UnicastSendCallbackCannotSizeMessagesFromPayload) {
  const int n = 6;
  CliqueUnicast net(n, 16);
  const Mat61 payload = counting_matrix(n);
  const auto leaky_send = [&](int i) {
    std::vector<Message> box(static_cast<std::size_t>(n));
    // Planted violation: the emitted length is a function of a matrix
    // entry, so the round count would leak payload values.
    const int w = 1 + static_cast<int>(payload.get(i, (i + 1) % n) % 7);
    box[static_cast<std::size_t>((i + 1) % n)] = bits_of(0, w);
    return box;
  };
  const auto no_recv = [](int, const std::vector<Message>&) {};
  if (oblivious::enabled()) {
    EXPECT_THROW(net.round(leaky_send, no_recv), ModelViolation);
    // The violating round commits nothing and the engine stays usable.
    EXPECT_EQ(net.stats().rounds, 0);
    EXPECT_EQ(net.stats().total_bits, 0u);
  } else {
    EXPECT_NO_THROW(net.round(leaky_send, no_recv));
    EXPECT_EQ(net.stats().rounds, 1);
  }
  net.round([&](int) { return std::vector<Message>(static_cast<std::size_t>(n)); },
            no_recv);
}

TEST(ObliviousGuard, UnicastFillCallbackIsASinkToo) {
  const int n = 4;
  CliqueUnicast net(n, 16);
  const TropicalMat dist = TropicalMat::from_weighted_graph(
      cycle_graph(n), std::vector<std::uint32_t>(
                          static_cast<std::size_t>(cycle_graph(n).num_edges()), 2));
  const auto leaky_fill = [&](int i, Message* box) {
    // Planted violation: branching on a distance entry decides whether a
    // message is sent at all.
    if (i == 2 && dist.get(2, 3) < kTropicalInf) box[0] = bits_of(1, 3);
  };
  const auto no_recv = [](int, const std::vector<Message>&) {};
  if (oblivious::enabled()) {
    try {
      net.round_fill(leaky_fill, no_recv);
      FAIL() << "payload-dependent fill must throw";
    } catch (const ModelViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("TropicalMat::get"), std::string::npos) << what;
      EXPECT_NE(what.find("CLIQUE-UCAST fill callback"), std::string::npos) << what;
    }
  } else {
    EXPECT_NO_THROW(net.round_fill(leaky_fill, no_recv));
  }
}

TEST(ObliviousGuard, BroadcastCallbackIsASink) {
  const int n = 4;
  CliqueBroadcast net(n, 16);
  const Mat61 payload = counting_matrix(n);
  const auto leaky_bcast = [&](int i) {
    return bits_of(0, 1 + static_cast<int>(payload.get(i, i) % 5));
  };
  if (oblivious::enabled()) {
    try {
      net.round(leaky_bcast);
      FAIL() << "payload-dependent broadcast length must throw";
    } catch (const ModelViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("Mat61::get"), std::string::npos) << what;
      EXPECT_NE(what.find("CLIQUE-BCAST send callback"), std::string::npos) << what;
    }
    EXPECT_EQ(net.stats().rounds, 0);
  } else {
    EXPECT_NO_THROW(net.round(leaky_bcast));
  }
}

TEST(ObliviousGuard, CongestCallbackIsASink) {
  const int n = 6;
  const Graph g = cycle_graph(n);
  CongestUnicast net(g, 16);
  const Mat61 payload = counting_matrix(n);
  const auto leaky_send = [&](int v) {
    std::vector<Message> box(2);
    if (v == 3) box[0] = bits_of(0, 1 + static_cast<int>(payload.get(3, 4) % 3));
    return box;
  };
  const auto no_recv = [](int, const std::vector<Message>&) {};
  if (oblivious::enabled()) {
    EXPECT_THROW(net.round(leaky_send, no_recv), ModelViolation);
  } else {
    EXPECT_NO_THROW(net.round(leaky_send, no_recv));
  }
}

TEST(ObliviousGuard, NofReductionInheritsBroadcastSink) {
  // Reduction shape: a broadcast callback decides what to write to the NOF
  // blackboard. The taint is caught at the CLIQUE-BCAST sink before the
  // board is ever touched, so the whole reduction stack is covered.
  const int n = 3;
  CliqueBroadcast net(n, 16);
  NofBlackboard board;
  const Mat61 payload = counting_matrix(n);
  const auto leaky_reduction = [&](int i) {
    Message m = bits_of(0, 1 + static_cast<int>(payload.get(i, 0) % 3));
    board.write(i, m);
    return m;
  };
  if (oblivious::enabled()) {
    EXPECT_THROW(net.round(leaky_reduction), ModelViolation);
    EXPECT_EQ(board.total_bits(), 0u);
  } else {
    EXPECT_NO_THROW(net.round(leaky_reduction));
  }
}

TEST(ObliviousGuard, TwoPartySinkScopeIsTheMeterSeam) {
  // The meter substrates have no callback seam, so a two-party protocol
  // marks its own length decisions with the public SinkScope — the guard
  // then polices payload reads exactly as in the engines.
  TwoPartyChannel channel;
  const Mat61 secret = counting_matrix(2);
  channel.send_from_alice(bits_of(0, 3));  // fixed-length send: always fine
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("two-party transcript sizing"));
  if (oblivious::enabled()) {
    EXPECT_THROW(secret.get(0, 1), ModelViolation);
  } else {
    EXPECT_NO_THROW(secret.get(0, 1));
  }
  EXPECT_EQ(channel.alice_bits(), 3u);
}

TEST(ObliviousGuard, SinkScopePropagatesAcrossWorkerThreads) {
  // The sink scope is constructed inside the engine's send callback, which
  // may run on a pool thread: the guard must hold at every CC_THREADS
  // setting (thread_local state is per-worker, set inside the callback).
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreads scope(threads);
    const int n = 8;
    CliqueUnicast net(n, 16);
    const Mat61 payload = counting_matrix(n);
    const auto leaky_fill = [&](int i, Message* box) {
      box[(i + 1) % n] = bits_of(0, 1 + static_cast<int>(payload.get(i, i) % 4));
    };
    const auto no_recv = [](int, const std::vector<Message>&) {};
    if (oblivious::enabled()) {
      EXPECT_THROW(net.round_fill(leaky_fill, no_recv), ModelViolation)
          << "CC_THREADS=" << threads;
      EXPECT_EQ(net.stats().rounds, 0) << "CC_THREADS=" << threads;
    } else {
      EXPECT_NO_THROW(net.round_fill(leaky_fill, no_recv));
    }
  }
}

// --- the shipped schedules are oblivious --------------------------------

TEST(ObliviousGuard, PlanFunctionsRunCleanUnderTheGuard) {
  // The plan functions carry their own SinkScopes: pricing a schedule from
  // (n, w, b) alone must never trip the guard, in any build.
  EXPECT_NO_THROW(algebraic_mm_plan(27, 61, 64));
  EXPECT_NO_THROW(apsp_plan(27, 64));
  EXPECT_NO_THROW(mst_phase_plan(MstAlgorithm::kLotker, 16, 5, 64));
  EXPECT_NO_THROW(mst_phase_plan(MstAlgorithm::kBoruvka, 16, 16, 64));
}

TEST(ObliviousGuard, DistributedProductRunsCleanUnderTheGuard) {
  // End-to-end positive check: the real block-MM protocol builds payloads
  // at orchestrator level and only committed lengths cross the sinks.
  const int n = 8;
  CliqueUnicast net(n, 256);
  const Mat61 a = counting_matrix(n);
  const Mat61 b = counting_matrix(n);
  Mat61 c;
  EXPECT_NO_THROW(algebraic_mm_m61(net, a, b, &c));
  EXPECT_GT(net.stats().rounds, 0);
}

}  // namespace
}  // namespace cclique
