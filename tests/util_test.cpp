// Unit tests for the util substrate: bit vectors, PRNG, field, math.
#include <gtest/gtest.h>

#include <set>

#include "util/bitvec.h"
#include "util/check.h"
#include "util/field.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(BitVec, StartsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size_bits(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BitVec, PushAndGet) {
  BitVec v;
  v.push_bit(true);
  v.push_bit(false);
  v.push_bit(true);
  ASSERT_EQ(v.size_bits(), 3u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
}

TEST(BitVec, PushUintRoundTrips) {
  BitVec v;
  v.push_uint(0xDEADBEEFCAFEULL, 48);
  EXPECT_EQ(v.read_uint(0, 48), 0xDEADBEEFCAFEULL);
}

TEST(BitVec, PushUintLittleEndianBitOrder) {
  BitVec v;
  v.push_uint(0b101, 3);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
}

TEST(BitVec, MixedFieldsRoundTrip) {
  BitVec v;
  v.push_uint(42, 17);
  v.push_bit(true);
  v.push_uint(7, 3);
  BitReader r(v);
  EXPECT_EQ(r.read_uint(17), 42u);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_uint(3), 7u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitVec, AppendConcatenates) {
  BitVec a, b;
  a.push_uint(5, 4);
  b.push_uint(9, 5);
  a.append(b);
  ASSERT_EQ(a.size_bits(), 9u);
  EXPECT_EQ(a.read_uint(0, 4), 5u);
  EXPECT_EQ(a.read_uint(4, 5), 9u);
}

TEST(BitVec, SetClearsAndSets) {
  BitVec v(128);
  v.set(100, true);
  EXPECT_TRUE(v.get(100));
  v.set(100, false);
  EXPECT_FALSE(v.get(100));
}

TEST(BitVec, EqualityIsBitwise) {
  BitVec a, b;
  a.push_uint(3, 2);
  b.push_uint(3, 2);
  EXPECT_EQ(a, b);
  b.push_bit(false);
  EXPECT_NE(a, b);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(4);
  EXPECT_THROW(v.get(4), PreconditionError);
  EXPECT_THROW(v.read_uint(2, 3), PreconditionError);
}

TEST(BitReader, ExhaustionThrows) {
  BitVec v;
  v.push_bit(true);
  BitReader r(v);
  r.read_bit();
  EXPECT_THROW(r.read_bit(), PreconditionError);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(99);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitIndependence) {
  Rng parent(11);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Mersenne61, AddWraps) {
  EXPECT_EQ(Mersenne61::add(Mersenne61::kP - 1, 1), 0u);
}

TEST(Mersenne61, SubWraps) {
  EXPECT_EQ(Mersenne61::sub(0, 1), Mersenne61::kP - 1);
}

TEST(Mersenne61, MulMatchesSmallCases) {
  EXPECT_EQ(Mersenne61::mul(3, 5), 15u);
  EXPECT_EQ(Mersenne61::mul(Mersenne61::kP - 1, 2), Mersenne61::kP - 2);
}

TEST(Mersenne61, InverseIsInverse) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t a = Mersenne61::reduce(rng.next_u64());
    if (a == 0) continue;
    EXPECT_EQ(Mersenne61::mul(a, Mersenne61::inv(a)), 1u);
  }
}

TEST(Mersenne61, PowMatchesRepeatedMul) {
  std::uint64_t x = 123456789;
  std::uint64_t acc = 1;
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(Mersenne61::pow(x, static_cast<std::uint64_t>(e)), acc);
    acc = Mersenne61::mul(acc, x);
  }
}

TEST(Mersenne61, InverseOfZeroThrows) {
  EXPECT_THROW(Mersenne61::inv(0), PreconditionError);
}

TEST(Mersenne61, ReduceEdgeCases) {
  EXPECT_EQ(Mersenne61::reduce(0), 0u);
  EXPECT_EQ(Mersenne61::reduce(Mersenne61::kP), 0u);
  EXPECT_EQ(Mersenne61::reduce(Mersenne61::kP - 1), Mersenne61::kP - 1);
  EXPECT_EQ(Mersenne61::reduce(Mersenne61::kP + 1), 1u);
  // 2^64 - 1 = 8p + 7.
  EXPECT_EQ(Mersenne61::reduce(UINT64_MAX), 7u);
  EXPECT_EQ(Mersenne61::reduce(1ULL << 61), 1u);
}

TEST(Mersenne61, PowZeroExponentIsOne) {
  EXPECT_EQ(Mersenne61::pow(123456789, 0), 1u);
  EXPECT_EQ(Mersenne61::pow(0, 0), 1u);  // empty product convention
  EXPECT_EQ(Mersenne61::pow(0, 5), 0u);
  // Fermat: x^(p-1) = 1 for x != 0.
  EXPECT_EQ(Mersenne61::pow(2, Mersenne61::kP - 1), 1u);
}

TEST(Mersenne61, MulNearP) {
  const std::uint64_t p1 = Mersenne61::kP - 1;  // = -1 mod p
  EXPECT_EQ(Mersenne61::mul(p1, p1), 1u);
  EXPECT_EQ(Mersenne61::mul(p1, 2), Mersenne61::kP - 2);
  EXPECT_EQ(Mersenne61::mul(p1, Mersenne61::kP - 2), 2u);
  EXPECT_EQ(Mersenne61::mul(Mersenne61::kP, 12345), 0u);  // p = 0 mod p
  EXPECT_EQ(Mersenne61::mul(p1, 0), 0u);
}

TEST(Mersenne61, InverseRoundTripsNearP) {
  for (std::uint64_t a : {std::uint64_t{2}, Mersenne61::kP - 1, Mersenne61::kP - 2,
                          std::uint64_t{1} << 60}) {
    EXPECT_EQ(Mersenne61::mul(a, Mersenne61::inv(a)), 1u) << a;
    EXPECT_EQ(Mersenne61::inv(Mersenne61::inv(a)), Mersenne61::reduce(a)) << a;
  }
}

TEST(Mersenne61, Reduce128) {
  EXPECT_EQ(Mersenne61::reduce128(0), 0u);
  EXPECT_EQ(Mersenne61::reduce128(Mersenne61::kP), 0u);
  // 2^61 = 1 and 2^122 = 1 (mod p).
  EXPECT_EQ(Mersenne61::reduce128(static_cast<__uint128_t>(1) << 61), 1u);
  EXPECT_EQ(Mersenne61::reduce128(static_cast<__uint128_t>(1) << 122), 1u);
  // The kernel's worst case: 64 maximal products.
  const __uint128_t prod = static_cast<__uint128_t>(Mersenne61::kP - 1) * (Mersenne61::kP - 1);
  __uint128_t acc = 0;
  std::uint64_t expect = 0;
  for (int i = 0; i < 64; ++i) {
    acc += prod;
    expect = Mersenne61::add(expect, 1);  // (-1)*(-1) = 1 each time
  }
  EXPECT_EQ(Mersenne61::reduce128(acc), expect);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(MathUtil, BitsFor) {
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(256), 8);
  EXPECT_EQ(bits_for(257), 9);
}

TEST(MathUtil, BitsForHugeInputsStayDefined) {
  // n > 2^63 used to shift 1ULL << 64 (UB); the loop now caps at width 64.
  EXPECT_EQ(bits_for(1ULL << 62), 62);
  EXPECT_EQ(bits_for((1ULL << 62) + 1), 63);
  EXPECT_EQ(bits_for(1ULL << 63), 63);
  EXPECT_EQ(bits_for((1ULL << 63) + 1), 64);
  EXPECT_EQ(bits_for(UINT64_MAX), 64);
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(MathUtil, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1ULL << 40), 1ULL << 20);
}

TEST(MathUtil, IsqrtNearUint64MaxDoesNotWrap) {
  // (r + 1)^2 used to wrap to 0 once r + 1 reached 2^32, making the
  // correction loop either spin or stop one short of the true root.
  const std::uint64_t root_max = 0xFFFFFFFFULL;       // isqrt(2^64 - 1)
  const std::uint64_t square = root_max * root_max;   // 0xFFFFFFFE00000001
  EXPECT_EQ(isqrt(UINT64_MAX), root_max);
  EXPECT_EQ(isqrt(square), root_max);
  EXPECT_EQ(isqrt(square - 1), root_max - 1);
  EXPECT_EQ(isqrt(1ULL << 62), 1ULL << 31);
  EXPECT_EQ(isqrt((1ULL << 62) - 1), (1ULL << 31) - 1);
}

TEST(MathUtil, Icbrt) {
  EXPECT_EQ(icbrt(0), 0u);
  EXPECT_EQ(icbrt(1), 1u);
  EXPECT_EQ(icbrt(7), 1u);
  EXPECT_EQ(icbrt(8), 2u);
  EXPECT_EQ(icbrt(26), 2u);
  EXPECT_EQ(icbrt(27), 3u);
  EXPECT_EQ(icbrt(63), 3u);
  EXPECT_EQ(icbrt(64), 4u);
  EXPECT_EQ(icbrt(125), 5u);
  EXPECT_EQ(icbrt(216), 6u);
  EXPECT_EQ(icbrt(1000000), 100u);
  // Exact at huge perfect cubes and at the top of the range.
  const std::uint64_t r = 2642244;
  EXPECT_EQ(icbrt(r * r * r), r);
  EXPECT_EQ(icbrt(r * r * r - 1), r - 1);
  EXPECT_EQ(icbrt(UINT64_MAX), 2642245u);
}

TEST(MathUtil, IsPrime) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(MathUtil, PrevPrime) {
  EXPECT_EQ(prev_prime(10), 7u);
  EXPECT_EQ(prev_prime(7), 7u);
  EXPECT_EQ(prev_prime(1), 0u);
}

TEST(Check, MacrosThrowTypedErrors) {
  EXPECT_THROW(CC_REQUIRE(false, "boom"), PreconditionError);
  EXPECT_THROW(CC_CHECK(false, "boom"), InvariantError);
  EXPECT_THROW(CC_MODEL(false, "boom"), ModelViolation);
}

}  // namespace
}  // namespace cclique
