// Edge cases and adversarial inputs across the stack, plus the weighted
// threshold gates (the paper's TC discussion distinguishes weighted from
// unweighted thresholds — weights move the separability cost from
// log(fan-in) to log(total weight)).
#include <gtest/gtest.h>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "core/circuit_sim.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "graph/ruzsa_szemeredi.h"
#include "graph/subgraph.h"
#include "linalg/f2matrix.h"
#include "routing/router.h"
#include "util/rng.h"

namespace cclique {
namespace {

// ------------------------------------------------- weighted thresholds

TEST(WeightedThreshold, MatchesDefinition) {
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(c.add_input());
  // 5a + 3b + 2c + d >= 6.
  c.mark_output(c.add_weighted_threshold(ins, {5, 3, 2, 1}, 6));
  for (int x = 0; x < 16; ++x) {
    std::vector<bool> v;
    int sum = 0;
    const int w[] = {5, 3, 2, 1};
    for (int i = 0; i < 4; ++i) {
      v.push_back((x >> i) & 1);
      sum += ((x >> i) & 1) ? w[i] : 0;
    }
    EXPECT_EQ(c.evaluate(v)[0], sum >= 6) << "x=" << x;
  }
}

TEST(WeightedThreshold, SeparabilityTracksWeightMass) {
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(c.add_input());
  const int unweighted = c.add_threshold(ins, 2);
  const int heavy = c.add_weighted_threshold(ins, {1000, 1000, 1000}, 1500);
  EXPECT_EQ(c.separability_bits(unweighted), 2);   // log2(3+1)
  EXPECT_EQ(c.separability_bits(heavy), 12);       // log2(3001)
}

TEST(WeightedThreshold, PartitionInvariance) {
  Rng rng(1);
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(c.add_input());
  std::vector<int> weights;
  for (int i = 0; i < 8; ++i) weights.push_back(1 + static_cast<int>(rng.uniform(20)));
  const int gid = c.add_weighted_threshold(ins, weights, 40);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> values(8);
    for (auto&& v : values) v = rng.coin();
    std::vector<std::vector<int>> parts(3);
    for (int i = 0; i < 8; ++i) parts[rng.uniform(3)].push_back(i);
    std::vector<PartAggregate> aggs;
    for (const auto& part : parts) {
      if (part.empty()) continue;
      std::vector<bool> pv;
      for (int pos : part) pv.push_back(values[static_cast<std::size_t>(pos)]);
      aggs.push_back(c.partial_aggregate(gid, part, pv));
    }
    EXPECT_EQ(c.combine(gid, aggs), c.eval_gate(gid, values));
  }
}

TEST(WeightedThreshold, RunsThroughTheoremTwo) {
  Rng rng(2);
  const int n = 6;
  Circuit c;
  std::vector<int> ins;
  for (int i = 0; i < n * n; ++i) ins.push_back(c.add_input());
  std::vector<int> weights;
  for (int i = 0; i < n * n; ++i) weights.push_back(1 + (i % 7));
  c.mark_output(c.add_weighted_threshold(ins, weights, 4 * n * n / 2));
  CircuitSimulation sim(c, n);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<bool> inputs(static_cast<std::size_t>(n * n));
    for (auto&& x : inputs) x = rng.coin();
    CliqueUnicast net(n, sim.plan().recommended_bandwidth);
    auto result = sim.run_round_robin(net, inputs);
    EXPECT_EQ(result.outputs[0], c.evaluate(inputs)[0]);
  }
}

TEST(WeightedThreshold, RejectsBadArguments) {
  Circuit c;
  const int a = c.add_input();
  EXPECT_THROW(c.add_weighted_threshold({a}, {0}, 1), PreconditionError);
  EXPECT_THROW(c.add_weighted_threshold({a}, {1, 2}, 1), PreconditionError);
  EXPECT_THROW(c.add_weighted_threshold({a}, {1}, -1), PreconditionError);
}

// ----------------------------------------------------- engine edge cases

TEST(EngineEdge, SinglePlayerCliqueIsQuietButLegal) {
  CliqueUnicast net(1, 4);
  net.round([](int) { return std::vector<Message>(1); },
            [](int, const std::vector<Message>&) {});
  EXPECT_EQ(net.stats().rounds, 1);
  EXPECT_EQ(net.stats().total_bits, 0u);
}

TEST(EngineEdge, EmptyBroadcastsAreFree) {
  CliqueBroadcast net(5, 8);
  net.round([](int) { return Message{}; });
  EXPECT_EQ(net.stats().total_bits, 0u);
  EXPECT_EQ(net.stats().total_messages, 0u);
  EXPECT_EQ(net.stats().rounds, 1);
}

TEST(EngineEdge, ZeroBandwidthRejected) {
  EXPECT_THROW(CliqueUnicast(4, 0), PreconditionError);
  EXPECT_THROW(CliqueBroadcast(4, 0), PreconditionError);
}

TEST(EngineEdge, ExactlyBandwidthSizedMessageAllowed) {
  CliqueUnicast net(2, 7);
  net.round(
      [&](int i) {
        std::vector<Message> box(2);
        if (i == 0) {
          Message m;
          for (int bit = 0; bit < 7; ++bit) m.push_bit(true);
          box[1] = std::move(m);
        }
        return box;
      },
      [](int, const std::vector<Message>&) {});
  EXPECT_EQ(net.stats().max_edge_bits_in_round, 7u);
}

// ----------------------------------------------------- routing edge cases

TEST(RoutingEdge, ZeroWidthPayloads) {
  // Messages that carry no payload bits still signal (source, count).
  CliqueUnicast net(4, 8);
  RoutingDemand d;
  d.payload_bits = 0;
  d.messages = {{0, 2, 0}, {1, 2, 0}, {3, 2, 0}};
  auto r = route_direct(net, d);
  // Zero-width records vanish on the wire — direct routing cannot deliver
  // them (documented behavior: payloads must carry at least one bit to be
  // countable). The two-phase router preserves them via addressing.
  auto r2_net = CliqueUnicast(4, 8);
  auto r2 = route_two_phase(r2_net, d);
  EXPECT_EQ(r2.delivered[2].size(), 3u);
  (void)r;
}

TEST(RoutingEdge, MaxWidthPayloads) {
  CliqueUnicast net(3, 16);
  RoutingDemand d;
  d.payload_bits = 64;
  d.messages = {{0, 1, ~0ULL}, {2, 1, 0x123456789ABCDEF0ULL}};
  auto r = route_two_phase(net, d);
  ASSERT_EQ(r.delivered[1].size(), 2u);
  std::uint64_t seen = 0;
  for (const auto& [src, payload] : r.delivered[1]) {
    (void)src;
    seen ^= payload;
  }
  EXPECT_EQ(seen, ~0ULL ^ 0x123456789ABCDEF0ULL);
}

// --------------------------------------------------- protocol edge cases

TEST(ProtocolEdge, DetectionOnEmptyAndCompleteGraphs) {
  const int n = 12;
  {
    CliqueBroadcast net(n, 8);
    EXPECT_FALSE(turan_subgraph_detect(net, Graph(n), path_graph(3)).contains_h);
  }
  {
    CliqueBroadcast net(n, 8);
    EXPECT_TRUE(
        turan_subgraph_detect(net, complete_graph(n), complete_graph(4)).contains_h);
  }
}

TEST(ProtocolEdge, PatternAsBigAsHost) {
  const int n = 6;
  CliqueBroadcast net(n, 8);
  EXPECT_TRUE(
      turan_subgraph_detect(net, complete_graph(n), complete_graph(n)).contains_h);
  CliqueBroadcast net2(n, 8);
  Graph nearly = complete_graph(n);
  nearly.remove_edge(0, 1);
  EXPECT_FALSE(
      turan_subgraph_detect(net2, nearly, complete_graph(n)).contains_h);
}

TEST(ProtocolEdge, BandwidthOneBroadcastStillCorrect) {
  Rng rng(3);
  Graph g = gnp(10, 0.3, rng);
  CliqueBroadcast net(10, 1);
  auto r = turan_subgraph_detect(net, g, complete_graph(3));
  EXPECT_EQ(r.contains_h, count_triangles(g) > 0);
  EXPECT_GT(r.stats.rounds, 50) << "b=1 must pay full chunking";
}

// ----------------------------------------------------- misc adversarial

TEST(MiscEdge, RsGraphParamOne) {
  auto rs = ruzsa_szemeredi_graph(1);
  EXPECT_EQ(rs.graph.num_vertices(), 6);
  EXPECT_EQ(count_triangles(rs.graph), rs.triangles.size());
}

TEST(MiscEdge, F2MatrixSizeZeroAndOne) {
  F2Matrix zero(0);
  EXPECT_EQ(f2_multiply_naive(zero, zero).n(), 0);
  F2Matrix one(1);
  one.set(0, 0, true);
  EXPECT_TRUE(f2_multiply_strassen(one, one, 1).get(0, 0));
}

TEST(MiscEdge, SubgraphOfEmptyPattern) {
  Rng rng(4);
  Graph g = gnp(8, 0.5, rng);
  EXPECT_TRUE(contains_subgraph(g, Graph(0)));
  EXPECT_EQ(count_subgraph_embeddings(g, Graph(0)), 1u);
}

}  // namespace
}  // namespace cclique
