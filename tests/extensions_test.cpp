// Tests for the extension protocols: CONGEST C4 detection (the paper's
// full-version claim), MST and sorting on the clique (the related-work
// workloads [30]/[32]/[28] the model is known for).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/congest_c4.h"
#include "core/dlp_subgraph.h"
#include "core/dlp_triangle.h"
#include "core/mst.h"
#include "core/sorting.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace cclique {
namespace {

// ------------------------------------------------------------- CONGEST C4

TEST(CongestC4, ExactOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(24, 0.04 + 0.04 * trial, rng);
    auto r = congest_c4_detect(g, 16);
    EXPECT_EQ(r.detected, contains_cycle(g, 4)) << "trial " << trial;
  }
}

TEST(CongestC4, SoundOnC4FreeExtremalGraphs) {
  auto r = congest_c4_detect(polarity_graph(7), 16);
  EXPECT_FALSE(r.detected);
}

TEST(CongestC4, CompleteOnPlantedC4) {
  Rng rng(2);
  Graph g = polarity_graph(5);
  plant_subgraph(g, cycle_graph(4), rng);
  auto r = congest_c4_detect(g, 16);
  EXPECT_TRUE(r.detected);
}

TEST(CongestC4, HandlesDisconnectedAndTinyInputs) {
  EXPECT_FALSE(congest_c4_detect(Graph(5), 8).detected);
  EXPECT_FALSE(congest_c4_detect(path_graph(4), 8).detected);
  EXPECT_TRUE(congest_c4_detect(cycle_graph(4), 8).detected);
  EXPECT_FALSE(congest_c4_detect(cycle_graph(5), 8).detected);
  EXPECT_TRUE(congest_c4_detect(complete_bipartite(2, 2), 8).detected);
}

TEST(CongestC4, RoundsTrackMaxDegreeTimesLogOverB) {
  // The protocol's round count is ceil(max_deg * log n / b) + 0; on
  // near-extremal C4-free inputs max_deg ~ sqrt(n), reproducing the paper's
  // O(sqrt(n) log n / b) claim.
  const Graph er = polarity_graph(11);  // n = 133, max_deg ~ q+1 = 12
  const int b = 8;
  auto r = congest_c4_detect(er, b);
  const int addr = 8;  // bits_for(133)
  EXPECT_EQ(r.stats.rounds, (r.max_degree * addr + b - 1) / b);
  EXPECT_LE(r.max_degree, 12);
}

// ----------------------------------------------- general [8] detection

class DlpSubgraphTest : public ::testing::TestWithParam<int> {};

TEST_P(DlpSubgraphTest, MatchesGroundTruth) {
  const int variant = GetParam();
  Rng rng(50 + variant);
  const Graph h = variant == 0   ? complete_graph(3)
                  : variant == 1 ? cycle_graph(4)
                  : variant == 2 ? complete_graph(4)
                  : variant == 3 ? path_graph(4)
                                 : star_graph(4);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 24;
    Graph g = gnp(n, 0.04 + 0.06 * trial, rng);
    CliqueUnicast net(n, 32);
    auto r = dlp_subgraph_detect(net, g, h);
    EXPECT_EQ(r.detected, contains_subgraph(g, h))
        << "variant " << variant << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, DlpSubgraphTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(DlpSubgraph, AgreesWithTriangleSpecialization) {
  Rng rng(60);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 20;
    Graph g = gnp(n, 0.15, rng);
    CliqueUnicast net1(n, 32), net2(n, 32);
    EXPECT_EQ(dlp_subgraph_detect(net1, g, complete_graph(3)).detected,
              dlp_triangle_detect(net2, g).detected);
  }
}

TEST(DlpSubgraph, PlantedPatternAlwaysFound) {
  Rng rng(61);
  const Graph h = cycle_graph(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gnp(30, 0.05, rng);
    plant_subgraph(g, h, rng);
    CliqueUnicast net(30, 32);
    EXPECT_TRUE(dlp_subgraph_detect(net, g, h).detected);
  }
}

TEST(DlpSubgraph, GroupCountScalesAsNPowerOneOverD) {
  // t ~ n^{1/d}: for d=3, n=64 -> t around 5; for d=4 smaller.
  Rng rng(62);
  Graph g = gnp(64, 0.1, rng);
  CliqueUnicast net3(64, 32), net4(64, 32);
  auto r3 = dlp_subgraph_detect(net3, g, complete_graph(3));
  auto r4 = dlp_subgraph_detect(net4, g, complete_graph(4));
  EXPECT_GT(r3.groups, r4.groups);
  EXPECT_GE(r3.groups, 4);
}

// -------------------------------------------------------------------- MST

TEST(CliqueMst, MatchesKruskalOnRandomGraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 20;
    Graph g = gnp(n, 0.3, rng);
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1000));
    CliqueUnicast net(n, 64);
    auto dist = clique_mst(net, g, w);
    auto ref = kruskal_reference(g, w);
    ASSERT_EQ(dist.tree.size(), ref.size()) << "trial " << trial;
    for (std::size_t e = 0; e < ref.size(); ++e) {
      EXPECT_EQ(dist.tree[e].u, ref[e].u);
      EXPECT_EQ(dist.tree[e].v, ref[e].v);
      EXPECT_EQ(dist.tree[e].weight, ref[e].weight);
    }
  }
}

TEST(CliqueMst, SpanningTreeOnConnectedInput) {
  Rng rng(4);
  const int n = 24;
  Graph g = gnp(n, 0.4, rng);
  std::vector<std::uint32_t> w(g.edges().size());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(100000));
  CliqueUnicast net(n, 64);
  auto result = clique_mst(net, g, w);
  EXPECT_EQ(result.tree.size(), static_cast<std::size_t>(n - 1));
}

TEST(CliqueMst, ForestOnDisconnectedInput) {
  Graph g = complete_graph(5).disjoint_union(complete_graph(4));
  std::vector<std::uint32_t> w(g.edges().size());
  for (std::size_t e = 0; e < w.size(); ++e) w[e] = static_cast<std::uint32_t>(e);
  CliqueUnicast net(9, 64);
  auto result = clique_mst(net, g, w);
  EXPECT_EQ(result.tree.size(), 7u);  // (5-1) + (4-1)
}

TEST(CliqueMst, LogarithmicPhases) {
  Rng rng(5);
  const int n = 32;
  Graph g = complete_graph(n);
  std::vector<std::uint32_t> w(g.edges().size());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
  CliqueUnicast net(n, 64);
  auto result = clique_mst(net, g, w);
  EXPECT_LE(result.phases, 7) << "Borůvka halves fragments each phase";
  EXPECT_EQ(result.tree.size(), static_cast<std::size_t>(n - 1));
}

TEST(CliqueMst, DuplicateWeightsHandledByTieBreak) {
  Graph g = complete_graph(10);
  std::vector<std::uint32_t> w(g.edges().size(), 7);  // all equal
  CliqueUnicast net(10, 64);
  auto result = clique_mst(net, g, w);
  auto ref = kruskal_reference(g, w);
  ASSERT_EQ(result.tree.size(), ref.size());
  for (std::size_t e = 0; e < ref.size(); ++e) {
    EXPECT_EQ(result.tree[e].u, ref[e].u);
    EXPECT_EQ(result.tree[e].v, ref[e].v);
  }
}

// ---------------------------------------------------------------- Sorting

TEST(CliqueSort, SortsRandomInputs) {
  Rng rng(6);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 12;
    const std::size_t k = 16;
    std::vector<std::vector<std::uint32_t>> inputs(n);
    std::vector<std::uint32_t> all;
    for (auto& block : inputs) {
      block.resize(k);
      for (auto& x : block) {
        x = static_cast<std::uint32_t>(rng.uniform(1u << 30));
        all.push_back(x);
      }
    }
    CliqueUnicast net(n, 64);
    auto result = clique_sort(net, inputs);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    for (const auto& block : result.blocks) {
      EXPECT_EQ(block.size(), k);
      EXPECT_TRUE(std::is_sorted(block.begin(), block.end()));
      for (auto x : block) got.push_back(x);
    }
    EXPECT_EQ(got, all) << "concatenated blocks must be the sorted sequence";
  }
}

TEST(CliqueSort, HandlesDuplicatesAndSkew) {
  Rng rng(7);
  const int n = 8;
  const std::size_t k = 10;
  std::vector<std::vector<std::uint32_t>> inputs(n);
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)].assign(k, static_cast<std::uint32_t>(i % 3));
  }
  CliqueUnicast net(n, 64);
  auto result = clique_sort(net, inputs);
  std::vector<std::uint32_t> got;
  for (const auto& block : result.blocks) {
    for (auto x : block) got.push_back(x);
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), static_cast<std::size_t>(n) * k);
}

TEST(CliqueSort, AlreadySortedAndReversed) {
  const int n = 6;
  const std::size_t k = 8;
  std::vector<std::vector<std::uint32_t>> fwd(n), rev(n);
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      fwd[static_cast<std::size_t>(i)].push_back(v);
      rev[static_cast<std::size_t>(n - 1 - i)].push_back(1000 - v);
      ++v;
    }
  }
  for (auto* inputs : {&fwd, &rev}) {
    CliqueUnicast net(n, 64);
    auto result = clique_sort(net, *inputs);
    std::vector<std::uint32_t> got;
    for (const auto& block : result.blocks) {
      for (auto x : block) got.push_back(x);
    }
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST(CliqueSort, ConstantPhaseRounds) {
  // Rounds must not grow with n at fixed per-player load (the [28] shape).
  Rng rng(8);
  int rounds[2];
  int idx = 0;
  for (int n : {8, 24}) {
    std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
    for (auto& block : inputs) {
      block.resize(static_cast<std::size_t>(n));
      for (auto& x : block) x = static_cast<std::uint32_t>(rng.uniform(1u << 20));
    }
    CliqueUnicast net(n, 64);
    rounds[idx++] = clique_sort(net, inputs).stats.rounds;
  }
  EXPECT_LE(rounds[1], rounds[0] + 4) << "sorting rounds should be O(1)-ish in n";
}

}  // namespace
}  // namespace cclique
