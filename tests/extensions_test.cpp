// Tests for the extension protocols: CONGEST C4 detection (the paper's
// full-version claim), MST and sorting on the clique (the related-work
// workloads [30]/[32]/[28] the model is known for).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "core/congest_c4.h"
#include "core/dlp_subgraph.h"
#include "core/dlp_triangle.h"
#include "core/mst.h"
#include "core/sorting.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace cclique {
namespace {

/// Scoped CC_THREADS override (same pattern as engine_determinism_test):
/// engines read the variable when they first schedule a round, so each
/// protocol run constructs fresh engines.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("CC_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("CC_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("CC_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("CC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

int ceil_log2(int n) {
  int p = 0;
  while ((1 << p) < n) ++p;
  return p;
}

void expect_tree_equals(const std::vector<WeightedEdge>& got,
                        const std::vector<WeightedEdge>& ref,
                        const std::string& label) {
  ASSERT_EQ(got.size(), ref.size()) << label;
  for (std::size_t e = 0; e < ref.size(); ++e) {
    EXPECT_EQ(got[e].u, ref[e].u) << label << " edge " << e;
    EXPECT_EQ(got[e].v, ref[e].v) << label << " edge " << e;
    EXPECT_EQ(got[e].weight, ref[e].weight) << label << " edge " << e;
  }
}

// ------------------------------------------------------------- CONGEST C4

TEST(CongestC4, ExactOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(24, 0.04 + 0.04 * trial, rng);
    auto r = congest_c4_detect(g, 16);
    EXPECT_EQ(r.detected, contains_cycle(g, 4)) << "trial " << trial;
  }
}

TEST(CongestC4, SoundOnC4FreeExtremalGraphs) {
  auto r = congest_c4_detect(polarity_graph(7), 16);
  EXPECT_FALSE(r.detected);
}

TEST(CongestC4, CompleteOnPlantedC4) {
  Rng rng(2);
  Graph g = polarity_graph(5);
  plant_subgraph(g, cycle_graph(4), rng);
  auto r = congest_c4_detect(g, 16);
  EXPECT_TRUE(r.detected);
}

TEST(CongestC4, HandlesDisconnectedAndTinyInputs) {
  EXPECT_FALSE(congest_c4_detect(Graph(5), 8).detected);
  EXPECT_FALSE(congest_c4_detect(path_graph(4), 8).detected);
  EXPECT_TRUE(congest_c4_detect(cycle_graph(4), 8).detected);
  EXPECT_FALSE(congest_c4_detect(cycle_graph(5), 8).detected);
  EXPECT_TRUE(congest_c4_detect(complete_bipartite(2, 2), 8).detected);
}

TEST(CongestC4, RoundsTrackMaxDegreeTimesLogOverB) {
  // The protocol's round count is ceil(max_deg * log n / b) + 0; on
  // near-extremal C4-free inputs max_deg ~ sqrt(n), reproducing the paper's
  // O(sqrt(n) log n / b) claim.
  const Graph er = polarity_graph(11);  // n = 133, max_deg ~ q+1 = 12
  const int b = 8;
  auto r = congest_c4_detect(er, b);
  const int addr = 8;  // bits_for(133)
  EXPECT_EQ(r.stats.rounds, (r.max_degree * addr + b - 1) / b);
  EXPECT_LE(r.max_degree, 12);
}

// ----------------------------------------------- general [8] detection

class DlpSubgraphTest : public ::testing::TestWithParam<int> {};

TEST_P(DlpSubgraphTest, MatchesGroundTruth) {
  const int variant = GetParam();
  Rng rng(50 + variant);
  const Graph h = variant == 0   ? complete_graph(3)
                  : variant == 1 ? cycle_graph(4)
                  : variant == 2 ? complete_graph(4)
                  : variant == 3 ? path_graph(4)
                                 : star_graph(4);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 24;
    Graph g = gnp(n, 0.04 + 0.06 * trial, rng);
    CliqueUnicast net(n, 32);
    auto r = dlp_subgraph_detect(net, g, h);
    EXPECT_EQ(r.detected, contains_subgraph(g, h))
        << "variant " << variant << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, DlpSubgraphTest, ::testing::Values(0, 1, 2, 3, 4));

TEST(DlpSubgraph, AgreesWithTriangleSpecialization) {
  Rng rng(60);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 20;
    Graph g = gnp(n, 0.15, rng);
    CliqueUnicast net1(n, 32), net2(n, 32);
    EXPECT_EQ(dlp_subgraph_detect(net1, g, complete_graph(3)).detected,
              dlp_triangle_detect(net2, g).detected);
  }
}

TEST(DlpSubgraph, PlantedPatternAlwaysFound) {
  Rng rng(61);
  const Graph h = cycle_graph(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gnp(30, 0.05, rng);
    plant_subgraph(g, h, rng);
    CliqueUnicast net(30, 32);
    EXPECT_TRUE(dlp_subgraph_detect(net, g, h).detected);
  }
}

TEST(DlpSubgraph, GroupCountScalesAsNPowerOneOverD) {
  // t ~ n^{1/d}: for d=3, n=64 -> t around 5; for d=4 smaller.
  Rng rng(62);
  Graph g = gnp(64, 0.1, rng);
  CliqueUnicast net3(64, 32), net4(64, 32);
  auto r3 = dlp_subgraph_detect(net3, g, complete_graph(3));
  auto r4 = dlp_subgraph_detect(net4, g, complete_graph(4));
  EXPECT_GT(r3.groups, r4.groups);
  EXPECT_GE(r3.groups, 4);
}

// -------------------------------------------------------------------- MST

TEST(CliqueMst, MatchesKruskalOnRandomGraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 20;
    Graph g = gnp(n, 0.3, rng);
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1000));
    CliqueUnicast net(n, 64);
    auto dist = clique_mst(net, g, w);
    auto ref = kruskal_reference(g, w);
    ASSERT_EQ(dist.tree.size(), ref.size()) << "trial " << trial;
    for (std::size_t e = 0; e < ref.size(); ++e) {
      EXPECT_EQ(dist.tree[e].u, ref[e].u);
      EXPECT_EQ(dist.tree[e].v, ref[e].v);
      EXPECT_EQ(dist.tree[e].weight, ref[e].weight);
    }
  }
}

TEST(CliqueMst, SpanningTreeOnConnectedInput) {
  Rng rng(4);
  const int n = 24;
  Graph g = gnp(n, 0.4, rng);
  std::vector<std::uint32_t> w(g.edges().size());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(100000));
  CliqueUnicast net(n, 64);
  auto result = clique_mst(net, g, w);
  EXPECT_EQ(result.tree.size(), static_cast<std::size_t>(n - 1));
}

TEST(CliqueMst, ForestOnDisconnectedInput) {
  Graph g = complete_graph(5).disjoint_union(complete_graph(4));
  std::vector<std::uint32_t> w(g.edges().size());
  for (std::size_t e = 0; e < w.size(); ++e) w[e] = static_cast<std::uint32_t>(e);
  CliqueUnicast net(9, 64);
  auto result = clique_mst(net, g, w);
  EXPECT_EQ(result.tree.size(), 7u);  // (5-1) + (4-1)
}

TEST(CliqueMst, LogarithmicPhases) {
  Rng rng(5);
  const int n = 32;
  Graph g = complete_graph(n);
  std::vector<std::uint32_t> w(g.edges().size());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
  CliqueUnicast net(n, 64);
  auto result = clique_mst(net, g, w);
  EXPECT_LE(result.phases, 7) << "Borůvka halves fragments each phase";
  EXPECT_EQ(result.tree.size(), static_cast<std::size_t>(n - 1));
}

TEST(CliqueMst, DuplicateWeightsHandledByTieBreak) {
  Graph g = complete_graph(10);
  std::vector<std::uint32_t> w(g.edges().size(), 7);  // all equal
  CliqueUnicast net(10, 64);
  auto result = clique_mst(net, g, w);
  auto ref = kruskal_reference(g, w);
  ASSERT_EQ(result.tree.size(), ref.size());
  for (std::size_t e = 0; e < ref.size(); ++e) {
    EXPECT_EQ(result.tree[e].u, ref[e].u);
    EXPECT_EQ(result.tree[e].v, ref[e].v);
  }
}

TEST(CliqueMst, NoMergeFreeFinalPhase) {
  // A connected input must terminate without burning a merge-free phase:
  // phases <= ceil(log2 n), and n = 2 takes exactly one phase (the old
  // schedule charged a second, empty phase).
  {
    Graph g(2);
    g.add_edge(0, 1);
    CliqueUnicast net(2, 64);
    auto r = clique_mst(net, g, {5});
    EXPECT_EQ(r.phases, 1);
    EXPECT_EQ(r.tree.size(), 1u);
    EXPECT_EQ(r.stats.rounds, 3);  // exactly one 3-round phase
  }
  Rng rng(40);
  for (int n : {4, 8, 16, 31, 32, 33}) {
    Graph g = complete_graph(n);
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    CliqueUnicast net(n, 64);
    auto r = clique_mst(net, g, w);
    EXPECT_LE(r.phases, ceil_log2(n)) << "n=" << n;
    EXPECT_EQ(r.stats.rounds, 3 * r.phases) << "n=" << n;
  }
}

TEST(CliqueMst, PhaseBoundHoldsOnDisconnectedAndEdgelessInputs) {
  // Disconnected components finish independently; the documented
  // phases <= ceil(log2 n) contract must survive the worst simultaneous
  // completions, and an edgeless graph needs one discovery phase.
  for (MstAlgorithm alg : {MstAlgorithm::kBoruvka, MstAlgorithm::kLotker}) {
    {
      Graph g(6);  // edgeless
      CliqueUnicast net(6, 64);
      auto r = clique_mst(net, g, {}, alg);
      EXPECT_TRUE(r.tree.empty());
      EXPECT_EQ(r.phases, 1);
    }
    {
      Graph g = complete_graph(4).disjoint_union(complete_graph(4));
      std::vector<std::uint32_t> w(g.edges().size());
      for (std::size_t e = 0; e < w.size(); ++e) w[e] = static_cast<std::uint32_t>(7 * e + 1);
      CliqueUnicast net(8, 64);
      auto r = clique_mst(net, g, w, alg);
      EXPECT_EQ(r.tree.size(), 6u);
      const int bound = alg == MstAlgorithm::kBoruvka ? ceil_log2(8)
                                                      : mst_lotker_phase_bound(8) + 1;
      EXPECT_LE(r.phases, bound);
    }
  }
}

TEST(CliqueMst, PerPhaseCostsMatchPlans) {
  Rng rng(41);
  const int n = 48;
  Graph g = gnp(n, 0.3, rng);
  std::vector<std::uint32_t> w(g.edges().size());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
  for (MstAlgorithm alg : {MstAlgorithm::kBoruvka, MstAlgorithm::kLotker}) {
    CliqueUnicast net(n, 64);
    auto r = clique_mst(net, g, w, alg);
    ASSERT_EQ(static_cast<int>(r.phase_costs.size()), r.phases);
    int rounds = 0;
    std::uint64_t bits = 0;
    int prev_fragments = n + 1;
    for (const auto& c : r.phase_costs) {
      // Caps are data-independent functions of (n, F, b); the protocol
      // already CC_CHECKs them — assert the recorded ledger agrees.
      const MstPhasePlan plan = mst_phase_plan(alg, n, c.fragments, 64);
      EXPECT_EQ(plan.max_rounds, c.plan.max_rounds);
      EXPECT_EQ(plan.max_bits, c.plan.max_bits);
      EXPECT_LE(c.rounds, c.plan.max_rounds);
      EXPECT_LE(c.bits, c.plan.max_bits);
      if (alg == MstAlgorithm::kBoruvka) {
        EXPECT_EQ(c.rounds, 3);
      }
      EXPECT_LT(c.fragments, prev_fragments) << "fragments must strictly shrink";
      prev_fragments = c.fragments;
      rounds += c.rounds;
      bits += c.bits;
    }
    EXPECT_EQ(rounds, r.stats.rounds);
    EXPECT_EQ(bits, r.stats.total_bits);
  }
}

// ------------------------------------------------------------ Lotker MST

TEST(CliqueMstLotker, MatchesKruskalAcrossGenerators) {
  Rng rng(42);
  std::vector<std::pair<std::string, Graph>> cases;
  for (double p : {0.1, 0.3, 0.7}) {
    cases.emplace_back("gnp", gnp(40, p, rng));
  }
  cases.emplace_back("complete", complete_graph(24));
  cases.emplace_back("path", path_graph(33));
  cases.emplace_back("cycle", cycle_graph(20));
  cases.emplace_back("star", star_graph(26));
  cases.emplace_back("bipartite", complete_bipartite(9, 14));
  cases.emplace_back("tree", random_tree(30, rng));
  cases.emplace_back("polarity", polarity_graph(5));
  for (auto& [name, g] : cases) {
    const int n = g.num_vertices();
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    CliqueUnicast net(n, 64);
    auto r = clique_mst(net, g, w, MstAlgorithm::kLotker);
    expect_tree_equals(r.tree, kruskal_reference(g, w), name);
    EXPECT_LE(r.phases, mst_lotker_phase_bound(n) + 1) << name;
  }
}

TEST(CliqueMstLotker, AgreesWithBoruvkaOnTiedWeights) {
  for (int n : {10, 17}) {
    Graph g = complete_graph(n);
    std::vector<std::uint32_t> w(g.edges().size(), 7);  // all equal
    CliqueUnicast net1(n, 64), net2(n, 64);
    auto lot = clique_mst(net1, g, w, MstAlgorithm::kLotker);
    auto bor = clique_mst(net2, g, w, MstAlgorithm::kBoruvka);
    expect_tree_equals(lot.tree, kruskal_reference(g, w), "lotker");
    expect_tree_equals(bor.tree, kruskal_reference(g, w), "boruvka");
    EXPECT_EQ(lot.total_weight, bor.total_weight);
  }
}

TEST(CliqueMstLotker, DoublyExponentialPhaseCount) {
  // Fragment sizes grow at least as s -> s*(s+1) per phase, so connected
  // inputs finish within mst_lotker_phase_bound(n) = O(log log n) phases —
  // strictly below the Borůvka count once log n separates from log log n.
  Rng rng(43);
  for (int n : {64, 128}) {
    Graph g = path_graph(n);  // Borůvka's worst case: ceil(log2 n) phases
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    CliqueUnicast net1(n, 64), net2(n, 64);
    auto lot = clique_mst(net1, g, w, MstAlgorithm::kLotker);
    auto bor = clique_mst(net2, g, w, MstAlgorithm::kBoruvka);
    expect_tree_equals(lot.tree, bor.tree, "path");
    EXPECT_LE(lot.phases, mst_lotker_phase_bound(n)) << "n=" << n;
    EXPECT_LT(lot.phases, bor.phases) << "n=" << n;
  }
  // The bound itself is doubly exponential: one extra phase covers the
  // square of the reachable size.
  EXPECT_EQ(mst_lotker_phase_bound(2), 1);
  EXPECT_EQ(mst_lotker_phase_bound(4), 2);
  EXPECT_EQ(mst_lotker_phase_bound(64), 3);
  EXPECT_EQ(mst_lotker_phase_bound(256), 4);
  EXPECT_EQ(mst_lotker_phase_bound(3000), 4);
}

TEST(CliqueMstLotker, ForestOnDisconnectedInput) {
  Graph g = complete_graph(5).disjoint_union(complete_graph(4));
  std::vector<std::uint32_t> w(g.edges().size());
  for (std::size_t e = 0; e < w.size(); ++e) w[e] = static_cast<std::uint32_t>(e);
  CliqueUnicast net(9, 64);
  auto result = clique_mst(net, g, w, MstAlgorithm::kLotker);
  EXPECT_EQ(result.tree.size(), 7u);  // (5-1) + (4-1)
  expect_tree_equals(result.tree, kruskal_reference(g, w), "forest");
}

TEST(CliqueMst, StatsIdenticalAcrossThreadCounts) {
  // The determinism contract (comm/model.h) extends through both MST
  // schedules and the fixed sort: bit-identical stats at any CC_THREADS.
  Rng rng(44);
  const int n = 24;
  Graph g = gnp(n, 0.4, rng);
  std::vector<std::uint32_t> w(g.edges().size());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
  std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
  for (auto& block : inputs) {
    block.assign(static_cast<std::size_t>(n), 0);
    for (auto& x : block) x = static_cast<std::uint32_t>(rng.uniform(1u << 20));
  }
  struct Baseline {
    CommStats boruvka, lotker, sort;
    std::uint64_t weight = 0;
  } base;
  bool have_base = false;
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreads scoped(threads);
    CliqueUnicast net1(n, 64), net2(n, 64), net3(n, 64);
    auto bor = clique_mst(net1, g, w, MstAlgorithm::kBoruvka);
    auto lot = clique_mst(net2, g, w, MstAlgorithm::kLotker);
    auto srt = clique_sort(net3, inputs);
    if (!have_base) {
      base = Baseline{bor.stats, lot.stats, srt.stats, bor.total_weight};
      have_base = true;
      continue;
    }
    EXPECT_EQ(bor.stats, base.boruvka) << "CC_THREADS=" << threads;
    EXPECT_EQ(lot.stats, base.lotker) << "CC_THREADS=" << threads;
    EXPECT_EQ(srt.stats, base.sort) << "CC_THREADS=" << threads;
    EXPECT_EQ(bor.total_weight, base.weight) << "CC_THREADS=" << threads;
    EXPECT_EQ(lot.total_weight, base.weight) << "CC_THREADS=" << threads;
  }
}

// ---------------------------------------------------------------- Sorting

TEST(CliqueSort, SortsRandomInputs) {
  Rng rng(6);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 12;
    const std::size_t k = 16;
    std::vector<std::vector<std::uint32_t>> inputs(n);
    std::vector<std::uint32_t> all;
    for (auto& block : inputs) {
      block.resize(k);
      for (auto& x : block) {
        x = static_cast<std::uint32_t>(rng.uniform(1u << 30));
        all.push_back(x);
      }
    }
    CliqueUnicast net(n, 64);
    auto result = clique_sort(net, inputs);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    for (const auto& block : result.blocks) {
      EXPECT_EQ(block.size(), k);
      EXPECT_TRUE(std::is_sorted(block.begin(), block.end()));
      for (auto x : block) got.push_back(x);
    }
    EXPECT_EQ(got, all) << "concatenated blocks must be the sorted sequence";
  }
}

TEST(CliqueSort, HandlesDuplicatesAndSkew) {
  Rng rng(7);
  const int n = 8;
  const std::size_t k = 10;
  std::vector<std::vector<std::uint32_t>> inputs(n);
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)].assign(k, static_cast<std::uint32_t>(i % 3));
  }
  CliqueUnicast net(n, 64);
  auto result = clique_sort(net, inputs);
  std::vector<std::uint32_t> got;
  for (const auto& block : result.blocks) {
    for (auto x : block) got.push_back(x);
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), static_cast<std::size_t>(n) * k);
}

TEST(CliqueSort, AlreadySortedAndReversed) {
  const int n = 6;
  const std::size_t k = 8;
  std::vector<std::vector<std::uint32_t>> fwd(n), rev(n);
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      fwd[static_cast<std::size_t>(i)].push_back(v);
      rev[static_cast<std::size_t>(n - 1 - i)].push_back(1000 - v);
      ++v;
    }
  }
  for (auto* inputs : {&fwd, &rev}) {
    CliqueUnicast net(n, 64);
    auto result = clique_sort(net, *inputs);
    std::vector<std::uint32_t> got;
    for (const auto& block : result.blocks) {
      for (auto x : block) got.push_back(x);
    }
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST(CliqueSort, AllEqualKeysKeepBucketsBalanced) {
  // Regression: with every key equal, all plain-key splitters coincide and
  // upper_bound used to send all n*k keys to one bucket (per-player in-load
  // n*k, collapsing the O(1)-phase balance claim). The composite tie-break
  // spreads equal keys by global rank instead.
  const int n = 8;
  const std::size_t k = 100;
  std::vector<std::vector<std::uint32_t>> inputs(
      static_cast<std::size_t>(n), std::vector<std::uint32_t>(k, 42));
  CliqueUnicast net(n, 64);
  auto result = clique_sort(net, inputs);
  std::size_t total = 0;
  for (std::size_t load : result.bucket_loads) {
    EXPECT_LE(load, 2 * k) << "bucket load must stay <= ~2x the average";
    total += load;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n) * k);
  for (const auto& block : result.blocks) {
    ASSERT_EQ(block.size(), k);
    for (auto x : block) EXPECT_EQ(x, 42u);
  }
}

TEST(CliqueSort, TwoValuedKeysKeepBucketsBalanced) {
  // The duplicate-collapse adversary: values constant per player (two- and
  // three-valued), so every plain-key splitter of the old scheme coincided
  // and one bucket received all equal keys. The composite tie-break must
  // keep every bucket <= ~2x the average.
  const int n = 8;
  const std::size_t k = 100;
  for (int values : {2, 3}) {
    std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      inputs[static_cast<std::size_t>(i)].assign(k, static_cast<std::uint32_t>(i % values));
    }
    CliqueUnicast net(n, 64);
    auto result = clique_sort(net, inputs);
    std::size_t total = 0;
    for (std::size_t load : result.bucket_loads) {
      EXPECT_LE(load, 2 * k) << values << "-valued: bucket load must stay <= ~2x average";
      total += load;
    }
    EXPECT_EQ(total, static_cast<std::size_t>(n) * k);
    std::vector<std::uint32_t> got;
    for (const auto& block : result.blocks) {
      for (auto x : block) got.push_back(x);
    }
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(got.size(), static_cast<std::size_t>(n) * k);
  }
}

TEST(CliqueSort, IdenticalMixedBlocksStaySortedCorrectly) {
  // Every player holding the same two-valued multiset stresses the
  // *splitter selection* rather than the tie-break (the sample columns are
  // value-homogeneous, so per-column rank selection cannot spread inside a
  // value class — see the balance note in sorting.h). Correctness and the
  // exact-rank final placement must hold regardless.
  const int n = 8;
  const std::size_t k = 60;
  std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      inputs[static_cast<std::size_t>(i)].push_back(t % 2 == 0 ? 0u : 1u);
    }
  }
  CliqueUnicast net(n, 64);
  auto result = clique_sort(net, inputs);
  std::vector<std::uint32_t> got;
  for (const auto& block : result.blocks) {
    EXPECT_EQ(block.size(), k);
    for (auto x : block) got.push_back(x);
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), static_cast<std::size_t>(n) * k);
}

TEST(CliqueSort, ConstantPhaseRounds) {
  // Rounds must not grow with n at fixed per-player load (the [28] shape).
  Rng rng(8);
  int rounds[2];
  int idx = 0;
  for (int n : {8, 24}) {
    std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
    for (auto& block : inputs) {
      block.resize(static_cast<std::size_t>(n));
      for (auto& x : block) x = static_cast<std::uint32_t>(rng.uniform(1u << 20));
    }
    CliqueUnicast net(n, 64);
    rounds[idx++] = clique_sort(net, inputs).stats.rounds;
  }
  EXPECT_LE(rounds[1], rounds[0] + 4) << "sorting rounds should be O(1)-ish in n";
}

}  // namespace
}  // namespace cclique
