// Tests for the sparse & sharded matrix substrate: CSR storage over both
// carriers (linalg/sparse), the sparse local kernels and their CC_THREADS
// determinism (linalg/kernels), the ShardLayout generalization of the block
// decomposition (core/block_mm.h — the row instance must reproduce PR 3's
// schedule bit-for-bit, the block instance must agree on values), the
// nnz-declared sparse MM schedule with its announcement phase and crossover
// rule (core/sparse_mm), the backend-routed counting/APSP entry points, the
// O(n + m) G(n, p) edge sampler, and the oblivious-guard contract around
// declared nnz dependence.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "core/algebraic_mm.h"
#include "core/apsp.h"
#include "core/block_mm.h"
#include "core/sparse_mm.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "linalg/kernels.h"
#include "linalg/sparse.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {
namespace {

/// Random Mat61 with roughly `density` of entries nonzero.
Mat61 sparse_random_m61(int n, double density, Rng& rng) {
  Mat61 m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform_double() < density) {
        m.set(i, j, 1 + rng.uniform(Mersenne61::kP - 1));
      }
    }
  }
  return m;
}

/// Random TropicalMat with roughly `density` of entries finite.
TropicalMat sparse_random_tropical(int n, double density, Rng& rng) {
  TropicalMat m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform_double() < density) m.set(i, j, rng.uniform(1000));
    }
  }
  return m;
}

// ------------------------------------------------------------ CSR storage

TEST(Csr61, RoundTripsRandomM61) {
  Rng rng(101);
  for (int n : {1, 7, 33}) {
    for (double d : {0.0, 0.07, 0.5, 1.0}) {
      const Mat61 dense = sparse_random_m61(n, d, rng);
      const Csr61 csr = Csr61::from_dense(dense);
      EXPECT_EQ(csr.ring(), SparseRing::kM61);
      EXPECT_TRUE(csr.to_mat61() == dense);
    }
  }
}

TEST(Csr61, RoundTripsRandomTropical) {
  Rng rng(102);
  for (int n : {1, 7, 33}) {
    for (double d : {0.0, 0.07, 0.5, 1.0}) {
      const TropicalMat dense = sparse_random_tropical(n, d, rng);
      const Csr61 csr = Csr61::from_dense(dense);
      EXPECT_EQ(csr.ring(), SparseRing::kTropical);
      EXPECT_EQ(csr.implicit_zero(), kTropicalInf);
      EXPECT_TRUE(csr.to_tropical() == dense);
    }
  }
}

TEST(Csr61, EmptyAndFullExtremes) {
  const Csr61 empty(5, SparseRing::kM61);
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_TRUE(empty.to_mat61() == Mat61(5));
  EXPECT_EQ(empty.get(2, 3), 0u);

  Mat61 full(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) full.set(i, j, 7);
  }
  const Csr61 csr = Csr61::from_dense(full);
  EXPECT_EQ(csr.nnz(), 16u);
  EXPECT_EQ(csr.get(3, 0), 7u);

  const Csr61 none(0, SparseRing::kTropical);
  EXPECT_EQ(none.n(), 0);
  EXPECT_EQ(none.nnz(), 0u);
}

TEST(Csr61, GetMatchesDense) {
  Rng rng(103);
  const Mat61 dense = sparse_random_m61(12, 0.3, rng);
  const Csr61 csr = Csr61::from_dense(dense);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) EXPECT_EQ(csr.get(i, j), dense.get(i, j));
  }
}

TEST(Csr61, FromEdgesMatchesAdjacency) {
  Rng rng(104);
  const Graph g = gnp(17, 0.25, rng);
  const Csr61 csr = Csr61::from_edges(17, g.edges());
  EXPECT_TRUE(csr == Csr61::from_dense(Mat61::adjacency(g)));
  EXPECT_EQ(csr.nnz(), 2 * g.num_edges());
}

TEST(Csr61, FromWeightedEdgesMatchesOneStepMatrix) {
  Rng rng(105);
  const Graph g = gnp(15, 0.3, rng);
  std::vector<std::uint32_t> w(g.num_edges());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(100));
  const Csr61 csr = Csr61::from_weighted_edges(15, g.edges(), w);
  EXPECT_TRUE(csr == Csr61::from_dense(TropicalMat::from_weighted_graph(g, w)));
}

TEST(Csr61, ValidatingCtorRejectsMalformedInput) {
  // Implicit zero stored explicitly.
  EXPECT_THROW(Csr61(2, SparseRing::kM61, {0, 1, 1}, {0}, {0}),
               PreconditionError);
  // Out-of-carrier value.
  EXPECT_THROW(Csr61(2, SparseRing::kM61, {0, 1, 1}, {0}, {Mersenne61::kP}),
               PreconditionError);
  // Tropical explicit +inf.
  EXPECT_THROW(Csr61(2, SparseRing::kTropical, {0, 1, 1}, {0}, {kTropicalInf}),
               PreconditionError);
  // Non-increasing columns.
  EXPECT_THROW(Csr61(2, SparseRing::kM61, {0, 2, 2}, {1, 0}, {1, 1}),
               PreconditionError);
  // row_ptr not spanning nnz.
  EXPECT_THROW(Csr61(2, SparseRing::kM61, {0, 1, 2}, {0}, {1}),
               PreconditionError);
}

// --------------------------------------------------------- sparse kernels

TEST(SparseKernels, SpmmMatchesSchoolbookM61) {
  Rng rng(201);
  for (int n : {1, 9, 40}) {
    for (double d : {0.0, 0.1, 0.6}) {
      const Mat61 a = sparse_random_m61(n, d, rng);
      const Mat61 b = Mat61::random(n, rng);
      const Mat61 got = m61_spmm_dispatch(Csr61::from_dense(a), b);
      EXPECT_TRUE(got == m61_multiply_schoolbook(a, b));
    }
  }
}

TEST(SparseKernels, SpmmMatchesSchoolbookTropical) {
  Rng rng(202);
  for (int n : {1, 9, 40}) {
    for (double d : {0.0, 0.1, 0.6}) {
      const TropicalMat a = sparse_random_tropical(n, d, rng);
      const TropicalMat b = TropicalMat::random(n, rng, 1000, 0.3);
      const TropicalMat got = tropical_spmm_dispatch(Csr61::from_dense(a), b);
      EXPECT_TRUE(got == tropical_multiply_schoolbook(a, b));
    }
  }
}

TEST(SparseKernels, CsrTimesCsrMatchesDenseBothRings) {
  Rng rng(203);
  const int n = 31;
  const Mat61 ma = sparse_random_m61(n, 0.15, rng);
  const Mat61 mb = sparse_random_m61(n, 0.15, rng);
  const Csr61 pm = csr_multiply_csr_dispatch(Csr61::from_dense(ma),
                                             Csr61::from_dense(mb));
  // Equality against from_dense(product) also proves entries that cancel
  // to the implicit zero were dropped, not stored.
  EXPECT_TRUE(pm == Csr61::from_dense(m61_multiply_schoolbook(ma, mb)));

  const TropicalMat ta = sparse_random_tropical(n, 0.15, rng);
  const TropicalMat tb = sparse_random_tropical(n, 0.15, rng);
  const Csr61 pt = csr_multiply_csr_dispatch(Csr61::from_dense(ta),
                                             Csr61::from_dense(tb));
  EXPECT_TRUE(pt == Csr61::from_dense(tropical_multiply_schoolbook(ta, tb)));
}

TEST(SparseKernels, ThreadCountNeverChangesABit) {
  Rng rng(204);
  const int n = 150;  // above the serial cutoff so threading really engages
  const Mat61 a = sparse_random_m61(n, 0.05, rng);
  const Mat61 b = Mat61::random(n, rng);
  const Csr61 sa = Csr61::from_dense(a);
  const Mat61 ref = m61_spmm_kernel(sa, b, 1);
  const TropicalMat ta = sparse_random_tropical(n, 0.05, rng);
  const TropicalMat tb = TropicalMat::random(n, rng, 1000, 0.2);
  const Csr61 sta = Csr61::from_dense(ta);
  const TropicalMat tref = tropical_spmm_kernel(sta, tb, 1);
  const Csr61 pref = csr_multiply_csr_kernel(sa, Csr61::from_dense(b), 1);
  for (int threads : {2, 8}) {
    EXPECT_TRUE(m61_spmm_kernel(sa, b, threads) == ref);
    EXPECT_TRUE(tropical_spmm_kernel(sta, tb, threads) == tref);
    EXPECT_TRUE(csr_multiply_csr_kernel(sa, Csr61::from_dense(b), threads) ==
                pref);
  }
}

// ----------------------------------------------------------- shard layouts

TEST(ShardLayout, RowInstanceReproducesDensePlanExactly) {
  for (int n : {5, 27, 64}) {
    const AlgebraicMmPlan dense = algebraic_mm_plan(n, 61, 64);
    const AlgebraicMmPlan sharded =
        sharded_mm_plan(n, 61, 64, blockmm::RowShardLayout());
    EXPECT_EQ(sharded.total_rounds, dense.total_rounds);
    EXPECT_EQ(sharded.total_bits, dense.total_bits);
    EXPECT_EQ(sharded.distribute_rounds, dense.distribute_rounds);
    EXPECT_EQ(sharded.aggregate_rounds, dense.aggregate_rounds);
    EXPECT_EQ(sharded.max_player_send_bits, dense.max_player_send_bits);
  }
}

TEST(ShardLayout, RowShardedRunMatchesDenseRunByteForByte) {
  Rng rng(301);
  const int n = 27;
  const Mat61 a = Mat61::random(n, rng);
  const Mat61 b = Mat61::random(n, rng);
  CliqueUnicast net_dense(n, 64), net_sharded(n, 64);
  Mat61 c_dense, c_sharded;
  const AlgebraicMmResult rd = algebraic_mm_m61(net_dense, a, b, &c_dense);
  const AlgebraicMmResult rs = algebraic_mm_m61_sharded(
      net_sharded, a, b, &c_sharded, blockmm::RowShardLayout());
  EXPECT_TRUE(c_dense == c_sharded);
  EXPECT_EQ(rd.total_rounds, rs.total_rounds);
  EXPECT_EQ(rd.total_bits, rs.total_bits);
  EXPECT_EQ(net_dense.stats().total_bits, net_sharded.stats().total_bits);
  EXPECT_EQ(net_dense.stats().rounds, net_sharded.stats().rounds);
}

TEST(ShardLayout, BlockShardedProductAgreesOnValues) {
  Rng rng(302);
  for (int n : {8, 27, 50}) {
    const blockmm::BlockShardLayout layout(n);
    const Mat61 a = Mat61::random(n, rng);
    const Mat61 b = Mat61::random(n, rng);
    CliqueUnicast net(n, 64);
    Mat61 c;
    const AlgebraicMmResult r = algebraic_mm_m61_sharded(net, a, b, &c, layout);
    EXPECT_TRUE(c == m61_multiply_schoolbook(a, b));
    EXPECT_EQ(r.total_rounds, r.plan.total_rounds);  // CC_CHECKed inside too
    EXPECT_GT(r.total_bits, 0u);
  }
}

TEST(ShardLayout, BlockShardedMinPlusAgreesWithDense) {
  Rng rng(303);
  const int n = 27;
  const TropicalMat a = TropicalMat::random(n, rng, 1000, 0.4);
  const TropicalMat b = TropicalMat::random(n, rng, 1000, 0.4);
  CliqueUnicast net(n, 64);
  TropicalMat c;
  min_plus_mm_sharded(net, a, b, &c, blockmm::BlockShardLayout(n));
  EXPECT_TRUE(c == tropical_multiply_schoolbook(a, b));
}

TEST(ShardLayout, BlockLayoutBalancesOwnership) {
  for (int n : {16, 100, 216}) {
    const blockmm::BlockShardLayout layout(n);
    std::vector<std::int64_t> held(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const int o = layout.owner(i, j);
        ASSERT_GE(o, 0);
        ASSERT_LT(o, n);
        ++held[static_cast<std::size_t>(o)];
      }
    }
    // O(n^2 / p) per player: one square tile plus rounding slack.
    const std::int64_t cap =
        4 * static_cast<std::int64_t>(layout.tile()) * layout.tile();
    for (int v = 0; v < n; ++v) EXPECT_LE(held[static_cast<std::size_t>(v)], cap);
  }
}

// ------------------------------------------------------ sparse MM schedule

TEST(SparseMm, ProductMatchesDenseBothRings) {
  Rng rng(401);
  for (int n : {5, 27, 64}) {
    const Mat61 a = sparse_random_m61(n, 0.08, rng);
    const Mat61 b = sparse_random_m61(n, 0.08, rng);
    CliqueUnicast net(n, 64);
    Mat61 c;
    const SparseMmResult r =
        sparse_mm_m61(net, Csr61::from_dense(a), Csr61::from_dense(b), &c);
    EXPECT_TRUE(c == m61_multiply_schoolbook(a, b));
    EXPECT_EQ(r.total_rounds, r.plan.total_rounds);
    EXPECT_EQ(r.total_bits, r.plan.total_bits);

    const TropicalMat ta = sparse_random_tropical(n, 0.08, rng);
    const TropicalMat tb = sparse_random_tropical(n, 0.08, rng);
    CliqueUnicast tnet(n, 64);
    TropicalMat tc;
    const SparseMmResult tr = sparse_min_plus_mm(
        tnet, Csr61::from_dense(ta), Csr61::from_dense(tb), &tc);
    EXPECT_TRUE(tc == tropical_multiply_schoolbook(ta, tb));
    EXPECT_EQ(tr.total_bits, tr.plan.total_bits);
  }
}

TEST(SparseMm, LowDensityBeatsDenseBitsHighDensityDoesNot) {
  const int n = 64;
  Rng rng(402);
  const Mat61 lo = sparse_random_m61(n, 0.03, rng);
  const Csr61 slo = Csr61::from_dense(lo);
  const SparseMmPlan plan_lo =
      sparse_mm_plan(n, 61, 64, declared_nnz_profile(slo, slo));
  EXPECT_LT(plan_lo.total_bits, plan_lo.dense_bits);
  EXPECT_TRUE(sparse_backend_preferred(plan_lo));

  Mat61 hi(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) hi.set(i, j, 1 + rng.uniform(10));
  }
  const Csr61 shi = Csr61::from_dense(hi);
  const SparseMmPlan plan_hi =
      sparse_mm_plan(n, 61, 64, declared_nnz_profile(shi, shi));
  // Fully dense input: every pair now also carries an index, so the sparse
  // distribution strictly loses and the crossover must pick dense.
  EXPECT_FALSE(sparse_backend_preferred(plan_hi));
}

TEST(SparseMm, EmptyOperandsStillFollowThePlan) {
  const int n = 27;
  CliqueUnicast net(n, 64);
  Mat61 c;
  const SparseMmResult r = sparse_mm_m61(net, Csr61(n, SparseRing::kM61),
                                         Csr61(n, SparseRing::kM61), &c);
  EXPECT_TRUE(c == Mat61(n));
  EXPECT_EQ(r.total_bits, r.plan.total_bits);
  // Announcement and dense-width aggregation still run; only the
  // distribution phase is free.
  EXPECT_GT(r.plan.announce_bits, 0u);
}

TEST(SparseMm, MixedRingOperandsAreRejected) {
  const int n = 8;
  CliqueUnicast net(n, 64);
  Mat61 c;
  EXPECT_THROW(sparse_mm_m61(net, Csr61(n, SparseRing::kTropical),
                             Csr61(n, SparseRing::kTropical), &c),
               PreconditionError);
}

// ------------------------------------------------------- backend routing

TEST(CountBackend, FourCycleCountAgreesAcrossBackends) {
  Rng rng(501);
  const Graph g = gnp(40, 0.12, rng);
  const std::uint64_t truth = count_four_cycles(g);
  CliqueUnicast net_d(40, 64), net_s(40, 64), net_a(40, 64);
  const AlgebraicCountResult rd =
      four_cycle_count_algebraic(net_d, g, CountBackend::kDense);
  const AlgebraicCountResult rs =
      four_cycle_count_algebraic(net_s, g, CountBackend::kSparse);
  const AlgebraicCountResult ra =
      four_cycle_count_algebraic(net_a, g, CountBackend::kAuto);
  EXPECT_EQ(rd.count, truth);
  EXPECT_EQ(rs.count, truth);
  EXPECT_EQ(ra.count, truth);
  EXPECT_FALSE(rd.used_sparse);
  EXPECT_TRUE(rs.used_sparse);
  // Sparse graph below the crossover: kAuto must take the sparse branch
  // and spend fewer bits than the dense run.
  EXPECT_TRUE(ra.used_sparse);
  EXPECT_LT(net_a.stats().total_bits, net_d.stats().total_bits);
}

TEST(CountBackend, AutoFallsBackToDenseAboveCrossover) {
  const Graph g = complete_graph(24);
  CliqueUnicast net(24, 64), net_d(24, 64);
  const AlgebraicCountResult ra =
      four_cycle_count_algebraic(net, g, CountBackend::kAuto);
  const AlgebraicCountResult rd = four_cycle_count_algebraic(net_d, g);
  EXPECT_EQ(ra.count, rd.count);
  EXPECT_FALSE(ra.used_sparse);
  EXPECT_GT(ra.announce_rounds, 0);  // the decision itself was paid for
  EXPECT_EQ(ra.total_rounds,
            ra.announce_rounds + ra.mm.total_rounds + ra.share_rounds);
}

TEST(CountBackend, DefaultBackendScheduleIsUnchanged) {
  // The refactor must leave the default (baseline-measured) path
  // bit-identical: no announcement, dense plan only.
  Rng rng(502);
  const Graph g = gnp(30, 0.3, rng);
  CliqueUnicast net(30, 64);
  const AlgebraicCountResult r = four_cycle_count_algebraic(net, g);
  EXPECT_FALSE(r.used_sparse);
  EXPECT_EQ(r.announce_rounds, 0);
  EXPECT_EQ(net.stats().total_bits,
            r.mm.plan.total_bits +
                static_cast<std::uint64_t>(30) * 29 * 3 * 61);
}

TEST(ApspSparse, DistancesMatchDijkstraAndDenseRun) {
  Rng rng(503);
  for (const Graph& g : {random_tree(22, rng), gnp(22, 0.1, rng)}) {
    std::vector<std::uint32_t> w(g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(50));
    CliqueUnicast net(g.num_vertices(), 64);
    const ApspSparseResult sparse = apsp_run_sparse(net, g, w);
    EXPECT_TRUE(sparse.dist == apsp_dijkstra_reference(g, w));
    CliqueUnicast net_dense(g.num_vertices(), 64);
    const ApspResult dense = apsp_run(net_dense, g, w);
    EXPECT_TRUE(sparse.dist == dense.dist);
    ASSERT_FALSE(sparse.steps.empty());
    // A tree / sparse G(n, p) one-step matrix sits far below the crossover.
    EXPECT_TRUE(sparse.steps.front().used_sparse);
  }
}

TEST(ApspSparse, StepsRecordDensification) {
  Rng rng(504);
  const Graph g = gnp(33, 0.15, rng);
  std::vector<std::uint32_t> w(g.num_edges(), 1);
  CliqueUnicast net(33, 64);
  const ApspSparseResult r = apsp_run_sparse(net, g, w);
  // nnz is monotone under min-plus squaring (an entry once finite stays
  // finite), and every step records the profile it declared.
  for (std::size_t s = 1; s < r.steps.size(); ++s) {
    EXPECT_GE(r.steps[s].declared_nnz, r.steps[s - 1].declared_nnz);
  }
  EXPECT_GT(r.total_bits, 0u);
}

// ------------------------------------------------------------- gnp_edges

TEST(GnpEdges, DeterministicCanonicalAndInRange) {
  Rng rng1(601), rng2(601);
  const std::vector<Edge> e1 = gnp_edges(200, 0.05, rng1);
  const std::vector<Edge> e2 = gnp_edges(200, 0.05, rng2);
  EXPECT_TRUE(e1 == e2);
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_GE(e1[i].u, 0);
    EXPECT_LT(e1[i].u, e1[i].v);
    EXPECT_LT(e1[i].v, 200);
    // Sorted by larger endpoint then smaller, strictly — so no duplicates.
    if (i > 0) {
      EXPECT_TRUE(std::make_pair(e1[i - 1].v, e1[i - 1].u) <
                  std::make_pair(e1[i].v, e1[i].u));
    }
  }
}

TEST(GnpEdges, Extremes) {
  Rng rng(602);
  EXPECT_TRUE(gnp_edges(50, 0.0, rng).empty());
  EXPECT_TRUE(gnp_edges(1, 0.7, rng).empty());
  EXPECT_EQ(gnp_edges(20, 1.0, rng).size(), 190u);  // C(20, 2)
}

TEST(GnpEdges, MeanDegreeIsPlausible) {
  Rng rng(603);
  const int n = 5000;
  const double p = 8.0 / n;
  const std::vector<Edge> edges = gnp_edges(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;  // = 4 * (n - 1)
  EXPECT_GT(static_cast<double>(edges.size()), 0.8 * expected);
  EXPECT_LT(static_cast<double>(edges.size()), 1.2 * expected);
}

TEST(GnpEdges, FeedsCsrBeyondTheDenseCap) {
  // n = 20000 would need ~3 GB as a dense Mat61; the edge-list -> CSR path
  // handles it in O(n + m).
  Rng rng(604);
  const int n = 20000;
  const std::vector<Edge> edges = gnp_edges(n, 6.0 / n, rng);
  const Csr61 adj = Csr61::from_edges(n, edges);
  EXPECT_EQ(adj.nnz(), 2 * edges.size());
  EXPECT_EQ(adj.n(), n);
  // Spot-check symmetry through the tainted-but-free accessor.
  const Edge e = edges.front();
  EXPECT_EQ(adj.get(e.u, e.v), 1u);
  EXPECT_EQ(adj.get(e.v, e.u), 1u);
}

// ------------------------------------------------- oblivious-guard contract

TEST(SparseOblivious, StructureReadsInsideSinksThrow) {
  if (!oblivious::enabled()) GTEST_SKIP() << "guard disabled in this build";
  Rng rng(701);
  const Csr61 csr = Csr61::from_dense(sparse_random_m61(6, 0.4, rng));
  oblivious::SinkScope sink("sparse_test planted sink");
  // Planted violation: pricing a schedule straight off CSR structure
  // without declaring the dependence must trip the runtime guard.
  EXPECT_THROW(csr.nnz(), ModelViolation);
  EXPECT_THROW(csr.row_nnz(0), ModelViolation);
  EXPECT_THROW(csr.row_ptr(), ModelViolation);
  EXPECT_THROW(csr.cols(), ModelViolation);
  EXPECT_THROW(csr.vals(), ModelViolation);
  EXPECT_THROW(csr.get(0, 0), ModelViolation);
}

TEST(SparseOblivious, DeclaredNnzProfileCountsInsteadOfThrowing) {
  Rng rng(702);
  const Csr61 csr = Csr61::from_dense(sparse_random_m61(9, 0.3, rng));
  const std::uint64_t before = oblivious::declared_use_count();
  const SparseNnzProfile prof = declared_nnz_profile(csr, csr);
  EXPECT_EQ(prof.n, 9);
  EXPECT_EQ(prof.a_nnz, static_cast<std::uint64_t>(csr.nnz()));
  if (oblivious::enabled()) {
    // The profile's structure reads ran under a declared dependence inside
    // a sink: counted, not fatal.
    EXPECT_GT(oblivious::declared_use_count(), before);
  } else {
    EXPECT_EQ(oblivious::declared_use_count(), before);
  }
}

TEST(SparseOblivious, SparseRunIsCleanUnderTheGuard) {
  // The full three-phase sparse product must run violation-free with the
  // guard armed: every structure read is either declared (profile) or an
  // executor-side read outside any sink.
  Rng rng(703);
  const int n = 16;
  const Mat61 a = sparse_random_m61(n, 0.2, rng);
  CliqueUnicast net(n, 64);
  Mat61 c;
  const Csr61 sa = Csr61::from_dense(a);
  EXPECT_NO_THROW(sparse_mm_m61(net, sa, sa, &c));
  EXPECT_TRUE(c == m61_multiply_schoolbook(a, a));
}

}  // namespace
}  // namespace cclique
