// Tests for exact subgraph search — the ground-truth oracle for every
// protocol in the library.
#include <gtest/gtest.h>

#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace cclique {
namespace {

TEST(Triangles, CountOnKnownGraphs) {
  EXPECT_EQ(count_triangles(complete_graph(3)), 1u);
  EXPECT_EQ(count_triangles(complete_graph(5)), 10u);
  EXPECT_EQ(count_triangles(complete_graph(8)), 56u);
  EXPECT_EQ(count_triangles(cycle_graph(4)), 0u);
  EXPECT_EQ(count_triangles(complete_bipartite(4, 4)), 0u);
  EXPECT_EQ(count_triangles(path_graph(10)), 0u);
}

TEST(Triangles, ListMatchesCount) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(25, 0.3, rng);
    auto tris = list_triangles(g);
    EXPECT_EQ(tris.size(), count_triangles(g));
    for (const Triangle& t : tris) {
      EXPECT_LT(t.a, t.b);
      EXPECT_LT(t.b, t.c);
      EXPECT_TRUE(g.has_edge(t.a, t.b));
      EXPECT_TRUE(g.has_edge(t.b, t.c));
      EXPECT_TRUE(g.has_edge(t.a, t.c));
    }
  }
}

TEST(Cliques, DetectionMatchesConstruction) {
  EXPECT_TRUE(contains_clique(complete_graph(6), 6));
  EXPECT_FALSE(contains_clique(complete_graph(6), 7));
  EXPECT_TRUE(contains_clique(complete_graph(6), 3));
  EXPECT_FALSE(contains_clique(complete_bipartite(5, 5), 3));
  EXPECT_FALSE(contains_clique(cycle_graph(5), 3));
}

TEST(Cliques, PlantedCliqueFound) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gnp(30, 0.1, rng);
    Graph k5 = complete_graph(5);
    plant_subgraph(g, k5, rng);
    EXPECT_TRUE(contains_clique(g, 5));
  }
}

TEST(SubgraphSearch, MatchesCliqueSpecialization) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(18, 0.4, rng);
    for (int k = 3; k <= 5; ++k) {
      EXPECT_EQ(contains_subgraph(g, complete_graph(k)), contains_clique(g, k));
    }
  }
}

TEST(SubgraphSearch, EmbeddingIsValid) {
  Rng rng(4);
  Graph g = gnp(20, 0.35, rng);
  Graph h = cycle_graph(5);
  plant_subgraph(g, h, rng);
  auto emb = find_subgraph(g, h);
  ASSERT_TRUE(emb.has_value());
  for (const Edge& e : h.edges()) {
    EXPECT_TRUE(g.has_edge((*emb)[static_cast<std::size_t>(e.u)],
                           (*emb)[static_cast<std::size_t>(e.v)]));
  }
}

TEST(SubgraphSearch, DisconnectedPattern) {
  // Two disjoint edges as a pattern.
  Graph h(4);
  h.add_edge(0, 1);
  h.add_edge(2, 3);
  Graph g = path_graph(5);  // contains 2 disjoint edges
  EXPECT_TRUE(contains_subgraph(g, h));
  Graph small = path_graph(3);  // only 2 adjacent edges
  EXPECT_FALSE(contains_subgraph(small, h));
}

TEST(SubgraphSearch, TriangleCountViaEmbeddings) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gnp(14, 0.4, rng);
    // Each triangle has 3! = 6 labelled embeddings.
    EXPECT_EQ(count_subgraph_embeddings(g, complete_graph(3)),
              6 * count_triangles(g));
  }
}

TEST(SubgraphSearch, StarRequiresDegree) {
  Graph g = path_graph(10);
  EXPECT_TRUE(contains_subgraph(g, star_graph(3)));   // needs degree 2
  EXPECT_FALSE(contains_subgraph(g, star_graph(4)));  // needs degree 3
}

TEST(Cycles, DetectionOnKnownGraphs) {
  EXPECT_TRUE(contains_cycle(cycle_graph(7), 7));
  EXPECT_FALSE(contains_cycle(cycle_graph(7), 5));
  EXPECT_FALSE(contains_cycle(cycle_graph(7), 6));
  // C4 inside K_{2,3}.
  EXPECT_TRUE(contains_cycle(complete_bipartite(2, 3), 4));
  EXPECT_FALSE(contains_cycle(complete_bipartite(2, 3), 5));
  // K5 contains all cycle lengths 3..5.
  for (int l = 3; l <= 5; ++l) EXPECT_TRUE(contains_cycle(complete_graph(5), l));
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth(cycle_graph(9)), 9);
  EXPECT_EQ(girth(complete_graph(5)), 3);
  EXPECT_EQ(girth(complete_bipartite(3, 3)), 4);
  EXPECT_EQ(girth(path_graph(8)), -1);
  Rng rng(6);
  EXPECT_EQ(girth(random_tree(20, rng)), -1);
}

TEST(Girth, PetersenGraphIsFive) {
  // Petersen graph: outer C5, inner pentagram, spokes.
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);          // outer cycle
    g.add_edge(5 + i, 5 + (i + 2) % 5);  // pentagram
    g.add_edge(i, 5 + i);                // spokes
  }
  EXPECT_EQ(girth(g), 5);
}

TEST(ForEachEmbedding, CountsMatch) {
  Rng rng(7);
  Graph g = gnp(12, 0.4, rng);
  Graph h = path_graph(3);
  std::uint64_t via_visitor = 0;
  for_each_embedding(g, h, [&](const std::vector<int>&) {
    ++via_visitor;
    return true;
  });
  EXPECT_EQ(via_visitor, count_subgraph_embeddings(g, h));
}

TEST(SubgraphSearch, ColoringPrecheckRejectsFast) {
  // These hosts make the backtracking search degenerate (it enumerates
  // nearly every |V(h)|-tuple before failing); the chromatic precheck in
  // find_subgraph must answer them without entering the search. The suite
  // timeout is the regression guard.
  const Graph big_bip = complete_bipartite(60, 60);
  EXPECT_FALSE(contains_subgraph(big_bip, complete_graph(3)));
  EXPECT_FALSE(contains_subgraph(big_bip, cycle_graph(5)));
  EXPECT_FALSE(contains_subgraph(big_bip, cycle_graph(7)));
  EXPECT_FALSE(contains_subgraph(turan_graph(120, 3), complete_graph(4)));
}

TEST(SubgraphSearch, ColoringPrecheckKeepsPositives) {
  // Soundness of the precheck: patterns that do embed must still be found,
  // including on hosts whose greedy coloring is small.
  Rng rng(77);
  Graph bip_plus = complete_bipartite(20, 20);
  EXPECT_TRUE(contains_subgraph(bip_plus, cycle_graph(4)));
  plant_subgraph(bip_plus, cycle_graph(5), rng);
  EXPECT_TRUE(contains_subgraph(bip_plus, cycle_graph(5)));
  EXPECT_TRUE(contains_subgraph(turan_graph(30, 4), complete_graph(4)));
}

TEST(ForEachEmbedding, EarlyStop) {
  Graph g = complete_graph(8);
  int seen = 0;
  for_each_embedding(g, complete_graph(3), [&](const std::vector<int>&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5);
}

}  // namespace
}  // namespace cclique
