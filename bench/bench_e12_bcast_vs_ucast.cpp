// E12 — the Section 1 capacity separation: CLIQUE-UCAST moves Θ(n^2 b)
// bits per round, CLIQUE-BCAST only Θ(nb) unique bits.
//
// Measured on the "learn all inputs" task (every player holds n bits; all
// players must learn everything): BCAST needs ~n^2/(nb) = n/b rounds,
// UCAST achieves it in ~n/b... per *pair* delivered in parallel — i.e.
// the same wall-round count but n times the delivered volume; we report
// rounds and aggregate throughput per round, which exposes the n-factor
// cut-capacity difference that makes Section 3's bottleneck arguments
// possible.
#include "bench_util.h"
#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E12: broadcast vs unicast capacity (Section 1)",
      "per round: UCAST carries Θ(n^2 b) bits, BCAST Θ(nb) unique bits; "
      "only Θ(nb) crosses any cut in BCAST — the lever behind Section 3");
  Rng rng(12);
  const int b = 8;

  Table t({"n", "task", "model", "rounds", "total bits", "bits/round",
           "cut bits (balanced)"},
          {kP, kP, kP, kM, kM, kM, kM});
  for (int n : benchutil::grid({16, 32, 64})) {
    // Task: all-to-all exchange — every ordered pair (i, j) must move
    // player i's n-bit input to player j.
    std::vector<Message> inputs(static_cast<std::size_t>(n));
    for (auto& m : inputs) {
      for (int k = 0; k < n; ++k) m.push_bit(rng.coin());
    }
    std::vector<int> side(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) side[static_cast<std::size_t>(i)] = i % 2;
    {
      CliqueUnicast net(n, b);
      net.set_cut(side);
      std::vector<std::vector<Message>> payload(
          static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i != j) payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = inputs[static_cast<std::size_t>(i)];
        }
      }
      std::vector<std::vector<Message>> received;
      unicast_payloads(net, payload, &received);
      t.add_row({cell("%d", n), "learn-all", "UCAST",
                 cell("%d", net.stats().rounds),
                 cell("%llu", static_cast<unsigned long long>(net.stats().total_bits)),
                 cell("%.0f", static_cast<double>(net.stats().total_bits) /
                                  net.stats().rounds),
                 cell("%llu", static_cast<unsigned long long>(net.stats().cut_bits))});
    }
    {
      CliqueBroadcast net(n, b);
      net.set_cut(side);
      int rounds = 0;
      broadcast_payloads(net, inputs, &rounds);
      t.add_row({cell("%d", n), "learn-all", "BCAST",
                 cell("%d", net.stats().rounds),
                 cell("%llu", static_cast<unsigned long long>(net.stats().total_bits)),
                 cell("%.0f", static_cast<double>(net.stats().total_bits) /
                                  net.stats().rounds),
                 cell("%llu", static_cast<unsigned long long>(net.stats().cut_bits))});
    }
  }
  t.print();
  std::printf("shape check: same task, same rounds (n/b) — but UCAST moved "
              "n x the volume; equivalently its bits/round is n x BCAST's. "
              "A task needing n^2 *distinct* bits across a cut costs BCAST "
              "n/b extra rounds per n bits — the Section 3.2 bottleneck\n");
  return benchutil::finish();
}
