// E15 — extension workloads: the classical congested-clique problems the
// paper's Section 1 frames the model around.
//
//   (a) general d-vertex subgraph detection, [8]: Õ(n^{(d-2)/d}) rounds;
//   (b) MST ablation: the Borůvka baseline (O(log n) phases) vs the
//       Lotker-style schedule of [30] (O(log log n) phases via doubly
//       exponential fragment growth) on the same inputs — measured phases
//       against the log n vs log log n predicted series;
//   (c) sorting ([32]/[28]) — O(1) phases over the routing substrate;
//   (d) CONGEST C4 detection (paper's full-version claim):
//       O(sqrt(n) log n / b) on near-extremal inputs.
#include <cmath>

#include "bench_util.h"
#include "core/congest_c4.h"
#include "core/dlp_subgraph.h"
#include "core/mst.h"
#include "core/sorting.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E15: extension workloads (Section 1 context: [8], [30], [32], [28], "
      "full-version C4)",
      "subgraph detection ~n^{(d-2)/d}; MST in O(log n) Borůvka vs "
      "O(log log n) Lotker phases; sorting in O(1) phases; CONGEST C4 "
      "~sqrt(n) log n / b");
  Rng rng(15);

  // (a) general subgraph detection: d sweep at fixed n.
  Table a({"pattern", "d", "n", "groups t", "rounds", "detected", "truth",
           "rounds/n^{(d-2)/d}"},
          {kP, kP, kP, kM, kM, kM, kP, kM});
  for (int n : benchutil::grid({64, 128})) {
    Graph g = gnp(n, 0.3, rng);
    struct P {
      const char* name;
      Graph h;
    };
    std::vector<P> patterns;
    patterns.push_back({"K3", complete_graph(3)});
    patterns.push_back({"C4", cycle_graph(4)});
    patterns.push_back({"K4", complete_graph(4)});
    patterns.push_back({"C5", cycle_graph(5)});
    for (auto& p : patterns) {
      const int d = p.h.num_vertices();
      CliqueUnicast net(n, 32);
      auto r = dlp_subgraph_detect(net, g, p.h);
      const double pred = std::pow(n, (d - 2.0) / d);
      a.add_row({p.name, cell("%d", d), cell("%d", n), cell("%d", r.groups),
                 cell("%d", r.stats.rounds),
                 r.detected ? "yes" : "no",
                 contains_subgraph(g, p.h) ? "yes" : "no",
                 cell("%.2f", r.stats.rounds / pred)});
    }
  }
  std::printf("--- (a) [8] general detection: normalized rounds flat per pattern ---\n");
  a.print();

  // (b) MST ablation: both schedules on the same inputs, phases measured
  // against the predicted series (log2 n for Borůvka, log2 log2 n for
  // Lotker). All rounds flow through the metered engines; each phase is
  // CC_CHECKed against its data-independent (n, F, b) plan inside
  // clique_mst, so a printed row is also a verified cost schedule.
  Table b({"graph", "n", "algo", "phases", "rounds", "max phase rds",
           "weight ok", "phase bound", "phases/series"},
          {kP, kP, kP, kM, kM, kM, kM, kD, kM});
  struct MstInput {
    std::string name;
    Graph g;
  };
  std::vector<MstInput> mst_inputs;
  for (int n : benchutil::grid({16, 32, 64, 128})) {
    mst_inputs.push_back({cell("gnp_%d", n), gnp(n, 0.5, rng)});
  }
  for (int n : benchutil::grid({64, 256, 512})) {
    // Paths are Borůvka's worst case (fragment count halves per phase), so
    // the log n vs log log n separation is sharpest here.
    mst_inputs.push_back({cell("path_%d", n), path_graph(n)});
  }
  for (std::uint64_t q : benchutil::grid<std::uint64_t>({7, 13})) {
    // Polarity graphs: the near-extremal C4-free expanders of the E8/E15
    // lower-bound benches, here as structured MST inputs.
    Graph er = polarity_graph(q);
    mst_inputs.push_back(
        {cell("ER_%llu", static_cast<unsigned long long>(q)), er});
  }
  for (const auto& input : mst_inputs) {
    const int n = input.g.num_vertices();
    std::vector<std::uint32_t> w(input.g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    auto ref = kruskal_reference(input.g, w);
    std::uint64_t ref_weight = 0;
    for (const auto& e : ref) ref_weight += e.weight;
    for (MstAlgorithm algo : {MstAlgorithm::kBoruvka, MstAlgorithm::kLotker}) {
      const bool lotker = algo == MstAlgorithm::kLotker;
      CliqueUnicast net(n, 64);
      auto r = clique_mst(net, input.g, w, algo);
      int max_phase_rounds = 0;
      for (const auto& c : r.phase_costs) {
        max_phase_rounds = std::max(max_phase_rounds, c.rounds);
      }
      const int bound = lotker ? mst_lotker_phase_bound(n)
                               : static_cast<int>(std::ceil(std::log2(n)));
      const double series = lotker ? std::log2(std::log2(n)) : std::log2(n);
      b.add_row({input.name, cell("%d", n), lotker ? "lotker" : "boruvka",
                 cell("%d", r.phases), cell("%d", r.stats.rounds),
                 cell("%d", max_phase_rounds),
                 r.total_weight == ref_weight ? "yes" : "NO",
                 cell("%d", bound), cell("%.2f", r.phases / series)});
    }
  }
  std::printf(
      "--- (b) MST ablation: boruvka phases ~log2 n, lotker phases "
      "~log2 log2 n (per-phase cost CC_CHECKed vs (n,F,b) plan) ---\n");
  b.print();

  // (c) sorting.
  Table c({"n", "keys/player", "rounds", "total bits", "sorted ok"},
          {kP, kP, kM, kM, kM});
  for (int n : benchutil::grid({16, 32, 64})) {
    std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
    std::vector<std::uint32_t> all;
    for (auto& block : inputs) {
      block.resize(static_cast<std::size_t>(n));
      for (auto& x : block) {
        x = static_cast<std::uint32_t>(rng.uniform(1u << 30));
        all.push_back(x);
      }
    }
    CliqueUnicast net(n, 64);
    auto r = clique_sort(net, inputs);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    for (const auto& blk : r.blocks) {
      for (auto x : blk) got.push_back(x);
    }
    c.add_row({cell("%d", n), cell("%d", n), cell("%d", r.stats.rounds),
               cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
               got == all ? "yes" : "NO"});
  }
  std::printf("--- (c) sorting: rounds ~constant in n at n keys/player ---\n");
  c.print();

  // (d) CONGEST C4 on near-extremal inputs.
  Table d_tab({"input", "n", "max deg", "rounds", "detected",
               "rounds/(sqrt(n) log n / b)"},
              {kP, kP, kP, kM, kM, kM});
  const int bw = 8;
  for (std::uint64_t q : benchutil::grid<std::uint64_t>({5, 7, 11, 13})) {
    Graph er = polarity_graph(q);
    auto r = congest_c4_detect(er, bw);
    const double n = er.num_vertices();
    const double pred = std::sqrt(n) * std::log2(n) / bw;
    d_tab.add_row({cell("ER_%llu", static_cast<unsigned long long>(q)),
                   cell("%.0f", n), cell("%d", r.max_degree),
                   cell("%d", r.stats.rounds), r.detected ? "yes" : "no",
                   cell("%.2f", r.stats.rounds / pred)});
  }
  std::printf("--- (d) CONGEST C4 on C4-free extremal inputs (hardest 'no') ---\n");
  d_tab.print();
  return benchutil::finish();
}
