// E15 — extension workloads: the classical congested-clique problems the
// paper's Section 1 frames the model around.
//
//   (a) general d-vertex subgraph detection, [8]: Õ(n^{(d-2)/d}) rounds;
//   (b) MST (Borůvka schedule; [30] reached O(log log n)) — O(log n) phases;
//   (c) sorting ([32]/[28]) — O(1) phases over the routing substrate;
//   (d) CONGEST C4 detection (paper's full-version claim):
//       O(sqrt(n) log n / b) on near-extremal inputs.
#include <cmath>

#include "bench_util.h"
#include "core/congest_c4.h"
#include "core/dlp_subgraph.h"
#include "core/mst.h"
#include "core/sorting.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E15: extension workloads (Section 1 context: [8], [30], [32], [28], "
      "full-version C4)",
      "subgraph detection ~n^{(d-2)/d}; MST in O(log n) Borůvka phases; "
      "sorting in O(1) phases; CONGEST C4 ~sqrt(n) log n / b");
  Rng rng(15);

  // (a) general subgraph detection: d sweep at fixed n.
  Table a({"pattern", "d", "n", "groups t", "rounds", "detected", "truth",
           "rounds/n^{(d-2)/d}"},
          {kP, kP, kP, kM, kM, kM, kP, kM});
  for (int n : benchutil::grid({64, 128})) {
    Graph g = gnp(n, 0.3, rng);
    struct P {
      const char* name;
      Graph h;
    };
    std::vector<P> patterns;
    patterns.push_back({"K3", complete_graph(3)});
    patterns.push_back({"C4", cycle_graph(4)});
    patterns.push_back({"K4", complete_graph(4)});
    patterns.push_back({"C5", cycle_graph(5)});
    for (auto& p : patterns) {
      const int d = p.h.num_vertices();
      CliqueUnicast net(n, 32);
      auto r = dlp_subgraph_detect(net, g, p.h);
      const double pred = std::pow(n, (d - 2.0) / d);
      a.add_row({p.name, cell("%d", d), cell("%d", n), cell("%d", r.groups),
                 cell("%d", r.stats.rounds),
                 r.detected ? "yes" : "no",
                 contains_subgraph(g, p.h) ? "yes" : "no",
                 cell("%.2f", r.stats.rounds / pred)});
    }
  }
  std::printf("--- (a) [8] general detection: normalized rounds flat per pattern ---\n");
  a.print();

  // (b) MST.
  Table b({"n", "graph", "phases", "rounds", "tree edges", "weight ok"},
          {kP, kP, kM, kM, kM, kM});
  for (int n : benchutil::grid({16, 32, 64})) {
    Graph g = gnp(n, 0.5, rng);
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    CliqueUnicast net(n, 64);
    auto r = clique_mst(net, g, w);
    auto ref = kruskal_reference(g, w);
    std::uint64_t ref_weight = 0;
    for (const auto& e : ref) ref_weight += e.weight;
    b.add_row({cell("%d", n), "G(n,0.5)", cell("%d", r.phases),
               cell("%d", r.stats.rounds), cell("%zu", r.tree.size()),
               r.total_weight == ref_weight ? "yes" : "NO"});
  }
  std::printf("--- (b) MST: phases <= log2 n, O(1) rounds per phase ---\n");
  b.print();

  // (c) sorting.
  Table c({"n", "keys/player", "rounds", "total bits", "sorted ok"},
          {kP, kP, kM, kM, kM});
  for (int n : benchutil::grid({16, 32, 64})) {
    std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
    std::vector<std::uint32_t> all;
    for (auto& block : inputs) {
      block.resize(static_cast<std::size_t>(n));
      for (auto& x : block) {
        x = static_cast<std::uint32_t>(rng.uniform(1u << 30));
        all.push_back(x);
      }
    }
    CliqueUnicast net(n, 64);
    auto r = clique_sort(net, inputs);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    for (const auto& blk : r.blocks) {
      for (auto x : blk) got.push_back(x);
    }
    c.add_row({cell("%d", n), cell("%d", n), cell("%d", r.stats.rounds),
               cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
               got == all ? "yes" : "NO"});
  }
  std::printf("--- (c) sorting: rounds ~constant in n at n keys/player ---\n");
  c.print();

  // (d) CONGEST C4 on near-extremal inputs.
  Table d_tab({"input", "n", "max deg", "rounds", "detected",
               "rounds/(sqrt(n) log n / b)"},
              {kP, kP, kP, kM, kM, kM});
  const int bw = 8;
  for (std::uint64_t q : benchutil::grid<std::uint64_t>({5, 7, 11, 13})) {
    Graph er = polarity_graph(q);
    auto r = congest_c4_detect(er, bw);
    const double n = er.num_vertices();
    const double pred = std::sqrt(n) * std::log2(n) / bw;
    d_tab.add_row({cell("ER_%llu", static_cast<unsigned long long>(q)),
                   cell("%.0f", n), cell("%d", r.max_degree),
                   cell("%d", r.stats.rounds), r.detected ? "yes" : "no",
                   cell("%.2f", r.stats.rounds / pred)});
  }
  std::printf("--- (d) CONGEST C4 on C4-free extremal inputs (hardest 'no') ---\n");
  d_tab.print();
  return benchutil::finish();
}
