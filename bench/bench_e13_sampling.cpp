// E13 — Lemma 8: the X_v mod 2^j edge sampling concentrates the degeneracy
// of G_j around k * 2^-j (while k * 2^-j >= c log n).
//
// Measured: mean and extreme K_j / (k 2^-j) ratios over repeated samplings
// on graphs with known degeneracy, per level j — reproducing the 0.9..1.1
// w.h.p. band of the lemma (wider at small scale).
#include <algorithm>

#include "bench_util.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/sampling.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E13: Lemma 8 — sampled-subgraph degeneracy concentration",
      "w.h.p. 0.9 k 2^-j <= K_j <= 1.1 k 2^-j for all j with k 2^-j >= "
      "c log n");
  Rng rng(13);

  struct Host {
    const char* name;
    Graph g;
  };
  std::vector<Host> hosts;
  hosts.push_back({"K_96 + fringe", complete_graph(96).disjoint_union(path_graph(32))});
  if (!benchutil::smoke()) {
    hosts.push_back({"G(128, 0.5)", gnp(128, 0.5, rng)});
    hosts.push_back({"K_{64,64}", complete_bipartite(64, 64)});
  }

  Table t({"host", "k", "j", "target k*2^-j", "mean K_j", "min", "max",
           "mean ratio"},
          {kP, kP, kP, kD, kM, kM, kM, kM});
  const int trials = 15;
  for (auto& host : hosts) {
    const int k = compute_degeneracy(host.g).degeneracy;
    for (int j = 1; j <= 3; ++j) {
      const double target = static_cast<double>(k) / (1 << j);
      double sum = 0;
      int mn = 1 << 30, mx = 0;
      for (int trial = 0; trial < trials; ++trial) {
        auto x = draw_sampling_values(host.g.num_vertices(), rng);
        const int kj =
            compute_degeneracy(mod_sampled_subgraph(host.g, x, j)).degeneracy;
        sum += kj;
        mn = std::min(mn, kj);
        mx = std::max(mx, kj);
      }
      t.add_row({host.name, cell("%d", k), cell("%d", j), cell("%.1f", target),
                 cell("%.1f", sum / trials), cell("%d", mn), cell("%d", mx),
                 cell("%.3f", sum / trials / target)});
    }
  }
  t.print();
  std::printf("shape check: mean ratio near 1.0 with tight min/max bands "
              "while the target stays above ~log n; deeper levels (smaller "
              "targets) drift, as the lemma's precondition predicts\n");
  return benchutil::finish();
}
