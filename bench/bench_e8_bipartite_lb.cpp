// E8 — Theorem 22: K_{l,m} detection requires Ω(sqrt(n)/b) rounds.
//
// Measured: Lemma 21 gadgets over the bipartite C4-free carrier
// (Observation 20 + PG(2,q) incidence graphs): carrier density vs the
// N^{3/2} prediction, reduction correctness, implied bound vs n.
// Note the machine-verified restriction to l = m (DESIGN.md §4b).
#include <cmath>

#include "bench_util.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "lowerbound/bipartite_lb.h"
#include "lowerbound/disjointness_reduction.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E8: Theorem 22 — K_{l,l} detection requires Ω(sqrt(n)/b) rounds",
      "carrier = bipartite C4-free with Θ(N^{3/2}) edges -> rounds >= "
      "Θ(N^{3/2})/(nb) = Ω(sqrt(n)/b). (l != m: see DESIGN.md §4b gap)");
  Rng rng(8);
  const int b = 8;

  Table t({"l=m", "N", "n(G')", "|E_F|", "|E_F|/N^{3/2}", "reduction ok",
           "LB rounds", "LB*b/sqrt(n)", "measured UB"},
          {kP, kP, kP, kP, kM, kM, kD, kD, kM});
  for (int l : benchutil::grid({2, 3})) {
    for (int big_n : benchutil::grid({16, 32, 64, 128})) {
      auto lbg = bipartite_lower_bound_graph(l, l, big_n);
      const std::size_t m = lbg.f.edges().size();
      if (m == 0) continue;
      const Graph h = complete_bipartite(l, l);
      BroadcastDetector detect = [&h](CliqueBroadcast& net, const Graph& g) {
        return full_broadcast_detect(net, g, h).contains_h;
      };
      int correct = 0;
      int ub_rounds = 0;
      const int trials = 4;
      for (int t_i = 0; t_i < trials; ++t_i) {
        DisjointnessInstance inst =
            (t_i % 2 == 0) ? random_disjoint_instance(m, 0.4, rng)
                           : random_intersecting_instance(m, 0.4, rng);
        auto out = solve_disjointness_via_detection(lbg, inst, b, detect);
        correct += out.correct ? 1 : 0;
        ub_rounds = out.detection_rounds;
      }
      const double n_gp = static_cast<double>(lbg.g_prime.num_vertices());
      const double lb = static_cast<double>(m) / (n_gp * b);
      t.add_row({cell("%d", l), cell("%d", big_n), cell("%.0f", n_gp),
                 cell("%zu", m),
                 cell("%.2f", static_cast<double>(m) / std::pow(big_n, 1.5)),
                 cell("%d/%d", correct, trials), cell("%.3f", lb),
                 cell("%.3f", lb * b / std::sqrt(n_gp)),
                 cell("%d", ub_rounds)});
    }
  }
  t.print();
  std::printf("shape check: |E_F|/N^{3/2} flat (carrier is extremal-order); "
              "LB*b/sqrt(n) flat => the bound is Ω(sqrt(n)/b)\n");
  return benchutil::finish();
}
