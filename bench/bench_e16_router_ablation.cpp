// E16 — ablation: which routing substrate Theorem 2 actually needs.
//
// The paper invokes Lenzen's deterministic O(1)-round routing [28] for the
// light-wire and input phases. This ablation swaps the substrate inside
// the *same* compiled protocol:
//   two-phase (default)  — deterministic relay schedule (our [28] stand-in)
//   direct               — no relaying; hot light-wire pairs serialize
//   valiant              — randomized relays
// The claim being ablated: without relaying, a circuit wiring many light
// wires between two specific players breaks the O(D) round bound.
#include "bench_util.h"
#include "circuit/builders.h"
#include "comm/clique_unicast.h"
#include "core/circuit_sim.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

namespace {

// Adversarial circuit for direct routing: a deep chain of layers where
// every wire goes between gates owned by (at most a few) players — many
// parallel fan-in-2 XOR chains, so consecutive layers exchange `width`
// wires that the greedy assignment packs onto few owners.
Circuit hot_wire_circuit(int n_inputs, int width, int depth) {
  Circuit c;
  std::vector<int> prev;
  for (int i = 0; i < n_inputs; ++i) prev.push_back(c.add_input());
  for (int layer = 0; layer < depth; ++layer) {
    std::vector<int> cur;
    for (int gidx = 0; gidx < width; ++gidx) {
      const int a = prev[static_cast<std::size_t>(gidx % static_cast<int>(prev.size()))];
      const int b = prev[static_cast<std::size_t>((gidx + 1) % static_cast<int>(prev.size()))];
      cur.push_back(c.add_gate(GateKind::kXor, {a, b}));
    }
    prev = std::move(cur);
  }
  c.mark_output(c.add_gate(GateKind::kXor, prev));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E16: ablation — routing substrate inside the Theorem 2 compiler",
      "with relaying (Lenzen-style) rounds stay O(D); direct delivery "
      "serializes hot light-wire pairs; valiant pays its randomized-relay "
      "overhead");
  Rng rng(16);

  Table t({"circuit", "n", "assignment", "router", "rounds", "bits", "correct"},
          {kP, kP, kP, kP, kM, kM, kM});
  for (int n : benchutil::grid({8, 16})) {
    struct Case {
      const char* name;
      Circuit c;
    };
    std::vector<Case> cases;
    cases.push_back({"random-layered",
                     random_layered_circuit(n * n, 2 * n, 6, 6, rng)});
    cases.push_back({"hot-wire-chain", hot_wire_circuit(n * n, 3 * n, 6)});
    for (auto& cs : cases) {
      std::vector<bool> inputs(static_cast<std::size_t>(cs.c.num_inputs()));
      for (auto&& x : inputs) x = rng.coin();
      const bool expect = cs.c.evaluate(inputs)[0];
      std::vector<int> owner(inputs.size());
      for (std::size_t i = 0; i < owner.size(); ++i) {
        owner[i] = static_cast<int>(i % static_cast<std::size_t>(n));
      }
      struct A {
        const char* name;
        AssignPolicy policy;
      } assigns[] = {{"rotating", AssignPolicy::kRotating},
                     {"first-fit", AssignPolicy::kFirstFit}};
      struct R {
        const char* name;
        SimRouter kind;
      } routers[] = {{"two-phase", SimRouter::kTwoPhase},
                     {"direct", SimRouter::kDirect},
                     {"valiant", SimRouter::kValiant}};
      for (const auto& a : assigns) {
        CircuitSimulation sim(cs.c, n, a.policy);
        for (const auto& r : routers) {
          CliqueUnicast net(n, sim.plan().recommended_bandwidth);
          Rng vrng(99);
          auto result = sim.run(net, inputs, owner, r.kind, &vrng);
          t.add_row({cs.name, cell("%d", n), a.name, r.name,
                     cell("%d", result.stats.rounds),
                     cell("%llu", static_cast<unsigned long long>(result.stats.total_bits)),
                     result.outputs[0] == expect ? "yes" : "NO"});
        }
      }
    }
  }
  t.print();
  std::printf(
      "shape check: all 12 configurations agree on outputs. Under the "
      "paper's literal first-fit packing, consecutive chain gates share a "
      "player and light wires concentrate onto player pairs: the direct "
      "router pays for the hot pairs while two-phase absorbs them — the "
      "property [28] supplies to Theorem 2. The rotating assignment (our "
      "default) defuses hot pairs at the source, making even direct routing "
      "competitive — an engineering observation the paper's proof does not "
      "need but a deployment would want.\n");
  return benchutil::finish();
}
