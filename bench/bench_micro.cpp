// Wall-clock microbenchmarks of the substrates (google-benchmark).
//
// The experiment harnesses (bench_e*.cpp) measure protocol complexity in
// rounds/bits; this binary measures the *simulator's* own speed, which is
// what bounds the reachable experiment scale.
#include <benchmark/benchmark.h>

#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/ruzsa_szemeredi.h"
#include "graph/subgraph.h"
#include "linalg/f2matrix.h"
#include "routing/router.h"
#include "sketch/sketch.h"
#include "util/rng.h"

namespace {

using namespace cclique;

void BM_F2MultiplyNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f2_multiply_naive(a, b));
  }
}
BENCHMARK(BM_F2MultiplyNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_F2MultiplyStrassen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f2_multiply_strassen(a, b, 64));
  }
}
BENCHMARK(BM_F2MultiplyStrassen)->Arg(64)->Arg(128)->Arg(256);

void BM_TriangleCount(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = gnp(n, 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(g));
  }
}
BENCHMARK(BM_TriangleCount)->Arg(64)->Arg(256)->Arg(512);

void BM_Degeneracy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = gnp(n, 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_degeneracy(g));
  }
}
BENCHMARK(BM_Degeneracy)->Arg(128)->Arg(512);

void BM_SketchDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Graph g = gnp(n, 4.0 / n, rng);
  const int k = std::max(1, compute_degeneracy(g).degeneracy);
  std::vector<NodeSketch> sketches;
  for (int v = 0; v < n; ++v) sketches.push_back(make_sketch(g, v, k));
  for (auto _ : state) {
    auto copy = sketches;
    benchmark::DoNotOptimize(reconstruct_from_sketches(std::move(copy), k, n));
  }
}
BENCHMARK(BM_SketchDecode)->Arg(64)->Arg(128);

void BM_TwoPhaseRouting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  RoutingDemand d;
  d.payload_bits = 8;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < n; ++k) {
      d.messages.push_back(
          RoutedMessage{v, static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n))), 0x42});
    }
  }
  for (auto _ : state) {
    CliqueUnicast net(n, 32);
    benchmark::DoNotOptimize(route_two_phase(net, d));
  }
}
BENCHMARK(BM_TwoPhaseRouting)->Arg(16)->Arg(32);

void BM_BehrendSet(benchmark::State& state) {
  const std::uint64_t m = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(behrend_set(m));
  }
}
BENCHMARK(BM_BehrendSet)->Arg(1000)->Arg(10000);

void BM_SubgraphSearchC4(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  const Graph g = gnp(n, 2.0 / n, rng);
  const Graph h = cycle_graph(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contains_subgraph(g, h));
  }
}
BENCHMARK(BM_SubgraphSearchC4)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
