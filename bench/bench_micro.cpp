// Wall-clock microbenchmarks of the substrates (google-benchmark).
//
// The experiment harnesses (bench_e*.cpp) measure protocol complexity in
// rounds/bits; this binary measures the *simulator's* own speed, which is
// what bounds the reachable experiment scale.
#include <benchmark/benchmark.h>

#include "comm/clique_unicast.h"
#include "core/apsp.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/ruzsa_szemeredi.h"
#include "graph/subgraph.h"
#include "linalg/f2matrix.h"
#include "linalg/kernels.h"
#include "linalg/mat61.h"
#include "linalg/tropical.h"
#include "routing/router.h"
#include "sketch/sketch.h"
#include "util/rng.h"

namespace {

using namespace cclique;

void BM_F2MultiplyNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f2_multiply_naive(a, b));
  }
}
BENCHMARK(BM_F2MultiplyNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_F2MultiplyStrassen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const F2Matrix a = F2Matrix::random(n, rng);
  const F2Matrix b = F2Matrix::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f2_multiply_strassen(a, b, 64));
  }
}
BENCHMARK(BM_F2MultiplyStrassen)->Arg(64)->Arg(128)->Arg(256);

void BM_TriangleCount(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = gnp(n, 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(g));
  }
}
BENCHMARK(BM_TriangleCount)->Arg(64)->Arg(256)->Arg(512);

void BM_Degeneracy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = gnp(n, 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_degeneracy(g));
  }
}
BENCHMARK(BM_Degeneracy)->Arg(128)->Arg(512);

void BM_SketchDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Graph g = gnp(n, 4.0 / n, rng);
  const int k = std::max(1, compute_degeneracy(g).degeneracy);
  std::vector<NodeSketch> sketches;
  for (int v = 0; v < n; ++v) sketches.push_back(make_sketch(g, v, k));
  for (auto _ : state) {
    auto copy = sketches;
    benchmark::DoNotOptimize(reconstruct_from_sketches(std::move(copy), k, n));
  }
}
BENCHMARK(BM_SketchDecode)->Arg(64)->Arg(128);

void BM_TwoPhaseRouting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  RoutingDemand d;
  d.payload_bits = 8;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < n; ++k) {
      d.messages.push_back(
          RoutedMessage{v, static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n))), 0x42});
    }
  }
  for (auto _ : state) {
    CliqueUnicast net(n, 32);
    benchmark::DoNotOptimize(route_two_phase(net, d));
  }
}
BENCHMARK(BM_TwoPhaseRouting)->Arg(16)->Arg(32);

void BM_BehrendSet(benchmark::State& state) {
  const std::uint64_t m = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(behrend_set(m));
  }
}
BENCHMARK(BM_BehrendSet)->Arg(1000)->Arg(10000);

void BM_SubgraphSearchC4(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  const Graph g = gnp(n, 2.0 / n, rng);
  const Graph h = cycle_graph(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contains_subgraph(g, h));
  }
}
BENCHMARK(BM_SubgraphSearchC4)->Arg(64)->Arg(256);

// ------------------------------------------------------------- kernel tier
//
// GB/s throughput of the local matrix kernels behind algebraic MM and APSP
// (linalg/kernels) across the {scalar, avx2} x threads ablation grid. The
// bytes metric is the B-stream traffic of the i-k-j loop — n^3 8-byte loads
// of B per product, the dominant memory stream of every kernel variant —
// so GB/s is comparable across kernels and sizes. AVX2 cells skip (not
// fail) on hosts without AVX2; threaded cells are only meaningful on
// multi-core hosts but stay correct (and deterministic) everywhere.

void set_kernel_throughput(benchmark::State& state, int n) {
  const std::int64_t n3 = static_cast<std::int64_t>(n) * n * n;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n3 * 8);
}

bool skip_if_no_avx2(benchmark::State& state, KernelKind kind) {
  if (kind == KernelKind::kAvx2 && !cpu_has_avx2()) {
    state.SkipWithError("host lacks AVX2 (or build lacks the AVX2 TU)");
    return true;
  }
  return false;
}

void BM_M61Kernel(benchmark::State& state, KernelKind kind, int threads) {
  if (skip_if_no_avx2(state, kind)) return;
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  const Mat61 a = Mat61::random(n, rng);
  const Mat61 b = Mat61::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m61_multiply_kernel(a, b, kind, threads));
  }
  set_kernel_throughput(state, n);
}
BENCHMARK_CAPTURE(BM_M61Kernel, scalar_t1, KernelKind::kScalar, 1)
    ->Arg(256)->Arg(512)->Arg(1024);
BENCHMARK_CAPTURE(BM_M61Kernel, avx2_t1, KernelKind::kAvx2, 1)
    ->Arg(256)->Arg(512)->Arg(1024);
// Threaded cells measure real time: CPU-time GB/s would divide by one
// worker's time while four workers burn cycles, overstating throughput.
BENCHMARK_CAPTURE(BM_M61Kernel, avx2_t4, KernelKind::kAvx2, 4)
    ->Arg(512)->UseRealTime();

void BM_TropicalKernel(benchmark::State& state, KernelKind kind, int threads) {
  if (skip_if_no_avx2(state, kind)) return;
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  // Mixed density: 10% +inf exercises the inf-skip path the way one-step
  // distance matrices do after a squaring or two.
  const TropicalMat a = TropicalMat::random(n, rng, 1u << 30, 0.1);
  const TropicalMat b = TropicalMat::random(n, rng, 1u << 30, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tropical_multiply_kernel(a, b, kind, threads));
  }
  set_kernel_throughput(state, n);
}
BENCHMARK_CAPTURE(BM_TropicalKernel, scalar_t1, KernelKind::kScalar, 1)
    ->Arg(256)->Arg(512)->Arg(1024);
BENCHMARK_CAPTURE(BM_TropicalKernel, avx2_t1, KernelKind::kAvx2, 1)
    ->Arg(256)->Arg(512)->Arg(1024);
BENCHMARK_CAPTURE(BM_TropicalKernel, avx2_t4, KernelKind::kAvx2, 4)
    ->Arg(512)->UseRealTime();

// End-to-end APSP wall clock through the full distributed protocol (plan,
// relay schedule, squarings, eccentricity exchange) under the env-driven
// dispatcher — the consumer-visible effect of the kernel tier.
void BM_ApspEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  const Graph g = gnp(n, 0.15, rng);
  std::vector<std::uint32_t> weights;
  weights.reserve(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    weights.push_back(static_cast<std::uint32_t>(rng.uniform(1000) + 1));
  }
  for (auto _ : state) {
    CliqueUnicast net(n, 64);
    benchmark::DoNotOptimize(apsp_run(net, g, weights, TropicalKernel::kBlocked));
  }
}
BENCHMARK(BM_ApspEndToEnd)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
