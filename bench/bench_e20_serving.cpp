// E20 — batched multi-query serving over cached protocol artifacts: the
// round-optimal engines (E17/E18's algebraic and min-plus products) are run
// once per graph version and their artifacts — the APSP closure, the A²
// counting pack, the unit-weight hop chain — answer whole query streams
// from local reads. The claim under measurement is the zero-cost-hit
// contract: a warm batch is priced at exactly zero rounds and zero bits by
// serving_plan, and the engine's measured CommStats delta is CC_CHECKed
// against that price on every batch.
//
// Measured: cold (miss) cost per artifact class against the composed plans;
// warm rounds/bits (must print 0); hit/miss accounting over a >= 10^4-query
// mixed stream; invalidation + revert behaviour under graph mutations; and
// LRU eviction counts under a byte cap (answers are eviction-independent).
// Wall-clock queries/sec goes to stdout only — JSON tables hold exact
// model-metered quantities, so baselines stay byte-identical across hosts.
#include <chrono>

#include "bench_util.h"
#include "core/apsp.h"
#include "core/query_service.h"
#include "graph/generators.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

namespace {

/// Deterministic mixed query stream over n vertices (all seven kinds).
std::vector<Query> mixed_stream(int n, std::size_t count, Rng& rng) {
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    switch (rng.uniform(8)) {
      case 0: qs.push_back(Query::ecc(v)); break;
      case 1: qs.push_back(Query::diameter()); break;
      case 2: qs.push_back(Query::radius()); break;
      case 3: qs.push_back(Query::triangles()); break;
      case 4: qs.push_back(Query::four_cycles()); break;
      case 5:
        qs.push_back(Query::reach(u, v, static_cast<int>(rng.uniform(8))));
        break;
      default: qs.push_back(Query::dist(u, v)); break;
    }
  }
  return qs;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E20: batched serving over cached artifacts — hits cost zero rounds",
      "one APSP/A^2/hop-chain run per graph version answers whole point-query "
      "streams from local reads; serving_plan prices every batch and "
      "CC_CHECKs that a resident artifact class charges exactly zero rounds "
      "and zero bits");
  Rng rng(20);

  // --- Cold vs warm: the first batch pays the composed protocol plans
  // (weighted APSP + counting pack + unit hop chain), the second identical
  // batch must measure exactly 0/0 — both CC_CHECKed inside answer().
  Table cw({"n", "queries", "cold rounds", "cold bits", "== plans", "warm rounds",
            "warm bits", "hits", "misses"},
           {kP, kP, kM, kM, kM, kM, kM, kM, kM});
  for (int n : benchutil::grid({16, 32, 48})) {
    Graph g = gnp(n, 6.0 / n, rng);
    std::vector<std::uint32_t> w(g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(1 + rng.uniform(1 << 10));
    QueryService svc(g, w);
    Rng qrng = rng.split(static_cast<std::uint64_t>(n));
    const std::vector<Query> qs = mixed_stream(n, 256, qrng);

    QueryBatch cold = svc.new_batch();
    for (const Query& q : qs) cold.push(q);
    const BatchResult rc = svc.answer(cold);
    const ApspPlan ap = apsp_plan(n, 64);
    const CountingArtifactPlan cp = counting_artifacts_plan(n, 64);
    const bool matches_plans =
        rc.rounds == 2 * ap.total_rounds + cp.total_rounds &&
        rc.bits == 2 * ap.total_bits + cp.total_bits;

    QueryBatch warm = svc.new_batch();
    for (const Query& q : qs) warm.push(q);
    const BatchResult rw = svc.answer(warm);
    cw.add_row({cell("%d", n), cell("%zu", qs.size()), cell("%d", rc.rounds),
                cell("%llu", static_cast<unsigned long long>(rc.bits)),
                matches_plans ? "yes" : "NO", cell("%d", rw.rounds),
                cell("%llu", static_cast<unsigned long long>(rw.bits)),
                cell("%llu", static_cast<unsigned long long>(rw.hits)),
                cell("%llu", static_cast<unsigned long long>(rw.misses))});
  }
  cw.print();
  std::printf("cold cost is two APSP schedules (weighted closure + unit hop\n"
              "chain) plus the counting pack; warm rounds/bits are CC_CHECKed\n"
              "to equal serving_plan's zero inside answer() on every batch.\n\n");

  // --- Serving throughput over a >= 10^4-query warm stream. Queries/sec is
  // wall-clock and host-dependent, so it is printed, never tabled; the
  // table records the exact model-metered facts (all-zero deltas, hit
  // totals) that make the throughput claim meaningful.
  Table tp({"n", "batches", "queries", "rounds", "bits", "class hits"},
           {kP, kP, kP, kM, kM, kM});
  for (int n : benchutil::grid({16, 32, 48})) {
    Graph g = gnp(n, 6.0 / n, rng);
    std::vector<std::uint32_t> w(g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(1 + rng.uniform(1 << 10));
    QueryService svc(g, w);
    svc.answer_one(Query::diameter());  // pay every miss up front
    svc.answer_one(Query::triangles());
    svc.answer_one(Query::reach(0, n - 1, 2));

    Rng qrng = rng.split(static_cast<std::uint64_t>(1000 + n));
    constexpr std::size_t kBatches = 12;
    constexpr std::size_t kPerBatch = 1000;  // 12k queries, all warm
    std::vector<QueryBatch> batches;
    batches.reserve(kBatches);
    std::uint64_t hits = 0;
    int rounds = 0;
    std::uint64_t bits = 0;
    std::size_t answered = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t b = 0; b < kBatches; ++b) {
      QueryBatch batch = svc.new_batch();
      for (const Query& q : mixed_stream(n, kPerBatch, qrng)) batch.push(q);
      const BatchResult r = svc.answer(batch);
      hits += r.hits;
      rounds += r.rounds;
      bits += r.bits;
      answered += r.answers.size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    std::printf("n=%-3d  %zu queries in %.3fs  ->  %.0f queries/sec (wall)\n", n,
                answered, secs, secs > 0 ? static_cast<double>(answered) / secs
                                         : 0.0);
    tp.add_row({cell("%d", n), cell("%zu", kBatches), cell("%zu", answered),
                cell("%d", rounds),
                cell("%llu", static_cast<unsigned long long>(bits)),
                cell("%llu", static_cast<unsigned long long>(hits))});
  }
  tp.print();
  std::printf("every warm batch metered 0 rounds / 0 bits — amortized protocol\n"
              "cost per query decays as 1/stream-length; throughput above is\n"
              "pure local reads (wall-clock, excluded from the JSON).\n\n");

  // --- Invalidation, revert, and capped-LRU accounting. Mutating the graph
  // re-prices the next batch at full protocol cost; reverting the mutation
  // restores the old fingerprint so the original artifacts hit again. Under
  // a capacity cap the cache evicts LRU entries — answers never change,
  // only the miss counter does.
  Table inv({"n", "phase", "rounds", "bits", "hits", "misses", "evictions"},
            {kP, kP, kM, kM, kM, kM, kM});
  for (int n : benchutil::grid({16, 32})) {
    Graph g = gnp(n, 5.0 / n, rng);
    std::vector<std::uint32_t> w(g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(1 + rng.uniform(1 << 10));
    QueryService::Config capped;
    // One fingerprint's full artifact set fits; two do not — mutation makes
    // the cache carry both versions briefly, forcing LRU eviction, while
    // revert still finds most of the original set resident.
    const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    const std::size_t set_words =
        (nn + static_cast<std::size_t>(n)) + nn +
        static_cast<std::size_t>(apsp_plan(n, 64).squarings + 1) * nn;
    capped.capacity_words = 2 * set_words - 1;
    QueryService svc(g, w, capped);
    auto run_phase = [&](const char* phase, std::uint64_t salt) {
      Rng qrng = rng.split(salt);
      QueryBatch batch = svc.new_batch();
      for (const Query& q : mixed_stream(n, 64, qrng)) batch.push(q);
      const BatchResult r = svc.answer(batch);
      inv.add_row({cell("%d", n), phase, cell("%d", r.rounds),
                   cell("%llu", static_cast<unsigned long long>(r.bits)),
                   cell("%llu", static_cast<unsigned long long>(r.hits)),
                   cell("%llu", static_cast<unsigned long long>(r.misses)),
                   cell("%llu",
                        static_cast<unsigned long long>(svc.cache_evictions()))});
    };
    run_phase("cold", 1);
    run_phase("warm", 2);
    // Mutate by adding a currently-absent edge, then revert by removing it:
    // the revert is exact (same topology, same weights), so the fingerprint
    // returns to its original value.
    int mu = 0, mv = 1;
    for (int u = 0; u < n && svc.graph().has_edge(mu, mv); ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (!svc.graph().has_edge(u, v)) {
          mu = u;
          mv = v;
          break;
        }
      }
    }
    svc.add_edge(mu, mv, 3);
    run_phase("mutated", 3);
    svc.remove_edge(mu, mv);
    run_phase("reverted", 4);
  }
  inv.print();
  std::printf("the cap admits one version's artifact set but not two: the\n"
              "mutation leaves both versions briefly resident and LRU evicts\n"
              "the original APSP closure; 'reverted' then runs at the original\n"
              "fingerprint and hits the surviving classes while re-missing the\n"
              "evicted one. answers stay byte-identical to an unbounded service\n"
              "(tests/query_service_test.cpp proves it).\n");
  return benchutil::finish();
}
