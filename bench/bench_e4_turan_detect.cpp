// E4 — Theorem 7: H-subgraph detection on CLIQUE-BCAST in
// O(ex(n,H)/n * log(n)/b) rounds.
//
// Measured: rounds per pattern class across n, next to the theorem's
// predictor ex(n,H)/n * log(n)/b (up to the sketch's constant factors).
// The paper's qualitative table:
//   trees            -> O(log n / b)            (ex = O(n))
//   C4 = K_{2,2}     -> O(sqrt n * log n / b)   (ex = Θ(n^{3/2}))
//   chi(H) >= 3      -> O(n log n / b)          (trivial regime)
#include <cmath>

#include "bench_util.h"
#include "comm/clique_broadcast.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "graph/turan.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E4: Theorem 7 — Turán-bound subgraph detection on CLIQUE-BCAST",
      "O(ex(n,H)/n * log n / b) rounds; trees ~log n, C4 ~sqrt(n) log n, "
      "non-bipartite ~n log n (all /b)");
  Rng rng(4);
  const int b = 16;

  struct Pattern {
    const char* name;
    Graph h;
  };
  std::vector<Pattern> patterns;
  patterns.push_back({"P4 (tree)", path_graph(4)});
  patterns.push_back({"C4=K_{2,2}", cycle_graph(4)});
  patterns.push_back({"C5 (odd)", cycle_graph(5)});
  patterns.push_back({"K4 (clique)", complete_graph(4)});

  Table t({"H", "n", "cap 4ex/n", "rounds", "bits", "predictor ex/n*logn/b",
           "rounds/pred", "verdict", "truth"},
          {kP, kP, kD, kM, kM, kD, kM, kM, kP});
  for (const auto& p : patterns) {
    for (int n : benchutil::grid({32, 64, 128})) {
      Graph g = gnp(n, 1.5 / n, rng);  // sparse: detection must reconstruct
      const bool truth = contains_subgraph(g, p.h);
      CliqueBroadcast net(n, b);
      auto r = turan_subgraph_detect(net, g, p.h);
      const double ex = turan_upper_bound(static_cast<std::uint64_t>(n), p.h).value;
      const double pred =
          std::max(1.0, ex / n * std::log2(static_cast<double>(n)) / b);
      t.add_row({p.name, cell("%d", n), cell("%d", r.degeneracy_cap),
                 cell("%d", r.stats.rounds),
                 cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
                 cell("%.1f", pred),
                 cell("%.1f", r.stats.rounds / pred),
                 r.contains_h ? "yes" : "no", truth ? "yes" : "no"});
    }
  }
  t.print();
  std::printf("rounds/pred should stay ~constant within each pattern class "
              "(the constant absorbs the 2k x 61-bit field elements of the "
              "sketch; see DESIGN.md substitution #2)\n");
  return benchutil::finish();
}
