// E1 — Theorem 2: a depth-D circuit of b-separable gates with n^2 s wires
// runs in O(D) rounds on CLIQUE-UCAST at bandwidth O(b+s).
//
// Measured: rounds / depth ratio across circuit families and player counts.
// The theorem's shape holds if the ratio stays bounded as n grows and as
// depth grows (at fixed family).
#include "bench_util.h"
#include "circuit/builders.h"
#include "comm/clique_unicast.h"
#include "core/circuit_sim.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

namespace {

void run_family(const char* name, Table& table, const Circuit& c, int n, Rng& rng) {
  CircuitSimulation sim(c, n);
  std::vector<bool> inputs(static_cast<std::size_t>(c.num_inputs()));
  for (auto&& x : inputs) x = rng.coin();
  CliqueUnicast net(n, sim.plan().recommended_bandwidth);
  auto result = sim.run_round_robin(net, inputs);
  const bool ok = result.outputs[0] == c.evaluate(inputs)[0];
  const int depth = c.depth();
  table.add_row({cell("%s", name), cell("%d", n), cell("%d", depth),
                 cell("%zu", c.num_wires()), cell("%d", sim.plan().s),
                 cell("%d", sim.plan().heavy_gates),
                 cell("%d", sim.plan().recommended_bandwidth),
                 cell("%d", result.stats.rounds),
                 cell("%.1f", static_cast<double>(result.stats.rounds) /
                                  std::max(1, depth)),
                 ok ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E1: Theorem 2 — circuit simulation on CLIQUE-UCAST",
      "depth-D circuits of b-separable gates, n^2 s wires -> O(D) rounds at "
      "bandwidth O(b+s); rounds/depth must stay bounded in n and in depth");
  Rng rng(1);

  Table by_n({"circuit", "players", "depth", "wires", "s", "heavy", "bw",
              "rounds", "rounds/depth", "correct"},
             {kP, kP, kP, kP, kM, kM, kM, kM, kM, kM});
  for (int n : benchutil::grid({8, 16, 32})) {
    run_family("parity-tree(f=4)", by_n, parity_tree(n * n, 4), n, rng);
    run_family("MOD6-of-MOD6", by_n, mod_mod_circuit(n * n, 6, 2 * n, 12, rng), n, rng);
    run_family("majority", by_n, majority(n * n), n, rng);
  }
  std::printf("--- scaling n at fixed family (ratio column should stay flat) ---\n");
  by_n.print();

  Table by_depth({"circuit", "players", "depth", "wires", "s", "heavy", "bw",
                  "rounds", "rounds/depth", "correct"},
                 {kP, kP, kP, kP, kM, kM, kM, kM, kM, kM});
  const int n = 12;
  for (int depth : benchutil::grid({2, 4, 8, 16})) {
    run_family("random-layered", by_depth,
               random_layered_circuit(n * n, 2 * n, depth, 6, rng), n, rng);
  }
  std::printf("--- scaling depth at fixed n (rounds should track depth) ---\n");
  by_depth.print();
  return benchutil::finish();
}
