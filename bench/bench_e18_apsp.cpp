// E18 — min-plus semiring products and exact APSP: the same block-
// decomposed distributed matrix product that powers E17's ring workloads,
// run over the tropical (min, +) semiring (Censor-Hillel et al. PODC'15 §4;
// Le Gall DISC'16), where ⌈log2(n-1)⌉ repeated squarings of the weight
// matrix solve all-pairs shortest paths exactly.
//
// Measured: exact rounds/bits of one distance product on a grid of perfect
// cubes, checked row by row against the data-independent plan (identical to
// the 61-bit ring schedule: 6·n^{1/3} rounds at b = 64); the full APSP runs
// on weighted gnp / path / polarity-expander instances against the
// n^{1/3}·log n series with per-source Dijkstra as ground truth plus the
// derived diameter/radius; and the local-kernel ablation (blocked i-k-j vs
// schoolbook), which must leave the metered schedule untouched.
#include "bench_util.h"
#include "comm/clique_unicast.h"
#include "core/apsp.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "linalg/tropical.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E18: min-plus products + exact APSP — O(n^{1/3} log n) rounds",
      "the block-decomposed distributed product extends to the (min,+) "
      "semiring; ceil(log2(n-1)) distance-matrix squarings give exact APSP, "
      "diameter and radius, on the identical 61-bit relay schedule as E17");
  Rng rng(18);

  // --- One distance product, perfect cubes so the predicted series is
  // exact. The schedule must coincide with the 61-bit ring product of E17:
  // same word width, same geometry, exactly 6 * n^{1/3} rounds at b = 64.
  Table mm({"n", "b", "m", "block", "rounds", "dist", "agg", "bits", "ok",
            "plan rounds", "== m61 plan", "series 6n^(1/3)w/b"},
           {kP, kP, kM, kM, kM, kM, kM, kM, kM, kD, kD, kD});
  for (int n : benchutil::grid({27, 64, 125, 216})) {
    const TropicalMat a = TropicalMat::random(n, rng, 1u << 24, 0.3);
    const TropicalMat b = TropicalMat::random(n, rng, 1u << 24, 0.3);
    CliqueUnicast net(n, 64);
    TropicalMat c;
    const MinPlusResult r = min_plus_mm(net, a, b, &c);
    const bool ok = c == tropical_multiply_schoolbook(a, b);
    const AlgebraicMmPlan m61 = algebraic_mm_plan(n, 61, 64);
    mm.add_row({cell("%d", n), "64", cell("%d", r.plan.grid),
                cell("%d", r.plan.block), cell("%d", r.total_rounds),
                cell("%d", r.distribute_rounds), cell("%d", r.aggregate_rounds),
                cell("%llu", static_cast<unsigned long long>(r.total_bits)),
                ok ? "yes" : "NO", cell("%d", r.plan.total_rounds),
                (r.plan.total_rounds == m61.total_rounds &&
                 r.plan.total_bits == m61.total_bits)
                    ? "yes"
                    : "NO",
                cell("%.1f", r.plan.series_rounds)});
  }
  mm.print();
  std::printf("one distance product rides the E17 ring schedule verbatim: the\n"
              "plan depends on (n, w, b) only, and min-plus elements are the\n"
              "same 61-bit words (all-ones = +inf). measured == plan is\n"
              "CC_CHECKed inside the protocol on every row.\n\n");

  // --- Exact APSP by repeated squaring on weighted workloads: random
  // gnp sweeps, paths (maximal diameter — the worst case for any hop-
  // bounded scheme, and log2(n-1) squarings exactly), and near-extremal
  // polarity expanders (diameter 2 at q^2+q+1 vertices).
  Table ap({"graph", "n", "edges", "sq", "rounds", "bits", "ok", "diam",
            "radius", "plan rounds", "series 6n^(1/3)w/b*log2(n)"},
           {kP, kP, kP, kM, kM, kM, kM, kM, kM, kD, kD});
  struct Inst {
    std::string name;
    Graph g;
  };
  std::vector<Inst> insts;
  for (int n : benchutil::grid({32, 64, 125})) {
    insts.push_back({cell("gnp_%d", n), gnp(n, 4.0 / n, rng)});
  }
  for (int n : benchutil::grid({27, 64})) {
    insts.push_back({cell("path_%d", n), path_graph(n)});
  }
  for (std::uint64_t q : benchutil::grid<std::uint64_t>({5, 7})) {
    insts.push_back(
        {cell("ER_%llu", static_cast<unsigned long long>(q)), polarity_graph(q)});
  }
  for (const Inst& inst : insts) {
    const int n = inst.g.num_vertices();
    std::vector<std::uint32_t> w(inst.g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 12));
    CliqueUnicast net(n, 64);
    const ApspResult r = apsp_run(net, inst.g, w);
    const bool ok = r.dist == apsp_dijkstra_reference(inst.g, w);
    const bool finite = r.diameter != kTropicalInf;
    ap.add_row({inst.name, cell("%d", n), cell("%zu", inst.g.num_edges()),
                cell("%d", r.plan.squarings), cell("%d", r.total_rounds),
                cell("%llu", static_cast<unsigned long long>(r.total_bits)),
                ok ? "yes" : "NO",
                finite ? cell("%llu", static_cast<unsigned long long>(r.diameter))
                       : "inf",
                finite ? cell("%llu", static_cast<unsigned long long>(r.radius))
                       : "inf",
                cell("%d", r.plan.total_rounds),
                cell("%.1f", r.plan.series_rounds)});
  }
  ap.print();
  std::printf("squaring preserves the data-independent plan: every squaring\n"
              "ships the same globally-known length matrix (weights change\n"
              "values, never payload sizes), so APSP rounds are exactly\n"
              "squarings * product rounds + 1 ecc-exchange round.\n\n");

  // --- Kernel ablation: the triple players' local distance product run by
  // the blocked i-k-j kernel vs the schoolbook reference. The network
  // schedule is a function of (n, w, b) alone, so both kernels must meter
  // identically and agree on every distance — the ablation is a check that
  // local compute choices cannot leak into the measured model costs.
  Table ab({"graph", "n", "kernel", "rounds", "bits", "dist equal",
            "stats equal"},
           {kP, kP, kP, kM, kM, kM, kM});
  for (int n : benchutil::grid({27, 64})) {
    Graph g = gnp(n, 6.0 / n, rng);
    std::vector<std::uint32_t> w(g.num_edges());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 10));
    CliqueUnicast net_b(n, 64);
    const ApspResult rb = apsp_run(net_b, g, w, TropicalKernel::kBlocked);
    CliqueUnicast net_s(n, 64);
    const ApspResult rs = apsp_run(net_s, g, w, TropicalKernel::kSchoolbook);
    const bool dist_equal = rb.dist == rs.dist;
    const bool stats_equal = net_b.stats() == net_s.stats();
    ab.add_row({cell("gnp_%d", n), cell("%d", n), "blocked",
                cell("%d", rb.total_rounds),
                cell("%llu", static_cast<unsigned long long>(rb.total_bits)),
                dist_equal ? "yes" : "NO", stats_equal ? "yes" : "NO"});
    ab.add_row({cell("gnp_%d", n), cell("%d", n), "schoolbook",
                cell("%d", rs.total_rounds),
                cell("%llu", static_cast<unsigned long long>(rs.total_bits)),
                dist_equal ? "yes" : "NO", stats_equal ? "yes" : "NO"});
  }
  ab.print();
  std::printf("note: wall-clock kernel speed is bench_micro territory; here the\n"
              "claim is that the kernel cannot change the metered schedule.\n");
  return benchutil::finish();
}
