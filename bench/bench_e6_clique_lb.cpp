// E6 — Theorem 15: K_l detection in CLIQUE-BCAST needs Ω(n/b) rounds.
//
// Measured: (a) the reduction executed end to end (correctness + exchanged
// bits) on Lemma 14 gadgets of growing size; (b) the implied lower bound
// |E_F|/(nb) = Θ(n/b) next to the measured upper bound (the trivial-regime
// detector), bracketing the true complexity within O(log n).
#include "bench_util.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "lowerbound/clique_lb.h"
#include "lowerbound/disjointness_reduction.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E6: Theorem 15 — K_l detection requires Ω(n/b) rounds (CLIQUE-BCAST)",
      "Lemma 14 gadget: |E_F| = N^2 = Θ(n^2) disjointness elements -> "
      "rounds >= N^2/(nb); upper bound O(n log n / b) brackets it");
  Rng rng(6);
  const int b = 8;

  BroadcastDetector detect_k4 = [](CliqueBroadcast& net, const Graph& g) {
    return full_broadcast_detect(net, g, complete_graph(4)).contains_h;
  };

  Table t({"N", "n=4N", "|E_F|=N^2", "reduction ok", "avg DISJ bits",
           "LB rounds N^2/nb", "measured UB rounds", "UB/LB"},
          {kP, kP, kP, kM, kM, kD, kM, kM});
  for (int big_n : benchutil::grid({4, 8, 16, 32})) {
    auto lbg = clique_lower_bound_graph(4, big_n);
    const std::size_t m = lbg.f.edges().size();
    int correct = 0;
    std::uint64_t bits = 0;
    int ub_rounds = 0;
    const int trials = 6;
    for (int t_i = 0; t_i < trials; ++t_i) {
      DisjointnessInstance inst =
          (t_i % 2 == 0) ? random_disjoint_instance(m, 0.5, rng)
                         : random_intersecting_instance(m, 0.5, rng);
      auto out = solve_disjointness_via_detection(lbg, inst, b, detect_k4);
      correct += out.correct ? 1 : 0;
      bits += out.bits_exchanged;
      ub_rounds = out.detection_rounds;
    }
    const double lb = implied_round_lower_bound(
        lbg, static_cast<double>(m), b);
    t.add_row({cell("%d", big_n), cell("%d", lbg.g_prime.num_vertices()),
               cell("%zu", m), cell("%d/%d", correct, trials),
               cell("%.0f", static_cast<double>(bits) / trials),
               cell("%.2f", lb), cell("%d", ub_rounds),
               cell("%.1f", ub_rounds / std::max(0.01, lb))});
  }
  t.print();
  std::printf("shape check: LB rounds grow ~linearly in n (N^2/(4N b)); the "
              "UB/LB ratio is the O(log n) gap the paper leaves open\n");
  return benchutil::finish();
}
