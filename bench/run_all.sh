#!/usr/bin/env bash
# Runs every experiment harness and collects the BENCH_<id>.json
# trajectory files the ROADMAP tracks.
#
# Usage: bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake binary dir containing bench/bench_e* (default: build)
#   OUT_DIR    where BENCH_<id>.json and BENCH_<id>.log land (default: BUILD_DIR)
#
# Equivalent inside the build dir: ctest -L bench (the ctest entries pass
# the same --json flags).
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-$build_dir}

if ! compgen -G "$build_dir/bench/bench_e*" > /dev/null; then
  echo "error: no bench binaries under $build_dir/bench — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

mkdir -p "$out_dir"
status=0
for exe in "$build_dir"/bench/bench_e*; do
  id=$(basename "$exe")
  [[ -x $exe && ! $id == *.* ]] || continue
  id=${id#bench_}
  echo "== $id"
  if ! "$exe" --json="$out_dir/BENCH_${id}.json" > "$out_dir/BENCH_${id}.log" 2>&1; then
    echo "   FAILED (see $out_dir/BENCH_${id}.log)" >&2
    status=1
  fi
done
ls -1 "$out_dir"/BENCH_*.json
exit $status
