#!/usr/bin/env bash
# Runs every experiment harness and collects the BENCH_<id>.json
# trajectory files the ROADMAP tracks.
#
# Usage: bench/run_all.sh [--micro] [BUILD_DIR] [OUT_DIR]
#   --micro    also run the bench_micro kernel tier (google-benchmark) and
#              emit BENCH_micro.json alongside the harness snapshots. Off by
#              default: unlike the deterministic rounds/bits rows, micro
#              rows are wall-clock and take minutes at the large sizes.
#   BUILD_DIR  cmake binary dir containing bench/bench_e* (default: build)
#   OUT_DIR    where BENCH_<id>.json and BENCH_<id>.log land (default: BUILD_DIR)
#
# Equivalent inside the build dir: ctest -L bench (the ctest entries pass
# the same --json flags).
set -euo pipefail

run_micro=0
if [[ ${1:-} == --micro ]]; then
  run_micro=1
  shift
fi

build_dir=${1:-build}
out_dir=${2:-$build_dir}

if ! compgen -G "$build_dir/bench/bench_e*" > /dev/null; then
  echo "error: no bench binaries under $build_dir/bench — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

mkdir -p "$out_dir"
status=0
for exe in "$build_dir"/bench/bench_e*; do
  id=$(basename "$exe")
  [[ -x $exe && ! $id == *.* ]] || continue
  id=${id#bench_}
  echo "== $id"
  if ! "$exe" --json="$out_dir/BENCH_${id}.json" > "$out_dir/BENCH_${id}.log" 2>&1; then
    echo "   FAILED (see $out_dir/BENCH_${id}.log)" >&2
    status=1
  fi
done

if [[ $run_micro == 1 ]]; then
  echo "== micro (kernel GB/s tier)"
  if ! "$build_dir"/bench/bench_micro --benchmark_format=json \
      --benchmark_out="$out_dir/BENCH_micro.json" \
      > "$out_dir/BENCH_micro.log" 2>&1; then
    echo "   FAILED (see $out_dir/BENCH_micro.log)" >&2
    status=1
  fi
fi

ls -1 "$out_dir"/BENCH_*.json
exit $status
