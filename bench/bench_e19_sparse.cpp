// E19 — the sparse & sharded matrix substrate: nnz-declared sparse MM
// schedules vs the dense oblivious plan, the crossover-routed counting and
// APSP backends, and the O(n + m) sparse workload pipeline.
//
// The dense block-decomposed product (E17/E18) prices every operand entry
// whether or not it is zero; for an operand with nnz ≪ n² almost all of that
// traffic moves implicit zeros. The sparse schedule first makes the per-block
// nnz profile common knowledge (a fixed-size announcement — the price of
// adaptivity), then ships only stored entries as (index, value) pairs over
// the same two-hop relay. The schedule is a function of the *declared*
// profile alone, so measured == plan stays CC_CHECKable; the announcement
// also lets the backends below price both branches and take the cheaper one.
//
// Measured: sparse vs dense bits/rounds across a density sweep at fixed n
// (the crossover made visible); the four-cycle count with dense / sparse /
// auto backends (identical counts, auto flipping with density); adaptive
// APSP squarings densifying from the sparse branch to the dense one; and
// edge-list -> CSR workload construction at n far beyond the dense cap.
#include "bench_util.h"
#include "comm/clique_unicast.h"
#include "core/algebraic_mm.h"
#include "core/apsp.h"
#include "core/sparse_mm.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "linalg/kernels.h"
#include "linalg/sparse.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E19: sparse & sharded matrix substrate — nnz-declared schedules",
      "announce the per-block nnz profile once, then ship only stored "
      "(index, value) pairs over the E17 relay; below the density crossover "
      "the sparse schedule beats the dense oblivious plan, and the counting/"
      "APSP backends route through whichever branch prices cheaper");
  Rng rng(19);

  // --- Density sweep at fixed n: one sparse product vs the dense plan.
  // Every row's measured rounds/bits are CC_CHECKed against the declared-
  // profile plan inside run_sparse_mm; here we surface the crossover the
  // backends below decide by. "sparse/dense" < 1 means the sparse branch
  // wins even after paying its announcement.
  const int n = 125;
  Table sw({"n", "density", "nnz", "rounds", "bits", "announce bits",
            "dense bits", "ok", "sparse/dense", "preferred"},
           {kP, kP, kM, kM, kM, kM, kM, kM, kD, kD});
  for (double d : benchutil::grid<double>({0.02, 0.1, 0.3, 0.6, 0.9, 1.0})) {
    Mat61 a(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (d >= 1.0 || rng.uniform_double() < d) {
          a.set(i, j, 1 + rng.uniform(Mersenne61::kP - 1));
        }
      }
    }
    const Csr61 sa = Csr61::from_dense(a);
    CliqueUnicast net(n, 64);
    Mat61 c;
    const SparseMmResult r = sparse_mm_m61(net, sa, sa, &c);
    const bool ok = c == m61_multiply_schoolbook(a, a);
    sw.add_row(
        {cell("%d", n), cell("%.2f", d),
         cell("%llu", static_cast<unsigned long long>(r.plan.a_nnz)),
         cell("%d", r.total_rounds),
         cell("%llu", static_cast<unsigned long long>(r.total_bits)),
         cell("%llu", static_cast<unsigned long long>(r.plan.announce_bits)),
         cell("%llu", static_cast<unsigned long long>(r.plan.dense_bits)),
         ok ? "yes" : "NO",
         cell("%.3f", static_cast<double>(r.total_bits) /
                          static_cast<double>(r.plan.dense_bits)),
         sparse_backend_preferred(r.plan) ? "sparse" : "dense"});
  }
  sw.print();
  std::printf("a stored entry costs index_bits + 61 vs 61 on the dense path,\n"
              "so fully dense input strictly loses; the win at low density is\n"
              "the distribution phase shrinking with nnz while announcement\n"
              "and the (fill-in-unpriceable) aggregation stay fixed.\n\n");

  // --- Backend-routed four-cycle counting: all three backends agree with
  // the centralized count; kAuto takes the sparse branch on sparse inputs
  // and pays only the announcement extra to fall back on dense ones.
  Table fc({"graph", "n", "backend", "count", "rounds", "bits", "ok",
            "used"},
           {kP, kP, kP, kM, kM, kM, kM, kD});
  for (int nn : benchutil::grid({32, 64})) {
    struct Inst {
      std::string name;
      Graph g;
    };
    const Inst insts[] = {{cell("gnp_%d_sparse", nn), gnp(nn, 3.0 / nn, rng)},
                          {cell("K_%d", nn), complete_graph(nn)}};
    for (const Inst& inst : insts) {
      const std::uint64_t truth = count_four_cycles(inst.g);
      for (CountBackend backend :
           {CountBackend::kDense, CountBackend::kSparse, CountBackend::kAuto}) {
        const char* bname = backend == CountBackend::kDense    ? "dense"
                            : backend == CountBackend::kSparse ? "sparse"
                                                               : "auto";
        CliqueUnicast net(nn, 64);
        const AlgebraicCountResult r =
            four_cycle_count_algebraic(net, inst.g, backend);
        fc.add_row({inst.name, cell("%d", nn), bname,
                    cell("%llu", static_cast<unsigned long long>(r.count)),
                    cell("%d", r.total_rounds),
                    cell("%llu",
                         static_cast<unsigned long long>(net.stats().total_bits)),
                    r.count == truth ? "yes" : "NO",
                    r.used_sparse ? "sparse" : "dense"});
      }
    }
  }
  fc.print();
  std::printf("kAuto's choice is made from the announced profile, so it is\n"
              "common knowledge before any payload moves; the dense fallback\n"
              "rows price the announcement on top of the E17 schedule.\n\n");

  // --- Adaptive APSP: distance matrices densify under min-plus squaring,
  // so a sparse instance starts on the sparse branch and crosses to dense
  // once fill-in closes the neighborhood growth. "schedule" spells out the
  // per-squaring branch choices in order.
  Table ap({"graph", "n", "sq", "schedule", "rounds", "bits", "ok",
            "dense-run bits"},
           {kP, kP, kM, kD, kM, kM, kM, kD});
  for (int nn : benchutil::grid({64, 125})) {
    struct Inst {
      std::string name;
      Graph g;
    };
    const Inst insts[] = {{cell("tree_%d", nn), random_tree(nn, rng)},
                          {cell("gnp_%d", nn), gnp(nn, 3.0 / nn, rng)}};
    for (const Inst& inst : insts) {
      std::vector<std::uint32_t> w(inst.g.num_edges());
      for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 12));
      CliqueUnicast net(nn, 64);
      const ApspSparseResult r = apsp_run_sparse(net, inst.g, w);
      const bool ok = r.dist == apsp_dijkstra_reference(inst.g, w);
      std::string schedule;
      for (const ApspSparseStep& s : r.steps) {
        schedule += s.used_sparse ? 'S' : 'D';
      }
      CliqueUnicast net_dense(nn, 64);
      const ApspResult rd = apsp_run(net_dense, inst.g, w);
      const bool dense_ok = r.dist == rd.dist;
      ap.add_row({inst.name, cell("%d", nn),
                  cell("%zu", r.steps.size()), schedule,
                  cell("%d", r.total_rounds),
                  cell("%llu", static_cast<unsigned long long>(r.total_bits)),
                  (ok && dense_ok) ? "yes" : "NO",
                  cell("%llu",
                       static_cast<unsigned long long>(rd.total_bits))});
    }
  }
  ap.print();
  std::printf("S = sparse branch, D = dense branch, in squaring order: the\n"
              "prefix of S's is the regime where the current power's nnz\n"
              "keeps the declared schedule under the dense plan.\n\n");

  // --- Workload scale: G(n, p) straight to CSR at n far beyond the dense
  // cap (a dense Mat61 at n = 40000 would be ~12 GB), and one local
  // sparse·sparse product (A² — the two-hop neighborhood) to show the
  // substrate computes on what it stores. Deterministic entry counts, no
  // wall-clock.
  Table ws({"n", "p", "edges", "csr nnz", "A^2 nnz", "fill"},
           {kP, kP, kM, kM, kM, kD});
  for (int nn : benchutil::grid({10000, 40000})) {
    const double p = 8.0 / nn;
    const std::vector<Edge> edges = gnp_edges(nn, p, rng);
    const Csr61 adj = Csr61::from_edges(nn, edges);
    const Csr61 sq = csr_multiply_csr_dispatch(adj, adj);
    ws.add_row({cell("%d", nn), cell("%.6f", p), cell("%zu", edges.size()),
                cell("%zu", adj.nnz()), cell("%zu", sq.nnz()),
                cell("%.2f", static_cast<double>(sq.nnz()) /
                                 static_cast<double>(adj.nnz()))});
  }
  ws.print();
  std::printf("gnp_edges samples present edges only (Batagelj-Brandes), so\n"
              "the pipeline is O(n + m) end to end — the dense substrate\n"
              "cannot even materialize these instances.\n");
  return benchutil::finish();
}
