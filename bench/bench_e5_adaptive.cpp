// E5 — Theorem 9: the adaptive algorithm (unknown ex(n,H)) detects H in
// O(ex log^2 n/(nb)) rounds when H-free, O(ex log^2 n/(nb) + log^3 n/b)
// w.h.p. when H is present.
//
// Measured: rounds and verdicts for H-free vs planted inputs across n,
// plus where in the (guess k_i, level j) schedule the algorithm stopped —
// the paper's claim is that H-containing inputs exit *early* at a sparse
// level, H-free inputs exit at (j=0, k ~ degeneracy).
#include "bench_util.h"
#include "comm/clique_broadcast.h"
#include "core/adaptive_detect.h"
#include "core/turan_detect.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E5: Theorem 9 — adaptive detection with unknown Turán number",
      "H-free: exact 'no' in O(ex log^2 n/(nb)); H present: copy found "
      "w.h.p. in O(ex log^2 n/(nb) + log^3 n/b); doubling guesses k_i, "
      "sampling levels G_j");
  Rng rng(5);
  const int b = 16;
  const Graph h = cycle_graph(4);

  Table t({"input", "n", "rounds", "bits", "verdict", "truth", "k_i", "level j",
           "A-runs", "vs Thm7 rounds"},
          {kP, kP, kM, kM, kM, kP, kM, kM, kM, kM});
  for (int n : benchutil::grid({32, 64})) {
    // H-free worst case: dense C4-free graph.
    Graph free_g = dense_cl_free_graph(n, 4, rng);
    // H-present: same plus a planted C4 (hard: still near-extremal).
    Graph planted = free_g;
    plant_subgraph(planted, h, rng);
    // H-present easy: dense random.
    Graph dense = gnp(n, 0.4, rng);

    struct Case {
      const char* name;
      const Graph* g;
    } cases[] = {{"C4-free extremal", &free_g},
                 {"extremal+planted", &planted},
                 {"dense random", &dense}};
    for (const auto& c : cases) {
      CliqueBroadcast net(n, b);
      auto r = adaptive_subgraph_detect(net, *c.g, h, rng);
      CliqueBroadcast net7(n, b);
      auto r7 = turan_subgraph_detect(net7, *c.g, h);
      const bool truth = contains_subgraph(*c.g, h);
      t.add_row({c.name, cell("%d", n), cell("%d", r.stats.rounds),
                 cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
                 r.contains_h ? "yes" : "no", truth ? "yes" : "no",
                 cell("%d", r.final_guess), cell("%d", r.final_level),
                 cell("%d", r.reconstruction_runs), cell("%d", r7.stats.rounds)});
    }
  }
  t.print();
  std::printf("expected shape: dense inputs exit at level j > 0 with small "
              "k_i (cheap); H-free inputs pay the full doubling ladder to "
              "j=0 — the log^2 factor over Theorem 7's informed run\n");
  return benchutil::finish();
}
