// E7 — Theorem 19: C_l detection requires Ω(ex(n, C_l)/(nb)) rounds in
// CLIQUE-BCAST and CONGEST.
//
// Measured: Lemma 18 gadgets across cycle lengths; |E_F| realized by the
// carrier (complete bipartite for odd l — Θ(n^2); C4-free polarity /
// high-girth for even l — Θ(n^{3/2}) or the best greedy density), the
// implied round bound, reduction correctness, and the measured upper
// bound. The CONGEST column uses the Definition 12 cut (one crossing edge
// per gadget path): bound Ω(|E_F|/(δ n b)) with δ n = cut size.
#include "bench_util.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "lowerbound/cycle_lb.h"
#include "lowerbound/disjointness_reduction.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E7: Theorem 19 — C_l detection requires Ω(ex(n,C_l)/(nb)) rounds",
      "odd l: ex = Θ(n^2) -> Ω(n/b); C4: ex = Θ(n^{3/2}) -> Ω(sqrt(n)/b); "
      "also CONGEST via δ-sparse cuts");
  Rng rng(7);
  const int b = 8;

  Table t({"l", "N", "n(G')", "|E_F|", "cut", "reduction ok",
           "BCAST LB rounds", "CONGEST LB rounds", "measured UB"},
          {kP, kP, kP, kP, kP, kM, kD, kD, kM});
  for (int l : benchutil::grid({4, 5, 6, 7})) {
    for (int big_n : benchutil::grid({8, 16, 32})) {
      auto lbg = cycle_lower_bound_graph(l, big_n, rng);
      const std::size_t m = lbg.f.edges().size();
      if (m == 0) continue;
      const Graph h = cycle_graph(l);
      BroadcastDetector detect = [&h](CliqueBroadcast& net, const Graph& g) {
        return full_broadcast_detect(net, g, h).contains_h;
      };
      int correct = 0;
      int ub_rounds = 0;
      const int trials = 4;
      for (int t_i = 0; t_i < trials; ++t_i) {
        DisjointnessInstance inst =
            (t_i % 2 == 0) ? random_disjoint_instance(m, 0.5, rng)
                           : random_intersecting_instance(m, 0.5, rng);
        auto out = solve_disjointness_via_detection(lbg, inst, b, detect);
        correct += out.correct ? 1 : 0;
        ub_rounds = out.detection_rounds;
      }
      const double n_gp = static_cast<double>(lbg.g_prime.num_vertices());
      const std::size_t cut = partition_cut_size(lbg);
      t.add_row({cell("%d", l), cell("%d", big_n), cell("%.0f", n_gp),
                 cell("%zu", m), cell("%zu", cut),
                 cell("%d/%d", correct, trials),
                 cell("%.2f", static_cast<double>(m) / (n_gp * b)),
                 cell("%.2f", static_cast<double>(m) / (static_cast<double>(cut) * b)),
                 cell("%d", ub_rounds)});
    }
  }
  t.print();
  std::printf("shape check: odd l rows scale like N (carrier N^2/4 edges); "
              "l=4 rows scale like sqrt(N) (C4-free carrier); CONGEST bound "
              "is a 1/δ factor above BCAST (cut = N crossing edges)\n");
  return benchutil::finish();
}
