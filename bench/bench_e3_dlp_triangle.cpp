// E3 — [8] baseline on CLIQUE-UCAST: deterministic Õ(n^{1/3}) triangle
// detection, and Õ(n^{1/3}/T^{2/3}) with a promise of >= T triangles.
//
// Measured: (a) rounds vs n for the deterministic algorithm, with the
// n^{1/3} reference series; (b) rounds vs promised T at fixed n for the
// randomized variant, with the T^{-2/3} reference.
#include <cmath>

#include "bench_util.h"
#include "comm/clique_unicast.h"
#include "core/dlp_triangle.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E3: Dolev–Lenzen–Peled triangle detection (the paper's baseline [8])",
      "deterministic ~n^{1/3} rounds; with >= T triangles, ~n^{1/3}/T^{2/3}");
  Rng rng(3);

  Table a({"n", "groups t", "rounds", "bits", "detected", "truth",
           "rounds/n^{1/3}"},
          {kP, kM, kM, kM, kM, kP, kM});
  for (int n : benchutil::grid({32, 64, 128, 256})) {
    // Dense inputs: the algorithm's cost is dominated by routing the
    // Θ(n^{4/3}) edges each player's group triple spans, which is the
    // regime the n^{1/3} bound describes (sparse inputs sit at the
    // addressing floor).
    Graph g = gnp(n, 0.5, rng);
    const bool truth = count_triangles(g) > 0;
    CliqueUnicast net(n, 32);
    auto r = dlp_triangle_detect(net, g);
    a.add_row({cell("%d", n), cell("%d", r.groups), cell("%d", r.stats.rounds),
               cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
               r.detected ? "yes" : "no", truth ? "yes" : "no",
               cell("%.2f", r.stats.rounds / std::cbrt(static_cast<double>(n)))});
  }
  std::printf("--- (a) deterministic: rounds vs n (last column should flatten) ---\n");
  a.print();

  Table b({"n", "promise T", "actual T", "groups t", "rounds", "detected",
           "rounds*T^{2/3}"},
          {kP, kP, kP, kM, kM, kM, kM});
  const int n = 128;
  for (double density : benchutil::grid<double>({0.15, 0.3, 0.6})) {
    Graph g = gnp(n, density, rng);
    const std::uint64_t t_actual = count_triangles(g);
    if (t_actual == 0) continue;
    const std::uint64_t promise = t_actual / 2 + 1;
    CliqueUnicast net(n, 32);
    auto r = dlp_triangle_detect_promised(net, g, promise, /*runs=*/2, rng);
    b.add_row({cell("%d", n), cell("%llu", static_cast<unsigned long long>(promise)),
               cell("%llu", static_cast<unsigned long long>(t_actual)),
               cell("%d", r.groups), cell("%d", r.stats.rounds),
               r.detected ? "yes" : "no",
               cell("%.1f", r.stats.rounds *
                                std::pow(static_cast<double>(promise), 2.0 / 3.0))});
  }
  std::printf("--- (b) promised-T acceleration at n=%d (rounds shrink as T grows) ---\n", n);
  b.print();
  return benchutil::finish();
}
