// E9 — Theorem 24 / Corollary 25: triangle detection vs 3-party NOF set
// disjointness on Ruzsa–Szemerédi graphs.
//
// Measured: (a) the RS-family statistics — triangle count m(n) vs the
// n^2/e^{O(sqrt(log n))} claim of Claim 23 (reported as the density ratio
// m(n)/n^2, which decays subpolynomially); (b) the reduction executed end
// to end; (c) the implied deterministic round bound m/(nb) vs n
// (Corollary 25's Ω(n/(e^{O(sqrt(log n))} b)) shape).
#include <cmath>

#include "bench_util.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "lowerbound/nof_reduction.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E9: Theorem 24 / Corollary 25 — NOF disjointness vs triangles",
      "RS graphs carry m = n^2/e^{O(sqrt(log n))} edge-disjoint triangles; "
      "R rounds of BCAST triangle detection -> O(nbR) bits of 3-NOF "
      "communication; deterministic bound Ω(n/(e^{O(sqrt(log n))} b))");
  Rng rng(9);
  const int b = 8;

  BroadcastTriangleDetector detect = [](CliqueBroadcast& net, const Graph& g) {
    return full_broadcast_detect(net, g, complete_graph(3)).contains_h;
  };

  Table t({"param", "n(RS)", "triangles m", "m/n^2", "reduction ok",
           "avg NOF bits", "LB rounds m/(nb)", "LB*b/n"},
          {kP, kP, kP, kM, kM, kM, kD, kD});
  for (int param : benchutil::grid({8, 16, 32, 64, 128})) {
    const RuzsaSzemerediGraph rs = ruzsa_szemeredi_graph(param);
    const std::size_t m = rs.triangles.size();
    const double n = static_cast<double>(rs.graph.num_vertices());
    int correct = 0;
    std::uint64_t bits = 0;
    const int trials = param <= 32 ? 6 : 2;
    for (int t_i = 0; t_i < trials; ++t_i) {
      NofDisjointnessInstance inst =
          (t_i % 2 == 0) ? random_nof_disjoint(m, 0.5, rng)
                         : random_nof_intersecting(m, 0.5, rng);
      auto out = solve_nof_disjointness_via_triangles(rs, inst, b, detect);
      correct += out.correct ? 1 : 0;
      bits += out.blackboard_bits;
    }
    const double lb = implied_triangle_round_bound(rs, b);
    t.add_row({cell("%d", param), cell("%.0f", n), cell("%zu", m),
               cell("%.4f", static_cast<double>(m) / (n * n)),
               cell("%d/%d", correct, trials),
               cell("%.0f", static_cast<double>(bits) / trials),
               cell("%.2f", lb), cell("%.4f", lb * b / n)});
  }
  t.print();
  std::printf("shape check: m/n^2 decays slowly (the e^{-O(sqrt(log n))} "
              "factor); LB*b/n approaches a slowly-decaying constant — the "
              "near-linear deterministic bound of Corollary 25\n");
  return benchutil::finish();
}
