// E11 — the Lenzen routing substrate [28]: c-balanced demands route in O(c)
// rounds deterministically.
//
// Measured: rounds for direct vs two-phase vs Valiant routing across load
// factors c and adversarial demand shapes (uniform, hot-pair, hot-dest).
// The theorem-shaped claims: two-phase rounds ~ c (independent of n), and
// the direct router collapses on hot pairs while two-phase does not.
#include "bench_util.h"
#include "routing/router.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

namespace {

RoutingDemand uniform_demand(int n, int c, Rng& rng) {
  RoutingDemand d;
  d.payload_bits = 8;
  std::vector<int> dest_slots;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < c * n; ++k) dest_slots.push_back(v);
  }
  rng.shuffle(dest_slots);
  std::size_t cursor = 0;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < c * n; ++k) {
      d.messages.push_back(RoutedMessage{v, dest_slots[cursor++], 0x5A});
    }
  }
  return d;
}

RoutingDemand hot_pair_demand(int n, int c) {
  // Every player sends its entire c*n quota to a single partner.
  RoutingDemand d;
  d.payload_bits = 8;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < c * n; ++k) {
      d.messages.push_back(RoutedMessage{v, (v + 1) % n, 0xA5});
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E11: routing substrate [28] — balanced demands in O(c) rounds",
      "deterministic relay routing: rounds track the load factor c, not n; "
      "direct routing collapses on adversarial hot pairs");
  Rng rng(11);
  const int bw = 32;

  // Predicted: the Lenzen-style bound — two-phase rounds track the load
  // factor c (times the fixed payload/bandwidth chunking), independent of
  // n and of the demand shape.
  Table a({"shape", "n", "c", "direct rounds", "two-phase rounds",
           "valiant rounds", "pred two-phase O(c)"},
          {kP, kP, kP, kM, kM, kM, kD});
  for (int n : benchutil::grid({16, 32})) {
    for (int c : benchutil::grid({1, 2, 4})) {
      {
        RoutingDemand d = uniform_demand(n, c, rng);
        CliqueUnicast n1(n, bw), n2(n, bw), n3(n, bw);
        a.add_row({"uniform", cell("%d", n), cell("%d", c),
                   cell("%d", route_direct(n1, d).rounds),
                   cell("%d", route_two_phase(n2, d).rounds),
                   cell("%d", route_valiant(n3, d, rng).rounds),
                   cell("%d", c)});
      }
      {
        RoutingDemand d = hot_pair_demand(n, c);
        CliqueUnicast n1(n, bw), n2(n, bw), n3(n, bw);
        a.add_row({"hot-pair", cell("%d", n), cell("%d", c),
                   cell("%d", route_direct(n1, d).rounds),
                   cell("%d", route_two_phase(n2, d).rounds),
                   cell("%d", route_valiant(n3, d, rng).rounds),
                   cell("%d", c)});
      }
    }
  }
  a.print();
  std::printf("shape check: two-phase column depends on c only; direct "
              "column on hot-pair rows grows like c*n — the bottleneck the "
              "relay scheme removes\n");
  return benchutil::finish();
}
