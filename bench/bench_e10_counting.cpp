// E10 — the non-explicit counting bound (paper's full version): some
// f: {0,1}^{n^2} -> {0,1} needs (n - O(log n))/b rounds in CLIQUE-UCAST.
//
// Measured: the numeric protocol-counting threshold vs the trivial n/b
// upper bound across n and b — the gap must shrink to O(log n / b).
#include "bench_util.h"
#include "lowerbound/counting_bound.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E10: counting lower bound (full version of the paper)",
      "some function needs (n - O(log n))/b rounds; trivial UB is n/b — "
      "near-optimal non-explicit bound");
  Table t({"n", "b", "LB rounds (counting)", "UB rounds (n/b)", "gap",
           "closed form (n^2-n-2log n)/((n-1)b)"},
          {kP, kP, kM, kD, kM, kD});
  for (int b : benchutil::grid({1, 4, 16})) {
    for (int n : benchutil::grid({8, 16, 32, 64, 128, 256})) {
      auto cb = counting_lower_bound(n, b);
      t.add_row({cell("%d", n), cell("%d", b),
                 cell("%.0f", cb.lower_bound_rounds),
                 cell("%.0f", cb.upper_bound_rounds),
                 cell("%.0f", cb.upper_bound_rounds - cb.lower_bound_rounds),
                 cell("%.1f", cb.closed_form)});
    }
  }
  t.print();
  std::printf("shape check: the gap column grows like O(log n)/b while the "
              "bound itself grows like n/b — the counting bound is within a "
              "vanishing fraction of optimal\n");
  return benchutil::finish();
}
