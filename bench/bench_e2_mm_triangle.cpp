// E2 — §2.1: matrix-multiplication circuits of size O(n^δ) give triangle
// detection in O(n^{δ-2}) (x polylog) rounds on the unicast clique.
//
// Measured: rounds and circuit wires for the Strassen pipeline
// (δ = log2 7 ≈ 2.807) vs the naive cubic pipeline (δ = 3) as n doubles;
// reported next to the predicted per-doubling growth factors 7/4 = 1.75 and
// 8/4 = 2 for rounds (wires/n^2).
#include <cmath>

#include "bench_util.h"
#include "comm/clique_unicast.h"
#include "core/mm_triangle.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E2: §2.1 — triangle detection via MM circuits (Theorem 2 pipeline)",
      "MM circuits with O(n^delta) wires -> O(n^{delta-2}) rounds; Strassen "
      "delta=2.807 vs naive delta=3; conjectured delta=2+eps -> O(n^eps)");
  Rng rng(2);

  // Theorem 2 prices each layer at ~wires/n^2 routing phases, so the
  // predicted rounds/depth column is wires/n^2 (up to the compiler's
  // constant) — the series the measured rounds/depth is checked against.
  Table t({"n", "algorithm", "wires", "depth", "rounds", "rounds/depth",
           "bits", "detected", "truth", "pred rounds/depth (wires/n^2)"},
          {kP, kP, kM, kM, kM, kM, kM, kM, kP, kD});
  double prev_rounds[2] = {0, 0}, prev_wires[2] = {0, 0}, prev_rpd[2] = {0, 0};
  double growth[2] = {0, 0}, wgrowth[2] = {0, 0}, rpd_growth[2] = {0, 0};
  for (int n : benchutil::grid({8, 16, 32})) {
    Graph g = gnp(n, 3.0 / n, rng);
    plant_subgraph(g, complete_graph(3), rng);
    const bool truth = count_triangles(g) > 0;
    for (int alg = 0; alg < 2; ++alg) {
      const bool strassen = alg == 0;
      CliqueUnicast net(n, 64);
      auto r = mm_triangle_detect(net, g, /*reps=*/1, rng, strassen);
      const double rpd = static_cast<double>(r.stats.rounds) /
                         std::max(1, r.circuit_depth);
      t.add_row({cell("%d", n), strassen ? "strassen" : "naive",
                 cell("%zu", r.circuit_wires), cell("%d", r.circuit_depth),
                 cell("%d", r.stats.rounds), cell("%.1f", rpd),
                 cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
                 r.detected ? "yes" : "no", truth ? "yes" : "no",
                 cell("%.1f", static_cast<double>(r.circuit_wires) /
                                  (static_cast<double>(n) * n))});
      if (prev_rounds[alg] > 0) {
        growth[alg] = static_cast<double>(r.stats.rounds) / prev_rounds[alg];
        wgrowth[alg] = static_cast<double>(r.circuit_wires) / prev_wires[alg];
        rpd_growth[alg] = rpd / prev_rpd[alg];
      }
      prev_rounds[alg] = static_cast<double>(r.stats.rounds);
      prev_wires[alg] = static_cast<double>(r.circuit_wires);
      prev_rpd[alg] = rpd;
    }
  }
  t.print();
  std::printf("growth per doubling (last step):\n");
  std::printf("  wires : strassen %.2fx (predicted ~7x), naive %.2fx "
              "(predicted ~8x)\n", wgrowth[0], wgrowth[1]);
  std::printf("  rounds: strassen %.2fx, naive %.2fx — rounds ~ depth * "
              "wires/n^2, so the per-layer cost n^{delta-2} shows in the "
              "depth-normalized column: strassen %.2fx (predicted ~1.75x = "
              "7/4), naive %.2fx (predicted ~2x)\n",
              growth[0], growth[1], rpd_growth[0], rpd_growth[1]);
  std::printf("fitted per-layer exponent: strassen n^%.2f (paper: n^{0.81} "
              "unconditionally, n^eps under the MM conjecture), naive n^%.2f\n",
              std::log2(rpd_growth[0]), std::log2(rpd_growth[1]));
  std::printf("note: verdicts are one-sided (reps=1 keeps this bench fast; "
              "miss probability per run <= 3/4 — correctness is covered by "
              "tests with reps>=10)\n");
  return benchutil::finish();
}
