// Shared console-table helpers for the experiment harnesses.
//
// These benches reproduce *round/bit complexity* claims, so the primary
// output is measured protocol cost (exact, deterministic given the seed),
// not wall-clock time; each binary prints the series the corresponding
// theorem predicts next to the measurement. Wall-clock microbenchmarks of
// the substrates live in bench_micro.cpp (google-benchmark).
//
// Machine-readable output: every harness accepts `--json=PATH` (parsed by
// init()). When given, finish() mirrors every printed Table row into PATH
// as one JSON object per row, with cells bucketed into {params, measured,
// predicted} according to the per-column Col kinds — this is the
// BENCH_<id>.json trajectory format tracked by the ROADMAP and produced in
// bulk by run_all.sh / `ctest -L bench`.
#pragma once

#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cclique::benchutil {

/// Role of a table column in the emitted JSON: an experiment parameter
/// (input scale, shape, seed), a measured quantity (rounds, bits, wires),
/// or a theory-predicted quantity the measurement is checked against.
enum class Col { kParam, kMeasured, kPredicted };

/// Shorthand for Table kind lists: {kP, kP, kM, kM, kD}.
inline constexpr Col kP = Col::kParam;
inline constexpr Col kM = Col::kMeasured;
inline constexpr Col kD = Col::kPredicted;

namespace detail {

struct TableRecord {
  std::vector<std::string> headers;
  std::vector<Col> kinds;
  std::vector<std::vector<std::string>> rows;
};

struct Registry {
  std::string json_path;  // empty: JSON emission disabled
  bool smoke = false;     // clip parameter grids to their smallest entry
  std::string id;
  std::string claim;
  std::vector<TableRecord> tables;
};

inline Registry& registry() {
  static Registry r;
  return r;
}

inline void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// True iff s is a number under JSON's grammar (stricter than strtod():
/// no hex, no leading '+'/'.', no redundant leading zero), so the cell
/// can be copied into the output verbatim.
inline bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  const std::size_t n = s.size();
  if (i < n && s[i] == '-') ++i;
  if (i >= n || s[i] < '0' || s[i] > '9') return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < n && s[i] == '.') {
    ++i;
    if (i >= n || s[i] < '0' || s[i] > '9') return false;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= n || s[i] < '0' || s[i] > '9') return false;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
  }
  return i == n;
}

/// Emits a cell as a JSON number when it is one (the common case for
/// measurements), else as a JSON string.
inline void append_json_value(std::string& out, const std::string& s) {
  if (is_json_number(s)) {
    out += s;
    return;
  }
  append_json_string(out, s);
}

/// One row object: cells bucketed by column kind. Columns beyond the kinds
/// vector (or all columns past the first, when no kinds were given) count
/// as measured.
inline void append_row_object(std::string& out, const TableRecord& t,
                              const std::vector<std::string>& row) {
  const char* bucket_names[3] = {"params", "measured", "predicted"};
  const Col bucket_ids[3] = {Col::kParam, Col::kMeasured, Col::kPredicted};
  out += '{';
  for (int b = 0; b < 3; ++b) {
    if (b) out += ", ";
    out += '"';
    out += bucket_names[b];
    out += "\": {";
    bool first = true;
    for (std::size_t c = 0; c < row.size() && c < t.headers.size(); ++c) {
      Col kind = Col::kMeasured;
      if (c < t.kinds.size()) {
        kind = t.kinds[c];
      } else if (t.kinds.empty() && c == 0) {
        kind = Col::kParam;
      }
      if (kind != bucket_ids[b]) continue;
      if (!first) out += ", ";
      first = false;
      append_json_string(out, t.headers[c]);
      out += ": ";
      append_json_value(out, row[c]);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace detail

/// Parses harness flags; call first in main(). Recognized: `--json=PATH`
/// and `--smoke` (also enabled by CC_BENCH_SMOKE=1 in the environment, the
/// hook the CI bench smoke job uses through ctest). Unknown arguments are
/// ignored so wrappers can pass extras through.
inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      detail::registry().json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      detail::registry().smoke = true;
    }
  }
  const char* env = std::getenv("CC_BENCH_SMOKE");
  if (env != nullptr && std::string(env) == "1") detail::registry().smoke = true;
}

/// True when the harness should run only its smallest parameter row(s).
inline bool smoke() { return detail::registry().smoke; }

/// Wraps a parameter list so `for (int n : grid({8, 16, 32}))` runs the full
/// sweep normally but only the first (smallest) entry under --smoke /
/// CC_BENCH_SMOKE=1. Harness loops list parameters smallest-first, so the
/// smoke row is the cheapest one per bench.
template <typename T>
inline std::vector<T> grid(std::initializer_list<T> values) {
  if (smoke() && values.size() > 1) return {*values.begin()};
  return std::vector<T>(values);
}

/// Prints the experiment banner and records id/claim for the JSON header.
inline void banner(const char* id, const char* claim) {
  detail::registry().id = id;
  detail::registry().claim = claim;
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf-append into a row cell. Never truncates: sizes the result with a
/// measuring vsnprintf pass first.
inline std::string cell(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<std::size_t>(len));
    // C++17 guarantees contiguous, writable data(); +1 for the NUL
    // vsnprintf writes, which resize() already reserved room for via the
    // internal terminator.
    std::vsnprintf(out.data(), static_cast<std::size_t>(len) + 1, fmt, args);
  }
  va_end(args);
  return out;
}

/// Fixed-width table printer. The optional kinds vector tags each column
/// as parameter / measured / predicted for the JSON mirror; when omitted,
/// column 0 counts as the parameter and the rest as measured.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, std::vector<Col> kinds = {})
      : headers_(std::move(headers)), kinds_(std::move(kinds)) {
    if (!kinds_.empty() && kinds_.size() != headers_.size()) {
      std::fprintf(stderr, "bench_util: Table kinds list has %zu entries for %zu headers\n",
                   kinds_.size(), headers_.size());
      std::abort();
    }
  }

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
    // Mirror the current rows into the JSON registry. Re-printing the same
    // table overwrites its earlier snapshot rather than duplicating rows.
    auto& tables = detail::registry().tables;
    if (reg_index_ < 0) {
      reg_index_ = static_cast<std::ptrdiff_t>(tables.size());
      tables.push_back({});
    }
    tables[static_cast<std::size_t>(reg_index_)] = {headers_, kinds_, rows_};
  }

 private:
  std::vector<std::string> headers_;
  std::vector<Col> kinds_;
  std::vector<std::vector<std::string>> rows_;
  mutable std::ptrdiff_t reg_index_ = -1;
};

/// Writes the JSON mirror if --json was given; call last in main() and
/// return its result (0 on success, 1 when the file cannot be written, so
/// a failed emission fails the ctest bench entry).
inline int finish() {
  const detail::Registry& r = detail::registry();
  if (r.json_path.empty()) return 0;
  std::string out = "{\n  \"bench\": ";
  detail::append_json_string(out, r.id);
  out += ",\n  \"claim\": ";
  detail::append_json_string(out, r.claim);
  out += ",\n  \"tables\": [";
  for (std::size_t t = 0; t < r.tables.size(); ++t) {
    if (t) out += ',';
    out += "\n    {\"headers\": [";
    for (std::size_t c = 0; c < r.tables[t].headers.size(); ++c) {
      if (c) out += ", ";
      detail::append_json_string(out, r.tables[t].headers[c]);
    }
    out += "],\n     \"rows\": [";
    for (std::size_t i = 0; i < r.tables[t].rows.size(); ++i) {
      if (i) out += ',';
      out += "\n      ";
      detail::append_row_object(out, r.tables[t], r.tables[t].rows[i]);
    }
    out += "\n    ]}";
  }
  out += "\n  ],\n  \"rows\": [";
  // Flattened view across tables: one {params, measured, predicted} object
  // per printed row, in print order.
  bool first = true;
  for (const auto& table : r.tables) {
    for (const auto& row : table.rows) {
      if (!first) out += ',';
      first = false;
      out += "\n    ";
      detail::append_row_object(out, table, row);
    }
  }
  out += "\n  ]\n}\n";
  std::FILE* f = std::fopen(r.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_util: cannot open %s for writing\n", r.json_path.c_str());
    return 1;
  }
  const bool wrote_all = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote_all || !closed) {
    std::fprintf(stderr, "bench_util: short write to %s\n", r.json_path.c_str());
    return 1;
  }
  std::printf("json written: %s\n", r.json_path.c_str());
  return 0;
}

}  // namespace cclique::benchutil
