// Shared console-table helpers for the experiment harnesses.
//
// These benches reproduce *round/bit complexity* claims, so the primary
// output is measured protocol cost (exact, deterministic given the seed),
// not wall-clock time; each binary prints the series the corresponding
// theorem predicts next to the measurement. Wall-clock microbenchmarks of
// the substrates live in bench_micro.cpp (google-benchmark).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace cclique::benchutil {

/// Prints the experiment banner.
inline void banner(const char* id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf-append into a row cell.
inline std::string cell(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cclique::benchutil
