// E14 — Claim 6: an H-free n-vertex graph has degeneracy <= 4 ex(n,H)/n.
//
// Measured: the degeneracy-to-cap ratio across H-free families, including
// the *extremal* witnesses (where the claim is tightest): polarity graphs
// for C4, balanced complete bipartite for odd cycles and K3, Turán graphs
// for cliques.
#include "bench_util.h"
#include "graph/degeneracy.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "graph/turan.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E14: Claim 6 — H-free graphs have degeneracy <= 4 ex(n,H)/n",
      "checked on extremal witnesses (worst case for the claim) and random "
      "H-free graphs; ratio column must stay <= 1");
  Rng rng(14);

  Table t({"family", "H", "n", "m", "degeneracy", "cap 4ex/n", "ratio",
           "H-free?"},
          {kP, kP, kP, kP, kM, kD, kM, kM});
  auto add = [&](const char* family, const Graph& g, const Graph& h,
                 const char* hname) {
    const int n = g.num_vertices();
    const int k = compute_degeneracy(g).degeneracy;
    const int cap = degeneracy_cap_if_h_free(static_cast<std::uint64_t>(n), h);
    t.add_row({family, hname, cell("%d", n), cell("%zu", g.num_edges()),
               cell("%d", k), cell("%d", cap),
               cell("%.2f", static_cast<double>(k) / cap),
               contains_subgraph(g, h) ? "NO (!)" : "yes"});
  };

  for (std::uint64_t q : benchutil::grid<std::uint64_t>({5, 7, 11})) {
    add("polarity ER_q", polarity_graph(q), cycle_graph(4), "C4");
  }
  for (int n : benchutil::grid({40, 80, 160})) {
    add("K_{n/2,n/2}", complete_bipartite(n / 2, n / 2), complete_graph(3), "K3");
    add("K_{n/2,n/2}", complete_bipartite(n / 2, n / 2), cycle_graph(5), "C5");
    add("Turan(n,3)", turan_graph(n, 3), complete_graph(4), "K4");
  }
  for (int n : benchutil::grid({60, 120})) {
    add("random tree", random_tree(n, rng), cycle_graph(4), "C4");
    Graph hg = high_girth_graph(n, 6, rng);
    add("girth>6 greedy", hg, cycle_graph(6), "C6");
  }
  t.print();
  std::printf("shape check: every ratio <= 1 and every row H-free; extremal "
              "families sit closest to the cap (the factor-4 slack of the "
              "claim is visible as ratios near 0.25-0.5)\n");
  return benchutil::finish();
}
