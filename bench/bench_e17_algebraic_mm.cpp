// E17 — the algebraic route to the Section 2 workloads: distributed matrix
// multiplication run as a *protocol* (semiring block decomposition per
// Censor-Hillel et al., PODC'15; Le Gall, DISC'16) instead of through the
// Theorem 2 circuit compiler.
//
// Measured: exact rounds/bits of the O(n^{1/3})-round protocol over both
// element types (GF(2) bits and 61-bit F_{2^61-1} words) on a grid of
// perfect cubes, checked row by row against the data-independent plan
// (algebraic_mm_plan) and the asymptotic 6·n^{1/3}·w/b series; the exact
// triangle / 4-cycle counts the product powers, cross-checked against
// brute force; and a backend ablation against the circuit-compiler path.
#include <cmath>

#include "bench_util.h"
#include "comm/clique_unicast.h"
#include "core/algebraic_mm.h"
#include "core/mm_triangle.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "linalg/f2matrix.h"
#include "linalg/mat61.h"
#include "util/rng.h"

using namespace cclique;
using benchutil::Table;
using benchutil::cell;
using benchutil::kD;
using benchutil::kM;
using benchutil::kP;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  benchutil::banner(
      "E17: algebraic MM as a protocol — O(n^{1/3}) rounds, exact counting",
      "block-decomposed distributed MM (Censor-Hillel et al. PODC'15 style) "
      "runs in O(n^{1/3} * w / b) rounds with O(n^{4/3} * w) bits/player; "
      "diag(A^3)/trace(A^4) give exact triangle and C4 counts");
  Rng rng(17);

  // --- The product itself, both rings, perfect cubes so the predicted
  // series is exact. Bandwidths chosen so one hop's per-edge load is a
  // small integer number of rounds: F2 words are 1 bit (b=2), field words
  // 61 bits (b=64).
  Table mm({"n", "ring", "b", "m", "block", "rounds", "dist", "agg", "bits",
            "max player send", "ok", "plan rounds", "series 6n^(1/3)w/b"},
           {kP, kP, kP, kM, kM, kM, kM, kM, kM, kM, kM, kD, kD});
  double prev_rounds[2] = {0, 0}, growth[2] = {0, 0};
  for (int n : benchutil::grid({27, 64, 125, 216})) {
    for (int ring = 0; ring < 2; ++ring) {
      const bool f2 = ring == 0;
      const int bandwidth = f2 ? 2 : 64;
      CliqueUnicast net(n, bandwidth);
      AlgebraicMmResult r;
      bool ok;
      if (f2) {
        const F2Matrix a = F2Matrix::random(n, rng);
        const F2Matrix b = F2Matrix::random(n, rng);
        F2Matrix c;
        r = algebraic_mm_f2(net, a, b, &c);
        ok = c == f2_multiply_naive(a, b);
      } else {
        const Mat61 a = Mat61::random(n, rng);
        const Mat61 b = Mat61::random(n, rng);
        Mat61 c;
        r = algebraic_mm_m61(net, a, b, &c);
        ok = c == m61_multiply_blocked(a, b);
      }
      mm.add_row({cell("%d", n), f2 ? "f2" : "m61", cell("%d", bandwidth),
                  cell("%d", r.plan.grid), cell("%d", r.plan.block),
                  cell("%d", r.total_rounds), cell("%d", r.distribute_rounds),
                  cell("%d", r.aggregate_rounds),
                  cell("%llu", static_cast<unsigned long long>(r.total_bits)),
                  cell("%llu", static_cast<unsigned long long>(r.plan.max_player_send_bits)),
                  ok ? "yes" : "NO", cell("%d", r.plan.total_rounds),
                  cell("%.1f", r.plan.series_rounds)});
      if (prev_rounds[ring] > 0) {
        growth[ring] = static_cast<double>(r.total_rounds) / prev_rounds[ring];
      }
      prev_rounds[ring] = static_cast<double>(r.total_rounds);
    }
  }
  mm.print();
  std::printf("round growth per grid step (last): f2 %.2fx, m61 %.2fx — the\n"
              "grid steps multiply n^{1/3} by 4/3, 5/4, 6/5, so O(n^{1/3})\n"
              "predicts exactly those factors (measured == plan on every row\n"
              "is CC_CHECKed inside the protocol).\n\n",
              growth[0], growth[1]);

  // --- The counting workloads the product powers. Ground truth from the
  // combinatorial counters.
  Table cnt({"n", "edges", "triangles", "truth tri", "C4s", "truth C4",
             "mm rounds", "share", "total rounds", "bits"},
            {kP, kP, kM, kD, kM, kD, kM, kM, kM, kM});
  for (int n : benchutil::grid({27, 64, 125, 216})) {
    Graph g = gnp(n, 6.0 / n, rng);
    plant_subgraph(g, complete_graph(4), rng);  // guarantees triangles + C4s
    CliqueUnicast tri_net(n, 64);
    const AlgebraicCountResult tri = triangle_count_algebraic(tri_net, g);
    CliqueUnicast c4_net(n, 64);
    const AlgebraicCountResult c4 = four_cycle_count_algebraic(c4_net, g);
    cnt.add_row({cell("%d", n), cell("%zu", g.num_edges()),
                 cell("%llu", static_cast<unsigned long long>(tri.count)),
                 cell("%llu", static_cast<unsigned long long>(count_triangles(g))),
                 cell("%llu", static_cast<unsigned long long>(c4.count)),
                 cell("%llu", static_cast<unsigned long long>(count_four_cycles(g))),
                 cell("%d", tri.mm.total_rounds), cell("%d", tri.share_rounds),
                 cell("%d", tri.total_rounds + c4.total_rounds),
                 cell("%llu", static_cast<unsigned long long>(
                                  tri_net.stats().total_bits + c4_net.stats().total_bits))});
  }
  cnt.print();

  // --- Backend ablation: the same question ("any triangle?") answered by
  // the Theorem 2 circuit compiler vs the algebraic protocol. The circuit
  // pays wires/n^2-driven rounds and is one-sided; the protocol is
  // deterministic, exact, and counts.
  Table ab({"n", "backend", "rounds", "bits", "detected", "exact count"},
           {kP, kP, kM, kM, kM, kM});
  for (int n : benchutil::grid({16, 27})) {
    Graph g = gnp(n, 4.0 / n, rng);
    plant_subgraph(g, complete_graph(3), rng);
    for (int be = 0; be < 2; ++be) {
      const TriangleBackend backend =
          be == 0 ? TriangleBackend::kCircuitStrassen : TriangleBackend::kAlgebraic;
      CliqueUnicast net(n, 64);
      const MmTriangleResult r = mm_triangle_run(net, g, /*reps=*/1, rng, backend);
      ab.add_row({cell("%d", n), be == 0 ? "circuit-strassen" : "algebraic",
                  cell("%d", r.stats.rounds),
                  cell("%llu", static_cast<unsigned long long>(r.stats.total_bits)),
                  r.detected ? "yes" : "no",
                  r.exact ? cell("%llu", static_cast<unsigned long long>(r.triangle_count))
                          : "-"});
    }
  }
  ab.print();
  std::printf("note: the circuit row is one-sided at reps=1 (miss prob <= 3/4);\n"
              "the algebraic row is deterministic and exact. Correctness of\n"
              "both paths at high confidence is covered by tier-1 tests.\n");
  return benchutil::finish();
}
