#include "circuit/circuit.h"

#include <algorithm>

#include "util/math_util.h"

namespace cclique {

int Circuit::add(Gate g) {
  for (int in : g.inputs) {
    CC_REQUIRE(in >= 0 && in < num_gates(),
               "gate inputs must reference earlier gates (DAG order)");
  }
  gates_.push_back(std::move(g));
  return num_gates() - 1;
}

int Circuit::add_input() {
  Gate g;
  g.kind = GateKind::kInput;
  const int id = add(std::move(g));
  input_ids_.push_back(id);
  return id;
}

int Circuit::add_const(bool value) {
  Gate g;
  g.kind = GateKind::kConst;
  g.const_value = value;
  return add(std::move(g));
}

int Circuit::add_not(int input) {
  Gate g;
  g.kind = GateKind::kNot;
  g.inputs = {input};
  return add(std::move(g));
}

int Circuit::add_gate(GateKind kind, std::vector<int> inputs) {
  CC_REQUIRE(kind == GateKind::kAnd || kind == GateKind::kOr ||
                 kind == GateKind::kXor,
             "add_gate only handles AND/OR/XOR; use the dedicated adders");
  CC_REQUIRE(!inputs.empty(), "gate needs at least one input");
  Gate g;
  g.kind = kind;
  g.inputs = std::move(inputs);
  return add(std::move(g));
}

int Circuit::add_mod(std::vector<int> inputs, int m) {
  CC_REQUIRE(m >= 2, "MODm gate needs m >= 2");
  CC_REQUIRE(!inputs.empty(), "gate needs at least one input");
  Gate g;
  g.kind = GateKind::kMod;
  g.inputs = std::move(inputs);
  g.modulus = m;
  return add(std::move(g));
}

int Circuit::add_threshold(std::vector<int> inputs, int t) {
  CC_REQUIRE(!inputs.empty(), "gate needs at least one input");
  CC_REQUIRE(t >= 0, "threshold must be non-negative");
  Gate g;
  g.kind = GateKind::kThreshold;
  g.inputs = std::move(inputs);
  g.threshold = t;
  return add(std::move(g));
}

int Circuit::add_weighted_threshold(std::vector<int> inputs,
                                    std::vector<int> weights, int t) {
  CC_REQUIRE(!inputs.empty(), "gate needs at least one input");
  CC_REQUIRE(inputs.size() == weights.size(), "one weight per input");
  CC_REQUIRE(t >= 0, "threshold must be non-negative");
  for (int w : weights) CC_REQUIRE(w >= 1, "weights must be positive");
  Gate g;
  g.kind = GateKind::kWeightedThreshold;
  g.inputs = std::move(inputs);
  g.weights = std::move(weights);
  g.threshold = t;
  return add(std::move(g));
}

int Circuit::add_lut(std::vector<int> inputs, std::vector<bool> lut) {
  CC_REQUIRE(inputs.size() <= 20, "LUT fan-in too large");
  CC_REQUIRE(lut.size() == (static_cast<std::size_t>(1) << inputs.size()),
             "LUT size must be 2^fan-in");
  Gate g;
  g.kind = GateKind::kLut;
  g.inputs = std::move(inputs);
  g.lut = std::move(lut);
  return add(std::move(g));
}

void Circuit::mark_output(int gate) {
  CC_REQUIRE(gate >= 0 && gate < num_gates(), "output gate id out of range");
  output_ids_.push_back(gate);
}

std::size_t Circuit::num_wires() const {
  std::size_t w = 0;
  for (const Gate& g : gates_) w += g.inputs.size();
  return w;
}

std::vector<int> Circuit::fan_outs() const {
  std::vector<int> out(gates_.size(), 0);
  for (const Gate& g : gates_) {
    for (int in : g.inputs) ++out[static_cast<std::size_t>(in)];
  }
  return out;
}

std::vector<std::vector<int>> Circuit::layers() const {
  std::vector<int> layer_of(gates_.size(), 0);
  int max_layer = 0;
  for (std::size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    int l = 0;
    for (int in : g.inputs) {
      l = std::max(l, layer_of[static_cast<std::size_t>(in)] + 1);
    }
    layer_of[id] = l;
    max_layer = std::max(max_layer, l);
  }
  std::vector<std::vector<int>> out(static_cast<std::size_t>(max_layer) + 1);
  for (std::size_t id = 0; id < gates_.size(); ++id) {
    out[static_cast<std::size_t>(layer_of[id])].push_back(static_cast<int>(id));
  }
  return out;
}

int Circuit::depth() const {
  return static_cast<int>(layers().size()) - 1;
}

std::vector<bool> Circuit::evaluate_all(const std::vector<bool>& inputs) const {
  CC_REQUIRE(inputs.size() == input_ids_.size(),
             "evaluate: input count mismatch");
  std::vector<bool> value(gates_.size(), false);
  std::size_t next_input = 0;
  std::vector<bool> in_values;
  for (std::size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.kind == GateKind::kInput) {
      value[id] = inputs[next_input++];
      continue;
    }
    in_values.clear();
    in_values.reserve(g.inputs.size());
    for (int in : g.inputs) in_values.push_back(value[static_cast<std::size_t>(in)]);
    value[id] = eval_gate(static_cast<int>(id), in_values);
  }
  return value;
}

std::vector<bool> Circuit::evaluate(const std::vector<bool>& inputs) const {
  const std::vector<bool> all = evaluate_all(inputs);
  std::vector<bool> out;
  out.reserve(output_ids_.size());
  for (int id : output_ids_) out.push_back(all[static_cast<std::size_t>(id)]);
  return out;
}

int Circuit::separability_bits(int gate_id) const {
  const Gate& g = gate(gate_id);
  switch (g.kind) {
    case GateKind::kInput:
    case GateKind::kConst:
      return 0;
    case GateKind::kNot:
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kXor:
      return 1;
    case GateKind::kMod:
      return bits_for(static_cast<std::uint64_t>(g.modulus));
    case GateKind::kThreshold:
      return bits_for(static_cast<std::uint64_t>(g.inputs.size()) + 1);
    case GateKind::kWeightedThreshold: {
      std::uint64_t total = 0;
      for (int w : g.weights) total += static_cast<std::uint64_t>(w);
      return bits_for(total + 1);
    }
    case GateKind::kLut:
      return static_cast<int>(g.inputs.size());
  }
  return 0;
}

PartAggregate Circuit::partial_aggregate(int gate_id,
                                         const std::vector<int>& wire_positions,
                                         const std::vector<bool>& values) const {
  const Gate& g = gate(gate_id);
  CC_REQUIRE(wire_positions.size() == values.size(),
             "positions/values size mismatch");
  PartAggregate agg;
  agg.bits = separability_bits(gate_id);
  switch (g.kind) {
    case GateKind::kInput:
    case GateKind::kConst:
      CC_REQUIRE(false, "inputs/constants have no in-wires to aggregate");
      break;
    case GateKind::kNot:
    case GateKind::kAnd: {
      // AND: part value = conjunction of the part (NOT handled in combine).
      bool all = true;
      for (bool v : values) all = all && v;
      agg.value = all ? 1 : 0;
      break;
    }
    case GateKind::kOr: {
      bool any = false;
      for (bool v : values) any = any || v;
      agg.value = any ? 1 : 0;
      break;
    }
    case GateKind::kXor: {
      bool parity = false;
      for (bool v : values) parity = parity != v;
      agg.value = parity ? 1 : 0;
      break;
    }
    case GateKind::kMod: {
      std::uint64_t sum = 0;
      for (bool v : values) sum += v ? 1 : 0;
      agg.value = sum % static_cast<std::uint64_t>(g.modulus);
      break;
    }
    case GateKind::kThreshold: {
      std::uint64_t count = 0;
      for (bool v : values) count += v ? 1 : 0;
      agg.value = count;
      break;
    }
    case GateKind::kWeightedThreshold: {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i]) {
          sum += static_cast<std::uint64_t>(
              g.weights[static_cast<std::size_t>(wire_positions[i])]);
        }
      }
      agg.value = sum;
      break;
    }
    case GateKind::kLut: {
      // LUT parts are just the raw bits re-packed at their positions.
      std::uint64_t packed = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i]) packed |= 1ULL << wire_positions[i];
      }
      agg.value = packed;
      break;
    }
  }
  return agg;
}

bool Circuit::combine(int gate_id, const std::vector<PartAggregate>& parts) const {
  const Gate& g = gate(gate_id);
  switch (g.kind) {
    case GateKind::kInput:
    case GateKind::kConst:
      CC_REQUIRE(false, "inputs/constants are not combined");
      return false;
    case GateKind::kNot: {
      CC_REQUIRE(parts.size() == 1, "NOT expects a single part");
      return parts[0].value == 0;
    }
    case GateKind::kAnd: {
      for (const auto& p : parts) {
        if (p.value == 0) return false;
      }
      return true;
    }
    case GateKind::kOr: {
      for (const auto& p : parts) {
        if (p.value != 0) return true;
      }
      return false;
    }
    case GateKind::kXor: {
      bool parity = false;
      for (const auto& p : parts) parity = parity != (p.value != 0);
      return parity;
    }
    case GateKind::kMod: {
      std::uint64_t sum = 0;
      for (const auto& p : parts) sum += p.value;
      return sum % static_cast<std::uint64_t>(g.modulus) == 0;
    }
    case GateKind::kThreshold:
    case GateKind::kWeightedThreshold: {
      std::uint64_t count = 0;
      for (const auto& p : parts) count += p.value;
      return count >= static_cast<std::uint64_t>(g.threshold);
    }
    case GateKind::kLut: {
      std::uint64_t packed = 0;
      for (const auto& p : parts) packed |= p.value;
      return g.lut[static_cast<std::size_t>(packed)];
    }
  }
  return false;
}

bool Circuit::eval_gate(int gate_id, const std::vector<bool>& in_values) const {
  const Gate& g = gate(gate_id);
  CC_REQUIRE(in_values.size() == g.inputs.size(),
             "eval_gate: value count mismatch");
  if (g.kind == GateKind::kConst) return g.const_value;
  CC_REQUIRE(g.kind != GateKind::kInput, "inputs are not evaluated");
  // Single full part: combine(partial(everything)).
  std::vector<int> positions(g.inputs.size());
  for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = static_cast<int>(i);
  return combine(gate_id, {partial_aggregate(gate_id, positions, in_values)});
}

}  // namespace cclique
