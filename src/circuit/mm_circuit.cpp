#include "circuit/mm_circuit.h"

#include <algorithm>

namespace cclique {

namespace {

// XOR of two wires (fan-in-2 gate).
int xor2(Circuit& c, int a, int b) { return c.add_gate(GateKind::kXor, {a, b}); }

// Element-wise XOR of two equal-size blocks.
MatrixWires block_add(Circuit& c, const MatrixWires& a, const MatrixWires& b) {
  CC_REQUIRE(a.n == b.n, "block size mismatch");
  MatrixWires out;
  out.n = a.n;
  out.w.reserve(a.w.size());
  for (std::size_t i = 0; i < a.w.size(); ++i) out.w.push_back(xor2(c, a.w[i], b.w[i]));
  return out;
}

MatrixWires sub_block(const MatrixWires& m, int r0, int c0, int size) {
  MatrixWires out;
  out.n = size;
  out.w.reserve(static_cast<std::size_t>(size) * static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j) out.w.push_back(m.at(r0 + i, c0 + j));
  }
  return out;
}

MatrixWires strassen_rec(Circuit& c, const MatrixWires& a, const MatrixWires& b,
                         int cutoff) {
  const int n = a.n;
  if (n <= cutoff) {
    return add_f2_matmul_naive(c, a, b);
  }
  if (n % 2 != 0) {
    // Dynamic peeling, mirroring linalg/f2matrix.cpp: recurse on the even
    // (n-1)-core and patch with O(n^2) rank-1 and border gates, so the wire
    // count of an odd size tracks its even neighbor. The old code bailed to
    // the Θ(n³)-wire naive block on any odd size (and the top level padded
    // clear to the next power of two — ~7x the wires for n just past 2^k);
    // per-level zero-padding would instead compound a small-block blowup
    // through the 7^depth recursion.
    // With A = [A' u; v^T s], B = [B' x; y^T t]:
    //   C = [A'B' + u y^T   A'x + u t; v^T B' + s y^T   v^T x + s t].
    const int h = n - 1;
    const MatrixWires core =
        strassen_rec(c, sub_block(a, 0, 0, h), sub_block(b, 0, 0, h), cutoff);
    MatrixWires out;
    out.n = n;
    out.w.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
    auto at = [n](int i, int j) {
      return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j);
    };
    for (int i = 0; i < h; ++i) {
      for (int j = 0; j < h; ++j) {
        const int uy = c.add_gate(GateKind::kAnd, {a.at(i, h), b.at(h, j)});
        out.w[at(i, j)] = xor2(c, core.at(i, j), uy);
      }
    }
    // Border entries: each is an (h+1)-term dot product (XOR of ANDs) of a
    // full row of A against a full column of B.
    auto dot = [&](int arow, int bcol) {
      std::vector<int> terms;
      terms.reserve(static_cast<std::size_t>(h) + 1);
      for (int k = 0; k <= h; ++k) {
        terms.push_back(c.add_gate(GateKind::kAnd, {a.at(arow, k), b.at(k, bcol)}));
      }
      return c.add_gate(GateKind::kXor, std::move(terms));
    };
    for (int i = 0; i < h; ++i) out.w[at(i, h)] = dot(i, h);
    for (int j = 0; j < h; ++j) out.w[at(h, j)] = dot(h, j);
    out.w[at(h, h)] = dot(h, h);
    return out;
  }
  const int h = n / 2;
  const MatrixWires a11 = sub_block(a, 0, 0, h), a12 = sub_block(a, 0, h, h);
  const MatrixWires a21 = sub_block(a, h, 0, h), a22 = sub_block(a, h, h, h);
  const MatrixWires b11 = sub_block(b, 0, 0, h), b12 = sub_block(b, 0, h, h);
  const MatrixWires b21 = sub_block(b, h, 0, h), b22 = sub_block(b, h, h, h);

  // Over F2 addition and subtraction coincide, so Strassen's seven products
  // lose all their signs.
  const MatrixWires m1 = strassen_rec(c, block_add(c, a11, a22), block_add(c, b11, b22), cutoff);
  const MatrixWires m2 = strassen_rec(c, block_add(c, a21, a22), b11, cutoff);
  const MatrixWires m3 = strassen_rec(c, a11, block_add(c, b12, b22), cutoff);
  const MatrixWires m4 = strassen_rec(c, a22, block_add(c, b21, b11), cutoff);
  const MatrixWires m5 = strassen_rec(c, block_add(c, a11, a12), b22, cutoff);
  const MatrixWires m6 = strassen_rec(c, block_add(c, a21, a11), block_add(c, b11, b12), cutoff);
  const MatrixWires m7 = strassen_rec(c, block_add(c, a12, a22), block_add(c, b21, b22), cutoff);

  const MatrixWires c11 = block_add(c, block_add(c, m1, m4), block_add(c, m5, m7));
  const MatrixWires c12 = block_add(c, m3, m5);
  const MatrixWires c21 = block_add(c, m2, m4);
  const MatrixWires c22 = block_add(c, block_add(c, m1, m2), block_add(c, m3, m6));

  MatrixWires out;
  out.n = n;
  out.w.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      out.w[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j)] = c11.at(i, j);
      out.w[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j + h)] = c12.at(i, j);
      out.w[static_cast<std::size_t>(i + h) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j)] = c21.at(i, j);
      out.w[static_cast<std::size_t>(i + h) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j + h)] = c22.at(i, j);
    }
  }
  return out;
}

}  // namespace

MatrixWires add_f2_matmul_naive(Circuit& c, const MatrixWires& a, const MatrixWires& b) {
  CC_REQUIRE(a.n == b.n, "matrix size mismatch");
  const int n = a.n;
  MatrixWires out;
  out.n = n;
  out.w.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::vector<int> terms;
      terms.reserve(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        terms.push_back(c.add_gate(GateKind::kAnd, {a.at(i, k), b.at(k, j)}));
      }
      out.w.push_back(terms.size() == 1 ? terms[0]
                                        : c.add_gate(GateKind::kXor, std::move(terms)));
    }
  }
  return out;
}

MatrixWires add_f2_matmul_strassen(Circuit& c, const MatrixWires& a,
                                   const MatrixWires& b, int cutoff) {
  CC_REQUIRE(a.n == b.n, "matrix size mismatch");
  CC_REQUIRE(cutoff >= 1, "cutoff must be >= 1");
  return strassen_rec(c, a, b, cutoff);
}

Circuit f2_matmul_circuit(int n, bool use_strassen, int cutoff) {
  Circuit c;
  MatrixWires a, b;
  a.n = b.n = n;
  for (int i = 0; i < n * n; ++i) a.w.push_back(c.add_input());
  for (int i = 0; i < n * n; ++i) b.w.push_back(c.add_input());
  const MatrixWires prod = use_strassen ? add_f2_matmul_strassen(c, a, b, cutoff)
                                        : add_f2_matmul_naive(c, a, b);
  for (int wire : prod.w) c.mark_output(wire);
  return c;
}

Circuit triangle_witness_circuit(int n, int reps, Rng& rng, int cutoff) {
  CC_REQUIRE(n >= 3, "triangle detection needs n >= 3");
  CC_REQUIRE(reps >= 1, "need at least one repetition");
  Circuit c;
  MatrixWires a;
  a.n = n;
  for (int i = 0; i < n * n; ++i) a.w.push_back(c.add_input());
  const int zero = c.add_const(false);

  std::vector<int> rep_bits;
  rep_bits.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    // Column masks baked in as wiring: masked column j is either A's column
    // (mask bit 1) or the shared zero wire (mask bit 0).
    MatrixWires ar = a, arp = a;
    for (int j = 0; j < n; ++j) {
      const bool rj = rng.coin();
      const bool rpj = rng.coin();
      for (int i = 0; i < n; ++i) {
        if (!rj) ar.w[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j)] = zero;
        if (!rpj) arp.w[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j)] = zero;
      }
    }
    const MatrixWires p = add_f2_matmul_strassen(c, ar, arp, cutoff);
    const MatrixWires q = add_f2_matmul_strassen(c, p, a, cutoff);
    std::vector<int> diag;
    diag.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) diag.push_back(q.at(i, i));
    rep_bits.push_back(c.add_gate(GateKind::kOr, std::move(diag)));
  }
  const int out = rep_bits.size() == 1 ? rep_bits[0]
                                       : c.add_gate(GateKind::kOr, std::move(rep_bits));
  c.mark_output(out);
  return c;
}

}  // namespace cclique
