// Boolean circuits with unbounded fan-in, b-separable gates (Definition 1).
//
// A circuit here is a DAG of gates; inputs are gates with no inputs and
// outputs are marked gates. The complexity measures the paper cares about
// are depth (number of evaluation layers) and the number of wires (edges);
// Theorem 2 turns a depth-D circuit with n^2 * s wires of b-separable gates
// into an O(D)-round CLIQUE-UCAST protocol with bandwidth O(b + s).
//
// Definition 1 (b-separability) is realized operationally: every gate kind
// implements
//   partial_aggregate : the g_j of Definition 1 — collapse any subset of a
//                       gate's input wires into at most separability_bits()
//                       bits, and
//   combine           : the h — fold the per-part aggregates into the gate
//                       value.
// The simulation protocol evaluates heavy gates exactly this way, so the
// separability bound *is* the bandwidth the protocol uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace cclique {

/// Gate repertoire. All gates have unbounded fan-in unless noted.
enum class GateKind {
  kInput,      ///< circuit input (no in-wires)
  kConst,      ///< constant 0/1
  kNot,        ///< fan-in 1
  kAnd,        ///< conjunction
  kOr,         ///< disjunction
  kXor,        ///< parity (= MOD2 complement convention: value is the parity)
  kMod,        ///< MODm gate: 1 iff (sum of inputs) % m == 0  (paper's MODm)
  kThreshold,  ///< unweighted threshold: 1 iff (#ones) >= t
  kWeightedThreshold,  ///< 1 iff Σ w_i x_i >= t (w_i in Z+); the paper's
                       ///< TC discussion: separable with ceil(log2(Σw+1))
                       ///< bits instead of ceil(log2(fan-in+1))
  kLut,        ///< arbitrary truth table, small fan-in only
};

/// One gate of a circuit.
struct Gate {
  GateKind kind = GateKind::kInput;
  std::vector<int> inputs;      ///< ids of gates feeding this one
  int modulus = 0;              ///< kMod parameter m >= 2
  int threshold = 0;            ///< k(Weighted)Threshold parameter t >= 0
  std::vector<int> weights;     ///< kWeightedThreshold: positive weights
  std::vector<bool> lut;        ///< kLut table, size 2^fan-in
  bool const_value = false;     ///< kConst value
};

/// A partial aggregate (the value of one g_j of Definition 1).
struct PartAggregate {
  std::uint64_t value = 0;  ///< at most `bits` wide
  int bits = 0;
};

class Circuit {
 public:
  /// Adds an input gate; returns its id. Inputs are indexed in creation
  /// order for evaluate().
  int add_input();

  /// Adds a constant gate.
  int add_const(bool value);

  /// Adds a NOT gate over `input`.
  int add_not(int input);

  /// Adds an unbounded fan-in gate of the given kind over `inputs`
  /// (kAnd / kOr / kXor).
  int add_gate(GateKind kind, std::vector<int> inputs);

  /// Adds a MODm gate: outputs 1 iff sum(inputs) % m == 0.
  int add_mod(std::vector<int> inputs, int m);

  /// Adds an unweighted threshold gate: outputs 1 iff #ones >= t.
  int add_threshold(std::vector<int> inputs, int t);

  /// Adds a weighted threshold gate: outputs 1 iff Σ w_i x_i >= t
  /// (weights positive; the weight magnitude, not the fan-in, drives
  /// separability — see the paper's TC lower-bound discussion).
  int add_weighted_threshold(std::vector<int> inputs, std::vector<int> weights,
                             int t);

  /// Adds a LUT gate (fan-in <= 20); lut has 2^fan-in entries indexed by the
  /// input bits with input 0 as the least significant bit.
  int add_lut(std::vector<int> inputs, std::vector<bool> lut);

  /// Marks a gate as a circuit output (in order).
  void mark_output(int gate);

  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(input_ids_.size()); }
  int num_outputs() const { return static_cast<int>(output_ids_.size()); }
  const std::vector<int>& input_ids() const { return input_ids_; }
  const std::vector<int>& output_ids() const { return output_ids_; }
  const Gate& gate(int id) const {
    CC_REQUIRE(id >= 0 && id < num_gates(), "gate id out of range");
    return gates_[static_cast<std::size_t>(id)];
  }

  /// Total number of wires (sum of fan-ins).
  std::size_t num_wires() const;

  /// Fan-out (number of out-wires) per gate.
  std::vector<int> fan_outs() const;

  /// The layer partition L_0, ..., L_D of the paper: L_0 = inputs/consts,
  /// L_r = gates whose inputs all lie in layers < r. Depth D = #layers - 1.
  std::vector<std::vector<int>> layers() const;

  /// Depth = index of the last layer (0 for an input-only circuit).
  int depth() const;

  /// Evaluates the circuit; `inputs` are in input-creation order. Returns
  /// the value of every gate (indexable by gate id).
  std::vector<bool> evaluate_all(const std::vector<bool>& inputs) const;

  /// Evaluates and returns only the marked outputs.
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  /// Definition 1 machinery: the number of bits any part aggregate of this
  /// gate needs (the "b" for which the gate is b-separable):
  ///   AND/OR/XOR/NOT: 1;  MODm: ceil(log2 m);
  ///   threshold(t, fan-in k): ceil(log2(k+1));  LUT: fan-in.
  int separability_bits(int gate_id) const;

  /// g_j of Definition 1: aggregate the sub-vector of this gate's inputs
  /// given by `wire_positions` (indices into gate.inputs) with the
  /// corresponding `values`.
  PartAggregate partial_aggregate(int gate_id,
                                  const std::vector<int>& wire_positions,
                                  const std::vector<bool>& values) const;

  /// h of Definition 1: folds part aggregates (covering all input wires,
  /// each exactly once) into the gate's output value.
  bool combine(int gate_id, const std::vector<PartAggregate>& parts) const;

  /// Convenience: directly evaluates a gate from its full ordered input
  /// values (used by the reference evaluator and in tests against
  /// partial_aggregate/combine).
  bool eval_gate(int gate_id, const std::vector<bool>& in_values) const;

 private:
  int add(Gate g);

  std::vector<Gate> gates_;
  std::vector<int> input_ids_;
  std::vector<int> output_ids_;
};

}  // namespace cclique
