// Circuit builders: the concrete circuit families of Section 2.
//
// These are the workloads the Theorem 2 simulation is benchmarked on —
// bounded-depth parity / MOD_m / threshold circuits (the classes TC0, ACC,
// CC the paper connects to), plus random layered circuits for fuzzing.
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "util/rng.h"

namespace cclique {

/// Parity of `n` inputs as a tree of XOR gates with fan-in `fanin`
/// (depth ceil(log_fanin n)).
Circuit parity_tree(int n, int fanin);

/// AND of n inputs as a fan-in-`fanin` tree.
Circuit and_tree(int n, int fanin);

/// Majority of n inputs: one unweighted threshold gate (depth 1).
Circuit majority(int n);

/// Depth-2 CC[m]-style circuit: a MODm gate over MODm gates, each bottom
/// gate over a random subset of inputs of the given size.
Circuit mod_mod_circuit(int n, int m, int bottom_gates, int bottom_fanin, Rng& rng);

/// Random layered circuit: `width` gates per layer, `depth` layers, each
/// gate a random kind over `fanin` random wires from the previous layer.
/// Output = XOR of the last layer. Used for differential fuzzing of the
/// Theorem 2 compiler against direct evaluation.
Circuit random_layered_circuit(int n_inputs, int width, int depth, int fanin,
                               Rng& rng);

}  // namespace cclique
