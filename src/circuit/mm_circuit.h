// GF(2) matrix-multiplication circuits (Section 2.1).
//
// The paper's conditional O(n^ε) triangle-detection result plugs arithmetic
// circuits for matrix multiplication into the Theorem 2 simulation. We build
// the two unconditional circuit families:
//   * naive       — Θ(n^3) wires, depth O(log n) (XOR trees over ANDs);
//   * Strassen    — O(n^{log2 7}) ≈ O(n^{2.81}) wires, depth O(log n),
//                   block-recursive (all signs vanish in characteristic 2).
// plus the Shamir-style randomized triangle-witness circuit: with random
// diagonal masks r, r' baked in as constants,
//   diag((A·diag(r)) · (A·diag(r')) · A)_i = Σ_{j,k} r_j r'_k a_ij a_jk a_ki
// is 0 for all i when G is triangle-free and nonzero with probability >= 1/4
// per repetition otherwise (Schwartz–Zippel over F_2).
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "util/rng.h"

namespace cclique {

/// Wire ids of an n x n matrix, row-major.
struct MatrixWires {
  int n = 0;
  std::vector<int> w;
  int at(int i, int j) const { return w[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j)]; }
};

/// Emits the naive product C = A * B over F2 into `c`. A and B must already
/// be wires of `c`.
MatrixWires add_f2_matmul_naive(Circuit& c, const MatrixWires& a, const MatrixWires& b);

/// Emits a Strassen product over F2; recursion switches to the naive product
/// at blocks of size <= `cutoff` (>= 1). Handles odd sizes by dynamic
/// peeling (even core + O(n^2) rank-1/border gates), so wire counts grow
/// smoothly in n instead of jumping at powers of two.
MatrixWires add_f2_matmul_strassen(Circuit& c, const MatrixWires& a,
                                   const MatrixWires& b, int cutoff);

/// Standalone product circuit: inputs are A then B (row-major), outputs C.
Circuit f2_matmul_circuit(int n, bool use_strassen, int cutoff = 2);

/// The §2.1 triangle-witness circuit over an n-vertex graph's adjacency
/// matrix (n^2 inputs, row-major; the diagonal must be fed zeros — simple
/// graph). Output: a single bit that is 0 whenever the graph is
/// triangle-free and, with probability at least 1 - (3/4)^reps over the
/// baked-in masks, 1 when it has a triangle. Uses Strassen products.
Circuit triangle_witness_circuit(int n, int reps, Rng& rng, int cutoff = 2);

}  // namespace cclique
