#include "circuit/builders.h"

#include <algorithm>

namespace cclique {

namespace {

Circuit tree_of(GateKind kind, int n, int fanin) {
  CC_REQUIRE(n >= 1, "need at least one input");
  CC_REQUIRE(fanin >= 2, "fan-in must be at least 2");
  Circuit c;
  std::vector<int> level;
  level.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) level.push_back(c.add_input());
  while (level.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i < level.size(); i += static_cast<std::size_t>(fanin)) {
      const std::size_t end = std::min(level.size(), i + static_cast<std::size_t>(fanin));
      std::vector<int> group(level.begin() + static_cast<std::ptrdiff_t>(i),
                             level.begin() + static_cast<std::ptrdiff_t>(end));
      if (group.size() == 1) {
        next.push_back(group[0]);  // pass through
      } else {
        next.push_back(c.add_gate(kind, std::move(group)));
      }
    }
    level = std::move(next);
  }
  c.mark_output(level[0]);
  return c;
}

}  // namespace

Circuit parity_tree(int n, int fanin) { return tree_of(GateKind::kXor, n, fanin); }

Circuit and_tree(int n, int fanin) { return tree_of(GateKind::kAnd, n, fanin); }

Circuit majority(int n) {
  CC_REQUIRE(n >= 1, "need at least one input");
  Circuit c;
  std::vector<int> ins;
  ins.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ins.push_back(c.add_input());
  const int out = c.add_threshold(std::move(ins), (n + 1) / 2);
  c.mark_output(out);
  return c;
}

Circuit mod_mod_circuit(int n, int m, int bottom_gates, int bottom_fanin, Rng& rng) {
  CC_REQUIRE(bottom_fanin >= 1 && bottom_fanin <= n, "bottom fan-in out of range");
  Circuit c;
  std::vector<int> ins;
  ins.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ins.push_back(c.add_input());
  std::vector<int> bottom;
  bottom.reserve(static_cast<std::size_t>(bottom_gates));
  for (int gidx = 0; gidx < bottom_gates; ++gidx) {
    std::vector<int> wires;
    wires.reserve(static_cast<std::size_t>(bottom_fanin));
    for (int k = 0; k < bottom_fanin; ++k) {
      wires.push_back(ins[rng.uniform(static_cast<std::uint64_t>(n))]);
    }
    bottom.push_back(c.add_mod(std::move(wires), m));
  }
  const int top = c.add_mod(std::move(bottom), m);
  c.mark_output(top);
  return c;
}

Circuit random_layered_circuit(int n_inputs, int width, int depth, int fanin,
                               Rng& rng) {
  CC_REQUIRE(n_inputs >= 1 && width >= 1 && depth >= 1 && fanin >= 1,
             "random circuit parameters must be positive");
  Circuit c;
  std::vector<int> prev;
  prev.reserve(static_cast<std::size_t>(n_inputs));
  for (int i = 0; i < n_inputs; ++i) prev.push_back(c.add_input());
  for (int layer = 0; layer < depth; ++layer) {
    std::vector<int> cur;
    cur.reserve(static_cast<std::size_t>(width));
    for (int gidx = 0; gidx < width; ++gidx) {
      std::vector<int> wires;
      const int f = 1 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(fanin)));
      wires.reserve(static_cast<std::size_t>(f));
      for (int k = 0; k < f; ++k) {
        wires.push_back(prev[rng.uniform(prev.size())]);
      }
      switch (rng.uniform(5)) {
        case 0: cur.push_back(c.add_gate(GateKind::kAnd, std::move(wires))); break;
        case 1: cur.push_back(c.add_gate(GateKind::kOr, std::move(wires))); break;
        case 2: cur.push_back(c.add_gate(GateKind::kXor, std::move(wires))); break;
        case 3: cur.push_back(c.add_mod(std::move(wires), 2 + static_cast<int>(rng.uniform(5)))); break;
        default:
          cur.push_back(c.add_threshold(
              std::move(wires), 1 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(f)))));
          break;
      }
    }
    prev = std::move(cur);
  }
  const int out = prev.size() == 1 ? prev[0] : c.add_gate(GateKind::kXor, prev);
  c.mark_output(out);
  return c;
}

}  // namespace cclique
