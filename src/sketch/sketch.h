// "Algorithm A" of Becker et al. [2]: one-round reconstruction of graphs of
// degeneracy <= k from O(k log n)-bit broadcasts.
//
// Interface contract used by Theorems 7 and 9: every node simultaneously
// broadcasts one O(k log n)-bit message; if the input graph has degeneracy
// at most k, every node can reconstruct the *entire* graph from the n
// messages; otherwise all nodes detect the failure (soundly — a completed
// reconstruction is always correct, regardless of the actual degeneracy).
//
// Realization (substitution #2 in DESIGN.md): node v's message is a
// deterministic k-sparse-recovery sketch of its adjacency list —
//   [ degree(v) , p_1, ..., p_{2k} ]   with   p_t = Σ_{u ∈ N(v)} (u+1)^t
// over F_p, p = 2^61 - 1. Decoding peels minimum-residual-degree nodes:
// a node with residual degree d <= k has its d remaining neighbors decoded
// from p_1..p_d via Newton's identities (power sums -> elementary symmetric
// polynomials -> root scan over the id universe), verified against
// p_{d+1}..p_{2k}, and subtracted from its neighbors' sketches. The
// degeneracy ordering guarantees the peel never gets stuck when
// degeneracy(G) <= k.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/model.h"
#include "graph/graph.h"
#include "util/check.h"

namespace cclique {

/// The broadcast payload of one node.
struct NodeSketch {
  std::uint64_t degree = 0;
  /// Power sums p_1..p_{2k} of (neighbor id + 1) over F_{2^61-1}.
  std::vector<std::uint64_t> power_sums;
};

/// Builds node v's sketch with parameter k.
NodeSketch make_sketch(const Graph& g, int v, int k);

/// Exact bit size of a sketch message: one degree field (bits_for(n)) plus
/// 2k field elements of 61 bits — the O(k log n) of [2].
std::size_t sketch_bits(int k, int n);

/// Serializes a sketch into the broadcast payload layout counted by
/// sketch_bits(): [degree | p_1 | ... | p_{2k}]. Owned by the sketch module
/// so every detector (Theorems 7 and 9) speaks the same wire format.
Message serialize_sketch(const NodeSketch& s, int n);

/// Inverse of serialize_sketch for a sketch built with parameter k.
NodeSketch deserialize_sketch(const Message& m, int k, int n);

/// Decodes a set of exactly `count` distinct ids in [0, n) from power sums
/// (p_t = Σ (id+1)^t). Returns nullopt if no consistent set exists (which
/// the peeling treats as "parameter k too small"). All 2k sums are used for
/// verification.
std::optional<std::vector<int>> decode_power_sums(
    const std::vector<std::uint64_t>& sums, std::uint64_t count, int n);

/// Outcome of a reconstruction attempt.
struct ReconstructionResult {
  bool success = false;  ///< true iff the peel completed (graph is correct)
  Graph graph;           ///< reconstructed graph when success
};

/// Referee-side reconstruction from all n sketches (parameter k must match
/// the one used to build them). Success iff peeling completes; guaranteed
/// when degeneracy(G) <= k.
ReconstructionResult reconstruct_from_sketches(std::vector<NodeSketch> sketches,
                                               int k, int n);

}  // namespace cclique
