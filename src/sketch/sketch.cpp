#include "sketch/sketch.h"

#include <algorithm>

#include "util/field.h"
#include "util/math_util.h"

namespace cclique {

namespace {
using F = Mersenne61;
}  // namespace

NodeSketch make_sketch(const Graph& g, int v, int k) {
  CC_REQUIRE(k >= 1, "sketch parameter must be positive");
  NodeSketch s;
  s.degree = static_cast<std::uint64_t>(g.degree(v));
  s.power_sums.assign(static_cast<std::size_t>(2 * k), 0);
  for (int u : g.neighbors(v)) {
    const std::uint64_t x = static_cast<std::uint64_t>(u) + 1;
    std::uint64_t xp = 1;
    for (int t = 0; t < 2 * k; ++t) {
      xp = F::mul(xp, x);
      s.power_sums[static_cast<std::size_t>(t)] =
          F::add(s.power_sums[static_cast<std::size_t>(t)], xp);
    }
  }
  return s;
}

std::size_t sketch_bits(int k, int n) {
  return static_cast<std::size_t>(bits_for(static_cast<std::uint64_t>(n) + 1)) +
         static_cast<std::size_t>(2 * k) * 61;
}

Message serialize_sketch(const NodeSketch& s, int n) {
  Message m;
  m.reserve_bits(sketch_bits(static_cast<int>(s.power_sums.size() / 2), n));
  m.push_uint(s.degree, bits_for(static_cast<std::uint64_t>(n) + 1));
  for (std::uint64_t p : s.power_sums) m.push_uint(p, 61);
  return m;
}

NodeSketch deserialize_sketch(const Message& m, int k, int n) {
  BitReader r(m);
  NodeSketch s;
  s.degree = r.read_uint(bits_for(static_cast<std::uint64_t>(n) + 1));
  s.power_sums.resize(static_cast<std::size_t>(2 * k));
  for (auto& p : s.power_sums) p = r.read_uint(61);
  return s;
}

std::optional<std::vector<int>> decode_power_sums(
    const std::vector<std::uint64_t>& sums, std::uint64_t count, int n) {
  const std::size_t d = static_cast<std::size_t>(count);
  if (d == 0) return std::vector<int>{};
  if (d > sums.size()) return std::nullopt;  // count exceeds sketch capacity

  // Newton's identities: i * e_i = Σ_{t=1..i} (-1)^{t-1} e_{i-t} p_t.
  std::vector<std::uint64_t> e(d + 1, 0);
  e[0] = 1;
  for (std::size_t i = 1; i <= d; ++i) {
    std::uint64_t acc = 0;
    for (std::size_t t = 1; t <= i; ++t) {
      const std::uint64_t term = F::mul(e[i - t], sums[t - 1]);
      acc = (t % 2 == 1) ? F::add(acc, term) : F::sub(acc, term);
    }
    e[i] = F::mul(acc, F::inv(i % F::kP));
  }

  // Roots of x^d - e1 x^{d-1} + e2 x^{d-2} - ... over the id universe.
  std::vector<int> found;
  for (int cand = 0; cand < n && found.size() < d; ++cand) {
    const std::uint64_t x = static_cast<std::uint64_t>(cand) + 1;
    // Horner evaluation of Σ (-1)^i e_i x^{d-i}.
    std::uint64_t val = 0;
    for (std::size_t i = 0; i <= d; ++i) {
      val = F::mul(val, x);
      const std::uint64_t coeff = e[i];
      val = (i % 2 == 0) ? F::add(val, coeff) : F::sub(val, coeff);
    }
    if (val == 0) found.push_back(cand);
  }
  if (found.size() != d) return std::nullopt;

  // Verify against every provided power sum (catches multiplicities and
  // counts inconsistent with the sketch).
  std::vector<std::uint64_t> check(sums.size(), 0);
  for (int id : found) {
    const std::uint64_t x = static_cast<std::uint64_t>(id) + 1;
    std::uint64_t xp = 1;
    for (std::size_t t = 0; t < sums.size(); ++t) {
      xp = F::mul(xp, x);
      check[t] = F::add(check[t], xp);
    }
  }
  if (check != sums) return std::nullopt;
  return found;
}

ReconstructionResult reconstruct_from_sketches(std::vector<NodeSketch> sketches,
                                               int k, int n) {
  CC_REQUIRE(static_cast<int>(sketches.size()) == n, "one sketch per node");
  ReconstructionResult result;
  result.graph = Graph(n);

  std::vector<bool> peeled(static_cast<std::size_t>(n), false);
  int remaining = n;
  while (remaining > 0) {
    // Take any unpeeled node of minimum residual degree.
    int v = -1;
    for (int u = 0; u < n; ++u) {
      if (peeled[static_cast<std::size_t>(u)]) continue;
      if (v < 0 || sketches[static_cast<std::size_t>(u)].degree <
                       sketches[static_cast<std::size_t>(v)].degree) {
        v = u;
      }
    }
    NodeSketch& sv = sketches[static_cast<std::size_t>(v)];
    if (sv.degree > static_cast<std::uint64_t>(k)) {
      // Peel is stuck: every remaining node still has > k unknown
      // neighbors, which certifies degeneracy(G) > k.
      return result;
    }
    auto nbrs = decode_power_sums(sv.power_sums, sv.degree, n);
    if (!nbrs.has_value()) return result;  // inconsistent sketch: fail soundly
    for (int u : *nbrs) {
      if (u == v || peeled[static_cast<std::size_t>(u)] ||
          result.graph.has_edge(u, v)) {
        // A decoded neighbor that is already peeled (its edges were fully
        // accounted) or duplicated indicates an inconsistent sketch set.
        return result;
      }
      result.graph.add_edge(v, u);
      // Remove v from u's residual sketch.
      NodeSketch& su = sketches[static_cast<std::size_t>(u)];
      if (su.degree == 0) return result;
      --su.degree;
      const std::uint64_t x = static_cast<std::uint64_t>(v) + 1;
      std::uint64_t xp = 1;
      for (std::size_t t = 0; t < su.power_sums.size(); ++t) {
        xp = Mersenne61::mul(xp, x);
        su.power_sums[t] = Mersenne61::sub(su.power_sums[t], xp);
      }
    }
    sv.degree = 0;
    std::fill(sv.power_sums.begin(), sv.power_sums.end(), 0);
    peeled[static_cast<std::size_t>(v)] = true;
    --remaining;
  }
  result.success = true;
  return result;
}

}  // namespace cclique
