// Runtime-dispatched local matrix kernels: scalar / AVX2, single- or
// multi-threaded.
//
// The experiment harnesses meter protocols in rounds and bits, but the
// reachable experiment *scale* is bounded by the simulator's local compute —
// above all the two dense i-k-j panel kernels behind algebraic MM
// (linalg/mat61) and APSP squaring (linalg/tropical). This module is the
// raw-speed lever: vectorized (AVX2) variants of both kernels compiled in a
// separate -mavx2 translation unit behind runtime CPUID detection, threaded
// over the transport core's shared pool (comm/engine.h), with the scalar
// kernels as the always-correct fallback.
//
// Determinism contract (DESIGN.md §2.6): kernel choice and thread count may
// change wall-clock, never values and never CommStats.
//
//  * Values: both semirings are *exact* — F_{2^61-1} arithmetic is modular
//    and the (min, +) fold is idempotent and order-insensitive — and every
//    kernel performs the same mathematical reduction, so outputs are
//    bit-identical across every {scalar, avx2} x CC_THREADS combination
//    (asserted by tests/kernel_dispatch_test, not hoped). Threading uses
//    deterministic static row partitioning: output rows are independent,
//    each is computed start-to-finish by exactly one worker, and the
//    partition is a pure function of (n, thread count).
//  * CommStats: the kernels are local compute between metered phases; no
//    code path here touches an engine, so the planned round/bit schedule
//    (algebraic_mm_plan / apsp_plan) is kernel-independent by construction
//    — the committed bench baselines reproduce byte-identically under every
//    kernel knob setting.
//
// Selection: the CC_KERNEL environment variable, mirroring CC_THREADS.
//   CC_KERNEL=auto    pick AVX2 when the CPU supports it (default)
//   CC_KERNEL=scalar  force the portable scalar kernels
//   CC_KERNEL=avx2    request AVX2; falls back to scalar (with one stderr
//                     notice) when the CPU or build lacks it — never crashes
// Unrecognized values fail safe to scalar, like CC_THREADS's fallback.
#pragma once

#include <cstdint>

#include "linalg/mat61.h"
#include "linalg/sparse.h"
#include "linalg/tropical.h"

namespace cclique {

/// The local-kernel implementations the dispatcher can select.
enum class KernelKind {
  kScalar,  ///< portable panel kernels (mat61.cpp / tropical.cpp logic)
  kAvx2,    ///< 4-lane AVX2 variants (kernels_avx2.cpp, -mavx2 TU)
};

/// Human-readable kernel name ("scalar" / "avx2") for logs and benches.
const char* kernel_name(KernelKind k);

/// True iff the running CPU supports AVX2 *and* this build compiled the
/// AVX2 translation unit (probed once, cached).
bool cpu_has_avx2();

/// Resolves CC_KERNEL against cpu_has_avx2() to the kernel every dispatch
/// call below will run. Reads the environment on every call so tests can
/// flip the knob at runtime (the resolution itself is trivially cheap).
KernelKind active_kernel();

// ---------------------------------------------------------------------------
// Raw row-range kernels. All operate on row-major n x n storage
// (Mat61::data() / TropicalMat::data() layout) and compute output rows
// [i0, i1) — the unit of the static thread partition. c must not alias a or
// b. The _avx2 variants exist in every build that compiled the AVX2 TU and
// must only be *called* when cpu_has_avx2() is true.

/// Mat61 lazy-reduction panel kernel (scalar): i-k-j order, k in panels of
/// 32 with 128-bit accumulation, one reduce128 per output per panel.
/// Entries of a and b must be reduced into [0, p); c entries end reduced.
void m61_mm_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                        std::uint64_t* c, int n, int i0, int i1);

/// Mat61 AVX2 kernel: 4-wide 64x64->128 multiplies via _mm256_mul_epu32
/// limb decomposition (lo32 x hi29 cross products folded through
/// 2^61 = 1 mod p), depth-6 panels, one vectorized fold per panel.
void m61_mm_rows_avx2(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* c, int n, int i0, int i1);

/// Tropical row-streaming kernel (scalar): i-k-j order with +inf-lane
/// skipping; raw sums never wrap and saturated candidates never win (see
/// linalg/tropical.h). Entries must be <= kTropicalInf; so are outputs.
void tropical_mm_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* c, int n, int i0, int i1);

/// Tropical AVX2 kernel: 4-wide saturating min-plus. Candidates stay below
/// 2^62, so signed 64-bit lane compares implement the unsigned min exactly,
/// and +inf B-lanes mask themselves (a candidate >= kTropicalInf can never
/// undercut an accumulator <= kTropicalInf).
void tropical_mm_rows_avx2(const std::uint64_t* a, const std::uint64_t* b,
                           std::uint64_t* c, int n, int i0, int i1);

// ---------------------------------------------------------------------------
// Sparse row-range kernels (scalar; AVX2 variants are a future rung — the
// gather-heavy access pattern needs AVX-512 to pay off). Operate on raw CSR
// arrays (linalg/sparse.h layout) for A and row-major dense storage for B
// and C, computing output rows [i0, i1) — the same unit of static thread
// partition as the dense kernels, so CC_THREADS determinism carries over
// unchanged.

/// Sparse·dense over F_{2^61-1}: C rows [i0, i1) of C = A_csr * B_dense.
/// Accumulates 128-bit lazily with the dense kernel's 32-deep panel fold
/// (products of reduced elements are < 2^122). c rows end reduced.
void m61_spmm_rows_scalar(const std::size_t* row_ptr, const int* cols,
                          const std::uint64_t* vals, const std::uint64_t* b,
                          std::uint64_t* c, int n, int i0, int i1);

/// Sparse·dense over (min, +): C rows [i0, i1) of the distance product.
/// Explicit CSR entries are finite by construction, so every stored lane
/// streams without the dense kernel's +inf skip test.
void tropical_spmm_rows_scalar(const std::size_t* row_ptr, const int* cols,
                               const std::uint64_t* vals, const std::uint64_t* b,
                               std::uint64_t* c, int n, int i0, int i1);

// ---------------------------------------------------------------------------
// Sparse whole-product entry points.

/// C = A * B with sparse A and dense B, explicit thread count — the
/// ablation/test entry (bit-identical output for every valid thread count;
/// static row partition identical to the dense kernels).
/// Preconditions: a.ring() matches the dense carrier, a.n() == b.n(),
/// threads >= 1 (CC_REQUIRE).
Mat61 m61_spmm_kernel(const Csr61& a, const Mat61& b, int threads);
TropicalMat tropical_spmm_kernel(const Csr61& a, const TropicalMat& b, int threads);

/// Env-driven sparse·dense dispatch (CC_THREADS via cc_thread_count, small
/// products kept serial like the dense dispatch). The local kernel of the
/// sparse MM schedule (core/algebraic_mm).
Mat61 m61_spmm_dispatch(const Csr61& a, const Mat61& b);
TropicalMat tropical_spmm_dispatch(const Csr61& a, const TropicalMat& b);

/// C = A * B with both operands sparse (either ring — taken from a), CSR
/// out. Row-Gustavson with a dense per-row accumulator; output rows are
/// independent, so the same static row partition threads it and the result
/// is bit-identical for every thread count. Explicit entries of the result
/// are exactly the product's non-implicit-zero entries (entries that cancel
/// to the implicit zero mod p are dropped).
/// Preconditions: a.n() == b.n(), a.ring() == b.ring(), threads >= 1.
Csr61 csr_multiply_csr_kernel(const Csr61& a, const Csr61& b, int threads);

/// Env-driven sparse·sparse dispatch; see csr_multiply_csr_kernel.
Csr61 csr_multiply_csr_dispatch(const Csr61& a, const Csr61& b);

// ---------------------------------------------------------------------------
// Whole-product entry points.

/// C = A * B over F_{2^61-1} with an explicit kernel and thread count — the
/// ablation grid the benches and kernel_dispatch_test drive directly.
/// Preconditions: a.n() == b.n(), threads >= 1, and kind == kAvx2 only when
/// cpu_has_avx2() (CC_REQUIRE). Output is bit-identical for every valid
/// (kind, threads) pair.
Mat61 m61_multiply_kernel(const Mat61& a, const Mat61& b, KernelKind kind,
                          int threads);

/// C = A (min,+) B with an explicit kernel and thread count; same contract.
TropicalMat tropical_multiply_kernel(const TropicalMat& a, const TropicalMat& b,
                                     KernelKind kind, int threads);

/// Env-driven dispatch: active_kernel() x cc_thread_count(), with small
/// products kept single-threaded (pool handoff costs more than the work;
/// the cutoff is a pure function of n, and outputs are row-independent, so
/// determinism is unaffected). This is the local kernel of
/// core/algebraic_mm and core/apsp.
Mat61 m61_multiply_dispatch(const Mat61& a, const Mat61& b);

/// Env-driven tropical dispatch; see m61_multiply_dispatch.
TropicalMat tropical_multiply_dispatch(const TropicalMat& a, const TropicalMat& b);

}  // namespace cclique
