// AVX2 variants of the Mat61 and tropical panel kernels.
//
// This translation unit is the only one compiled with -mavx2 (see
// linalg/CMakeLists.txt); everything here must stay behind the runtime
// cpu_has_avx2() gate in kernels.cpp — the functions are *present* in every
// AVX2-capable build but only *executed* on AVX2 hosts.
//
// Both kernels keep the scalar kernels' i-k-j streaming order — whole rows
// of B walked sequentially, accumulators resident in L1 — vectorized 4
// lanes wide over j, and add one structural improvement the scalar kernels
// deliberately omit: k-blocking. The k range is cut into blocks sized so a
// block of B rows fits comfortably in L2; each block is applied to every
// output row of this range before the next block is touched, so B travels
// from L3/DRAM once per product instead of once per output row. (A
// register-tiled j-outer structure was tried first and lost to the scalar
// kernel at n >= 512: it re-walks B once per column tile at an n-word
// stride, defeating both the prefetcher and the TLB.)
//
// k-blocking commutes with both semirings exactly: the Mat61 kernel commits
// one canonically-reduced partial sum per block into C with modular
// addition, and the tropical kernel's min-fold is idempotent and
// order-insensitive — so outputs stay bit-identical to the scalar kernels'
// (block boundaries are a pure function of n; see DESIGN.md §2.6 and
// tests/kernel_dispatch_test.cpp).
#include "linalg/kernels.h"

#ifdef CCLIQUE_AVX2_TU

#include <immintrin.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "util/field.h"

namespace cclique {

namespace {

/// k-block size: blocks of B rows capped near 768 KiB so a block stays
/// L2-resident while it is swept over every output row. Pure function of n
/// (never of the thread count) — a determinism-contract requirement.
int kernel_k_block(int n) {
  const int rows = static_cast<int>(768 * 1024 / (8 * static_cast<std::size_t>(n) + 1));
  return std::max(24, std::min(n, rows));
}

// ----------------------------------------------------------------- Mat61
//
// A 64x64->128 product of reduced elements a, b < 2^61 decomposes over
// 32-bit limbs (a = aL + 2^32 aH with aL < 2^32, aH < 2^29):
//
//   a*b = aL*bL + 2^32*(aL*bH + aH*bL) + 2^64*(aH*bH)
//
// and folds through the Mersenne congruence 2^61 = 1 (mod p) into three
// addends that each fit a 64-bit lane:
//
//   ll'  = (ll & m61) + (ll >> 61)                    <= 2^61 + 6
//   mid' = ((mid & m29) << 32) + (mid >> 29)          <  2^61 + 2^33
//          (mid = aL*bH + aH*bL < 2^62; 2^32 * 2^29 = 2^61 = 1 mod p)
//   hh'  = hh << 3                                    <  2^61 (2^64 = 8 mod p)
//
// Each addend stream gets its own accumulator array. A folded accumulator
// is <= 2^61 + 7 and each k-step adds < 2^61 + 2^33, so up to 6 steps
// between folds stay under 7*(2^61 + 2^33) < 2^64. The kernel fuses 4
// k-steps per pass over the accumulators (one load/store per stream per 4
// candidate rows instead of per row) and folds once per pass — the AVX2
// analogue of the scalar kernel's one reduce128 per 32-deep panel.

inline __m256i m61_fold(__m256i acc, __m256i m61) {
  return _mm256_add_epi64(_mm256_and_si256(acc, m61),
                          _mm256_srli_epi64(acc, 61));
}

/// Scalar fallback for the < 4 trailing columns: the scalar kernel's exact
/// per-column arithmetic (32-deep 128-bit panels, one reduce128 per panel).
void m61_cols_tail(const std::uint64_t* arow, const std::uint64_t* b,
                   std::uint64_t* crow, int n, int j0) {
  constexpr int kPanel = 32;
  for (int j = j0; j < n; ++j) {
    __uint128_t acc = 0;
    for (int k0 = 0; k0 < n; k0 += kPanel) {
      const int k1 = std::min(n, k0 + kPanel);
      for (int k = k0; k < k1; ++k) {
        const std::uint64_t aik = arow[k];
        if (aik == 0) continue;
        acc += static_cast<__uint128_t>(aik) *
               b[static_cast<std::size_t>(k) * static_cast<std::size_t>(n) + j];
      }
      acc = Mersenne61::reduce128(acc);
    }
    crow[j] = static_cast<std::uint64_t>(acc);
  }
}

/// One pass of R fused k-steps over the accumulator arrays: each stream is
/// loaded once, takes R fold-accumulate steps (R <= 6 keeps the running
/// total under 2^64 — see the overflow note above), is folded once, and
/// stored back. R is a compile-time constant so the lane loop unrolls.
template <int R>
void m61_pass(const std::uint64_t* const* bp, const std::uint64_t* av, int nv,
              __m256i* acc_ll, __m256i* acc_mid, __m256i* acc_hh) {
  static_assert(R >= 1 && R <= 6, "pass depth bounded by the fold budget");
  const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i m29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i m61 = _mm256_set1_epi64x((1LL << 61) - 1);
  __m256i aL[R], aH[R];
  for (int l = 0; l < R; ++l) {
    aL[l] = _mm256_set1_epi64x(static_cast<long long>(av[l] & 0xffffffffULL));
    aH[l] = _mm256_set1_epi64x(static_cast<long long>(av[l] >> 32));
  }
  for (int v = 0; v < nv; ++v) {
    __m256i sll = acc_ll[v];
    __m256i smid = acc_mid[v];
    __m256i shh = acc_hh[v];
    for (int l = 0; l < R; ++l) {
      const __m256i bvec =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp[l] + 4 * v));
      const __m256i bL = _mm256_and_si256(bvec, m32);
      const __m256i bH = _mm256_srli_epi64(bvec, 32);
      const __m256i ll = _mm256_mul_epu32(bL, aL[l]);
      const __m256i mid = _mm256_add_epi64(_mm256_mul_epu32(bH, aL[l]),
                                           _mm256_mul_epu32(bL, aH[l]));
      const __m256i hh = _mm256_mul_epu32(bH, aH[l]);
      sll = _mm256_add_epi64(sll,
                             _mm256_add_epi64(_mm256_and_si256(ll, m61),
                                              _mm256_srli_epi64(ll, 61)));
      smid = _mm256_add_epi64(
          smid,
          _mm256_add_epi64(_mm256_slli_epi64(_mm256_and_si256(mid, m29), 32),
                           _mm256_srli_epi64(mid, 29)));
      shh = _mm256_add_epi64(shh, _mm256_slli_epi64(hh, 3));
    }
    acc_ll[v] = m61_fold(sll, m61);
    acc_mid[v] = m61_fold(smid, m61);
    acc_hh[v] = m61_fold(shh, m61);
  }
}

/// One k-block's contribution to output row i, accumulated (mod p) into the
/// vectorized column prefix crow[0, 4*nv). acc_* is caller scratch (nv
/// vectors per stream); brows/avals is caller scratch for the gathered
/// non-zero lanes of the block.
void m61_row_block(const std::uint64_t* arow, const std::uint64_t* b,
                   std::uint64_t* crow, int n, int nv, int kb0, int kb1,
                   __m256i* acc_ll, __m256i* acc_mid, __m256i* acc_hh,
                   const std::uint64_t** brows, std::uint64_t* avals) {
  const __m256i zero = _mm256_setzero_si256();
  for (int v = 0; v < nv; ++v) {
    acc_ll[v] = zero;
    acc_mid[v] = zero;
    acc_hh[v] = zero;
  }
  int cnt = 0;
  for (int k = kb0; k < kb1; ++k) {
    const std::uint64_t aik = arow[k];
    if (aik == 0) continue;  // same sparse skip as the scalar kernel
    brows[cnt] = b + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
    avals[cnt] = aik;
    ++cnt;
  }
  int g = 0;
  for (; g + 4 <= cnt; g += 4) {
    m61_pass<4>(brows + g, avals + g, nv, acc_ll, acc_mid, acc_hh);
  }
  switch (cnt - g) {
    case 1: m61_pass<1>(brows + g, avals + g, nv, acc_ll, acc_mid, acc_hh); break;
    case 2: m61_pass<2>(brows + g, avals + g, nv, acc_ll, acc_mid, acc_hh); break;
    case 3: m61_pass<3>(brows + g, avals + g, nv, acc_ll, acc_mid, acc_hh); break;
    default: break;
  }
  for (int v = 0; v < nv; ++v) {
    // Folded accumulators are <= 2^61 + 7 each, so the 3-way sum is < 2^63;
    // adding the < 2^61 canonical entry of C still fits 64 bits, and one
    // scalar reduce lands the lane canonically back in [0, p).
    const __m256i sum = _mm256_add_epi64(
        _mm256_add_epi64(acc_ll[v], acc_mid[v]), acc_hh[v]);
    alignas(32) std::uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), sum);
    for (int l = 0; l < 4; ++l) {
      crow[4 * v + l] = Mersenne61::reduce(crow[4 * v + l] + lanes[l]);
    }
  }
}

// --------------------------------------------------------------- tropical

/// Lane-wise min of 64-bit values < 2^63: the signed compare is exact for
/// that range — see the header comment on tropical_mm_rows_avx2.
inline __m256i tropical_vmin(__m256i x, __m256i y) {
  return _mm256_blendv_epi8(x, y, _mm256_cmpgt_epi64(x, y));
}

/// b + av, 4 lanes wide (one shifted B candidate slice).
inline __m256i tropical_cand(const std::uint64_t* bp, __m256i av) {
  return _mm256_add_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp)), av);
}

}  // namespace

void m61_mm_rows_avx2(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* c, int n, int i0, int i1) {
  const int n4 = n & ~3;  // vectorized column prefix
  const int nv = n4 / 4;  // 4-lane vectors per row
  const int kb = kernel_k_block(n);
  // Per-call accumulator scratch (3 * n words — L1-resident at protocol
  // block sizes), reused across every (row, k-block) pair of this range.
  // Over-allocated and hand-aligned to 32 bytes: dereferencing __m256i*
  // issues aligned moves, and std::vector<std::uint64_t> only guarantees 8.
  std::vector<std::uint64_t> scratch(static_cast<std::size_t>(3 * n4) + 3);
  void* raw = scratch.data();
  std::size_t space = scratch.size() * sizeof(std::uint64_t);
  __m256i* acc_ll = reinterpret_cast<__m256i*>(std::align(32, 1, raw, space));
  __m256i* acc_mid = acc_ll + nv;
  __m256i* acc_hh = acc_mid + nv;
  // Gather scratch for one (row, k-block) pair's non-zero lanes.
  std::vector<const std::uint64_t*> brows(static_cast<std::size_t>(kb));
  std::vector<std::uint64_t> avals(static_cast<std::size_t>(kb));
  for (int i = i0; i < i1; ++i) {
    const std::uint64_t* arow =
        a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    std::uint64_t* crow =
        c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n4; ++j) crow[j] = 0;  // block partials add into C
    if (n4 < n) m61_cols_tail(arow, b, crow, n, n4);
  }
  for (int kb0 = 0; kb0 < n; kb0 += kb) {
    const int kb1 = std::min(n, kb0 + kb);
    for (int i = i0; i < i1; ++i) {
      m61_row_block(a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n),
                    b, c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n),
                    n, nv, kb0, kb1, acc_ll, acc_mid, acc_hh, brows.data(),
                    avals.data());
    }
  }
}

void tropical_mm_rows_avx2(const std::uint64_t* a, const std::uint64_t* b,
                           std::uint64_t* c, int n, int i0, int i1) {
  // All values are <= kTropicalInf < 2^62 and candidates aik + b <= 2^62,
  // so signed 64-bit lane compares implement the unsigned min exactly, and
  // +inf B-lanes mask themselves: a candidate >= kInf never beats an
  // accumulator that starts at kInf and only ever decreases.
  const __m256i inf = _mm256_set1_epi64x(static_cast<long long>(kTropicalInf));
  const int n4 = n & ~3;
  const int kb = kernel_k_block(n);
  // Gathered non-inf lanes of one (row, k-block) pair: the shifted B row
  // pointers and their A weights. Gathering first lets the hot loop fuse 4
  // k-steps per pass over the output row — one accumulator load/store per 4
  // candidate rows instead of per row — while B still streams sequentially.
  std::vector<const std::uint64_t*> brows(static_cast<std::size_t>(kb));
  std::vector<std::uint64_t> avals(static_cast<std::size_t>(kb));
  for (int i = i0; i < i1; ++i) {
    // The output row is the accumulator (c never aliases a or b).
    std::uint64_t* crow =
        c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n4; j += 4) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), inf);
    }
    for (int j = n4; j < n; ++j) crow[j] = kTropicalInf;
  }
  for (int kb0 = 0; kb0 < n; kb0 += kb) {
    const int kb1 = std::min(n, kb0 + kb);
    for (int i = i0; i < i1; ++i) {
      const std::uint64_t* arow =
          a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
      std::uint64_t* crow =
          c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
      int cnt = 0;
      for (int k = kb0; k < kb1; ++k) {
        const std::uint64_t aik = arow[k];
        if (aik == kTropicalInf) continue;  // whole lane is a no-op
        brows[static_cast<std::size_t>(cnt)] =
            b + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        avals[static_cast<std::size_t>(cnt)] = aik;
        ++cnt;
      }
      int g = 0;
      for (; g + 4 <= cnt; g += 4) {
        const __m256i av0 =
            _mm256_set1_epi64x(static_cast<long long>(avals[g]));
        const __m256i av1 =
            _mm256_set1_epi64x(static_cast<long long>(avals[g + 1]));
        const __m256i av2 =
            _mm256_set1_epi64x(static_cast<long long>(avals[g + 2]));
        const __m256i av3 =
            _mm256_set1_epi64x(static_cast<long long>(avals[g + 3]));
        const std::uint64_t* b0 = brows[g];
        const std::uint64_t* b1 = brows[g + 1];
        const std::uint64_t* b2 = brows[g + 2];
        const std::uint64_t* b3 = brows[g + 3];
        for (int j = 0; j < n4; j += 4) {
          const __m256i acc =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
          // Tree-shaped min keeps the dependency chain at depth 3 so
          // consecutive j iterations overlap in flight.
          const __m256i m01 = tropical_vmin(tropical_cand(b0 + j, av0),
                                            tropical_cand(b1 + j, av1));
          const __m256i m23 = tropical_vmin(tropical_cand(b2 + j, av2),
                                            tropical_cand(b3 + j, av3));
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(crow + j),
              tropical_vmin(acc, tropical_vmin(m01, m23)));
        }
      }
      for (; g < cnt; ++g) {
        const __m256i av =
            _mm256_set1_epi64x(static_cast<long long>(avals[g]));
        const std::uint64_t* bg = brows[g];
        for (int j = 0; j < n4; j += 4) {
          const __m256i acc =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j),
                              tropical_vmin(acc, tropical_cand(bg + j, av)));
        }
      }
      // Scalar trailing columns, one pass per gathered lane.
      for (int idx = 0; idx < cnt; ++idx) {
        const std::uint64_t av = avals[idx];
        const std::uint64_t* brow = brows[idx];
        for (int j = n4; j < n; ++j) {
          const std::uint64_t cand = av + brow[j];
          if (cand < crow[j]) crow[j] = cand;
        }
      }
    }
  }
}

}  // namespace cclique

#endif  // CCLIQUE_AVX2_TU
