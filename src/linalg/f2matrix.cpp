#include "linalg/f2matrix.h"

#include <algorithm>

namespace cclique {

F2Matrix::F2Matrix(int n) : n_(n) {
  CC_REQUIRE(n >= 0, "matrix size must be non-negative");
  rows_.assign(static_cast<std::size_t>(n),
               std::vector<std::uint64_t>((static_cast<std::size_t>(n) + 63) / 64, 0));
}

F2Matrix F2Matrix::operator+(const F2Matrix& o) const {
  CC_REQUIRE(n_ == o.n_, "size mismatch");
  F2Matrix out(n_);
  for (int i = 0; i < n_; ++i) {
    for (std::size_t w = 0; w < rows_[static_cast<std::size_t>(i)].size(); ++w) {
      out.rows_[static_cast<std::size_t>(i)][w] =
          rows_[static_cast<std::size_t>(i)][w] ^ o.rows_[static_cast<std::size_t>(i)][w];
    }
  }
  return out;
}

F2Matrix F2Matrix::identity(int n) {
  F2Matrix m(n);
  for (int i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

F2Matrix F2Matrix::random(int n, Rng& rng) {
  // Fill whole 64-bit words from the RNG instead of one coin() per bit
  // (64x fewer RNG draws); the tail word is masked so the bits beyond
  // column n-1 stay zero — operator== compares raw words. This draws a
  // different bit stream than the per-bit version; all in-tree consumers
  // compare quantities derived from the same matrices, so no seed bumps
  // were needed.
  F2Matrix m(n);
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  const int tail = n & 63;
  const std::uint64_t tail_mask = tail == 0 ? ~0ULL : (1ULL << tail) - 1;
  for (int i = 0; i < n; ++i) {
    auto& row = m.rows_[static_cast<std::size_t>(i)];
    for (std::size_t w = 0; w < words; ++w) row[w] = rng.next_u64();
    if (words != 0) row[words - 1] &= tail_mask;
  }
  return m;
}

F2Matrix F2Matrix::adjacency(const Graph& g) {
  F2Matrix m(g.num_vertices());
  for (const Edge& e : g.edges()) {
    m.set(e.u, e.v, true);
    m.set(e.v, e.u, true);
  }
  return m;
}

F2Matrix f2_multiply_naive(const F2Matrix& a, const F2Matrix& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  F2Matrix out(n);
  // Row-times-matrix with word-level XOR accumulate: scan each packed word
  // of row i of A, peel its 1-bits with ctz, and XOR the matching rows of B
  // straight into row i of the output (out rows start zero and B rows keep
  // their tail bits masked, so the invariant holds without a write-back
  // pass — no per-bit get/set anywhere in the loop).
  for (int i = 0; i < n; ++i) {
    const auto& ai = a.row(i);
    auto& acc = out.mutable_row(i);
    for (std::size_t wk = 0; wk < ai.size(); ++wk) {
      std::uint64_t bits = ai[wk];
      while (bits != 0) {
        const int k = static_cast<int>(wk * 64) + __builtin_ctzll(bits);
        bits &= bits - 1;
        const auto& bk = b.row(k);
        for (std::size_t w = 0; w < acc.size(); ++w) acc[w] ^= bk[w];
      }
    }
  }
  return out;
}

namespace {

F2Matrix sub_block(const F2Matrix& m, int r0, int c0, int size) {
  F2Matrix out(size);
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j) out.set(i, j, m.get(r0 + i, c0 + j));
  }
  return out;
}

void put_block(F2Matrix& m, const F2Matrix& blk, int r0, int c0) {
  for (int i = 0; i < blk.n(); ++i) {
    for (int j = 0; j < blk.n(); ++j) m.set(r0 + i, c0 + j, blk.get(i, j));
  }
}

F2Matrix strassen_rec(const F2Matrix& a, const F2Matrix& b, int cutoff) {
  const int n = a.n();
  if (n <= cutoff) return f2_multiply_naive(a, b);
  if (n % 2 != 0) {
    // Dynamic peeling: strip the last row/column so the core is even,
    // recurse, and patch with the O(n^2) rank-1 and border terms. The old
    // code bailed to the full Θ(n³) naive product for any odd block (and
    // the top level padded clear to the next power of two); peeling keeps
    // odd sizes within O(n^2) of their even neighbor — padding instead
    // compounds across levels once the recursion re-hits odd sizes.
    // With A = [A' u; v^T s], B = [B' x; y^T t]:
    //   C = [A'B' + u y^T   A'x + u t; v^T B' + s y^T   v^T x + s t].
    const int h = n - 1;
    F2Matrix out(n);
    put_block(out, strassen_rec(sub_block(a, 0, 0, h), sub_block(b, 0, 0, h), cutoff),
              0, 0);
    for (int i = 0; i < h; ++i) {
      if (!a.get(i, h)) continue;  // u_i
      for (int j = 0; j < h; ++j) {
        if (b.get(h, j)) out.set(i, j, !out.get(i, j));  // += u y^T
      }
    }
    for (int i = 0; i < h; ++i) {
      bool acc = a.get(i, h) && b.get(h, h);
      for (int k = 0; k < h; ++k) acc = acc != (a.get(i, k) && b.get(k, h));
      out.set(i, h, acc);
    }
    for (int j = 0; j < h; ++j) {
      bool acc = a.get(h, h) && b.get(h, j);
      for (int k = 0; k < h; ++k) acc = acc != (a.get(h, k) && b.get(k, j));
      out.set(h, j, acc);
    }
    bool corner = a.get(h, h) && b.get(h, h);
    for (int k = 0; k < h; ++k) corner = corner != (a.get(h, k) && b.get(k, h));
    out.set(h, h, corner);
    return out;
  }
  const int h = n / 2;
  const F2Matrix a11 = sub_block(a, 0, 0, h), a12 = sub_block(a, 0, h, h);
  const F2Matrix a21 = sub_block(a, h, 0, h), a22 = sub_block(a, h, h, h);
  const F2Matrix b11 = sub_block(b, 0, 0, h), b12 = sub_block(b, 0, h, h);
  const F2Matrix b21 = sub_block(b, h, 0, h), b22 = sub_block(b, h, h, h);

  const F2Matrix m1 = strassen_rec(a11 + a22, b11 + b22, cutoff);
  const F2Matrix m2 = strassen_rec(a21 + a22, b11, cutoff);
  const F2Matrix m3 = strassen_rec(a11, b12 + b22, cutoff);
  const F2Matrix m4 = strassen_rec(a22, b21 + b11, cutoff);
  const F2Matrix m5 = strassen_rec(a11 + a12, b22, cutoff);
  const F2Matrix m6 = strassen_rec(a21 + a11, b11 + b12, cutoff);
  const F2Matrix m7 = strassen_rec(a12 + a22, b21 + b22, cutoff);

  F2Matrix out(n);
  put_block(out, m1 + m4 + m5 + m7, 0, 0);
  put_block(out, m3 + m5, 0, h);
  put_block(out, m2 + m4, h, 0);
  put_block(out, m1 + m2 + m3 + m6, h, h);
  return out;
}

}  // namespace

F2Matrix f2_multiply_strassen(const F2Matrix& a, const F2Matrix& b, int cutoff) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  CC_REQUIRE(cutoff >= 1, "cutoff must be >= 1");
  return strassen_rec(a, b, cutoff);
}

F2Matrix bool_multiply(const F2Matrix& a, const F2Matrix& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  F2Matrix out(n);
  // Same ctz bit-peel as f2_multiply_naive with OR in place of XOR.
  for (int i = 0; i < n; ++i) {
    const auto& ai = a.row(i);
    auto& acc = out.mutable_row(i);
    for (std::size_t wk = 0; wk < ai.size(); ++wk) {
      std::uint64_t bits = ai[wk];
      while (bits != 0) {
        const int k = static_cast<int>(wk * 64) + __builtin_ctzll(bits);
        bits &= bits - 1;
        const auto& bk = b.row(k);
        for (std::size_t w = 0; w < acc.size(); ++w) acc[w] |= bk[w];
      }
    }
  }
  return out;
}

F2Matrix bool_multiply_via_f2(const F2Matrix& a, const F2Matrix& b, int reps, Rng& rng) {
  CC_REQUIRE(reps >= 1, "need at least one repetition");
  const int n = a.n();
  F2Matrix out(n);
  for (int rep = 0; rep < reps; ++rep) {
    // Mask the inner dimension: (A R B)_ij = sum_k a_ik r_k b_kj over F2 —
    // zero when the Boolean entry is 0, uniform when it has >= 1 witness.
    F2Matrix ar = a;
    for (int k = 0; k < n; ++k) {
      if (rng.coin()) continue;  // keep column k
      for (int i = 0; i < n; ++i) ar.set(i, k, false);
    }
    const F2Matrix prod = f2_multiply_naive(ar, b);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (prod.get(i, j)) out.set(i, j, true);
      }
    }
  }
  return out;
}

bool has_triangle_via_mm(const F2Matrix& a) {
  const F2Matrix a2 = bool_multiply(a, a);
  const F2Matrix a3 = bool_multiply(a2, a);
  for (int i = 0; i < a.n(); ++i) {
    if (a3.get(i, i)) return true;
  }
  return false;
}

}  // namespace cclique
