#include "linalg/mat61.h"

#include "linalg/kernels.h"

namespace cclique {

Mat61::Mat61(int n) : n_(n) {
  CC_REQUIRE(n >= 0, "matrix size must be non-negative");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
}

Mat61 Mat61::operator+(const Mat61& o) const {
  CC_REQUIRE(n_ == o.n_, "size mismatch");
  Mat61 out(n_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = Mersenne61::add(data_[i], o.data_[i]);
  }
  return out;
}

Mat61 Mat61::identity(int n) {
  Mat61 m(n);
  for (int i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Mat61 Mat61::random(int n, Rng& rng) {
  Mat61 m(n);
  for (auto& e : m.data_) e = rng.uniform(Mersenne61::kP);
  return m;
}

Mat61 Mat61::adjacency(const Graph& g) {
  Mat61 m(g.num_vertices());
  for (const Edge& e : g.edges()) {
    m.set(e.u, e.v, 1);
    m.set(e.v, e.u, 1);
  }
  return m;
}

Mat61 m61_multiply_schoolbook(const Mat61& a, const Mat61& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  Mat61 out(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint64_t acc = 0;
      for (int k = 0; k < n; ++k) {
        acc = Mersenne61::add(acc, Mersenne61::mul(a.get(i, k), b.get(k, j)));
      }
      out.set(i, j, acc);
    }
  }
  return out;
}

Mat61 m61_multiply_blocked(const Mat61& a, const Mat61& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  Mat61 out(a.n());
  if (a.n() == 0) return out;
  // The panel logic lives in linalg/kernels (m61_mm_rows_scalar) so the
  // dispatch layer's threaded/vectorized variants share one definition of
  // "the scalar kernel".
  m61_mm_rows_scalar(a.data(), b.data(), out.mutable_data(), a.n(), 0, a.n());
  return out;
}

}  // namespace cclique
