#include "linalg/mat61.h"

namespace cclique {

Mat61::Mat61(int n) : n_(n) {
  CC_REQUIRE(n >= 0, "matrix size must be non-negative");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
}

Mat61 Mat61::operator+(const Mat61& o) const {
  CC_REQUIRE(n_ == o.n_, "size mismatch");
  Mat61 out(n_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = Mersenne61::add(data_[i], o.data_[i]);
  }
  return out;
}

Mat61 Mat61::identity(int n) {
  Mat61 m(n);
  for (int i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Mat61 Mat61::random(int n, Rng& rng) {
  Mat61 m(n);
  for (auto& e : m.data_) e = rng.uniform(Mersenne61::kP);
  return m;
}

Mat61 Mat61::adjacency(const Graph& g) {
  Mat61 m(g.num_vertices());
  for (const Edge& e : g.edges()) {
    m.set(e.u, e.v, 1);
    m.set(e.v, e.u, 1);
  }
  return m;
}

Mat61 m61_multiply_schoolbook(const Mat61& a, const Mat61& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  Mat61 out(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint64_t acc = 0;
      for (int k = 0; k < n; ++k) {
        acc = Mersenne61::add(acc, Mersenne61::mul(a.get(i, k), b.get(k, j)));
      }
      out.set(i, j, acc);
    }
  }
  return out;
}

Mat61 m61_multiply_blocked(const Mat61& a, const Mat61& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  Mat61 out(n);
  if (n == 0) return out;
  // Panel depth: products of reduced elements are < 2^122, so 32 of them
  // sum to < 2^127 — no 128-bit overflow before the per-panel fold.
  constexpr int kPanel = 32;
  std::vector<__uint128_t> acc(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (auto& e : acc) e = 0;
    for (int k0 = 0; k0 < n; k0 += kPanel) {
      const int k1 = k0 + kPanel < n ? k0 + kPanel : n;
      for (int k = k0; k < k1; ++k) {
        const std::uint64_t aik = a.row(i)[k];
        if (aik == 0) continue;  // adjacency inputs are sparse in practice
        const std::uint64_t* brow = b.row(k);
        for (int j = 0; j < n; ++j) {
          acc[static_cast<std::size_t>(j)] +=
              static_cast<__uint128_t>(aik) * brow[j];
        }
      }
      // Fold the panel so the next one starts from a < 2^61 residue.
      for (int j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] =
            Mersenne61::reduce128(acc[static_cast<std::size_t>(j)]);
      }
    }
    for (int j = 0; j < n; ++j) {
      out.set(i, j, static_cast<std::uint64_t>(acc[static_cast<std::size_t>(j)]));
    }
  }
  return out;
}

}  // namespace cclique
