// Bit-packed matrices over GF(2) and over the Boolean semiring.
//
// Section 2.1 rests on the classical chain: triangles are nonzero diagonal
// entries of A^3 over the Boolean semiring; Boolean products randomly reduce
// to F2 products (Shamir's reduction, [45] Thm 4.1); and F2 products have
// subcubic circuits. This module is the *numeric* side of that chain —
// reference implementations the circuit constructions and protocols are
// tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "graph/graph.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {

/// Dense n x n matrix over GF(2), rows packed into 64-bit words.
/// All accessors CC_REQUIRE their indices in range; a default-constructed
/// or F2Matrix(n) matrix is all-zero (the additive identity).
class F2Matrix {
 public:
  F2Matrix() = default;

  /// The n x n zero matrix. Preconditions: n >= 0 (CC_REQUIRE).
  explicit F2Matrix(int n);

  int n() const { return n_; }

  bool get(int i, int j) const {
    check(i, j);
    // Entry bits are payload: reading them while a length/round decision is
    // being made (an oblivious::SinkScope) is a model violation.
    oblivious::source_touch(CC_OBLIVIOUS_SITE("F2Matrix::get"));
    return (rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j) >> 6] >>
            (static_cast<std::size_t>(j) & 63)) & 1ULL;
  }

  void set(int i, int j, bool v) {
    check(i, j);
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(j) & 63);
    if (v) {
      rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j) >> 6] |= mask;
    } else {
      rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j) >> 6] &= ~mask;
    }
  }

  bool operator==(const F2Matrix& o) const { return n_ == o.n_ && rows_ == o.rows_; }

  /// A XOR B.
  F2Matrix operator+(const F2Matrix& o) const;

  /// Identity matrix.
  static F2Matrix identity(int n);

  /// Uniformly random matrix.
  static F2Matrix random(int n, Rng& rng);

  /// Adjacency matrix of a graph (zero diagonal, symmetric).
  static F2Matrix adjacency(const Graph& g);

  const std::vector<std::uint64_t>& row(int i) const {
    CC_REQUIRE(i >= 0 && i < n_, "row out of range");
    oblivious::source_touch(CC_OBLIVIOUS_SITE("F2Matrix::row"));
    return rows_[static_cast<std::size_t>(i)];
  }

  /// Writable packed row i. Writers must keep the bits beyond column n-1
  /// zero — operator== and the word-parallel kernels compare raw words.
  std::vector<std::uint64_t>& mutable_row(int i) {
    CC_REQUIRE(i >= 0 && i < n_, "row out of range");
    return rows_[static_cast<std::size_t>(i)];
  }

 private:
  void check(int i, int j) const {
    CC_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  }
  int n_ = 0;
  std::vector<std::vector<std::uint64_t>> rows_;
};

/// Schoolbook product over GF(2) (word-parallel: O(n^3 / 64)).
F2Matrix f2_multiply_naive(const F2Matrix& a, const F2Matrix& b);

/// Strassen product over GF(2) (recursion cutoff in rows; odd levels peel
/// the last row/column and patch with O(n^2) rank-1/border terms).
/// Exercises the same recursion as the circuit generator.
F2Matrix f2_multiply_strassen(const F2Matrix& a, const F2Matrix& b, int cutoff = 64);

/// Exact Boolean-semiring product: c_ij = OR_k (a_ik AND b_kj).
F2Matrix bool_multiply(const F2Matrix& a, const F2Matrix& b);

/// Shamir's randomized reduction of the Boolean product to F2 products:
/// runs `reps` trials of diag-masked F2 products and ORs the results. Every
/// 1-entry of the result is a true 1 of the Boolean product (one-sided);
/// each true 1 is missed with probability 2^-reps.
F2Matrix bool_multiply_via_f2(const F2Matrix& a, const F2Matrix& b, int reps, Rng& rng);

/// True iff the graph with adjacency matrix `a` (symmetric, zero diagonal)
/// contains a triangle: checks diag(A^3) over the Boolean semiring.
bool has_triangle_via_mm(const F2Matrix& a);

}  // namespace cclique
