// Sparse (CSR) matrices over both algebraic carriers — F_{2^61-1} and the
// tropical 61-bit semiring — sharing the dense types' wire format.
//
// Every algebraic workload used to materialize dense n x n operands
// (linalg/mat61, linalg/tropical), which caps n far below the sparse-graph
// regimes Le Gall (DISC'16) targets: 4-cycle counting, girth, and APSP on
// graphs whose one-step matrices have O(n) finite entries. This module is
// the storage half of the sparse substrate: a compressed-sparse-row matrix
// whose explicit entries are exactly the dense types' 61-bit words, so a
// CSR operand serializes element-for-element like its dense twin and the
// two representations convert losslessly in both directions.
//
//  * One class serves both carriers, tagged by SparseRing: the *implicit*
//    entry is the ring's additive identity (0 over F_{2^61-1}, kTropicalInf
//    over (min, +)), so "nnz" uniformly means "entries that could affect a
//    product". Explicit entries are always distinct from the implicit zero
//    and within the carrier (< p, respectively < kTropicalInf).
//  * Column indices are strictly increasing within a row — the canonical
//    form conversions and kernels rely on (and preserve), which is what
//    makes CSR equality meaningful and thread partitioning deterministic.
//  * Obliviousness: the sparsity *structure* is payload-derived — which
//    entries of a row are nonzero is exactly the kind of data a schedule
//    must not silently depend on. The structure and value accessors
//    (nnz/row_nnz/row_ptr/cols/vals) therefore call oblivious::source_touch
//    like Mat61::get does; schedules that legitimately depend on nnz go
//    through oblivious::declared_dependence (core/algebraic_mm's
//    declared_nnz_profile, DESIGN.md §2.8).
//
// The local product kernels over CSR operands (sparse·dense, sparse·sparse)
// live in linalg/kernels.h beside the dense dispatch entry points.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "graph/graph.h"
#include "linalg/mat61.h"
#include "linalg/tropical.h"
#include "util/check.h"

namespace cclique {

/// Which carrier a sparse matrix's entries live in. The tag decides the
/// implicit entry and the validity range of explicit values; the storage
/// layout and wire format are identical for both.
enum class SparseRing {
  kM61,       ///< F_{2^61-1}: implicit 0, explicit entries in [1, p)
  kTropical,  ///< (min, +): implicit +inf, explicit entries in [0, kTropicalInf)
};

/// The ring's additive identity — the value a missing CSR entry denotes.
inline constexpr std::uint64_t sparse_implicit_zero(SparseRing r) {
  return r == SparseRing::kTropical ? kTropicalInf : 0;
}

/// n x n compressed-sparse-row matrix with 61-bit entries over either
/// carrier. Rows are contiguous [row_ptr()[i], row_ptr()[i+1]) spans of
/// (cols(), vals()) with strictly increasing columns.
class Csr61 {
 public:
  Csr61() = default;

  /// The n x n all-implicit-zero matrix of the given ring.
  explicit Csr61(int n, SparseRing ring = SparseRing::kM61);

  /// Adopts raw CSR arrays. Preconditions (CC_REQUIRE): row_ptr has n+1
  /// monotone entries starting at 0 and ending at cols.size(); per-row
  /// columns are strictly increasing in [0, n); every value is a valid
  /// explicit entry of `ring` (in particular, never the implicit zero).
  Csr61(int n, SparseRing ring, std::vector<std::size_t> row_ptr,
        std::vector<int> cols, std::vector<std::uint64_t> vals);

  int n() const { return n_; }
  SparseRing ring() const { return ring_; }
  std::uint64_t implicit_zero() const { return sparse_implicit_zero(ring_); }

  /// Total explicit entries. Structure reads are tainted sources: an nnz
  /// count flowing into a schedule must pass through a declared dependence
  /// (see DESIGN.md §2.8), which is what the guard verifies.
  std::size_t nnz() const {
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Csr61::nnz"));
    return cols_.size();
  }

  /// Explicit entries in row i.
  std::size_t row_nnz(int i) const {
    CC_REQUIRE(i >= 0 && i < n_, "row out of range");
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Csr61::row_nnz"));
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }

  /// Row span table (n+1 entries).
  const std::size_t* row_ptr() const {
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Csr61::row_ptr"));
    return row_ptr_.data();
  }

  /// Column indices of the explicit entries (nnz entries, strictly
  /// increasing within each row).
  const int* cols() const {
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Csr61::cols"));
    return cols_.data();
  }

  /// Values of the explicit entries (nnz 61-bit words).
  const std::uint64_t* vals() const {
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Csr61::vals"));
    return vals_.data();
  }

  /// Entry (i, j): the explicit value, or the implicit zero. O(log row_nnz).
  std::uint64_t get(int i, int j) const;

  bool operator==(const Csr61& o) const {
    return n_ == o.n_ && ring_ == o.ring_ && row_ptr_ == o.row_ptr_ &&
           cols_ == o.cols_ && vals_ == o.vals_;
  }
  bool operator!=(const Csr61& o) const { return !(*this == o); }

  /// CSR of a dense F_{2^61-1} matrix: explicit entries are exactly the
  /// nonzero entries of `m`.
  static Csr61 from_dense(const Mat61& m);

  /// CSR of a dense tropical matrix: explicit entries are exactly the
  /// finite entries of `m`.
  static Csr61 from_dense(const TropicalMat& m);

  /// Symmetric 0/1 adjacency CSR over F_{2^61-1} from an edge list on
  /// vertices [0, n) — the sparse twin of Mat61::adjacency, built without
  /// any O(n^2) intermediate (pairs with gnp_edges for large-n workloads).
  /// Duplicate edges and self-loops are rejected (CC_REQUIRE).
  static Csr61 from_edges(int n, const std::vector<Edge>& edges);

  /// One-step tropical distance CSR from a weighted edge list: 0 on the
  /// diagonal, weights[e] on both directions of edge e, implicit +inf
  /// elsewhere — the sparse twin of TropicalMat::from_weighted_graph.
  /// Preconditions: weights.size() == edges.size(); no duplicate edges or
  /// self-loops (CC_REQUIRE). Zero-weight edges are kept explicit.
  static Csr61 from_weighted_edges(int n, const std::vector<Edge>& edges,
                                   const std::vector<std::uint32_t>& weights);

  /// Dense reconstructions (exact inverses of the from_dense builders).
  /// Preconditions: the matching ring tag (CC_REQUIRE).
  Mat61 to_mat61() const;
  TropicalMat to_tropical() const;

 private:
  int n_ = 0;
  SparseRing ring_ = SparseRing::kM61;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<int> cols_;
  std::vector<std::uint64_t> vals_;
};

}  // namespace cclique
