// Dense matrices over F_p for the Mersenne prime p = 2^61 - 1.
//
// The algebraic congested-clique protocols (Censor-Hillel et al., PODC'15;
// Le Gall, DISC'16) run matrix multiplication over a ring instead of
// compiling it to a circuit; counting workloads (triangles via diag(A^3),
// 4-cycles via trace(A^4)) then need exact small-integer arithmetic, which
// F_{2^61-1} provides for free as long as the true values stay below p.
// This module is the local numeric substrate of core/algebraic_mm: a
// row-major dense matrix of reduced field elements plus two local product
// kernels — a per-entry schoolbook reference and the cache-blocked
// lazy-reduction kernel the protocol actually calls.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "graph/graph.h"
#include "util/check.h"
#include "util/field.h"
#include "util/rng.h"

namespace cclique {

/// Dense n x n matrix over F_{2^61-1}, row-major, entries kept in [0, p).
/// All accessors CC_REQUIRE their indices in range; a default-constructed
/// or Mat61(n) matrix is all-zero — the ring's additive identity, which is
/// what lets the distributed block protocol pad partial blocks freely.
class Mat61 {
 public:
  Mat61() = default;

  /// The n x n zero matrix. Preconditions: n >= 0 (CC_REQUIRE).
  explicit Mat61(int n);

  int n() const { return n_; }

  std::uint64_t get(int i, int j) const {
    check(i, j);
    // Entry values are payload: reading them while a length/round decision
    // is being made (an oblivious::SinkScope) is a model violation.
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Mat61::get"));
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(j)];
  }

  /// Stores v reduced into [0, p).
  void set(int i, int j, std::uint64_t v) {
    check(i, j);
    data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(j)] = Mersenne61::reduce(v);
  }

  /// Adds v (mod p) into entry (i, j) — the accumulation primitive of the
  /// distributed aggregation phase.
  void add_at(int i, int j, std::uint64_t v) {
    check(i, j);
    std::uint64_t& e =
        data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
    e = Mersenne61::add(e, Mersenne61::reduce(v));
  }

  bool operator==(const Mat61& o) const { return n_ == o.n_ && data_ == o.data_; }
  bool operator!=(const Mat61& o) const { return !(*this == o); }

  /// A + B entrywise (mod p).
  Mat61 operator+(const Mat61& o) const;

  static Mat61 identity(int n);

  /// Uniformly random entries in [0, p) (unbiased via Rng::uniform).
  static Mat61 random(int n, Rng& rng);

  /// 0/1 adjacency matrix of a graph (zero diagonal, symmetric).
  static Mat61 adjacency(const Graph& g);

  /// Contiguous row i (n elements).
  const std::uint64_t* row(int i) const {
    CC_REQUIRE(i >= 0 && i < n_, "row out of range");
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Mat61::row"));
    return data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
  }

  /// Raw row-major storage (n*n words) — the view the linalg/kernels layer
  /// operates on. Writers must keep every entry reduced in [0, p).
  const std::uint64_t* data() const {
    oblivious::source_touch(CC_OBLIVIOUS_SITE("Mat61::data"));
    return data_.data();
  }
  std::uint64_t* mutable_data() { return data_.data(); }

  /// Words of row-major storage backing this matrix (n*n) — the unit the
  /// serving layer's artifact cache (core/query_service) accounts its
  /// residency capacity in. Not a tainted read: the footprint is a function
  /// of the public dimension alone, never of entry values.
  std::size_t footprint_words() const { return data_.size(); }

 private:
  void check(int i, int j) const {
    CC_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  }
  int n_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Schoolbook product with one modular reduction per elementary product —
/// the reference the blocked kernel is tested against. O(n^3) reductions.
Mat61 m61_multiply_schoolbook(const Mat61& a, const Mat61& b);

/// Cache-blocked product: i-k-j loop order streaming contiguous rows of B,
/// k split into panels of 32 with lazy 128-bit accumulation — products of
/// reduced elements are < 2^122, so a 32-deep panel sum stays < 2^127 and
/// needs only one reduce128 per output per panel (~32x fewer reductions
/// than schoolbook). This is the local kernel of core/algebraic_mm.
Mat61 m61_multiply_blocked(const Mat61& a, const Mat61& b);

}  // namespace cclique
