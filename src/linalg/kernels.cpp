#include "linalg/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "comm/engine.h"
#include "util/field.h"

namespace cclique {

const char* kernel_name(KernelKind k) {
  return k == KernelKind::kAvx2 ? "avx2" : "scalar";
}

bool cpu_has_avx2() {
#if defined(CCLIQUE_AVX2_TU) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

KernelKind active_kernel() {
  const char* env = std::getenv("CC_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return cpu_has_avx2() ? KernelKind::kAvx2 : KernelKind::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) {
    if (cpu_has_avx2()) return KernelKind::kAvx2;
    // Graceful fallback, once per process: the request is a preference, not
    // a capability the host can be assumed to have.
    static const bool warned = [] {
      std::fprintf(stderr,
                   "cclique: CC_KERNEL=avx2 requested but this CPU/build has "
                   "no AVX2 — falling back to the scalar kernels\n");
      return true;
    }();
    (void)warned;
    return KernelKind::kScalar;
  }
  // "scalar" and anything unrecognized: fail safe to the portable kernels
  // (the CC_THREADS fallback convention).
  return KernelKind::kScalar;
}

// ------------------------------------------------------------ scalar kernels

void m61_mm_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                        std::uint64_t* c, int n, int i0, int i1) {
  // Panel depth: products of reduced elements are < 2^122, so 32 of them
  // sum to < 2^127 — no 128-bit overflow before the per-panel fold.
  constexpr int kPanel = 32;
  std::vector<__uint128_t> acc(static_cast<std::size_t>(n));
  for (int i = i0; i < i1; ++i) {
    const std::uint64_t* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (auto& e : acc) e = 0;
    for (int k0 = 0; k0 < n; k0 += kPanel) {
      const int k1 = k0 + kPanel < n ? k0 + kPanel : n;
      for (int k = k0; k < k1; ++k) {
        const std::uint64_t aik = arow[k];
        if (aik == 0) continue;  // adjacency inputs are sparse in practice
        const std::uint64_t* brow = b + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        for (int j = 0; j < n; ++j) {
          acc[static_cast<std::size_t>(j)] +=
              static_cast<__uint128_t>(aik) * brow[j];
        }
      }
      // Fold the panel so the next one starts from a < 2^61 residue.
      for (int j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] =
            Mersenne61::reduce128(acc[static_cast<std::size_t>(j)]);
      }
    }
    std::uint64_t* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) {
      crow[j] = static_cast<std::uint64_t>(acc[static_cast<std::size_t>(j)]);
    }
  }
}

void tropical_mm_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* c, int n, int i0, int i1) {
  for (int i = i0; i < i1; ++i) {
    const std::uint64_t* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    std::uint64_t* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) crow[j] = kTropicalInf;
    for (int k = 0; k < n; ++k) {
      const std::uint64_t aik = arow[k];
      if (aik == kTropicalInf) continue;  // whole lane is a no-op
      const std::uint64_t* brow = b + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
      for (int j = 0; j < n; ++j) {
        // aik + brow[j] < 2^62 (both <= kInf), so the raw sum never wraps;
        // a sum >= kInf can never undercut an accumulator <= kInf, which
        // makes the plain comparison exactly the saturating min.
        const std::uint64_t cand = aik + brow[j];
        if (cand < crow[j]) crow[j] = cand;
      }
    }
  }
}

// --------------------------------------------------------- threaded dispatch

namespace {

using RowRangeFn = void (*)(const std::uint64_t*, const std::uint64_t*,
                            std::uint64_t*, int, int, int);

RowRangeFn m61_rows_fn(KernelKind kind) {
  if (kind == KernelKind::kAvx2) {
#ifdef CCLIQUE_AVX2_TU
    CC_REQUIRE(cpu_has_avx2(), "AVX2 kernel requested on a non-AVX2 CPU");
    return &m61_mm_rows_avx2;
#else
    throw PreconditionError("AVX2 kernel requested but this build has no AVX2 TU");
#endif
  }
  return &m61_mm_rows_scalar;
}

RowRangeFn tropical_rows_fn(KernelKind kind) {
  if (kind == KernelKind::kAvx2) {
#ifdef CCLIQUE_AVX2_TU
    CC_REQUIRE(cpu_has_avx2(), "AVX2 kernel requested on a non-AVX2 CPU");
    return &tropical_mm_rows_avx2;
#else
    throw PreconditionError("AVX2 kernel requested but this build has no AVX2 TU");
#endif
  }
  return &tropical_mm_rows_scalar;
}

/// Static row partition: worker t computes rows [n*t/T, n*(t+1)/T) — a pure
/// function of (n, T), every row computed start-to-finish by one worker.
void run_rows(RowRangeFn fn, const std::uint64_t* a, const std::uint64_t* b,
              std::uint64_t* c, int n, int threads) {
  CC_REQUIRE(threads >= 1, "kernel thread count must be >= 1");
  if (threads > n) threads = n;
  if (threads <= 1) {
    fn(a, b, c, n, 0, n);
    return;
  }
  shared_thread_pool(threads)->run_indexed(threads, [&](int t) {
    const int i0 = static_cast<int>(static_cast<std::int64_t>(n) * t / threads);
    const int i1 =
        static_cast<int>(static_cast<std::int64_t>(n) * (t + 1) / threads);
    if (i0 < i1) fn(a, b, c, n, i0, i1);
  });
}

/// Below this dimension the pool handoff costs more than the product; the
/// distributed protocols' per-player blocks (bs = ceil(n/m) rows) live here.
constexpr int kThreadMinDim = 128;

int dispatch_threads(int n) {
  return n < kThreadMinDim ? 1 : cc_thread_count();
}

}  // namespace

Mat61 m61_multiply_kernel(const Mat61& a, const Mat61& b, KernelKind kind,
                          int threads) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  Mat61 out(a.n());
  if (a.n() == 0) return out;
  run_rows(m61_rows_fn(kind), a.data(), b.data(), out.mutable_data(), a.n(),
           threads);
  return out;
}

TropicalMat tropical_multiply_kernel(const TropicalMat& a, const TropicalMat& b,
                                     KernelKind kind, int threads) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  TropicalMat out(a.n());
  if (a.n() == 0) return out;
  run_rows(tropical_rows_fn(kind), a.data(), b.data(), out.mutable_data(),
           a.n(), threads);
  return out;
}

Mat61 m61_multiply_dispatch(const Mat61& a, const Mat61& b) {
  return m61_multiply_kernel(a, b, active_kernel(), dispatch_threads(a.n()));
}

TropicalMat tropical_multiply_dispatch(const TropicalMat& a, const TropicalMat& b) {
  return tropical_multiply_kernel(a, b, active_kernel(), dispatch_threads(a.n()));
}

// ----------------------------------------------------------- sparse kernels

void m61_spmm_rows_scalar(const std::size_t* row_ptr, const int* cols,
                          const std::uint64_t* vals, const std::uint64_t* b,
                          std::uint64_t* c, int n, int i0, int i1) {
  // Same overflow argument as the dense kernel: 32 products of reduced
  // elements sum below 2^127, so fold once per 32 stored entries.
  constexpr std::size_t kPanel = 32;
  std::vector<__uint128_t> acc(static_cast<std::size_t>(n));
  for (int i = i0; i < i1; ++i) {
    for (auto& e : acc) e = 0;
    const std::size_t lo = row_ptr[i], hi = row_ptr[i + 1];
    for (std::size_t e0 = lo; e0 < hi; e0 += kPanel) {
      const std::size_t e1 = e0 + kPanel < hi ? e0 + kPanel : hi;
      for (std::size_t e = e0; e < e1; ++e) {
        const std::uint64_t aik = vals[e];
        const std::uint64_t* brow =
            b + static_cast<std::size_t>(cols[e]) * static_cast<std::size_t>(n);
        for (int j = 0; j < n; ++j) {
          acc[static_cast<std::size_t>(j)] +=
              static_cast<__uint128_t>(aik) * brow[j];
        }
      }
      for (int j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] =
            Mersenne61::reduce128(acc[static_cast<std::size_t>(j)]);
      }
    }
    std::uint64_t* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) {
      crow[j] = static_cast<std::uint64_t>(acc[static_cast<std::size_t>(j)]);
    }
  }
}

void tropical_spmm_rows_scalar(const std::size_t* row_ptr, const int* cols,
                               const std::uint64_t* vals, const std::uint64_t* b,
                               std::uint64_t* c, int n, int i0, int i1) {
  for (int i = i0; i < i1; ++i) {
    std::uint64_t* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) crow[j] = kTropicalInf;
    for (std::size_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      const std::uint64_t aik = vals[e];  // finite by CSR construction
      const std::uint64_t* brow =
          b + static_cast<std::size_t>(cols[e]) * static_cast<std::size_t>(n);
      for (int j = 0; j < n; ++j) {
        // aik < kInf and brow[j] <= kInf, so the raw sum never wraps, and a
        // sum >= kInf can never undercut an accumulator <= kInf (the dense
        // kernel's saturating-min argument).
        const std::uint64_t cand = aik + brow[j];
        if (cand < crow[j]) crow[j] = cand;
      }
    }
  }
}

namespace {

/// Static row partition for the sparse kernels — identical arithmetic to
/// run_rows, generalized to any row closure.
template <typename RowsFn>
void run_row_ranges(int n, int threads, const RowsFn& fn) {
  CC_REQUIRE(threads >= 1, "kernel thread count must be >= 1");
  if (threads > n) threads = n;
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  shared_thread_pool(threads)->run_indexed(threads, [&](int t) {
    const int i0 = static_cast<int>(static_cast<std::int64_t>(n) * t / threads);
    const int i1 =
        static_cast<int>(static_cast<std::int64_t>(n) * (t + 1) / threads);
    if (i0 < i1) fn(i0, i1);
  });
}

}  // namespace

Mat61 m61_spmm_kernel(const Csr61& a, const Mat61& b, int threads) {
  CC_REQUIRE(a.ring() == SparseRing::kM61, "sparse operand is not over F_{2^61-1}");
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  Mat61 out(a.n());
  if (a.n() == 0) return out;
  const std::size_t* rp = a.row_ptr();
  const int* cols = a.cols();
  const std::uint64_t* vals = a.vals();
  const std::uint64_t* bd = b.data();
  std::uint64_t* cd = out.mutable_data();
  const int n = a.n();
  run_row_ranges(n, threads, [&](int i0, int i1) {
    m61_spmm_rows_scalar(rp, cols, vals, bd, cd, n, i0, i1);
  });
  return out;
}

TropicalMat tropical_spmm_kernel(const Csr61& a, const TropicalMat& b, int threads) {
  CC_REQUIRE(a.ring() == SparseRing::kTropical, "sparse operand is not tropical");
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  TropicalMat out(a.n());
  if (a.n() == 0) return out;
  const std::size_t* rp = a.row_ptr();
  const int* cols = a.cols();
  const std::uint64_t* vals = a.vals();
  const std::uint64_t* bd = b.data();
  std::uint64_t* cd = out.mutable_data();
  const int n = a.n();
  run_row_ranges(n, threads, [&](int i0, int i1) {
    tropical_spmm_rows_scalar(rp, cols, vals, bd, cd, n, i0, i1);
  });
  return out;
}

Mat61 m61_spmm_dispatch(const Csr61& a, const Mat61& b) {
  return m61_spmm_kernel(a, b, dispatch_threads(a.n()));
}

TropicalMat tropical_spmm_dispatch(const Csr61& a, const TropicalMat& b) {
  return tropical_spmm_kernel(a, b, dispatch_threads(a.n()));
}

namespace {

/// One thread's slice of the Gustavson product: rows [i0, i1) of A*B as a
/// local (row_nnz, cols, vals) triple, concatenated in row order afterwards
/// — the output is a pure function of the rows, so the thread count never
/// changes a bit of it.
struct CsrSlice {
  std::vector<std::size_t> row_nnz;
  std::vector<int> cols;
  std::vector<std::uint64_t> vals;
};

template <typename Accumulate, typename Keep>
void gustavson_rows(const Csr61& a, const Csr61& b, int i0, int i1,
                    std::uint64_t init, const Accumulate& accumulate,
                    const Keep& keep, CsrSlice* out) {
  const int n = a.n();
  const std::size_t* arp = a.row_ptr();
  const int* acols = a.cols();
  const std::uint64_t* avals = a.vals();
  const std::size_t* brp = b.row_ptr();
  const int* bcols = b.cols();
  const std::uint64_t* bvals = b.vals();
  std::vector<std::uint64_t> acc(static_cast<std::size_t>(n), init);
  std::vector<int> touched;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (int i = i0; i < i1; ++i) {
    touched.clear();
    for (std::size_t e = arp[i]; e < arp[i + 1]; ++e) {
      const std::uint64_t aik = avals[e];
      const int k = acols[e];
      for (std::size_t f = brp[k]; f < brp[k + 1]; ++f) {
        const int j = bcols[f];
        if (!seen[static_cast<std::size_t>(j)]) {
          seen[static_cast<std::size_t>(j)] = 1;
          touched.push_back(j);
        }
        std::uint64_t& slot = acc[static_cast<std::size_t>(j)];
        slot = accumulate(slot, aik, bvals[f]);
      }
    }
    std::sort(touched.begin(), touched.end());
    std::size_t kept = 0;
    for (int j : touched) {
      const std::uint64_t v = acc[static_cast<std::size_t>(j)];
      if (keep(v)) {
        out->cols.push_back(j);
        out->vals.push_back(v);
        ++kept;
      }
      acc[static_cast<std::size_t>(j)] = init;
      seen[static_cast<std::size_t>(j)] = 0;
    }
    out->row_nnz.push_back(kept);
  }
}

}  // namespace

Csr61 csr_multiply_csr_kernel(const Csr61& a, const Csr61& b, int threads) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  CC_REQUIRE(a.ring() == b.ring(), "mixed-ring sparse product");
  CC_REQUIRE(threads >= 1, "kernel thread count must be >= 1");
  const int n = a.n();
  if (threads > n) threads = n;
  if (threads < 1) threads = 1;  // n == 0
  std::vector<CsrSlice> slices(static_cast<std::size_t>(threads > 0 ? threads : 1));
  auto run_slice = [&](int t, int i0, int i1) {
    CsrSlice* out = &slices[static_cast<std::size_t>(t)];
    if (a.ring() == SparseRing::kM61) {
      gustavson_rows(
          a, b, i0, i1, /*init=*/0,
          [](std::uint64_t acc, std::uint64_t x, std::uint64_t y) {
            // One reduction per elementary product (schoolbook discipline;
            // sparse rows are short, so laziness buys little here).
            return Mersenne61::add(acc, Mersenne61::reduce128(
                                            static_cast<__uint128_t>(x) * y));
          },
          [](std::uint64_t v) { return v != 0; }, out);
    } else {
      gustavson_rows(
          a, b, i0, i1, /*init=*/kTropicalInf,
          [](std::uint64_t acc, std::uint64_t x, std::uint64_t y) {
            const std::uint64_t cand = tropical_add(x, y);
            return cand < acc ? cand : acc;
          },
          [](std::uint64_t v) { return v < kTropicalInf; }, out);
    }
  };
  if (threads <= 1) {
    run_slice(0, 0, n);
  } else {
    shared_thread_pool(threads)->run_indexed(threads, [&](int t) {
      const int i0 = static_cast<int>(static_cast<std::int64_t>(n) * t / threads);
      const int i1 =
          static_cast<int>(static_cast<std::int64_t>(n) * (t + 1) / threads);
      if (i0 < i1) run_slice(t, i0, i1);
    });
  }
  std::vector<std::size_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> cols;
  std::vector<std::uint64_t> vals;
  std::size_t row = 0;
  for (const CsrSlice& s : slices) {
    for (std::size_t r = 0; r < s.row_nnz.size(); ++r) {
      row_ptr[row + 1] = row_ptr[row] + s.row_nnz[r];
      ++row;
    }
    cols.insert(cols.end(), s.cols.begin(), s.cols.end());
    vals.insert(vals.end(), s.vals.begin(), s.vals.end());
  }
  CC_CHECK(row == static_cast<std::size_t>(n), "sparse product lost rows");
  return Csr61(n, a.ring(), std::move(row_ptr), std::move(cols), std::move(vals));
}

Csr61 csr_multiply_csr_dispatch(const Csr61& a, const Csr61& b) {
  return csr_multiply_csr_kernel(a, b, dispatch_threads(a.n()));
}

}  // namespace cclique
