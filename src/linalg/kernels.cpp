#include "linalg/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "comm/engine.h"
#include "util/field.h"

namespace cclique {

const char* kernel_name(KernelKind k) {
  return k == KernelKind::kAvx2 ? "avx2" : "scalar";
}

bool cpu_has_avx2() {
#if defined(CCLIQUE_AVX2_TU) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

KernelKind active_kernel() {
  const char* env = std::getenv("CC_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return cpu_has_avx2() ? KernelKind::kAvx2 : KernelKind::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) {
    if (cpu_has_avx2()) return KernelKind::kAvx2;
    // Graceful fallback, once per process: the request is a preference, not
    // a capability the host can be assumed to have.
    static const bool warned = [] {
      std::fprintf(stderr,
                   "cclique: CC_KERNEL=avx2 requested but this CPU/build has "
                   "no AVX2 — falling back to the scalar kernels\n");
      return true;
    }();
    (void)warned;
    return KernelKind::kScalar;
  }
  // "scalar" and anything unrecognized: fail safe to the portable kernels
  // (the CC_THREADS fallback convention).
  return KernelKind::kScalar;
}

// ------------------------------------------------------------ scalar kernels

void m61_mm_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                        std::uint64_t* c, int n, int i0, int i1) {
  // Panel depth: products of reduced elements are < 2^122, so 32 of them
  // sum to < 2^127 — no 128-bit overflow before the per-panel fold.
  constexpr int kPanel = 32;
  std::vector<__uint128_t> acc(static_cast<std::size_t>(n));
  for (int i = i0; i < i1; ++i) {
    const std::uint64_t* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (auto& e : acc) e = 0;
    for (int k0 = 0; k0 < n; k0 += kPanel) {
      const int k1 = k0 + kPanel < n ? k0 + kPanel : n;
      for (int k = k0; k < k1; ++k) {
        const std::uint64_t aik = arow[k];
        if (aik == 0) continue;  // adjacency inputs are sparse in practice
        const std::uint64_t* brow = b + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        for (int j = 0; j < n; ++j) {
          acc[static_cast<std::size_t>(j)] +=
              static_cast<__uint128_t>(aik) * brow[j];
        }
      }
      // Fold the panel so the next one starts from a < 2^61 residue.
      for (int j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] =
            Mersenne61::reduce128(acc[static_cast<std::size_t>(j)]);
      }
    }
    std::uint64_t* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) {
      crow[j] = static_cast<std::uint64_t>(acc[static_cast<std::size_t>(j)]);
    }
  }
}

void tropical_mm_rows_scalar(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* c, int n, int i0, int i1) {
  for (int i = i0; i < i1; ++i) {
    const std::uint64_t* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    std::uint64_t* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) crow[j] = kTropicalInf;
    for (int k = 0; k < n; ++k) {
      const std::uint64_t aik = arow[k];
      if (aik == kTropicalInf) continue;  // whole lane is a no-op
      const std::uint64_t* brow = b + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
      for (int j = 0; j < n; ++j) {
        // aik + brow[j] < 2^62 (both <= kInf), so the raw sum never wraps;
        // a sum >= kInf can never undercut an accumulator <= kInf, which
        // makes the plain comparison exactly the saturating min.
        const std::uint64_t cand = aik + brow[j];
        if (cand < crow[j]) crow[j] = cand;
      }
    }
  }
}

// --------------------------------------------------------- threaded dispatch

namespace {

using RowRangeFn = void (*)(const std::uint64_t*, const std::uint64_t*,
                            std::uint64_t*, int, int, int);

RowRangeFn m61_rows_fn(KernelKind kind) {
  if (kind == KernelKind::kAvx2) {
#ifdef CCLIQUE_AVX2_TU
    CC_REQUIRE(cpu_has_avx2(), "AVX2 kernel requested on a non-AVX2 CPU");
    return &m61_mm_rows_avx2;
#else
    throw PreconditionError("AVX2 kernel requested but this build has no AVX2 TU");
#endif
  }
  return &m61_mm_rows_scalar;
}

RowRangeFn tropical_rows_fn(KernelKind kind) {
  if (kind == KernelKind::kAvx2) {
#ifdef CCLIQUE_AVX2_TU
    CC_REQUIRE(cpu_has_avx2(), "AVX2 kernel requested on a non-AVX2 CPU");
    return &tropical_mm_rows_avx2;
#else
    throw PreconditionError("AVX2 kernel requested but this build has no AVX2 TU");
#endif
  }
  return &tropical_mm_rows_scalar;
}

/// Static row partition: worker t computes rows [n*t/T, n*(t+1)/T) — a pure
/// function of (n, T), every row computed start-to-finish by one worker.
void run_rows(RowRangeFn fn, const std::uint64_t* a, const std::uint64_t* b,
              std::uint64_t* c, int n, int threads) {
  CC_REQUIRE(threads >= 1, "kernel thread count must be >= 1");
  if (threads > n) threads = n;
  if (threads <= 1) {
    fn(a, b, c, n, 0, n);
    return;
  }
  shared_thread_pool(threads)->run_indexed(threads, [&](int t) {
    const int i0 = static_cast<int>(static_cast<std::int64_t>(n) * t / threads);
    const int i1 =
        static_cast<int>(static_cast<std::int64_t>(n) * (t + 1) / threads);
    if (i0 < i1) fn(a, b, c, n, i0, i1);
  });
}

/// Below this dimension the pool handoff costs more than the product; the
/// distributed protocols' per-player blocks (bs = ceil(n/m) rows) live here.
constexpr int kThreadMinDim = 128;

int dispatch_threads(int n) {
  return n < kThreadMinDim ? 1 : cc_thread_count();
}

}  // namespace

Mat61 m61_multiply_kernel(const Mat61& a, const Mat61& b, KernelKind kind,
                          int threads) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  Mat61 out(a.n());
  if (a.n() == 0) return out;
  run_rows(m61_rows_fn(kind), a.data(), b.data(), out.mutable_data(), a.n(),
           threads);
  return out;
}

TropicalMat tropical_multiply_kernel(const TropicalMat& a, const TropicalMat& b,
                                     KernelKind kind, int threads) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  TropicalMat out(a.n());
  if (a.n() == 0) return out;
  run_rows(tropical_rows_fn(kind), a.data(), b.data(), out.mutable_data(),
           a.n(), threads);
  return out;
}

Mat61 m61_multiply_dispatch(const Mat61& a, const Mat61& b) {
  return m61_multiply_kernel(a, b, active_kernel(), dispatch_threads(a.n()));
}

TropicalMat tropical_multiply_dispatch(const TropicalMat& a, const TropicalMat& b) {
  return tropical_multiply_kernel(a, b, active_kernel(), dispatch_threads(a.n()));
}

}  // namespace cclique
