#include "linalg/sparse.h"

#include <algorithm>

#include "util/field.h"

namespace cclique {

namespace {

/// A valid explicit entry of `ring`: inside the carrier and distinct from
/// the implicit zero (which CSR must never store).
bool valid_explicit(SparseRing ring, std::uint64_t v) {
  if (ring == SparseRing::kTropical) return v < kTropicalInf;
  return v >= 1 && v < Mersenne61::kP;
}

}  // namespace

Csr61::Csr61(int n, SparseRing ring) : n_(n), ring_(ring) {
  CC_REQUIRE(n >= 0, "negative dimension");
  row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
}

Csr61::Csr61(int n, SparseRing ring, std::vector<std::size_t> row_ptr,
             std::vector<int> cols, std::vector<std::uint64_t> vals)
    : n_(n),
      ring_(ring),
      row_ptr_(std::move(row_ptr)),
      cols_(std::move(cols)),
      vals_(std::move(vals)) {
  CC_REQUIRE(n >= 0, "negative dimension");
  CC_REQUIRE(row_ptr_.size() == static_cast<std::size_t>(n) + 1,
             "row_ptr must have n+1 entries");
  CC_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == cols_.size(),
             "row_ptr must span [0, nnz]");
  CC_REQUIRE(cols_.size() == vals_.size(), "one value per column index");
  for (int i = 0; i < n_; ++i) {
    const std::size_t lo = row_ptr_[static_cast<std::size_t>(i)];
    const std::size_t hi = row_ptr_[static_cast<std::size_t>(i) + 1];
    CC_REQUIRE(lo <= hi, "row_ptr must be monotone");
    for (std::size_t e = lo; e < hi; ++e) {
      CC_REQUIRE(cols_[e] >= 0 && cols_[e] < n_, "column out of range");
      CC_REQUIRE(e == lo || cols_[e - 1] < cols_[e],
                 "columns must be strictly increasing within a row");
      CC_REQUIRE(valid_explicit(ring_, vals_[e]),
                 "explicit entry outside the carrier or equal to the "
                 "implicit zero");
    }
  }
}

std::uint64_t Csr61::get(int i, int j) const {
  CC_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  oblivious::source_touch(CC_OBLIVIOUS_SITE("Csr61::get"));
  const auto lo = cols_.begin() + static_cast<std::ptrdiff_t>(
                                      row_ptr_[static_cast<std::size_t>(i)]);
  const auto hi = cols_.begin() + static_cast<std::ptrdiff_t>(
                                      row_ptr_[static_cast<std::size_t>(i) + 1]);
  const auto it = std::lower_bound(lo, hi, j);
  if (it == hi || *it != j) return implicit_zero();
  return vals_[static_cast<std::size_t>(it - cols_.begin())];
}

namespace {

/// Shared dense-scan builder: keeps every entry != implicit zero.
Csr61 csr_from_row_major(int n, SparseRing ring, const std::uint64_t* data) {
  std::vector<std::size_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> cols;
  std::vector<std::uint64_t> vals;
  const std::uint64_t zero = sparse_implicit_zero(ring);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t* row = data + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) {
      if (row[j] == zero) continue;
      cols.push_back(j);
      vals.push_back(row[j]);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = cols.size();
  }
  return Csr61(n, ring, std::move(row_ptr), std::move(cols), std::move(vals));
}

}  // namespace

Csr61 Csr61::from_dense(const Mat61& m) {
  if (m.n() == 0) return Csr61(0, SparseRing::kM61);
  return csr_from_row_major(m.n(), SparseRing::kM61, m.data());
}

Csr61 Csr61::from_dense(const TropicalMat& m) {
  if (m.n() == 0) return Csr61(0, SparseRing::kTropical);
  return csr_from_row_major(m.n(), SparseRing::kTropical, m.data());
}

namespace {

/// Per-row (col, val) pairs -> canonical CSR. Sorts each row and rejects
/// duplicate columns (a duplicate edge or a self-loop listed twice).
Csr61 csr_from_row_lists(int n, SparseRing ring,
                         std::vector<std::vector<std::pair<int, std::uint64_t>>>& rows) {
  std::vector<std::size_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> cols;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < n; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    std::sort(row.begin(), row.end());
    for (std::size_t e = 0; e < row.size(); ++e) {
      CC_REQUIRE(e == 0 || row[e - 1].first != row[e].first,
                 "duplicate entry in a CSR row");
      cols.push_back(row[e].first);
      vals.push_back(row[e].second);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = cols.size();
  }
  return Csr61(n, ring, std::move(row_ptr), std::move(cols), std::move(vals));
}

}  // namespace

Csr61 Csr61::from_edges(int n, const std::vector<Edge>& edges) {
  CC_REQUIRE(n >= 0, "negative dimension");
  std::vector<std::vector<std::pair<int, std::uint64_t>>> rows(
      static_cast<std::size_t>(n));
  for (const Edge& e : edges) {
    CC_REQUIRE(e.u >= 0 && e.v < n && e.u != e.v, "edge outside [0, n) or a self-loop");
    rows[static_cast<std::size_t>(e.u)].push_back({e.v, 1});
    rows[static_cast<std::size_t>(e.v)].push_back({e.u, 1});
  }
  return csr_from_row_lists(n, SparseRing::kM61, rows);
}

Csr61 Csr61::from_weighted_edges(int n, const std::vector<Edge>& edges,
                                 const std::vector<std::uint32_t>& weights) {
  CC_REQUIRE(n >= 0, "negative dimension");
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  std::vector<std::vector<std::pair<int, std::uint64_t>>> rows(
      static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    // Diagonal zeros are genuine explicit entries of the one-step matrix
    // (distance 0 to oneself), not implicit zeros (+inf).
    rows[static_cast<std::size_t>(v)].push_back({v, 0});
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const Edge& ed = edges[e];
    CC_REQUIRE(ed.u >= 0 && ed.v < n && ed.u != ed.v,
               "edge outside [0, n) or a self-loop");
    rows[static_cast<std::size_t>(ed.u)].push_back({ed.v, weights[e]});
    rows[static_cast<std::size_t>(ed.v)].push_back({ed.u, weights[e]});
  }
  return csr_from_row_lists(n, SparseRing::kTropical, rows);
}

Mat61 Csr61::to_mat61() const {
  CC_REQUIRE(ring_ == SparseRing::kM61, "tropical CSR cannot become a Mat61");
  Mat61 out(n_);
  std::uint64_t* data = out.mutable_data();
  for (int i = 0; i < n_; ++i) {
    std::uint64_t* row = data + static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
    for (std::size_t e = row_ptr_[static_cast<std::size_t>(i)];
         e < row_ptr_[static_cast<std::size_t>(i) + 1]; ++e) {
      row[cols_[e]] = vals_[e];
    }
  }
  return out;
}

TropicalMat Csr61::to_tropical() const {
  CC_REQUIRE(ring_ == SparseRing::kTropical, "m61 CSR cannot become a TropicalMat");
  TropicalMat out(n_);
  std::uint64_t* data = out.mutable_data();
  for (int i = 0; i < n_; ++i) {
    std::uint64_t* row = data + static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
    for (std::size_t e = row_ptr_[static_cast<std::size_t>(i)];
         e < row_ptr_[static_cast<std::size_t>(i) + 1]; ++e) {
      row[cols_[e]] = vals_[e];
    }
  }
  return out;
}

}  // namespace cclique
