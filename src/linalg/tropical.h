// Dense matrices over the tropical (min, +) semiring on saturating 61-bit
// distances.
//
// The algebraic congested-clique line of work (Censor-Hillel et al.,
// PODC'15; Le Gall, DISC'16) extends the block-decomposed distributed
// matrix product from rings to *semirings*: the same [m]^3 schedule that
// multiplies over F_{2^61-1} computes the distance product
// C_ij = min_k (A_ik + B_kj), and ⌈log2(n-1)⌉ repeated squarings of the
// weight matrix solve exact all-pairs shortest paths. This module is the
// local numeric substrate of core/apsp, deliberately mirroring linalg/mat61
// so the two semirings share one wire format and one relay schedule:
//
//  * elements are 61-bit values; the all-ones word kInf = 2^61 - 1 encodes
//    +infinity ("no path"), so every element serializes in exactly 61 bits —
//    the same word width as a reduced F_{2^61-1} element, which is why
//    apsp_plan and algebraic_mm_plan produce identical per-product schedules;
//  * addition saturates at kInf (a sum that would reach or exceed kInf is
//    +infinity), so arithmetic never wraps and "unreachable" is absorbing;
//  * the semiring zero is +infinity and the semiring one is 0 — a
//    default-constructed TropicalMat(n) is the all-kInf (semiring-zero)
//    matrix, which is what lets the distributed protocol pad partial blocks
//    without changing any entry of the product.
//
// Exactness contract: with edge weights < 2^32 and n < 2^29 no finite
// shortest-path distance can reach kInf, so saturation only ever fires on
// genuinely unreachable pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "graph/graph.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {

/// +infinity of the tropical semiring: the all-ones 61-bit word. Finite
/// distances live in [0, kTropicalInf).
inline constexpr std::uint64_t kTropicalInf = (1ULL << 61) - 1;

/// a + b in the tropical semiring's additive carrier: saturates at
/// kTropicalInf (inf + anything = inf; finite sums that reach the infinity
/// encoding are treated as overflow and saturate). Requires a, b <=
/// kTropicalInf; never wraps (2 * kTropicalInf < 2^64).
inline std::uint64_t tropical_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s >= kTropicalInf ? kTropicalInf : s;
}

/// Dense n x n matrix over the (min, +) semiring, row-major, entries in
/// [0, kTropicalInf]. A freshly constructed matrix is all +infinity — the
/// semiring-zero matrix (the identity of entrywise min).
class TropicalMat {
 public:
  TropicalMat() = default;

  /// The n x n semiring-zero matrix: every entry kTropicalInf.
  explicit TropicalMat(int n);

  int n() const { return n_; }

  /// Entry (i, j); kTropicalInf means "no path". Preconditions: indices in
  /// range (CC_REQUIRE).
  std::uint64_t get(int i, int j) const {
    check(i, j);
    // Distances are payload: reading them while a length/round decision is
    // being made (an oblivious::SinkScope) is a model violation.
    oblivious::source_touch(CC_OBLIVIOUS_SITE("TropicalMat::get"));
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(j)];
  }

  /// Stores v. Preconditions: indices in range, v <= kTropicalInf.
  void set(int i, int j, std::uint64_t v) {
    check(i, j);
    CC_REQUIRE(v <= kTropicalInf, "tropical entry exceeds the 61-bit carrier");
    data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(j)] = v;
  }

  /// Entry (i, j) = min(entry, v) — the ⊕-accumulation primitive of the
  /// distributed aggregation phase (the tropical analogue of Mat61::add_at).
  void min_at(int i, int j, std::uint64_t v) {
    check(i, j);
    CC_REQUIRE(v <= kTropicalInf, "tropical entry exceeds the 61-bit carrier");
    std::uint64_t& e =
        data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
    if (v < e) e = v;
  }

  bool operator==(const TropicalMat& o) const { return n_ == o.n_ && data_ == o.data_; }
  bool operator!=(const TropicalMat& o) const { return !(*this == o); }

  /// The semiring identity: 0 on the diagonal, +infinity elsewhere
  /// (I ⊗ A = A ⊗ I = A under the distance product).
  static TropicalMat identity(int n);

  /// Uniformly random finite entries in [0, bound), each independently
  /// replaced by +infinity with probability inf_prob — the fixture shape the
  /// kernel tests sweep (inf-free, inf-heavy, and all-inf at inf_prob = 1).
  static TropicalMat random(int n, Rng& rng, std::uint64_t bound = kTropicalInf,
                            double inf_prob = 0.0);

  /// The one-step distance matrix of a weighted graph: 0 on the diagonal,
  /// weights[e] on the edge slots (both directions; indexed by g.edges()
  /// order, the same convention as core/mst), +infinity elsewhere.
  /// Preconditions: weights.size() == g.num_edges().
  static TropicalMat from_weighted_graph(const Graph& g,
                                         const std::vector<std::uint32_t>& weights);

  /// Contiguous row i (n elements).
  const std::uint64_t* row(int i) const {
    CC_REQUIRE(i >= 0 && i < n_, "row out of range");
    oblivious::source_touch(CC_OBLIVIOUS_SITE("TropicalMat::row"));
    return data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
  }

  /// Raw row-major storage (n*n words) — the view the linalg/kernels layer
  /// operates on. Writers must keep every entry <= kTropicalInf.
  const std::uint64_t* data() const {
    oblivious::source_touch(CC_OBLIVIOUS_SITE("TropicalMat::data"));
    return data_.data();
  }
  std::uint64_t* mutable_data() { return data_.data(); }

  /// Words of row-major storage backing this matrix (n*n) — the unit the
  /// serving layer's artifact cache (core/query_service) accounts its
  /// residency capacity in. Not a tainted read: the footprint is a function
  /// of the public dimension alone, never of entry values.
  std::size_t footprint_words() const { return data_.size(); }

 private:
  void check(int i, int j) const {
    CC_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  }
  int n_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Schoolbook distance product C_ij = min_k (A_ik + B_kj) with one explicit
/// saturating add + min per elementary step — the reference the blocked
/// kernel is tested against. O(n^3) time, cache-oblivious per-entry order.
TropicalMat tropical_multiply_schoolbook(const TropicalMat& a, const TropicalMat& b);

/// Cache-blocked distance product: i-k-j loop order streaming contiguous
/// rows of B into a row accumulator, mirroring m61_multiply_blocked. The
/// (min, +) fold needs no lazy-reduction panels (min is idempotent and a
/// saturated sum can never win against an accumulator that is <= kInf), so
/// the kernel's speedups are the stream order, the row accumulator, and
/// skipping +infinity A-entries outright (every lane of an unreachable
/// block row is a no-op — the common case for sparse one-step matrices).
/// This is the local kernel of core/apsp.
TropicalMat tropical_multiply_blocked(const TropicalMat& a, const TropicalMat& b);

}  // namespace cclique
