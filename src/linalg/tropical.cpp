#include "linalg/tropical.h"

#include "linalg/kernels.h"

namespace cclique {

TropicalMat::TropicalMat(int n) : n_(n) {
  CC_REQUIRE(n >= 0, "matrix size must be non-negative");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
               kTropicalInf);
}

TropicalMat TropicalMat::identity(int n) {
  TropicalMat m(n);
  for (int i = 0; i < n; ++i) m.set(i, i, 0);
  return m;
}

TropicalMat TropicalMat::random(int n, Rng& rng, std::uint64_t bound,
                                double inf_prob) {
  CC_REQUIRE(bound >= 1 && bound <= kTropicalInf, "bound outside the carrier");
  TropicalMat m(n);
  for (auto& e : m.data_) {
    e = rng.bernoulli(inf_prob) ? kTropicalInf : rng.uniform(bound);
  }
  return m;
}

TropicalMat TropicalMat::from_weighted_graph(
    const Graph& g, const std::vector<std::uint32_t>& weights) {
  // Edge weights are payload: tag the ingestion like the MST path does, so
  // a schedule computed inside an oblivious::SinkScope can never read them.
  oblivious::source_touch(CC_OBLIVIOUS_SITE("APSP edge-weight ingestion"));
  const std::vector<Edge> edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  TropicalMat m(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) m.set(v, v, 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::uint64_t w = weights[e];
    // Parallel representations of one undirected edge: keep the minimum
    // (edges() is duplicate-free, so this is just the symmetric store).
    m.min_at(edges[e].u, edges[e].v, w);
    m.min_at(edges[e].v, edges[e].u, w);
  }
  return m;
}

TropicalMat tropical_multiply_schoolbook(const TropicalMat& a, const TropicalMat& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  TropicalMat out(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint64_t best = kTropicalInf;
      for (int k = 0; k < n; ++k) {
        const std::uint64_t cand = tropical_add(a.get(i, k), b.get(k, j));
        if (cand < best) best = cand;
      }
      out.set(i, j, best);
    }
  }
  return out;
}

TropicalMat tropical_multiply_blocked(const TropicalMat& a, const TropicalMat& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  TropicalMat out(a.n());
  if (a.n() == 0) return out;
  // The row-streaming logic lives in linalg/kernels (tropical_mm_rows_scalar)
  // so the dispatch layer's threaded/vectorized variants share one
  // definition of "the scalar kernel".
  tropical_mm_rows_scalar(a.data(), b.data(), out.mutable_data(), a.n(), 0, a.n());
  return out;
}

}  // namespace cclique
