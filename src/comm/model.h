// Shared vocabulary for the communication engines.
//
// A protocol in this library is ordinary C++ driving an engine round by
// round: in each round the engine pulls outgoing messages from per-player
// callbacks, *validates them against the model's bandwidth rules*, accounts
// for every bit, and delivers. The engine is the arbiter of what a round
// and a bit mean, so measured round counts in benches are trustworthy.
//
// Locality discipline: a player's send callback must compute only from that
// player's local state and previously delivered messages. The protocol
// implementations in src/core and src/lowerbound follow it by construction
// (per-player state structs), and the rule is mechanically enforced by the
// runtime locality guard (analysis/locality_guard.h): every engine opens a
// per-player scope around each callback, player-local state registers via
// locality::PerPlayer, and a cross-player access throws ModelViolation in
// CCLIQUE_LOCALITY=ON builds (zero cost otherwise). tools/check_locality.py
// lints the same rules statically in CI.
// Because send callbacks are local by contract, the transport core
// (comm/engine.h) may run them concurrently (CC_THREADS); a callback that
// touches shared mutable state breaks the discipline *and* the scheduler.
// Receive callbacks are always invoked serially in player order.
//
// Obliviousness discipline: round counts and message lengths must be
// functions of (n, element width, bandwidth) alone — payload bits are
// serialized *before* a round, so callbacks and plan functions never read
// payload storage. The rule is mechanically enforced by the obliviousness
// guard (analysis/oblivious_guard.h, CCLIQUE_OBLIVIOUS=ON builds) and by
// tools/cc_oblivious.py statically in CI; see DESIGN.md §2.7 for the
// sources/sinks table and the declared-dependence escape hatch.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.h"

namespace cclique {

/// Message payload; its exact bit length is what gets charged.
using Message = BitVec;

/// Cumulative communication accounting for one protocol execution.
///
/// Determinism contract: every field is a sum or max over per-(player,
/// message) charges, each computed from the message alone, and the
/// transport core commits charges in player order — so stats are
/// bit-identical at every CC_THREADS setting.
struct CommStats {
  /// Synchronous rounds elapsed.
  int rounds = 0;
  /// Total bits carried by all messages (across all edges and rounds).
  std::uint64_t total_bits = 0;
  /// Total message count (nonempty messages).
  std::uint64_t total_messages = 0;
  /// Bits crossing the registered 2-party cut (see set_cut on the engines).
  std::uint64_t cut_bits = 0;
  /// Maximum bits observed on any single directed edge in a single round.
  std::uint64_t max_edge_bits_in_round = 0;
  /// Bits sent by each player, summed over all rounds (unicast: over its
  /// n-1 out-links; broadcast: its blackboard writes; CONGEST: its incident
  /// edges). Sized n by the engine; sums to total_bits.
  std::vector<std::uint64_t> per_player_sent_bits;
  /// Bits received by each player, summed over all rounds. For broadcast
  /// this counts every other player's writes (each written bit is read by
  /// all n-1 others), so the vector sums to (n-1) * total_bits there.
  std::vector<std::uint64_t> per_player_recv_bits;

  bool operator==(const CommStats& o) const {
    return rounds == o.rounds && total_bits == o.total_bits &&
           total_messages == o.total_messages && cut_bits == o.cut_bits &&
           max_edge_bits_in_round == o.max_edge_bits_in_round &&
           per_player_sent_bits == o.per_player_sent_bits &&
           per_player_recv_bits == o.per_player_recv_bits;
  }
  bool operator!=(const CommStats& o) const { return !(*this == o); }
};

}  // namespace cclique
