// Shared vocabulary for the communication engines.
//
// A protocol in this library is ordinary C++ driving an engine round by
// round: in each round the engine pulls outgoing messages from per-player
// callbacks, *validates them against the model's bandwidth rules*, accounts
// for every bit, and delivers. The engine is the arbiter of what a round
// and a bit mean, so measured round counts in benches are trustworthy.
//
// Locality discipline: a player's send callback must compute only from that
// player's local state and previously delivered messages. C++ cannot enforce
// this in-process; the protocol implementations in src/core and
// src/lowerbound follow it by construction (per-player state structs), and
// the tests include adversarial checks on the engine's accounting itself.
#pragma once

#include <cstdint>

#include "util/bitvec.h"

namespace cclique {

/// Message payload; its exact bit length is what gets charged.
using Message = BitVec;

/// Cumulative communication accounting for one protocol execution.
struct CommStats {
  /// Synchronous rounds elapsed.
  int rounds = 0;
  /// Total bits carried by all messages (across all edges and rounds).
  std::uint64_t total_bits = 0;
  /// Total message count (nonempty messages).
  std::uint64_t total_messages = 0;
  /// Bits crossing the registered 2-party cut (see set_cut on the engines).
  std::uint64_t cut_bits = 0;
  /// Maximum bits observed on any single directed edge in a single round.
  std::uint64_t max_edge_bits_in_round = 0;
};

}  // namespace cclique
