#include "comm/engine.h"

#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace cclique {

int cc_thread_count() {
  const char* env = std::getenv("CC_THREADS");
  if (env == nullptr || *env == '\0') {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 1024) {
    return 1;  // unparseable or out of range: fail safe to serial
  }
  return static_cast<int>(v);
}

// ---------------------------------------------------------------- ThreadPool

struct ThreadPool::Shared {
  /// Serializes run_indexed callers (a pool is shared between engines).
  std::mutex job_mutex;
  /// Guards every field below.
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable job_done;
  const std::function<void(int)>* fn = nullptr;
  int count = 0;
  int next = 0;     ///< next unclaimed index of the current job
  int pending = 0;  ///< indices not yet completed
  std::uint64_t generation = 0;
  bool stop = false;
  // First (lowest-index) exception observed this job.
  int error_index = -1;
  std::exception_ptr error;
  std::vector<std::thread> workers;

  // Claims and runs indices of job `gen` until exhausted. Caller and
  // workers share this. Tickets are claimed under the mutex with a
  // generation check, so a straggler that loops once more after the job's
  // last index completed can never touch the *next* job's state (the
  // caller only resets it, under the same mutex, after pending hit 0).
  void drain(std::uint64_t gen) {
    for (;;) {
      int i;
      const std::function<void(int)>* f;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (generation != gen || next >= count) return;
        i = next++;
        f = fn;
      }
      std::exception_ptr err;
      try {
        (*f)(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (err && (error_index < 0 || i < error_index)) {
        error_index = i;
        error = err;
      }
      if (--pending == 0) job_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads) : threads_(threads), shared_(new Shared) {
  CC_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  Shared* s = shared_.get();
  for (int t = 1; t < threads; ++t) {
    s->workers.emplace_back([s] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(s->mutex);
          s->work_ready.wait(lock, [&] { return s->stop || s->generation != seen; });
          if (s->stop) return;
          seen = s->generation;
        }
        s->drain(seen);
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->stop = true;
  }
  shared_->work_ready.notify_all();
  for (std::thread& w : shared_->workers) w.join();
}

void ThreadPool::run_indexed(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  Shared* s = shared_.get();
  std::lock_guard<std::mutex> job(s->job_mutex);
  if (s->workers.empty()) {
    // Serial mode: same contract (run everything, lowest-index exception).
    int error_index = -1;
    std::exception_ptr error;
    for (int i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (error_index < 0) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->fn = &fn;
    s->count = count;
    s->next = 0;
    s->pending = count;
    s->error_index = -1;
    s->error = nullptr;
    gen = ++s->generation;
  }
  s->work_ready.notify_all();
  s->drain(gen);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(s->mutex);
    s->job_done.wait(lock, [&] { return s->pending == 0; });
    error = s->error;
    s->fn = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

std::shared_ptr<ThreadPool> shared_thread_pool(int threads) {
  static std::mutex cache_mutex;
  static std::map<int, std::shared_ptr<ThreadPool>> cache;
  std::lock_guard<std::mutex> lock(cache_mutex);
  auto it = cache.find(threads);
  if (it == cache.end()) {
    it = cache.emplace(threads, std::make_shared<ThreadPool>(threads)).first;
  }
  return it->second;
}

// ---------------------------------------------------------------- EngineCore

EngineCore::EngineCore(int n, int bandwidth) : n_(n), bandwidth_(bandwidth) {
  CC_REQUIRE(n >= 1, "need at least one player");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be at least 1 bit");
  charges_.resize(static_cast<std::size_t>(n));
  reset_stats();
}

void EngineCore::set_cut(std::vector<int> side) {
  CC_REQUIRE(static_cast<int>(side.size()) == n_, "cut assignment size mismatch");
  for (int s : side) CC_REQUIRE(s == 0 || s == 1, "cut side must be 0 or 1");
  cut_side_ = std::move(side);
}

void EngineCore::reset_stats() {
  stats_ = CommStats{};
  stats_.per_player_sent_bits.assign(static_cast<std::size_t>(n_), 0);
  stats_.per_player_recv_bits.assign(static_cast<std::size_t>(n_), 0);
}

void EngineCore::send_phase(const std::function<void(int, PlayerCharge&)>& fn) {
  if (pool_ == nullptr) pool_ = shared_thread_pool(cc_thread_count());
  for (PlayerCharge& c : charges_) c.reset();
  pool_->run_indexed(n_, [&](int player) {
    fn(player, charges_[static_cast<std::size_t>(player)]);
  });
  // No exception: commit charges in player order.
  for (int i = 0; i < n_; ++i) {
    const PlayerCharge& c = charges_[static_cast<std::size_t>(i)];
    stats_.total_bits += c.bits;
    stats_.total_messages += c.messages;
    stats_.cut_bits += c.cut_bits;
    if (c.max_edge_bits > stats_.max_edge_bits_in_round) {
      stats_.max_edge_bits_in_round = c.max_edge_bits;
    }
    stats_.per_player_sent_bits[static_cast<std::size_t>(i)] += c.bits;
  }
  ++stats_.rounds;
}

}  // namespace cclique
