// Two-party communication complexity substrate.
//
// The Section 3.2 lower bounds are reductions from 2-party set disjointness:
// DISJ_N(X, Y) = 1 iff X ∩ Y = ∅ for X, Y ⊆ [N], which requires Ω(N) bits of
// communication (randomized, constant error). This module provides the
// instance type, generators, and a metered transcript so reductions can
// report the exact number of bits the simulated players exchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "comm/engine.h"
#include "comm/model.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {

/// A set-disjointness instance over the universe [0, N).
struct DisjointnessInstance {
  std::vector<bool> x;  ///< Alice's set (characteristic vector)
  std::vector<bool> y;  ///< Bob's set

  std::size_t universe_size() const { return x.size(); }

  /// True iff X and Y share no element.
  bool disjoint() const {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] && y[i]) return false;
    }
    return true;
  }
};

/// Uniformly random instance: each element joins each set with probability
/// `density` independently.
DisjointnessInstance random_disjointness(std::size_t n, double density, Rng& rng);

/// Random instance conditioned on being disjoint (elements assigned to
/// Alice / Bob / neither).
DisjointnessInstance random_disjoint_instance(std::size_t n, double density, Rng& rng);

/// Random instance with exactly one planted intersection element.
DisjointnessInstance random_intersecting_instance(std::size_t n, double density,
                                                  Rng& rng);

/// Metered 2-party channel: both players append messages; the meter records
/// who sent how much. Reductions built on top of simulated clique protocols
/// report their cost through this object. A thin wrapper over the transport
/// core's PartyMeter (comm/engine.h).
class TwoPartyChannel {
 public:
  /// Sends commit the message's length to the metered transcript, so the
  /// charges run under a sink scope (see NofBlackboard::write for how the
  /// meter substrates relate to the round engines' callback sinks).
  void send_from_alice(const Message& m) {
    locality::check_actor(0, "two-party send from Alice");
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("two-party send from Alice"));
    meter_.charge_message(0, m.size_bits());
  }
  void send_from_bob(const Message& m) {
    locality::check_actor(1, "two-party send from Bob");
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("two-party send from Bob"));
    meter_.charge_message(1, m.size_bits());
  }
  /// Convenience for raw accounting when a reduction computes cost in bulk.
  void charge_alice(std::uint64_t bits) { meter_.charge(0, bits); }
  void charge_bob(std::uint64_t bits) { meter_.charge(1, bits); }

  std::uint64_t alice_bits() const { return meter_.bits_by(0); }
  std::uint64_t bob_bits() const { return meter_.bits_by(1); }
  std::uint64_t total_bits() const { return meter_.total_bits(); }
  std::uint64_t messages() const { return meter_.messages(); }

 private:
  PartyMeter meter_{2};
};

/// The trivial deterministic upper bound: Alice ships her whole
/// characteristic vector, Bob answers with the verdict bit. Returns the
/// verdict; the channel records N + 1 bits. Used to sanity-check the meter
/// and as a baseline in benches.
bool trivial_disjointness_protocol(const DisjointnessInstance& inst,
                                   TwoPartyChannel* channel);

}  // namespace cclique
