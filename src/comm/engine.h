// The metered transport core shared by every communication engine.
//
// All four engines (CLIQUE-UCAST, CLIQUE-BCAST, CONGEST, and the two-party /
// NOF meters) used to re-implement the same loop: pull per-player messages,
// validate them against the model's bandwidth rule, account every bit, and
// deliver. EngineCore owns that loop once — bandwidth validation, CommStats
// accounting (including the per-player vectors), cut tracking, a per-round
// payload arena, and a deterministic parallel scheduler for the send phase.
//
// Determinism contract (DESIGN.md §2.1): send callbacks are independent by
// the locality discipline (comm/model.h), so send_phase may run them on a
// thread pool sized by CC_THREADS (default: hardware concurrency; 1 =
// serial, the pre-parallel behavior). Each player's charges accumulate into
// that player's private PlayerCharge slot and are committed to the engine's
// CommStats *serially in player order* after the phase, so every CommStats
// field is bit-identical at any thread count. If callbacks throw, every
// player still runs (no early cancel — which callbacks executed must not
// depend on scheduling), nothing is committed, and the exception of the
// lowest-numbered player is rethrown. Delivery (receive callbacks) is
// always serial in player order.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "comm/model.h"
#include "util/arena.h"
#include "util/check.h"

namespace cclique {

/// Worker count for the engines' send phase: CC_THREADS when set to a
/// positive integer, otherwise the hardware concurrency (at least 1).
/// Unparseable values fall back to 1 (serial).
int cc_thread_count();

/// A pool of persistent worker threads executing indexed tasks. With
/// `threads` == 1 no workers are spawned and run_indexed degenerates to the
/// serial loop. The calling thread always participates. One job runs at a
/// time; concurrent run_indexed callers serialize on an internal mutex, so
/// a pool may be shared between engines.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), possibly concurrently; blocks
  /// until all indices completed. Every index runs even if some throw; the
  /// exception raised by the lowest index is rethrown afterwards.
  void run_indexed(int count, const std::function<void(int)>& fn);

 private:
  struct Shared;
  int threads_;
  std::unique_ptr<Shared> shared_;
};

/// Process-wide pool cache keyed by thread count: engines are created by
/// the hundreds in bench sweeps, and spawning (and joining) a fresh set of
/// workers per engine would dominate exactly the wall-clock the pool is
/// meant to save. Pools persist for the process lifetime. The local-kernel
/// dispatch layer (linalg/kernels) threads its row partitions over this
/// same cache, so a CC_THREADS run never holds more than one worker set
/// per distinct thread count — engine phases and local kernels run at
/// disjoint times, never concurrently on one pool.
std::shared_ptr<ThreadPool> shared_thread_pool(int threads);

/// Per-player accounting scratch for one send phase. Filled by the owning
/// player's task (possibly on a worker thread), committed serially.
struct PlayerCharge {
  std::uint64_t bits = 0;
  std::uint64_t messages = 0;
  std::uint64_t cut_bits = 0;
  std::uint64_t max_edge_bits = 0;

  void reset() { *this = PlayerCharge{}; }
};

/// The shared metered-transport state machine. Engines compose one of these
/// and translate their model's round shape onto it.
class EngineCore {
 public:
  /// n >= 1 players, per-message bandwidth cap `bandwidth` >= 1 bits.
  EngineCore(int n, int bandwidth);

  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  int n() const { return n_; }
  int bandwidth() const { return bandwidth_; }

  /// Registers a 2-party partition for cut accounting. Preconditions:
  /// side.size() == n and side[i] in {0, 1} (CC_REQUIRE). The registration
  /// survives reset_stats(); only the accumulated cut_bits reset.
  void set_cut(std::vector<int> side);
  bool has_cut() const { return !cut_side_.empty(); }

  const CommStats& stats() const { return stats_; }
  void reset_stats();

  /// Per-round payload scratch. The engines re-borrow their outbox slots
  /// from it; protocols must not hold arena-backed messages across rounds.
  Arena& arena() { return arena_; }

  /// Borrows `count` empty message slots from the arena, each with capacity
  /// bandwidth() bits — the outbox geometry of every round_fill path. The
  /// storage lives as long as the engine (the geometry is fixed), so this
  /// is called once per engine.
  std::vector<Message> borrow_slots(std::size_t count) {
    const std::size_t words_per_msg =
        (static_cast<std::size_t>(bandwidth_) + 63) / 64;
    std::uint64_t* base = arena_.alloc_words(count * words_per_msg);
    std::vector<Message> slots;
    slots.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      slots.push_back(Message::borrow(base + s * words_per_msg,
                                      static_cast<std::size_t>(bandwidth_)));
    }
    return slots;
  }

  /// Validates one `bits`-bit message from `sender` to `receiver` against
  /// the bandwidth cap and accumulates it into `c` (and the sender's cut
  /// charge when the registered cut separates the endpoints). `what` names
  /// the violated rule in the ModelViolation message.
  void charge_message(int sender, int receiver, std::size_t bits,
                      PlayerCharge& c, const char* what) const {
    CC_MODEL(bits <= static_cast<std::size_t>(bandwidth_), what);
    c.bits += bits;
    if (bits != 0) ++c.messages;
    if (bits > c.max_edge_bits) c.max_edge_bits = bits;
    if (!cut_side_.empty() &&
        cut_side_[static_cast<std::size_t>(sender)] !=
            cut_side_[static_cast<std::size_t>(receiver)]) {
      c.cut_bits += bits;
    }
  }

  /// Broadcast variant: every written bit crosses the cut once (a 2-party
  /// simulation ships each blackboard bit across exactly once).
  void charge_broadcast(int /*sender*/, std::size_t bits, PlayerCharge& c,
                        const char* what) const {
    CC_MODEL(bits <= static_cast<std::size_t>(bandwidth_), what);
    c.bits += bits;
    if (bits != 0) ++c.messages;
    if (bits > c.max_edge_bits) c.max_edge_bits = bits;
    if (!cut_side_.empty()) c.cut_bits += bits;
  }

  /// The send phase of one round: runs fn(player, charge) for every player
  /// (parallel when CC_THREADS > 1), then — iff no callback threw — commits
  /// all charges in player order and increments stats().rounds. On any
  /// exception the round charges nothing and the lowest-player exception
  /// propagates (see the determinism contract above).
  void send_phase(const std::function<void(int, PlayerCharge&)>& fn);

  /// Records bits landing at `receiver`. Must only be called from the
  /// serial delivery loop (player order) — it writes stats directly, with
  /// no per-player scratch, so it is not safe from send-phase workers.
  void charge_receive(int receiver, std::uint64_t bits) {
    stats_.per_player_recv_bits[static_cast<std::size_t>(receiver)] += bits;
  }

 private:
  int n_;
  int bandwidth_;
  std::vector<int> cut_side_;
  CommStats stats_;
  Arena arena_;
  std::vector<PlayerCharge> charges_;
  std::shared_ptr<ThreadPool> pool_;  ///< bound on first send_phase
};

/// Shared meter for the k-party reduction substrates (two-party channel,
/// NOF blackboard): per-party bit counts plus a message tally. These models
/// charge transcripts, not rounds, so they meter directly instead of going
/// through send_phase.
class PartyMeter {
 public:
  explicit PartyMeter(int parties)
      : bits_(static_cast<std::size_t>(parties), 0) {
    CC_REQUIRE(parties >= 1, "need at least one party");
  }

  /// Raw bit charge (bulk accounting; no message tally).
  void charge(int who, std::uint64_t bits) {
    CC_REQUIRE(who >= 0 && who < static_cast<int>(bits_.size()),
               "party id out of range");
    bits_[static_cast<std::size_t>(who)] += bits;
    total_ += bits;
  }

  /// Charges one discrete message of `bits` bits.
  void charge_message(int who, std::uint64_t bits) {
    charge(who, bits);
    ++messages_;
  }

  std::uint64_t bits_by(int who) const {
    CC_REQUIRE(who >= 0 && who < static_cast<int>(bits_.size()),
               "party id out of range");
    return bits_[static_cast<std::size_t>(who)];
  }
  std::uint64_t total_bits() const { return total_; }
  std::uint64_t messages() const { return messages_; }

 private:
  std::vector<std::uint64_t> bits_;
  std::uint64_t total_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace cclique
