// Three-party number-on-forehead (NOF) substrate.
//
// In the 3-NOF model each player sees the other two players' inputs but not
// its own ("on its forehead"). Section 3.6 reduces 3-NOF set disjointness to
// triangle detection in CLIQUE-BCAST: a round lower bound for the latter
// would follow from a strong enough communication lower bound for the
// former. We provide the instance type and a metered blackboard; the actual
// reduction (Theorem 24) lives in src/lowerbound/nof_reduction.*.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "comm/engine.h"
#include "comm/model.h"
#include "util/check.h"
#include "util/rng.h"

namespace cclique {

/// 3-party set-disjointness instance over universe [0, m): is there an
/// element in X_A ∩ X_B ∩ X_C?
struct NofDisjointnessInstance {
  std::vector<bool> xa, xb, xc;

  std::size_t universe_size() const { return xa.size(); }

  bool intersecting() const {
    for (std::size_t i = 0; i < xa.size(); ++i) {
      if (xa[i] && xb[i] && xc[i]) return true;
    }
    return false;
  }
};

/// Each element joins each of the three sets independently w.p. `density`.
NofDisjointnessInstance random_nof_instance(std::size_t m, double density, Rng& rng);

/// Random instance conditioned on empty triple intersection.
NofDisjointnessInstance random_nof_disjoint(std::size_t m, double density, Rng& rng);

/// Random instance with exactly one planted triple-intersection element.
NofDisjointnessInstance random_nof_intersecting(std::size_t m, double density,
                                                Rng& rng);

/// Metered shared blackboard for the NOF simulation; every written bit is
/// charged to the protocol's communication complexity. A thin wrapper over
/// the transport core's PartyMeter (comm/engine.h).
class NofBlackboard {
 public:
  /// Player `who` (0, 1, 2) appends a message to the board. If called from
  /// inside a guarded player scope (a simulated-clique callback driving the
  /// reduction), the write must be attributed to that same player — spending
  /// another party's budget is a model violation.
  /// The write commits the message's length to the metered transcript, so
  /// the charge runs under a sink scope. The meter substrates have no
  /// callback seam like the round engines — a reduction that *computes* a
  /// transcript length opens its own oblivious::SinkScope around that
  /// computation (the repo's reductions inherit the CLIQUE-BCAST callback
  /// sink, because they simulate a broadcast protocol).
  void write(int who, const Message& m) {
    locality::check_actor(who, "NOF blackboard write");
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("NOF blackboard write"));
    meter_.charge_message(who, m.size_bits());
  }

  std::uint64_t total_bits() const { return meter_.total_bits(); }
  std::uint64_t bits_by(int who) const { return meter_.bits_by(who); }

 private:
  PartyMeter meter_{3};
};

}  // namespace cclique
