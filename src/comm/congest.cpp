#include "comm/congest.h"

#include <algorithm>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"

namespace cclique {

CongestUnicast::CongestUnicast(const Graph& topology, int bandwidth)
    : topology_(topology), core_(topology.num_vertices(), bandwidth) {
  const int nv = n();
  reverse_slot_.resize(static_cast<std::size_t>(nv));
  for (int v = 0; v < nv; ++v) {
    const auto& nbrs = topology_.neighbors(v);
    auto& rev = reverse_slot_[static_cast<std::size_t>(v)];
    rev.resize(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const auto& unbrs = topology_.neighbors(nbrs[k]);
      const auto it = std::lower_bound(unbrs.begin(), unbrs.end(), v);
      CC_CHECK(it != unbrs.end() && *it == v, "topology adjacency inconsistent");
      rev[k] = static_cast<std::size_t>(it - unbrs.begin());
    }
  }
}

void CongestUnicast::round(const SendFn& send, const RecvFn& recv) {
  const int nv = n();
  out_.resize(static_cast<std::size_t>(nv));
  core_.send_phase([&](int v, PlayerCharge& charge) {
    locality::PlayerScope scope(v);
    // Length sink like the clique engines. The *topology* (neighbor lists)
    // is not a tainted source — in CONGEST the input graph is the network,
    // so sizing an outbox by degree is structural, not payload-dependent.
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("CONGEST send callback"));
    const auto& nbrs = topology_.neighbors(v);
    std::vector<Message> box = send(v);
    CC_MODEL(box.size() == nbrs.size(),
             "CONGEST outbox must have one slot per incident edge");
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      core_.charge_message(v, nbrs[k], box[k].size_bits(), charge,
                           "per-edge bandwidth exceeded in CONGEST");
    }
    out_[static_cast<std::size_t>(v)] = std::move(box);
  });
  for (int v = 0; v < nv; ++v) {
    const auto& nbrs = topology_.neighbors(v);
    inbox_.resize(nbrs.size());
    std::uint64_t recv_bits = 0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const int u = nbrs[k];
      // v's slot in u's outbox, precomputed in the constructor. Each
      // message has exactly one receiver, so moving it out is safe.
      inbox_[k] = std::move(
          out_[static_cast<std::size_t>(u)][reverse_slot_[static_cast<std::size_t>(v)][k]]);
      recv_bits += inbox_[k].size_bits();
    }
    core_.charge_receive(v, recv_bits);
    locality::PlayerScope scope(v);
    recv(v, inbox_);
  }
}

}  // namespace cclique
