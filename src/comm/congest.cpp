#include "comm/congest.h"

#include <algorithm>

namespace cclique {

CongestUnicast::CongestUnicast(const Graph& topology, int bandwidth)
    : topology_(topology), bandwidth_(bandwidth) {
  CC_REQUIRE(topology.num_vertices() >= 1, "need at least one node");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be at least 1 bit");
}

void CongestUnicast::set_cut(std::vector<int> side) {
  CC_REQUIRE(static_cast<int>(side.size()) == n(), "cut assignment size mismatch");
  for (int s : side) CC_REQUIRE(s == 0 || s == 1, "cut side must be 0 or 1");
  cut_side_ = std::move(side);
}

void CongestUnicast::round(const SendFn& send, const RecvFn& recv) {
  const int nv = n();
  std::vector<std::vector<Message>> out(static_cast<std::size_t>(nv));
  for (int v = 0; v < nv; ++v) {
    const auto& nbrs = topology_.neighbors(v);
    std::vector<Message> box = send(v);
    CC_MODEL(box.size() == nbrs.size(),
             "CONGEST outbox must have one slot per incident edge");
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const Message& msg = box[k];
      CC_MODEL(msg.size_bits() <= static_cast<std::size_t>(bandwidth_),
               "per-edge bandwidth exceeded in CONGEST");
      stats_.total_bits += msg.size_bits();
      if (!msg.empty()) ++stats_.total_messages;
      stats_.max_edge_bits_in_round =
          std::max<std::uint64_t>(stats_.max_edge_bits_in_round, msg.size_bits());
      if (!cut_side_.empty() &&
          cut_side_[static_cast<std::size_t>(v)] !=
              cut_side_[static_cast<std::size_t>(nbrs[k])]) {
        stats_.cut_bits += msg.size_bits();
      }
    }
    out[static_cast<std::size_t>(v)] = std::move(box);
  }
  ++stats_.rounds;
  for (int v = 0; v < nv; ++v) {
    const auto& nbrs = topology_.neighbors(v);
    std::vector<Message> inbox(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const int u = nbrs[k];
      // Find v's slot in u's outbox (v's index among u's neighbors).
      const auto& unbrs = topology_.neighbors(u);
      const auto it = std::lower_bound(unbrs.begin(), unbrs.end(), v);
      CC_CHECK(it != unbrs.end() && *it == v, "topology adjacency inconsistent");
      const std::size_t slot = static_cast<std::size_t>(it - unbrs.begin());
      inbox[k] = out[static_cast<std::size_t>(u)][slot];
    }
    recv(v, inbox);
  }
}

}  // namespace cclique
