#include "comm/two_party.h"

namespace cclique {

DisjointnessInstance random_disjointness(std::size_t n, double density, Rng& rng) {
  DisjointnessInstance inst;
  inst.x.resize(n);
  inst.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.x[i] = rng.bernoulli(density);
    inst.y[i] = rng.bernoulli(density);
  }
  return inst;
}

DisjointnessInstance random_disjoint_instance(std::size_t n, double density, Rng& rng) {
  DisjointnessInstance inst;
  inst.x.resize(n);
  inst.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) {
      // Element goes to exactly one side.
      if (rng.coin()) {
        inst.x[i] = true;
      } else {
        inst.y[i] = true;
      }
    }
  }
  return inst;
}

DisjointnessInstance random_intersecting_instance(std::size_t n, double density,
                                                  Rng& rng) {
  CC_REQUIRE(n >= 1, "universe must be nonempty");
  DisjointnessInstance inst = random_disjoint_instance(n, density, rng);
  const std::size_t hit = rng.uniform(n);
  inst.x[hit] = true;
  inst.y[hit] = true;
  return inst;
}

bool trivial_disjointness_protocol(const DisjointnessInstance& inst,
                                   TwoPartyChannel* channel) {
  Message alices;
  for (bool bit : inst.x) alices.push_bit(bit);
  if (channel != nullptr) channel->send_from_alice(alices);
  // Bob evaluates and announces.
  bool disjoint = true;
  for (std::size_t i = 0; i < inst.y.size(); ++i) {
    if (inst.y[i] && alices.get(i)) disjoint = false;
  }
  Message verdict;
  verdict.push_bit(disjoint);
  if (channel != nullptr) channel->send_from_bob(verdict);
  return disjoint;
}

}  // namespace cclique
