// CONGEST-UCAST(n, b): unicast over the *input graph's* edges.
//
// The classical CONGEST model [33]: the communication topology equals the
// input graph G, so a round carries at most b bits per direction on each
// graph edge. Used by the δ-sparse lower bounds of Definition 12 /
// Lemma 13 and by the in-network 4-cycle detection upper bound.
//
// Built on the shared metered transport core (comm/engine.h): send callbacks
// may run concurrently (CC_THREADS) with bit-identical accounting.
#pragma once

#include <functional>
#include <vector>

#include "comm/engine.h"
#include "comm/model.h"
#include "graph/graph.h"
#include "util/check.h"

namespace cclique {

/// Round-synchronous engine for CONGEST over a fixed topology.
class CongestUnicast {
 public:
  CongestUnicast(const Graph& topology, int bandwidth);

  int n() const { return core_.n(); }
  int bandwidth() const { return core_.bandwidth(); }
  const Graph& topology() const { return topology_; }

  /// Outbox layout: one slot per *neighbor index* in
  /// topology().neighbors(player) order; each message <= b bits.
  using SendFn = std::function<std::vector<Message>(int player)>;

  /// inbox is aligned with topology().neighbors(player) as well.
  using RecvFn = std::function<void(int player, const std::vector<Message>& inbox)>;

  void round(const SendFn& send, const RecvFn& recv);

  /// Registers a vertex bipartition; cut_bits accumulates bits on cut edges.
  void set_cut(std::vector<int> side) { core_.set_cut(std::move(side)); }

  const CommStats& stats() const { return core_.stats(); }
  void reset_stats() { core_.reset_stats(); }

 private:
  Graph topology_;
  EngineCore core_;
  /// reverse_slot_[v][k]: v's index among the neighbors of its k-th
  /// neighbor. Precomputed so delivery is O(degree) per node per round.
  std::vector<std::vector<std::size_t>> reverse_slot_;
  std::vector<std::vector<Message>> out_;
  std::vector<Message> inbox_;
};

}  // namespace cclique
