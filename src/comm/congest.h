// CONGEST-UCAST(n, b): unicast over the *input graph's* edges.
//
// The classical CONGEST model [33]: the communication topology equals the
// input graph G, so a round carries at most b bits per direction on each
// graph edge. Used by the δ-sparse lower bounds of Definition 12 /
// Lemma 13 and by the in-network 4-cycle detection upper bound.
#pragma once

#include <functional>
#include <vector>

#include "comm/model.h"
#include "graph/graph.h"
#include "util/check.h"

namespace cclique {

/// Round-synchronous engine for CONGEST over a fixed topology.
class CongestUnicast {
 public:
  CongestUnicast(const Graph& topology, int bandwidth);

  int n() const { return topology_.num_vertices(); }
  int bandwidth() const { return bandwidth_; }
  const Graph& topology() const { return topology_; }

  /// Outbox layout: one slot per *neighbor index* in
  /// topology().neighbors(player) order; each message <= b bits.
  using SendFn = std::function<std::vector<Message>(int player)>;

  /// inbox is aligned with topology().neighbors(player) as well.
  using RecvFn = std::function<void(int player, const std::vector<Message>& inbox)>;

  void round(const SendFn& send, const RecvFn& recv);

  /// Registers a vertex bipartition; cut_bits accumulates bits on cut edges.
  void set_cut(std::vector<int> side);

  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  Graph topology_;
  int bandwidth_;
  std::vector<int> cut_side_;
  CommStats stats_;
};

}  // namespace cclique
