#include "comm/clique_broadcast.h"

#include <algorithm>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"

namespace cclique {

CliqueBroadcast::CliqueBroadcast(int n, int bandwidth) : core_(n, bandwidth) {}

const std::vector<Message>& CliqueBroadcast::round(const BcastFn& bcast) {
  const int nn = n();
  board_.assign(static_cast<std::size_t>(nn), Message{});
  core_.send_phase([&](int i, PlayerCharge& charge) {
    locality::PlayerScope scope(i);
    // The callback's output becomes this round's blackboard write length:
    // a length sink, like every engine send path (see oblivious_guard.h).
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("CLIQUE-BCAST send callback"));
    Message msg = bcast(i);
    core_.charge_broadcast(i, msg.size_bits(), charge,
                           "per-player bandwidth exceeded in CLIQUE-BCAST");
    board_[static_cast<std::size_t>(i)] = std::move(msg);
  });
  charge_reads();
  return board_;
}

void CliqueBroadcast::ensure_slots() {
  if (slots_.empty()) slots_ = core_.borrow_slots(static_cast<std::size_t>(n()));
}

const std::vector<Message>& CliqueBroadcast::round_fill(const FillFn& fill) {
  ensure_slots();
  const int nn = n();
  core_.send_phase([&](int i, PlayerCharge& charge) {
    locality::PlayerScope scope(i);
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("CLIQUE-BCAST fill callback"));
    Message& slot = slots_[static_cast<std::size_t>(i)];
    slot.clear();
    fill(i, slot);
    core_.charge_broadcast(i, slot.size_bits(), charge,
                           "per-player bandwidth exceeded in CLIQUE-BCAST");
  });
  board_.resize(static_cast<std::size_t>(nn));
  for (int i = 0; i < nn; ++i) {
    board_[static_cast<std::size_t>(i)] =
        Message::alias(slots_[static_cast<std::size_t>(i)]);
  }
  charge_reads();
  return board_;
}

void CliqueBroadcast::charge_reads() {
  // Every written bit is read by the other n-1 players: player i's receive
  // load this round is the board total minus its own write.
  const int nn = n();
  std::uint64_t total = 0;
  for (const Message& m : board_) total += m.size_bits();
  for (int i = 0; i < nn; ++i) {
    core_.charge_receive(i, total - board_[static_cast<std::size_t>(i)].size_bits());
  }
}

std::vector<Message> broadcast_payloads(CliqueBroadcast& net,
                                        const std::vector<Message>& payloads,
                                        int* rounds_used) {
  const int n = net.n();
  const std::size_t b = static_cast<std::size_t>(net.bandwidth());
  // Chunk-schedule sink, mirroring unicast_payloads: rounds and slice
  // lengths derive from Message sizes only.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("broadcast_payloads chunk schedule"));
  CC_REQUIRE(static_cast<int>(payloads.size()) == n, "one payload per player");
  std::size_t max_len = 0;
  for (const auto& p : payloads) max_len = std::max(max_len, p.size_bits());
  const int rounds = static_cast<int>((max_len + b - 1) / b);
  std::vector<Message> assembled(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    assembled[static_cast<std::size_t>(i)].reserve_bits(
        payloads[static_cast<std::size_t>(i)].size_bits());
  }
  for (int r = 0; r < rounds; ++r) {
    const std::size_t offset = static_cast<std::size_t>(r) * b;
    const auto& board = net.round_fill([&](int i, Message& chunk) {
      const Message& full = payloads[static_cast<std::size_t>(i)];
      if (offset < full.size_bits()) {
        const std::size_t take = std::min(b, full.size_bits() - offset);
        chunk.append_slice(full, offset, take);
      }
    });
    for (int i = 0; i < n; ++i) {
      assembled[static_cast<std::size_t>(i)].append(board[static_cast<std::size_t>(i)]);
    }
  }
  if (rounds_used != nullptr) *rounds_used = rounds;
  return assembled;
}

}  // namespace cclique
