#include "comm/clique_broadcast.h"

#include <algorithm>

namespace cclique {

CliqueBroadcast::CliqueBroadcast(int n, int bandwidth)
    : n_(n), bandwidth_(bandwidth) {
  CC_REQUIRE(n >= 1, "need at least one player");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be at least 1 bit");
}

void CliqueBroadcast::set_cut(std::vector<int> side) {
  CC_REQUIRE(static_cast<int>(side.size()) == n_, "cut assignment size mismatch");
  for (int s : side) CC_REQUIRE(s == 0 || s == 1, "cut side must be 0 or 1");
  cut_side_ = std::move(side);
}

const std::vector<Message>& CliqueBroadcast::round(const BcastFn& bcast) {
  board_.assign(static_cast<std::size_t>(n_), Message{});
  for (int i = 0; i < n_; ++i) {
    Message msg = bcast(i);
    CC_MODEL(msg.size_bits() <= static_cast<std::size_t>(bandwidth_),
             "per-player bandwidth exceeded in CLIQUE-BCAST");
    stats_.total_bits += msg.size_bits();
    if (!msg.empty()) ++stats_.total_messages;
    stats_.max_edge_bits_in_round =
        std::max<std::uint64_t>(stats_.max_edge_bits_in_round, msg.size_bits());
    if (!cut_side_.empty()) stats_.cut_bits += msg.size_bits();
    board_[static_cast<std::size_t>(i)] = std::move(msg);
  }
  ++stats_.rounds;
  return board_;
}

std::vector<Message> broadcast_payloads(CliqueBroadcast& net,
                                        const std::vector<Message>& payloads,
                                        int* rounds_used) {
  const int n = net.n();
  const std::size_t b = static_cast<std::size_t>(net.bandwidth());
  CC_REQUIRE(static_cast<int>(payloads.size()) == n, "one payload per player");
  std::size_t max_len = 0;
  for (const auto& p : payloads) max_len = std::max(max_len, p.size_bits());
  const int rounds = static_cast<int>((max_len + b - 1) / b);
  std::vector<Message> assembled(static_cast<std::size_t>(n));
  for (int r = 0; r < rounds; ++r) {
    const std::size_t offset = static_cast<std::size_t>(r) * b;
    const auto& board = net.round([&](int i) {
      const Message& full = payloads[static_cast<std::size_t>(i)];
      Message chunk;
      if (offset < full.size_bits()) {
        const std::size_t take = std::min(b, full.size_bits() - offset);
        for (std::size_t t = 0; t < take; ++t) chunk.push_bit(full.get(offset + t));
      }
      return chunk;
    });
    for (int i = 0; i < n; ++i) {
      assembled[static_cast<std::size_t>(i)].append(board[static_cast<std::size_t>(i)]);
    }
  }
  if (rounds_used != nullptr) *rounds_used = rounds;
  return assembled;
}

}  // namespace cclique
