// CLIQUE-BCAST(n, b): the broadcast congested clique / shared blackboard.
//
// In each round every player writes a single message of at most b bits that
// all other players can read — the classical multiparty number-in-hand
// shared-blackboard model (Section 3 of the paper). Only Θ(nb) unique bits
// cross any cut per round, which is what re-enables the bottleneck lower
// bounds of Section 3.2.
#pragma once

#include <functional>
#include <vector>

#include "comm/model.h"
#include "util/check.h"

namespace cclique {

/// Round-synchronous engine for the broadcast congested clique.
class CliqueBroadcast {
 public:
  CliqueBroadcast(int n, int bandwidth);

  int n() const { return n_; }
  int bandwidth() const { return bandwidth_; }

  /// Broadcast callback: player i returns its <= b-bit broadcast.
  using BcastFn = std::function<Message(int player)>;

  /// Executes one round; returns the blackboard row (message of player i at
  /// index i). All players may read the returned row — that is the model.
  const std::vector<Message>& round(const BcastFn& bcast);

  /// The blackboard row of the most recent round.
  const std::vector<Message>& last_round() const { return board_; }

  /// Registers a 2-party partition for cut accounting: a broadcast bit by a
  /// side-0 player costs one bit toward side 1 (and vice versa), because in
  /// a 2-party simulation each written bit must be shipped across once.
  void set_cut(std::vector<int> side);

  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  int n_;
  int bandwidth_;
  std::vector<int> cut_side_;
  std::vector<Message> board_;
  CommStats stats_;
};

/// Broadcasts arbitrarily long per-player payloads by chunking into
/// ceil(max_len / b) rounds; returns the full payload row (payloads[i] as
/// every player now knows it) and sets *rounds_used.
std::vector<Message> broadcast_payloads(CliqueBroadcast& net,
                                        const std::vector<Message>& payloads,
                                        int* rounds_used);

}  // namespace cclique
