// CLIQUE-BCAST(n, b): the broadcast congested clique / shared blackboard.
//
// In each round every player writes a single message of at most b bits that
// all other players can read — the classical multiparty number-in-hand
// shared-blackboard model (Section 3 of the paper). Only Θ(nb) unique bits
// cross any cut per round, which is what re-enables the bottleneck lower
// bounds of Section 3.2.
//
// Built on the shared metered transport core (comm/engine.h): broadcast
// callbacks may run concurrently (CC_THREADS) with bit-identical
// accounting, and the arena-backed round_fill path performs O(1) heap
// allocations per round.
#pragma once

#include <functional>
#include <vector>

#include "comm/engine.h"
#include "comm/model.h"
#include "util/check.h"

namespace cclique {

/// Round-synchronous engine for the broadcast congested clique.
///
/// Determinism: accounting is bit-identical at any CC_THREADS value (the
/// comm/engine.h contract). Cost model: one round() / round_fill() call =
/// exactly one round and at most n·b written bits (each charged once —
/// the blackboard is read, not re-sent).
class CliqueBroadcast {
 public:
  /// Preconditions: n >= 1 players, per-broadcast bandwidth >= 1 bits
  /// (CC_REQUIRE).
  CliqueBroadcast(int n, int bandwidth);

  int n() const { return core_.n(); }
  int bandwidth() const { return core_.bandwidth(); }

  /// Broadcast callback: player i returns its <= b-bit broadcast.
  using BcastFn = std::function<Message(int player)>;

  /// Executes one round; returns the blackboard row (message of player i at
  /// index i). All players may read the returned row — that is the model.
  /// Cost: 1 round, sum-of-broadcast-sizes bits. Broadcast callbacks may
  /// run concurrently (locality discipline); a broadcast over bandwidth()
  /// bits throws ModelViolation and the round charges nothing. The row is
  /// valid until the next round begins.
  const std::vector<Message>& round(const BcastFn& bcast);

  /// Broadcast-filling callback for the arena-backed fast path: append
  /// player i's broadcast into `out` (initially empty, capacity bandwidth()
  /// bits; overflow throws ModelViolation immediately).
  using FillFn = std::function<void(int player, Message& out)>;

  /// round() without per-round heap allocation: the blackboard row lives in
  /// the engine's arena. Accounting is identical to round().
  const std::vector<Message>& round_fill(const FillFn& fill);

  /// The blackboard row of the most recent round. Valid until the next
  /// round begins (round_fill reuses the storage).
  const std::vector<Message>& last_round() const { return board_; }

  /// Registers a 2-party partition for cut accounting: a broadcast bit by a
  /// side-0 player costs one bit toward side 1 (and vice versa), because in
  /// a 2-party simulation each written bit must be shipped across once.
  void set_cut(std::vector<int> side) { core_.set_cut(std::move(side)); }

  const CommStats& stats() const { return core_.stats(); }
  void reset_stats() { core_.reset_stats(); }

 private:
  void ensure_slots();
  void charge_reads();

  EngineCore core_;
  std::vector<Message> board_;
  /// round_fill blackboard slots, borrowed from the arena (allocated once).
  std::vector<Message> slots_;
};

/// Broadcasts arbitrarily long per-player payloads by chunking into
/// ceil(max_len / b) rounds; returns the full payload row (payloads[i] as
/// every player now knows it) and sets *rounds_used.
///
/// Preconditions: payloads.size() == n (CC_REQUIRE). Cost: exactly
/// ceil(max payload bits / b) rounds, sum-of-payload-bits written bits.
/// Deterministic: the chunk schedule is a pure function of the payload
/// lengths. The returned row is owned (copied out of the arena), so it
/// may outlive subsequent rounds.
std::vector<Message> broadcast_payloads(CliqueBroadcast& net,
                                        const std::vector<Message>& payloads,
                                        int* rounds_used);

}  // namespace cclique
