// CLIQUE-UCAST(n, b): the unicast congested clique.
//
// n players over a complete network; in each round every ordered pair (i, j)
// may carry a message of at most b bits from i to j — players may send
// *different* messages on different links (Θ(n^2 b) bits/round total
// capacity). This is the model of Sections 1–2 of the paper.
#pragma once

#include <functional>
#include <vector>

#include "comm/model.h"
#include "util/check.h"

namespace cclique {

/// Round-synchronous engine for the unicast congested clique.
class CliqueUnicast {
 public:
  /// n >= 1 players, per-edge per-round bandwidth `bandwidth` >= 1 bits.
  CliqueUnicast(int n, int bandwidth);

  int n() const { return n_; }
  int bandwidth() const { return bandwidth_; }

  /// Sender callback: given a player id, return its outbox — a vector of n
  /// messages where slot j is the message for player j (empty = nothing).
  /// Slot `player` (self) must be empty. Each message must fit in
  /// bandwidth() bits or the engine throws ModelViolation.
  using SendFn = std::function<std::vector<Message>(int player)>;

  /// Receiver callback: inbox[j] is the message player j sent this round.
  using RecvFn = std::function<void(int player, const std::vector<Message>& inbox)>;

  /// Executes one synchronous round.
  void round(const SendFn& send, const RecvFn& recv);

  /// Registers a 2-party partition (side[i] in {0,1}) so stats().cut_bits
  /// accumulates the bits crossing it — the quantity 2-party reductions pay.
  void set_cut(std::vector<int> side);

  const CommStats& stats() const { return stats_; }

  /// Resets accounting (not the cut registration).
  void reset_stats() { stats_ = CommStats{}; }

 private:
  int n_;
  int bandwidth_;
  std::vector<int> cut_side_;
  CommStats stats_;
};

/// Delivers arbitrarily long per-edge payloads by chunking them into
/// ceil(L/b)-round streams (all edges progress in parallel). payload[i][j]
/// is what player i wants player j to end up holding; on return,
/// received[j][i] holds it. Returns the number of rounds used.
int unicast_payloads(CliqueUnicast& net,
                     const std::vector<std::vector<Message>>& payload,
                     std::vector<std::vector<Message>>* received);

}  // namespace cclique
