// CLIQUE-UCAST(n, b): the unicast congested clique.
//
// n players over a complete network; in each round every ordered pair (i, j)
// may carry a message of at most b bits from i to j — players may send
// *different* messages on different links (Θ(n^2 b) bits/round total
// capacity). This is the model of Sections 1–2 of the paper.
//
// Built on the shared metered transport core (comm/engine.h): send callbacks
// may run concurrently (CC_THREADS) with bit-identical accounting, and the
// arena-backed round_fill path performs O(1) heap allocations per round.
#pragma once

#include <functional>
#include <vector>

#include "comm/engine.h"
#include "comm/model.h"
#include "util/check.h"

namespace cclique {

/// Round-synchronous engine for the unicast congested clique.
///
/// Determinism: all accounting (stats()) is bit-identical at any
/// CC_THREADS value — see the contract in comm/engine.h / DESIGN.md §2.1.
/// Cost model: one round() / round_fill() call = exactly one round and at
/// most n(n-1)·b network bits; every bit is charged to stats(), never
/// estimated.
class CliqueUnicast {
 public:
  /// Preconditions: n >= 1 players, per-edge per-round bandwidth
  /// `bandwidth` >= 1 bits (CC_REQUIRE).
  CliqueUnicast(int n, int bandwidth);

  int n() const { return core_.n(); }
  int bandwidth() const { return core_.bandwidth(); }

  /// Sender callback: given a player id, return its outbox — a vector of n
  /// messages where slot j is the message for player j (empty = nothing).
  /// Slot `player` (self) must be empty. Each message must fit in
  /// bandwidth() bits or the engine throws ModelViolation.
  using SendFn = std::function<std::vector<Message>(int player)>;

  /// Receiver callback: inbox[j] is the message player j sent this round.
  /// The inbox (and any borrowed messages in it) is valid only for the
  /// duration of the callback — copy what must outlive it.
  using RecvFn = std::function<void(int player, const std::vector<Message>& inbox)>;

  /// Executes one synchronous round: all outboxes are collected and
  /// validated against pre-round state, then delivered. Cost: 1 round,
  /// sum-of-message-sizes bits. Send callbacks may run concurrently
  /// (locality discipline: read only the player's own pre-round state);
  /// receive callbacks run serially in player order. A message over
  /// bandwidth() bits, a non-empty self-slot, or a wrong-size outbox
  /// throws ModelViolation and the round charges nothing.
  void round(const SendFn& send, const RecvFn& recv);

  /// Outbox-filling callback for the arena-backed fast path: `outbox` points
  /// at n engine-owned messages (initially empty, capacity bandwidth()
  /// bits); append to outbox[j] to address player j. Writing past the
  /// capacity throws ModelViolation immediately.
  using FillFn = std::function<void(int player, Message* outbox)>;

  /// Executes one round without per-round heap allocation: outboxes live in
  /// the engine's arena and inboxes alias them (zero-copy delivery).
  /// Semantics, cost, and accounting are identical to round(); borrowed
  /// messages are valid only until the next round begins (DESIGN.md §2.1,
  /// arena lifetime rule).
  void round_fill(const FillFn& fill, const RecvFn& recv);

  /// Registers a 2-party partition (side[i] in {0,1}) so stats().cut_bits
  /// accumulates the bits crossing it — the quantity 2-party reductions pay.
  void set_cut(std::vector<int> side) { core_.set_cut(std::move(side)); }

  const CommStats& stats() const { return core_.stats(); }

  /// Resets accounting (not the cut registration).
  void reset_stats() { core_.reset_stats(); }

 private:
  void ensure_slots();
  void deliver(std::vector<std::vector<Message>>& out, const RecvFn& recv);

  EngineCore core_;
  /// round_fill outbox matrix: slot i*n+j is the message i -> j, borrowed
  /// from the arena (allocated once — the engine's geometry is fixed).
  std::vector<Message> slots_;
  /// Legacy-path outbox collection and the reused delivery inbox.
  std::vector<std::vector<Message>> legacy_out_;
  std::vector<Message> inbox_;
};

/// Delivers arbitrarily long per-edge payloads by chunking them into
/// ceil(L/b)-round streams (all edges progress in parallel). payload[i][j]
/// is what player i wants player j to end up holding; on return,
/// received[j][i] holds it. Returns the number of rounds used.
///
/// Preconditions: payload is an n x n matrix (CC_REQUIRE); diagonal
/// entries are ignored only if empty (a non-empty self-payload trips the
/// engine's self-message rule). Cost: exactly ceil(max payload bits / b)
/// rounds and sum-of-payload-bits network bits. Deterministic: the chunk
/// schedule is a pure function of the payload lengths.
int unicast_payloads(CliqueUnicast& net,
                     const std::vector<std::vector<Message>>& payload,
                     std::vector<std::vector<Message>>* received);

/// The n-way balanced split used by the relayed delivery below: chunk c of a
/// len-bit payload is bits [len*c/n, len*(c+1)/n) — all n chunks differ in
/// size by at most one bit. Exposed so protocols (core/algebraic_mm) can
/// predict the relayed round schedule exactly from a length matrix alone.
inline std::size_t relay_chunk_lo(std::size_t len, int c, int n) {
  return len * static_cast<std::size_t>(c) / static_cast<std::size_t>(n);
}

/// Which chunk of the (v -> p) payload relay t carries. The one-bit-heavier
/// remainder chunks of equal-length payloads sit at the same chunk indices,
/// so an identity map would pile them all onto the same relays (measurably:
/// ~4x the ideal hop load for the MM distribution phase); rotating the map
/// by (v + p) spreads them across relays.
inline int relay_chunk_index(int v, int p, int t, int n) {
  return (t + v + p) % n;
}

/// Delivers a payload matrix through the deterministic two-hop relay
/// schedule (oblivious Valiant-style balancing; the same idea as the
/// message-level router of DESIGN.md §4a, lifted to bit streams): every
/// payload is split into n near-equal chunks by relay_chunk_lo, chunk t
/// travels source -> relay t -> destination, and each hop is a plain
/// unicast_payloads call. Per-edge load per hop is therefore
/// ~(per-player total)/n instead of the largest single payload, which is
/// what turns the skewed block-distribution demand of the algebraic MM
/// protocol into its O(n^{1/3}) round bound.
///
/// Contract: the *length* matrix of `payload` must be globally known (a
/// data-independent function of the protocol's parameters, never of input
/// values) — relays and receivers locate chunks by recomputing lengths, so
/// data-dependent lengths would leak information outside the accounting.
/// payload[v][v] must be empty (CC_REQUIRE). On return received[r][v]
/// holds payload[v][r]. Returns the number of rounds used (both hops).
///
/// Cost: with per-player total load <= M bits, each hop's per-edge load is
/// <= ceil(M/n) + (payload count) remainder bits, so the delivery takes
/// ~2·ceil(M/(n·b)) rounds versus direct chunking's ceil(max single
/// payload / b) — the skew-flattening the block-MM protocols ride
/// (DESIGN.md §2.2/§2.4). Exact costs are replayable from the length
/// matrix alone (see relay_chunk_lo / core/block_mm.h), which is how the
/// *_plan functions predict rounds and bits without running the protocol.
/// Non-uniform payload widths (including zero-length pairs) are fine; the
/// widths just must not depend on input data.
int unicast_payloads_relayed(CliqueUnicast& net,
                             const std::vector<std::vector<Message>>& payload,
                             std::vector<std::vector<Message>>* received);

}  // namespace cclique
