#include "comm/clique_unicast.h"

#include <algorithm>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"

namespace cclique {

CliqueUnicast::CliqueUnicast(int n, int bandwidth) : core_(n, bandwidth) {}

void CliqueUnicast::round(const SendFn& send, const RecvFn& recv) {
  // Collect and validate all outboxes before any delivery: a synchronous
  // round means sends are based on pre-round state only. Send callbacks may
  // run concurrently (see comm/engine.h for the determinism contract).
  const int nn = n();
  legacy_out_.resize(static_cast<std::size_t>(nn));
  core_.send_phase([&](int i, PlayerCharge& charge) {
    locality::PlayerScope scope(i);
    // The callback's outputs become this round's message lengths, so the
    // whole callback is a length sink: payloads must be pre-serialized
    // (comm/model.h), never read here.
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("CLIQUE-UCAST send callback"));
    std::vector<Message> box = send(i);
    CC_MODEL(static_cast<int>(box.size()) == nn,
             "outbox must have one slot per player");
    for (int j = 0; j < nn; ++j) {
      const Message& msg = box[static_cast<std::size_t>(j)];
      if (j == i) {
        CC_MODEL(msg.empty(), "players cannot message themselves");
        continue;
      }
      core_.charge_message(i, j, msg.size_bits(), charge,
                           "per-edge bandwidth exceeded in CLIQUE-UCAST");
    }
    legacy_out_[static_cast<std::size_t>(i)] = std::move(box);
  });
  deliver(legacy_out_, recv);
}

void CliqueUnicast::ensure_slots() {
  if (slots_.empty()) {
    const std::size_t nn = static_cast<std::size_t>(n());
    slots_ = core_.borrow_slots(nn * nn);
  }
}

void CliqueUnicast::round_fill(const FillFn& fill, const RecvFn& recv) {
  ensure_slots();
  const int nn = n();
  core_.send_phase([&](int i, PlayerCharge& charge) {
    locality::PlayerScope scope(i);
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("CLIQUE-UCAST fill callback"));
    Message* box = &slots_[static_cast<std::size_t>(i) * static_cast<std::size_t>(nn)];
    for (int j = 0; j < nn; ++j) box[j].clear();
    fill(i, box);
    for (int j = 0; j < nn; ++j) {
      if (j == i) {
        CC_MODEL(box[j].empty(), "players cannot message themselves");
        continue;
      }
      core_.charge_message(i, j, box[j].size_bits(), charge,
                           "per-edge bandwidth exceeded in CLIQUE-UCAST");
    }
  });
  // Zero-copy delivery: receiver r's inbox aliases column r of the outbox
  // matrix. Serial, player order (see comm/engine.h).
  inbox_.resize(static_cast<std::size_t>(nn));
  for (int r = 0; r < nn; ++r) {
    std::uint64_t recv_bits = 0;
    for (int j = 0; j < nn; ++j) {
      const Message& msg =
          slots_[static_cast<std::size_t>(j) * static_cast<std::size_t>(nn) +
                 static_cast<std::size_t>(r)];
      recv_bits += msg.size_bits();
      inbox_[static_cast<std::size_t>(j)] = Message::alias(msg);
    }
    core_.charge_receive(r, recv_bits);
    locality::PlayerScope scope(r);
    recv(r, inbox_);
  }
}

void CliqueUnicast::deliver(std::vector<std::vector<Message>>& out,
                            const RecvFn& recv) {
  const int nn = n();
  inbox_.resize(static_cast<std::size_t>(nn));
  for (int r = 0; r < nn; ++r) {
    std::uint64_t recv_bits = 0;
    for (int j = 0; j < nn; ++j) {
      // Each message is delivered to exactly one receiver, so moving it out
      // of the outbox matrix is safe and saves the per-message copy.
      inbox_[static_cast<std::size_t>(j)] =
          std::move(out[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)]);
      recv_bits += inbox_[static_cast<std::size_t>(j)].size_bits();
    }
    core_.charge_receive(r, recv_bits);
    locality::PlayerScope scope(r);
    recv(r, inbox_);
  }
}

int unicast_payloads(CliqueUnicast& net,
                     const std::vector<std::vector<Message>>& payload,
                     std::vector<std::vector<Message>>* received) {
  const int n = net.n();
  const std::size_t b = static_cast<std::size_t>(net.bandwidth());
  // The whole driver is a chunk-schedule sink: rounds and slice lengths
  // derive from Message *sizes* (already-committed lengths), never from
  // payload values, and the blanket scope makes that machine-checked.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("unicast_payloads chunk schedule"));
  CC_REQUIRE(static_cast<int>(payload.size()) == n, "payload matrix must be n x n");
  std::size_t max_len = 0;
  for (const auto& row : payload) {
    CC_REQUIRE(static_cast<int>(row.size()) == n, "payload matrix must be n x n");
    for (const auto& msg : row) max_len = std::max(max_len, msg.size_bits());
  }
  received->assign(static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  // Preallocate the assembly buffers: every received stream's final length
  // is known up front, so the chunk rounds below never reallocate.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      (*received)[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)].reserve_bits(
          payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].size_bits());
    }
  }
  const int rounds = static_cast<int>((max_len + b - 1) / b);
  for (int r = 0; r < rounds; ++r) {
    const std::size_t offset = static_cast<std::size_t>(r) * b;
    net.round_fill(
        [&](int i, Message* box) {
          for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            const Message& full = payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            if (offset >= full.size_bits()) continue;
            const std::size_t take = std::min(b, full.size_bits() - offset);
            box[j].append_slice(full, offset, take);
          }
        },
        [&](int receiver, const std::vector<Message>& inbox) {
          for (int j = 0; j < n; ++j) {
            const Message& chunk = inbox[static_cast<std::size_t>(j)];
            if (!chunk.empty()) {
              (*received)[static_cast<std::size_t>(receiver)][static_cast<std::size_t>(j)]
                  .append(chunk);
            }
          }
        });
  }
  return rounds;
}

int unicast_payloads_relayed(CliqueUnicast& net,
                             const std::vector<std::vector<Message>>& payload,
                             std::vector<std::vector<Message>>* received) {
  const int n = net.n();
  oblivious::SinkScope sink(
      CC_OBLIVIOUS_SITE("unicast_payloads_relayed chunk schedule"));
  CC_REQUIRE(static_cast<int>(payload.size()) == n, "payload matrix must be n x n");
  for (int v = 0; v < n; ++v) {
    const auto& row = payload[static_cast<std::size_t>(v)];
    CC_REQUIRE(static_cast<int>(row.size()) == n, "payload matrix must be n x n");
    CC_REQUIRE(row[static_cast<std::size_t>(v)].empty(),
               "relayed payloads cannot address the sender itself");
  }
  auto chunk_len = [n](std::size_t len, int c) {
    return relay_chunk_lo(len, c + 1, n) - relay_chunk_lo(len, c, n);
  };

  // Hop 1: source v ships to relay t its payloads' relay-t chunks (chunk
  // index rotated per pair — see relay_chunk_index), concatenated in
  // destination order. The t == v chunks stay local (v is its own relay),
  // so the diagonal is left empty.
  std::vector<std::vector<Message>> h1(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int v = 0; v < n; ++v) {
    for (int t = 0; t < n; ++t) {
      if (t == v) continue;
      Message& out = h1[static_cast<std::size_t>(v)][static_cast<std::size_t>(t)];
      for (int p = 0; p < n; ++p) {
        if (p == v) continue;
        const Message& full = payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
        const int c = relay_chunk_index(v, p, t, n);
        const std::size_t clen = chunk_len(full.size_bits(), c);
        if (clen != 0) out.append_slice(full, relay_chunk_lo(full.size_bits(), c, n), clen);
      }
    }
  }
  std::vector<std::vector<Message>> recv1;
  const int rounds1 = unicast_payloads(net, h1, &recv1);

  // Relay stage (local): every relay t re-groups the chunks it holds by
  // final destination, again in source order. Chunk positions inside the
  // incoming streams are recomputed from the globally known lengths.
  // hold[t] collects the chunks whose destination is t itself — the
  // "t -> t stream" that never crosses the network.
  std::vector<std::vector<Message>> h2(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  std::vector<Message> hold(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    for (int v = 0; v < n; ++v) {
      if (v == t) {
        // Own chunks: read straight from the source payloads.
        for (int p = 0; p < n; ++p) {
          if (p == t) continue;
          const Message& full = payload[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
          const int c = relay_chunk_index(t, p, t, n);
          const std::size_t clen = chunk_len(full.size_bits(), c);
          if (clen != 0) {
            h2[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)].append_slice(
                full, relay_chunk_lo(full.size_bits(), c, n), clen);
          }
        }
        continue;
      }
      const Message& src = recv1[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)];
      std::size_t cur = 0;
      for (int p = 0; p < n; ++p) {
        if (p == v) continue;
        const std::size_t clen = chunk_len(
            payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)].size_bits(),
            relay_chunk_index(v, p, t, n));
        if (clen == 0) continue;
        Message& out = p == t ? hold[static_cast<std::size_t>(t)]
                              : h2[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)];
        out.append_slice(src, cur, clen);
        cur += clen;
      }
    }
  }
  std::vector<std::vector<Message>> recv2;
  const int rounds2 = unicast_payloads(net, h2, &recv2);

  // Reassembly: destination r splices each payload back together in chunk
  // order (chunk c sits at relay t = c - v - r mod n); every relay's stream
  // (and the local hold) is consumed in source order, so one cursor per
  // relay suffices regardless of the per-payload chunk rotation.
  received->assign(static_cast<std::size_t>(n),
                   std::vector<Message>(static_cast<std::size_t>(n)));
  for (int r = 0; r < n; ++r) {
    std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      if (v == r) continue;
      const std::size_t len =
          payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(r)].size_bits();
      Message& out = (*received)[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
      out.reserve_bits(len);
      for (int c = 0; c < n; ++c) {
        const std::size_t clen = chunk_len(len, c);
        if (clen == 0) continue;
        const int t = ((c - v - r) % n + n) % n;  // inverse of relay_chunk_index
        const Message& src = t == r ? hold[static_cast<std::size_t>(r)]
                                    : recv2[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
        out.append_slice(src, cur[static_cast<std::size_t>(t)], clen);
        cur[static_cast<std::size_t>(t)] += clen;
      }
    }
  }
  return rounds1 + rounds2;
}

}  // namespace cclique
