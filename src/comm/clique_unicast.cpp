#include "comm/clique_unicast.h"

#include <algorithm>

namespace cclique {

CliqueUnicast::CliqueUnicast(int n, int bandwidth) : core_(n, bandwidth) {}

void CliqueUnicast::round(const SendFn& send, const RecvFn& recv) {
  // Collect and validate all outboxes before any delivery: a synchronous
  // round means sends are based on pre-round state only. Send callbacks may
  // run concurrently (see comm/engine.h for the determinism contract).
  const int nn = n();
  legacy_out_.resize(static_cast<std::size_t>(nn));
  core_.send_phase([&](int i, PlayerCharge& charge) {
    std::vector<Message> box = send(i);
    CC_MODEL(static_cast<int>(box.size()) == nn,
             "outbox must have one slot per player");
    for (int j = 0; j < nn; ++j) {
      const Message& msg = box[static_cast<std::size_t>(j)];
      if (j == i) {
        CC_MODEL(msg.empty(), "players cannot message themselves");
        continue;
      }
      core_.charge_message(i, j, msg.size_bits(), charge,
                           "per-edge bandwidth exceeded in CLIQUE-UCAST");
    }
    legacy_out_[static_cast<std::size_t>(i)] = std::move(box);
  });
  deliver(legacy_out_, recv);
}

void CliqueUnicast::ensure_slots() {
  if (slots_.empty()) {
    const std::size_t nn = static_cast<std::size_t>(n());
    slots_ = core_.borrow_slots(nn * nn);
  }
}

void CliqueUnicast::round_fill(const FillFn& fill, const RecvFn& recv) {
  ensure_slots();
  const int nn = n();
  core_.send_phase([&](int i, PlayerCharge& charge) {
    Message* box = &slots_[static_cast<std::size_t>(i) * static_cast<std::size_t>(nn)];
    for (int j = 0; j < nn; ++j) box[j].clear();
    fill(i, box);
    for (int j = 0; j < nn; ++j) {
      if (j == i) {
        CC_MODEL(box[j].empty(), "players cannot message themselves");
        continue;
      }
      core_.charge_message(i, j, box[j].size_bits(), charge,
                           "per-edge bandwidth exceeded in CLIQUE-UCAST");
    }
  });
  // Zero-copy delivery: receiver r's inbox aliases column r of the outbox
  // matrix. Serial, player order (see comm/engine.h).
  inbox_.resize(static_cast<std::size_t>(nn));
  for (int r = 0; r < nn; ++r) {
    std::uint64_t recv_bits = 0;
    for (int j = 0; j < nn; ++j) {
      const Message& msg =
          slots_[static_cast<std::size_t>(j) * static_cast<std::size_t>(nn) +
                 static_cast<std::size_t>(r)];
      recv_bits += msg.size_bits();
      inbox_[static_cast<std::size_t>(j)] = Message::alias(msg);
    }
    core_.charge_receive(r, recv_bits);
    recv(r, inbox_);
  }
}

void CliqueUnicast::deliver(std::vector<std::vector<Message>>& out,
                            const RecvFn& recv) {
  const int nn = n();
  inbox_.resize(static_cast<std::size_t>(nn));
  for (int r = 0; r < nn; ++r) {
    std::uint64_t recv_bits = 0;
    for (int j = 0; j < nn; ++j) {
      // Each message is delivered to exactly one receiver, so moving it out
      // of the outbox matrix is safe and saves the per-message copy.
      inbox_[static_cast<std::size_t>(j)] =
          std::move(out[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)]);
      recv_bits += inbox_[static_cast<std::size_t>(j)].size_bits();
    }
    core_.charge_receive(r, recv_bits);
    recv(r, inbox_);
  }
}

int unicast_payloads(CliqueUnicast& net,
                     const std::vector<std::vector<Message>>& payload,
                     std::vector<std::vector<Message>>* received) {
  const int n = net.n();
  const std::size_t b = static_cast<std::size_t>(net.bandwidth());
  CC_REQUIRE(static_cast<int>(payload.size()) == n, "payload matrix must be n x n");
  std::size_t max_len = 0;
  for (const auto& row : payload) {
    CC_REQUIRE(static_cast<int>(row.size()) == n, "payload matrix must be n x n");
    for (const auto& msg : row) max_len = std::max(max_len, msg.size_bits());
  }
  received->assign(static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  // Preallocate the assembly buffers: every received stream's final length
  // is known up front, so the chunk rounds below never reallocate.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      (*received)[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)].reserve_bits(
          payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].size_bits());
    }
  }
  const int rounds = static_cast<int>((max_len + b - 1) / b);
  for (int r = 0; r < rounds; ++r) {
    const std::size_t offset = static_cast<std::size_t>(r) * b;
    net.round_fill(
        [&](int i, Message* box) {
          for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            const Message& full = payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            if (offset >= full.size_bits()) continue;
            const std::size_t take = std::min(b, full.size_bits() - offset);
            box[j].append_slice(full, offset, take);
          }
        },
        [&](int receiver, const std::vector<Message>& inbox) {
          for (int j = 0; j < n; ++j) {
            const Message& chunk = inbox[static_cast<std::size_t>(j)];
            if (!chunk.empty()) {
              (*received)[static_cast<std::size_t>(receiver)][static_cast<std::size_t>(j)]
                  .append(chunk);
            }
          }
        });
  }
  return rounds;
}

}  // namespace cclique
