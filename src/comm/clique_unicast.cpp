#include "comm/clique_unicast.h"

#include <algorithm>

namespace cclique {

CliqueUnicast::CliqueUnicast(int n, int bandwidth) : n_(n), bandwidth_(bandwidth) {
  CC_REQUIRE(n >= 1, "need at least one player");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be at least 1 bit");
}

void CliqueUnicast::set_cut(std::vector<int> side) {
  CC_REQUIRE(static_cast<int>(side.size()) == n_, "cut assignment size mismatch");
  for (int s : side) CC_REQUIRE(s == 0 || s == 1, "cut side must be 0 or 1");
  cut_side_ = std::move(side);
}

void CliqueUnicast::round(const SendFn& send, const RecvFn& recv) {
  // Collect and validate all outboxes before any delivery: a synchronous
  // round means sends are based on pre-round state only.
  std::vector<std::vector<Message>> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    std::vector<Message> box = send(i);
    CC_MODEL(static_cast<int>(box.size()) == n_,
             "outbox must have one slot per player");
    for (int j = 0; j < n_; ++j) {
      const Message& msg = box[static_cast<std::size_t>(j)];
      if (j == i) {
        CC_MODEL(msg.empty(), "players cannot message themselves");
        continue;
      }
      CC_MODEL(msg.size_bits() <= static_cast<std::size_t>(bandwidth_),
               "per-edge bandwidth exceeded in CLIQUE-UCAST");
      stats_.total_bits += msg.size_bits();
      if (!msg.empty()) ++stats_.total_messages;
      stats_.max_edge_bits_in_round =
          std::max<std::uint64_t>(stats_.max_edge_bits_in_round, msg.size_bits());
      if (!cut_side_.empty() &&
          cut_side_[static_cast<std::size_t>(i)] != cut_side_[static_cast<std::size_t>(j)]) {
        stats_.cut_bits += msg.size_bits();
      }
    }
    out.push_back(std::move(box));
  }
  ++stats_.rounds;
  // Deliver: inbox[j] for receiver r is out[j][r].
  std::vector<Message> inbox(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    for (int j = 0; j < n_; ++j) {
      inbox[static_cast<std::size_t>(j)] = out[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
    }
    recv(r, inbox);
  }
}

int unicast_payloads(CliqueUnicast& net,
                     const std::vector<std::vector<Message>>& payload,
                     std::vector<std::vector<Message>>* received) {
  const int n = net.n();
  const std::size_t b = static_cast<std::size_t>(net.bandwidth());
  CC_REQUIRE(static_cast<int>(payload.size()) == n, "payload matrix must be n x n");
  std::size_t max_len = 0;
  for (const auto& row : payload) {
    CC_REQUIRE(static_cast<int>(row.size()) == n, "payload matrix must be n x n");
    for (const auto& msg : row) max_len = std::max(max_len, msg.size_bits());
  }
  received->assign(static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  const int rounds = static_cast<int>((max_len + b - 1) / b);
  for (int r = 0; r < rounds; ++r) {
    const std::size_t offset = static_cast<std::size_t>(r) * b;
    net.round(
        [&](int i) {
          std::vector<Message> box(static_cast<std::size_t>(n));
          for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            const Message& full = payload[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            if (offset >= full.size_bits()) continue;
            const std::size_t take = std::min(b, full.size_bits() - offset);
            Message chunk;
            for (std::size_t t = 0; t < take; ++t) chunk.push_bit(full.get(offset + t));
            box[static_cast<std::size_t>(j)] = std::move(chunk);
          }
          return box;
        },
        [&](int receiver, const std::vector<Message>& inbox) {
          for (int j = 0; j < n; ++j) {
            (*received)[static_cast<std::size_t>(receiver)][static_cast<std::size_t>(j)]
                .append(inbox[static_cast<std::size_t>(j)]);
          }
        });
  }
  return rounds;
}

}  // namespace cclique
