#include "comm/nof.h"

namespace cclique {

NofDisjointnessInstance random_nof_instance(std::size_t m, double density, Rng& rng) {
  NofDisjointnessInstance inst;
  inst.xa.resize(m);
  inst.xb.resize(m);
  inst.xc.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    inst.xa[i] = rng.bernoulli(density);
    inst.xb[i] = rng.bernoulli(density);
    inst.xc[i] = rng.bernoulli(density);
  }
  return inst;
}

NofDisjointnessInstance random_nof_disjoint(std::size_t m, double density, Rng& rng) {
  NofDisjointnessInstance inst = random_nof_instance(m, density, rng);
  for (std::size_t i = 0; i < m; ++i) {
    if (inst.xa[i] && inst.xb[i] && inst.xc[i]) {
      // Knock the element out of one uniformly chosen set.
      switch (rng.uniform(3)) {
        case 0: inst.xa[i] = false; break;
        case 1: inst.xb[i] = false; break;
        default: inst.xc[i] = false; break;
      }
    }
  }
  return inst;
}

NofDisjointnessInstance random_nof_intersecting(std::size_t m, double density,
                                                Rng& rng) {
  CC_REQUIRE(m >= 1, "universe must be nonempty");
  NofDisjointnessInstance inst = random_nof_disjoint(m, density, rng);
  const std::size_t hit = rng.uniform(m);
  inst.xa[hit] = inst.xb[hit] = inst.xc[hit] = true;
  return inst;
}

}  // namespace cclique
