// Runtime locality guard: mechanical enforcement of the simulated-clique
// memory model (the protocol-conformance analysis layer).
//
// The locality discipline (comm/model.h) says a player's callback may
// compute only from that player's own pre-round state and previously
// delivered messages. Until this subsystem existed the rule was prose — it
// was enforced by doc-comments and reviewers, and it was violated twice
// (a shared RNG in send callbacks, and a receive-callback fallback into
// another player's private splitter). This header turns the rule into a
// machine-checked invariant with two cooperating pieces:
//
//  * PlayerScope — an RAII scope the engines (comm/clique_unicast,
//    comm/clique_broadcast, comm/congest) open around every send and
//    receive callback. The scope is thread-local, so it composes with the
//    transport core's parallel send phase: each worker thread carries the
//    scope of exactly the player whose callback it is running.
//
//  * PerPlayer<T> — an ownership-tagged per-player state array (the
//    tag-on-construction helper for workload state structs). Element i is
//    owned by player i; the construction site registers with the guard.
//    Any read or write of player j's element while player i's scope is
//    active throws ModelViolation naming both players and the registration
//    site. Outside any scope (orchestrator code that sets up a simulation,
//    or "identical decode everywhere; model once" common-knowledge
//    assembly) access is unrestricted — the discipline constrains
//    *callbacks*, which is where both the model and the parallel scheduler
//    are at stake.
//
// Cost model: everything here compiles to nothing unless the build defines
// CCLIQUE_LOCALITY_ENABLED (the CCLIQUE_LOCALITY=ON CMake option / the
// `locality` preset). In the default and bench builds PlayerScope is an
// empty object, check_access is an empty inline function, and
// PerPlayer<T>::operator[] is a plain unchecked vector index — the 18
// committed bench baselines are byte-identical with the guard compiled out.
//
// What to tag: state that belongs to one simulated player (its input
// block, its candidate edge, its private sample). What NOT to tag: state
// that is common knowledge by construction (announced fragment ids,
// all-gathered splitters/counts after their exchange round) — tagging it
// would outlaw the legitimate "model once" decode pattern. See DESIGN.md
// §2.5 for the full rules and a worked example.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace cclique {
namespace locality {

/// Sentinel: no player scope is active on this thread.
constexpr int kNoPlayer = -1;

#ifdef CCLIQUE_LOCALITY_ENABLED

namespace detail {
/// The active player scope of this thread (kNoPlayer when none). Worker
/// threads of the parallel send phase each run one player's callback at a
/// time, so a plain thread-local integer is exact, not approximate.
int current_player() noexcept;
void set_current_player(int player) noexcept;
/// Throws ModelViolation naming the scoped player, the owner, and the
/// registration site of the violated state.
[[noreturn]] void throw_cross_player_access(int scope_player, int owner,
                                            const char* site);
/// Throws ModelViolation for an action performed under the wrong scope
/// (e.g. a NOF blackboard write attributed to a different party).
[[noreturn]] void throw_wrong_actor(int scope_player, int actor,
                                    const char* what);
}  // namespace detail

/// RAII per-player scope. The engines open one around each callback; it
/// nests safely (the previous scope is restored on destruction), so an
/// engine driven from inside another engine's scope — which the discipline
/// forbids anyway — cannot corrupt the tracking.
class PlayerScope {
 public:
  explicit PlayerScope(int player) noexcept
      : prev_(detail::current_player()) {
    detail::set_current_player(player);
  }
  ~PlayerScope() { detail::set_current_player(prev_); }

  PlayerScope(const PlayerScope&) = delete;
  PlayerScope& operator=(const PlayerScope&) = delete;

 private:
  int prev_;
};

/// The player whose scope is active on this thread, or kNoPlayer.
inline int current_player() noexcept { return detail::current_player(); }

/// True iff the guard is compiled in (the CCLIQUE_LOCALITY=ON build).
constexpr bool enabled() noexcept { return true; }

/// Core check: accessing state owned by `owner` is legal outside any scope
/// and inside the owner's own scope; anything else is a model violation.
inline void check_access(int owner, const char* site) {
  const int p = detail::current_player();
  if (p != kNoPlayer && p != owner) {
    detail::throw_cross_player_access(p, owner, site);
  }
}

/// Checks that an action attributed to player `actor` is not being
/// performed under some other player's scope (the PartyMeter/NOF-blackboard
/// conformance rule: you may only spend your own budget).
inline void check_actor(int actor, const char* what) {
  const int p = detail::current_player();
  if (p != kNoPlayer && p != actor) {
    detail::throw_wrong_actor(p, actor, what);
  }
}

#else  // !CCLIQUE_LOCALITY_ENABLED — the zero-cost build

class PlayerScope {
 public:
  explicit PlayerScope(int) noexcept {}
  PlayerScope(const PlayerScope&) = delete;
  PlayerScope& operator=(const PlayerScope&) = delete;
};

inline int current_player() noexcept { return kNoPlayer; }
constexpr bool enabled() noexcept { return false; }
inline void check_access(int /*owner*/, const char* /*site*/) noexcept {}
inline void check_actor(int /*actor*/, const char* /*what*/) noexcept {}

#endif  // CCLIQUE_LOCALITY_ENABLED

/// Ownership-tagged per-player state: element i belongs to player i. The
/// registration site string (use CC_LOCALITY_SITE) is carried into every
/// violation message so the report names the state, not just the indices.
///
/// Indexing takes the *player id* directly (no size_t casts at call sites);
/// ids are bounds-checked in every build — the guard must never turn a
/// locality bug into an out-of-bounds read.
template <typename T>
class PerPlayer {
 public:
  PerPlayer() = default;
  /// n default-constructed elements registered at `site`.
  PerPlayer(int n, const char* site)
      : data_(checked_size(n)), site_(site) {}
  /// n copies of `init` registered at `site`.
  PerPlayer(int n, const T& init, const char* site)
      : data_(checked_size(n), init), site_(site) {}

  int size() const { return static_cast<int>(data_.size()); }

  /// Checked access by player id (see check_access for the scope rules).
  T& operator[](int player) {
    bounds(player);
    locality::check_access(player, site_);
    return data_[static_cast<std::size_t>(player)];
  }
  const T& operator[](int player) const {
    bounds(player);
    locality::check_access(player, site_);
    return data_[static_cast<std::size_t>(player)];
  }

  /// The current scope's own element. Requires an active scope (even in
  /// guard-off builds this is only called from scoped code, where the
  /// caller knows its id — prefer operator[] with the callback parameter).
  T& mine() {
    const int p = locality::current_player();
    CC_REQUIRE(p != kNoPlayer, "PerPlayer::mine() needs an active PlayerScope");
    return (*this)[p];
  }

  /// Unchecked read-only view for orchestrator-level assembly *after* the
  /// exchange that made the contents common knowledge. Never call this from
  /// a callback — the whole point is that callbacks go through operator[].
  const std::vector<T>& raw() const { return data_; }

  /// Moves the storage out (the "private state became common knowledge and
  /// now lives in the result struct" hand-off).
  std::vector<T> take() { return std::move(data_); }

  const char* site() const { return site_; }

 private:
  static std::size_t checked_size(int n) {
    CC_REQUIRE(n >= 0, "PerPlayer size must be non-negative");
    return static_cast<std::size_t>(n);
  }
  void bounds(int player) const {
    CC_REQUIRE(player >= 0 && player < size(),
               "PerPlayer index is not a valid player id");
  }

  std::vector<T> data_;
  const char* site_ = "<unregistered>";
};

}  // namespace locality
}  // namespace cclique

#define CC_LOCALITY_STR_IMPL(x) #x
#define CC_LOCALITY_STR(x) CC_LOCALITY_STR_IMPL(x)

/// Registration-site literal for PerPlayer: a human-readable name plus the
/// construction coordinates, e.g. "local sorted blocks @ sorting.cpp:52".
#define CC_LOCALITY_SITE(name) name " @ " __FILE__ ":" CC_LOCALITY_STR(__LINE__)
