#include "analysis/locality_guard.h"

#ifdef CCLIQUE_LOCALITY_ENABLED

#include <sstream>

namespace cclique {
namespace locality {
namespace detail {

namespace {
/// One slot per thread: the transport core's workers each execute a single
/// player's callback at a time, so the active scope is a property of the
/// thread, never shared.
thread_local int tls_current_player = kNoPlayer;
}  // namespace

int current_player() noexcept { return tls_current_player; }

void set_current_player(int player) noexcept { tls_current_player = player; }

void throw_cross_player_access(int scope_player, int owner, const char* site) {
  std::ostringstream os;
  os << "locality violation: player " << scope_player
     << "'s callback accessed state owned by player " << owner
     << " (registered: " << site
     << ") — callbacks may touch only their own player's pre-round state";
  throw ModelViolation(os.str());
}

void throw_wrong_actor(int scope_player, int actor, const char* what) {
  std::ostringstream os;
  os << "locality violation: " << what << " attributed to player " << actor
     << " was performed inside player " << scope_player << "'s scope";
  throw ModelViolation(os.str());
}

}  // namespace detail
}  // namespace locality
}  // namespace cclique

#else

// The guard compiles to nothing in default builds; this translation unit
// intentionally has no symbols then (everything in the header is inline).

#endif  // CCLIQUE_LOCALITY_ENABLED
