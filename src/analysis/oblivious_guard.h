// Runtime obliviousness guard: mechanical enforcement of the data-oblivious
// schedule contract (the second protocol-conformance analysis layer, beside
// the locality guard).
//
// Every round/bit bound in this repo — the 6·n^{1/3} block-MM schedule, the
// Lotker phase caps, the APSP squaring plan — is sound only because
// communication *schedules* are data-oblivious: chunk lengths, round counts,
// and plan arguments are functions of (n, element width w, bandwidth b)
// alone, never of payload values. Until this subsystem existed the rule was
// prose (DESIGN.md §2.2/§2.4) plus per-protocol CC_CHECKs. This header turns
// it into a machine-checked invariant with three cooperating pieces:
//
//  * source_touch — payload-bearing inputs register their read accessors as
//    tainted sources: Mat61/TropicalMat/F2Matrix entry/row/storage reads and
//    the MST edge-weight ingestion call it (see CC_OBLIVIOUS_SITE). Reading
//    a source is always legal in orchestrator and local-compute code; the
//    guard constrains *where* sources may be read, not what is done with
//    them.
//
//  * SinkScope — an RAII scope marking a region whose outputs become
//    lengths, round counts, or plan fields: every `*_plan` function body,
//    the payload drivers' chunk schedules (unicast_payloads,
//    unicast_payloads_relayed, broadcast_payloads), the router's relay
//    schedules, and — opened by the engines themselves — every send/fill
//    callback. The scope is thread-local, so it composes with the transport
//    core's parallel send phase exactly like locality::PlayerScope. A
//    source_touch while a SinkScope is active throws ModelViolation naming
//    the source site and the sink site.
//
//  * DeclaredDependence — the explicit escape hatch the ROADMAP's sparse /
//    sharded-matrix refactor will use: schedules whose lengths legitimately
//    depend on data-derived but common-knowledge quantities (nnz counts,
//    live-fragment counts) open `auto dd = oblivious::declared_dependence(
//    CC_OBLIVIOUS_SITE("..."))` around the dependent computation. Declared
//    reads are counted (declared_use_count) instead of throwing, so tests
//    and audits can see every declared boundary exercised.
//
// Why dynamic-extent taint (read-inside-sink) instead of value-level taint:
// tracking taint through arithmetic would need a shadow bit on every word.
// The repo's idiom makes the cheap rule exact: payload values are
// pre-serialized into Message objects *before* a round (comm/model.h), so
// send/fill callbacks and plan bodies have no legitimate reason to touch
// payload storage at all. The completeness gap (a tainted value laundered
// through a variable before the sink) is closed by the static analyzer
// (tools/cc_oblivious.py), which follows flows the runtime cannot, and by
// the every-run plan CC_CHECKs (measured == (n, w, b)-only plan). See
// DESIGN.md §2.7 for the full contract.
//
// Cost model: identical to the locality guard. Everything here compiles to
// nothing unless the build defines CCLIQUE_OBLIVIOUS_ENABLED (the
// CCLIQUE_OBLIVIOUS=ON CMake option / the `oblivious` preset): SinkScope
// and DeclaredDependence are empty objects, source_touch is an empty inline
// function, and the 18 committed bench baselines are byte-identical with
// the guard compiled out.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace cclique {
namespace oblivious {

#ifdef CCLIQUE_OBLIVIOUS_ENABLED

namespace detail {
/// The innermost active sink scope of this thread (nullptr when none).
const char* active_sink() noexcept;
void set_active_sink(const char* site) noexcept;
/// The innermost active declared-dependence site (nullptr when none).
const char* active_declaration() noexcept;
void set_active_declaration(const char* site) noexcept;
/// Records one suppressed (declared) source read. Thread-safe.
void count_declared_use() noexcept;
/// Throws ModelViolation naming both coordinates of the taint flow.
[[noreturn]] void throw_tainted_read(const char* source_site,
                                     const char* sink_site);
}  // namespace detail

/// RAII length/round-decision scope. Engines open one around each send/fill
/// callback; plan functions and payload drivers open one around their body.
/// Nests safely (the previous sink is restored on destruction) — the
/// innermost sink is the one a violation names.
class SinkScope {
 public:
  explicit SinkScope(const char* site) noexcept
      : prev_(detail::active_sink()) {
    detail::set_active_sink(site);
  }
  ~SinkScope() { detail::set_active_sink(prev_); }

  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  const char* prev_;
};

/// RAII declared-dependence region: while alive on this thread, source
/// reads inside sinks are counted instead of thrown. Obtain one through
/// declared_dependence() so call sites read as declarations.
class DeclaredDependence {
 public:
  explicit DeclaredDependence(const char* site) noexcept
      : prev_(detail::active_declaration()) {
    detail::set_active_declaration(site);
  }
  ~DeclaredDependence() { detail::set_active_declaration(prev_); }

  DeclaredDependence(const DeclaredDependence&) = delete;
  DeclaredDependence& operator=(const DeclaredDependence&) = delete;

 private:
  const char* prev_;
};

/// True iff the guard is compiled in (the CCLIQUE_OBLIVIOUS=ON build).
constexpr bool enabled() noexcept { return true; }

/// The innermost active sink site on this thread, or nullptr.
inline const char* active_sink() noexcept { return detail::active_sink(); }

/// Core check, called by every tainted read accessor: free outside sinks;
/// counted under a declared dependence; a ModelViolation otherwise.
inline void source_touch(const char* site) {
  const char* sink = detail::active_sink();
  if (sink == nullptr) return;
  if (detail::active_declaration() != nullptr) {
    detail::count_declared_use();
    return;
  }
  detail::throw_tainted_read(site, sink);
}

/// Process-wide count of declared (suppressed) source reads — lets tests
/// assert the escape hatch actually fired rather than the read being legal
/// for some other reason.
std::uint64_t declared_use_count() noexcept;

#else  // !CCLIQUE_OBLIVIOUS_ENABLED — the zero-cost build

class SinkScope {
 public:
  explicit SinkScope(const char*) noexcept {}
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;
};

class DeclaredDependence {
 public:
  explicit DeclaredDependence(const char*) noexcept {}
  DeclaredDependence(const DeclaredDependence&) = delete;
  DeclaredDependence& operator=(const DeclaredDependence&) = delete;
};

constexpr bool enabled() noexcept { return false; }
inline const char* active_sink() noexcept { return nullptr; }
inline void source_touch(const char* /*site*/) noexcept {}
inline std::uint64_t declared_use_count() noexcept { return 0; }

#endif  // CCLIQUE_OBLIVIOUS_ENABLED

/// Factory so declarations read as such at call sites:
///   auto dd = oblivious::declared_dependence(
///       CC_OBLIVIOUS_SITE("sparse schedule depends on announced nnz"));
/// (Guaranteed copy elision: DeclaredDependence itself is non-copyable.)
inline DeclaredDependence declared_dependence(const char* site) noexcept {
  return DeclaredDependence(site);
}

}  // namespace oblivious
}  // namespace cclique

#define CC_OBLIVIOUS_STR_IMPL(x) #x
#define CC_OBLIVIOUS_STR(x) CC_OBLIVIOUS_STR_IMPL(x)

/// Site literal for sources, sinks, and declared dependences: a
/// human-readable name plus the registration coordinates, e.g.
/// "Mat61::get @ linalg/mat61.h:41".
#define CC_OBLIVIOUS_SITE(name) \
  name " @ " __FILE__ ":" CC_OBLIVIOUS_STR(__LINE__)
