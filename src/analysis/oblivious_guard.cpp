#include "analysis/oblivious_guard.h"

#ifdef CCLIQUE_OBLIVIOUS_ENABLED

#include <atomic>
#include <sstream>

namespace cclique {
namespace oblivious {
namespace detail {

namespace {
/// One slot per thread, like the locality guard's player scope: the
/// transport core's workers each execute a single player's callback at a
/// time, so the active sink is a property of the thread, never shared.
thread_local const char* tls_active_sink = nullptr;
thread_local const char* tls_active_declaration = nullptr;
/// Process-wide: declared reads may happen concurrently on send-phase
/// workers, so the audit counter is atomic (relaxed — it is a tally, not a
/// synchronization point).
std::atomic<std::uint64_t> g_declared_uses{0};
}  // namespace

const char* active_sink() noexcept { return tls_active_sink; }

void set_active_sink(const char* site) noexcept { tls_active_sink = site; }

const char* active_declaration() noexcept { return tls_active_declaration; }

void set_active_declaration(const char* site) noexcept {
  tls_active_declaration = site;
}

void count_declared_use() noexcept {
  g_declared_uses.fetch_add(1, std::memory_order_relaxed);
}

void throw_tainted_read(const char* source_site, const char* sink_site) {
  std::ostringstream os;
  os << "obliviousness violation: payload source (" << source_site
     << ") read inside length/round sink (" << sink_site
     << ") — schedules must be functions of (n, w, b) alone; wrap a "
        "legitimate data-dependent schedule in "
        "oblivious::declared_dependence(site)";
  throw ModelViolation(os.str());
}

}  // namespace detail

std::uint64_t declared_use_count() noexcept {
  return detail::g_declared_uses.load(std::memory_order_relaxed);
}

}  // namespace oblivious
}  // namespace cclique

#else

// The guard compiles to nothing in default builds; this translation unit
// intentionally has no symbols then (everything in the header is inline).

#endif  // CCLIQUE_OBLIVIOUS_ENABLED
