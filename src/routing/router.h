// Balanced routing on the unicast congested clique (Lenzen [28] substrate).
//
// The routing task: each player i holds a multiset of (destination, payload)
// messages; a *demand* is c-balanced when every player sends at most c*n
// messages and every player is the destination of at most c*n messages.
// Lenzen's PODC'13 result delivers any O(n)-balanced demand in O(1) rounds
// deterministically. The paper uses it as a black box in Theorem 2 (light
// wires, input rebalancing, operator outputs).
//
// We implement three routers over the same interface:
//  * DirectRouter — sends everything straight to its destination; rounds =
//    max per-edge queue (the naive baseline a congested edge punishes);
//  * TwoPhaseRouter — deterministic Lenzen-style relay routing. One
//    announcement round makes the demand matrix common knowledge (message
//    counts only, O(n log n) bits per player spread over its n links);
//    then every player locally computes the same global schedule: all
//    messages are ordered by (destination, sender, k) and slot t is relayed
//    through player t mod n. Phase 1 scatters, phase 2 delivers. Both
//    phases have per-edge load <= ceil(M/n) + 1 where M bounds per-player
//    demand, so c-balanced demands route in O(c) rounds — the property
//    Theorem 2 consumes. (Substitution for Lenzen's sorting-based schedule;
//    see DESIGN.md §4.)
//  * ValiantRouter — randomized relay choice (ablation baseline; O(c) rounds
//    w.h.p. with slightly worse constants).
//
// Payloads are fixed-width bit strings; a router run reports exact rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/clique_unicast.h"
#include "util/rng.h"

namespace cclique {

/// One message in a routing demand.
struct RoutedMessage {
  int source = 0;
  int dest = 0;
  std::uint64_t payload = 0;  ///< payload value, `payload_bits` wide
};

/// A routing demand: messages plus the payload width in bits.
struct RoutingDemand {
  std::vector<RoutedMessage> messages;
  int payload_bits = 0;

  /// Max over players of outgoing message count.
  std::size_t max_out(int n) const;
  /// Max over players of incoming message count.
  std::size_t max_in(int n) const;
};

/// Result of a routing run.
struct RoutingResult {
  int rounds = 0;
  /// delivered[v] lists (source, payload) pairs received by player v, in
  /// arbitrary order.
  std::vector<std::vector<std::pair<int, std::uint64_t>>> delivered;
};

/// Naive direct delivery. Rounds = max number of messages sharing one
/// directed (source, dest) edge, times ceil(width/b).
RoutingResult route_direct(CliqueUnicast& net, const RoutingDemand& demand);

/// Deterministic two-phase relay routing (Lenzen-style; see header comment).
/// Requires every payload to fit `payload_bits` bits. Rounds =
/// O((max_load/n + 1) * ceil((payload_bits + addressing) / b)).
RoutingResult route_two_phase(CliqueUnicast& net, const RoutingDemand& demand);

/// Randomized Valiant-style relay routing: each message picks a uniform
/// relay. With balanced demands the maximum relay congestion is
/// O(c + log n / log log n) w.h.p.
RoutingResult route_valiant(CliqueUnicast& net, const RoutingDemand& demand, Rng& rng);

}  // namespace cclique
