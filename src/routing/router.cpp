#include "routing/router.h"

#include <algorithm>
#include <numeric>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "util/math_util.h"

namespace cclique {

namespace {

std::vector<std::size_t> out_counts(const RoutingDemand& d, int n) {
  std::vector<std::size_t> c(static_cast<std::size_t>(n), 0);
  for (const auto& m : d.messages) {
    CC_REQUIRE(m.source >= 0 && m.source < n && m.dest >= 0 && m.dest < n,
               "message endpoints out of range");
    ++c[static_cast<std::size_t>(m.source)];
  }
  return c;
}

std::vector<std::size_t> in_counts(const RoutingDemand& d, int n) {
  std::vector<std::size_t> c(static_cast<std::size_t>(n), 0);
  for (const auto& m : d.messages) ++c[static_cast<std::size_t>(m.dest)];
  return c;
}

void check_payload_widths(const RoutingDemand& d) {
  CC_REQUIRE(d.payload_bits >= 0 && d.payload_bits <= 64,
             "payload width must be in [0, 64]");
  for (const auto& m : d.messages) {
    CC_REQUIRE(d.payload_bits == 64 || (m.payload >> d.payload_bits) == 0,
               "payload does not fit declared width");
  }
}

// Runs the relay plan: phase 1 ships [dest, payload] records to relays,
// phase 2 ships [source, payload] records to destinations. `relay_of[k]`
// gives message k's relay. Shared by the deterministic and randomized
// routers.
RoutingResult run_relay_plan(CliqueUnicast& net, const RoutingDemand& demand,
                             const std::vector<int>& relay_of) {
  const int n = net.n();
  const int addr = bits_for(static_cast<std::uint64_t>(n));
  const int w = demand.payload_bits;

  // Phase 1: source -> relay, record = [dest | payload].
  std::vector<std::vector<Message>> p1(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  // Self-relay records (relay == source) skip the wire. Every relay holds
  // ~M/n of the demand; reserving that up front keeps the hold lists from
  // reallocating while the chunk rounds run.
  locality::PerPlayer<std::vector<RoutedMessage>> held(
      n, CC_LOCALITY_SITE("relay's held records"));
  for (int r = 0; r < n; ++r) {
    held[r].reserve(demand.messages.size() / static_cast<std::size_t>(n) + 1);
  }
  for (std::size_t k = 0; k < demand.messages.size(); ++k) {
    const auto& m = demand.messages[k];
    const int r = relay_of[k];
    if (r == m.source) {
      held[r].push_back(m);
      continue;
    }
    Message& stream = p1[static_cast<std::size_t>(m.source)][static_cast<std::size_t>(r)];
    stream.push_uint(static_cast<std::uint64_t>(m.dest), addr);
    stream.push_uint(m.payload, w);
  }
  std::vector<std::vector<Message>> recv1;
  int rounds = unicast_payloads(net, p1, &recv1);

  for (int r = 0; r < n; ++r) {
    for (int src = 0; src < n; ++src) {
      const Message& stream = recv1[static_cast<std::size_t>(r)][static_cast<std::size_t>(src)];
      BitReader reader(stream);
      while (reader.remaining() > 0) {
        RoutedMessage m;
        m.source = src;
        m.dest = static_cast<int>(reader.read_uint(addr));
        m.payload = reader.read_uint(w);
        held[r].push_back(m);
      }
    }
  }

  // Phase 2: relay -> dest, record = [source | payload].
  std::vector<std::vector<Message>> p2(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  RoutingResult result;
  result.delivered.assign(static_cast<std::size_t>(n), {});
  for (int r = 0; r < n; ++r) {
    for (const auto& m : held[r]) {
      if (m.dest == r) {
        result.delivered[static_cast<std::size_t>(r)].emplace_back(m.source, m.payload);
        continue;
      }
      Message& stream = p2[static_cast<std::size_t>(r)][static_cast<std::size_t>(m.dest)];
      stream.push_uint(static_cast<std::uint64_t>(m.source), addr);
      stream.push_uint(m.payload, w);
    }
  }
  std::vector<std::vector<Message>> recv2;
  rounds += unicast_payloads(net, p2, &recv2);

  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < n; ++r) {
      const Message& stream = recv2[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)];
      BitReader reader(stream);
      while (reader.remaining() > 0) {
        const int src = static_cast<int>(reader.read_uint(addr));
        const std::uint64_t payload = reader.read_uint(w);
        result.delivered[static_cast<std::size_t>(j)].emplace_back(src, payload);
      }
    }
  }
  result.rounds = rounds;
  return result;
}

}  // namespace

std::size_t RoutingDemand::max_out(int n) const {
  auto c = out_counts(*this, n);
  return c.empty() ? 0 : *std::max_element(c.begin(), c.end());
}

std::size_t RoutingDemand::max_in(int n) const {
  auto c = in_counts(*this, n);
  return c.empty() ? 0 : *std::max_element(c.begin(), c.end());
}

RoutingResult route_direct(CliqueUnicast& net, const RoutingDemand& demand) {
  check_payload_widths(demand);
  const int n = net.n();
  const int w = demand.payload_bits;
  std::vector<std::vector<Message>> p(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  RoutingResult result;
  result.delivered.assign(static_cast<std::size_t>(n), {});
  for (const auto& m : demand.messages) {
    if (m.dest == m.source) {
      result.delivered[static_cast<std::size_t>(m.dest)].emplace_back(m.source, m.payload);
      continue;
    }
    p[static_cast<std::size_t>(m.source)][static_cast<std::size_t>(m.dest)].push_uint(m.payload, w);
  }
  std::vector<std::vector<Message>> recv;
  result.rounds = unicast_payloads(net, p, &recv);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const Message& stream = recv[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      BitReader reader(stream);
      while (reader.remaining() > 0) {
        result.delivered[static_cast<std::size_t>(j)].emplace_back(i, reader.read_uint(w));
      }
    }
  }
  return result;
}

RoutingResult route_two_phase(CliqueUnicast& net, const RoutingDemand& demand) {
  check_payload_widths(demand);
  const int n = net.n();
  // Offline relay schedule, computed identically by every player from the
  // (common-knowledge) demand pattern. A fractional assignment sending
  // d_ij/n of each (i,j) group to every relay meets the per-(sender,relay)
  // and per-(relay,dest) caps ceil(M_i/n), ceil(m_j/n); flow integrality
  // guarantees an integral schedule exists. The greedy below tracks the
  // fractional optimum by always placing the next message on the relay
  // minimizing its two incident edge loads.
  std::vector<int> relay_of(demand.messages.size(), 0);
  {
    // Schedule-computation sink: the relay assignment may read the demand
    // *pattern* (sources, destinations — common knowledge) but never the
    // message payloads. run_relay_plan below is the executor and is exempt.
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("route_two_phase relay schedule"));
    std::vector<std::vector<std::uint32_t>> load_out(
        static_cast<std::size_t>(n), std::vector<std::uint32_t>(static_cast<std::size_t>(n), 0));
    std::vector<std::vector<std::uint32_t>> load_in(
        static_cast<std::size_t>(n), std::vector<std::uint32_t>(static_cast<std::size_t>(n), 0));

    // Deterministic processing order: sort message indices by (dest, source).
    std::vector<std::size_t> order(demand.messages.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto& ma = demand.messages[a];
      const auto& mb = demand.messages[b];
      if (ma.dest != mb.dest) return ma.dest < mb.dest;
      if (ma.source != mb.source) return ma.source < mb.source;
      return a < b;
    });

    for (std::size_t k : order) {
      const auto& m = demand.messages[k];
      int best = -1;
      std::uint32_t best_max = 0, best_sum = 0;
      for (int r = 0; r < n; ++r) {
        const std::uint32_t lo = load_out[static_cast<std::size_t>(m.source)][static_cast<std::size_t>(r)];
        const std::uint32_t li = load_in[static_cast<std::size_t>(r)][static_cast<std::size_t>(m.dest)];
        const std::uint32_t mx = std::max(lo, li);
        const std::uint32_t sum = lo + li;
        if (best < 0 || mx < best_max || (mx == best_max && sum < best_sum)) {
          best = r;
          best_max = mx;
          best_sum = sum;
        }
      }
      relay_of[k] = best;
      ++load_out[static_cast<std::size_t>(m.source)][static_cast<std::size_t>(best)];
      ++load_in[static_cast<std::size_t>(best)][static_cast<std::size_t>(m.dest)];
    }
  }
  return run_relay_plan(net, demand, relay_of);
}

RoutingResult route_valiant(CliqueUnicast& net, const RoutingDemand& demand, Rng& rng) {
  check_payload_widths(demand);
  const int n = net.n();
  std::vector<int> relay_of(demand.messages.size());
  {
    // Randomized schedules are still oblivious: the draws depend on the rng
    // stream and n, never on payloads, so Rng is deliberately not a taint
    // source and this sink stays quiet.
    oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("route_valiant relay draws"));
    for (auto& r : relay_of) r = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
  }
  return run_relay_plan(net, demand, relay_of);
}

}  // namespace cclique
