#include "core/circuit_sim.h"

#include <algorithm>

#include "routing/router.h"
#include "util/math_util.h"

namespace cclique {

CircuitSimulation::CircuitSimulation(const Circuit& circuit, int n_players,
                                     AssignPolicy policy)
    : circuit_(&circuit) {
  CC_REQUIRE(n_players >= 2, "need at least two players");
  const std::size_t n = static_cast<std::size_t>(n_players);
  const std::size_t wires = circuit.num_wires();
  plan_.n_players = n_players;
  plan_.s = static_cast<int>(std::max<std::size_t>(1, ceil_div(wires, n * n)));

  // Gate weights w(G) = |in(G)| + |out(G)|.
  const std::vector<int> fan_out = circuit.fan_outs();
  const int gates = circuit.num_gates();
  std::vector<std::size_t> weight(static_cast<std::size_t>(gates));
  for (int g = 0; g < gates; ++g) {
    weight[static_cast<std::size_t>(g)] =
        circuit.gate(g).inputs.size() + static_cast<std::size_t>(fan_out[static_cast<std::size_t>(g)]);
    plan_.gate_b = std::max(plan_.gate_b, circuit.separability_bits(g));
  }

  // Heavy gates (w >= 2ns) each get their own player; with total weight
  // 2N <= 2n^2 s there are at most n of them.
  plan_.heavy_threshold = 2 * n * static_cast<std::size_t>(plan_.s);
  plan_.owner.assign(static_cast<std::size_t>(gates), -1);
  int next_heavy_player = 0;
  for (int g = 0; g < gates; ++g) {
    if (weight[static_cast<std::size_t>(g)] >= plan_.heavy_threshold) {
      CC_CHECK(next_heavy_player < n_players,
               "more heavy gates than players — weight accounting broken");
      plan_.owner[static_cast<std::size_t>(g)] = next_heavy_player++;
      ++plan_.heavy_gates;
    }
  }

  // Light gates: greedy first-fit against the 4ns cap (existence argument in
  // the paper: a light gate always fits somewhere).
  const std::size_t cap = 2 * plan_.heavy_threshold;  // 4ns
  std::vector<std::size_t> light_load(n, 0);
  int cursor = 0;
  for (int g = 0; g < gates; ++g) {
    if (plan_.owner[static_cast<std::size_t>(g)] >= 0) continue;
    const std::size_t w = weight[static_cast<std::size_t>(g)];
    int placed = -1;
    for (int probe = 0; probe < n_players; ++probe) {
      const int p = (cursor + probe) % n_players;
      if (light_load[static_cast<std::size_t>(p)] + w <= cap) {
        placed = p;
        break;
      }
    }
    CC_CHECK(placed >= 0, "no player can host a light gate — cap accounting broken");
    plan_.owner[static_cast<std::size_t>(g)] = placed;
    light_load[static_cast<std::size_t>(placed)] += w;
    plan_.max_light_weight = std::max(plan_.max_light_weight, light_load[static_cast<std::size_t>(placed)]);
    if (policy == AssignPolicy::kRotating) cursor = (placed + 1) % n_players;
    // kFirstFit keeps the cursor at 0 between gates — the paper's literal
    // packing, which concentrates consecutive gates on one player.
    if (policy == AssignPolicy::kFirstFit) cursor = 0;
  }

  const int record_bits = bits_for(static_cast<std::uint64_t>(std::max(1, gates))) + 1;
  const int input_record_bits =
      bits_for(static_cast<std::uint64_t>(std::max(1, circuit.num_inputs()))) + 1;
  plan_.recommended_bandwidth =
      std::max({plan_.gate_b, record_bits, input_record_bits, 1});
}

CircuitSimResult CircuitSimulation::run(CliqueUnicast& net,
                                        const std::vector<bool>& inputs,
                                        const std::vector<int>& input_owner,
                                        SimRouter router, Rng* valiant_rng) const {
  CC_REQUIRE(router != SimRouter::kValiant || valiant_rng != nullptr,
             "the valiant router needs an Rng");
  auto route = [&](CliqueUnicast& engine, const RoutingDemand& demand) {
    switch (router) {
      case SimRouter::kDirect:
        return route_direct(engine, demand);
      case SimRouter::kValiant:
        return route_valiant(engine, demand, *valiant_rng);
      case SimRouter::kTwoPhase:
        break;
    }
    return route_two_phase(engine, demand);
  };
  const Circuit& c = *circuit_;
  const int n = plan_.n_players;
  CC_REQUIRE(net.n() == n, "engine size mismatch");
  CC_REQUIRE(static_cast<int>(inputs.size()) == c.num_inputs(), "input count mismatch");
  CC_REQUIRE(input_owner.size() == inputs.size(), "one owner per input");

  const int gates = c.num_gates();
  const int gate_addr = bits_for(static_cast<std::uint64_t>(std::max(1, gates)));
  const int input_addr = bits_for(static_cast<std::uint64_t>(std::max(1, c.num_inputs())));

  // Per-player knowledge of gate values: know[p][gate] -> value.
  std::vector<std::unordered_map<int, bool>> know(static_cast<std::size_t>(n));
  auto knows = [&](int p, int g) {
    return know[static_cast<std::size_t>(p)].count(g) != 0;
  };
  auto value_at = [&](int p, int g) -> bool {
    auto it = know[static_cast<std::size_t>(p)].find(g);
    CC_CHECK(it != know[static_cast<std::size_t>(p)].end(),
             "player missing a value the schedule says it has");
    return it->second;
  };

  // Constants are common knowledge; seed them everywhere they're owned or
  // consumed (free: the circuit itself is common knowledge).
  for (int g = 0; g < gates; ++g) {
    if (c.gate(g).kind == GateKind::kConst) {
      for (int p = 0; p < n; ++p) know[static_cast<std::size_t>(p)][g] = c.gate(g).const_value;
    }
  }

  // Stage 0: route input values from their holders to their assigned owners
  // (the paper's final remark in the proof: Lenzen routing on the
  // roughly-balanced input partition). Record = [input index | value].
  {
    RoutingDemand demand;
    demand.payload_bits = input_addr + 1;
    for (int i = 0; i < c.num_inputs(); ++i) {
      const int gate_id = c.input_ids()[static_cast<std::size_t>(i)];
      const int from = input_owner[static_cast<std::size_t>(i)];
      const int to = plan_.owner[static_cast<std::size_t>(gate_id)];
      CC_REQUIRE(from >= 0 && from < n, "input owner out of range");
      const std::uint64_t payload =
          (static_cast<std::uint64_t>(i) << 1) | (inputs[static_cast<std::size_t>(i)] ? 1 : 0);
      if (from == to) {
        know[static_cast<std::size_t>(to)][gate_id] = inputs[static_cast<std::size_t>(i)];
      } else {
        demand.messages.push_back(RoutedMessage{from, to, payload});
      }
    }
    RoutingResult routed = route(net, demand);
    for (int p = 0; p < n; ++p) {
      for (const auto& [src, payload] : routed.delivered[static_cast<std::size_t>(p)]) {
        (void)src;
        const int idx = static_cast<int>(payload >> 1);
        const int gate_id = c.input_ids()[static_cast<std::size_t>(idx)];
        know[static_cast<std::size_t>(p)][gate_id] = (payload & 1) != 0;
      }
    }
  }

  // Precompute consumers of each gate, and layers.
  const auto layers = c.layers();
  // Heavy-output forwarding dedup: forwarded[gate] marks players already
  // holding that heavy gate's value.
  std::unordered_map<int, std::vector<bool>> forwarded;

  const std::vector<int> fan_out = c.fan_outs();
  std::vector<bool> heavy(static_cast<std::size_t>(gates), false);
  for (int g = 0; g < gates; ++g) {
    heavy[static_cast<std::size_t>(g)] =
        c.gate(g).inputs.size() + static_cast<std::size_t>(fan_out[static_cast<std::size_t>(g)]) >=
        plan_.heavy_threshold;
  }

  for (std::size_t layer = 1; layer < layers.size(); ++layer) {
    // ---- Phase (a): heavy-gate aggregation -------------------------------
    // For each heavy gate in this layer, each player owning some of its
    // in-wires sends the Definition 1 partial aggregate to the gate owner.
    // A player owns at most one heavy gate, so aggregates on an edge are
    // unambiguous without addressing.
    {
      std::vector<std::vector<Message>> payload(
          static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
      // (gate, sender) -> (positions, values) accumulated locally.
      struct Part {
        std::vector<int> positions;
        std::vector<bool> values;
      };
      std::vector<std::unordered_map<int, Part>> parts(static_cast<std::size_t>(n));
      bool any_heavy = false;
      for (int g : layers[layer]) {
        if (!heavy[static_cast<std::size_t>(g)]) continue;
        any_heavy = true;
        const Gate& gate = c.gate(g);
        for (std::size_t pos = 0; pos < gate.inputs.size(); ++pos) {
          const int src = gate.inputs[pos];
          const int p = plan_.owner[static_cast<std::size_t>(src)];
          Part& part = parts[static_cast<std::size_t>(p)][g];
          part.positions.push_back(static_cast<int>(pos));
          part.values.push_back(value_at(p, src));
        }
      }
      if (any_heavy) {
        // Serialize: each sender has at most one aggregate per heavy gate;
        // heavy gates have distinct owners, so at most one aggregate per
        // (sender, receiver) edge per layer.
        std::vector<std::unordered_map<int, PartAggregate>> owner_parts(
            static_cast<std::size_t>(n));  // receiver -> (gate -> aggregate), local sides
        for (int p = 0; p < n; ++p) {
          for (auto& [g, part] : parts[static_cast<std::size_t>(p)]) {
            const PartAggregate agg = c.partial_aggregate(g, part.positions, part.values);
            const int dest = plan_.owner[static_cast<std::size_t>(g)];
            if (dest == p) {
              owner_parts[static_cast<std::size_t>(dest)][g] = agg;  // no wire needed
              continue;
            }
            Message m;
            m.push_uint(agg.value, agg.bits);
            CC_CHECK(payload[static_cast<std::size_t>(p)][static_cast<std::size_t>(dest)].empty(),
                     "two heavy aggregates on one edge in one layer");
            payload[static_cast<std::size_t>(p)][static_cast<std::size_t>(dest)] = std::move(m);
          }
        }
        std::vector<std::vector<Message>> received;
        unicast_payloads(net, payload, &received);
        // Combine at owners.
        for (int g : layers[layer]) {
          if (!heavy[static_cast<std::size_t>(g)]) continue;
          const int dest = plan_.owner[static_cast<std::size_t>(g)];
          std::vector<PartAggregate> collected;
          auto own_it = owner_parts[static_cast<std::size_t>(dest)].find(g);
          if (own_it != owner_parts[static_cast<std::size_t>(dest)].end()) {
            collected.push_back(own_it->second);
          }
          const int agg_bits = c.separability_bits(g);
          for (int p = 0; p < n; ++p) {
            const Message& m = received[static_cast<std::size_t>(dest)][static_cast<std::size_t>(p)];
            if (m.empty()) continue;
            // Only aggregates for this gate arrive at its owner this layer.
            PartAggregate agg;
            agg.bits = agg_bits;
            agg.value = m.read_uint(0, agg_bits);
            collected.push_back(agg);
          }
          know[static_cast<std::size_t>(dest)][g] = c.combine(g, collected);
        }
      }
    }

    // ---- Phase (b): heavy outputs feeding this layer's light gates -------
    {
      std::vector<std::vector<Message>> payload(
          static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
      bool any = false;
      for (int g : layers[layer]) {
        if (heavy[static_cast<std::size_t>(g)]) continue;
        const int consumer = plan_.owner[static_cast<std::size_t>(g)];
        for (int src : c.gate(g).inputs) {
          if (!heavy[static_cast<std::size_t>(src)]) continue;
          if (c.gate(src).kind == GateKind::kConst) continue;
          const int holder = plan_.owner[static_cast<std::size_t>(src)];
          if (holder == consumer) continue;
          auto& sent = forwarded[src];
          if (sent.empty()) sent.assign(static_cast<std::size_t>(n), false);
          if (sent[static_cast<std::size_t>(consumer)]) continue;
          sent[static_cast<std::size_t>(consumer)] = true;
          // One bit per (heavy gate, consumer); a holder owns one heavy
          // gate, so the edge carries at most one forwarded bit per layer.
          Message& m = payload[static_cast<std::size_t>(holder)][static_cast<std::size_t>(consumer)];
          CC_CHECK(m.empty(), "duplicate heavy forward on an edge in one layer");
          m.push_bit(value_at(holder, src));
          any = true;
        }
      }
      if (any) {
        std::vector<std::vector<Message>> received;
        unicast_payloads(net, payload, &received);
        for (int g : layers[layer]) {
          if (heavy[static_cast<std::size_t>(g)]) continue;
          const int consumer = plan_.owner[static_cast<std::size_t>(g)];
          for (int src : c.gate(g).inputs) {
            if (!heavy[static_cast<std::size_t>(src)]) continue;
            if (knows(consumer, src)) continue;
            const int holder = plan_.owner[static_cast<std::size_t>(src)];
            const Message& m =
                received[static_cast<std::size_t>(consumer)][static_cast<std::size_t>(holder)];
            CC_CHECK(m.size_bits() == 1, "expected exactly the forwarded bit");
            know[static_cast<std::size_t>(consumer)][src] = m.get(0);
          }
        }
      }
    }

    // ---- Phase (c): light-to-light wires via balanced routing ------------
    {
      RoutingDemand demand;
      demand.payload_bits = gate_addr + 1;
      for (int g : layers[layer]) {
        if (heavy[static_cast<std::size_t>(g)]) continue;
        const int consumer = plan_.owner[static_cast<std::size_t>(g)];
        for (int src : c.gate(g).inputs) {
          if (heavy[static_cast<std::size_t>(src)]) continue;
          const int holder = plan_.owner[static_cast<std::size_t>(src)];
          if (holder == consumer || knows(consumer, src)) continue;
          // Mark as pending-known to dedup multiple wires this layer; the
          // actual value lands after routing.
          know[static_cast<std::size_t>(consumer)][src] = false;  // placeholder
          const std::uint64_t payload =
              (static_cast<std::uint64_t>(src) << 1) |
              (value_at(holder, src) ? 1 : 0);
          demand.messages.push_back(RoutedMessage{holder, consumer, payload});
        }
      }
      if (!demand.messages.empty()) {
        RoutingResult routed = route(net, demand);
        for (int p = 0; p < n; ++p) {
          for (const auto& [src_player, payload] : routed.delivered[static_cast<std::size_t>(p)]) {
            (void)src_player;
            const int src_gate = static_cast<int>(payload >> 1);
            know[static_cast<std::size_t>(p)][src_gate] = (payload & 1) != 0;
          }
        }
      }
    }

    // ---- Local evaluation of this layer's light gates --------------------
    for (int g : layers[layer]) {
      if (heavy[static_cast<std::size_t>(g)]) continue;
      const Gate& gate = c.gate(g);
      if (gate.kind == GateKind::kConst) continue;
      const int p = plan_.owner[static_cast<std::size_t>(g)];
      std::vector<bool> in_values;
      in_values.reserve(gate.inputs.size());
      for (int src : gate.inputs) in_values.push_back(value_at(p, src));
      know[static_cast<std::size_t>(p)][g] = c.eval_gate(g, in_values);
    }
  }

  // Output stage (Remark 3): route output values to player 0.
  CircuitSimResult result;
  result.layers = static_cast<int>(layers.size());
  {
    RoutingDemand demand;
    const int out_addr = bits_for(static_cast<std::uint64_t>(std::max(1, c.num_outputs())));
    demand.payload_bits = out_addr + 1;
    std::vector<bool> outputs(static_cast<std::size_t>(c.num_outputs()), false);
    for (int i = 0; i < c.num_outputs(); ++i) {
      const int g = c.output_ids()[static_cast<std::size_t>(i)];
      const int holder = plan_.owner[static_cast<std::size_t>(g)];
      const bool v = value_at(holder, g);
      if (holder == 0) {
        outputs[static_cast<std::size_t>(i)] = v;
      } else {
        demand.messages.push_back(RoutedMessage{
            holder, 0,
            (static_cast<std::uint64_t>(i) << 1) | (v ? 1ULL : 0ULL)});
      }
    }
    if (!demand.messages.empty()) {
      RoutingResult routed = route(net, demand);
      for (const auto& [src, payload] : routed.delivered[0]) {
        (void)src;
        outputs[static_cast<std::size_t>(payload >> 1)] = (payload & 1) != 0;
      }
    }
    result.outputs = std::move(outputs);
  }
  result.stats = net.stats();
  return result;
}

CircuitSimResult CircuitSimulation::run_round_robin(
    CliqueUnicast& net, const std::vector<bool>& inputs) const {
  std::vector<int> owner(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    owner[i] = static_cast<int>(i % static_cast<std::size_t>(plan_.n_players));
  }
  return run(net, inputs, owner);
}

}  // namespace cclique
