// Minimum spanning tree on the congested clique (extension module).
//
// MST is the problem that started the congested-clique literature the
// paper builds on: Lotker, Pavlov, Patt-Shamir and Peleg [30] gave an
// O(log log n)-round algorithm. This module implements two schedules over
// the same fragment phase-engine on CLIQUE-UCAST:
//
//  * MstAlgorithm::kBoruvka — the classical baseline: O(log n) phases of
//    exactly 3 rounds each (fragment announcement; lightest outgoing edge
//    per node to its fragment leader; leaders announce merge edges and all
//    nodes merge locally and consistently).
//
//  * MstAlgorithm::kLotker — the [30]-style schedule: in a phase with F
//    live fragments every fragment computes its minimum outgoing edge to
//    *each* other fragment (not just one). The per-target minima are
//    aggregated inside the fragment (members -> rank-sliced aggregators ->
//    leader, both hops through the balanced two-phase router; the demand
//    is balanced: <= F-1 records per fragment and <= F + n per receiver),
//    each leader submits its k = max(1, n/F) lightest minima (announced
//    counts make the submission layout common knowledge, so a perfectly
//    balanced scatter + all-broadcast delivers all <= n submitted records
//    to every player in O(1) rounds), and every player runs the same
//    deterministic capped merge of the resulting fragment graph: clusters
//    of at most k fragments repeatedly merge along their true minimum
//    outgoing edge (recoverable from the k-lightest submissions — the cut
//    property makes every merge edge an MST edge). Every surviving live
//    cluster therefore holds more than k fragments, so minimum fragment
//    size grows from s to at least s*(s+1) per phase — doubly
//    exponentially — and the phase count is O(log log n) versus Borůvka's
//    O(log n). See DESIGN.md §2.3.
//
// Per-phase accounting contract: before each phase both schedules compute
// a round/bit cap from (n, F, b) alone (mst_phase_plan) — never from edge
// data — and CC_CHECK the measured per-phase cost against it, the same way
// core/algebraic_mm checks its plan. Borůvka's round cost is exact (== 3);
// the Lotker stages route data-dependent demands through data-independent
// balance bounds, so its caps are checked as upper bounds.
//
// Edge weights must be distinct (ties are broken by endpoint ids
// internally, so any weights work; the returned MST is unique under the
// tie-broken order).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/clique_unicast.h"
#include "graph/graph.h"

namespace cclique {

/// A weighted edge of the input graph.
struct WeightedEdge {
  int u = 0;
  int v = 0;
  std::uint32_t weight = 0;
};

/// Which fragment-merge schedule clique_mst runs.
enum class MstAlgorithm {
  kBoruvka,  ///< one merge edge per fragment; O(log n) phases of 3 rounds
  kLotker,   ///< capped pairwise minima per fragment; O(log log n) phases
};

/// Data-independent cost cap for one phase, computed from (n, F, b) alone
/// before the phase runs. The protocol CC_CHECKs the measured phase cost
/// against it on every run (Borůvka rounds are checked for equality).
struct MstPhasePlan {
  int fragments = 0;   ///< live fragment count F the cap was computed for
  int submit_cap = 0;  ///< k: per-fragment submitted-minima cap (1 for Borůvka)
  int max_rounds = 0;  ///< round cap (exact for Borůvka: always 3)
  std::uint64_t max_bits = 0;  ///< bit cap across the phase's rounds
};

/// Computes the phase cap for `algorithm` at n players, `live_fragments`
/// incomplete fragments and per-edge bandwidth `bandwidth`.
MstPhasePlan mst_phase_plan(MstAlgorithm algorithm, int n, int live_fragments,
                            int bandwidth);

/// Worst-case kLotker phase count: iterations of s -> s*(s+1) (the
/// doubly-exponential fragment-size growth guarantee) until a single live
/// fragment must remain. O(log log n); the tests and the E15 bench assert
/// measured phases against it.
int mst_lotker_phase_bound(int n);

/// Measured cost of one executed phase, paired with the cap it was
/// CC_CHECKed against.
struct MstPhaseCost {
  int fragments = 0;  ///< live fragments at phase start
  int rounds = 0;     ///< measured engine rounds spent in this phase
  std::uint64_t bits = 0;  ///< measured bits moved in this phase
  MstPhasePlan plan;
};

/// Result of the distributed MST computation.
struct MstResult {
  std::vector<WeightedEdge> tree;  ///< MST/forest edges, known to all nodes
  std::uint64_t total_weight = 0;
  MstAlgorithm algorithm = MstAlgorithm::kBoruvka;
  /// Phases executed. Borůvka: <= ceil(log2 n); Lotker: <=
  /// mst_lotker_phase_bound(n). A phase in which nothing can merge is never
  /// executed: completed fragments are detected from the phase traffic
  /// itself (a live fragment that announces/submits no candidate has no
  /// outgoing edge), so a connected graph never burns a merge-free phase.
  int phases = 0;
  std::vector<MstPhaseCost> phase_costs;  ///< one entry per executed phase
  CommStats stats;
};

/// Runs the selected MST schedule over the clique. Node i initially knows
/// the weights of the edges of `g` incident to vertex i (weights[e] indexed
/// by g.edges() order). Returns the minimum spanning forest (both schedules
/// return the identical tie-broken MSF). Requires bandwidth >=
/// 2*bits_for(n) + 32 (one edge record per message).
MstResult clique_mst(CliqueUnicast& net, const Graph& g,
                     const std::vector<std::uint32_t>& weights,
                     MstAlgorithm algorithm);

/// Back-compatible entry point: the Borůvka baseline.
MstResult clique_mst(CliqueUnicast& net, const Graph& g,
                     const std::vector<std::uint32_t>& weights);

/// Reference single-machine Kruskal for verification (same tie-breaking).
std::vector<WeightedEdge> kruskal_reference(const Graph& g,
                                            const std::vector<std::uint32_t>& weights);

}  // namespace cclique
