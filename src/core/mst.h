// Minimum spanning tree on the congested clique (extension module).
//
// MST is the problem that started the congested-clique literature the
// paper builds on: Lotker, Pavlov, Patt-Shamir and Peleg [30] gave an
// O(log log n)-round algorithm. We implement the classical Borůvka
// schedule on CLIQUE-UCAST — O(log n) phases of O(1) rounds each:
//   1. every node announces its fragment id to everyone (1 round);
//   2. every node reports its lightest outgoing edge to its fragment
//      leader (1 round — distinct senders, distinct edges);
//   3. every leader announces its fragment's merge edge to everyone
//      (1 round); all nodes merge fragments locally and consistently.
// This exercises the same per-round Θ(n^2 b) capacity the [30] algorithm
// exploits, and provides the baseline the E12 capacity bench discusses.
//
// Edge weights must be distinct (ties are broken by endpoint ids
// internally, so any weights work; the returned MST is unique under the
// tie-broken order).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/clique_unicast.h"
#include "graph/graph.h"

namespace cclique {

/// A weighted edge of the input graph.
struct WeightedEdge {
  int u = 0;
  int v = 0;
  std::uint32_t weight = 0;
};

/// Result of the distributed MST computation.
struct MstResult {
  std::vector<WeightedEdge> tree;  ///< MST/forest edges, known to all nodes
  std::uint64_t total_weight = 0;
  int phases = 0;  ///< Borůvka phases executed (<= ceil(log2 n))
  CommStats stats;
};

/// Runs Borůvka's algorithm over the clique. Node i initially knows the
/// weights of the edges of `g` incident to vertex i (weights[e] indexed by
/// g.edges() order). Returns the minimum spanning forest.
MstResult clique_mst(CliqueUnicast& net, const Graph& g,
                     const std::vector<std::uint32_t>& weights);

/// Reference single-machine Kruskal for verification (same tie-breaking).
std::vector<WeightedEdge> kruskal_reference(const Graph& g,
                                            const std::vector<std::uint32_t>& weights);

}  // namespace cclique
