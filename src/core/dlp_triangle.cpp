#include "core/dlp_triangle.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "graph/subgraph.h"
#include "routing/router.h"
#include "util/math_util.h"

namespace cclique {

namespace {

// Multisets {a <= b <= c} over [t], lexicographically enumerated.
std::vector<std::array<int, 3>> group_multisets(int t) {
  std::vector<std::array<int, 3>> out;
  for (int a = 0; a < t; ++a) {
    for (int b = a; b < t; ++b) {
      for (int c = b; c < t; ++c) out.push_back({a, b, c});
    }
  }
  return out;
}

// Does multiset {a,b,c} contain the pair multiset {x,y}?
bool multiset_contains_pair(const std::array<int, 3>& m, int x, int y) {
  if (x == y) {
    int count = 0;
    for (int v : m) count += (v == x) ? 1 : 0;
    return count >= 2;
  }
  bool has_x = false, has_y = false;
  for (int v : m) {
    if (v == x) has_x = true;
    if (v == y) has_y = true;
  }
  return has_x && has_y;
}

// Routes every present edge of g to each player in `want_pair(edge groups)`
// and returns the local edge lists. Sender of edge {u,v} is min(u,v).
std::vector<std::vector<Edge>> route_edges(
    CliqueUnicast& net, const Graph& g, const std::vector<int>& group_of,
    const std::vector<std::vector<int>>& players_for_pair, int t) {
  const int n = g.num_vertices();
  const int addr = bits_for(static_cast<std::uint64_t>(n));
  RoutingDemand demand;
  demand.payload_bits = 2 * addr;
  for (const Edge& e : g.edges()) {
    const int gu = group_of[static_cast<std::size_t>(e.u)];
    const int gv = group_of[static_cast<std::size_t>(e.v)];
    const int lo = std::min(gu, gv), hi = std::max(gu, gv);
    const std::uint64_t payload =
        (static_cast<std::uint64_t>(e.u) << addr) | static_cast<std::uint64_t>(e.v);
    for (int p : players_for_pair[static_cast<std::size_t>(lo) * static_cast<std::size_t>(t) +
                                  static_cast<std::size_t>(hi)]) {
      demand.messages.push_back(RoutedMessage{e.u, p, payload});
    }
  }
  RoutingResult routed = route_two_phase(net, demand);
  std::vector<std::vector<Edge>> local(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    for (const auto& [src, payload] : routed.delivered[static_cast<std::size_t>(p)]) {
      (void)src;
      const int u = static_cast<int>(payload >> addr);
      const int v = static_cast<int>(payload & ((1ULL << addr) - 1));
      local[static_cast<std::size_t>(p)].push_back(Edge(u, v));
    }
  }
  return local;
}

// Is there a triangle among this edge list?
bool local_triangle(const std::vector<Edge>& edges, int n) {
  Graph h(n);
  for (const Edge& e : edges) h.add_edge(e.u, e.v);
  return count_triangles(h) > 0;
}

// Final 1-bit aggregation of local verdicts to player 0 (one round).
bool aggregate_verdicts(CliqueUnicast& net, const std::vector<bool>& found) {
  const int n = net.n();
  bool global = found[0];
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        if (i != 0) {
          Message m;
          m.push_bit(found[static_cast<std::size_t>(i)]);
          box[0] = std::move(m);
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;
        for (int j = 1; j < n; ++j) {
          if (!inbox[static_cast<std::size_t>(j)].empty() &&
              inbox[static_cast<std::size_t>(j)].get(0)) {
            global = true;
          }
        }
      });
  return global;
}

}  // namespace

DlpResult dlp_triangle_detect(CliqueUnicast& net, const Graph& g) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  // Largest t whose multiset count fits the player budget.
  int t = 1;
  while (static_cast<std::uint64_t>(t + 1) * static_cast<std::uint64_t>(t + 2) *
             static_cast<std::uint64_t>(t + 3) / 6 <= static_cast<std::uint64_t>(n)) {
    ++t;
  }
  const auto multisets = group_multisets(t);
  CC_CHECK(static_cast<int>(multisets.size()) <= n, "multiset assignment overflow");

  std::vector<int> group_of(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) group_of[static_cast<std::size_t>(v)] = v % t;

  // players_for_pair[(lo, hi)] = players whose multiset contains the pair.
  std::vector<std::vector<int>> players_for_pair(static_cast<std::size_t>(t) *
                                                 static_cast<std::size_t>(t));
  for (std::size_t p = 0; p < multisets.size(); ++p) {
    for (int lo = 0; lo < t; ++lo) {
      for (int hi = lo; hi < t; ++hi) {
        if (multiset_contains_pair(multisets[p], lo, hi)) {
          players_for_pair[static_cast<std::size_t>(lo) * static_cast<std::size_t>(t) +
                           static_cast<std::size_t>(hi)]
              .push_back(static_cast<int>(p));
        }
      }
    }
  }

  const auto local = route_edges(net, g, group_of, players_for_pair, t);
  std::vector<bool> found(static_cast<std::size_t>(n), false);
  for (int p = 0; p < n; ++p) {
    found[static_cast<std::size_t>(p)] = local_triangle(local[static_cast<std::size_t>(p)], n);
  }

  DlpResult result;
  result.detected = aggregate_verdicts(net, found);
  result.groups = t;
  result.stats = net.stats();
  return result;
}

DlpResult dlp_triangle_detect_promised(CliqueUnicast& net, const Graph& g,
                                       std::uint64_t promised_triangles, int runs,
                                       Rng& rng) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(promised_triangles >= 1, "promise must be at least one triangle");
  CC_REQUIRE(runs >= 1, "need at least one run");

  // t = ((n * T)^{1/3}) groups: per-player load n^2/t^2 edges, coverage of a
  // fixed triangle by n random triples ~ n/t^3 >= 1/T.
  const double cube = std::cbrt(static_cast<double>(n) * static_cast<double>(promised_triangles));
  int t = std::max(1, static_cast<int>(cube));
  t = std::min(t, n);

  std::vector<int> group_of(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) group_of[static_cast<std::size_t>(v)] = v % t;
  const int taddr = bits_for(static_cast<std::uint64_t>(t));

  DlpResult result;
  result.groups = t;
  bool detected = false;

  for (int run = 0; run < runs && !detected; ++run) {
    // Each player draws a private random group triple...
    std::vector<std::array<int, 3>> triple(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      std::array<int, 3> tr{static_cast<int>(rng.uniform(static_cast<std::uint64_t>(t))),
                            static_cast<int>(rng.uniform(static_cast<std::uint64_t>(t))),
                            static_cast<int>(rng.uniform(static_cast<std::uint64_t>(t)))};
      std::sort(tr.begin(), tr.end());
      triple[static_cast<std::size_t>(p)] = tr;
    }
    // ...and announces it to everyone (one round, 3 log t bits per edge).
    std::vector<std::array<int, 3>> announced(static_cast<std::size_t>(n));
    net.round(
        [&](int i) {
          Message m;
          for (int x : triple[static_cast<std::size_t>(i)]) {
            m.push_uint(static_cast<std::uint64_t>(x), taddr);
          }
          std::vector<Message> box(static_cast<std::size_t>(n));
          for (int j = 0; j < n; ++j) {
            if (j != i) box[static_cast<std::size_t>(j)] = m;
          }
          return box;
        },
        [&](int receiver, const std::vector<Message>& inbox) {
          if (receiver != 0) return;  // identical decode everywhere; model once
          for (int j = 0; j < n; ++j) {
            if (j == 0) {
              announced[0] = triple[0];
              continue;
            }
            const Message& m = inbox[static_cast<std::size_t>(j)];
            if (m.empty()) continue;
            BitReader r(m);
            std::array<int, 3> tr;
            for (auto& x : tr) x = static_cast<int>(r.read_uint(taddr));
            announced[static_cast<std::size_t>(j)] = tr;
          }
        });
    // Everyone now knows all triples; build the pair->players map and route.
    std::vector<std::vector<int>> players_for_pair(static_cast<std::size_t>(t) *
                                                   static_cast<std::size_t>(t));
    for (int p = 0; p < n; ++p) {
      for (int lo = 0; lo < t; ++lo) {
        for (int hi = lo; hi < t; ++hi) {
          if (multiset_contains_pair(announced[static_cast<std::size_t>(p)], lo, hi)) {
            players_for_pair[static_cast<std::size_t>(lo) * static_cast<std::size_t>(t) +
                             static_cast<std::size_t>(hi)]
                .push_back(p);
          }
        }
      }
    }
    const auto local = route_edges(net, g, group_of, players_for_pair, t);
    std::vector<bool> found(static_cast<std::size_t>(n), false);
    for (int p = 0; p < n; ++p) {
      found[static_cast<std::size_t>(p)] = local_triangle(local[static_cast<std::size_t>(p)], n);
    }
    detected = aggregate_verdicts(net, found);
  }
  result.detected = detected;
  result.stats = net.stats();
  return result;
}

}  // namespace cclique
