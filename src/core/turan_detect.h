// Theorem 7: H-subgraph detection on the broadcast clique in
// O(ex(n,H)/n * log(n)/b) rounds.
//
// The protocol: every node knows H and n, hence the Claim 6 degeneracy cap
// k = 4*ex(n,H)/n (via the Turán upper bounds of graph/turan.h). Each node
// broadcasts its Becker-et-al. sketch with parameter k, chunked into b-bit
// blackboard messages — O(k log n / b) rounds. Every node then runs the
// referee reconstruction:
//   * success  -> the full topology is known; search for H exactly;
//   * failure  -> degeneracy(G) > k >= 4 ex(n,H)/n, so by (the
//                 contrapositive of) Claim 6, G *must* contain H.
// Either way the verdict is exact and common to all nodes.
#pragma once

#include <optional>

#include "comm/clique_broadcast.h"
#include "graph/graph.h"

namespace cclique {

/// Result of the Turán-bound detection protocol.
struct TuranDetectResult {
  bool contains_h = false;
  /// The embedding (H-vertex -> G-vertex) when reconstruction succeeded and
  /// H was found; empty when the verdict came from the degeneracy cap.
  std::optional<std::vector<int>> embedding;
  /// Sketch parameter used (the Claim 6 cap).
  int degeneracy_cap = 0;
  /// True iff the one-round reconstruction succeeded (degeneracy <= cap).
  bool reconstructed = false;
  CommStats stats;
};

/// Runs Theorem 7's protocol for pattern `h` on input graph `g` (node i of
/// the broadcast clique holds the edges incident to vertex i).
TuranDetectResult turan_subgraph_detect(CliqueBroadcast& net, const Graph& g,
                                        const Graph& h);

/// The trivial chi(H) >= 3 fallback the paper mentions: every node
/// broadcasts its full neighborhood (n bits, chunked); all nodes learn G and
/// search exactly. O(n/b) rounds; used as a baseline and by the NOF
/// reduction.
TuranDetectResult full_broadcast_detect(CliqueBroadcast& net, const Graph& g,
                                        const Graph& h);

}  // namespace cclique
