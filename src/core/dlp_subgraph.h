// General fixed-subgraph detection on CLIQUE-UCAST — the Õ(n^{(d-2)/d})
// algorithm of Dolev, Lenzen & Peled [8] for d-vertex patterns, which the
// paper quotes as the unicast-side state of the art (Section 1, Related
// work; Section 3 contrasts the broadcast bounds against it).
//
// Scheme: split V into t groups with C(t+d-1, d) <= n so that every
// multiset of d groups has a dedicated player; route every present edge to
// every player whose multiset contains both endpoint groups; each player
// runs an exact local search on its piece. Every copy of H has *some*
// group multiset, so exactly its assigned player sees all of its edges.
// Per-player load: C(d,2) * (n/t)^2 * O(log n) bits over n links —
// Õ(n^{(d-2)/d}/b) rounds.
#pragma once

#include "comm/clique_unicast.h"
#include "graph/graph.h"

namespace cclique {

/// Result of the general detection protocol.
struct DlpSubgraphResult {
  bool detected = false;
  CommStats stats;
  int groups = 0;  ///< t
};

/// Detects a (not necessarily induced) copy of `h` in `g`; exact.
/// Requires 2 <= |V(h)|; one player per vertex of g.
DlpSubgraphResult dlp_subgraph_detect(CliqueUnicast& net, const Graph& g,
                                      const Graph& h);

}  // namespace cclique
