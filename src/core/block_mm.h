// Shared [m]^3 block-decomposition machinery for distributed semiring
// matrix products on CLIQUE-UCAST (internal to core/).
//
// PR 3 built the machinery for ring products (core/algebraic_mm): with
// m = ⌊n^{1/3}⌋ and the index set [n] cut into m row intervals, C = A·B
// splits into m³ block products C_ij ⊕= A_ik ⊗ B_kj, one triple per player,
// shipped through the two-hop balanced relay (unicast_payloads_relayed).
// Nothing in the decomposition, the relay schedule, or the plan accounting
// depends on the *algebra* — only on (n, element width w, bandwidth b). This
// header factors the geometry (BlockGrid), the data-independent length
// matrices and relay cost replay, and the generic protocol driver
// (run_block_mm) out of algebraic_mm.cpp so the min-plus/APSP workload
// (core/apsp) runs the identical schedule over the tropical semiring.
//
// The Ops concept run_block_mm consumes:
//
//   struct Ops {
//     using Matrix = ...;               // Matrix(int n) = the semiring-zero
//                                       // matrix (additive identity entries:
//                                       // 0 for rings, +inf for min-plus)
//     static constexpr int kWordBits;   // serialized bits per element
//     static std::uint64_t get(const Matrix&, int i, int j);   // < 2^kWordBits
//     static void set(Matrix&, int i, int j, std::uint64_t v);
//     static void accumulate(Matrix&, int i, int j, std::uint64_t v);  // ⊕=
//     static Matrix multiply(const Matrix&, const Matrix&);    // local ⊗
//   };
//
// Block padding relies on Matrix(n) being the semiring zero so padding rows
// and columns contribute nothing to any block product.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "comm/clique_unicast.h"
#include "util/check.h"
#include "util/math_util.h"

namespace cclique {
namespace blockmm {

/// The [m]^3 block grid: interval t covers rows [lo(t), hi(t)), triple
/// (i, j, k) lives at player (i*m + j)*m + k. All of it is a function of n
/// alone, so every player derives the same geometry.
struct BlockGrid {
  int n = 0;
  int m = 0;
  int bs = 0;

  explicit BlockGrid(int n_in) : n(n_in) {
    CC_REQUIRE(n >= 1, "need at least one player");
    m = static_cast<int>(icbrt(static_cast<std::uint64_t>(n)));
    if (m < 1) m = 1;
    bs = static_cast<int>(ceil_div(static_cast<std::uint64_t>(n),
                                   static_cast<std::uint64_t>(m)));
    // (m-1)^2 < n guarantees every interval is non-empty (m <= n^{1/3}).
    CC_CHECK((m - 1) * bs < n, "degenerate block interval");
  }

  int triples() const { return m * m * m; }
  int lo(int t) const { return t * bs; }
  int hi(int t) const { return std::min(n, (t + 1) * bs); }
  int len(int t) const { return hi(t) - lo(t); }
  int ti(int p) const { return p / (m * m); }
  int tj(int p) const { return (p / m) % m; }
  int tk(int p) const { return p % m; }
};

/// Operand-ownership policy: which player holds entry (i, j) of the input
/// operands and of the output matrix. PR 3 hardcoded whole-row ownership
/// (player i holds row i) into the payload builders and length matrices;
/// the policy factors that decision out so the same [m]^3 decomposition,
/// relay schedule, and plan accounting run over any data placement that is
/// common knowledge (a pure function of (n, i, j)).
///
/// Contract: owner(i, j) in [0, n) and every player evaluates the same
/// function — the relay needs globally agreed payload lengths, so ownership
/// can never be data-dependent. The driver reads entry (i, j) locally iff
/// its player owns it, and the length matrices below price exactly the
/// entries whose owner differs from the consuming triple player.
class ShardLayout {
 public:
  virtual ~ShardLayout() = default;
  /// The player holding entry (i, j) of A, B, and C.
  virtual int owner(int i, int j) const = 0;
  /// Short stable label for plans, benches, and error messages.
  virtual const char* name() const = 0;
};

/// The classic whole-row placement: player i owns row i of every operand —
/// Θ(n) words of state per player, and the layout every committed baseline
/// was measured under (the generic driver reproduces PR 3's byte stream
/// exactly under this instance; see tests/sparse_test).
class RowShardLayout final : public ShardLayout {
 public:
  int owner(int i, int /*j*/) const override { return i; }
  const char* name() const override { return "row"; }
};

/// Square-tile placement: the matrix is cut into ~sqrt(n) x sqrt(n) tiles
/// of side ceil(n / floor(sqrt(n))) and tile (ti, tj) lands on player
/// (ti * grid + tj) mod n. Each player then holds O(n^2 / n) = O(n) words
/// — the same per-player footprint as row ownership — but no player holds
/// any full row, which is the placement regime sharded inputs arrive in
/// (e.g. when an upstream protocol leaves C block-distributed).
class BlockShardLayout final : public ShardLayout {
 public:
  explicit BlockShardLayout(int n) : n_(n) {
    CC_REQUIRE(n >= 1, "need at least one player");
    int s = static_cast<int>(isqrt(static_cast<std::uint64_t>(n)));
    if (s < 1) s = 1;
    tile_ = static_cast<int>(ceil_div(static_cast<std::uint64_t>(n),
                                      static_cast<std::uint64_t>(s)));
    grid_ = static_cast<int>(ceil_div(static_cast<std::uint64_t>(n),
                                      static_cast<std::uint64_t>(tile_)));
  }
  int owner(int i, int j) const override {
    return ((i / tile_) * grid_ + (j / tile_)) % n_;
  }
  const char* name() const override { return "block"; }
  int tile() const { return tile_; }

 private:
  int n_ = 1;
  int tile_ = 1;
  int grid_ = 1;
};

using LengthMatrix = std::vector<std::vector<std::size_t>>;

/// Distribution-phase payload lengths in bits: for each triple player p =
/// (i, j, k), every entry of A over I_i x K_k and of B over K_k x J_j that
/// p does not own itself travels from the entry's owner to p (A entries
/// before B entries, row-major within each block — the decode order). Under
/// RowShardLayout this is exactly PR 3's "row owner v ships its row slices"
/// matrix: |K_k| * w bits per A-row and |J_j| * w per B-row.
inline LengthMatrix distribute_lengths(const BlockGrid& g, int w,
                                       const ShardLayout& layout) {
  // Length computation is a sink: the matrix must be a function of the grid
  // geometry, the element width, and the (common-knowledge) layout alone,
  // never of matrix entries.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("distribute_lengths"));
  LengthMatrix len(static_cast<std::size_t>(g.n),
                   std::vector<std::size_t>(static_cast<std::size_t>(g.n), 0));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int col = g.lo(k); col < g.hi(k); ++col) {
        const int v = layout.owner(r, col);
        if (v == p) continue;
        len[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] +=
            static_cast<std::size_t>(w);
      }
    }
    for (int r = g.lo(k); r < g.hi(k); ++r) {
      for (int col = g.lo(j); col < g.hi(j); ++col) {
        const int v = layout.owner(r, col);
        if (v == p) continue;
        len[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] +=
            static_cast<std::size_t>(w);
      }
    }
  }
  return len;
}

inline LengthMatrix distribute_lengths(const BlockGrid& g, int w) {
  return distribute_lengths(g, w, RowShardLayout());
}

/// Aggregation-phase payload lengths: triple (i, j, k) ships each entry of
/// its partial block C_ij (over I_i x J_j) to that output entry's owner.
/// Under RowShardLayout: one |J_j|-element row slice per output row owner.
inline LengthMatrix aggregate_lengths(const BlockGrid& g, int w,
                                      const ShardLayout& layout) {
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("aggregate_lengths"));
  LengthMatrix len(static_cast<std::size_t>(g.n),
                   std::vector<std::size_t>(static_cast<std::size_t>(g.n), 0));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int col = g.lo(j); col < g.hi(j); ++col) {
        const int d = layout.owner(r, col);
        if (d == p) continue;
        len[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)] +=
            static_cast<std::size_t>(w);
      }
    }
  }
  return len;
}

inline LengthMatrix aggregate_lengths(const BlockGrid& g, int w) {
  return aggregate_lengths(g, w, RowShardLayout());
}

/// Cost of shipping a length matrix through unicast_payloads_relayed:
/// replays the relay's chunk arithmetic (relay_chunk_lo) on lengths alone.
struct RelayCost {
  int rounds = 0;
  std::uint64_t bits = 0;
};

inline RelayCost relay_cost(const LengthMatrix& len, int n, int bandwidth) {
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("relay_cost"));
  const std::size_t b = static_cast<std::size_t>(bandwidth);
  auto chunk = [n](std::size_t l, int c) {
    return relay_chunk_lo(l, c + 1, n) - relay_chunk_lo(l, c, n);
  };
  RelayCost out;
  std::size_t max1 = 0, max2 = 0;
  // Hop 1: source v -> relay t carries chunk relay_chunk_index(v, p, t) of
  // each of v's payloads.
  for (int v = 0; v < n; ++v) {
    for (int t = 0; t < n; ++t) {
      if (t == v) continue;
      std::size_t sum = 0;
      for (int p = 0; p < n; ++p) {
        if (p == v) continue;
        sum += chunk(len[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)],
                     relay_chunk_index(v, p, t, n));
      }
      max1 = std::max(max1, sum);
      out.bits += sum;
    }
  }
  // Hop 2: relay t -> destination p carries the same chunks of p's payloads.
  for (int t = 0; t < n; ++t) {
    for (int p = 0; p < n; ++p) {
      if (p == t) continue;
      std::size_t sum = 0;
      for (int v = 0; v < n; ++v) {
        if (v == p) continue;
        sum += chunk(len[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)],
                     relay_chunk_index(v, p, t, n));
      }
      max2 = std::max(max2, sum);
      out.bits += sum;
    }
  }
  out.rounds = static_cast<int>(ceil_div(max1, b) + ceil_div(max2, b));
  return out;
}

/// One distributed semiring product C = A ⊗ B over the grid: distribution
/// (entry owners ship block entries to triple players through the relay),
/// local block products, aggregation (partial entries back to the output
/// owners, ⊕-accumulated). Ownership of every operand/output entry comes
/// from `layout`; under RowShardLayout the payload byte streams are
/// identical to PR 3's row-sliced messages (A entries then B entries per
/// (owner, triple) pair, row-major within each block), which is what keeps
/// the committed baselines byte-stable across this refactor. `Plan` /
/// `Result` are the caller's plan/result structs (AlgebraicMmPlan /
/// AlgebraicMmResult for both current semirings); the measured schedule is
/// CC_CHECKed against `plan` on every run.
template <typename Ops, typename Result, typename Plan>
Result run_block_mm(CliqueUnicast& net, const typename Ops::Matrix& a,
                    const typename Ops::Matrix& b, typename Ops::Matrix* c,
                    const Plan& plan, const ShardLayout& layout) {
  using Matrix = typename Ops::Matrix;
  constexpr int w = Ops::kWordBits;
  const int n = a.n();
  CC_REQUIRE(net.n() == n, "one player per matrix row");
  CC_REQUIRE(b.n() == n, "size mismatch");
  CC_REQUIRE(c != nullptr, "output matrix required");
  const BlockGrid g(n);

  Result res;
  res.plan = plan;
  const int rounds_before = net.stats().rounds;
  const std::uint64_t bits_before = net.stats().total_bits;

  // ---- Distribution: entry owners ship block entries to triple players.
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int col = g.lo(k); col < g.hi(k); ++col) {
        const int v = layout.owner(r, col);
        if (v == p) continue;  // the triple player reads its own entries directly
        payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)]
            .push_uint(Ops::get(a, r, col), w);
      }
    }
    for (int r = g.lo(k); r < g.hi(k); ++r) {
      for (int col = g.lo(j); col < g.hi(j); ++col) {
        const int v = layout.owner(r, col);
        if (v == p) continue;
        payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)]
            .push_uint(Ops::get(b, r, col), w);
      }
    }
  }
  std::vector<std::vector<Message>> recv;
  res.distribute_rounds = unicast_payloads_relayed(net, payload, &recv);

  // ---- Local block products (blocks padded to bs x bs with the semiring
  // zero — Matrix(n)'s fill — so padding rows/columns contribute nothing).
  // Each triple player's block product is its private state until the
  // aggregation hop ships the partial entries out (ownership-tagged).
  // Decode mirrors the build exactly: same (triple, entry) iteration order,
  // one sequential cursor per source owner.
  locality::PerPlayer<Matrix> partial(
      g.triples(), CC_LOCALITY_SITE("triple player's block product"));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    Matrix ablk(g.bs), bblk(g.bs);
    std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int t = 0; t < g.len(k); ++t) {
        const int col = g.lo(k) + t;
        const int src_owner = layout.owner(r, col);
        std::uint64_t v;
        if (src_owner == p) {
          v = Ops::get(a, r, col);
        } else {
          const Message& src =
              recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(src_owner)];
          v = src.read_uint(cur[static_cast<std::size_t>(src_owner)], w);
          cur[static_cast<std::size_t>(src_owner)] += static_cast<std::size_t>(w);
        }
        Ops::set(ablk, r - g.lo(i), t, v);
      }
    }
    for (int r = g.lo(k); r < g.hi(k); ++r) {
      for (int t = 0; t < g.len(j); ++t) {
        const int col = g.lo(j) + t;
        const int src_owner = layout.owner(r, col);
        std::uint64_t v;
        if (src_owner == p) {
          v = Ops::get(b, r, col);
        } else {
          const Message& src =
              recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(src_owner)];
          v = src.read_uint(cur[static_cast<std::size_t>(src_owner)], w);
          cur[static_cast<std::size_t>(src_owner)] += static_cast<std::size_t>(w);
        }
        Ops::set(bblk, r - g.lo(k), t, v);
      }
    }
    partial[p] = Ops::multiply(ablk, bblk);
  }

  // ---- Aggregation: partial entries travel to the output owners, who
  // ⊕-combine the m contributions (one per k) for each output entry.
  std::vector<std::vector<Message>> payload2(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int t = 0; t < g.len(j); ++t) {
        const int d = layout.owner(r, g.lo(j) + t);
        if (d == p) continue;
        payload2[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)]
            .push_uint(Ops::get(partial[p], r - g.lo(i), t), w);
      }
    }
  }
  std::vector<std::vector<Message>> recv2;
  res.aggregate_rounds = unicast_payloads_relayed(net, payload2, &recv2);

  *c = Matrix(n);
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    std::vector<std::size_t> cur2(static_cast<std::size_t>(n), 0);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int t = 0; t < g.len(j); ++t) {
        const int col = g.lo(j) + t;
        const int d = layout.owner(r, col);
        std::uint64_t v;
        if (d == p) {
          v = Ops::get(partial[p], r - g.lo(i), t);
        } else {
          const Message& src =
              recv2[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
          v = src.read_uint(cur2[static_cast<std::size_t>(d)], w);
          cur2[static_cast<std::size_t>(d)] += static_cast<std::size_t>(w);
        }
        Ops::accumulate(*c, r, col, v);
      }
    }
  }

  res.total_rounds = net.stats().rounds - rounds_before;
  res.total_bits = net.stats().total_bits - bits_before;
  CC_CHECK(res.total_rounds == res.distribute_rounds + res.aggregate_rounds,
           "round accounting out of sync");
  CC_CHECK(res.total_rounds == res.plan.total_rounds,
           "block MM rounds diverged from the planned schedule");
  CC_CHECK(res.total_bits == res.plan.total_bits,
           "block MM bits diverged from the planned schedule");
  return res;
}

template <typename Ops, typename Result, typename Plan>
Result run_block_mm(CliqueUnicast& net, const typename Ops::Matrix& a,
                    const typename Ops::Matrix& b, typename Ops::Matrix* c,
                    const Plan& plan) {
  return run_block_mm<Ops, Result, Plan>(net, a, b, c, plan, RowShardLayout());
}

/// Fills the shared schedule fields of a plan struct (AlgebraicMmPlan
/// shape): grid geometry, per-phase relay rounds/bits, and the heaviest
/// pre-relay per-player payload load. The schedule is a pure function of
/// (n, w, b) and the common-knowledge layout.
template <typename Plan>
void fill_plan_schedule(Plan* plan, int n, int word_bits, int bandwidth,
                        const ShardLayout& layout) {
  // Plan-function sink: the whole schedule is priced from (n, w, b, layout).
  // Note run_block_mm above is deliberately NOT a sink — it is the executor,
  // and its payload building legitimately reads matrix entries.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("fill_plan_schedule"));
  CC_REQUIRE(word_bits >= 1 && word_bits <= 64, "word width out of range");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  const BlockGrid g(n);
  plan->n = n;
  plan->grid = g.m;
  plan->block = g.bs;
  plan->word_bits = word_bits;
  plan->bandwidth = bandwidth;
  const LengthMatrix dist = distribute_lengths(g, word_bits, layout);
  const LengthMatrix agg = aggregate_lengths(g, word_bits, layout);
  const RelayCost dc = relay_cost(dist, n, bandwidth);
  const RelayCost ac = relay_cost(agg, n, bandwidth);
  plan->distribute_rounds = dc.rounds;
  plan->aggregate_rounds = ac.rounds;
  plan->total_rounds = dc.rounds + ac.rounds;
  plan->total_bits = dc.bits + ac.bits;
  plan->max_player_send_bits = 0;
  for (int v = 0; v < n; ++v) {
    std::uint64_t send = 0;
    for (int p = 0; p < n; ++p) {
      send += dist[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] +
              agg[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
    }
    plan->max_player_send_bits = std::max(plan->max_player_send_bits, send);
  }
  const double cbrt_n = static_cast<double>(icbrt(static_cast<std::uint64_t>(n)));
  plan->series_rounds = 6.0 * cbrt_n * static_cast<double>(word_bits) /
                        static_cast<double>(bandwidth);
}

template <typename Plan>
void fill_plan_schedule(Plan* plan, int n, int word_bits, int bandwidth) {
  fill_plan_schedule(plan, n, word_bits, bandwidth, RowShardLayout());
}

}  // namespace blockmm
}  // namespace cclique
