// Exact all-pairs shortest paths on the unicast clique via distributed
// min-plus (distance) products.
//
// The paper's central message — the congested clique can run powerful
// centralized algebraic algorithms in few rounds — extends beyond rings:
// Censor-Hillel et al., *Algebraic Methods in the Congested Clique*
// (PODC'15) §4, and Le Gall (DISC'16) show the same block-decomposed
// distributed matrix product computes *semiring* products, and min-plus
// products give APSP. This module runs exactly the PR 3 machinery
// (core/block_mm.h: [m]^3 decomposition + two-hop balanced relay) over the
// tropical semiring (linalg/tropical):
//
//  * one distance product C_ij = min_k (A_ik + B_kj) costs the identical
//    data-independent schedule as the F_{2^61-1} product — elements are
//    61-bit words (kTropicalInf = all-ones encodes +infinity), so
//    O(n^{1/3} · w / b) rounds, exactly 6·n^{1/3} at perfect cubes with
//    b = 64;
//  * exact APSP is ⌈log2(n-1)⌉ repeated squarings of the one-step weight
//    matrix W (0 diagonal): W^{⊗ 2^s} is the shortest-path distance using
//    ≤ 2^s edges, and simple shortest paths have ≤ n-1 edges. Squaring
//    preserves the data-independent plan because every squaring moves the
//    *same* globally-known length matrix — payload sizes depend on (n, w)
//    only, never on weights — so apsp_plan is just `squarings` copies of
//    the product schedule plus one eccentricity exchange;
//  * derived queries: per-vertex eccentricities (a one-shot 61-bit
//    all-to-all exchange, like the counting protocols' partial-sum share),
//    and from them diameter and radius, all exact and +infinity-aware
//    (disconnected inputs yield infinite eccentricities).
//
// The protocol CC_CHECKs measured rounds and bits against apsp_plan on
// every run, the same contract as algebraic_mm_plan / mst_phase_plan.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/clique_unicast.h"
#include "core/algebraic_mm.h"
#include "graph/graph.h"
#include "linalg/tropical.h"

namespace cclique {

/// Which local kernel the triple players run for their block distance
/// products. Both compute the identical product; the metered schedule is
/// kernel-independent (the bench_e18 ablation asserts exactly that).
enum class TropicalKernel {
  kBlocked,     ///< i-k-j row-streaming kernel with +inf-lane skipping (default)
  kSchoolbook,  ///< per-entry reference kernel (ablation / cross-check)
};

/// The data-independent cost schedule of one APSP run: `squarings` distance
/// products (each with the shared block-MM schedule) plus the final
/// eccentricity exchange. A function of (n, bandwidth) alone — never of
/// edge weights — so every run can be checked against it.
struct ApspPlan {
  int n = 0;
  int squarings = 0;      ///< ⌈log2(n-1)⌉ for n >= 2, else 0
  AlgebraicMmPlan product;  ///< per-squaring schedule (word_bits = 61)
  int ecc_rounds = 0;     ///< final 61-bit eccentricity all-to-all exchange
  int total_rounds = 0;   ///< squarings * product.total_rounds + ecc_rounds
  std::uint64_t total_bits = 0;
  /// Asymptotic reference the measured series is printed against:
  /// 6 · n^{1/3} · w / b · ⌈log2 n⌉ (one product per squaring).
  double series_rounds = 0;
};

/// Computes the exact round/bit schedule of apsp_run for n players at
/// per-edge bandwidth `bandwidth` bits. Preconditions: n >= 1,
/// bandwidth >= 1.
ApspPlan apsp_plan(int n, int bandwidth);

/// Outcome of one distributed distance product (min_plus_mm): the shared
/// block-MM result shape — measured rounds/bits, equal to the plan.
using MinPlusResult = AlgebraicMmResult;

/// Distributed distance product C = A ⊗ B over (min, +): player v holds
/// row v of A and B and ends holding row v of C; `*c` assembles all rows.
/// Runs the identical [m]^3 relay schedule as algebraic_mm_m61 (61-bit
/// words). Throws ModelViolation/InvariantError if the run leaves the
/// planned schedule.
MinPlusResult min_plus_mm(CliqueUnicast& net, const TropicalMat& a,
                          const TropicalMat& b, TropicalMat* c,
                          TropicalKernel kernel = TropicalKernel::kBlocked);

/// Distance product with operands/outputs owned per `layout`
/// (core/block_mm.h) — the tropical twin of algebraic_mm_m61_sharded.
/// Values match min_plus_mm; rounds/bits follow sharded_mm_plan(n, 61, b,
/// layout) and are CC_CHECKed against it.
MinPlusResult min_plus_mm_sharded(CliqueUnicast& net, const TropicalMat& a,
                                  const TropicalMat& b, TropicalMat* c,
                                  const blockmm::ShardLayout& layout);

/// Retained intermediate state of one APSP run — the squaring chain the
/// serving layer (core/query_service) caches so hop-bounded queries are
/// answered from local reads long after the protocol finished. powers[0] is
/// the one-step matrix W and powers[s] the matrix after s squarings: the
/// exact shortest-path distance restricted to walks of <= 2^s edges (so
/// powers.back() equals the result's dist). Retention is pure local
/// copying — requesting artifacts never changes the metered schedule.
struct ApspArtifacts {
  std::vector<TropicalMat> powers;  ///< squarings + 1 matrices
};

/// Outcome of the APSP protocol.
struct ApspResult {
  ApspPlan plan;
  /// Exact shortest-path distances: dist.get(u, v) = d_w(u, v),
  /// kTropicalInf iff v is unreachable from u. Row v is what player v holds.
  TropicalMat dist;
  std::vector<MinPlusResult> products;  ///< one entry per squaring
  /// ecc[v] = max_u d(v, u); kTropicalInf iff the graph is disconnected.
  std::vector<std::uint64_t> eccentricity;
  std::uint64_t diameter = 0;  ///< max eccentricity (kTropicalInf if disconnected)
  std::uint64_t radius = 0;    ///< min eccentricity
  int ecc_rounds = 0;     ///< measured; equals plan.ecc_rounds
  int total_rounds = 0;   ///< measured; equals plan.total_rounds
  std::uint64_t total_bits = 0;  ///< measured; equals plan.total_bits
};

/// Runs exact APSP over the clique: player v initially holds row v of the
/// one-step weight matrix (the weights of edges incident to vertex v;
/// weights[e] indexed by g.edges() order, the core/mst convention) and ends
/// holding row v of the distance matrix plus the clique-wide eccentricity
/// spectrum. Weights are non-negative 32-bit values, so no finite distance
/// can saturate (see linalg/tropical.h). Measured rounds/bits are
/// CC_CHECKed against apsp_plan(n, net.bandwidth()) on every run.
/// When `artifacts` is non-null the full squaring chain is retained in it
/// (local copies only — the schedule and every CommStats counter are
/// identical with or without retention).
ApspResult apsp_run(CliqueUnicast& net, const Graph& g,
                    const std::vector<std::uint32_t>& weights,
                    TropicalKernel kernel = TropicalKernel::kBlocked,
                    ApspArtifacts* artifacts = nullptr);

/// One squaring of the adaptive sparse APSP run.
struct ApspSparseStep {
  bool used_sparse = false;      ///< which branch the crossover picked
  std::uint64_t declared_nnz = 0;  ///< finite entries of D_s (the profile's a_nnz)
  std::uint64_t planned_bits = 0;  ///< chosen branch's planned bits (announcement included)
  std::uint64_t dense_bits = 0;    ///< the oblivious schedule's bits, for reference
  int rounds = 0;                  ///< measured rounds of this squaring
};

/// Outcome of the adaptive sparse APSP run (distances only — the
/// eccentricity exchange is identical to apsp_run's and orthogonal to the
/// backend question).
struct ApspSparseResult {
  TropicalMat dist;  ///< exact distances, identical to apsp_run's
  std::vector<ApspSparseStep> steps;  ///< one per squaring
  int total_rounds = 0;
  std::uint64_t total_bits = 0;
};

/// Repeated distance-product squaring where every squaring re-declares the
/// current matrix's nnz profile (core/sparse_mm.h) and routes through the
/// sparse schedule iff the crossover rule prices it cheaper — distance
/// matrices *densify* as powers close the graph's transitive closure, so a
/// typical sparse input starts on the sparse branch and crosses to dense
/// once fill-in wins. Distances are identical to apsp_run's; every product
/// is still CC_CHECKed against its own (dense or sparse) plan, and the
/// dense branch additionally pays the announcement that made the decision
/// common knowledge.
ApspSparseResult apsp_run_sparse(CliqueUnicast& net, const Graph& g,
                                 const std::vector<std::uint32_t>& weights);

/// Reference single-machine APSP: one Dijkstra per source over an
/// adjacency-indexed weight table (non-negative weights; zero-weight edges
/// allowed). Returns the full distance matrix, kTropicalInf for unreachable
/// pairs — the ground truth apsp_run is tested against.
TropicalMat apsp_dijkstra_reference(const Graph& g,
                                    const std::vector<std::uint32_t>& weights);

}  // namespace cclique
