#include "core/congest_c4.h"

#include <algorithm>

#include "util/math_util.h"

namespace cclique {

CongestC4Result congest_c4_detect(const Graph& g, int bandwidth) {
  const int n = g.num_vertices();
  CongestC4Result result;
  result.max_degree = g.max_degree();
  CongestUnicast net(g, bandwidth);
  const int addr = bits_for(static_cast<std::uint64_t>(std::max(1, n)));

  // Each node streams its sorted neighbor list on every incident edge,
  // addr bits per entry, chunked at b bits per round. All edges progress in
  // lock step, so the stream takes ceil(max_deg * addr / b) rounds.
  const std::size_t stream_bits =
      static_cast<std::size_t>(result.max_degree) * static_cast<std::size_t>(addr);
  const int rounds = static_cast<int>(
      ceil_div(std::max<std::size_t>(stream_bits, 1), static_cast<std::size_t>(bandwidth)));

  // Each node's serialized list, built once and sliced per chunk round.
  std::vector<Message> stream(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    Message& full = stream[static_cast<std::size_t>(v)];
    full.reserve_bits(g.neighbors(v).size() * static_cast<std::size_t>(addr));
    for (int u : g.neighbors(v)) {
      full.push_uint(static_cast<std::uint64_t>(u), addr);
    }
  }

  // received[v][k] accumulates the bits of neighbor k's list.
  std::vector<std::vector<Message>> received(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto& nbrs = g.neighbors(v);
    received[static_cast<std::size_t>(v)].resize(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      received[static_cast<std::size_t>(v)][k].reserve_bits(
          stream[static_cast<std::size_t>(nbrs[k])].size_bits());
    }
  }

  for (int r = 0; r < rounds; ++r) {
    const std::size_t offset = static_cast<std::size_t>(r) * static_cast<std::size_t>(bandwidth);
    net.round(
        [&](int v) {
          const Message& full = stream[static_cast<std::size_t>(v)];
          Message chunk;
          if (offset < full.size_bits()) {
            const std::size_t take =
                std::min<std::size_t>(static_cast<std::size_t>(bandwidth),
                                      full.size_bits() - offset);
            chunk.append_slice(full, offset, take);
          }
          std::vector<Message> box(g.neighbors(v).size(), chunk);
          return box;
        },
        [&](int v, const std::vector<Message>& inbox) {
          for (std::size_t k = 0; k < inbox.size(); ++k) {
            received[static_cast<std::size_t>(v)][k].append(inbox[k]);
          }
        });
  }

  // Local detection at every node u: mark[w] = the first neighbor of u that
  // reported w; a second distinct reporter closes the 4-cycle u-v1-w-v2-u.
  bool found = false;
  std::vector<int> mark(static_cast<std::size_t>(n));
  for (int u = 0; u < n && !found; ++u) {
    std::fill(mark.begin(), mark.end(), -1);
    const auto& nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size() && !found; ++k) {
      const int v = nbrs[k];
      const Message& list = received[static_cast<std::size_t>(u)][k];
      const std::size_t entries = list.size_bits() / static_cast<std::size_t>(addr);
      for (std::size_t e = 0; e < entries; ++e) {
        const int w = static_cast<int>(list.read_uint(e * static_cast<std::size_t>(addr), addr));
        if (w == u) continue;
        if (mark[static_cast<std::size_t>(w)] >= 0 &&
            mark[static_cast<std::size_t>(w)] != v) {
          found = true;  // u - mark[w] - w - v - u
          break;
        }
        mark[static_cast<std::size_t>(w)] = v;
      }
    }
  }
  result.detected = found;
  result.stats = net.stats();
  return result;
}

}  // namespace cclique
