// Section 2.1: triangle detection on the unicast clique through matrix-
// multiplication circuits.
//
// Pipeline (exactly the paper's): triangles are nonzero diagonal entries of
// A^3 over the Boolean semiring; Shamir's randomized reduction turns that
// into O(log n) products over F2; subcubic F2 product circuits (here:
// Strassen, O(n^{log2 7}) wires) plug into the Theorem 2 simulation, giving
// a CLIQUE-UCAST protocol whose round count scales like the circuit's
// wire count divided by n^2 — i.e. n^{omega-2} up to log factors. Under the
// conjectured omega = 2 + eps this is the paper's O(n^eps) round bound; with
// Strassen it is ~n^{0.81}, and the bench fits the measured exponent.
//
// The mask bits baked into the circuit play the role of shared randomness
// (all players know the circuit, as in the paper's model).
#pragma once

#include "comm/clique_unicast.h"
#include "core/circuit_sim.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// How the matrix product behind triangle detection is carried out.
enum class TriangleBackend {
  kCircuitStrassen,  ///< Theorem 2 compiler over the Strassen circuit (randomized, one-sided)
  kCircuitNaive,     ///< same compiler over the Θ(n³)-wire circuit (ablation)
  kAlgebraic,        ///< distributed algebraic protocol (core/algebraic_mm): deterministic, exact count
};

/// Outcome of the MM-based triangle-detection protocol.
struct MmTriangleResult {
  bool detected = false;   ///< protocol verdict (circuit backends are one-sided: never false-positive)
  CommStats stats;         ///< engine accounting
  std::size_t circuit_wires = 0;     ///< circuit backends only
  int circuit_depth = 0;             ///< circuit backends only
  int recommended_bandwidth = 0;
  std::uint64_t triangle_count = 0;  ///< algebraic backend only (exact)
  bool exact = false;                ///< true iff the backend counts exactly (algebraic)
};

/// Runs triangle detection on `g` (player i holds row i of the adjacency
/// matrix) over the given engine. `reps` repetitions of the Shamir masking
/// give miss probability <= (3/4)^reps for graphs with a triangle.
/// use_strassen=false swaps in the naive Theta(n^3)-wire circuit (ablation).
MmTriangleResult mm_triangle_detect(CliqueUnicast& net, const Graph& g, int reps,
                                    Rng& rng, bool use_strassen = true);

/// Backend-selecting variant. The algebraic backend ignores `reps` and
/// `rng` (it is deterministic), answers with the exact triangle count, and
/// runs in O(n^{1/3} · w / b) rounds instead of the compiler's
/// wires/n²-driven schedule — the protocol-vs-circuit tradeoff bench_e17
/// measures.
MmTriangleResult mm_triangle_run(CliqueUnicast& net, const Graph& g, int reps,
                                 Rng& rng, TriangleBackend backend);

}  // namespace cclique
