// Distributed algebraic matrix multiplication on the unicast clique.
//
// The paper's Section 2 upper bounds ride on matrix multiplication through
// the Theorem 2 circuit compiler; Censor-Hillel et al., *Algebraic Methods
// in the Congested Clique* (PODC'15), and Le Gall (DISC'16) run the same
// machinery as a *protocol*. This module implements the semiring
// decomposition of their §2: with m = ⌊n^{1/3}⌋ and the index set [n] cut
// into m intervals of ⌈n/m⌉ rows, the product C = A·B splits into m³ block
// products C_ij += A_ik · B_kj, one per player. Player p responsible for
// triple (i,j,k) receives blocks A_ik and B_kj from the natural row owners
// (player v holds row v of A and B), multiplies locally, and ships its
// partial rows back to the output owners, who sum them.
//
// Both transfer phases move Θ(n^{4/3} · w) bits per player (w = element
// width), but the demand is skewed — each source addresses only the m²
// players sharing its row block. The two-hop balanced relay
// (unicast_payloads_relayed) turns that into a per-edge load of
// Θ(n^{1/3} · w) bits per hop, i.e. O(n^{1/3} · w / b) rounds at per-edge
// bandwidth b — the O(n^{1/3}) round bound for constant-size words. The
// round schedule is data-independent, so algebraic_mm_plan() predicts it
// exactly; the protocol CC_CHECKs its measured rounds and bits against the
// plan on every run.
//
// The decomposition itself is algebra-agnostic and lives in the shared
// driver core/block_mm.h; this module instantiates it for the two rings
// (GF(2), F_{2^61-1}), and core/apsp instantiates the same driver — and
// the same plan shape below — for the tropical (min, +) semiring.
//
// On top of the product: exact triangle and 4-cycle counting over
// F_{2^61-1} (linalg/mat61). One distributed product A² suffices for both —
// trace(A³) = Σ_v ⟨row_v(A²), row_v(A)⟩ = 6·(#triangles) and
// trace(A⁴) = Σ_v ‖row_v(A²)‖² = 8·(#C₄) + 2·Σdeg² − 2|E| — followed by a
// one-message-per-pair exchange of 61-bit partial sums. Field arithmetic is
// exact integer arithmetic as long as the traces stay below p = 2^61 − 1.
#pragma once

#include <cstdint>

#include "comm/clique_unicast.h"
#include "core/sparse_mm.h"
#include "graph/graph.h"
#include "linalg/f2matrix.h"
#include "linalg/mat61.h"

namespace cclique {

namespace blockmm {
class ShardLayout;  // core/block_mm.h — operand-ownership policy
}

/// The data-independent cost schedule of one distributed product — a pure
/// function of (n, word_bits, bandwidth), shared by every semiring the
/// block driver runs (the min-plus product of core/apsp reuses this struct
/// verbatim at word_bits = 61).
struct AlgebraicMmPlan {
  int n = 0;
  int grid = 0;        ///< m: block grid dimension; one triple of [m]^3 per player
  int block = 0;       ///< ⌈n/m⌉ rows per interval
  int word_bits = 0;   ///< serialized bits per element (1 for F2, 61 for F_{2^61-1})
  int bandwidth = 0;   ///< per-edge per-round budget the schedule was planned for
  int distribute_rounds = 0;  ///< input-block delivery (two relay hops)
  int aggregate_rounds = 0;   ///< partial-sum delivery (two relay hops)
  int total_rounds = 0;
  std::uint64_t total_bits = 0;           ///< exact network bits, both phases
  std::uint64_t max_player_send_bits = 0; ///< heaviest per-player payload load (pre-relay)
  /// Asymptotic reference the measured series is printed against:
  /// 6 · n^{1/3} · w / b (three per-player loads of ~2n^{4/3}w bits, each
  /// spread over n links and two hops).
  double series_rounds = 0;
};

/// Computes the exact round/bit schedule for an n x n product with
/// word_bits-bit elements at the given per-edge bandwidth.
AlgebraicMmPlan algebraic_mm_plan(int n, int word_bits, int bandwidth);

/// Outcome of one distributed product.
struct AlgebraicMmResult {
  AlgebraicMmPlan plan;
  int distribute_rounds = 0;  ///< measured; equals plan.distribute_rounds
  int aggregate_rounds = 0;   ///< measured; equals plan.aggregate_rounds
  int total_rounds = 0;       ///< measured; equals plan.total_rounds
  std::uint64_t total_bits = 0;  ///< measured; equals plan.total_bits
};

/// Distributed C = A·B over GF(2) (word-packed F2Matrix; 1 bit/element).
/// Player v holds row v of A and B and ends holding row v of C; `*c`
/// assembles all rows. Throws ModelViolation/InvariantError if the run
/// leaves the planned schedule.
AlgebraicMmResult algebraic_mm_f2(CliqueUnicast& net, const F2Matrix& a,
                                  const F2Matrix& b, F2Matrix* c);

/// Distributed C = A·B over F_{2^61-1} (61 bits/element).
AlgebraicMmResult algebraic_mm_m61(CliqueUnicast& net, const Mat61& a,
                                   const Mat61& b, Mat61* c);

/// Schedule for a product whose operands/outputs live under an arbitrary
/// common-knowledge shard layout (core/block_mm.h): same [m]^3 grid and
/// relay, but every payload length is priced from the layout's per-entry
/// ownership instead of whole rows. sharded_mm_plan(n, w, b, RowShardLayout)
/// == algebraic_mm_plan(n, w, b) exactly.
AlgebraicMmPlan sharded_mm_plan(int n, int word_bits, int bandwidth,
                                const blockmm::ShardLayout& layout);

/// Distributed C = A·B over F_{2^61-1} with operands/outputs owned per
/// `layout` (e.g. blockmm::BlockShardLayout — O(n^2/p) words per player,
/// no whole rows anywhere). Values are identical to algebraic_mm_m61;
/// rounds/bits follow sharded_mm_plan and are CC_CHECKed against it.
AlgebraicMmResult algebraic_mm_m61_sharded(CliqueUnicast& net, const Mat61& a,
                                           const Mat61& b, Mat61* c,
                                           const blockmm::ShardLayout& layout);

/// Which distributed-product backend a counting protocol runs its A·A
/// product through.
enum class CountBackend {
  kDense,   ///< the oblivious dense schedule, unconditionally (the PR 3
            ///< behavior — and the one every committed baseline measures)
  kSparse,  ///< the nnz-declared sparse schedule, unconditionally
  kAuto,    ///< announce the nnz profile, then take whichever branch the
            ///< crossover rule (sparse_backend_preferred) prices cheaper
};

/// Outcome of an exact counting protocol (triangles or 4-cycles).
struct AlgebraicCountResult {
  std::uint64_t count = 0;
  AlgebraicMmResult mm;   ///< the dense A·A product (when !used_sparse)
  SparseMmResult sparse_mm;  ///< the sparse A·A product (when used_sparse)
  bool used_sparse = false;  ///< which branch ran
  /// Standalone announcement cost — nonzero only when kAuto priced the
  /// profile and then chose the dense branch (the sparse branch's
  /// announcement is inside sparse_mm).
  int announce_rounds = 0;
  int share_rounds = 0;   ///< final 61-bit partial-sum exchange
  int total_rounds = 0;   ///< product (+ announcement) + share_rounds
};

/// Exact number of triangles of g via diag(A³) over F_{2^61-1}:
/// one distributed A² product, then every player v computes
/// (A³)_vv = ⟨row_v(A²), row_v(A)⟩ locally and the partials are exchanged.
/// Requires n <= 2^15 so trace values stay below p (exactness).
AlgebraicCountResult triangle_count_algebraic(CliqueUnicast& net, const Graph& g);

/// Exact number of 4-cycles of g via trace(A⁴) = Σ_v ‖row_v(A²)‖² and the
/// degree statistics: #C₄ = (trace(A⁴) − 2·Σ_v deg(v)² + 2|E|) / 8.
/// Requires n <= 2^15 (trace(A⁴) <= n^4 < p). The count is
/// backend-independent; kDense (the default) reproduces the committed
/// baseline schedule bit-for-bit, kAuto routes the product through the
/// sparse schedule when the graph's density is below the crossover
/// (core/sparse_mm.h).
AlgebraicCountResult four_cycle_count_algebraic(
    CliqueUnicast& net, const Graph& g,
    CountBackend backend = CountBackend::kDense);

/// The data-independent cost schedule of one counting-artifact run
/// (counting_artifacts_run below): one dense A·A product plus a single
/// combined partial-sum exchange carrying all four counting fields
/// (trace(A³) diagonal share, trace(A⁴) walk share, deg², deg) in one
/// 4·61-bit message per ordered pair. A function of (n, bandwidth) alone.
struct CountingArtifactPlan {
  int n = 0;
  AlgebraicMmPlan product;  ///< the A·A schedule (word_bits = 61)
  int share_rounds = 0;     ///< ceil(4·61 / b); 0 on a 1-clique
  int total_rounds = 0;
  std::uint64_t total_bits = 0;
};

/// Computes the exact round/bit schedule of counting_artifacts_run for n
/// players at per-edge bandwidth `bandwidth`. Preconditions: n >= 1,
/// bandwidth >= 1.
CountingArtifactPlan counting_artifacts_plan(int n, int bandwidth);

/// The counting artifact the serving layer (core/query_service) caches:
/// A² over F_{2^61-1} plus both exact counts from one protocol run —
/// triangle and 4-cycle queries then cost zero additional rounds. Compared
/// with running triangle_count_algebraic and four_cycle_count_algebraic
/// separately this saves a full A·A product and folds the two partial-sum
/// exchanges into one.
struct CountingArtifact {
  CountingArtifactPlan plan;
  Mat61 a2;                        ///< the distributed A·A product
  std::uint64_t triangles = 0;     ///< trace(A³) / 6
  std::uint64_t four_cycles = 0;   ///< (trace(A⁴) − 2Σdeg² + 2|E|) / 8
  int total_rounds = 0;            ///< measured; equals plan.total_rounds
  std::uint64_t total_bits = 0;    ///< measured; equals plan.total_bits
};

/// Runs one A·A product and the combined 4-field share, returning the
/// artifact above. Counts are identical to the standalone protocols'.
/// Requires n <= 2^15 (trace(A⁴) <= n^4 < p, exactness). Measured
/// rounds/bits are CC_CHECKed against counting_artifacts_plan on every run.
CountingArtifact counting_artifacts_run(CliqueUnicast& net, const Graph& g);

}  // namespace cclique
