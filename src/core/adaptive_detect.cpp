#include "core/adaptive_detect.h"

#include "graph/sampling.h"
#include "graph/subgraph.h"
#include "sketch/sketch.h"
#include "util/math_util.h"

namespace cclique {

namespace {

// One invocation of algorithm A(G_j, k): sketch broadcasts + referee
// reconstruction, all through the metered engine.
ReconstructionResult run_algorithm_a(CliqueBroadcast& net, const Graph& gj, int k) {
  const int n = gj.num_vertices();
  std::vector<Message> payloads(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    payloads[static_cast<std::size_t>(v)] = serialize_sketch(make_sketch(gj, v, k), n);
  }
  int rounds_used = 0;
  const std::vector<Message> board = broadcast_payloads(net, payloads, &rounds_used);
  std::vector<NodeSketch> sketches;
  sketches.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    sketches.push_back(deserialize_sketch(board[static_cast<std::size_t>(v)], k, n));
  }
  return reconstruct_from_sketches(std::move(sketches), k, n);
}

}  // namespace

AdaptiveDetectResult adaptive_subgraph_detect(CliqueBroadcast& net, const Graph& g,
                                              const Graph& h, Rng& rng) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one node per vertex");
  AdaptiveDetectResult result;

  // Phase 1: broadcast the sampling values X_v (log N bits each, chunked);
  // afterwards every node can classify each of its incident edges into the
  // hierarchy levels. We materialize the hierarchy centrally — the same
  // deterministic function of the blackboard every node computes.
  const std::vector<std::uint64_t> x = draw_sampling_values(n, rng);
  {
    const int xbits = bits_for(1ULL << floor_log2(static_cast<std::uint64_t>(n)));
    std::vector<Message> payloads(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      Message m;
      m.push_uint(x[static_cast<std::size_t>(v)], xbits);
      payloads[static_cast<std::size_t>(v)] = std::move(m);
    }
    int rounds_used = 0;
    broadcast_payloads(net, payloads, &rounds_used);
  }
  const int l = floor_log2(static_cast<std::uint64_t>(n));

  // Phase 2: doubling guesses; A(G_j, k_i) per level.
  for (int i = 1;; ++i) {
    const int k_i = 1 << i;
    for (int j = 0; j <= l; ++j) {
      const Graph gj = mod_sampled_subgraph(g, x, j);
      ReconstructionResult rec = run_algorithm_a(net, gj, k_i);
      ++result.reconstruction_runs;
      if (!rec.success) continue;
      auto found = find_subgraph(rec.graph, h);
      if (found.has_value()) {
        result.contains_h = true;
        result.embedding = std::move(found);
        result.final_guess = k_i;
        result.final_level = j;
        result.stats = net.stats();
        return result;
      }
      if (j == 0) {
        // Full graph reconstructed with no copy of H: definitive.
        result.contains_h = false;
        result.final_guess = k_i;
        result.final_level = 0;
        result.stats = net.stats();
        return result;
      }
      // Sparse level reconstructed but H-free there: inconclusive for G.
      // Every higher level is a subgraph of this one, so it is H-free too —
      // skip straight to the next guess.
      break;
    }
    CC_CHECK(k_i < 2 * n, "adaptive loop failed to terminate by k_i >= n");
  }
}

}  // namespace cclique
