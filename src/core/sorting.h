// Distributed sorting on the congested clique (extension module).
//
// The round complexity of clique sorting is the subject of [32]
// (Patt-Shamir & Teplitsky) and was settled deterministically by Lenzen
// [28] — the same paper whose routing primitive Theorem 2 uses. We
// implement a constant-phase sample-sort over the routing substrate:
//
//   1. local sort; every player broadcasts one regular sample per player
//      (its (i+1)/(n+1) quantile to player i, then an all-gather round) —
//      O(1) rounds;
//   2. every key is routed to the bucket player owning its splitter range
//      (balanced demand: regular sampling bounds every bucket by ~2x the
//      average — routed by the deterministic two-phase router);
//   3. bucket counts are all-gathered; every player computes the exact
//      global rank offsets and routes each key to its final owner, so
//      player i ends with the keys of rank [i*k, (i+1)*k), sorted.
//
// Output contract and verification mirror [28]'s sorting specification.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/clique_unicast.h"

namespace cclique {

/// Result of the distributed sort.
struct SortResult {
  /// blocks[i] = keys held by player i afterwards (sorted); concatenating
  /// blocks yields the globally sorted sequence.
  std::vector<std::vector<std::uint32_t>> blocks;
  CommStats stats;
};

/// Sorts n*k keys (player i contributes inputs[i], all of size k) so that
/// player i ends with ranks [i*k, (i+1)*k). Keys need not be distinct.
SortResult clique_sort(CliqueUnicast& net,
                       const std::vector<std::vector<std::uint32_t>>& inputs);

}  // namespace cclique
