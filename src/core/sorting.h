// Distributed sorting on the congested clique (extension module).
//
// The round complexity of clique sorting is the subject of [32]
// (Patt-Shamir & Teplitsky) and was settled deterministically by Lenzen
// [28] — the same paper whose routing primitive Theorem 2 uses. We
// implement a constant-phase sample-sort over the routing substrate:
//
//   1. local sort; every player broadcasts one regular sample per player
//      (its (i+1)/(n+1) quantile to player i, then an all-gather round) —
//      O(1) rounds;
//   2. every key is routed to the bucket player owning its splitter range
//      (balanced demand: regular sampling bounds every bucket by ~2x the
//      average — routed by the deterministic two-phase router);
//   3. bucket counts are all-gathered; every player computes the exact
//      global rank offsets and routes each key to its final owner, so
//      player i ends with the keys of rank [i*k, (i+1)*k), sorted.
//
// Sampling, splitting and bucketing all operate on the tie-broken
// composite key (key, source player, local index), which is globally
// distinct even when every input key is equal — equal keys spread across
// buckets by global rank instead of collapsing onto the single bucket
// upper_bound would pick for them, so the ~2x balance bound (and with it
// the O(1)-phase claim) survives duplicate-heavy inputs (all-equal and
// per-player-constant layouts; the regression tests assert <= 2x).
// Remaining gap vs [28]: splitters are rank-proportional picks of the
// per-player sample columns, so inputs where every player holds the same
// *mixed* low-cardinality multiset make the columns value-homogeneous and
// the picks cannot spread inside a value class — bucket loads can then
// reach a few multiples of the average (correctness and the exact-rank
// final placement are unaffected). Lenzen's full splitter machinery would
// close this; see DESIGN.md §4a.
//
// Output contract and verification mirror [28]'s sorting specification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/clique_unicast.h"

namespace cclique {

/// Result of the distributed sort.
struct SortResult {
  /// blocks[i] = keys held by player i afterwards (sorted); concatenating
  /// blocks yields the globally sorted sequence.
  std::vector<std::vector<std::uint32_t>> blocks;
  /// bucket_loads[i] = number of keys routed to bucket owner i in phase 2.
  /// The composite-key splitters keep every entry <= ~2x the average load
  /// (nk/n = k) even on all-equal inputs; the regression tests assert it.
  std::vector<std::size_t> bucket_loads;
  CommStats stats;
};

/// Sorts n*k keys (player i contributes inputs[i], all of size k) so that
/// player i ends with ranks [i*k, (i+1)*k). Keys need not be distinct.
/// Requires bits_for(n) + bits_for(k) <= 32 (the composite tie-break must
/// fit a 64-bit routed payload next to the 32-bit key).
SortResult clique_sort(CliqueUnicast& net,
                       const std::vector<std::vector<std::uint32_t>>& inputs);

}  // namespace cclique
