#include "core/query_service.h"

#include <algorithm>
#include <utility>

#include "analysis/oblivious_guard.h"
#include "comm/engine.h"
#include "util/check.h"

namespace cclique {

namespace {

/// SplitMix64 step — the fingerprint combiner. Any 64-bit mixer works; this
/// one matches the Rng seeding so the hash quality story is shared.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Smallest s with 2^s >= x (x >= 1).
int ceil_log2(std::uint64_t x) {
  int s = 0;
  while ((1ULL << s) < x) ++s;
  return s;
}

std::uint64_t edge_key(int u, int v) {
  const Edge e(u, v);  // canonicalizes u < v
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)) << 32) |
         static_cast<std::uint32_t>(e.v);
}

/// Which artifact classes a batch's query kinds demand — kinds only, never
/// graph payload, so the result is legal serving_plan input.
ArtifactNeed need_of(const std::vector<Query>& queries) {
  ArtifactNeed need;
  for (const Query& q : queries) {
    switch (q.kind) {
      case QueryKind::kDist:
      case QueryKind::kEcc:
      case QueryKind::kDiameter:
      case QueryKind::kRadius:
        need.apsp = true;
        break;
      case QueryKind::kTriangles:
      case QueryKind::kFourCycles:
        need.counting = true;
        break;
      case QueryKind::kReach:
        need.hops = true;
        break;
    }
  }
  return need;
}

void validate_query(const Query& q, int n) {
  switch (q.kind) {
    case QueryKind::kDist:
      CC_REQUIRE(q.u >= 0 && q.u < n && q.v >= 0 && q.v < n,
                 "dist query vertex out of range");
      break;
    case QueryKind::kEcc:
      CC_REQUIRE(q.v >= 0 && q.v < n, "ecc query vertex out of range");
      break;
    case QueryKind::kDiameter:
    case QueryKind::kRadius:
    case QueryKind::kTriangles:
    case QueryKind::kFourCycles:
      break;
    case QueryKind::kReach:
      CC_REQUIRE(q.u >= 0 && q.u < n && q.v >= 0 && q.v < n,
                 "reach query vertex out of range");
      CC_REQUIRE(q.k >= 0, "reach query needs a non-negative hop budget");
      break;
  }
}

}  // namespace

ServingPlan serving_plan(int n, int bandwidth, const ArtifactNeed& need,
                         const ServingResidency& resident) {
  // Plan-function sink: the batch schedule is priced from (n, bandwidth)
  // and the two boolean triples alone. Residency is payload-derived, but it
  // arrives here as plain booleans already laundered through
  // declared_residency()'s declared-dependence boundary — reading any
  // payload (or an undeclared residency probe) in this scope throws.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("serving_plan"));
  CC_REQUIRE(n >= 1, "need at least one player");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  ServingPlan plan;
  plan.n = n;
  plan.run_apsp = need.apsp && !resident.apsp;
  plan.run_counting = need.counting && !resident.counting;
  plan.run_hops = need.hops && !resident.hops;
  if (plan.run_apsp) {
    plan.apsp = apsp_plan(n, bandwidth);
    plan.total_rounds += plan.apsp.total_rounds;
    plan.total_bits += plan.apsp.total_bits;
  }
  if (plan.run_counting) {
    plan.counting = counting_artifacts_plan(n, bandwidth);
    plan.total_rounds += plan.counting.total_rounds;
    plan.total_bits += plan.counting.total_bits;
  }
  if (plan.run_hops) {
    // Unit weights change entry values only, never payload lengths, so the
    // hop chain rides the identical APSP schedule.
    plan.hops = apsp_plan(n, bandwidth);
    plan.total_rounds += plan.hops.total_rounds;
    plan.total_bits += plan.hops.total_bits;
  }
  // Every resident class contributes exactly nothing: a cache hit costs
  // zero rounds and zero bits, and answer() CC_CHECKs the measured delta.
  return plan;
}

// ---------------------------------------------------------------------------
// ArtifactCache

bool ArtifactCache::resident(ArtifactClass cls, std::uint64_t fingerprint) const {
  // Residency is a function of which payloads were served before — reading
  // it while a schedule is being decided must go through a declared
  // dependence, exactly like the sparse schedule's announced nnz counts.
  oblivious::source_touch(CC_OBLIVIOUS_SITE("ArtifactCache::resident"));
  return entries_.count({static_cast<int>(cls), fingerprint}) != 0;
}

const ApspServingArtifact* ArtifactCache::apsp(std::uint64_t fingerprint) const {
  const auto it = entries_.find({static_cast<int>(ArtifactClass::kApsp), fingerprint});
  return it == entries_.end() ? nullptr : it->second.apsp.get();
}

const CountingArtifact* ArtifactCache::counting(std::uint64_t fingerprint) const {
  const auto it = entries_.find({static_cast<int>(ArtifactClass::kCounting), fingerprint});
  return it == entries_.end() ? nullptr : it->second.counting.get();
}

const HopArtifact* ArtifactCache::hops(std::uint64_t fingerprint) const {
  const auto it = entries_.find({static_cast<int>(ArtifactClass::kHops), fingerprint});
  return it == entries_.end() ? nullptr : it->second.hops.get();
}

void ArtifactCache::insert(ArtifactClass cls, std::uint64_t fingerprint,
                           Entry entry) {
  const Key key{static_cast<int>(cls), fingerprint};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    resident_words_ -= it->second.words;
    entries_.erase(it);
  }
  resident_words_ += entry.words;
  entry.last_use = ++use_clock_;
  entries_.emplace(key, std::move(entry));
}

void ArtifactCache::put_apsp(std::uint64_t fingerprint, ApspServingArtifact artifact) {
  Entry e;
  e.words = artifact.footprint_words();
  e.apsp = std::make_unique<ApspServingArtifact>(std::move(artifact));
  insert(ArtifactClass::kApsp, fingerprint, std::move(e));
}

void ArtifactCache::put_counting(std::uint64_t fingerprint, CountingArtifact artifact) {
  Entry e;
  e.words = artifact.a2.footprint_words();
  e.counting = std::make_unique<CountingArtifact>(std::move(artifact));
  insert(ArtifactClass::kCounting, fingerprint, std::move(e));
}

void ArtifactCache::put_hops(std::uint64_t fingerprint, HopArtifact artifact) {
  Entry e;
  e.words = artifact.footprint_words();
  e.hops = std::make_unique<HopArtifact>(std::move(artifact));
  insert(ArtifactClass::kHops, fingerprint, std::move(e));
}

void ArtifactCache::touch(ArtifactClass cls, std::uint64_t fingerprint) {
  const auto it = entries_.find({static_cast<int>(cls), fingerprint});
  if (it != entries_.end()) it->second.last_use = ++use_clock_;
}

std::size_t ArtifactCache::evict_to_capacity() {
  if (capacity_words_ == 0) return 0;
  std::size_t evicted = 0;
  while (resident_words_ > capacity_words_ && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    resident_words_ -= victim->second.words;
    entries_.erase(victim);
    ++evicted;
    ++evictions_;
  }
  return evicted;
}

// ---------------------------------------------------------------------------
// QueryService

QueryService::QueryService(const Graph& g,
                           const std::vector<std::uint32_t>& weights,
                           const Config& config)
    : graph_(g), config_(config), cache_(config.capacity_words) {
  CC_REQUIRE(g.num_vertices() >= 1, "need at least one vertex");
  const std::vector<Edge> edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  for (std::size_t e = 0; e < edges.size(); ++e) {
    weight_by_edge_[edge_key(edges[e].u, edges[e].v)] = weights[e];
  }
  net_ = std::make_unique<CliqueUnicast>(g.num_vertices(), config_.bandwidth);
  rebuild_derived();
}

QueryService::QueryService(const Graph& g, const Config& config)
    : QueryService(g, std::vector<std::uint32_t>(g.num_edges(), 1), config) {}

void QueryService::rebuild_derived() {
  const std::vector<Edge> edges = graph_.edges();
  weights_.clear();
  weights_.reserve(edges.size());
  std::uint64_t fp = mix(0x636c697175650000ULL,  // arbitrary domain tag
                         static_cast<std::uint64_t>(graph_.num_vertices()));
  fp = mix(fp, static_cast<std::uint64_t>(config_.bandwidth));
  fp = mix(fp, static_cast<std::uint64_t>(config_.kernel));
  for (const Edge& e : edges) {
    const auto it = weight_by_edge_.find(edge_key(e.u, e.v));
    CC_CHECK(it != weight_by_edge_.end(), "edge without a stored weight");
    weights_.push_back(it->second);
    fp = mix(fp, edge_key(e.u, e.v));
    fp = mix(fp, it->second);
  }
  fingerprint_ = fp;
}

bool QueryService::add_edge(int u, int v, std::uint32_t weight) {
  if (!graph_.add_edge(u, v)) return false;  // idempotent: no version bump
  weight_by_edge_[edge_key(u, v)] = weight;
  ++version_;
  rebuild_derived();
  return true;
}

bool QueryService::remove_edge(int u, int v) {
  if (!graph_.remove_edge(u, v)) return false;
  weight_by_edge_.erase(edge_key(u, v));
  ++version_;
  rebuild_derived();
  return true;
}

void QueryService::set_graph(const Graph& g,
                             const std::vector<std::uint32_t>& weights) {
  CC_REQUIRE(g.num_vertices() >= 1, "need at least one vertex");
  const std::vector<Edge> edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  if (g.num_vertices() != graph_.num_vertices()) {
    net_ = std::make_unique<CliqueUnicast>(g.num_vertices(), config_.bandwidth);
  }
  graph_ = g;
  weight_by_edge_.clear();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    weight_by_edge_[edge_key(edges[e].u, edges[e].v)] = weights[e];
  }
  ++version_;
  rebuild_derived();
}

ServingResidency QueryService::declared_residency() const {
  // Residency is payload-derived common knowledge (which fingerprints were
  // served before) — the same standing as the sparse schedule's announced
  // nnz counts, and the same idiom as declared_nnz_profile: the sink
  // asserts the probes below would be violations if undeclared, and the
  // declaration routes them through the guard's counted escape hatch.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("declared_residency"));
  [[maybe_unused]] auto dd = oblivious::declared_dependence(
      CC_OBLIVIOUS_SITE("serving schedule depends on artifact residency"));
  ServingResidency r;
  r.apsp = cache_.resident(ArtifactClass::kApsp, fingerprint_);
  r.counting = cache_.resident(ArtifactClass::kCounting, fingerprint_);
  r.hops = cache_.resident(ArtifactClass::kHops, fingerprint_);
  return r;
}

std::uint64_t QueryService::answer_query(const Query& q,
                                         const ApspServingArtifact* apsp,
                                         const CountingArtifact* counting,
                                         const HopArtifact* hops) const {
  switch (q.kind) {
    case QueryKind::kDist:
      return apsp->dist.get(q.u, q.v);
    case QueryKind::kEcc:
      return apsp->eccentricity[static_cast<std::size_t>(q.v)];
    case QueryKind::kDiameter:
      return apsp->diameter;
    case QueryKind::kRadius:
      return apsp->radius;
    case QueryKind::kTriangles:
      return counting->triangles;
    case QueryKind::kFourCycles:
      return counting->four_cycles;
    case QueryKind::kReach: {
      if (q.u == q.v) return 1;
      if (q.k == 0) return 0;
      // powers[s] is exact for hop distances <= 2^s, so the smallest power
      // covering the budget decides: d <= k <= 2^s is represented exactly,
      // and d > k implies powers[s] > k (a longer hop count or +inf).
      const int last = static_cast<int>(hops->powers.size()) - 1;
      const int s = std::min(ceil_log2(static_cast<std::uint64_t>(q.k)), last);
      return hops->powers[static_cast<std::size_t>(s)].get(q.u, q.v) <=
                     static_cast<std::uint64_t>(q.k)
                 ? 1
                 : 0;
    }
  }
  CC_CHECK(false, "unreachable query kind");
  return 0;
}

BatchResult QueryService::answer(const QueryBatch& batch) {
  CC_CHECK(batch.version() == version_,
           "stale batch: the graph mutated after admission");
  const int n = graph_.num_vertices();
  for (const Query& q : batch.queries()) validate_query(q, n);

  // ---- Price the batch: needed classes from the query kinds, residency
  // through the declared-dependence boundary, then the plan sink.
  const ArtifactNeed need = need_of(batch.queries());
  const ServingResidency resident = declared_residency();
  const ServingPlan plan = serving_plan(n, config_.bandwidth, need, resident);

  // ---- Miss phase: fixed class order (apsp, counting, hops) regardless of
  // query order, so the engine's round trace is a function of the plan
  // alone. Resident classes run nothing — the CC_CHECKs below pin their
  // cost to exactly zero.
  const int rounds_before = net_->stats().rounds;
  const std::uint64_t bits_before = net_->stats().total_bits;
  if (plan.run_apsp) {
    ApspResult r = apsp_run(*net_, graph_, weights_, config_.kernel);
    ApspServingArtifact a;
    a.dist = std::move(r.dist);
    a.eccentricity = std::move(r.eccentricity);
    a.diameter = r.diameter;
    a.radius = r.radius;
    cache_.put_apsp(fingerprint_, std::move(a));
  }
  if (plan.run_counting) {
    cache_.put_counting(fingerprint_, counting_artifacts_run(*net_, graph_));
  }
  if (plan.run_hops) {
    const std::vector<std::uint32_t> unit(graph_.num_edges(), 1);
    ApspArtifacts arts;
    apsp_run(*net_, graph_, unit, config_.kernel, &arts);
    HopArtifact h;
    h.powers = std::move(arts.powers);
    cache_.put_hops(fingerprint_, std::move(h));
  }

  BatchResult out;
  out.plan = plan;
  out.rounds = net_->stats().rounds - rounds_before;
  out.bits = net_->stats().total_bits - bits_before;
  CC_CHECK(out.rounds == plan.total_rounds,
           "serving left the planned schedule (rounds) — a cache hit must "
           "charge exactly zero");
  CC_CHECK(out.bits == plan.total_bits,
           "serving left the planned schedule (bits) — a cache hit must "
           "charge exactly zero");

  // ---- Hit/miss accounting per needed class (a class built this batch
  // counts as the miss that built it).
  struct ClassNeed {
    bool needed;
    bool ran;
    ArtifactClass cls;
  };
  const ClassNeed classes[3] = {
      {need.apsp, plan.run_apsp, ArtifactClass::kApsp},
      {need.counting, plan.run_counting, ArtifactClass::kCounting},
      {need.hops, plan.run_hops, ArtifactClass::kHops},
  };
  for (const ClassNeed& c : classes) {
    if (!c.needed) continue;
    if (c.ran) {
      ++out.misses;
    } else {
      ++out.hits;
    }
    cache_.touch(c.cls, fingerprint_);
  }
  hits_ += out.hits;
  misses_ += out.misses;

  // ---- Answer phase: zero communication. CC_THREADS workers over the
  // engines' static partition of the admitted order — worker t owns slots
  // [q·t/T, q·(t+1)/T) of an arena buffer, so answers are byte-identical at
  // any thread count and the steady state does no per-batch heap work.
  const ApspServingArtifact* apsp = need.apsp ? cache_.apsp(fingerprint_) : nullptr;
  const CountingArtifact* counting =
      need.counting ? cache_.counting(fingerprint_) : nullptr;
  const HopArtifact* hops = need.hops ? cache_.hops(fingerprint_) : nullptr;
  CC_CHECK(!need.apsp || apsp != nullptr, "planned APSP artifact missing");
  CC_CHECK(!need.counting || counting != nullptr,
           "planned counting artifact missing");
  CC_CHECK(!need.hops || hops != nullptr, "planned hop artifact missing");

  const std::size_t q = batch.size();
  answer_arena_.reset();
  std::uint64_t* slots = answer_arena_.alloc_words(q);
  const int threads = cc_thread_count();
  const std::shared_ptr<ThreadPool> pool = shared_thread_pool(threads);
  const std::vector<Query>& queries = batch.queries();
  pool->run_indexed(threads, [&](int t) {
    const std::size_t lo = q * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(threads);
    const std::size_t hi = q * (static_cast<std::size_t>(t) + 1) /
                           static_cast<std::size_t>(threads);
    for (std::size_t i = lo; i < hi; ++i) {
      slots[i] = answer_query(queries[i], apsp, counting, hops);
    }
  });
  out.answers.assign(slots, slots + q);

  // ---- Eviction runs after answering (never mid-batch), so a size cap can
  // change future costs but never this batch's answers.
  cache_.evict_to_capacity();
  return out;
}

std::uint64_t QueryService::answer_one(const Query& q) {
  QueryBatch batch = new_batch();
  batch.push(q);
  return answer(batch).answers[0];
}

}  // namespace cclique
