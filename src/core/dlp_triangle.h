// The Dolev–Lenzen–Peled [8] triangle-detection baseline on CLIQUE-UCAST.
//
// The paper builds on [8]'s bounds: deterministic Õ(n^{1/3}) rounds for
// triangle detection (and Õ(n^{(d-2)/d}) for d-vertex subgraphs), and a
// randomized O~(n^{1/3}/T^{2/3}) variant when the graph has at least T
// triangles. We implement both:
//
//  * Deterministic: split V into t = ceil(n^{1/3}) groups; assign each of
//    the <= C(t+2, 3) <= n group multisets {i, j, k} to a player; route
//    every present edge to every player whose multiset contains both
//    endpoint groups; each player scans its piece. Per-player traffic is
//    O(n^{4/3} log n) bits over n links: Õ(n^{1/3}) rounds.
//
//  * Randomized (>= T triangles promised): each player picks a uniformly
//    random group triple with t = floor((nT)^{1/3}) groups, announces it
//    (one O(log n)-bit round), receives the matching edges —
//    O(n/(t^2)) = O(n^{1/3}/T^{2/3}) rounds per the paper — and any caught
//    triangle is reported. One-sided error: misses with probability
//    ~e^{-Omega(1)} per run, driven down by independent runs.
#pragma once

#include "comm/clique_unicast.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// Result of a DLP-style detection run.
struct DlpResult {
  bool detected = false;
  CommStats stats;
  int groups = 0;  ///< t, the group-count parameter actually used
};

/// Deterministic Õ(n^{1/3})-round triangle detection. Exact (no error).
DlpResult dlp_triangle_detect(CliqueUnicast& net, const Graph& g);

/// Randomized accelerated variant under the promise of >= T triangles
/// (T >= 1). `runs` independent repetitions; one-sided error.
DlpResult dlp_triangle_detect_promised(CliqueUnicast& net, const Graph& g,
                                       std::uint64_t promised_triangles, int runs,
                                       Rng& rng);

}  // namespace cclique
