#include "core/turan_detect.h"

#include "graph/subgraph.h"
#include "graph/turan.h"
#include "sketch/sketch.h"
#include "util/math_util.h"

namespace cclique {

TuranDetectResult turan_subgraph_detect(CliqueBroadcast& net, const Graph& g,
                                        const Graph& h) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one node per vertex");
  TuranDetectResult result;
  result.degeneracy_cap = degeneracy_cap_if_h_free(static_cast<std::uint64_t>(n), h);
  const int k = result.degeneracy_cap;

  // One logical round of [2]'s algorithm A, chunked at b bits.
  std::vector<Message> payloads(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    payloads[static_cast<std::size_t>(v)] = serialize_sketch(make_sketch(g, v, k), n);
  }
  int rounds_used = 0;
  const std::vector<Message> board = broadcast_payloads(net, payloads, &rounds_used);

  // Referee-side reconstruction (every node runs the same deterministic
  // computation on the blackboard contents).
  std::vector<NodeSketch> sketches;
  sketches.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    sketches.push_back(deserialize_sketch(board[static_cast<std::size_t>(v)], k, n));
  }
  ReconstructionResult rec = reconstruct_from_sketches(std::move(sketches), k, n);
  result.reconstructed = rec.success;
  if (rec.success) {
    result.embedding = find_subgraph(rec.graph, h);
    result.contains_h = result.embedding.has_value();
    if (!result.contains_h) result.embedding.reset();
  } else {
    // Claim 6 contrapositive: degeneracy > 4 ex(n,H)/n forces a copy of H.
    result.contains_h = true;
  }
  result.stats = net.stats();
  return result;
}

TuranDetectResult full_broadcast_detect(CliqueBroadcast& net, const Graph& g,
                                        const Graph& h) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one node per vertex");
  // Node v broadcasts its adjacency row restricted to higher ids (each edge
  // announced once: n(n-1)/2 total bits of blackboard traffic).
  std::vector<Message> payloads(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    Message m;
    for (int u = v + 1; u < n; ++u) m.push_bit(g.has_edge(v, u));
    payloads[static_cast<std::size_t>(v)] = std::move(m);
  }
  int rounds_used = 0;
  const std::vector<Message> board = broadcast_payloads(net, payloads, &rounds_used);

  Graph rec(n);
  for (int v = 0; v < n; ++v) {
    const Message& m = board[static_cast<std::size_t>(v)];
    for (int u = v + 1; u < n; ++u) {
      if (m.get(static_cast<std::size_t>(u - v - 1))) rec.add_edge(v, u);
    }
  }
  TuranDetectResult result;
  result.reconstructed = true;
  result.embedding = find_subgraph(rec, h);
  result.contains_h = result.embedding.has_value();
  if (!result.contains_h) result.embedding.reset();
  result.stats = net.stats();
  return result;
}

}  // namespace cclique
