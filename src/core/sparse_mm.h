// Sparse distributed matrix products: the nnz-dependent block-MM schedule.
//
// The dense schedule (core/algebraic_mm, core/block_mm.h) ships every block
// entry at full width — Θ(n^{4/3} · w) bits per player regardless of the
// input. On sparse operands almost all of that traffic carries the implicit
// zero. This module runs the same [m]^3 decomposition and two-hop relay,
// but each row owner ships only its *explicit* entries as (local-index,
// value) pairs, so per-block payload lengths are proportional to the
// declared nnz counts instead of the dense block widths.
//
// That makes the schedule *data-dependent* — exactly what the oblivious
// guard exists to police. The contract (DESIGN.md §2.7–2.8, following the
// mst_phase_plan precedent for common-knowledge aggregates):
//
//  1. The dependence is *declared*: declared_nnz_profile() is the single
//     choke point where tainted sparsity structure (Csr61 row_ptr/cols
//     reads) becomes a plain-integer SparseNnzProfile, under an explicit
//     oblivious::declared_dependence scope. No other plan-side code reads
//     CSR structure; the static analyzer (tools/cc_oblivious.py, check 5)
//     enforces that any *_plan/*_profile body reading nnz structure names a
//     declared dependence.
//  2. The dependence is *announced*: the protocol's first phase broadcasts
//     every player's 2m per-block counts (count_bits each), so the relay's
//     required globally-known length matrix really is common knowledge
//     before any nnz-dependent payload moves — the profile is the protocol
//     input, not a hidden oracle.
//  3. The run is *checked*: sparse_mm_plan() prices all three phases
//     (announce, distribute, aggregate) from (n, w, b) plus the declared
//     profile, and run_sparse_mm CC_CHECKs measured rounds and bits against
//     it on every run, like every other plan in the repo.
//
// Aggregation stays dense-width: the output's sparsity is fill-in dependent
// (a product of sparse blocks need not be sparse, and pricing it would need
// a second declared announcement of *output* structure), so partial blocks
// travel at w bits per entry exactly like the dense schedule. The sparse
// win is the distribution phase plus nothing else — which is why the
// crossover (sparse_backend_preferred) is a genuine tradeoff and not a
// foregone conclusion.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "comm/clique_unicast.h"
#include "core/block_mm.h"
#include "linalg/sparse.h"
#include "util/check.h"
#include "util/math_util.h"

namespace cclique {

/// Common-knowledge sparsity profile of one product's operands: for each
/// (row v, column block t) of the [m]-interval grid, how many explicit
/// entries the row owner will ship. Plain integers — constructing one from
/// CSR operands is the declared tainted->plain boundary
/// (declared_nnz_profile); everything downstream (sparse_mm_plan,
/// run_sparse_mm's decode loops) reads only this struct.
struct SparseNnzProfile {
  int n = 0;
  int grid = 0;  ///< m, matching blockmm::BlockGrid(n).m
  /// a_block_nnz[v * grid + k]: explicit entries of A in row v with column
  /// in interval K_k. Likewise b_block_nnz[v * grid + j] for B over J_j.
  std::vector<std::size_t> a_block_nnz;
  std::vector<std::size_t> b_block_nnz;
  std::uint64_t a_nnz = 0;  ///< total explicit entries of A
  std::uint64_t b_nnz = 0;  ///< total explicit entries of B
};

/// Buckets both operands' explicit entries by (row, column block) under an
/// explicit oblivious::declared_dependence — the one sanctioned reading of
/// sparsity structure for scheduling purposes (DESIGN.md §2.8). Requires
/// a.n() == b.n().
SparseNnzProfile declared_nnz_profile(const Csr61& a, const Csr61& b);

/// The nnz-dependent cost schedule of one sparse product: a pure function
/// of (n, word_bits, bandwidth) and the declared profile.
struct SparseMmPlan {
  int n = 0;
  int grid = 0;        ///< m: block grid dimension
  int block = 0;       ///< ⌈n/m⌉ rows per interval
  int word_bits = 0;   ///< serialized bits per value
  int index_bits = 0;  ///< bits per local column index (bits_for(block))
  int count_bits = 0;  ///< bits per announced per-block count (bits_for(block+1))
  int bandwidth = 0;
  std::uint64_t a_nnz = 0;  ///< from the declared profile
  std::uint64_t b_nnz = 0;
  int announce_rounds = 0;    ///< per-player 2m-count broadcast
  int distribute_rounds = 0;  ///< (index, value)-pair delivery (two relay hops)
  int aggregate_rounds = 0;   ///< dense-width partial delivery (two relay hops)
  int total_rounds = 0;
  std::uint64_t announce_bits = 0;
  std::uint64_t total_bits = 0;  ///< all three phases
  /// Dense reference: algebraic_mm_plan(n, word_bits, bandwidth).total_bits,
  /// the cost of running the oblivious schedule on the same input.
  std::uint64_t dense_bits = 0;
};

/// Prices the three-phase sparse schedule for the declared profile.
/// Preconditions: profile matches (n, BlockGrid(n).m); word_bits in [1, 64];
/// bandwidth >= 1.
SparseMmPlan sparse_mm_plan(int n, int word_bits, int bandwidth,
                            const SparseNnzProfile& profile);

/// The adaptive-protocol crossover rule (DESIGN.md §2.8): both branches of
/// an adaptive protocol must pay the announcement before choosing, so
/// sparse wins iff its full cost beats announcement + the dense schedule.
inline bool sparse_backend_preferred(const SparseMmPlan& p) {
  return p.total_bits <= p.announce_bits + p.dense_bits;
}

/// Outcome of one sparse distributed product.
struct SparseMmResult {
  SparseMmPlan plan;
  int announce_rounds = 0;    ///< measured; equals plan.announce_rounds
  int distribute_rounds = 0;  ///< measured; equals plan.distribute_rounds
  int aggregate_rounds = 0;   ///< measured; equals plan.aggregate_rounds
  int total_rounds = 0;       ///< measured; equals plan.total_rounds
  std::uint64_t total_bits = 0;  ///< measured; equals plan.total_bits
};

/// The announcement phase on its own: every player broadcasts its 2m
/// per-block counts (count_bits each, A counts then B counts) so the
/// profile becomes common knowledge; player 0's inbox is CC_CHECKed against
/// the profile. Returns the rounds used — ceil(2m * count_bits / b) for
/// n >= 2. Adaptive protocols that *reject* the sparse branch still run
/// this (the decision needs the profile), then fall through to the dense
/// schedule.
int run_nnz_announcement(CliqueUnicast& net, const SparseNnzProfile& profile,
                         int count_bits);

/// One sparse distributed product C = A ⊗ B. The Ops concept extends the
/// dense block-MM adapters (core/algebraic_mm.cpp) with the sparse local
/// kernel and its ring tag:
///
///   struct Ops {
///     using Matrix = ...;                      // dense result carrier
///     static constexpr int kWordBits;          // serialized bits per value
///     static constexpr SparseRing kRing;       // CSR ring this Ops serves
///     static std::uint64_t get(const Matrix&, int i, int j);
///     static void set(Matrix&, int i, int j, std::uint64_t v);
///     static void accumulate(Matrix&, int i, int j, std::uint64_t v);
///     static Matrix spmm(const Csr61& a_blk, const Matrix& b_blk);
///   };
///
/// Phases: announce counts; relay each owner's explicit (local-index,
/// value) pairs per block (A pairs before B pairs per (owner, triple), CSR
/// column order within each block — the decode order); local sparse·dense
/// block products; dense-width aggregation identical to run_block_mm's
/// row layout. Measured rounds/bits are CC_CHECKed against `plan`.
template <typename Ops>
SparseMmResult run_sparse_mm(CliqueUnicast& net, const Csr61& a, const Csr61& b,
                             typename Ops::Matrix* c,
                             const SparseNnzProfile& profile,
                             const SparseMmPlan& plan) {
  using Matrix = typename Ops::Matrix;
  constexpr int w = Ops::kWordBits;
  const int n = a.n();
  CC_REQUIRE(net.n() == n, "one player per matrix row");
  CC_REQUIRE(b.n() == n, "size mismatch");
  CC_REQUIRE(c != nullptr, "output matrix required");
  CC_REQUIRE(a.ring() == Ops::kRing && b.ring() == Ops::kRing,
             "CSR ring does not match the Ops carrier");
  CC_REQUIRE(profile.n == n && plan.n == n, "profile/plan built for another n");
  const blockmm::BlockGrid g(n);
  const int m = g.m;
  const int index_bits = plan.index_bits;

  SparseMmResult res;
  res.plan = plan;
  const int rounds_before = net.stats().rounds;
  const std::uint64_t bits_before = net.stats().total_bits;

  // ---- Phase 1: make the declared profile common knowledge.
  res.announce_rounds = run_nnz_announcement(net, profile, plan.count_bits);

  // ---- Phase 2: row owners relay their explicit entries per block.
  // Executor-side CSR reads are sanctioned: source_touch is free outside
  // sinks — only *planning* on structure needs the declared dependence.
  const std::size_t* arp = a.row_ptr();
  const int* acols = a.cols();
  const std::uint64_t* avals = a.vals();
  const std::size_t* brp = b.row_ptr();
  const int* bcols = b.cols();
  const std::uint64_t* bvals = b.vals();
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    for (int v = g.lo(i); v < g.hi(i); ++v) {
      if (v == p) continue;  // the triple player reads its own row directly
      Message& msg = payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
      for (std::size_t e = arp[v]; e < arp[v + 1]; ++e) {
        if (acols[e] < g.lo(k) || acols[e] >= g.hi(k)) continue;
        msg.push_uint(static_cast<std::uint64_t>(acols[e] - g.lo(k)), index_bits);
        msg.push_uint(avals[e], w);
      }
    }
    for (int v = g.lo(k); v < g.hi(k); ++v) {
      if (v == p) continue;
      Message& msg = payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
      for (std::size_t e = brp[v]; e < brp[v + 1]; ++e) {
        if (bcols[e] < g.lo(j) || bcols[e] >= g.hi(j)) continue;
        msg.push_uint(static_cast<std::uint64_t>(bcols[e] - g.lo(j)), index_bits);
        msg.push_uint(bvals[e], w);
      }
    }
  }
  std::vector<std::vector<Message>> recv;
  res.distribute_rounds = unicast_payloads_relayed(net, payload, &recv);

  // ---- Local sparse block products: each triple assembles its A block as
  // a bs x bs CSR and its B block dense (padded with the semiring zero),
  // then runs the sparse·dense kernel. Decode mirrors the build: announced
  // counts bound every read, one sequential cursor per source owner.
  locality::PerPlayer<Matrix> partial(
      g.triples(), CC_LOCALITY_SITE("triple player's sparse block product"));
  const std::size_t pair_bits = static_cast<std::size_t>(index_bits + w);
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
    std::vector<std::size_t> row_ptr(static_cast<std::size_t>(g.bs) + 1, 0);
    std::vector<int> cols;
    std::vector<std::uint64_t> vals;
    for (int v = g.lo(i); v < g.hi(i); ++v) {
      const std::size_t cnt =
          profile.a_block_nnz[static_cast<std::size_t>(v) * static_cast<std::size_t>(m) +
                              static_cast<std::size_t>(k)];
      if (v == p) {
        std::size_t found = 0;
        for (std::size_t e = arp[v]; e < arp[v + 1]; ++e) {
          if (acols[e] < g.lo(k) || acols[e] >= g.hi(k)) continue;
          cols.push_back(acols[e] - g.lo(k));
          vals.push_back(avals[e]);
          ++found;
        }
        CC_CHECK(found == cnt, "local row diverged from the declared profile");
      } else {
        const Message& src =
            recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
        std::size_t& off = cur[static_cast<std::size_t>(v)];
        for (std::size_t t = 0; t < cnt; ++t) {
          cols.push_back(static_cast<int>(src.read_uint(off, index_bits)));
          vals.push_back(src.read_uint(off + static_cast<std::size_t>(index_bits), w));
          off += pair_bits;
        }
      }
      row_ptr[static_cast<std::size_t>(v - g.lo(i)) + 1] = cols.size();
    }
    for (int r = g.len(i); r < g.bs; ++r) {
      row_ptr[static_cast<std::size_t>(r) + 1] = cols.size();  // padding rows
    }
    const Csr61 ablk(g.bs, Ops::kRing, std::move(row_ptr), std::move(cols),
                     std::move(vals));
    Matrix bblk(g.bs);
    for (int v = g.lo(k); v < g.hi(k); ++v) {
      if (v == p) {
        for (std::size_t e = brp[v]; e < brp[v + 1]; ++e) {
          if (bcols[e] < g.lo(j) || bcols[e] >= g.hi(j)) continue;
          Ops::set(bblk, v - g.lo(k), bcols[e] - g.lo(j), bvals[e]);
        }
      } else {
        const std::size_t cnt =
            profile.b_block_nnz[static_cast<std::size_t>(v) * static_cast<std::size_t>(m) +
                                static_cast<std::size_t>(j)];
        const Message& src =
            recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
        std::size_t& off = cur[static_cast<std::size_t>(v)];
        for (std::size_t t = 0; t < cnt; ++t) {
          const int idx = static_cast<int>(src.read_uint(off, index_bits));
          Ops::set(bblk, v - g.lo(k), idx,
                   src.read_uint(off + static_cast<std::size_t>(index_bits), w));
          off += pair_bits;
        }
      }
    }
    partial[p] = Ops::spmm(ablk, bblk);
  }

  // ---- Phase 3: dense-width aggregation, identical to run_block_mm's row
  // layout (output sparsity is fill-in dependent and deliberately unpriced;
  // see header comment).
  std::vector<std::vector<Message>> payload2(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      if (r == p) continue;
      Message& msg = payload2[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
      for (int t = 0; t < g.len(j); ++t) {
        msg.push_uint(Ops::get(partial[p], r - g.lo(i), t), w);
      }
    }
  }
  std::vector<std::vector<Message>> recv2;
  res.aggregate_rounds = unicast_payloads_relayed(net, payload2, &recv2);

  *c = Matrix(n);
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int t = 0; t < g.len(j); ++t) {
        std::uint64_t v;
        if (r == p) {
          v = Ops::get(partial[p], r - g.lo(i), t);
        } else {
          const Message& src =
              recv2[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
          v = src.read_uint(static_cast<std::size_t>(t) * static_cast<std::size_t>(w), w);
        }
        Ops::accumulate(*c, r, g.lo(j) + t, v);
      }
    }
  }

  res.total_rounds = net.stats().rounds - rounds_before;
  res.total_bits = net.stats().total_bits - bits_before;
  CC_CHECK(res.announce_rounds == plan.announce_rounds,
           "announcement left the planned schedule");
  CC_CHECK(res.total_rounds == res.announce_rounds + res.distribute_rounds +
                                   res.aggregate_rounds,
           "round accounting out of sync");
  CC_CHECK(res.total_rounds == res.plan.total_rounds,
           "sparse MM rounds diverged from the planned schedule");
  CC_CHECK(res.total_bits == res.plan.total_bits,
           "sparse MM bits diverged from the planned schedule");
  return res;
}

/// Sparse distributed C = A·B over F_{2^61-1}: declares the profile, prices
/// the plan at net.bandwidth(), and runs the three-phase schedule.
/// Preconditions: both operands kM61, a.n() == b.n() == net.n().
SparseMmResult sparse_mm_m61(CliqueUnicast& net, const Csr61& a, const Csr61& b,
                             Mat61* c);

/// Sparse distributed distance product over (min, +); both operands
/// kTropical. The sparse twin of min_plus_mm.
SparseMmResult sparse_min_plus_mm(CliqueUnicast& net, const Csr61& a,
                                  const Csr61& b, TropicalMat* c);

}  // namespace cclique
