#include "core/mst.h"

#include <algorithm>
#include <numeric>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "routing/router.h"
#include "util/math_util.h"

namespace cclique {

namespace {

// Tie-broken comparison key: (weight, min endpoint, max endpoint).
std::uint64_t edge_key(int u, int v, std::uint32_t w) {
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(u, v));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(u, v));
  return (static_cast<std::uint64_t>(w) << 26) | (lo << 13) | hi;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    // Deterministic: smaller root wins, so every node computes the same
    // forest.
    if (a > b) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
    return true;
  }
};

/// One inter-fragment candidate edge; u lies on the submitting side.
struct EdgeRecord {
  bool valid = false;
  int u = 0, v = 0;
  std::uint32_t w = 0;
};

bool record_less(const EdgeRecord& a, const EdgeRecord& b) {
  return edge_key(a.u, a.v, a.w) < edge_key(b.u, b.v, b.w);
}

std::uint64_t pack_record(const EdgeRecord& r, int addr) {
  return (static_cast<std::uint64_t>(r.u) << (addr + 32)) |
         (static_cast<std::uint64_t>(r.v) << 32) | r.w;
}

EdgeRecord unpack_record(std::uint64_t bits, int addr) {
  EdgeRecord r;
  r.valid = true;
  r.u = static_cast<int>(bits >> (addr + 32));
  r.v = static_cast<int>((bits >> 32) & ((1ULL << addr) - 1));
  r.w = static_cast<std::uint32_t>(bits & 0xFFFFFFFFULL);
  return r;
}

/// Adjacency-indexed incident weights: weight_at[v][i] is the weight of
/// edge {v, g.neighbors(v)[i]}. One O(m log d) build replaces the former
/// std::map lookup per neighbor per phase (O(m log m) local work per phase).
std::vector<std::vector<std::uint32_t>> build_incident_weights(
    const Graph& g, const std::vector<std::uint32_t>& weights) {
  // Edge weights are payload (they decide which edges win, never how many
  // bits a round ships): register the ingestion as a tainted source so a
  // schedule computed inside a sink can never consume them.
  oblivious::source_touch(CC_OBLIVIOUS_SITE("MST edge-weight ingestion"));
  const int n = g.num_vertices();
  std::vector<std::vector<std::uint32_t>> weight_at(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    weight_at[static_cast<std::size_t>(v)].resize(g.neighbors(v).size());
  }
  const auto edges = g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const int u = edges[e].u;
    const int v = edges[e].v;
    const auto& au = g.neighbors(u);
    const auto& av = g.neighbors(v);
    weight_at[static_cast<std::size_t>(u)][static_cast<std::size_t>(
        std::lower_bound(au.begin(), au.end(), v) - au.begin())] = weights[e];
    weight_at[static_cast<std::size_t>(v)][static_cast<std::size_t>(
        std::lower_bound(av.begin(), av.end(), u) - av.begin())] = weights[e];
  }
  return weight_at;
}

/// Provable per-(directed edge, hop) record cap for route_two_phase at
/// per-player demand <= m: when a message is placed, fewer than n/2 relays
/// have sender-side load >= ceil(2m/n) and fewer than n/2 have
/// receiver-side load >= ceil(2m/n), so the greedy always finds a relay
/// below the cap on both sides.
std::uint64_t route_edge_records(std::uint64_t m, int n) {
  return ceil_div(2 * m, static_cast<std::uint64_t>(n));
}

/// Round cap for one route_two_phase call (two unicast_payloads hops).
int route_cap_rounds(std::uint64_t m, int n, int wire_record_bits, int b) {
  if (m == 0) return 0;
  const std::uint64_t per_edge_bits =
      route_edge_records(m, n) * static_cast<std::uint64_t>(wire_record_bits);
  return 2 * static_cast<int>(ceil_div(per_edge_bits, static_cast<std::uint64_t>(b)));
}

/// Shared per-run state of the two schedules: fragment bookkeeping is the
/// same; only the per-phase candidate selection and merge rule differ.
struct MstEngine {
  CliqueUnicast& net;
  const Graph& g;
  int n;
  int addr;      // node-id field width
  int rec_bits;  // one edge record: 2*addr + 32
  std::vector<std::vector<std::uint32_t>> weight_at;
  UnionFind fragments;
  std::vector<char> complete;  // by fragment root id
  MstResult result;

  // Refreshed at each phase start.
  std::vector<int> frag;        // frag[v] = fragment root of v
  std::vector<int> live_roots;  // roots of incomplete fragments, ascending

  MstEngine(CliqueUnicast& net_in, const Graph& g_in,
            const std::vector<std::uint32_t>& weights)
      : net(net_in),
        g(g_in),
        n(g_in.num_vertices()),
        addr(bits_for(static_cast<std::uint64_t>(std::max(1, n)))),
        rec_bits(2 * addr + 32),
        weight_at(build_incident_weights(g_in, weights)),
        fragments(n),
        complete(static_cast<std::size_t>(n), 0) {
    frag.resize(static_cast<std::size_t>(n));
  }

  void refresh() {
    live_roots.clear();
    for (int v = 0; v < n; ++v) frag[static_cast<std::size_t>(v)] = fragments.find(v);
    for (int v = 0; v < n; ++v) {
      if (frag[static_cast<std::size_t>(v)] == v && !complete[static_cast<std::size_t>(v)]) {
        live_roots.push_back(v);
      }
    }
  }

  /// Step 1 of every phase (both schedules): each node announces its
  /// fragment id to everyone. Fragment states are already consistent; the
  /// announcement models the information flow. 1 round.
  void announce_round() {
    net.round(
        [&](int i) {
          Message m;
          m.push_uint(static_cast<std::uint64_t>(frag[static_cast<std::size_t>(i)]), addr);
          std::vector<Message> box(static_cast<std::size_t>(n));
          for (int j = 0; j < n; ++j) {
            if (j != i) box[static_cast<std::size_t>(j)] = m;
          }
          return box;
        },
        [&](int, const std::vector<Message>&) {});
  }

  void add_tree_edge(const EdgeRecord& c) {
    result.tree.push_back(
        WeightedEdge{std::min(c.u, c.v), std::max(c.u, c.v), c.w});
    result.total_weight += c.w;
  }

  void run_boruvka_phase();
  void run_lotker_phase(int submit_cap);
};

void MstEngine::run_boruvka_phase() {
  announce_round();

  // --- step 2: lightest outgoing edge per node -> fragment leader --------
  // Per-node private state (ownership-tagged): a node's candidate is local
  // knowledge until it is shipped to the leader.
  locality::PerPlayer<EdgeRecord> node_candidate(
      n, CC_LOCALITY_SITE("per-node candidate edge"));
  for (int v = 0; v < n; ++v) {
    EdgeRecord best;
    const auto& nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const int u = nb[i];
      if (frag[static_cast<std::size_t>(u)] == frag[static_cast<std::size_t>(v)]) continue;
      const std::uint32_t w = weight_at[static_cast<std::size_t>(v)][i];
      if (!best.valid || edge_key(v, u, w) < edge_key(best.u, best.v, best.w)) {
        best = EdgeRecord{true, v, u, w};
      }
    }
    node_candidate[v] = best;
  }
  // One message per node to its leader (leader = fragment root id).
  locality::PerPlayer<EdgeRecord> leader_best(
      n, CC_LOCALITY_SITE("leader's fragment-best edge"));
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        const EdgeRecord& c = node_candidate[i];
        const int leader = frag[static_cast<std::size_t>(i)];
        if (c.valid && leader != i) {
          Message m;
          m.push_uint(pack_record(c, addr), rec_bits);
          box[static_cast<std::size_t>(leader)] = std::move(m);
        }
        return box;
      },
      [&](int leader, const std::vector<Message>& inbox) {
        EdgeRecord& best = leader_best[leader];
        // Leader's own candidate participates.
        const EdgeRecord& own = node_candidate[leader];
        if (own.valid && frag[static_cast<std::size_t>(leader)] == leader) best = own;
        for (int j = 0; j < n; ++j) {
          const Message& m = inbox[static_cast<std::size_t>(j)];
          if (m.empty()) continue;
          const EdgeRecord c = unpack_record(m.read_uint(0, rec_bits), addr);
          if (!best.valid || record_less(c, best)) best = c;
        }
      });

  // --- step 3: leaders announce merge edges (1 round); local merge -------
  std::vector<EdgeRecord> announced(static_cast<std::size_t>(n));
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        const EdgeRecord& c = leader_best[i];
        if (frag[static_cast<std::size_t>(i)] == i && c.valid) {
          Message m;
          m.push_uint(pack_record(c, addr), rec_bits);
          for (int j = 0; j < n; ++j) {
            if (j != i) box[static_cast<std::size_t>(j)] = m;
          }
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;  // everyone decodes identically; model once
        for (int j = 0; j < n; ++j) {
          const Message& m = inbox[static_cast<std::size_t>(j)];
          if (m.empty()) continue;
          announced[static_cast<std::size_t>(j)] =
              unpack_record(m.read_uint(0, rec_bits), addr);
        }
      });
  // Leaders' own announcements (self-knowledge).
  for (int r : live_roots) {
    if (leader_best[r].valid) {
      announced[static_cast<std::size_t>(r)] = leader_best[r];
    }
  }

  // A live fragment whose leader announced nothing has no outgoing edge —
  // it is a finished component and never participates again, so the
  // schedule terminates without burning a merge-free phase.
  for (int r : live_roots) {
    if (!announced[static_cast<std::size_t>(r)].valid) complete[static_cast<std::size_t>(r)] = 1;
  }
  for (int r : live_roots) {
    const EdgeRecord& c = announced[static_cast<std::size_t>(r)];
    if (c.valid && fragments.unite(c.u, c.v)) add_tree_edge(c);
  }
}

void MstEngine::run_lotker_phase(int submit_cap) {
  announce_round();
  const int F = static_cast<int>(live_roots.size());
  const int k = submit_cap;

  // Common-knowledge indexing: position of each live root, sorted members
  // and in-fragment ranks.
  std::vector<int> frag_index(static_cast<std::size_t>(n), -1);
  for (int idx = 0; idx < F; ++idx) frag_index[static_cast<std::size_t>(live_roots[idx])] = idx;
  std::vector<std::vector<int>> members(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const int a = frag[static_cast<std::size_t>(v)];
    if (!complete[static_cast<std::size_t>(a)]) members[static_cast<std::size_t>(a)].push_back(v);
  }

  // --- stage A: per-node per-target minima -> in-fragment aggregators ----
  // Node v computes its own lightest edge to every adjacent fragment (local
  // knowledge) and ships each record to the member of its fragment that
  // aggregates that target (target index mod fragment size). Demand:
  // <= F-1 records out per node, <= ceil(F/m)*m <= F+n in per aggregator.
  std::vector<int> stamp(static_cast<std::size_t>(n), -1);
  std::vector<EdgeRecord> best_to(static_cast<std::size_t>(n));
  locality::PerPlayer<std::vector<EdgeRecord>> agg_in(
      n, CC_LOCALITY_SITE("aggregator's received records"));
  RoutingDemand a_demand;
  a_demand.payload_bits = rec_bits;
  std::vector<int> touched;
  for (int v = 0; v < n; ++v) {
    const int a = frag[static_cast<std::size_t>(v)];
    const auto& nb = g.neighbors(v);
    touched.clear();
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const int u = nb[i];
      const int x = frag[static_cast<std::size_t>(u)];
      if (x == a) continue;
      const std::uint32_t w = weight_at[static_cast<std::size_t>(v)][i];
      const EdgeRecord cand{true, v, u, w};
      if (stamp[static_cast<std::size_t>(x)] != v) {
        stamp[static_cast<std::size_t>(x)] = v;
        best_to[static_cast<std::size_t>(x)] = cand;
        touched.push_back(x);
      } else if (record_less(cand, best_to[static_cast<std::size_t>(x)])) {
        best_to[static_cast<std::size_t>(x)] = cand;
      }
    }
    const auto& mem = members[static_cast<std::size_t>(a)];
    for (int x : touched) {
      const EdgeRecord& rec = best_to[static_cast<std::size_t>(x)];
      const int dest = mem[static_cast<std::size_t>(frag_index[static_cast<std::size_t>(x)]) %
                          mem.size()];
      if (dest == v) {
        agg_in[v].push_back(rec);
      } else {
        a_demand.messages.push_back(RoutedMessage{v, dest, pack_record(rec, addr)});
      }
    }
  }
  RoutingResult ra = route_two_phase(net, a_demand);
  for (int p = 0; p < n; ++p) {
    for (const auto& [src, payload] : ra.delivered[static_cast<std::size_t>(p)]) {
      (void)src;
      const EdgeRecord rec = unpack_record(payload, addr);
      CC_CHECK(frag[static_cast<std::size_t>(rec.u)] == frag[static_cast<std::size_t>(p)],
               "aggregated record must come from the aggregator's own fragment");
      agg_in[p].push_back(rec);
    }
  }

  // --- stage B: aggregators reduce per target and forward to the leader --
  locality::PerPlayer<std::vector<EdgeRecord>> leader_in(
      n, CC_LOCALITY_SITE("leader's received minima"));
  RoutingDemand b_demand;
  b_demand.payload_bits = rec_bits;
  std::fill(stamp.begin(), stamp.end(), -1);
  for (int p = 0; p < n; ++p) {
    if (agg_in[p].empty()) continue;
    const int a = frag[static_cast<std::size_t>(p)];
    touched.clear();
    for (const EdgeRecord& rec : agg_in[p]) {
      const int x = frag[static_cast<std::size_t>(rec.v)];
      if (stamp[static_cast<std::size_t>(x)] != p) {
        stamp[static_cast<std::size_t>(x)] = p;
        best_to[static_cast<std::size_t>(x)] = rec;
        touched.push_back(x);
      } else if (record_less(rec, best_to[static_cast<std::size_t>(x)])) {
        best_to[static_cast<std::size_t>(x)] = rec;
      }
    }
    for (int x : touched) {
      const EdgeRecord& rec = best_to[static_cast<std::size_t>(x)];
      if (p == a) {
        leader_in[a].push_back(rec);
      } else {
        b_demand.messages.push_back(RoutedMessage{p, a, pack_record(rec, addr)});
      }
    }
  }
  RoutingResult rb = route_two_phase(net, b_demand);
  for (int p = 0; p < n; ++p) {
    for (const auto& [src, payload] : rb.delivered[static_cast<std::size_t>(p)]) {
      (void)src;
      const EdgeRecord rec = unpack_record(payload, addr);
      CC_CHECK(frag[static_cast<std::size_t>(rec.u)] == p,
               "fragment minima must arrive at the fragment's own leader");
      leader_in[p].push_back(rec);
    }
  }

  // Leaders submit their k lightest per-target minima. Target slices are
  // disjoint across aggregators, so each target appears exactly once.
  locality::PerPlayer<std::vector<EdgeRecord>> submit(
      n, CC_LOCALITY_SITE("leader's capped submission list"));
  for (int r : live_roots) {
    auto& list = leader_in[r];
    std::sort(list.begin(), list.end(), record_less);
    const std::size_t take = std::min<std::size_t>(list.size(), static_cast<std::size_t>(k));
    submit[r].assign(list.begin(),
                     list.begin() + static_cast<std::ptrdiff_t>(take));
  }

  // --- stage C: submit counts -> everyone (1 round). The counts make the
  // submission layout common knowledge, so the scatter below is perfectly
  // balanced by construction.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        if (frag_index[static_cast<std::size_t>(i)] >= 0) {
          Message m;
          m.push_uint(submit[i].size(), addr);
          for (int j = 0; j < n; ++j) {
            if (j != i) box[static_cast<std::size_t>(j)] = m;
          }
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;  // identical decode everywhere; model once
        for (int r : live_roots) {
          if (r == receiver) {
            counts[static_cast<std::size_t>(r)] = submit[r].size();
            continue;
          }
          // Locality discipline: the count must arrive on the wire — a
          // fallback into another player's private state would leak.
          CC_CHECK(!inbox[static_cast<std::size_t>(r)].empty(),
                   "live leader must announce its submission count");
          counts[static_cast<std::size_t>(r)] =
              inbox[static_cast<std::size_t>(r)].read_uint(0, addr);
        }
      });
  std::vector<std::uint64_t> offset(static_cast<std::size_t>(n), 0);
  std::uint64_t total = 0;
  for (int idx = 0; idx < F; ++idx) {
    offset[static_cast<std::size_t>(live_roots[idx])] = total;
    total += counts[static_cast<std::size_t>(live_roots[idx])];
  }
  // Sum over fragments of min(k, F-1) with k = max(1, n/F) never exceeds n,
  // so the scatter assigns at most one record per player.
  CC_CHECK(total <= static_cast<std::uint64_t>(n),
           "submission total exceeds the balanced-scatter capacity");

  // --- stage D: balanced scatter (record g -> player g; <= 1 per edge) ---
  std::vector<std::vector<Message>> scatter(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  locality::PerPlayer<std::vector<EdgeRecord>> held(
      n, CC_LOCALITY_SITE("scatter slot's held record"));
  for (int r : live_roots) {
    const auto& list = submit[r];
    for (std::size_t t = 0; t < list.size(); ++t) {
      const int dest = static_cast<int>((offset[static_cast<std::size_t>(r)] + t) %
                                        static_cast<std::uint64_t>(n));
      if (dest == r) {
        held[r].push_back(list[t]);
      } else {
        scatter[static_cast<std::size_t>(r)][static_cast<std::size_t>(dest)].push_uint(
            pack_record(list[t], addr), rec_bits);
      }
    }
  }
  std::vector<std::vector<Message>> scatter_recv;
  unicast_payloads(net, scatter, &scatter_recv);
  for (int p = 0; p < n; ++p) {
    for (int src = 0; src < n; ++src) {
      const Message& stream = scatter_recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(src)];
      BitReader reader(stream);
      while (reader.remaining() > 0) {
        held[p].push_back(unpack_record(reader.read_uint(rec_bits), addr));
      }
    }
    const std::size_t expected = static_cast<std::uint64_t>(p) < total ? 1 : 0;
    CC_CHECK(held[p].size() == expected,
             "balanced scatter must deliver exactly one record per slot");
  }

  // --- stage E: all-broadcast of held records; every player assembles the
  // full submitted fragment graph (identical decode everywhere; model once).
  std::vector<std::vector<Message>> bcast(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < n; ++p) {
    if (held[p].empty()) continue;
    Message stream;
    for (const EdgeRecord& rec : held[p]) {
      stream.push_uint(pack_record(rec, addr), rec_bits);
    }
    for (int q = 0; q < n; ++q) {
      if (q != p) bcast[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] = stream;
    }
  }
  std::vector<std::vector<Message>> bcast_recv;
  unicast_payloads(net, bcast, &bcast_recv);
  std::vector<EdgeRecord> submitted;
  submitted.reserve(static_cast<std::size_t>(total));
  for (int q = 0; q < n; ++q) {
    if (q == 0) {
      for (const EdgeRecord& rec : held[0]) submitted.push_back(rec);
      continue;
    }
    const Message& stream = bcast_recv[0][static_cast<std::size_t>(q)];
    BitReader reader(stream);
    while (reader.remaining() > 0) {
      submitted.push_back(unpack_record(reader.read_uint(rec_bits), addr));
    }
  }
  CC_CHECK(submitted.size() == total, "all-broadcast must reassemble every record");
  std::sort(submitted.begin(), submitted.end(), record_less);

  // --- local capped merge of the fragment graph (identical everywhere) ---
  // Clusters of at most k fragments repeatedly merge along their true
  // minimum outgoing edge. For a cluster C with |C| <= k, each member
  // fragment either submitted its full target list or its k lightest — of
  // which at most |C|-1 <= k-1 can point inside C — so the lightest
  // submitted edge leaving C *is* the cluster's true minimum outgoing edge
  // and the cut property makes it an MST edge. Clusters left with <= k
  // fragments and no outgoing submitted edge are finished components.
  std::vector<std::vector<EdgeRecord>> list(static_cast<std::size_t>(n));
  for (const EdgeRecord& rec : submitted) {
    const int a = frag[static_cast<std::size_t>(rec.u)];
    CC_CHECK(frag_index[static_cast<std::size_t>(a)] >= 0 &&
                 frag_index[static_cast<std::size_t>(frag[static_cast<std::size_t>(rec.v)])] >= 0,
             "submitted records must connect live fragments");
    list[static_cast<std::size_t>(a)].push_back(rec);  // globally sorted order
  }
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<int> fragcount(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> cluster_members(static_cast<std::size_t>(n));
  for (int r : live_roots) {
    fragcount[static_cast<std::size_t>(r)] = 1;
    cluster_members[static_cast<std::size_t>(r)].push_back(r);
  }
  auto min_outgoing = [&](int c) {
    EdgeRecord best;
    for (int a : cluster_members[static_cast<std::size_t>(c)]) {
      auto& cur = cursor[static_cast<std::size_t>(a)];
      const auto& la = list[static_cast<std::size_t>(a)];
      // Entries pointing inside the cluster stay inside forever (clusters
      // only grow), so the cursor never rewinds.
      while (cur < la.size() && fragments.find(la[cur].v) == c) ++cur;
      if (cur < la.size() && (!best.valid || record_less(la[cur], best))) best = la[cur];
    }
    return best;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    for (int c : live_roots) {
      if (fragments.find(c) != c) continue;  // merged away
      if (fragcount[static_cast<std::size_t>(c)] > k) continue;
      const EdgeRecord e = min_outgoing(c);
      if (!e.valid) continue;
      const int other = fragments.find(e.v);
      const bool united = fragments.unite(e.u, e.v);
      CC_CHECK(united, "merge edge must join two clusters");
      add_tree_edge(e);
      const int nr = fragments.find(e.u);
      const int from = nr == c ? other : c;
      fragcount[static_cast<std::size_t>(nr)] += fragcount[static_cast<std::size_t>(from)];
      fragcount[static_cast<std::size_t>(from)] = 0;
      auto& into = cluster_members[static_cast<std::size_t>(nr)];
      auto& out = cluster_members[static_cast<std::size_t>(from)];
      into.insert(into.end(), out.begin(), out.end());
      out.clear();
      progress = true;
    }
  }
  // Surviving clusters with <= k fragments have no outgoing submitted edge,
  // hence (by the safety argument above) no outgoing edge at all: finished.
  for (int c : live_roots) {
    if (fragments.find(c) == c && fragcount[static_cast<std::size_t>(c)] <= k) {
      complete[static_cast<std::size_t>(c)] = 1;
    }
  }
}

}  // namespace

MstPhasePlan mst_phase_plan(MstAlgorithm algorithm, int n, int live_fragments,
                            int bandwidth) {
  // Plan-function sink. `live_fragments` is data-derived but common
  // knowledge by the time a phase is priced (every player learns the merge
  // outcomes), and it arrives here as a plain int — pricing from it is the
  // documented declared-dependence precedent in DESIGN.md §2.7. Reading
  // *edge weights* here would trip the guard.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("mst_phase_plan"));
  CC_REQUIRE(n >= 1 && live_fragments >= 0 && live_fragments <= n,
             "fragment count must lie in [0, n]");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  const int addr = bits_for(static_cast<std::uint64_t>(std::max(1, n)));
  const std::uint64_t rec = static_cast<std::uint64_t>(2 * addr + 32);
  const std::uint64_t wire_rec = static_cast<std::uint64_t>(addr) + rec;  // router framing
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t uf = static_cast<std::uint64_t>(live_fragments);
  const std::uint64_t announce_bits = un * (un - 1) * static_cast<std::uint64_t>(addr);
  MstPhasePlan plan;
  plan.fragments = live_fragments;
  if (algorithm == MstAlgorithm::kBoruvka) {
    plan.submit_cap = 1;
    plan.max_rounds = 3;  // exact: announce + candidates + leader broadcast
    plan.max_bits = announce_bits + un * rec + uf * (un - 1) * rec;
    return plan;
  }
  const int k = std::max(1, n / std::max(1, live_fragments));
  plan.submit_cap = k;
  // Stage demand bounds, data-independent given (n, F): members send one
  // record per adjacent fragment (<= F-1 out) to rank-sliced aggregators
  // (<= ceil(F/m)*m <= F+n in); aggregators forward <= F-1 records to the
  // leader; the count round and the (<= 1 record per edge) scatter and
  // all-broadcast are single chunked exchanges.
  const std::uint64_t m_a = uf + un;
  const std::uint64_t m_b = uf;
  const int single_record_rounds =
      static_cast<int>(ceil_div(rec, static_cast<std::uint64_t>(bandwidth)));
  plan.max_rounds = 1  // announcement
                    + route_cap_rounds(m_a, n, static_cast<int>(wire_rec), bandwidth)
                    + route_cap_rounds(m_b, n, static_cast<int>(wire_rec), bandwidth)
                    + 1  // count broadcast
                    + single_record_rounds   // scatter
                    + single_record_rounds;  // all-broadcast
  const std::uint64_t f_minus = uf == 0 ? 0 : uf - 1;
  plan.max_bits = announce_bits
                  + 2 * un * f_minus * wire_rec   // stage A, two hops
                  + 2 * uf * f_minus * wire_rec   // stage B, two hops
                  + uf * (un - 1) * static_cast<std::uint64_t>(addr)  // counts
                  + un * rec                      // scatter, <= n records
                  + un * (un - 1) * rec;          // all-broadcast
  return plan;
}

int mst_lotker_phase_bound(int n) {
  if (n <= 1) return 0;
  int phases = 0;
  // Guaranteed growth: a phase entered with minimum live fragment size s
  // uses k >= s and leaves every live cluster with more than k fragments,
  // so s' >= s*(s+1). A phase can run only while two live fragments fit.
  std::uint64_t s = 1;
  while (2 * s <= static_cast<std::uint64_t>(n)) {
    s *= s + 1;
    ++phases;
  }
  return phases;
}

MstResult clique_mst(CliqueUnicast& net, const Graph& g,
                     const std::vector<std::uint32_t>& weights,
                     MstAlgorithm algorithm) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n <= (1 << 13), "vertex ids exceed the packed edge-key width");
  CC_REQUIRE(weights.size() == g.edges().size(), "one weight per edge");
  const int addr = bits_for(static_cast<std::uint64_t>(std::max(1, n)));
  CC_REQUIRE(net.bandwidth() >= 2 * addr + 32,
             "bandwidth must fit one edge record per message");

  MstEngine engine(net, g, weights);
  engine.result.algorithm = algorithm;
  while (true) {
    engine.refresh();
    // A single live fragment cannot have an outgoing edge (every other
    // fragment is a finished component), so the forest is complete; no
    // merge-free phase is ever executed to discover termination.
    if (engine.live_roots.size() <= 1) break;
    const int live = static_cast<int>(engine.live_roots.size());
    const MstPhasePlan plan = mst_phase_plan(algorithm, n, live, net.bandwidth());
    const int rounds_before = net.stats().rounds;
    const std::uint64_t bits_before = net.stats().total_bits;
    if (algorithm == MstAlgorithm::kBoruvka) {
      engine.run_boruvka_phase();
    } else {
      engine.run_lotker_phase(plan.submit_cap);
    }
    MstPhaseCost cost;
    cost.fragments = live;
    cost.rounds = net.stats().rounds - rounds_before;
    cost.bits = net.stats().total_bits - bits_before;
    cost.plan = plan;
    // The cap is computed from (n, F, b) alone before the phase runs; a
    // violation means the schedule left its data-independent budget.
    if (algorithm == MstAlgorithm::kBoruvka) {
      CC_CHECK(cost.rounds == plan.max_rounds,
               "Borůvka phase must cost exactly its planned rounds");
    } else {
      CC_CHECK(cost.rounds <= plan.max_rounds,
               "Lotker phase exceeded its planned round cap");
    }
    CC_CHECK(cost.bits <= plan.max_bits, "phase exceeded its planned bit cap");
    engine.result.phase_costs.push_back(cost);
    ++engine.result.phases;
  }

  std::sort(engine.result.tree.begin(), engine.result.tree.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return edge_key(a.u, a.v, a.weight) < edge_key(b.u, b.v, b.weight);
            });
  engine.result.stats = net.stats();
  return engine.result;
}

MstResult clique_mst(CliqueUnicast& net, const Graph& g,
                     const std::vector<std::uint32_t>& weights) {
  return clique_mst(net, g, weights, MstAlgorithm::kBoruvka);
}

std::vector<WeightedEdge> kruskal_reference(const Graph& g,
                                            const std::vector<std::uint32_t>& weights) {
  const auto edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edge_key(edges[a].u, edges[a].v, weights[a]) <
           edge_key(edges[b].u, edges[b].v, weights[b]);
  });
  UnionFind uf(g.num_vertices());
  std::vector<WeightedEdge> tree;
  for (std::size_t e : order) {
    if (uf.unite(edges[e].u, edges[e].v)) {
      tree.push_back(WeightedEdge{edges[e].u, edges[e].v, weights[e]});
    }
  }
  std::sort(tree.begin(), tree.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return edge_key(a.u, a.v, a.weight) < edge_key(b.u, b.v, b.weight);
  });
  return tree;
}

}  // namespace cclique
