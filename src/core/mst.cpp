#include "core/mst.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/math_util.h"

namespace cclique {

namespace {

// Tie-broken comparison key: (weight, min endpoint, max endpoint).
std::uint64_t edge_key(int u, int v, std::uint32_t w) {
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(u, v));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(u, v));
  return (static_cast<std::uint64_t>(w) << 26) | (lo << 13) | hi;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    // Deterministic: smaller root wins, so every node computes the same
    // forest.
    if (a > b) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
    return true;
  }
};

}  // namespace

MstResult clique_mst(CliqueUnicast& net, const Graph& g,
                     const std::vector<std::uint32_t>& weights) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n <= (1 << 13), "vertex ids exceed the packed edge-key width");
  const auto edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");

  // Local incident-edge tables (this is the nodes' input knowledge).
  std::map<std::pair<int, int>, std::uint32_t> weight_of;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    weight_of[{edges[e].u, edges[e].v}] = weights[e];
  }
  auto incident_weight = [&](int u, int v) {
    auto it = weight_of.find({std::min(u, v), std::max(u, v)});
    CC_CHECK(it != weight_of.end(), "edge weight lookup failed");
    return it->second;
  };

  const int addr = bits_for(static_cast<std::uint64_t>(std::max(1, n)));
  MstResult result;
  // Every node tracks the fragment of every node (consistent by
  // construction: identical deterministic merges everywhere).
  UnionFind fragments(n);

  for (int phase = 0; phase < n; ++phase) {
    // --- step 1: fragment announcement (1 round) ---------------------
    // Fragment states are already consistent; the announcement models the
    // information flow (each node broadcasts its fragment id).
    std::vector<int> frag(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) frag[static_cast<std::size_t>(v)] = fragments.find(v);
    net.round(
        [&](int i) {
          Message m;
          m.push_uint(static_cast<std::uint64_t>(frag[static_cast<std::size_t>(i)]), addr);
          std::vector<Message> box(static_cast<std::size_t>(n));
          for (int j = 0; j < n; ++j) {
            if (j != i) box[static_cast<std::size_t>(j)] = m;
          }
          return box;
        },
        [&](int, const std::vector<Message>&) {});

    // --- step 2: lightest outgoing edge per node -> fragment leader ---
    // candidate[v] = v's lightest incident edge leaving its fragment.
    struct Candidate {
      bool valid = false;
      int u = 0, v = 0;
      std::uint32_t w = 0;
    };
    std::vector<Candidate> node_candidate(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      Candidate best;
      for (int u : g.neighbors(v)) {
        if (frag[static_cast<std::size_t>(u)] == frag[static_cast<std::size_t>(v)]) continue;
        const std::uint32_t w = incident_weight(v, u);
        if (!best.valid || edge_key(v, u, w) < edge_key(best.u, best.v, best.w)) {
          best = Candidate{true, v, u, w};
        }
      }
      node_candidate[static_cast<std::size_t>(v)] = best;
    }
    // One message per node to its leader (leader = fragment root id).
    std::vector<Candidate> leader_best(static_cast<std::size_t>(n));
    net.round(
        [&](int i) {
          std::vector<Message> box(static_cast<std::size_t>(n));
          const Candidate& c = node_candidate[static_cast<std::size_t>(i)];
          const int leader = frag[static_cast<std::size_t>(i)];
          if (c.valid && leader != i) {
            Message m;
            m.push_uint(static_cast<std::uint64_t>(c.u), addr);
            m.push_uint(static_cast<std::uint64_t>(c.v), addr);
            m.push_uint(c.w, 32);
            box[static_cast<std::size_t>(leader)] = std::move(m);
          }
          return box;
        },
        [&](int leader, const std::vector<Message>& inbox) {
          Candidate& best = leader_best[static_cast<std::size_t>(leader)];
          // Leader's own candidate participates.
          const Candidate& own = node_candidate[static_cast<std::size_t>(leader)];
          if (own.valid && frag[static_cast<std::size_t>(leader)] == leader) best = own;
          for (int j = 0; j < n; ++j) {
            const Message& m = inbox[static_cast<std::size_t>(j)];
            if (m.empty()) continue;
            BitReader r(m);
            Candidate c;
            c.valid = true;
            c.u = static_cast<int>(r.read_uint(addr));
            c.v = static_cast<int>(r.read_uint(addr));
            c.w = static_cast<std::uint32_t>(r.read_uint(32));
            if (!best.valid || edge_key(c.u, c.v, c.w) < edge_key(best.u, best.v, best.w)) {
              best = c;
            }
          }
        });

    // --- step 3: leaders announce merge edges (1 round); local merge ---
    std::vector<Candidate> announced(static_cast<std::size_t>(n));
    net.round(
        [&](int i) {
          std::vector<Message> box(static_cast<std::size_t>(n));
          const Candidate& c = leader_best[static_cast<std::size_t>(i)];
          if (frag[static_cast<std::size_t>(i)] == i && c.valid) {
            Message m;
            m.push_uint(static_cast<std::uint64_t>(c.u), addr);
            m.push_uint(static_cast<std::uint64_t>(c.v), addr);
            m.push_uint(c.w, 32);
            for (int j = 0; j < n; ++j) {
              if (j != i) box[static_cast<std::size_t>(j)] = m;
            }
          }
          return box;
        },
        [&](int receiver, const std::vector<Message>& inbox) {
          if (receiver != 0) return;  // everyone decodes identically; model once
          for (int j = 0; j < n; ++j) {
            const Message& m = inbox[static_cast<std::size_t>(j)];
            if (m.empty()) continue;
            BitReader r(m);
            Candidate c;
            c.valid = true;
            c.u = static_cast<int>(r.read_uint(addr));
            c.v = static_cast<int>(r.read_uint(addr));
            c.w = static_cast<std::uint32_t>(r.read_uint(32));
            announced[static_cast<std::size_t>(j)] = c;
          }
        });
    // Leaders' own announcements (self-knowledge).
    for (int i = 0; i < n; ++i) {
      if (frag[static_cast<std::size_t>(i)] == i && leader_best[static_cast<std::size_t>(i)].valid) {
        announced[static_cast<std::size_t>(i)] = leader_best[static_cast<std::size_t>(i)];
      }
    }

    bool merged_any = false;
    for (int i = 0; i < n; ++i) {
      const Candidate& c = announced[static_cast<std::size_t>(i)];
      if (!c.valid) continue;
      if (fragments.unite(c.u, c.v)) {
        result.tree.push_back(WeightedEdge{std::min(c.u, c.v), std::max(c.u, c.v), c.w});
        result.total_weight += c.w;
        merged_any = true;
      }
    }
    ++result.phases;
    if (!merged_any) break;
  }

  std::sort(result.tree.begin(), result.tree.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return edge_key(a.u, a.v, a.weight) < edge_key(b.u, b.v, b.weight);
            });
  result.stats = net.stats();
  return result;
}

std::vector<WeightedEdge> kruskal_reference(const Graph& g,
                                            const std::vector<std::uint32_t>& weights) {
  const auto edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edge_key(edges[a].u, edges[a].v, weights[a]) <
           edge_key(edges[b].u, edges[b].v, weights[b]);
  });
  UnionFind uf(g.num_vertices());
  std::vector<WeightedEdge> tree;
  for (std::size_t e : order) {
    if (uf.unite(edges[e].u, edges[e].v)) {
      tree.push_back(WeightedEdge{edges[e].u, edges[e].v, weights[e]});
    }
  }
  std::sort(tree.begin(), tree.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return edge_key(a.u, a.v, a.weight) < edge_key(b.u, b.v, b.weight);
  });
  return tree;
}

}  // namespace cclique
