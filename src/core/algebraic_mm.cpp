#include "core/algebraic_mm.h"

#include <algorithm>
#include <vector>

#include "util/math_util.h"

namespace cclique {

namespace {

/// The [m]^3 block grid: interval t covers rows [lo(t), hi(t)), triple
/// (i, j, k) lives at player (i*m + j)*m + k. All of it is a function of n
/// alone, so every player derives the same geometry.
struct Grid {
  int n = 0;
  int m = 0;
  int bs = 0;

  explicit Grid(int n_in) : n(n_in) {
    CC_REQUIRE(n >= 1, "need at least one player");
    m = static_cast<int>(icbrt(static_cast<std::uint64_t>(n)));
    if (m < 1) m = 1;
    bs = static_cast<int>(ceil_div(static_cast<std::uint64_t>(n),
                                   static_cast<std::uint64_t>(m)));
    // (m-1)^2 < n guarantees every interval is non-empty (m <= n^{1/3}).
    CC_CHECK((m - 1) * bs < n, "degenerate block interval");
  }

  int triples() const { return m * m * m; }
  int lo(int t) const { return t * bs; }
  int hi(int t) const { return std::min(n, (t + 1) * bs); }
  int len(int t) const { return hi(t) - lo(t); }
  int ti(int p) const { return p / (m * m); }
  int tj(int p) const { return (p / m) % m; }
  int tk(int p) const { return p % m; }
};

using LengthMatrix = std::vector<std::vector<std::size_t>>;

/// Distribution-phase payload lengths in bits: row owner v ships its A-row
/// slice over columns K_k to every triple (i, *, k) with v in I_i, and its
/// B-row slice over columns J_j to every triple (*, j, k) with v in K_k
/// (A part first, then B part — the decode order). Self-payloads are local.
LengthMatrix distribute_lengths(const Grid& g, int w) {
  LengthMatrix len(static_cast<std::size_t>(g.n),
                   std::vector<std::size_t>(static_cast<std::size_t>(g.n), 0));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      if (r == p) continue;
      len[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] +=
          static_cast<std::size_t>(g.len(k)) * static_cast<std::size_t>(w);
    }
    for (int r = g.lo(k); r < g.hi(k); ++r) {
      if (r == p) continue;
      len[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] +=
          static_cast<std::size_t>(g.len(j)) * static_cast<std::size_t>(w);
    }
  }
  return len;
}

/// Aggregation-phase payload lengths: triple (i, j, k) ships one partial
/// row slice (|J_j| elements) to every output row owner r in I_i.
LengthMatrix aggregate_lengths(const Grid& g, int w) {
  LengthMatrix len(static_cast<std::size_t>(g.n),
                   std::vector<std::size_t>(static_cast<std::size_t>(g.n), 0));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      if (r == p) continue;
      len[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(g.len(j)) * static_cast<std::size_t>(w);
    }
  }
  return len;
}

/// Cost of shipping a length matrix through unicast_payloads_relayed:
/// replays the relay's chunk arithmetic (relay_chunk_lo) on lengths alone.
struct RelayCost {
  int rounds = 0;
  std::uint64_t bits = 0;
};

RelayCost relay_cost(const LengthMatrix& len, int n, int bandwidth) {
  const std::size_t b = static_cast<std::size_t>(bandwidth);
  auto chunk = [n](std::size_t l, int c) {
    return relay_chunk_lo(l, c + 1, n) - relay_chunk_lo(l, c, n);
  };
  RelayCost out;
  std::size_t max1 = 0, max2 = 0;
  // Hop 1: source v -> relay t carries chunk relay_chunk_index(v, p, t) of
  // each of v's payloads.
  for (int v = 0; v < n; ++v) {
    for (int t = 0; t < n; ++t) {
      if (t == v) continue;
      std::size_t sum = 0;
      for (int p = 0; p < n; ++p) {
        if (p == v) continue;
        sum += chunk(len[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)],
                     relay_chunk_index(v, p, t, n));
      }
      max1 = std::max(max1, sum);
      out.bits += sum;
    }
  }
  // Hop 2: relay t -> destination p carries the same chunks of p's payloads.
  for (int t = 0; t < n; ++t) {
    for (int p = 0; p < n; ++p) {
      if (p == t) continue;
      std::size_t sum = 0;
      for (int v = 0; v < n; ++v) {
        if (v == p) continue;
        sum += chunk(len[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)],
                     relay_chunk_index(v, p, t, n));
      }
      max2 = std::max(max2, sum);
      out.bits += sum;
    }
  }
  out.rounds = static_cast<int>(ceil_div(max1, b) + ceil_div(max2, b));
  return out;
}

/// Ring adapters: everything run_mm needs from an element type. Elements
/// travel as word_bits-wide fields (push_uint/read_uint round-trip).
struct F2Ops {
  using Matrix = F2Matrix;
  static constexpr int kWordBits = 1;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j) ? 1 : 0; }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, (v & 1ULL) != 0); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) {
    if ((v & 1ULL) != 0) m.set(i, j, !m.get(i, j));
  }
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    return f2_multiply_naive(a, b);
  }
};

struct M61Ops {
  using Matrix = Mat61;
  static constexpr int kWordBits = 61;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j); }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, v); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) { m.add_at(i, j, v); }
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    return m61_multiply_blocked(a, b);
  }
};

template <typename Ops>
AlgebraicMmResult run_mm(CliqueUnicast& net, const typename Ops::Matrix& a,
                         const typename Ops::Matrix& b, typename Ops::Matrix* c) {
  using Matrix = typename Ops::Matrix;
  constexpr int w = Ops::kWordBits;
  const int n = a.n();
  CC_REQUIRE(net.n() == n, "one player per matrix row");
  CC_REQUIRE(b.n() == n, "size mismatch");
  CC_REQUIRE(c != nullptr, "output matrix required");
  const Grid g(n);

  AlgebraicMmResult res;
  res.plan = algebraic_mm_plan(n, w, net.bandwidth());
  const int rounds_before = net.stats().rounds;
  const std::uint64_t bits_before = net.stats().total_bits;

  // ---- Distribution: row owners ship block slices to triple players.
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      if (r == p) continue;  // the triple player reads its own row directly
      Message& msg = payload[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
      for (int col = g.lo(k); col < g.hi(k); ++col) msg.push_uint(Ops::get(a, r, col), w);
    }
    for (int r = g.lo(k); r < g.hi(k); ++r) {
      if (r == p) continue;
      Message& msg = payload[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
      for (int col = g.lo(j); col < g.hi(j); ++col) msg.push_uint(Ops::get(b, r, col), w);
    }
  }
  std::vector<std::vector<Message>> recv;
  res.distribute_rounds = unicast_payloads_relayed(net, payload, &recv);

  // ---- Local block products (blocks zero-padded to bs x bs; padding rows
  // and columns contribute nothing to the product).
  std::vector<Matrix> partial;
  partial.reserve(static_cast<std::size_t>(g.triples()));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    Matrix ablk(g.bs), bblk(g.bs);
    std::vector<std::size_t> cur(static_cast<std::size_t>(n), 0);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int t = 0; t < g.len(k); ++t) {
        std::uint64_t v;
        if (r == p) {
          v = Ops::get(a, r, g.lo(k) + t);
        } else {
          const Message& src = recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
          v = src.read_uint(cur[static_cast<std::size_t>(r)], w);
          cur[static_cast<std::size_t>(r)] += static_cast<std::size_t>(w);
        }
        Ops::set(ablk, r - g.lo(i), t, v);
      }
    }
    for (int r = g.lo(k); r < g.hi(k); ++r) {
      for (int t = 0; t < g.len(j); ++t) {
        std::uint64_t v;
        if (r == p) {
          v = Ops::get(b, r, g.lo(j) + t);
        } else {
          const Message& src = recv[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
          v = src.read_uint(cur[static_cast<std::size_t>(r)], w);
          cur[static_cast<std::size_t>(r)] += static_cast<std::size_t>(w);
        }
        Ops::set(bblk, r - g.lo(k), t, v);
      }
    }
    partial.push_back(Ops::multiply(ablk, bblk));
  }

  // ---- Aggregation: partial rows travel to the output row owners, who sum
  // the m contributions (one per k) for each of their m column blocks.
  std::vector<std::vector<Message>> payload2(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      if (r == p) continue;
      Message& msg = payload2[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
      for (int t = 0; t < g.len(j); ++t) {
        msg.push_uint(Ops::get(partial[static_cast<std::size_t>(p)], r - g.lo(i), t), w);
      }
    }
  }
  std::vector<std::vector<Message>> recv2;
  res.aggregate_rounds = unicast_payloads_relayed(net, payload2, &recv2);

  *c = Matrix(n);
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p);
    for (int r = g.lo(i); r < g.hi(i); ++r) {
      for (int t = 0; t < g.len(j); ++t) {
        std::uint64_t v;
        if (r == p) {
          v = Ops::get(partial[static_cast<std::size_t>(p)], r - g.lo(i), t);
        } else {
          const Message& src = recv2[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
          v = src.read_uint(static_cast<std::size_t>(t) * static_cast<std::size_t>(w), w);
        }
        Ops::accumulate(*c, r, g.lo(j) + t, v);
      }
    }
  }

  res.total_rounds = net.stats().rounds - rounds_before;
  res.total_bits = net.stats().total_bits - bits_before;
  CC_CHECK(res.total_rounds == res.distribute_rounds + res.aggregate_rounds,
           "round accounting out of sync");
  CC_CHECK(res.total_rounds == res.plan.total_rounds,
           "algebraic MM rounds diverged from the planned schedule");
  CC_CHECK(res.total_bits == res.plan.total_bits,
           "algebraic MM bits diverged from the planned schedule");
  return res;
}

/// Shares a tuple of 61-bit local partials per player with everyone (the
/// clique-wide sum exchange ending both counting protocols) and sums each
/// field mod p into *totals. Returns the rounds used.
int share_partials(CliqueUnicast& net, const std::vector<std::vector<std::uint64_t>>& fields,
                   std::vector<std::uint64_t>* totals) {
  const int n = net.n();
  const std::size_t nf = fields.size();
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int v = 0; v < n; ++v) {
    Message m;
    for (std::size_t f = 0; f < nf; ++f) m.push_uint(fields[f][static_cast<std::size_t>(v)], 61);
    for (int j = 0; j < n; ++j) {
      if (j == v) continue;
      payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(j)] = m;
    }
  }
  std::vector<std::vector<Message>> recv;
  const int rounds = unicast_payloads(net, payload, &recv);
  totals->assign(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    for (int v = 0; v < n; ++v) {
      (*totals)[f] = Mersenne61::add((*totals)[f], fields[f][static_cast<std::size_t>(v)]);
    }
  }
  // Every player can reproduce the same totals from its inbox; the check
  // below asserts the exchange actually delivered the fields intact for
  // player 0 (cheap representative of the clique-wide agreement).
  if (n > 1) {
    for (int v = 1; v < n; ++v) {
      const Message& m = recv[0][static_cast<std::size_t>(v)];
      for (std::size_t f = 0; f < nf; ++f) {
        CC_CHECK(m.read_uint(f * 61, 61) == fields[f][static_cast<std::size_t>(v)],
                 "partial-sum exchange corrupted a field");
      }
    }
  }
  return rounds;
}

}  // namespace

AlgebraicMmPlan algebraic_mm_plan(int n, int word_bits, int bandwidth) {
  CC_REQUIRE(word_bits >= 1 && word_bits <= 64, "word width out of range");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  const Grid g(n);
  AlgebraicMmPlan plan;
  plan.n = n;
  plan.grid = g.m;
  plan.block = g.bs;
  plan.word_bits = word_bits;
  plan.bandwidth = bandwidth;
  const LengthMatrix dist = distribute_lengths(g, word_bits);
  const LengthMatrix agg = aggregate_lengths(g, word_bits);
  const RelayCost dc = relay_cost(dist, n, bandwidth);
  const RelayCost ac = relay_cost(agg, n, bandwidth);
  plan.distribute_rounds = dc.rounds;
  plan.aggregate_rounds = ac.rounds;
  plan.total_rounds = dc.rounds + ac.rounds;
  plan.total_bits = dc.bits + ac.bits;
  for (int v = 0; v < n; ++v) {
    std::uint64_t send = 0;
    for (int p = 0; p < n; ++p) {
      send += dist[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] +
              agg[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
    }
    plan.max_player_send_bits = std::max(plan.max_player_send_bits, send);
  }
  const double cbrt_n = static_cast<double>(icbrt(static_cast<std::uint64_t>(n)));
  plan.series_rounds = 6.0 * cbrt_n * static_cast<double>(word_bits) /
                       static_cast<double>(bandwidth);
  return plan;
}

AlgebraicMmResult algebraic_mm_f2(CliqueUnicast& net, const F2Matrix& a,
                                  const F2Matrix& b, F2Matrix* c) {
  return run_mm<F2Ops>(net, a, b, c);
}

AlgebraicMmResult algebraic_mm_m61(CliqueUnicast& net, const Mat61& a,
                                   const Mat61& b, Mat61* c) {
  return run_mm<M61Ops>(net, a, b, c);
}

AlgebraicCountResult triangle_count_algebraic(CliqueUnicast& net, const Graph& g) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n >= 1 && n <= (1 << 15), "exact counting needs trace(A^3) < 2^61");
  const Mat61 a = Mat61::adjacency(g);
  Mat61 a2;
  AlgebraicCountResult out;
  out.mm = algebraic_mm_m61(net, a, a, &a2);

  // Player v's local share of trace(A^3): (A^3)_vv = <row_v(A^2), row_v(A)>
  // (A is symmetric). True value < n^3 < p, so mod-p arithmetic is exact.
  std::vector<std::uint64_t> diag(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    std::uint64_t acc = 0;
    for (int j : g.neighbors(v)) acc = Mersenne61::add(acc, a2.get(v, j));
    diag[static_cast<std::size_t>(v)] = acc;
  }
  std::vector<std::uint64_t> totals;
  out.share_rounds = share_partials(net, {diag}, &totals);
  const std::uint64_t trace = totals[0];
  CC_CHECK(trace % 6 == 0, "trace(A^3) must be 6 * #triangles");
  out.count = trace / 6;
  out.total_rounds = out.mm.total_rounds + out.share_rounds;
  return out;
}

AlgebraicCountResult four_cycle_count_algebraic(CliqueUnicast& net, const Graph& g) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n >= 1 && n <= (1 << 15), "exact counting needs trace(A^4) < 2^61");
  const Mat61 a = Mat61::adjacency(g);
  Mat61 a2;
  AlgebraicCountResult out;
  out.mm = algebraic_mm_m61(net, a, a, &a2);

  // trace(A^4) = sum_v ||row_v(A^2)||^2 (A^2 is symmetric); each player also
  // contributes deg(v)^2 and deg(v) for the degenerate-walk correction
  //   #C4 = (trace(A^4) - 2*sum_v deg(v)^2 + 2|E|) / 8.
  std::vector<std::uint64_t> walk(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> deg2(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> deg(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    std::uint64_t acc = 0;
    for (int j = 0; j < n; ++j) {
      const std::uint64_t e = a2.get(v, j);
      acc = Mersenne61::add(acc, Mersenne61::mul(e, e));
    }
    walk[static_cast<std::size_t>(v)] = acc;
    const std::uint64_t d = static_cast<std::uint64_t>(g.degree(v));
    deg2[static_cast<std::size_t>(v)] = Mersenne61::mul(d, d);
    deg[static_cast<std::size_t>(v)] = d;
  }
  std::vector<std::uint64_t> totals;
  out.share_rounds = share_partials(net, {walk, deg2, deg}, &totals);
  const std::uint64_t trace4 = totals[0];  // < n^4 < p: exact
  const std::uint64_t sum_deg2 = totals[1];
  const std::uint64_t twice_edges = totals[2];  // sum of degrees = 2|E|
  CC_CHECK(trace4 + twice_edges >= 2 * sum_deg2, "closed-walk identity violated");
  const std::uint64_t numerator = trace4 + twice_edges - 2 * sum_deg2;
  CC_CHECK(numerator % 8 == 0, "trace identity must yield 8 * #C4");
  out.count = numerator / 8;
  out.total_rounds = out.mm.total_rounds + out.share_rounds;
  return out;
}

}  // namespace cclique
