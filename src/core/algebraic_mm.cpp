#include "core/algebraic_mm.h"

#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "core/block_mm.h"
#include "linalg/kernels.h"
#include "util/math_util.h"

namespace cclique {

namespace {

/// Ring adapters: everything run_block_mm needs from an element type.
/// Elements travel as word_bits-wide fields (push_uint/read_uint
/// round-trip); Matrix(n) is the all-zero matrix — the additive identity
/// both rings pad blocks with.
struct F2Ops {
  using Matrix = F2Matrix;
  static constexpr int kWordBits = 1;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j) ? 1 : 0; }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, (v & 1ULL) != 0); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) {
    if ((v & 1ULL) != 0) m.set(i, j, !m.get(i, j));
  }
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    return f2_multiply_naive(a, b);
  }
};

struct M61Ops {
  using Matrix = Mat61;
  static constexpr int kWordBits = 61;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j); }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, v); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) { m.add_at(i, j, v); }
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    // Local compute between metered phases: the kernel/thread choice (the
    // CC_KERNEL / CC_THREADS knobs) changes wall-clock only, never the
    // product values or any CommStats counter.
    return m61_multiply_dispatch(a, b);
  }
};

template <typename Ops>
AlgebraicMmResult run_mm(CliqueUnicast& net, const typename Ops::Matrix& a,
                         const typename Ops::Matrix& b, typename Ops::Matrix* c) {
  const AlgebraicMmPlan plan =
      algebraic_mm_plan(a.n(), Ops::kWordBits, net.bandwidth());
  return blockmm::run_block_mm<Ops, AlgebraicMmResult>(net, a, b, c, plan);
}

/// Shares a tuple of 61-bit local partials per player with everyone (the
/// clique-wide sum exchange ending both counting protocols) and sums each
/// field mod p into *totals. Returns the rounds used.
int share_partials(CliqueUnicast& net, const std::vector<std::vector<std::uint64_t>>& fields,
                   std::vector<std::uint64_t>* totals) {
  const int n = net.n();
  const std::size_t nf = fields.size();
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int v = 0; v < n; ++v) {
    Message m;
    for (std::size_t f = 0; f < nf; ++f) m.push_uint(fields[f][static_cast<std::size_t>(v)], 61);
    for (int j = 0; j < n; ++j) {
      if (j == v) continue;
      payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(j)] = m;
    }
  }
  std::vector<std::vector<Message>> recv;
  const int rounds = unicast_payloads(net, payload, &recv);
  totals->assign(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    for (int v = 0; v < n; ++v) {
      (*totals)[f] = Mersenne61::add((*totals)[f], fields[f][static_cast<std::size_t>(v)]);
    }
  }
  // Every player can reproduce the same totals from its inbox; the check
  // below asserts the exchange actually delivered the fields intact for
  // player 0 (cheap representative of the clique-wide agreement).
  if (n > 1) {
    for (int v = 1; v < n; ++v) {
      const Message& m = recv[0][static_cast<std::size_t>(v)];
      for (std::size_t f = 0; f < nf; ++f) {
        CC_CHECK(m.read_uint(f * 61, 61) == fields[f][static_cast<std::size_t>(v)],
                 "partial-sum exchange corrupted a field");
      }
    }
  }
  return rounds;
}

}  // namespace

AlgebraicMmPlan algebraic_mm_plan(int n, int word_bits, int bandwidth) {
  // Plan functions are length sinks: the schedule is a function of
  // (n, w, b) alone, and the guard proves no payload read sneaks in.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("algebraic_mm_plan"));
  AlgebraicMmPlan plan;
  blockmm::fill_plan_schedule(&plan, n, word_bits, bandwidth);
  return plan;
}

AlgebraicMmResult algebraic_mm_f2(CliqueUnicast& net, const F2Matrix& a,
                                  const F2Matrix& b, F2Matrix* c) {
  return run_mm<F2Ops>(net, a, b, c);
}

AlgebraicMmResult algebraic_mm_m61(CliqueUnicast& net, const Mat61& a,
                                   const Mat61& b, Mat61* c) {
  return run_mm<M61Ops>(net, a, b, c);
}

AlgebraicMmPlan sharded_mm_plan(int n, int word_bits, int bandwidth,
                                const blockmm::ShardLayout& layout) {
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("sharded_mm_plan"));
  AlgebraicMmPlan plan;
  blockmm::fill_plan_schedule(&plan, n, word_bits, bandwidth, layout);
  return plan;
}

AlgebraicMmResult algebraic_mm_m61_sharded(CliqueUnicast& net, const Mat61& a,
                                           const Mat61& b, Mat61* c,
                                           const blockmm::ShardLayout& layout) {
  const AlgebraicMmPlan plan =
      sharded_mm_plan(a.n(), M61Ops::kWordBits, net.bandwidth(), layout);
  return blockmm::run_block_mm<M61Ops, AlgebraicMmResult>(net, a, b, c, plan,
                                                          layout);
}

AlgebraicCountResult triangle_count_algebraic(CliqueUnicast& net, const Graph& g) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n >= 1 && n <= (1 << 15), "exact counting needs trace(A^3) < 2^61");
  const Mat61 a = Mat61::adjacency(g);
  Mat61 a2;
  AlgebraicCountResult out;
  out.mm = algebraic_mm_m61(net, a, a, &a2);

  // Player v's local share of trace(A^3): (A^3)_vv = <row_v(A^2), row_v(A)>
  // (A is symmetric). True value < n^3 < p, so mod-p arithmetic is exact.
  locality::PerPlayer<std::uint64_t> diag(
      n, CC_LOCALITY_SITE("local trace(A^3) share"));
  for (int v = 0; v < n; ++v) {
    std::uint64_t acc = 0;
    for (int j : g.neighbors(v)) acc = Mersenne61::add(acc, a2.get(v, j));
    diag[v] = acc;
  }
  std::vector<std::uint64_t> totals;
  out.share_rounds = share_partials(net, {diag.raw()}, &totals);
  const std::uint64_t trace = totals[0];
  CC_CHECK(trace % 6 == 0, "trace(A^3) must be 6 * #triangles");
  out.count = trace / 6;
  out.total_rounds = out.mm.total_rounds + out.share_rounds;
  return out;
}

AlgebraicCountResult four_cycle_count_algebraic(CliqueUnicast& net, const Graph& g,
                                                CountBackend backend) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n >= 1 && n <= (1 << 15), "exact counting needs trace(A^4) < 2^61");
  const Mat61 a = Mat61::adjacency(g);
  Mat61 a2;
  AlgebraicCountResult out;
  int mm_rounds = 0;
  if (backend == CountBackend::kDense) {
    out.mm = algebraic_mm_m61(net, a, a, &a2);
    mm_rounds = out.mm.total_rounds;
  } else {
    const Csr61 sa = Csr61::from_dense(a);
    const SparseNnzProfile profile = declared_nnz_profile(sa, sa);
    const SparseMmPlan splan =
        sparse_mm_plan(n, /*word_bits=*/61, net.bandwidth(), profile);
    out.used_sparse =
        backend == CountBackend::kSparse || sparse_backend_preferred(splan);
    if (out.used_sparse) {
      out.sparse_mm = sparse_mm_m61(net, sa, sa, &a2);
      mm_rounds = out.sparse_mm.total_rounds;
    } else {
      // kAuto chose dense: the decision itself consumed the announcement,
      // then the oblivious schedule runs unchanged.
      out.announce_rounds = run_nnz_announcement(net, profile, splan.count_bits);
      out.mm = algebraic_mm_m61(net, a, a, &a2);
      mm_rounds = out.announce_rounds + out.mm.total_rounds;
    }
  }

  // trace(A^4) = sum_v ||row_v(A^2)||^2 (A^2 is symmetric); each player also
  // contributes deg(v)^2 and deg(v) for the degenerate-walk correction
  //   #C4 = (trace(A^4) - 2*sum_v deg(v)^2 + 2|E|) / 8.
  locality::PerPlayer<std::uint64_t> walk(
      n, CC_LOCALITY_SITE("local trace(A^4) share"));
  locality::PerPlayer<std::uint64_t> deg2(
      n, CC_LOCALITY_SITE("local squared-degree share"));
  locality::PerPlayer<std::uint64_t> deg(
      n, CC_LOCALITY_SITE("local degree share"));
  for (int v = 0; v < n; ++v) {
    std::uint64_t acc = 0;
    for (int j = 0; j < n; ++j) {
      const std::uint64_t e = a2.get(v, j);
      acc = Mersenne61::add(acc, Mersenne61::mul(e, e));
    }
    walk[v] = acc;
    const std::uint64_t d = static_cast<std::uint64_t>(g.degree(v));
    deg2[v] = Mersenne61::mul(d, d);
    deg[v] = d;
  }
  std::vector<std::uint64_t> totals;
  out.share_rounds = share_partials(net, {walk.raw(), deg2.raw(), deg.raw()}, &totals);
  const std::uint64_t trace4 = totals[0];  // < n^4 < p: exact
  const std::uint64_t sum_deg2 = totals[1];
  const std::uint64_t twice_edges = totals[2];  // sum of degrees = 2|E|
  CC_CHECK(trace4 + twice_edges >= 2 * sum_deg2, "closed-walk identity violated");
  const std::uint64_t numerator = trace4 + twice_edges - 2 * sum_deg2;
  CC_CHECK(numerator % 8 == 0, "trace identity must yield 8 * #C4");
  out.count = numerator / 8;
  out.total_rounds = mm_rounds + out.share_rounds;
  return out;
}

CountingArtifactPlan counting_artifacts_plan(int n, int bandwidth) {
  // Plan-function sink: the combined counting schedule is priced from
  // (n, b) alone — the adjacency payload never enters.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("counting_artifacts_plan"));
  CC_REQUIRE(n >= 1, "need at least one player");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  CountingArtifactPlan plan;
  plan.n = n;
  plan.product = algebraic_mm_plan(n, /*word_bits=*/61, bandwidth);
  // One 4-field 61-bit message per ordered pair, chunked like every
  // unicast_payloads exchange (nothing to share on a 1-clique).
  plan.share_rounds =
      n >= 2 ? static_cast<int>(ceil_div(4 * 61, static_cast<std::uint64_t>(bandwidth)))
             : 0;
  plan.total_rounds = plan.product.total_rounds + plan.share_rounds;
  plan.total_bits =
      plan.product.total_bits +
      (n >= 2 ? static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) * 4 * 61u
              : 0u);
  return plan;
}

CountingArtifact counting_artifacts_run(CliqueUnicast& net, const Graph& g) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(n >= 1 && n <= (1 << 15), "exact counting needs trace(A^4) < 2^61");
  CountingArtifact out;
  out.plan = counting_artifacts_plan(n, net.bandwidth());
  const int rounds_before = net.stats().rounds;
  const std::uint64_t bits_before = net.stats().total_bits;

  const Mat61 a = Mat61::adjacency(g);
  const AlgebraicMmResult mm = algebraic_mm_m61(net, a, a, &out.a2);
  (void)mm;

  // Per-player shares of all four counting statistics, shipped in one
  // exchange: trace(A³) diagonal, trace(A⁴) walk norm, deg², deg (see the
  // standalone protocols above for the identities).
  locality::PerPlayer<std::uint64_t> diag(
      n, CC_LOCALITY_SITE("local trace(A^3) share"));
  locality::PerPlayer<std::uint64_t> walk(
      n, CC_LOCALITY_SITE("local trace(A^4) share"));
  locality::PerPlayer<std::uint64_t> deg2(
      n, CC_LOCALITY_SITE("local squared-degree share"));
  locality::PerPlayer<std::uint64_t> deg(
      n, CC_LOCALITY_SITE("local degree share"));
  for (int v = 0; v < n; ++v) {
    std::uint64_t acc3 = 0;
    for (int j : g.neighbors(v)) acc3 = Mersenne61::add(acc3, out.a2.get(v, j));
    diag[v] = acc3;
    std::uint64_t acc4 = 0;
    for (int j = 0; j < n; ++j) {
      const std::uint64_t e = out.a2.get(v, j);
      acc4 = Mersenne61::add(acc4, Mersenne61::mul(e, e));
    }
    walk[v] = acc4;
    const std::uint64_t d = static_cast<std::uint64_t>(g.degree(v));
    deg2[v] = Mersenne61::mul(d, d);
    deg[v] = d;
  }
  std::vector<std::uint64_t> totals;
  const int share_rounds = share_partials(
      net, {diag.raw(), walk.raw(), deg2.raw(), deg.raw()}, &totals);
  const std::uint64_t trace3 = totals[0];
  const std::uint64_t trace4 = totals[1];
  const std::uint64_t sum_deg2 = totals[2];
  const std::uint64_t twice_edges = totals[3];
  CC_CHECK(trace3 % 6 == 0, "trace(A^3) must be 6 * #triangles");
  out.triangles = trace3 / 6;
  CC_CHECK(trace4 + twice_edges >= 2 * sum_deg2, "closed-walk identity violated");
  const std::uint64_t numerator = trace4 + twice_edges - 2 * sum_deg2;
  CC_CHECK(numerator % 8 == 0, "trace identity must yield 8 * #C4");
  out.four_cycles = numerator / 8;

  out.total_rounds = net.stats().rounds - rounds_before;
  out.total_bits = net.stats().total_bits - bits_before;
  CC_CHECK(share_rounds == out.plan.share_rounds,
           "counting share left the planned schedule");
  CC_CHECK(out.total_rounds == out.plan.total_rounds,
           "counting-artifact rounds diverged from the planned schedule");
  CC_CHECK(out.total_bits == out.plan.total_bits,
           "counting-artifact bits diverged from the planned schedule");
  return out;
}

}  // namespace cclique
