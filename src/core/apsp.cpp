#include "core/apsp.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "analysis/locality_guard.h"
#include "analysis/oblivious_guard.h"
#include "core/block_mm.h"
#include "core/sparse_mm.h"
#include "linalg/kernels.h"
#include "util/math_util.h"

namespace cclique {

namespace {

/// Tropical-semiring adapters for the shared block-MM driver. Both kernels
/// serialize elements as 61-bit words (kTropicalInf = all-ones round-trips
/// through push_uint/read_uint unchanged) and pad blocks with
/// TropicalMat(n)'s all-+inf fill — the semiring zero, so padding never
/// changes a product entry.
struct TropicalOpsBlocked {
  using Matrix = TropicalMat;
  static constexpr int kWordBits = 61;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j); }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, v); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) { m.min_at(i, j, v); }
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    // Local compute between metered phases: the kernel/thread choice (the
    // CC_KERNEL / CC_THREADS knobs) changes wall-clock only, never the
    // product values or any CommStats counter.
    return tropical_multiply_dispatch(a, b);
  }
};

struct TropicalOpsSchoolbook : TropicalOpsBlocked {
  static Matrix multiply(const Matrix& a, const Matrix& b) {
    return tropical_multiply_schoolbook(a, b);
  }
};

/// Smallest s with 2^s >= x (x >= 1).
int ceil_log2(std::uint64_t x) {
  int s = 0;
  while ((1ULL << s) < x) ++s;
  return s;
}

}  // namespace

ApspPlan apsp_plan(int n, int bandwidth) {
  // Plan-function sink: the full squaring schedule is priced from (n, b)
  // alone — edge weights never enter (see DESIGN.md, obliviousness contract).
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("apsp_plan"));
  CC_REQUIRE(n >= 1, "need at least one player");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  ApspPlan plan;
  plan.n = n;
  plan.squarings = n >= 2 ? ceil_log2(static_cast<std::uint64_t>(n) - 1) : 0;
  plan.product = algebraic_mm_plan(n, /*word_bits=*/61, bandwidth);
  // The eccentricity exchange ships one 61-bit value per ordered pair in
  // ceil(61 / b) chunked rounds (nothing to exchange on a 1-clique).
  plan.ecc_rounds =
      n >= 2 ? static_cast<int>(ceil_div(61, static_cast<std::uint64_t>(bandwidth))) : 0;
  plan.total_rounds = plan.squarings * plan.product.total_rounds + plan.ecc_rounds;
  plan.total_bits =
      static_cast<std::uint64_t>(plan.squarings) * plan.product.total_bits +
      (n >= 2 ? static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) * 61u
              : 0u);
  plan.series_rounds =
      plan.product.series_rounds * static_cast<double>(ceil_log2(static_cast<std::uint64_t>(n)));
  return plan;
}

namespace {

/// Product driver with the (expensive to recompute) plan passed in, so
/// apsp_run prices the schedule once instead of once per squaring.
MinPlusResult run_product(CliqueUnicast& net, const TropicalMat& a,
                          const TropicalMat& b, TropicalMat* c,
                          TropicalKernel kernel, const AlgebraicMmPlan& plan) {
  if (kernel == TropicalKernel::kSchoolbook) {
    return blockmm::run_block_mm<TropicalOpsSchoolbook, MinPlusResult>(net, a, b, c, plan);
  }
  return blockmm::run_block_mm<TropicalOpsBlocked, MinPlusResult>(net, a, b, c, plan);
}

}  // namespace

MinPlusResult min_plus_mm(CliqueUnicast& net, const TropicalMat& a,
                          const TropicalMat& b, TropicalMat* c,
                          TropicalKernel kernel) {
  const AlgebraicMmPlan plan = algebraic_mm_plan(a.n(), /*word_bits=*/61, net.bandwidth());
  return run_product(net, a, b, c, kernel, plan);
}

MinPlusResult min_plus_mm_sharded(CliqueUnicast& net, const TropicalMat& a,
                                  const TropicalMat& b, TropicalMat* c,
                                  const blockmm::ShardLayout& layout) {
  const AlgebraicMmPlan plan =
      sharded_mm_plan(a.n(), /*word_bits=*/61, net.bandwidth(), layout);
  return blockmm::run_block_mm<TropicalOpsBlocked, MinPlusResult>(net, a, b, c,
                                                                  plan, layout);
}

ApspResult apsp_run(CliqueUnicast& net, const Graph& g,
                    const std::vector<std::uint32_t>& weights,
                    TropicalKernel kernel, ApspArtifacts* artifacts) {
  const int n = g.num_vertices();
  CC_REQUIRE(n >= 1, "need at least one vertex");
  CC_REQUIRE(net.n() == n, "one player per vertex");

  ApspResult out;
  out.plan = apsp_plan(n, net.bandwidth());
  const int rounds_before = net.stats().rounds;
  const std::uint64_t bits_before = net.stats().total_bits;

  // ---- Repeated squaring: D_0 = W (0 diagonal), D_{s+1} = D_s ⊗ D_s.
  // D_s is the exact shortest-path distance over walks of <= 2^s edges, and
  // simple shortest paths have <= n-1 edges, so ⌈log2(n-1)⌉ squarings reach
  // the closure. Every squaring is one full distributed product of the
  // globally-known geometry — weights only change entry *values*, never a
  // payload length — which is what keeps the whole run on the planned
  // data-independent schedule.
  out.dist = TropicalMat::from_weighted_graph(g, weights);
  if (artifacts != nullptr) {
    // Artifact retention is a local copy per squaring: the power chain is
    // exactly what the protocol computes anyway, so keeping it cannot touch
    // the metered schedule.
    artifacts->powers.clear();
    artifacts->powers.reserve(static_cast<std::size_t>(out.plan.squarings) + 1);
    artifacts->powers.push_back(out.dist);
  }
  out.products.reserve(static_cast<std::size_t>(out.plan.squarings));
  for (int s = 0; s < out.plan.squarings; ++s) {
    TropicalMat next;
    out.products.push_back(
        run_product(net, out.dist, out.dist, &next, kernel, out.plan.product));
    out.dist = std::move(next);
    if (artifacts != nullptr) artifacts->powers.push_back(out.dist);
  }

  // ---- Eccentricity spectrum: player v derives ecc[v] = max_u d(v, u)
  // from its own distance row, then a one-shot 61-bit all-to-all exchange
  // makes the spectrum (hence diameter and radius) common knowledge — the
  // same closing shape as the counting protocols' partial-sum share.
  // Each value is player-private (ownership-tagged) until the exchange
  // below hands it off into the common-knowledge result struct.
  locality::PerPlayer<std::uint64_t> ecc(
      n, CC_LOCALITY_SITE("per-player eccentricity"));
  for (int v = 0; v < n; ++v) {
    std::uint64_t e = 0;
    for (int u = 0; u < n; ++u) e = std::max(e, out.dist.get(v, u));
    ecc[v] = e;
  }
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int v = 0; v < n; ++v) {
    for (int j = 0; j < n; ++j) {
      if (j == v) continue;
      payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(j)].push_uint(ecc[v], 61);
    }
  }
  std::vector<std::vector<Message>> recv;
  out.ecc_rounds = unicast_payloads(net, payload, &recv);
  out.eccentricity = ecc.take();
  if (n > 1) {
    // Player 0's inbox must reproduce the spectrum (cheap representative of
    // the clique-wide agreement, as in share_partials).
    for (int v = 1; v < n; ++v) {
      CC_CHECK(recv[0][static_cast<std::size_t>(v)].read_uint(0, 61) ==
                   out.eccentricity[static_cast<std::size_t>(v)],
               "eccentricity exchange corrupted a value");
    }
  }
  out.diameter = *std::max_element(out.eccentricity.begin(), out.eccentricity.end());
  out.radius = *std::min_element(out.eccentricity.begin(), out.eccentricity.end());

  out.total_rounds = net.stats().rounds - rounds_before;
  out.total_bits = net.stats().total_bits - bits_before;
  CC_CHECK(out.ecc_rounds == out.plan.ecc_rounds,
           "eccentricity exchange left the planned schedule");
  CC_CHECK(out.total_rounds == out.plan.total_rounds,
           "APSP rounds diverged from the planned schedule");
  CC_CHECK(out.total_bits == out.plan.total_bits,
           "APSP bits diverged from the planned schedule");
  return out;
}

ApspSparseResult apsp_run_sparse(CliqueUnicast& net, const Graph& g,
                                 const std::vector<std::uint32_t>& weights) {
  const int n = g.num_vertices();
  CC_REQUIRE(n >= 1, "need at least one vertex");
  CC_REQUIRE(net.n() == n, "one player per vertex");

  ApspSparseResult out;
  const int rounds_before = net.stats().rounds;
  const std::uint64_t bits_before = net.stats().total_bits;
  const int squarings =
      n >= 2 ? ceil_log2(static_cast<std::uint64_t>(n) - 1) : 0;

  out.dist = TropicalMat::from_weighted_graph(g, weights);
  out.steps.reserve(static_cast<std::size_t>(squarings));
  for (int s = 0; s < squarings; ++s) {
    // Re-sparsify and re-declare each squaring: D_s's finite entries are
    // this round's explicit structure, so the crossover is priced against
    // the *current* fill, not the input graph's.
    const int step_rounds_before = net.stats().rounds;
    const Csr61 cur = Csr61::from_dense(out.dist);
    const SparseNnzProfile profile = declared_nnz_profile(cur, cur);
    const SparseMmPlan plan =
        sparse_mm_plan(n, /*word_bits=*/61, net.bandwidth(), profile);
    ApspSparseStep step;
    step.declared_nnz = plan.a_nnz;
    step.dense_bits = plan.dense_bits;
    TropicalMat next;
    if (sparse_backend_preferred(plan)) {
      const SparseMmResult r = sparse_min_plus_mm(net, cur, cur, &next);
      step.used_sparse = true;
      step.planned_bits = r.plan.total_bits;
    } else {
      run_nnz_announcement(net, profile, plan.count_bits);
      const MinPlusResult r = min_plus_mm(net, out.dist, out.dist, &next);
      step.planned_bits = plan.announce_bits + r.plan.total_bits;
    }
    step.rounds = net.stats().rounds - step_rounds_before;
    out.dist = std::move(next);
    out.steps.push_back(step);
  }

  out.total_rounds = net.stats().rounds - rounds_before;
  out.total_bits = net.stats().total_bits - bits_before;
  return out;
}

TropicalMat apsp_dijkstra_reference(const Graph& g,
                                    const std::vector<std::uint32_t>& weights) {
  const int n = g.num_vertices();
  const std::vector<Edge> edges = g.edges();
  CC_REQUIRE(weights.size() == edges.size(), "one weight per edge");
  // Adjacency-indexed weight table (the core/mst convention): adj[v] lists
  // (neighbor, weight) pairs.
  std::vector<std::vector<std::pair<int, std::uint32_t>>> adj(
      static_cast<std::size_t>(n));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    adj[static_cast<std::size_t>(edges[e].u)].push_back({edges[e].v, weights[e]});
    adj[static_cast<std::size_t>(edges[e].v)].push_back({edges[e].u, weights[e]});
  }
  TropicalMat dist(n);
  using Item = std::pair<std::uint64_t, int>;  // (distance, vertex)
  for (int s = 0; s < n; ++s) {
    std::vector<std::uint64_t> d(static_cast<std::size_t>(n), kTropicalInf);
    d[static_cast<std::size_t>(s)] = 0;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    pq.push({0, s});
    while (!pq.empty()) {
      const auto [du, u] = pq.top();
      pq.pop();
      if (du != d[static_cast<std::size_t>(u)]) continue;  // stale entry
      for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
        const std::uint64_t cand = du + w;  // < kInf: n * 2^32 distances can't saturate
        if (cand < d[static_cast<std::size_t>(v)]) {
          d[static_cast<std::size_t>(v)] = cand;
          pq.push({cand, v});
        }
      }
    }
    for (int v = 0; v < n; ++v) dist.set(s, v, d[static_cast<std::size_t>(v)]);
  }
  return dist;
}

}  // namespace cclique
