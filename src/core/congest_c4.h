// 4-cycle detection over the input graph's own edges (CONGEST-UCAST).
//
// The paper states (Section 3.1, result in its full version) that C4
// detection runs in O(sqrt(n) log n / b) rounds even when communication is
// restricted to the edges of G. The conference text does not include that
// algorithm, so this module implements the natural neighbor-list exchange
// protocol with the same measured-shape behavior on the evaluation
// families (see bench_e7 companion and tests):
//
//   every node ships its (id-sorted) neighbor list to each neighbor,
//   chunked at b bits per round; node u detects a C4 when two distinct
//   neighbors v1, v2 report a common neighbor w != u (cycle u-v1-w-v2-u),
//   or when two of u's own neighbors are adjacent to each other twice
//   (covered by the same rule with u as an endpoint).
//
// Cost: max_v deg(v) * ceil(log n / b) + O(1) rounds. For C4-free inputs
// the Kővári–Sós–Turán bound keeps the average degree at O(sqrt(n)), and
// on the benchmark families (near-extremal polarity graphs, sparse random
// graphs) the maximum degree — hence the measured round count — is
// O(sqrt(n) log n / b), matching the paper's claim; a skewed-degree C4-free
// input (e.g. a star) can exceed it, which we flag in the result for
// transparency. Verdicts are exact in both directions.
#pragma once

#include "comm/congest.h"
#include "graph/graph.h"

namespace cclique {

/// Result of the CONGEST C4 protocol.
struct CongestC4Result {
  bool detected = false;
  CommStats stats;
  int max_degree = 0;  ///< drives the round count (see header note)
};

/// Runs C4 detection over the edges of g. Exact (no error).
CongestC4Result congest_c4_detect(const Graph& g, int bandwidth);

}  // namespace cclique
