#include "core/sparse_mm.h"

#include <vector>

#include "core/algebraic_mm.h"
#include "linalg/kernels.h"

namespace cclique {

SparseNnzProfile declared_nnz_profile(const Csr61& a, const Csr61& b) {
  CC_REQUIRE(a.n() == b.n(), "size mismatch");
  const int n = a.n();
  const blockmm::BlockGrid g(n);
  SparseNnzProfile prof;
  prof.n = n;
  prof.grid = g.m;
  prof.a_block_nnz.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(g.m), 0);
  prof.b_block_nnz.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(g.m), 0);
  // This is the sanctioned tainted->plain boundary (DESIGN.md §2.8): the
  // sparse schedule legitimately depends on the operands' sparsity
  // structure, so the structure reads happen under an explicit declaration
  // — the guard counts them (declared_use_count) instead of throwing, and
  // the announcement phase makes the resulting profile common knowledge
  // before any nnz-dependent payload moves.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("declared_nnz_profile"));
  [[maybe_unused]] auto dd = oblivious::declared_dependence(
      CC_OBLIVIOUS_SITE("sparse schedule depends on announced nnz counts"));
  const std::size_t* arp = a.row_ptr();
  const int* acols = a.cols();
  const std::size_t* brp = b.row_ptr();
  const int* bcols = b.cols();
  for (int v = 0; v < n; ++v) {
    for (std::size_t e = arp[v]; e < arp[v + 1]; ++e) {
      const int k = acols[e] / g.bs;
      ++prof.a_block_nnz[static_cast<std::size_t>(v) * static_cast<std::size_t>(g.m) +
                         static_cast<std::size_t>(k)];
    }
    for (std::size_t e = brp[v]; e < brp[v + 1]; ++e) {
      const int j = bcols[e] / g.bs;
      ++prof.b_block_nnz[static_cast<std::size_t>(v) * static_cast<std::size_t>(g.m) +
                         static_cast<std::size_t>(j)];
    }
  }
  prof.a_nnz = static_cast<std::uint64_t>(a.nnz());
  prof.b_nnz = static_cast<std::uint64_t>(b.nnz());
  return prof;
}

SparseMmPlan sparse_mm_plan(int n, int word_bits, int bandwidth,
                            const SparseNnzProfile& profile) {
  // Plan-function sink: the schedule is a function of (n, w, b) and the
  // *declared* profile alone — plain integers, no CSR structure reads here.
  oblivious::SinkScope sink(CC_OBLIVIOUS_SITE("sparse_mm_plan"));
  CC_REQUIRE(word_bits >= 1 && word_bits <= 64, "word width out of range");
  CC_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  const blockmm::BlockGrid g(n);
  const int m = g.m;
  CC_REQUIRE(profile.n == n && profile.grid == m,
             "profile built for another grid");
  CC_REQUIRE(profile.a_block_nnz.size() ==
                     static_cast<std::size_t>(n) * static_cast<std::size_t>(m) &&
                 profile.b_block_nnz.size() == profile.a_block_nnz.size(),
             "profile table size mismatch");
  SparseMmPlan plan;
  plan.n = n;
  plan.grid = m;
  plan.block = g.bs;
  plan.word_bits = word_bits;
  plan.index_bits = static_cast<int>(bits_for(static_cast<std::uint64_t>(g.bs)));
  plan.count_bits =
      static_cast<int>(bits_for(static_cast<std::uint64_t>(g.bs) + 1));
  plan.bandwidth = bandwidth;
  plan.a_nnz = profile.a_nnz;
  plan.b_nnz = profile.b_nnz;

  // Announcement: one identical 2m-count message per ordered pair.
  const std::size_t announce_len =
      2 * static_cast<std::size_t>(m) * static_cast<std::size_t>(plan.count_bits);
  if (n >= 2) {
    plan.announce_rounds = static_cast<int>(
        ceil_div(announce_len, static_cast<std::size_t>(bandwidth)));
    plan.announce_bits = static_cast<std::uint64_t>(n) *
                         static_cast<std::uint64_t>(n - 1) *
                         static_cast<std::uint64_t>(announce_len);
  }

  // Distribution: row owner v ships, per triple (i, j, k) it serves, its
  // declared count of (index, value) pairs — index_bits + w bits each.
  const std::size_t pair_bits =
      static_cast<std::size_t>(plan.index_bits + word_bits);
  blockmm::LengthMatrix dist(
      static_cast<std::size_t>(n),
      std::vector<std::size_t>(static_cast<std::size_t>(n), 0));
  for (int p = 0; p < g.triples(); ++p) {
    const int i = g.ti(p), j = g.tj(p), k = g.tk(p);
    for (int v = g.lo(i); v < g.hi(i); ++v) {
      if (v == p) continue;
      dist[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] +=
          profile.a_block_nnz[static_cast<std::size_t>(v) * static_cast<std::size_t>(m) +
                              static_cast<std::size_t>(k)] *
          pair_bits;
    }
    for (int v = g.lo(k); v < g.hi(k); ++v) {
      if (v == p) continue;
      dist[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] +=
          profile.b_block_nnz[static_cast<std::size_t>(v) * static_cast<std::size_t>(m) +
                              static_cast<std::size_t>(j)] *
          pair_bits;
    }
  }
  const blockmm::RelayCost dc = blockmm::relay_cost(dist, n, bandwidth);

  // Aggregation: dense widths (fill-in makes output structure unpriceable
  // without a second announcement; see sparse_mm.h).
  const blockmm::LengthMatrix agg = blockmm::aggregate_lengths(g, word_bits);
  const blockmm::RelayCost ac = blockmm::relay_cost(agg, n, bandwidth);

  plan.distribute_rounds = dc.rounds;
  plan.aggregate_rounds = ac.rounds;
  plan.total_rounds = plan.announce_rounds + dc.rounds + ac.rounds;
  plan.total_bits = plan.announce_bits + dc.bits + ac.bits;
  plan.dense_bits = algebraic_mm_plan(n, word_bits, bandwidth).total_bits;
  return plan;
}

int run_nnz_announcement(CliqueUnicast& net, const SparseNnzProfile& profile,
                         int count_bits) {
  const int n = profile.n;
  CC_REQUIRE(net.n() == n, "one player per matrix row");
  const int m = profile.grid;
  std::vector<std::vector<Message>> payload(
      static_cast<std::size_t>(n), std::vector<Message>(static_cast<std::size_t>(n)));
  for (int v = 0; v < n; ++v) {
    Message msg;
    for (int t = 0; t < m; ++t) {
      msg.push_uint(profile.a_block_nnz[static_cast<std::size_t>(v) *
                                            static_cast<std::size_t>(m) +
                                        static_cast<std::size_t>(t)],
                    count_bits);
    }
    for (int t = 0; t < m; ++t) {
      msg.push_uint(profile.b_block_nnz[static_cast<std::size_t>(v) *
                                            static_cast<std::size_t>(m) +
                                        static_cast<std::size_t>(t)],
                    count_bits);
    }
    for (int j = 0; j < n; ++j) {
      if (j == v) continue;
      payload[static_cast<std::size_t>(v)][static_cast<std::size_t>(j)] = msg;
    }
  }
  std::vector<std::vector<Message>> recv;
  const int rounds = unicast_payloads(net, payload, &recv);
  // Player 0's inbox must reproduce the declared profile (cheap
  // representative of the clique-wide agreement, as in share_partials).
  for (int v = 1; v < n; ++v) {
    const Message& msg = recv[0][static_cast<std::size_t>(v)];
    for (int t = 0; t < 2 * m; ++t) {
      const std::size_t declared =
          t < m ? profile.a_block_nnz[static_cast<std::size_t>(v) *
                                          static_cast<std::size_t>(m) +
                                      static_cast<std::size_t>(t)]
                : profile.b_block_nnz[static_cast<std::size_t>(v) *
                                          static_cast<std::size_t>(m) +
                                      static_cast<std::size_t>(t - m)];
      CC_CHECK(msg.read_uint(static_cast<std::size_t>(t) *
                                 static_cast<std::size_t>(count_bits),
                             count_bits) == declared,
               "nnz announcement corrupted a count");
    }
  }
  return rounds;
}

namespace {

/// Sparse-Ops adapters: the dense block-MM adapters plus the ring tag and
/// the sparse·dense local kernel (linalg/kernels.h dispatch — CC_KERNEL /
/// CC_THREADS change wall-clock only, never values or CommStats).
struct SparseM61Ops {
  using Matrix = Mat61;
  static constexpr int kWordBits = 61;
  static constexpr SparseRing kRing = SparseRing::kM61;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j); }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, v); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) { m.add_at(i, j, v); }
  static Matrix spmm(const Csr61& a, const Matrix& b) {
    return m61_spmm_dispatch(a, b);
  }
};

struct SparseTropicalOps {
  using Matrix = TropicalMat;
  static constexpr int kWordBits = 61;
  static constexpr SparseRing kRing = SparseRing::kTropical;
  static std::uint64_t get(const Matrix& m, int i, int j) { return m.get(i, j); }
  static void set(Matrix& m, int i, int j, std::uint64_t v) { m.set(i, j, v); }
  static void accumulate(Matrix& m, int i, int j, std::uint64_t v) { m.min_at(i, j, v); }
  static Matrix spmm(const Csr61& a, const Matrix& b) {
    return tropical_spmm_dispatch(a, b);
  }
};

}  // namespace

SparseMmResult sparse_mm_m61(CliqueUnicast& net, const Csr61& a, const Csr61& b,
                             Mat61* c) {
  const SparseNnzProfile profile = declared_nnz_profile(a, b);
  const SparseMmPlan plan =
      sparse_mm_plan(a.n(), /*word_bits=*/61, net.bandwidth(), profile);
  return run_sparse_mm<SparseM61Ops>(net, a, b, c, profile, plan);
}

SparseMmResult sparse_min_plus_mm(CliqueUnicast& net, const Csr61& a,
                                  const Csr61& b, TropicalMat* c) {
  const SparseNnzProfile profile = declared_nnz_profile(a, b);
  const SparseMmPlan plan =
      sparse_mm_plan(a.n(), /*word_bits=*/61, net.bandwidth(), profile);
  return run_sparse_mm<SparseTropicalOps>(net, a, b, c, profile, plan);
}

}  // namespace cclique
