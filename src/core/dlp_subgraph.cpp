#include "core/dlp_subgraph.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "routing/router.h"
#include "util/math_util.h"

namespace cclique {

namespace {

// Number of multisets of size d over t groups: C(t+d-1, d), saturating.
std::uint64_t multiset_count(int t, int d) {
  __uint128_t num = 1;
  for (int i = 0; i < d; ++i) num *= static_cast<unsigned>(t + i);
  __uint128_t den = 1;
  for (int i = 1; i <= d; ++i) den *= static_cast<unsigned>(i);
  const __uint128_t c = num / den;
  return c > ~0ULL ? ~0ULL : static_cast<std::uint64_t>(c);
}

// Enumerates all non-decreasing d-tuples over [t].
void enumerate_multisets(int t, int d, std::vector<int>& cur,
                         std::vector<std::vector<int>>& out) {
  if (static_cast<int>(cur.size()) == d) {
    out.push_back(cur);
    return;
  }
  const int start = cur.empty() ? 0 : cur.back();
  for (int g = start; g < t; ++g) {
    cur.push_back(g);
    enumerate_multisets(t, d, cur, out);
    cur.pop_back();
  }
}

bool multiset_contains_pair(const std::vector<int>& m, int x, int y) {
  if (x == y) {
    int count = 0;
    for (int v : m) count += (v == x) ? 1 : 0;
    return count >= 2;
  }
  bool has_x = false, has_y = false;
  for (int v : m) {
    if (v == x) has_x = true;
    if (v == y) has_y = true;
  }
  return has_x && has_y;
}

}  // namespace

DlpSubgraphResult dlp_subgraph_detect(CliqueUnicast& net, const Graph& g,
                                      const Graph& h) {
  const int n = g.num_vertices();
  const int d = h.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");
  CC_REQUIRE(d >= 2, "pattern needs at least two vertices");

  // Largest t with C(t+d-1, d) <= n (at least 1).
  int t = 1;
  while (multiset_count(t + 1, d) <= static_cast<std::uint64_t>(n)) ++t;
  std::vector<std::vector<int>> multisets;
  std::vector<int> cur;
  enumerate_multisets(t, d, cur, multisets);
  CC_CHECK(multisets.size() <= static_cast<std::size_t>(n),
           "multiset assignment overflow");

  std::vector<int> group_of(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) group_of[static_cast<std::size_t>(v)] = v % t;

  // pair (lo, hi) -> players wanting those edges.
  std::vector<std::vector<int>> players_for_pair(static_cast<std::size_t>(t) *
                                                 static_cast<std::size_t>(t));
  for (std::size_t p = 0; p < multisets.size(); ++p) {
    for (int lo = 0; lo < t; ++lo) {
      for (int hi = lo; hi < t; ++hi) {
        if (multiset_contains_pair(multisets[p], lo, hi)) {
          players_for_pair[static_cast<std::size_t>(lo) * static_cast<std::size_t>(t) +
                           static_cast<std::size_t>(hi)]
              .push_back(static_cast<int>(p));
        }
      }
    }
  }

  const int addr = bits_for(static_cast<std::uint64_t>(n));
  RoutingDemand demand;
  demand.payload_bits = 2 * addr;
  for (const Edge& e : g.edges()) {
    const int gu = group_of[static_cast<std::size_t>(e.u)];
    const int gv = group_of[static_cast<std::size_t>(e.v)];
    const int lo = std::min(gu, gv), hi = std::max(gu, gv);
    const std::uint64_t payload =
        (static_cast<std::uint64_t>(e.u) << addr) | static_cast<std::uint64_t>(e.v);
    for (int p : players_for_pair[static_cast<std::size_t>(lo) * static_cast<std::size_t>(t) +
                                  static_cast<std::size_t>(hi)]) {
      demand.messages.push_back(RoutedMessage{e.u, p, payload});
    }
  }
  RoutingResult routed = route_two_phase(net, demand);

  std::vector<bool> found(static_cast<std::size_t>(n), false);
  for (int p = 0; p < n; ++p) {
    if (routed.delivered[static_cast<std::size_t>(p)].empty()) continue;
    Graph local(n);
    for (const auto& [src, payload] : routed.delivered[static_cast<std::size_t>(p)]) {
      (void)src;
      const int u = static_cast<int>(payload >> addr);
      const int v = static_cast<int>(payload & ((1ULL << addr) - 1));
      local.add_edge(u, v);
    }
    found[static_cast<std::size_t>(p)] = contains_subgraph(local, h);
  }

  // One-round verdict aggregation at player 0.
  bool global = found[0];
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        if (i != 0) {
          Message m;
          m.push_bit(found[static_cast<std::size_t>(i)]);
          box[0] = std::move(m);
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;
        for (int j = 1; j < n; ++j) {
          if (!inbox[static_cast<std::size_t>(j)].empty() &&
              inbox[static_cast<std::size_t>(j)].get(0)) {
            global = true;
          }
        }
      });

  DlpSubgraphResult result;
  result.detected = global;
  result.groups = t;
  result.stats = net.stats();
  return result;
}

}  // namespace cclique
