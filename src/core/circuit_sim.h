// Theorem 2: simulating bounded-depth circuits of b-separable gates on the
// unicast congested clique in O(depth) rounds.
//
// Given a circuit C with N = n^2 * s wires and an input partition assigning
// at most n(b+s) input wires per player, the compiler:
//
//  1. computes the paper's gate-to-player assignment I: gates of weight
//     w(G) = |in(G)| + |out(G)| >= 2ns are "heavy" and get a dedicated
//     player each (at most n of them); light gates are packed greedily so
//     no player carries more than 4ns light weight;
//  2. routes the input bits from their original owners to their assigned
//     players (Lenzen-style routing — balanced by the input-partition
//     precondition);
//  3. evaluates the circuit layer by layer; each layer costs O(1) routing
//     phases:
//       (a) heavy gates: every player owning some of the gate's in-wires
//           sends the Definition 1 partial aggregate g_j (separability_bits
//           wide) straight to the gate's owner, who applies h;
//       (b) heavy gate outputs feeding light gates are forwarded to the
//           consumer's owner, deduplicated per (gate, receiver) pair over
//           the whole execution (the paper's "unless it has already done
//           so");
//       (c) light-to-light wires form a balanced demand (<= 4ns in/out per
//           player) routed with the two-phase router;
//  4. routes the output gate values to player 0 (Remark 3: operators just
//     spread outputs across players before this step).
//
// Every bit of communication flows through the metered CliqueUnicast
// engine, so the O(D)-round / O(b+s)-bandwidth claim is measured, not
// assumed. (Bookkeeping overhead relative to the paper: wire records carry
// explicit gate ids — an O(log #gates) factor folded into the bandwidth,
// since our router is general-purpose rather than Lenzen's positional
// scheme; see DESIGN.md §4.)
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.h"
#include "comm/clique_unicast.h"
#include "util/rng.h"

namespace cclique {

/// Which routing primitive the simulation uses for its balanced-demand
/// phases (input rebalancing, light wires, outputs). kTwoPhase is the
/// Lenzen-style substrate Theorem 2 assumes; the others are ablations
/// (see bench_e16): kDirect exposes hot-pair collapse, kValiant the
/// randomized-relay overhead.
enum class SimRouter { kTwoPhase, kDirect, kValiant };

/// Static analysis of a circuit against Theorem 2's parameters.
struct CircuitSimPlan {
  int n_players = 0;
  /// s = ceil(#wires / n^2), the wire-density parameter of the theorem.
  int s = 0;
  /// Max separability bits over all gates (the "b" of b-separable).
  int gate_b = 0;
  /// Heavy-gate threshold 2*n*s and resulting counts.
  std::size_t heavy_threshold = 0;
  int heavy_gates = 0;
  /// Max total light weight assigned to one player (<= 4*n*s guaranteed).
  std::size_t max_light_weight = 0;
  /// Gate -> player assignment I.
  std::vector<int> owner;
  /// Bandwidth sufficient to run every phase in one engine round per phase:
  /// max(gate_b, light-record width, input-record width).
  int recommended_bandwidth = 0;
};

/// Result of executing the simulation.
struct CircuitSimResult {
  std::vector<bool> outputs;  ///< marked outputs, known to player 0
  CommStats stats;            ///< exact engine accounting
  int layers = 0;             ///< circuit depth + 1 (number of stages)
};

/// How light gates are packed onto players. The paper's proof uses plain
/// first-fit ("assign each gate to some player that does not already own
/// more than 2ns - w(G)"), which can place consecutive chain gates on one
/// player and concentrate light-wire traffic onto single player pairs —
/// that is exactly the hot-pair demand the Lenzen routing substrate
/// absorbs. kRotating additionally advances a cursor after each placement,
/// spreading consecutive gates so hot pairs rarely form in the first place
/// (bench_e16 quantifies the difference).
enum class AssignPolicy { kRotating, kFirstFit };

/// The Theorem 2 compiler+executor.
class CircuitSimulation {
 public:
  /// Plans the simulation of `circuit` on `n_players` players. The circuit
  /// is treated as common knowledge (as in the paper).
  explicit CircuitSimulation(const Circuit& circuit, int n_players,
                             AssignPolicy policy = AssignPolicy::kRotating);

  const CircuitSimPlan& plan() const { return plan_; }

  /// Executes on the given engine. `input_owner[i]` is the player initially
  /// holding circuit input i, and `inputs[i]` its value. Any engine
  /// bandwidth >= 1 works (phases chunk); plan().recommended_bandwidth gives
  /// the O(b+s) figure of the theorem. `router` selects the balanced-demand
  /// primitive (ablation hook); kValiant draws relays from `valiant_rng`
  /// (required for that choice only).
  CircuitSimResult run(CliqueUnicast& net, const std::vector<bool>& inputs,
                       const std::vector<int>& input_owner,
                       SimRouter router = SimRouter::kTwoPhase,
                       Rng* valiant_rng = nullptr) const;

  /// Convenience: inputs dealt round-robin (input i owned by player i mod n),
  /// the "equally partitioned" premise of the paper.
  CircuitSimResult run_round_robin(CliqueUnicast& net,
                                   const std::vector<bool>& inputs) const;

 private:
  const Circuit* circuit_;
  CircuitSimPlan plan_;
};

}  // namespace cclique
