// Batched multi-query serving over cached protocol artifacts.
//
// Every engine in this library executes one protocol per invocation, but
// production traffic is many concurrent point queries over one shared
// graph. The complexity-theoretic framing (Korhonen–Suomela, "Towards a
// complexity theory for the congested clique") treats one expensive
// round-optimal computation as a reusable object, and the algebraic line
// (Censor-Hillel et al., PODC'15) shows a single A² / distance-product run
// already answers whole query families — so this layer runs the expensive
// protocols once, retains what they leave behind, and amortizes them
// across a query stream:
//
//  * three artifact classes: the weighted APSP closure (distance matrix +
//    eccentricity spectrum + diameter/radius, one apsp_run), the counting
//    artifact (A² over F_{2^61-1} + exact triangle/4-cycle counts, one
//    counting_artifacts_run), and the unit-weight squaring chain
//    (ApspArtifacts: powers[s] = hop distance over walks of <= 2^s edges,
//    which answers k-hop reachability exactly);
//  * a versioned ArtifactCache keyed by (class, fingerprint), fingerprint
//    covering graph topology + weights + engine parameters. Mutating the
//    graph changes the fingerprint, so stale artifacts can never answer a
//    fresh batch — and reverting a mutation restores the original
//    fingerprint, so the old artifacts hit again. A resident-words cap
//    evicts least-recently-used entries (answers are eviction-independent:
//    an evicted class is simply recomputed on the next miss);
//  * pricing: every batch is priced by serving_plan — one full protocol
//    schedule per needed-and-absent class, *exactly zero rounds and zero
//    bits* for every resident class — and the measured CommStats delta is
//    CC_CHECKed against it, the same contract as every other *_plan. A
//    cache hit that charged even one bit is an InvariantError;
//  * determinism: admission order is QueryBatch push order; the miss phase
//    runs protocols in fixed class order; the answer phase is
//    CC_THREADS-parallel over a static partition of the admitted order
//    (the engines' partition shape), each worker writing disjoint slots of
//    an arena-backed answer buffer — answers and CommStats are
//    bit-identical at any CC_THREADS / CC_KERNEL setting;
//  * obliviousness: cache residency is payload-derived common knowledge
//    (which fingerprints were served before), exactly the standing of the
//    sparse schedule's announced nnz counts — it crosses into serving_plan
//    only through declared_residency()'s declared-dependence boundary, and
//    ArtifactCache::resident is a tainted source, so an undeclared
//    residency probe inside any length-decision sink throws under the
//    oblivious guard. Artifact *values* are answered outside all sinks;
//    reading one inside a sink (wiring an answer into a schedule) throws
//    via the matrices' own source_touch. See DESIGN.md §2.9.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "comm/clique_unicast.h"
#include "core/algebraic_mm.h"
#include "core/apsp.h"
#include "graph/graph.h"
#include "linalg/tropical.h"
#include "util/arena.h"

namespace cclique {

/// Point-query vocabulary of the serving layer. Every answer is one 64-bit
/// word; distance-flavored answers use the tropical in-band convention
/// (kTropicalInf = unreachable / disconnected), reachability answers are
/// 0/1, counts are exact.
enum class QueryKind {
  kDist,        ///< d_w(u, v)
  kEcc,         ///< max_u d_w(v, u)
  kDiameter,    ///< max_v ecc(v)
  kRadius,      ///< min_v ecc(v)
  kTriangles,   ///< exact #triangles
  kFourCycles,  ///< exact #C4
  kReach,       ///< 1 iff v is reachable from u within <= k edges
};

/// One point query. Build via the factories so field use stays by-kind;
/// unused fields are zero and ignored.
struct Query {
  QueryKind kind = QueryKind::kDist;
  int u = 0;
  int v = 0;
  int k = 0;  ///< hop budget (kReach only; >= 0)

  static Query dist(int u, int v) { return {QueryKind::kDist, u, v, 0}; }
  static Query ecc(int v) { return {QueryKind::kEcc, 0, v, 0}; }
  static Query diameter() { return {QueryKind::kDiameter, 0, 0, 0}; }
  static Query radius() { return {QueryKind::kRadius, 0, 0, 0}; }
  static Query triangles() { return {QueryKind::kTriangles, 0, 0, 0}; }
  static Query four_cycles() { return {QueryKind::kFourCycles, 0, 0, 0}; }
  static Query reach(int u, int v, int k) { return {QueryKind::kReach, u, v, k}; }
};

/// An admitted batch: queries answered together against one graph version.
/// Admission order is push order — the scheduler answers queries in exactly
/// this order regardless of worker timing. A batch admitted before a graph
/// mutation is permanently stale: answering it throws (InvariantError).
class QueryBatch {
 public:
  void push(const Query& q) { queries_.push_back(q); }
  std::size_t size() const { return queries_.size(); }
  std::uint64_t version() const { return version_; }
  const std::vector<Query>& queries() const { return queries_; }

 private:
  friend class QueryService;
  explicit QueryBatch(std::uint64_t version) : version_(version) {}
  std::uint64_t version_ = 0;
  std::vector<Query> queries_;
};

/// Which artifact classes a batch needs — a pure function of the queries'
/// *kinds* (never of graph payload), so it is legal serving_plan input.
struct ArtifactNeed {
  bool apsp = false;      ///< kDist / kEcc / kDiameter / kRadius
  bool counting = false;  ///< kTriangles / kFourCycles
  bool hops = false;      ///< kReach
};

/// Cache-residency snapshot consumed by serving_plan. Payload-derived
/// common knowledge — obtain it through QueryService::declared_residency so
/// the dependence is declared to the oblivious guard.
struct ServingResidency {
  bool apsp = false;
  bool counting = false;
  bool hops = false;
};

/// The data-independent price of serving one batch given (need, residency):
/// one full protocol schedule per needed-and-absent class, zero rounds and
/// zero bits for every resident class. CC_CHECKed by QueryService::answer
/// against the measured CommStats delta on every batch.
struct ServingPlan {
  int n = 0;
  bool run_apsp = false;
  bool run_counting = false;
  bool run_hops = false;
  ApspPlan apsp;                  ///< filled iff run_apsp
  CountingArtifactPlan counting;  ///< filled iff run_counting
  ApspPlan hops;                  ///< filled iff run_hops (unit weights ride the same plan)
  int total_rounds = 0;
  std::uint64_t total_bits = 0;
};

/// Computes the serving schedule. A sink like every *_plan function: it
/// reads only plain booleans and (n, bandwidth) — the guard proves no
/// payload read sneaks in. Preconditions: n >= 1, bandwidth >= 1.
ServingPlan serving_plan(int n, int bandwidth, const ArtifactNeed& need,
                         const ServingResidency& resident);

/// The distance-closure artifact one apsp_run leaves behind.
struct ApspServingArtifact {
  TropicalMat dist;
  std::vector<std::uint64_t> eccentricity;
  std::uint64_t diameter = 0;
  std::uint64_t radius = 0;
  std::size_t footprint_words() const {
    return dist.footprint_words() + eccentricity.size();
  }
};

/// The unit-weight squaring chain: powers[s] is the exact hop distance over
/// walks of <= 2^s edges (powers[0] = the one-step matrix).
struct HopArtifact {
  std::vector<TropicalMat> powers;
  std::size_t footprint_words() const {
    std::size_t w = 0;
    for (const TropicalMat& m : powers) w += m.footprint_words();
    return w;
  }
};

/// Which protocol family produced an artifact.
enum class ArtifactClass { kApsp = 0, kCounting = 1, kHops = 2 };

/// Versioned artifact store keyed by (class, fingerprint) with
/// deterministic least-recently-used eviction under an optional
/// resident-words capacity. Use recency is a monotone counter bumped by
/// touch(), never wall-clock, so eviction order is reproducible.
class ArtifactCache {
 public:
  /// capacity_words == 0 means unbounded.
  explicit ArtifactCache(std::size_t capacity_words = 0)
      : capacity_words_(capacity_words) {}

  /// True iff (cls, fingerprint) is resident. Tainted oblivious source:
  /// residency depends on payload history, so probing it inside a
  /// length-decision sink requires a declared dependence
  /// (QueryService::declared_residency) or the guard throws.
  bool resident(ArtifactClass cls, std::uint64_t fingerprint) const;

  /// Artifact lookups (nullptr on miss). Pointers are invalidated by any
  /// put_* or evict_to_capacity call.
  const ApspServingArtifact* apsp(std::uint64_t fingerprint) const;
  const CountingArtifact* counting(std::uint64_t fingerprint) const;
  const HopArtifact* hops(std::uint64_t fingerprint) const;

  void put_apsp(std::uint64_t fingerprint, ApspServingArtifact artifact);
  void put_counting(std::uint64_t fingerprint, CountingArtifact artifact);
  void put_hops(std::uint64_t fingerprint, HopArtifact artifact);

  /// Bumps (cls, fingerprint)'s recency; no-op when absent.
  void touch(ArtifactClass cls, std::uint64_t fingerprint);

  /// Evicts least-recently-used entries until resident_words() fits the
  /// capacity (no-op when unbounded). Returns the number evicted.
  std::size_t evict_to_capacity();

  std::size_t capacity_words() const { return capacity_words_; }
  std::size_t resident_words() const { return resident_words_; }
  std::size_t entries() const { return entries_.size(); }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::size_t words = 0;
    std::uint64_t last_use = 0;
    // Exactly one of these is set, matching the key's class.
    std::unique_ptr<ApspServingArtifact> apsp;
    std::unique_ptr<CountingArtifact> counting;
    std::unique_ptr<HopArtifact> hops;
  };
  using Key = std::pair<int, std::uint64_t>;  // (class, fingerprint)

  void insert(ArtifactClass cls, std::uint64_t fingerprint, Entry entry);

  std::size_t capacity_words_;
  std::size_t resident_words_ = 0;
  std::uint64_t use_clock_ = 0;
  std::uint64_t evictions_ = 0;
  // Ordered map: eviction scans are deterministic by construction (ties in
  // last_use are impossible — the clock is strictly monotone).
  std::map<Key, Entry> entries_;
};

/// Outcome of answering one batch.
struct BatchResult {
  ServingPlan plan;
  std::vector<std::uint64_t> answers;  ///< one per query, admission order
  int rounds = 0;            ///< measured delta; equals plan.total_rounds
  std::uint64_t bits = 0;    ///< measured delta; equals plan.total_bits
  std::uint64_t hits = 0;    ///< needed artifact classes served from cache
  std::uint64_t misses = 0;  ///< needed artifact classes built fresh
};

/// The serving layer: owns its engine, the current graph + weights, and
/// the artifact cache; answers batched point queries, running protocols
/// only on artifact misses.
class QueryService {
 public:
  struct Config {
    int bandwidth = 64;                               ///< per-edge bits/round
    TropicalKernel kernel = TropicalKernel::kBlocked; ///< APSP local kernel
    std::size_t capacity_words = 0;                   ///< cache cap; 0 = unbounded
  };

  /// Weighted service: weights indexed by g.edges() order (the core/mst
  /// convention). Preconditions: n >= 1, one weight per edge.
  QueryService(const Graph& g, const std::vector<std::uint32_t>& weights,
               const Config& config);
  QueryService(const Graph& g, const std::vector<std::uint32_t>& weights)
      : QueryService(g, weights, Config{}) {}

  /// Unit-weight service (every edge weight 1).
  QueryService(const Graph& g, const Config& config);
  explicit QueryService(const Graph& g) : QueryService(g, Config{}) {}

  int n() const { return graph_.num_vertices(); }
  const Graph& graph() const { return graph_; }
  /// Monotone graph version; bumped only by *effective* mutations (adding
  /// an existing edge or removing an absent one changes nothing).
  std::uint64_t version() const { return version_; }
  /// Cache key of the current (graph, weights, engine-parameter) state.
  /// Reverting a mutation restores the previous fingerprint.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Adds edge {u, v} with the given weight. Returns true iff the edge was
  /// newly added (and the version bumped); adding an existing edge is a
  /// no-op that keeps its old weight.
  bool add_edge(int u, int v, std::uint32_t weight = 1);
  /// Removes edge {u, v}. Returns true iff it was removed (version bumped).
  bool remove_edge(int u, int v);
  /// Replaces the whole graph (n may change; the engine is rebuilt and its
  /// CommStats restart at zero when it does). Always bumps the version.
  void set_graph(const Graph& g, const std::vector<std::uint32_t>& weights);

  /// Opens a batch bound to the current version.
  QueryBatch new_batch() const { return QueryBatch(version_); }

  /// Answers a batch: validates every query (CC_REQUIRE: vertex ids in
  /// range, hop budgets >= 0), CC_CHECKs the batch against the current
  /// version (stale batches throw), runs the planned protocols for missing
  /// artifact classes in fixed class order, CC_CHECKs the measured
  /// CommStats delta against serving_plan (all-hit batches must measure
  /// exactly zero rounds and zero bits), then answers every query from
  /// local artifact reads.
  BatchResult answer(const QueryBatch& batch);

  /// Single-query convenience: a one-element batch at the current version.
  std::uint64_t answer_one(const Query& q);

  /// Cumulative engine accounting (every protocol this service ever ran).
  const CommStats& stats() const { return net_->stats(); }

  /// Residency snapshot through the oblivious guard's declared-dependence
  /// boundary (the declared_nnz_profile idiom): the serving schedule may
  /// depend on residency *because this function declares it*.
  ServingResidency declared_residency() const;

  const ArtifactCache& cache() const { return cache_; }
  std::uint64_t cache_hits() const { return hits_; }
  std::uint64_t cache_misses() const { return misses_; }
  std::uint64_t cache_evictions() const { return cache_.evictions(); }
  std::size_t resident_words() const { return cache_.resident_words(); }

 private:
  void rebuild_derived();  // weights_ + fingerprint_ from graph_ / weight map
  std::uint64_t answer_query(const Query& q, const ApspServingArtifact* apsp,
                             const CountingArtifact* counting,
                             const HopArtifact* hops) const;

  Graph graph_;
  /// Weight lookup keyed by canonical (u << 32 | v); source of truth the
  /// edges()-ordered weights_ vector is rebuilt from after mutations.
  std::map<std::uint64_t, std::uint32_t> weight_by_edge_;
  std::vector<std::uint32_t> weights_;  ///< aligned to graph_.edges() order
  Config config_;
  std::unique_ptr<CliqueUnicast> net_;
  ArtifactCache cache_;
  Arena answer_arena_;  ///< per-batch answer slots; reset each batch
  std::uint64_t version_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cclique
