// Theorem 9: H-subgraph detection when ex(n, H) is unknown to the nodes.
//
// The Section 3.1 adaptive algorithm. One O(log n / b)-round phase
// broadcasts the per-node sampling values X_v (uniform on [0, N), N the
// largest power of two <= n), defining the nested subsample hierarchy
//   G_j : keep edge {u,v} iff X_u = X_v (mod 2^j)      (Lemma 8 sampling).
// The main loop makes doubling degeneracy guesses k_i = 2^i and, for each,
// runs algorithm A(G_j, k_i) for every level j (sketch broadcasts exactly
// as in Theorem 7):
//   * success at any j with a copy of H in the reconstructed G_j — report
//     it (always sound: G_j is a subgraph of G);
//   * success at j = 0 with no copy — G itself is reconstructed: report
//     H-free (sound);
//   * otherwise keep going; the guess eventually reaches k_i >= n, where
//     A(G_0, k_i) must succeed.
// Lemma 8 drives the running time: degeneracy(G_j) concentrates around
// k * 2^-j, so for H-containing graphs some sparse level both reconstructs
// early (cheap sketches) and — degeneracy staying above the Claim 6
// threshold 4ex(n,H)/n — still contains a copy of H w.h.p.
#pragma once

#include <optional>

#include "comm/clique_broadcast.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// Result of the adaptive (unknown Turán number) detection protocol.
struct AdaptiveDetectResult {
  bool contains_h = false;
  std::optional<std::vector<int>> embedding;  ///< a copy, when one was found
  int final_guess = 0;       ///< k_i at termination
  int final_level = 0;       ///< j at termination
  int reconstruction_runs = 0;  ///< number of A(G_j, k_i) invocations
  CommStats stats;
};

/// Runs the Theorem 9 protocol. `rng` models the nodes' private coins for
/// the X_v draws. Never reports a false copy; reports "H-free" only from a
/// full reconstruction of G (exact), so errors are one-sided *in running
/// time* rather than in the verdict.
AdaptiveDetectResult adaptive_subgraph_detect(CliqueBroadcast& net, const Graph& g,
                                              const Graph& h, Rng& rng);

}  // namespace cclique
