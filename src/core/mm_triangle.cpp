#include "core/mm_triangle.h"

#include "circuit/mm_circuit.h"
#include "core/algebraic_mm.h"

namespace cclique {

MmTriangleResult mm_triangle_detect(CliqueUnicast& net, const Graph& g, int reps,
                                    Rng& rng, bool use_strassen) {
  return mm_triangle_run(net, g, reps, rng,
                         use_strassen ? TriangleBackend::kCircuitStrassen
                                      : TriangleBackend::kCircuitNaive);
}

MmTriangleResult mm_triangle_run(CliqueUnicast& net, const Graph& g, int reps,
                                 Rng& rng, TriangleBackend backend) {
  const int n = g.num_vertices();
  CC_REQUIRE(net.n() == n, "one player per vertex");

  if (backend == TriangleBackend::kAlgebraic) {
    const AlgebraicCountResult count = triangle_count_algebraic(net, g);
    MmTriangleResult out;
    out.detected = count.count > 0;
    out.triangle_count = count.count;
    out.exact = true;
    out.stats = net.stats();
    out.recommended_bandwidth = net.bandwidth();
    return out;
  }

  const bool use_strassen = backend == TriangleBackend::kCircuitStrassen;
  Circuit circuit;
  if (use_strassen) {
    circuit = triangle_witness_circuit(n, reps, rng, /*cutoff=*/2);
  } else {
    // Naive ablation: same witness construction but cubic products.
    // (triangle_witness_circuit always uses Strassen; rebuild inline.)
    Circuit c;
    MatrixWires a;
    a.n = n;
    for (int i = 0; i < n * n; ++i) a.w.push_back(c.add_input());
    const int zero = c.add_const(false);
    std::vector<int> rep_bits;
    for (int rep = 0; rep < reps; ++rep) {
      MatrixWires ar = a, arp = a;
      for (int j = 0; j < n; ++j) {
        const bool rj = rng.coin();
        const bool rpj = rng.coin();
        for (int i = 0; i < n; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j);
          if (!rj) ar.w[idx] = zero;
          if (!rpj) arp.w[idx] = zero;
        }
      }
      const MatrixWires p = add_f2_matmul_naive(c, ar, arp);
      const MatrixWires q = add_f2_matmul_naive(c, p, a);
      std::vector<int> diag;
      for (int i = 0; i < n; ++i) diag.push_back(q.at(i, i));
      rep_bits.push_back(c.add_gate(GateKind::kOr, std::move(diag)));
    }
    const int out = rep_bits.size() == 1 ? rep_bits[0]
                                         : c.add_gate(GateKind::kOr, std::move(rep_bits));
    c.mark_output(out);
    circuit = std::move(c);
  }

  // Input partition: entry (i, j) of the adjacency matrix belongs to player
  // i — each player holds exactly its n incident-edge bits, the paper's
  // "n bits per player" premise.
  std::vector<bool> inputs(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), false);
  std::vector<int> owner(inputs.size(), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const std::size_t idx =
          static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + static_cast<std::size_t>(j);
      inputs[idx] = i != j && g.has_edge(i, j);
      owner[idx] = i;
    }
  }

  CircuitSimulation sim(circuit, n);
  const CircuitSimResult run = sim.run(net, inputs, owner);

  MmTriangleResult out;
  out.detected = run.outputs.at(0);
  out.stats = run.stats;
  out.circuit_wires = circuit.num_wires();
  out.circuit_depth = circuit.depth();
  out.recommended_bandwidth = sim.plan().recommended_bandwidth;
  return out;
}

}  // namespace cclique
