#include "core/sorting.h"

#include <algorithm>

#include "analysis/locality_guard.h"
#include "routing/router.h"
#include "util/math_util.h"

namespace cclique {

namespace {

/// Composite tie-broken sort key: (key, source player, local index). The
/// suffix fields are globally distinct, so the composite order is a total
/// order refining the key order — equal keys are spread by global rank
/// instead of collapsing into one bucket.
std::uint64_t composite_key(std::uint32_t key, int source, std::size_t index,
                            int addr, int kbits) {
  return (static_cast<std::uint64_t>(key) << (addr + kbits)) |
         (static_cast<std::uint64_t>(source) << kbits) |
         static_cast<std::uint64_t>(index);
}

std::uint32_t composite_to_key(std::uint64_t ckey, int addr, int kbits) {
  return static_cast<std::uint32_t>(ckey >> (addr + kbits));
}

}  // namespace

SortResult clique_sort(CliqueUnicast& net,
                       const std::vector<std::vector<std::uint32_t>>& inputs) {
  const int n = net.n();
  CC_REQUIRE(static_cast<int>(inputs.size()) == n, "one input block per player");
  const std::size_t k = inputs.empty() ? 0 : inputs[0].size();
  for (const auto& block : inputs) {
    CC_REQUIRE(block.size() == k, "all players must hold equally many keys");
  }
  CC_REQUIRE(k >= 1, "need at least one key per player");
  const int addr = bits_for(static_cast<std::uint64_t>(n));
  const int kbits = bits_for(static_cast<std::uint64_t>(k));
  CC_REQUIRE(addr + kbits <= 32,
             "composite tie-break must fit a 64-bit payload next to the key");
  const int cw = 32 + addr + kbits;  // composite width on the wire
  CC_REQUIRE(net.bandwidth() >= cw,
             "bandwidth must fit one composite sample per message");

  // Phase 0: local sort (free — computation is not charged). Sorting plain
  // keys sorts the composites too: within one block the source is fixed
  // and the local index ascends. The blocks are player-private until phase
  // 2 routes them, so they are ownership-tagged: a callback touching
  // another player's block throws ModelViolation in CCLIQUE_LOCALITY builds.
  locality::PerPlayer<std::vector<std::uint32_t>> local(
      n, CC_LOCALITY_SITE("sorted local key blocks"));
  for (int i = 0; i < n; ++i) {
    local[i] = inputs[static_cast<std::size_t>(i)];
    std::sort(local[i].begin(), local[i].end());
  }

  // Phase 1a: regular samples — player i sends its (j+1)/(n+1) quantile
  // composite to player j (one cw-bit message per edge, 1 chunked exchange).
  const auto sample_index = [&](int j) {
    std::size_t idx = (static_cast<std::size_t>(j) + 1) * k /
                      (static_cast<std::size_t>(n) + 1);
    return idx >= k ? k - 1 : idx;
  };
  locality::PerPlayer<std::vector<std::uint64_t>> column(
      n, CC_LOCALITY_SITE("received sample column"));
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          const std::size_t idx = sample_index(j);
          Message m;
          m.push_uint(composite_key(local[i][idx], i, idx, addr, kbits), cw);
          box[static_cast<std::size_t>(j)] = std::move(m);
        }
        return box;
      },
      [&](int j, const std::vector<Message>& inbox) {
        for (int i = 0; i < n; ++i) {
          if (i == j) {
            const std::size_t idx = sample_index(j);
            column[j].push_back(
                composite_key(local[j][idx], j, idx, addr, kbits));
            continue;
          }
          const Message& m = inbox[static_cast<std::size_t>(i)];
          CC_CHECK(!m.empty(), "every player must deliver its regular sample");
          column[j].push_back(m.read_uint(0, cw));
        }
      });

  // Player j's splitter = the rank-proportional element of its sample
  // column (rank (j+1)n/(n+1), i.e. column j contributes the j-th of the n
  // evenly spaced elements of the global sample order). A column median
  // would pin every splitter to the same source coordinate and collapse
  // duplicate-heavy inputs back into one bucket; the proportional rank
  // spreads the splitters across the tie-break dimensions. All-gather them.
  locality::PerPlayer<std::uint64_t> my_splitter(
      n, CC_LOCALITY_SITE("private splitter candidate"));
  for (int j = 0; j < n; ++j) {
    auto& col = column[j];
    std::sort(col.begin(), col.end());
    const std::size_t rank = (static_cast<std::size_t>(j) + 1) * col.size() /
                             (static_cast<std::size_t>(n) + 1);
    my_splitter[j] = col[std::min(rank, col.size() - 1)];
  }
  std::vector<std::uint64_t> splitters(static_cast<std::size_t>(n));
  net.round(
      [&](int i) {
        Message m;
        m.push_uint(my_splitter[i], cw);
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = m;
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;  // identical decode everywhere; model once
        for (int i = 0; i < n; ++i) {
          if (i == receiver) {
            splitters[static_cast<std::size_t>(i)] = my_splitter[i];
            continue;
          }
          // Locality discipline: the splitter must arrive on the wire — a
          // fallback into another player's private my_splitter would let
          // the receiver read state it was never sent.
          CC_CHECK(!inbox[static_cast<std::size_t>(i)].empty(),
                   "every player must deliver its splitter");
          splitters[static_cast<std::size_t>(i)] =
              inbox[static_cast<std::size_t>(i)].read_uint(0, cw);
        }
      });
  std::sort(splitters.begin(), splitters.end());
  // The last splitter is unused (bucket n-1 is open-ended).
  splitters.pop_back();

  // Phase 2: route every key (as its composite) to its bucket owner.
  RoutingDemand demand;
  demand.payload_bits = cw;
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      const std::uint64_t ckey = composite_key(local[i][t], i, t, addr, kbits);
      const int bucket = static_cast<int>(
          std::upper_bound(splitters.begin(), splitters.end(), ckey) -
          splitters.begin());
      demand.messages.push_back(RoutedMessage{i, bucket, ckey});
    }
  }
  RoutingResult bucketed = route_two_phase(net, demand);
  locality::PerPlayer<std::vector<std::uint64_t>> bucket_keys(
      n, CC_LOCALITY_SITE("owned bucket keys"));
  SortResult result;
  result.bucket_loads.assign(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    for (const auto& [src, payload] : bucketed.delivered[static_cast<std::size_t>(j)]) {
      (void)src;
      bucket_keys[j].push_back(payload);
    }
    std::sort(bucket_keys[j].begin(), bucket_keys[j].end());
    result.bucket_loads[static_cast<std::size_t>(j)] = bucket_keys[j].size();
  }

  // Phase 3: all-gather bucket counts; compute exact rank offsets; route
  // each key to its final owner (rank / k).
  const int count_bits = bits_for(static_cast<std::uint64_t>(n) * k + 1);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
  net.round(
      [&](int i) {
        Message m;
        m.push_uint(bucket_keys[i].size(), count_bits);
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = m;
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;
        for (int i = 0; i < n; ++i) {
          if (i == receiver) {
            counts[static_cast<std::size_t>(i)] = bucket_keys[i].size();
            continue;
          }
          CC_CHECK(!inbox[static_cast<std::size_t>(i)].empty(),
                   "every bucket owner must deliver its count");
          counts[static_cast<std::size_t>(i)] =
              inbox[static_cast<std::size_t>(i)].read_uint(0, count_bits);
        }
      });
  std::vector<std::uint64_t> offset(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    offset[static_cast<std::size_t>(i) + 1] = offset[static_cast<std::size_t>(i)] + counts[static_cast<std::size_t>(i)];
  }
  CC_CHECK(offset[static_cast<std::size_t>(n)] == static_cast<std::uint64_t>(n) * k,
           "bucket counts must cover all keys");

  RoutingDemand final_demand;
  final_demand.payload_bits = 32;
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < bucket_keys[i].size(); ++t) {
      const std::uint64_t rank = offset[static_cast<std::size_t>(i)] + t;
      final_demand.messages.push_back(RoutedMessage{
          i, static_cast<int>(rank / k),
          composite_to_key(bucket_keys[i][t], addr, kbits)});
    }
  }
  RoutingResult placed = route_two_phase(net, final_demand);

  result.blocks.assign(static_cast<std::size_t>(n), {});
  for (int j = 0; j < n; ++j) {
    for (const auto& [src, payload] : placed.delivered[static_cast<std::size_t>(j)]) {
      (void)src;
      result.blocks[static_cast<std::size_t>(j)].push_back(static_cast<std::uint32_t>(payload));
    }
    std::sort(result.blocks[static_cast<std::size_t>(j)].begin(),
              result.blocks[static_cast<std::size_t>(j)].end());
  }
  result.stats = net.stats();
  return result;
}

}  // namespace cclique
