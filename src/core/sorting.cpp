#include "core/sorting.h"

#include <algorithm>

#include "routing/router.h"
#include "util/math_util.h"

namespace cclique {

SortResult clique_sort(CliqueUnicast& net,
                       const std::vector<std::vector<std::uint32_t>>& inputs) {
  const int n = net.n();
  CC_REQUIRE(static_cast<int>(inputs.size()) == n, "one input block per player");
  const std::size_t k = inputs.empty() ? 0 : inputs[0].size();
  for (const auto& block : inputs) {
    CC_REQUIRE(block.size() == k, "all players must hold equally many keys");
  }
  CC_REQUIRE(k >= 1, "need at least one key per player");

  // Phase 0: local sort (free — computation is not charged).
  std::vector<std::vector<std::uint32_t>> local(inputs);
  for (auto& block : local) std::sort(block.begin(), block.end());

  // Phase 1a: regular samples — player i sends its (j+1)/(n+1) quantile to
  // player j (one 32-bit message per edge, 1 chunked exchange).
  std::vector<std::vector<std::uint32_t>> column(static_cast<std::size_t>(n));
  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          std::size_t idx = (static_cast<std::size_t>(j) + 1) * k /
                            (static_cast<std::size_t>(n) + 1);
          if (idx >= k) idx = k - 1;
          Message m;
          m.push_uint(local[static_cast<std::size_t>(i)][idx], 32);
          box[static_cast<std::size_t>(j)] = std::move(m);
        }
        return box;
      },
      [&](int j, const std::vector<Message>& inbox) {
        for (int i = 0; i < n; ++i) {
          if (i == j) {
            std::size_t idx = (static_cast<std::size_t>(j) + 1) * k /
                              (static_cast<std::size_t>(n) + 1);
            if (idx >= k) idx = k - 1;
            column[static_cast<std::size_t>(j)].push_back(local[static_cast<std::size_t>(j)][idx]);
            continue;
          }
          const Message& m = inbox[static_cast<std::size_t>(i)];
          if (!m.empty()) {
            column[static_cast<std::size_t>(j)].push_back(
                static_cast<std::uint32_t>(m.read_uint(0, 32)));
          }
        }
      });

  // Player j's splitter = median of its sample column; all-gather them.
  std::vector<std::uint32_t> my_splitter(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& col = column[static_cast<std::size_t>(j)];
    std::sort(col.begin(), col.end());
    my_splitter[static_cast<std::size_t>(j)] = col[col.size() / 2];
  }
  std::vector<std::uint32_t> splitters(static_cast<std::size_t>(n));
  net.round(
      [&](int i) {
        Message m;
        m.push_uint(my_splitter[static_cast<std::size_t>(i)], 32);
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = m;
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;  // identical decode everywhere; model once
        for (int i = 0; i < n; ++i) {
          splitters[static_cast<std::size_t>(i)] =
              (i == 0 && inbox[0].empty())
                  ? my_splitter[0]
                  : (inbox[static_cast<std::size_t>(i)].empty()
                         ? my_splitter[static_cast<std::size_t>(i)]
                         : static_cast<std::uint32_t>(
                               inbox[static_cast<std::size_t>(i)].read_uint(0, 32)));
        }
      });
  std::sort(splitters.begin(), splitters.end());
  // The last splitter is unused (bucket n-1 is open-ended).
  splitters.pop_back();

  // Phase 2: route every key to its bucket owner.
  RoutingDemand demand;
  demand.payload_bits = 32;
  for (int i = 0; i < n; ++i) {
    for (std::uint32_t key : local[static_cast<std::size_t>(i)]) {
      const int bucket = static_cast<int>(
          std::upper_bound(splitters.begin(), splitters.end(), key) -
          splitters.begin());
      demand.messages.push_back(RoutedMessage{i, bucket, key});
    }
  }
  RoutingResult bucketed = route_two_phase(net, demand);
  std::vector<std::vector<std::uint32_t>> bucket_keys(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    for (const auto& [src, payload] : bucketed.delivered[static_cast<std::size_t>(j)]) {
      (void)src;
      bucket_keys[static_cast<std::size_t>(j)].push_back(static_cast<std::uint32_t>(payload));
    }
    std::sort(bucket_keys[static_cast<std::size_t>(j)].begin(),
              bucket_keys[static_cast<std::size_t>(j)].end());
  }

  // Phase 3: all-gather bucket counts; compute exact rank offsets; route
  // each key to its final owner (rank / k).
  const int count_bits = bits_for(static_cast<std::uint64_t>(n) * k + 1);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
  net.round(
      [&](int i) {
        Message m;
        m.push_uint(bucket_keys[static_cast<std::size_t>(i)].size(), count_bits);
        std::vector<Message> box(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          if (j != i) box[static_cast<std::size_t>(j)] = m;
        }
        return box;
      },
      [&](int receiver, const std::vector<Message>& inbox) {
        if (receiver != 0) return;
        for (int i = 0; i < n; ++i) {
          counts[static_cast<std::size_t>(i)] =
              inbox[static_cast<std::size_t>(i)].empty()
                  ? bucket_keys[static_cast<std::size_t>(i)].size()
                  : inbox[static_cast<std::size_t>(i)].read_uint(0, count_bits);
        }
      });
  std::vector<std::uint64_t> offset(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    offset[static_cast<std::size_t>(i) + 1] = offset[static_cast<std::size_t>(i)] + counts[static_cast<std::size_t>(i)];
  }
  CC_CHECK(offset[static_cast<std::size_t>(n)] == static_cast<std::uint64_t>(n) * k,
           "bucket counts must cover all keys");

  RoutingDemand final_demand;
  final_demand.payload_bits = 32;
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < bucket_keys[static_cast<std::size_t>(i)].size(); ++t) {
      const std::uint64_t rank = offset[static_cast<std::size_t>(i)] + t;
      final_demand.messages.push_back(RoutedMessage{
          i, static_cast<int>(rank / k), bucket_keys[static_cast<std::size_t>(i)][t]});
    }
  }
  RoutingResult placed = route_two_phase(net, final_demand);

  SortResult result;
  result.blocks.assign(static_cast<std::size_t>(n), {});
  for (int j = 0; j < n; ++j) {
    for (const auto& [src, payload] : placed.delivered[static_cast<std::size_t>(j)]) {
      (void)src;
      result.blocks[static_cast<std::size_t>(j)].push_back(static_cast<std::uint32_t>(payload));
    }
    std::sort(result.blocks[static_cast<std::size_t>(j)].begin(),
              result.blocks[static_cast<std::size_t>(j)].end());
  }
  result.stats = net.stats();
  return result;
}

}  // namespace cclique
