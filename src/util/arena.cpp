#include "util/arena.h"

#include <algorithm>

namespace cclique {

namespace {
constexpr std::size_t kMinBlockWords = 1024;  // 8 KiB
}  // namespace

std::uint64_t* Arena::alloc_words(std::size_t nwords) {
  // Find (or create) a block with room, starting at the active block.
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.used + nwords <= b.size) {
      std::uint64_t* out = b.words.get() + b.used;
      b.used += nwords;
      used_ += nwords;
      return out;
    }
    ++active_;
  }
  const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t size = std::max({kMinBlockWords, prev * 2, nwords});
  Block b;
  b.words = std::make_unique<std::uint64_t[]>(size);
  b.size = size;
  b.used = nwords;
  blocks_.push_back(std::move(b));
  used_ += nwords;
  return blocks_.back().words.get();
}

void Arena::reset() {
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
  used_ = 0;
}

std::size_t Arena::capacity_words() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace cclique
