// Bump allocator for message payload storage.
//
// The communication engines materialize up to n^2 message buffers per round;
// allocating each from the heap dominates bench wall-clock at the scales the
// paper's series are measured at. An Arena hands out word-aligned storage by
// bumping a cursor through geometrically growing blocks; reset() rewinds the
// cursor without releasing the blocks, so a steady-state round performs no
// heap allocation at all. BitVec's borrow mode (util/bitvec.h) builds
// messages directly inside arena storage.
//
// Lifetime rule: storage returned by alloc_words() is valid until the next
// reset(); anything that must outlive the round (delivered payloads a
// protocol keeps) must be copied into owned storage first. The engines
// enforce this by re-borrowing their outbox slots every round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cclique {

/// Word-granular bump allocator with block reuse across reset().
class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `nwords` contiguous uninitialized 64-bit words. nwords == 0
  /// returns a valid (dereferenceable-for-zero-words) pointer.
  std::uint64_t* alloc_words(std::size_t nwords);

  /// Rewinds the cursor to the start; keeps every block for reuse. All
  /// previously returned pointers become invalid for new content (their
  /// storage will be handed out again).
  void reset();

  /// Total words handed out since the last reset().
  std::size_t used_words() const { return used_; }

  /// Total words of capacity across all blocks (never shrinks).
  std::size_t capacity_words() const;

 private:
  struct Block {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block currently being bumped
  std::size_t used_ = 0;
};

}  // namespace cclique
