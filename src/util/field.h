// Arithmetic in F_p for the Mersenne prime p = 2^61 - 1.
//
// The Becker-et-al. reconstruction sketches (src/sketch) encode neighbor
// multisets as power sums over a prime field whose size exceeds any node id;
// 2^61 - 1 gives fast reduction-free-of-division arithmetic and 61-bit
// elements, which is what the O(k log n) message-size accounting of the
// one-round protocol assumes.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace cclique {

/// F_p element operations, p = 2^61 - 1. Values are kept in [0, p).
class Mersenne61 {
 public:
  static constexpr std::uint64_t kP = (1ULL << 61) - 1;

  /// Reduces an arbitrary 64-bit value into [0, p).
  static std::uint64_t reduce(std::uint64_t x) {
    x = (x & kP) + (x >> 61);
    if (x >= kP) x -= kP;
    return x;
  }

  static std::uint64_t add(std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = a + b;
    if (s >= kP) s -= kP;
    return s;
  }

  static std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : a + kP - b;
  }

  static std::uint64_t neg(std::uint64_t a) { return a == 0 ? 0 : kP - a; }

  /// Reduces a full 128-bit value into [0, p): three 61-bit limbs collapse
  /// because 2^61 ≡ 1 and 2^122 ≡ 1 (mod p). Correct over the whole
  /// 128-bit range. Used by the lazy-accumulation matrix kernel
  /// (linalg/mat61), which folds 32-deep panels of products of reduced
  /// elements (32 · (p-1)^2 < 2^127) with one reduction per panel.
  static std::uint64_t reduce128(__uint128_t x) {
    const std::uint64_t lo = static_cast<std::uint64_t>(x) & kP;
    const std::uint64_t mid = static_cast<std::uint64_t>(x >> 61) & kP;
    const std::uint64_t hi = static_cast<std::uint64_t>(x >> 122);
    return reduce(lo + mid + hi);  // < 3 * 2^61, fits; reduce folds the carry
  }

  static std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
    __uint128_t t = static_cast<__uint128_t>(a) * b;
    std::uint64_t lo = static_cast<std::uint64_t>(t) & kP;
    std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
    std::uint64_t s = lo + hi;
    if (s >= kP) s -= kP;
    return s;
  }

  static std::uint64_t pow(std::uint64_t base, std::uint64_t exp) {
    std::uint64_t r = 1;
    base = reduce(base);
    while (exp > 0) {
      if (exp & 1ULL) r = mul(r, base);
      base = mul(base, base);
      exp >>= 1;
    }
    return r;
  }

  /// Multiplicative inverse; requires a != 0 (mod p).
  static std::uint64_t inv(std::uint64_t a) {
    a = reduce(a);
    CC_REQUIRE(a != 0, "inverse of zero in F_p");
    return pow(a, kP - 2);  // Fermat
  }
};

}  // namespace cclique
