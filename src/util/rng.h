// Deterministic, splittable pseudo-random number generator.
//
// Every randomized protocol in the library draws from an explicitly seeded
// Rng so that simulations are reproducible bit-for-bit. The generator is
// xoshiro256** seeded via SplitMix64, which is statistically strong enough
// for workload generation and protocol coin flips while being trivially
// portable (no global state, no <random> distribution variance across
// standard libraries).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cclique {

/// Splittable deterministic PRNG (xoshiro256** core).
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams on all platforms.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    CC_REQUIRE(bound > 0, "uniform() needs a positive bound");
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    CC_REQUIRE(lo <= hi, "uniform_range() needs lo <= hi");
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform_double() < p; }

  /// A single fair coin flip.
  bool coin() { return (next_u64() & 1ULL) != 0; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// player its own private coin stream from one experiment seed.
  Rng split(std::uint64_t salt) {
    return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x1234567890abcdefULL));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cclique
