// Packed bit vector: the payload type for every simulated message.
//
// The communication models in this library account for bandwidth in *bits*,
// so messages are built by appending bit fields and consumed by a cursor
// reader. A BitVec knows its exact length in bits; the engines use that
// length to enforce per-edge / per-player bandwidth caps.
//
// Storage modes:
//  * owned    — the default; bits live in a std::vector and grow on demand.
//  * borrowed — bits live in caller-provided storage (typically an Arena,
//    util/arena.h) with a fixed bit capacity. The transport core builds its
//    per-round outboxes in borrowed mode so a round performs O(1) heap
//    allocations instead of O(n^2); exceeding the reserved capacity throws
//    ModelViolation, which doubles as eager bandwidth enforcement.
//
// Copying a BitVec always deep-copies into owned storage (a copy never
// aliases arena memory whose round may end); moving transfers the
// representation, borrowed or not. alias() makes an explicit shallow
// read-only view when zero-copy delivery is wanted.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cclique {

/// Growable vector of bits with exact bit-length accounting.
class BitVec {
 public:
  BitVec() = default;

  /// Constructs an all-zero owned vector of `nbits` bits.
  explicit BitVec(std::size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// An empty borrowed writer over caller storage of `capacity_bits` bits.
  /// The storage must stay valid for the BitVec's lifetime; bits are
  /// zeroed lazily as they are appended.
  static BitVec borrow(std::uint64_t* storage, std::size_t capacity_bits) {
    BitVec v;
    v.ext_ = storage;
    v.cap_bits_ = capacity_bits;
    return v;
  }

  /// A shallow read-only view of `other`'s current contents (no copy). The
  /// view is full (at capacity), so appending to it throws. Valid only
  /// while `other`'s storage is.
  static BitVec alias(const BitVec& other) {
    BitVec v;
    v.ext_ = const_cast<std::uint64_t*>(other.word_data());
    v.cap_bits_ = other.nbits_;
    v.nbits_ = other.nbits_;
    return v;
  }

  BitVec(const BitVec& other)
      : nbits_(other.nbits_),
        words_(other.word_data(), other.word_data() + other.word_count()) {}

  BitVec& operator=(const BitVec& other) {
    if (this != &other) {
      words_.assign(other.word_data(), other.word_data() + other.word_count());
      nbits_ = other.nbits_;
      ext_ = nullptr;
      cap_bits_ = 0;
    }
    return *this;
  }

  BitVec(BitVec&& other) noexcept
      : nbits_(other.nbits_),
        words_(std::move(other.words_)),
        ext_(other.ext_),
        cap_bits_(other.cap_bits_) {
    other.nbits_ = 0;
    other.ext_ = nullptr;
    other.cap_bits_ = 0;
  }

  BitVec& operator=(BitVec&& other) noexcept {
    if (this != &other) {
      nbits_ = other.nbits_;
      words_ = std::move(other.words_);
      ext_ = other.ext_;
      cap_bits_ = other.cap_bits_;
      other.nbits_ = 0;
      other.ext_ = nullptr;
      other.cap_bits_ = 0;
    }
    return *this;
  }

  /// Number of bits held.
  std::size_t size_bits() const { return nbits_; }

  bool empty() const { return nbits_ == 0; }

  /// True when the bits live in caller-provided (arena) storage.
  bool borrowed() const { return ext_ != nullptr; }

  /// Drops the contents but keeps the storage mode and capacity, so a
  /// borrowed slot can be refilled round after round without reallocation.
  void clear() {
    nbits_ = 0;
    words_.clear();  // keeps vector capacity; appends re-zero on entry
  }

  /// Owned mode only: preallocates capacity for `nbits` bits.
  void reserve_bits(std::size_t nbits) {
    CC_REQUIRE(!borrowed(), "reserve_bits on a borrowed BitVec");
    words_.reserve((nbits + 63) / 64);
  }

  /// Reads the bit at `pos` (0-based). Requires pos < size_bits().
  bool get(std::size_t pos) const {
    CC_REQUIRE(pos < nbits_, "BitVec::get out of range");
    return (word_data()[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  /// Writes the bit at `pos`. Requires pos < size_bits().
  void set(std::size_t pos, bool value) {
    CC_REQUIRE(pos < nbits_, "BitVec::set out of range");
    const std::uint64_t mask = 1ULL << (pos & 63);
    if (value) {
      mutable_word_data()[pos >> 6] |= mask;
    } else {
      mutable_word_data()[pos >> 6] &= ~mask;
    }
  }

  /// Appends a single bit.
  void push_bit(bool value) {
    grow_for(1);
    if (value) mutable_word_data()[nbits_ >> 6] |= 1ULL << (nbits_ & 63);
    ++nbits_;
  }

  /// Appends the low `width` bits of `value`, least-significant first.
  /// width must be in [0, 64].
  void push_uint(std::uint64_t value, int width) {
    CC_REQUIRE(width >= 0 && width <= 64, "push_uint width out of range");
    if (width == 0) return;
    if (width < 64) value &= (1ULL << width) - 1;
    grow_for(static_cast<std::size_t>(width));
    std::uint64_t* w = mutable_word_data();
    const std::size_t word = nbits_ >> 6;
    const int off = static_cast<int>(nbits_ & 63);
    w[word] |= value << off;
    if (off + width > 64) w[word + 1] = value >> (64 - off);
    nbits_ += static_cast<std::size_t>(width);
  }

  /// Appends all bits of `other`.
  void append(const BitVec& other) { append_slice(other, 0, other.nbits_); }

  /// Appends `len` bits of `src` starting at bit `pos` (word-at-a-time; the
  /// hot path of the chunked payload helpers).
  void append_slice(const BitVec& src, std::size_t pos, std::size_t len) {
    CC_REQUIRE(pos + len <= src.nbits_, "append_slice out of range");
    std::size_t done = 0;
    while (done < len) {
      const int take = static_cast<int>(len - done < 64 ? len - done : 64);
      push_uint(src.read_uint(pos + done, take), take);
      done += static_cast<std::size_t>(take);
    }
  }

  /// Extracts `width` bits starting at `pos` as an integer
  /// (least-significant bit first, matching push_uint).
  std::uint64_t read_uint(std::size_t pos, int width) const {
    CC_REQUIRE(width >= 0 && width <= 64, "read_uint width out of range");
    CC_REQUIRE(pos + static_cast<std::size_t>(width) <= nbits_,
               "read_uint out of range");
    if (width == 0) return 0;
    const std::uint64_t* w = word_data();
    const std::size_t word = pos >> 6;
    const int off = static_cast<int>(pos & 63);
    std::uint64_t out = w[word] >> off;
    if (off + width > 64) out |= w[word + 1] << (64 - off);
    if (width < 64) out &= (1ULL << width) - 1;
    return out;
  }

  bool operator==(const BitVec& other) const {
    if (nbits_ != other.nbits_) return false;
    const std::size_t full = nbits_ >> 6;
    const std::uint64_t* a = word_data();
    const std::uint64_t* b = other.word_data();
    for (std::size_t i = 0; i < full; ++i) {
      if (a[i] != b[i]) return false;
    }
    const int tail = static_cast<int>(nbits_ & 63);
    if (tail != 0) {
      const std::uint64_t mask = (1ULL << tail) - 1;
      if ((a[full] & mask) != (b[full] & mask)) return false;
    }
    return true;
  }
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  /// Human-readable 0/1 string, most recently appended bit last.
  std::string to_string() const {
    std::string s;
    s.reserve(nbits_);
    for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
    return s;
  }

 private:
  const std::uint64_t* word_data() const { return ext_ != nullptr ? ext_ : words_.data(); }
  std::uint64_t* mutable_word_data() { return ext_ != nullptr ? ext_ : words_.data(); }
  std::size_t word_count() const { return (nbits_ + 63) / 64; }

  /// Makes room for `extra` more bits. Invariant maintained by all writers:
  /// in the word holding position nbits_, every bit at or above nbits_&63 is
  /// zero, so appends can OR into place. Owned mode zero-fills on resize;
  /// borrowed (arena) storage is uninitialized, so the word being entered at
  /// a 64-bit boundary is zeroed here.
  void grow_for(std::size_t extra) {
    if (extra == 0) return;
    if (ext_ != nullptr) {
      CC_MODEL(nbits_ + extra <= cap_bits_,
               "write past a borrowed message's reserved capacity (the "
               "engine reserves exactly the model's bandwidth cap)");
      if ((nbits_ & 63) == 0) ext_[nbits_ >> 6] = 0;
    } else {
      const std::size_t need_words = (nbits_ + extra + 63) / 64;
      if (words_.size() < need_words) words_.resize(need_words, 0);
    }
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;  ///< owned-mode storage
  std::uint64_t* ext_ = nullptr;      ///< borrowed-mode storage (not owned)
  std::size_t cap_bits_ = 0;          ///< borrowed-mode bit capacity
};

/// Sequential reader over a BitVec; tracks a cursor so protocol code can
/// decode structured messages field by field.
class BitReader {
 public:
  explicit BitReader(const BitVec& bits) : bits_(&bits) {}

  /// Bits not yet consumed.
  std::size_t remaining() const { return bits_->size_bits() - pos_; }

  bool read_bit() {
    CC_REQUIRE(remaining() >= 1, "BitReader exhausted");
    return bits_->get(pos_++);
  }

  std::uint64_t read_uint(int width) {
    std::uint64_t v = bits_->read_uint(pos_, width);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

 private:
  const BitVec* bits_;
  std::size_t pos_ = 0;
};

}  // namespace cclique
