// Packed bit vector: the payload type for every simulated message.
//
// The communication models in this library account for bandwidth in *bits*,
// so messages are built by appending bit fields and consumed by a cursor
// reader. A BitVec knows its exact length in bits; the engines use that
// length to enforce per-edge / per-player bandwidth caps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace cclique {

/// Growable vector of bits with exact bit-length accounting.
class BitVec {
 public:
  BitVec() = default;

  /// Constructs an all-zero vector of `nbits` bits.
  explicit BitVec(std::size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Number of bits held.
  std::size_t size_bits() const { return nbits_; }

  bool empty() const { return nbits_ == 0; }

  /// Reads the bit at `pos` (0-based). Requires pos < size_bits().
  bool get(std::size_t pos) const {
    CC_REQUIRE(pos < nbits_, "BitVec::get out of range");
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  /// Writes the bit at `pos`. Requires pos < size_bits().
  void set(std::size_t pos, bool value) {
    CC_REQUIRE(pos < nbits_, "BitVec::set out of range");
    const std::uint64_t mask = 1ULL << (pos & 63);
    if (value) {
      words_[pos >> 6] |= mask;
    } else {
      words_[pos >> 6] &= ~mask;
    }
  }

  /// Appends a single bit.
  void push_bit(bool value) {
    if ((nbits_ & 63) == 0) words_.push_back(0);
    if (value) words_.back() |= 1ULL << (nbits_ & 63);
    ++nbits_;
  }

  /// Appends the low `width` bits of `value`, least-significant first.
  /// width must be in [0, 64].
  void push_uint(std::uint64_t value, int width) {
    CC_REQUIRE(width >= 0 && width <= 64, "push_uint width out of range");
    for (int i = 0; i < width; ++i) push_bit((value >> i) & 1ULL);
  }

  /// Appends all bits of `other`.
  void append(const BitVec& other) {
    for (std::size_t i = 0; i < other.nbits_; ++i) push_bit(other.get(i));
  }

  /// Extracts `width` bits starting at `pos` as an integer
  /// (least-significant bit first, matching push_uint).
  std::uint64_t read_uint(std::size_t pos, int width) const {
    CC_REQUIRE(width >= 0 && width <= 64, "read_uint width out of range");
    CC_REQUIRE(pos + static_cast<std::size_t>(width) <= nbits_,
               "read_uint out of range");
    std::uint64_t out = 0;
    for (int i = 0; i < width; ++i) {
      if (get(pos + static_cast<std::size_t>(i))) out |= 1ULL << i;
    }
    return out;
  }

  bool operator==(const BitVec& other) const {
    if (nbits_ != other.nbits_) return false;
    for (std::size_t i = 0; i < nbits_; ++i) {
      if (get(i) != other.get(i)) return false;
    }
    return true;
  }
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  /// Human-readable 0/1 string, most recently appended bit last.
  std::string to_string() const {
    std::string s;
    s.reserve(nbits_);
    for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
    return s;
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sequential reader over a BitVec; tracks a cursor so protocol code can
/// decode structured messages field by field.
class BitReader {
 public:
  explicit BitReader(const BitVec& bits) : bits_(&bits) {}

  /// Bits not yet consumed.
  std::size_t remaining() const { return bits_->size_bits() - pos_; }

  bool read_bit() {
    CC_REQUIRE(remaining() >= 1, "BitReader exhausted");
    return bits_->get(pos_++);
  }

  std::uint64_t read_uint(int width) {
    std::uint64_t v = bits_->read_uint(pos_, width);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

 private:
  const BitVec* bits_;
  std::size_t pos_ = 0;
};

}  // namespace cclique
