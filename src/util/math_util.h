// Small integer-math helpers shared across modules.
#pragma once

#include <cstdint>

namespace cclique {

/// ceil(a / b) for non-negative a and positive b.
inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Number of bits needed to represent values in [0, n); at least 1.
/// This is the standard message-field width for node ids in [0, n).
inline int bits_for(std::uint64_t n) {
  int w = 1;
  // Capping at 64 keeps the shift defined for n > 2^63 (the old loop would
  // have evaluated 1ULL << 64, which is UB, before terminating).
  while (w < 64 && (1ULL << w) < n) ++w;
  return w;
}

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::uint64_t x) {
  int l = 0;
  while (x >>= 1) ++l;
  return l;
}

/// Integer square root: the largest r with r*r <= x.
inline std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  constexpr std::uint64_t kMax = 0xFFFFFFFFULL;  // isqrt(2^64 - 1)
  std::uint64_t r = static_cast<std::uint64_t>(__builtin_sqrtl(static_cast<long double>(x)));
  if (r > kMax) r = kMax;
  while (r > 0 && r * r > x) --r;
  // The kMax guard keeps (r + 1)^2 from wrapping for x near 2^64 (the
  // correction loop used to spin or stop one short once r + 1 hit 2^32).
  while (r < kMax && (r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// Integer cube root: the largest r with r*r*r <= x. The grid dimension of
/// the algebraic matrix-multiplication protocol (core/algebraic_mm) is
/// icbrt(n), so exactness matters at perfect cubes.
inline std::uint64_t icbrt(std::uint64_t x) {
  if (x == 0) return 0;
  constexpr std::uint64_t kMax = 2642245ULL;  // icbrt(2^64 - 1)
  std::uint64_t r = static_cast<std::uint64_t>(__builtin_cbrtl(static_cast<long double>(x)));
  if (r > kMax) r = kMax;
  while (r > 0 && r * r * r > x) --r;
  while (r < kMax && (r + 1) * (r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// Deterministic primality test for 64-bit inputs (trial division is enough
/// for the small q used by projective-plane constructions).
inline bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

/// Largest prime <= n, or 0 if none.
inline std::uint64_t prev_prime(std::uint64_t n) {
  for (std::uint64_t q = n; q >= 2; --q) {
    if (is_prime(q)) return q;
  }
  return 0;
}

}  // namespace cclique
