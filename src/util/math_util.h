// Small integer-math helpers shared across modules.
#pragma once

#include <cstdint>

namespace cclique {

/// ceil(a / b) for non-negative a and positive b.
inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Number of bits needed to represent values in [0, n); at least 1.
/// This is the standard message-field width for node ids in [0, n).
inline int bits_for(std::uint64_t n) {
  int w = 1;
  while ((1ULL << w) < n) ++w;
  return w;
}

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::uint64_t x) {
  int l = 0;
  while (x >>= 1) ++l;
  return l;
}

/// Integer square root: the largest r with r*r <= x.
inline std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  std::uint64_t r = static_cast<std::uint64_t>(__builtin_sqrtl(static_cast<long double>(x)));
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// Deterministic primality test for 64-bit inputs (trial division is enough
/// for the small q used by projective-plane constructions).
inline bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

/// Largest prime <= n, or 0 if none.
inline std::uint64_t prev_prime(std::uint64_t n) {
  for (std::uint64_t q = n; q >= 2; --q) {
    if (is_prime(q)) return q;
  }
  return 0;
}

}  // namespace cclique
