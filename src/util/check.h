// Error-handling primitives used across the library.
//
// The simulator is a correctness-first instrument: a protocol that oversteps
// its bandwidth budget, or an algorithm handed an argument outside its
// contract, must fail loudly rather than silently produce a wrong round
// count. All checks are active in every build type.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cclique {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a simulated protocol violates a model constraint
/// (e.g. sends more than `b` bits over an edge in one round).
class ModelViolation : public std::runtime_error {
 public:
  explicit ModelViolation(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

inline std::string format_failure(const char* kind, const char* expr,
                                  const char* file, int line,
                                  const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}

}  // namespace detail

}  // namespace cclique

/// Precondition check: caller-facing contract. Always enabled.
#define CC_REQUIRE(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::cclique::PreconditionError(::cclique::detail::format_failure( \
          "precondition", #cond, __FILE__, __LINE__, (msg)));                \
    }                                                                        \
  } while (0)

/// Internal invariant check: a failure indicates a library bug.
#define CC_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::cclique::InvariantError(::cclique::detail::format_failure(    \
          "invariant", #cond, __FILE__, __LINE__, (msg)));                   \
    }                                                                        \
  } while (0)

/// Model-constraint check: a failure means a simulated protocol broke the
/// communication model's rules (bandwidth, addressing, scheduling).
#define CC_MODEL(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::cclique::ModelViolation(::cclique::detail::format_failure(    \
          "model constraint", #cond, __FILE__, __LINE__, (msg)));            \
    }                                                                        \
  } while (0)
