// Lemma 21 / Theorem 22: K_{l,m} detection needs Ω(sqrt(n)/b) rounds.
//
// Carrier F: a *bipartite* C4-free graph on N vertices with Θ(N^{3/2})
// edges (Observation 20 + the PG(2,q) incidence graph). Template: copies
// F_A on {u_i}, F_B on {v_i}, the fixed matching {u_i, v_i}, and fixed hub
// sets W_L (l-2 nodes, adjacent to phi_A(R) ∪ phi_B(L) ∪ W_R) and W_R
// (m-2 nodes, adjacent to phi_A(L) ∪ phi_B(R) ∪ W_L). An F-edge {i,j}
// present on both sides yields K_{l,m} with parts W_L ∪ {u_i, v_j} and
// W_R ∪ {u_j, v_i}; C4-freeness of F blocks every other K_{2,2} core.
#pragma once

#include "lowerbound/lb_graph.h"

namespace cclique {

/// Builds the Lemma 21 lower-bound graph for K_{l,m} (l, m >= 2) over the
/// bipartite C4-free carrier on N vertices. Result has 2N + l + m - 4
/// vertices.
LowerBoundGraph bipartite_lower_bound_graph(int l, int m, int N);

}  // namespace cclique
