// Lemma 18 / Theorem 19: C_l detection needs Ω(ex(n, C_l)/(nb)) rounds,
// in CLIQUE-BCAST and (δ-sparse, Definition 12) in CONGEST.
//
// The construction: two copies of a dense C_l-free carrier F on vertex sets
// V_A, V_B, with vertex i's copies joined by a fixed path P_i of
// floor(l/2)-1 edges (i < N/2) or ceil(l/2)-1 edges (i >= N/2). A C_l
// arises exactly from an F-edge {i,j} present in *both* players' inputs:
// phi_A(e) + P_j + phi_B(e) + P_i closes a cycle of length exactly l; the
// path-length split makes every parasitic combination miss length l
// (for odd l, F is bipartite between the two halves, which kills the
// within-copy odd cycles).
#pragma once

#include "lowerbound/lb_graph.h"
#include "util/rng.h"

namespace cclique {

/// Builds the Lemma 18 lower-bound graph for C_l over a carrier of N
/// vertices (N even, l >= 4). For odd l the carrier is K_{N/2,N/2}
/// (extremal); for even l a dense C_l-free graph (polarity graph for l=4,
/// high-girth construction otherwise — see graph/extremal.h).
LowerBoundGraph cycle_lower_bound_graph(int l, int N, Rng& rng);

}  // namespace cclique
