#include "lowerbound/disjointness_reduction.h"

namespace cclique {

ReductionOutcome solve_disjointness_via_detection(const LowerBoundGraph& lbg,
                                                  const DisjointnessInstance& inst,
                                                  int bandwidth,
                                                  const BroadcastDetector& detect) {
  ReductionOutcome out;
  out.instance_size = lbg.f.edges().size();
  const Graph g = instantiate_lower_bound_graph(lbg, inst.x, inst.y);

  CliqueBroadcast net(g.num_vertices(), bandwidth);
  net.set_cut(lbg.side);
  const bool contains = detect(net, g);

  out.answered_disjoint = !contains;
  out.correct = (out.answered_disjoint == inst.disjoint());
  // Each blackboard bit written by an Alice-node must reach Bob and vice
  // versa; one extra bit announces the verdict.
  out.bits_exchanged = net.stats().cut_bits + 1;
  out.detection_rounds = net.stats().rounds;
  return out;
}

double implied_round_lower_bound(const LowerBoundGraph& lbg, double cc_bits,
                                 int bandwidth) {
  const double n = static_cast<double>(lbg.g_prime.num_vertices());
  return cc_bits / (n * static_cast<double>(bandwidth));
}

}  // namespace cclique
