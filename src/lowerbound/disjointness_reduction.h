// Lemma 13, executable: solving 2-party set disjointness by simulating an
// H-subgraph-detection protocol on a lower-bound graph.
//
// Alice and Bob hold X, Y ⊆ E(F). They build G = G'(X, Y) (each controlling
// only the carrier edges on their side — note the fixed part of G' is
// common knowledge) and co-simulate a broadcast detection protocol, each
// driving the nodes on their side of the partition. The only information
// crossing between them is the blackboard traffic, which the engine meters
// as cut_bits; answering "disjoint" iff the protocol reports no copy of H
// is correct by Observation 11.
//
// This turns any measured upper bound U(n, b) on detection rounds into a
// *measured* disjointness protocol of cost Θ(U * n * b), and conversely
// instantiates the paper's bound: rounds >= CC(DISJ_{|E_F|}) / Θ(nb).
#pragma once

#include <functional>

#include "comm/clique_broadcast.h"
#include "comm/two_party.h"
#include "lowerbound/lb_graph.h"

namespace cclique {

/// A broadcast-clique detection protocol: runs on an engine + input graph,
/// returns whether a copy of lbg.h was found. (e.g. wraps
/// turan_subgraph_detect or full_broadcast_detect.)
using BroadcastDetector = std::function<bool(CliqueBroadcast&, const Graph&)>;

/// Outcome of one reduction execution.
struct ReductionOutcome {
  bool answered_disjoint = false;
  bool correct = false;            ///< verdict vs. ground truth
  std::uint64_t bits_exchanged = 0;  ///< 2-party cost: blackboard bits + 1
  int detection_rounds = 0;          ///< rounds the simulated protocol took
  std::size_t instance_size = 0;     ///< |E(F)|, the disjointness universe
};

/// Executes Lemma 13's reduction for one instance.
ReductionOutcome solve_disjointness_via_detection(const LowerBoundGraph& lbg,
                                                  const DisjointnessInstance& inst,
                                                  int bandwidth,
                                                  const BroadcastDetector& detect);

/// The implied lower bound on detection rounds for instances carried by
/// `lbg`, given a communication lower bound `cc_bits` for DISJ_{|E_F|}:
/// rounds >= cc_bits / (n * b). (For randomized protocols cc_bits = Ω(|E_F|).)
double implied_round_lower_bound(const LowerBoundGraph& lbg, double cc_bits,
                                 int bandwidth);

}  // namespace cclique
