#include "lowerbound/cycle_lb.h"

#include "graph/extremal.h"
#include "graph/generators.h"

namespace cclique {

LowerBoundGraph cycle_lower_bound_graph(int l, int N, Rng& rng) {
  CC_REQUIRE(l >= 4, "cycle lower bound needs l >= 4");
  CC_REQUIRE(N >= 2 && N % 2 == 0, "carrier size must be even and >= 2");
  LowerBoundGraph lbg;
  lbg.h = cycle_graph(l);
  lbg.f = dense_cl_free_graph(N, l, rng);
  // For odd l the dense C_l-free carrier is complete bipartite with left
  // part [0, N/2) — which matches the path-length split below, as required
  // for the cycle-length arithmetic.

  const int short_len = l / 2 - 1;        // path edges for i < N/2
  const int long_len = (l + 1) / 2 - 1;   // path edges for i >= N/2
  // Internal path nodes per i: (len - 1).
  int internal_total = 0;
  for (int i = 0; i < N; ++i) {
    internal_total += ((i < N / 2) ? short_len : long_len) - 1;
  }
  const int va = 0, vb = N;
  const int n = 2 * N + internal_total;
  Graph gp(n);

  // Carrier copies (template edges; stripped/re-added by instantiation).
  for (const Edge& e : lbg.f.edges()) {
    gp.add_edge(va + e.u, va + e.v);
    gp.add_edge(vb + e.u, vb + e.v);
  }

  // Fixed paths P_i, with side assignment splitting each path so exactly
  // one edge crosses the Alice/Bob cut (Definition 12 sparsity).
  lbg.side.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < N; ++i) lbg.side[static_cast<std::size_t>(vb + i)] = 1;
  int next_internal = 2 * N;
  for (int i = 0; i < N; ++i) {
    const int len = (i < N / 2) ? short_len : long_len;
    int prev = va + i;
    for (int step = 1; step < len; ++step) {
      const int node = next_internal++;
      gp.add_edge(prev, node);
      lbg.side[static_cast<std::size_t>(node)] = (step <= len / 2) ? 0 : 1;
      prev = node;
    }
    gp.add_edge(prev, vb + i);
  }
  CC_CHECK(next_internal == n, "internal node accounting mismatch");
  lbg.g_prime = std::move(gp);

  lbg.phi_a.resize(static_cast<std::size_t>(N));
  lbg.phi_b.resize(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    lbg.phi_a[static_cast<std::size_t>(i)] = va + i;
    lbg.phi_b[static_cast<std::size_t>(i)] = vb + i;
  }
  return lbg;
}

}  // namespace cclique
