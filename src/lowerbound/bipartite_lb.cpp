#include "lowerbound/bipartite_lb.h"

#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/turan.h"

namespace cclique {

LowerBoundGraph bipartite_lower_bound_graph(int l, int m, int N) {
  CC_REQUIRE(l >= 2 && m >= 2, "K_{l,m} lower bound needs l, m >= 2");
  // Machine-checked gap in Lemma 21 for l != m (w.l.o.g. m > l): the side
  // sets of a K_{l,m}-subgraph may mix hub nodes, and
  //   P = {u_i} ∪ (l-1 nodes of W_R),
  //   Q = (m-l+1 input A-neighbors of i) ∪ {v_i} ∪ W_L
  // is a complete bipartite K_{l,m} built from fixed edges plus *one*
  // player's input whenever vertex i has input degree >= m-l+1 — breaking
  // Observation 11 (the paper's "no mixing between W_L, W_R" step needs
  // induced containment, but detection is non-induced). The symmetric
  // construction l = m has no such parasite (verified exhaustively in
  // lowerbound_test), so we expose that regime, which carries the full
  // Theorem 22 bound (K_{2,2} = C4 in particular).
  CC_REQUIRE(l == m, "supported shapes: l == m (see header note on the "
                     "Lemma 21 asymmetric-case gap)");
  CC_REQUIRE(N >= 2, "need N >= 2");
  LowerBoundGraph lbg;
  lbg.h = complete_bipartite(l, m);
  lbg.f = bipartite_c4_free_graph(N);

  // 2-color F to find L and R (isolated padding vertices go to L; they
  // carry no edges so the choice is immaterial).
  std::vector<int> color(static_cast<std::size_t>(N), -1);
  for (int s = 0; s < N; ++s) {
    if (color[static_cast<std::size_t>(s)] != -1) continue;
    color[static_cast<std::size_t>(s)] = 0;
    std::vector<int> queue{s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int v = queue[head];
      for (int u : lbg.f.neighbors(v)) {
        if (color[static_cast<std::size_t>(u)] == -1) {
          color[static_cast<std::size_t>(u)] = 1 - color[static_cast<std::size_t>(v)];
          queue.push_back(u);
        }
        CC_CHECK(color[static_cast<std::size_t>(u)] != color[static_cast<std::size_t>(v)],
                 "carrier must be bipartite");
      }
    }
  }

  const int ua = 0, vb = N;
  const int wl0 = 2 * N;             // W_L: l-2 nodes
  const int wr0 = 2 * N + (l - 2);   // W_R: m-2 nodes
  const int n = 2 * N + l + m - 4;
  Graph gp(n);

  // Carrier copies (template).
  for (const Edge& e : lbg.f.edges()) {
    gp.add_edge(ua + e.u, ua + e.v);
    gp.add_edge(vb + e.u, vb + e.v);
  }
  // Fixed matching {u_i, v_i}.
  for (int i = 0; i < N; ++i) gp.add_edge(ua + i, vb + i);
  // Hub wiring: W_L ~ phi_A(R) ∪ phi_B(L) ∪ W_R; W_R ~ phi_A(L) ∪ phi_B(R) ∪ W_L.
  for (int w = wl0; w < wr0; ++w) {
    for (int i = 0; i < N; ++i) {
      if (color[static_cast<std::size_t>(i)] == 1) gp.add_edge(w, ua + i);  // phi_A(R)
      if (color[static_cast<std::size_t>(i)] == 0) gp.add_edge(w, vb + i);  // phi_B(L)
    }
    for (int w2 = wr0; w2 < n; ++w2) gp.add_edge(w, w2);
  }
  for (int w = wr0; w < n; ++w) {
    for (int i = 0; i < N; ++i) {
      if (color[static_cast<std::size_t>(i)] == 0) gp.add_edge(w, ua + i);  // phi_A(L)
      if (color[static_cast<std::size_t>(i)] == 1) gp.add_edge(w, vb + i);  // phi_B(R)
    }
  }
  lbg.g_prime = std::move(gp);

  lbg.phi_a.resize(static_cast<std::size_t>(N));
  lbg.phi_b.resize(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    lbg.phi_a[static_cast<std::size_t>(i)] = ua + i;
    lbg.phi_b[static_cast<std::size_t>(i)] = vb + i;
  }
  lbg.side.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < N; ++i) lbg.side[static_cast<std::size_t>(vb + i)] = 1;
  // Hubs split between the players.
  for (int w = wl0; w < n; ++w) lbg.side[static_cast<std::size_t>(w)] = (w - wl0) % 2;
  return lbg;
}

}  // namespace cclique
