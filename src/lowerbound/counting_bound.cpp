#include "lowerbound/counting_bound.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cclique {

CountingBound counting_lower_bound(int n, int bandwidth) {
  CC_REQUIRE(n >= 2 && bandwidth >= 1, "need n >= 2, b >= 1");
  CountingBound out;
  out.n = n;
  out.bandwidth = bandwidth;
  const double dn = static_cast<double>(n);
  const double db = static_cast<double>(bandwidth);

  // log2 #protocols(R) ~ n * R * (n-1) * b * 2^{n + (n-1) b R}  (message
  // tables) — the output rule is dominated by the same term. We need the
  // largest R with  log2(log2 #protocols) < n^2, i.e.
  //   log2(n R (n-1) b) + n + (n-1) b R < n^2.
  // Solve by scanning R upward (the left side is monotone in R).
  double r = 0;
  for (double cand = 1;; ++cand) {
    const double lhs = std::log2(dn * cand * (dn - 1.0) * db) + dn + (dn - 1.0) * db * cand;
    if (lhs >= dn * dn) break;
    r = cand;
  }
  out.lower_bound_rounds = r;
  out.upper_bound_rounds = std::ceil(dn / db);
  // Closed form (n - O(log n))/b: with the constants above the O(log n)
  // term is (n + log2(poly(n)))/(n-1) ~ 1 + 2 log2(n)/n rounds' worth; the
  // paper-level shape is (n^2 - n - 2 log2 n) / ((n-1) b) ~ (n - O(log n))/b.
  out.closed_form = (dn * dn - dn - 2.0 * std::log2(dn)) / ((dn - 1.0) * db);
  return out;
}

}  // namespace cclique
