#include "lowerbound/lb_graph.h"

#include <algorithm>
#include <set>

#include "comm/two_party.h"
#include "graph/subgraph.h"

namespace cclique {

Graph instantiate_lower_bound_graph(const LowerBoundGraph& lbg,
                                    const std::vector<bool>& x,
                                    const std::vector<bool>& y) {
  const auto f_edges = lbg.f.edges();
  CC_REQUIRE(x.size() == f_edges.size() && y.size() == f_edges.size(),
             "instance vectors must be indexed by E(F)");
  // Carrier-copy edges of G' (to be stripped and selectively re-added).
  std::set<Edge> carrier;
  for (const Edge& e : f_edges) {
    carrier.insert(Edge(lbg.phi_a[static_cast<std::size_t>(e.u)],
                        lbg.phi_a[static_cast<std::size_t>(e.v)]));
    carrier.insert(Edge(lbg.phi_b[static_cast<std::size_t>(e.u)],
                        lbg.phi_b[static_cast<std::size_t>(e.v)]));
  }
  Graph g(lbg.g_prime.num_vertices());
  for (const Edge& e : lbg.g_prime.edges()) {
    if (carrier.count(e) == 0) g.add_edge(e.u, e.v);
  }
  for (std::size_t i = 0; i < f_edges.size(); ++i) {
    const Edge& e = f_edges[i];
    if (x[i]) {
      g.add_edge(lbg.phi_a[static_cast<std::size_t>(e.u)],
                 lbg.phi_a[static_cast<std::size_t>(e.v)]);
    }
    if (y[i]) {
      g.add_edge(lbg.phi_b[static_cast<std::size_t>(e.u)],
                 lbg.phi_b[static_cast<std::size_t>(e.v)]);
    }
  }
  return g;
}

bool verify_structure(const LowerBoundGraph& lbg) {
  const int nf = lbg.f.num_vertices();
  const int np = lbg.g_prime.num_vertices();
  if (static_cast<int>(lbg.phi_a.size()) != nf ||
      static_cast<int>(lbg.phi_b.size()) != nf) {
    return false;
  }
  if (static_cast<int>(lbg.side.size()) != np) return false;
  std::set<int> image;
  for (int v : lbg.phi_a) {
    if (v < 0 || v >= np || !image.insert(v).second) return false;
  }
  for (int v : lbg.phi_b) {
    if (v < 0 || v >= np || !image.insert(v).second) return false;
  }
  // Homomorphism: every F-edge maps to a G'-edge under both maps, and
  // sides are respected (V_A on side 0, V_B on side 1).
  for (const Edge& e : lbg.f.edges()) {
    if (!lbg.g_prime.has_edge(lbg.phi_a[static_cast<std::size_t>(e.u)],
                              lbg.phi_a[static_cast<std::size_t>(e.v)])) {
      return false;
    }
    if (!lbg.g_prime.has_edge(lbg.phi_b[static_cast<std::size_t>(e.u)],
                              lbg.phi_b[static_cast<std::size_t>(e.v)])) {
      return false;
    }
  }
  for (int v : lbg.phi_a) {
    if (lbg.side[static_cast<std::size_t>(v)] != 0) return false;
  }
  for (int v : lbg.phi_b) {
    if (lbg.side[static_cast<std::size_t>(v)] != 1) return false;
  }
  return true;
}

bool verify_observation_11(const LowerBoundGraph& lbg, int trials, Rng& rng) {
  const std::size_t m = lbg.f.edges().size();
  // (1) Per-edge completeness.
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<bool> x(m, false), y(m, false);
    x[i] = y[i] = true;
    if (!contains_subgraph(instantiate_lower_bound_graph(lbg, x, y), lbg.h)) {
      return false;
    }
  }
  // (2) Soundness on disjoint instances: extremes plus random splits.
  {
    std::vector<bool> all(m, true), none(m, false);
    if (contains_subgraph(instantiate_lower_bound_graph(lbg, all, none), lbg.h)) {
      return false;
    }
    if (contains_subgraph(instantiate_lower_bound_graph(lbg, none, all), lbg.h)) {
      return false;
    }
  }
  for (int t = 0; t < trials; ++t) {
    DisjointnessInstance inst = random_disjoint_instance(m, 0.7, rng);
    if (contains_subgraph(instantiate_lower_bound_graph(lbg, inst.x, inst.y), lbg.h)) {
      return false;
    }
  }
  return true;
}

bool verify_condition_ii(const LowerBoundGraph& lbg) {
  // Index carrier pairs for lookup.
  const auto f_edges = lbg.f.edges();
  std::set<std::pair<Edge, Edge>> pairs;
  for (const Edge& e : f_edges) {
    pairs.insert({Edge(lbg.phi_a[static_cast<std::size_t>(e.u)],
                       lbg.phi_a[static_cast<std::size_t>(e.v)]),
                  Edge(lbg.phi_b[static_cast<std::size_t>(e.u)],
                       lbg.phi_b[static_cast<std::size_t>(e.v)])});
  }
  std::set<int> ab_vertices;
  for (int v : lbg.phi_a) ab_vertices.insert(v);
  for (int v : lbg.phi_b) ab_vertices.insert(v);

  bool ok = true;
  for_each_embedding(lbg.g_prime, lbg.h, [&](const std::vector<int>& map) {
    // Image edges of the embedding.
    std::set<Edge> image_edges;
    for (const Edge& he : lbg.h.edges()) {
      image_edges.insert(Edge(map[static_cast<std::size_t>(he.u)],
                              map[static_cast<std::size_t>(he.v)]));
    }
    // Vertices of H' inside V_A ∪ V_B.
    std::vector<int> touched;
    for (int v : map) {
      if (ab_vertices.count(v) != 0) touched.push_back(v);
    }
    std::sort(touched.begin(), touched.end());
    // Find a carrier pair realized by this embedding.
    for (const auto& [ea, eb] : pairs) {
      if (image_edges.count(ea) == 0 || image_edges.count(eb) == 0) continue;
      std::vector<int> endpoints{ea.u, ea.v, eb.u, eb.v};
      std::sort(endpoints.begin(), endpoints.end());
      if (endpoints == touched) return true;  // this embedding is fine
    }
    ok = false;
    return false;  // counterexample found; stop
  });
  return ok;
}

std::size_t partition_cut_size(const LowerBoundGraph& lbg) {
  std::size_t cut = 0;
  for (const Edge& e : lbg.g_prime.edges()) {
    if (lbg.side[static_cast<std::size_t>(e.u)] != lbg.side[static_cast<std::size_t>(e.v)]) {
      ++cut;
    }
  }
  return cut;
}

}  // namespace cclique
