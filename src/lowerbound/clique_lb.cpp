#include "lowerbound/clique_lb.h"

#include "graph/generators.h"

namespace cclique {

LowerBoundGraph clique_lower_bound_graph(int l, int N) {
  CC_REQUIRE(l >= 4, "clique lower bound needs l >= 4");
  CC_REQUIRE(N >= 2, "need N >= 2");
  LowerBoundGraph lbg;
  lbg.h = complete_graph(l);
  lbg.f = complete_bipartite(N, N);  // left [0,N), right [N,2N)

  const int s1 = 0, s2 = N, s3 = 2 * N, s4 = 3 * N;
  const int u0 = 4 * N;
  const int n = 4 * N + (l - 4);
  Graph gp(n);
  // Perfect matchings S1-S2 and S3-S4 (fixed edges).
  for (int j = 0; j < N; ++j) {
    gp.add_edge(s1 + j, s2 + j);
    gp.add_edge(s3 + j, s4 + j);
  }
  // Complete bipartite S1 x S4 and S2 x S3 (fixed).
  for (int j = 0; j < N; ++j) {
    for (int jp = 0; jp < N; ++jp) {
      gp.add_edge(s1 + j, s4 + jp);
      gp.add_edge(s2 + j, s3 + jp);
    }
  }
  // Carrier copies: S1 x S3 (Alice) and S2 x S4 (Bob).
  for (int j = 0; j < N; ++j) {
    for (int jp = 0; jp < N; ++jp) {
      gp.add_edge(s1 + j, s3 + jp);
      gp.add_edge(s2 + j, s4 + jp);
    }
  }
  // Universal vertices complete the K_4 gadgets to K_l.
  for (int u = u0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (v != u) gp.add_edge(u, v);
    }
  }
  lbg.g_prime = std::move(gp);

  lbg.phi_a.resize(static_cast<std::size_t>(2 * N));
  lbg.phi_b.resize(static_cast<std::size_t>(2 * N));
  for (int j = 0; j < N; ++j) {
    lbg.phi_a[static_cast<std::size_t>(j)] = s1 + j;      // F left  -> S1
    lbg.phi_a[static_cast<std::size_t>(N + j)] = s3 + j;  // F right -> S3
    lbg.phi_b[static_cast<std::size_t>(j)] = s2 + j;      // F left  -> S2
    lbg.phi_b[static_cast<std::size_t>(N + j)] = s4 + j;  // F right -> S4
  }

  // Alice simulates S1, S3 and the even universal vertices; Bob the rest.
  lbg.side.assign(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < N; ++j) {
    lbg.side[static_cast<std::size_t>(s2 + j)] = 1;
    lbg.side[static_cast<std::size_t>(s4 + j)] = 1;
  }
  for (int u = u0; u < n; ++u) lbg.side[static_cast<std::size_t>(u)] = (u - u0) % 2;
  return lbg;
}

}  // namespace cclique
