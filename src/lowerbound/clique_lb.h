// Lemma 14 / Theorem 15: K_l detection needs Ω(n/b) broadcast rounds.
//
// The construction: four independent sets S_1..S_4 of size N plus l-4
// universal vertices. S_1-S_2 and S_3-S_4 carry perfect matchings;
// S_1 x S_4 and S_2 x S_3 are complete (fixed); the carrier copies are
// F_A = S_1 x S_3 and F_B = S_2 x S_4, both complete bipartite K_{N,N}.
// Any K_4 must take one matched pair from S_1, S_2 and one from S_3, S_4,
// forcing a pair (j, j') present in both players' inputs — a disjointness
// instance of size |E_F| = N^2 = Θ(n^2), giving Ω(N^2/(nb)) = Ω(n/b)
// rounds by Lemma 13.
#pragma once

#include "lowerbound/lb_graph.h"

namespace cclique {

/// Builds the (K_l, K_{N,N})-lower-bound graph of Lemma 14.
/// Requires l >= 4, N >= 2. The result has 4N + l - 4 vertices.
LowerBoundGraph clique_lower_bound_graph(int l, int N);

}  // namespace cclique
