// Theorem 24, executable: solving 3-party NOF set disjointness by
// simulating triangle detection in CLIQUE-BCAST on a Ruzsa–Szemerédi graph.
//
// The RS graph G_n has m = n^2/e^{O(sqrt(log n))} edge-disjoint triangles
// t_1..t_m, each edge belonging to exactly one (Claim 23). Given NOF inputs
// X_A, X_B, X_C ⊆ [m], the players materialize the subgraph G_X keeping
//   A x B edges of t_i  iff i ∈ X_C,
//   B x C edges of t_i  iff i ∈ X_A,
//   C x A edges of t_i  iff i ∈ X_B
// (each player can see the inputs written on the *other* players' foreheads,
// which is exactly what it needs to run its own nodes). G_X has a triangle
// iff X_A ∩ X_B ∩ X_C != ∅, so simulating any R-round CLIQUE-BCAST(n,b)
// triangle-detection protocol answers disjointness with ~ n*b*R + 1 bits of
// blackboard traffic — Theorem 24's R >= R_3-NOF(DISJ_m)/O(nb).
#pragma once

#include <functional>

#include "comm/clique_broadcast.h"
#include "comm/nof.h"
#include "graph/ruzsa_szemeredi.h"

namespace cclique {

/// A triangle detector on the broadcast clique.
using BroadcastTriangleDetector = std::function<bool(CliqueBroadcast&, const Graph&)>;

/// Outcome of one Theorem 24 reduction execution.
struct NofReductionOutcome {
  bool answered_intersecting = false;
  bool correct = false;
  std::uint64_t blackboard_bits = 0;  ///< total NOF communication (+1 verdict)
  int detection_rounds = 0;
  std::size_t instance_size = 0;      ///< m = number of RS triangles
};

/// Builds G_X from the RS graph and the NOF instance (instance size must be
/// rs.triangles.size()).
Graph instantiate_nof_graph(const RuzsaSzemerediGraph& rs,
                            const NofDisjointnessInstance& inst);

/// Executes the reduction for one instance.
NofReductionOutcome solve_nof_disjointness_via_triangles(
    const RuzsaSzemerediGraph& rs, const NofDisjointnessInstance& inst,
    int bandwidth, const BroadcastTriangleDetector& detect);

/// Corollary 25's deterministic bound, instantiated: with the Rao–Yehudayoff
/// Ω(m) bound on deterministic 3-NOF disjointness, triangle detection needs
/// at least c * m / (n * b) rounds on the RS family. Returns m/(n*b).
double implied_triangle_round_bound(const RuzsaSzemerediGraph& rs, int bandwidth);

}  // namespace cclique
