#include "lowerbound/nof_reduction.h"

namespace cclique {

Graph instantiate_nof_graph(const RuzsaSzemerediGraph& rs,
                            const NofDisjointnessInstance& inst) {
  CC_REQUIRE(inst.universe_size() == rs.triangles.size(),
             "instance universe must match the RS triangle count");
  const int n = rs.graph.num_vertices();
  Graph g(n);
  // Partition offsets: X = [0, m), Y = [m, 3m), Z = [3m, 6m).
  const int yo = rs.m;
  const int zo = 3 * rs.m;
  for (std::size_t i = 0; i < rs.triangles.size(); ++i) {
    const Triangle& t = rs.triangles[i];
    // t.a in X (paper's A), t.b in Y (B), t.c in Z (C).
    if (inst.xc[i]) g.add_edge(t.a, t.b);  // A x B edge controlled by X_C
    if (inst.xa[i]) g.add_edge(t.b, t.c);  // B x C edge controlled by X_A
    if (inst.xb[i]) g.add_edge(t.c, t.a);  // C x A edge controlled by X_B
  }
  (void)yo;
  (void)zo;
  return g;
}

NofReductionOutcome solve_nof_disjointness_via_triangles(
    const RuzsaSzemerediGraph& rs, const NofDisjointnessInstance& inst,
    int bandwidth, const BroadcastTriangleDetector& detect) {
  NofReductionOutcome out;
  out.instance_size = rs.triangles.size();
  const Graph gx = instantiate_nof_graph(rs, inst);

  CliqueBroadcast net(gx.num_vertices(), bandwidth);
  const bool detected = detect(net, gx);

  out.answered_intersecting = detected;
  out.correct = (detected == inst.intersecting());
  out.blackboard_bits = net.stats().total_bits + 1;
  out.detection_rounds = net.stats().rounds;
  return out;
}

double implied_triangle_round_bound(const RuzsaSzemerediGraph& rs, int bandwidth) {
  const double n = static_cast<double>(rs.graph.num_vertices());
  const double m = static_cast<double>(rs.triangles.size());
  return m / (n * static_cast<double>(bandwidth));
}

}  // namespace cclique
