// Definition 10: (H, F)-lower-bound graphs, and their machine verification.
//
// A lower-bound graph G' packages a reduction from 2-party set disjointness
// to H-subgraph detection: it contains two disjoint copies F_A, F_B of a
// carrier graph F (Alice's and Bob's input-controlled edge sets) such that
// for the graph G built by keeping all non-carrier edges plus phi_A(X) and
// phi_B(Y),
//     G contains H    <=>    X ∩ Y != ∅        (Observation 11)
// with X, Y ⊆ E(F). The denser F is, the bigger the disjointness instance
// and the stronger the Lemma 13 round lower bound |E_F| / (nb).
//
// The verifier below checks the two directions of Observation 11
// exhaustively (condition II via full embedding enumeration) on small
// instances and by randomized trials on larger ones — every construction in
// this module ships with these checks in the test suite.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// A concrete (H, F)-lower-bound graph (Definition 10) plus the bipartition
/// used for CONGEST cut accounting (Definition 12).
struct LowerBoundGraph {
  Graph h;        ///< the pattern to detect
  Graph f;        ///< the carrier graph (disjointness universe = E(F))
  Graph g_prime;  ///< the template graph G'
  std::vector<int> phi_a;  ///< F-vertex -> G'-vertex (copy F_A)
  std::vector<int> phi_b;  ///< F-vertex -> G'-vertex (copy F_B)
  /// 0/1 per G'-vertex: Alice's / Bob's simulated nodes (V_A ⊆ side 0,
  /// V_B ⊆ side 1).
  std::vector<int> side;
};

/// Builds the input graph G ⊆ G' for a disjointness instance: all edges of
/// G' except the two carrier copies, plus phi_A(e) for e ∈ X and phi_B(e)
/// for e ∈ Y. The characteristic vectors are indexed by f.edges() order.
Graph instantiate_lower_bound_graph(const LowerBoundGraph& lbg,
                                    const std::vector<bool>& x,
                                    const std::vector<bool>& y);

/// Exhaustive check of Observation 11 on the full instance lattice:
///   (1) per-edge completeness: for every e ∈ E_F, the instance
///       X = Y = {e} contains H;
///   (2) soundness: for `trials` random disjoint (X, Y) pairs (plus the
///       extremes (∅, E_F), (E_F, ∅)), the instance contains no H.
/// Returns true iff all checks pass. Exact for direction (1); direction (2)
/// is property-based (it enumerates all disjoint pairs when |E_F| is tiny).
bool verify_observation_11(const LowerBoundGraph& lbg, int trials, Rng& rng);

/// Full condition II check: enumerates every embedding of H into G' (all
/// carrier edges present) and verifies each uses exactly one pair
/// (phi_A(e), phi_B(e)) and touches V_A ∪ V_B only at those 4 endpoints.
/// Exponential in |V(H)| — intended for small instances in tests.
bool verify_condition_ii(const LowerBoundGraph& lbg);

/// Sanity checks on the maps: phi_A / phi_B are injective homomorphisms of
/// F onto disjoint vertex sets, sides are consistent.
bool verify_structure(const LowerBoundGraph& lbg);

/// Cut size of the (side 0, side 1) partition in G' — the δ·|V'| of
/// Definition 12 that the CONGEST lower bound divides by.
std::size_t partition_cut_size(const LowerBoundGraph& lbg);

}  // namespace cclique
