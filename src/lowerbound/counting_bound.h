// The non-explicit counting lower bound (paper's full version):
// some function f : {0,1}^{n^2} -> {0,1} requires (n - O(log n))/b rounds
// in CLIQUE-UCAST(n, b).
//
// The argument, made numeric: a deterministic R-round protocol is fully
// described by each player's message behavior — a map from (its n-bit
// input, its received history of at most (n-1) b R bits) to its (n-1) b
// outgoing bits per round — plus an output rule. Taking log2:
//   log2 #protocols(R) <= n * R * (n-1) b * 2^{n + (n-1) b R} + 2^{(n-1) b R + n}
// while log2 #functions = 2^{n^2}. The largest R for which protocols cannot
// exhaust all functions is a valid lower bound for some function; solving
// the inequality yields R >= (n - O(log n))/b, within O(log n / b) of the
// trivial n/b upper bound ("everybody ships its input to player 0" —
// player 0's single incoming link from each player carries n bits at b per
// round).
#pragma once

#include <cstdint>

namespace cclique {

/// Numeric form of the counting bound.
struct CountingBound {
  int n = 0;
  int bandwidth = 0;
  /// Largest R such that log2 #protocols(R) < 2^{n^2} (i.e. some function
  /// needs more than R rounds).
  double lower_bound_rounds = 0.0;
  /// The trivial upper bound ceil(n/b) for any function (learn everything).
  double upper_bound_rounds = 0.0;
  /// The paper's closed form (n - c log n)/b evaluated with the c implied
  /// by the protocol count (for the bench's side-by-side display).
  double closed_form = 0.0;
};

/// Evaluates the counting bound for CLIQUE-UCAST(n, b).
CountingBound counting_lower_bound(int n, int bandwidth);

}  // namespace cclique
