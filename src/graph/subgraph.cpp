#include "graph/subgraph.h"

#include <algorithm>
#include <numeric>

#include "graph/generators.h"
#include "graph/turan.h"

namespace cclique {

std::uint64_t count_triangles(const Graph& g) {
  std::uint64_t total = 0;
  for (const Edge& e : g.edges()) {
    const auto& a = g.adjacency_row(e.u);
    const auto& b = g.adjacency_row(e.v);
    // Count common neighbors w > v to count each triangle once.
    for (std::size_t w = 0; w < a.size(); ++w) {
      std::uint64_t inter = a[w] & b[w];
      if (inter == 0) continue;
      for (int bit = 0; bit < 64; ++bit) {
        if ((inter >> bit) & 1ULL) {
          int vtx = static_cast<int>(w * 64 + static_cast<std::size_t>(bit));
          if (vtx > e.v) ++total;
        }
      }
    }
  }
  return total;
}

std::uint64_t count_four_cycles(const Graph& g) {
  const int n = g.num_vertices();
  std::uint64_t twice = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const std::uint64_t c = static_cast<std::uint64_t>(g.common_neighbor_count(u, v));
      twice += c * (c - 1) / 2;  // choose the other diagonal pair
    }
  }
  CC_CHECK(twice % 2 == 0, "each C4 has exactly two diagonal pairs");
  return twice / 2;
}

std::vector<Triangle> list_triangles(const Graph& g) {
  std::vector<Triangle> out;
  for (const Edge& e : g.edges()) {
    const auto& a = g.adjacency_row(e.u);
    const auto& b = g.adjacency_row(e.v);
    for (std::size_t w = 0; w < a.size(); ++w) {
      std::uint64_t inter = a[w] & b[w];
      while (inter != 0) {
        int bit = __builtin_ctzll(inter);
        inter &= inter - 1;
        int vtx = static_cast<int>(w * 64 + static_cast<std::size_t>(bit));
        if (vtx > e.v) out.push_back(Triangle{e.u, e.v, vtx});
      }
    }
  }
  return out;
}

namespace {

// Recursive clique extension over a candidate set.
bool extend_clique(const Graph& g, std::vector<int>& clique,
                   const std::vector<int>& candidates, int k) {
  if (static_cast<int>(clique.size()) == k) return true;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    int v = candidates[i];
    std::vector<int> next;
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (g.has_edge(v, candidates[j])) next.push_back(candidates[j]);
    }
    if (static_cast<int>(clique.size()) + 1 +
            static_cast<int>(next.size()) < k) {
      continue;  // not enough candidates left
    }
    clique.push_back(v);
    if (extend_clique(g, clique, next, k)) return true;
    clique.pop_back();
  }
  return false;
}

// Order pattern vertices so each (after the first of its component) has a
// neighbor earlier in the order; this keeps the backtracking anchored.
std::vector<int> pattern_order(const Graph& h) {
  const int hn = h.num_vertices();
  std::vector<int> order;
  std::vector<bool> placed(static_cast<std::size_t>(hn), false);
  while (static_cast<int>(order.size()) < hn) {
    // Pick the unplaced vertex with most placed neighbors (ties: max degree).
    int best = -1, best_conn = -1, best_deg = -1;
    for (int v = 0; v < hn; ++v) {
      if (placed[static_cast<std::size_t>(v)]) continue;
      int conn = 0;
      for (int u : h.neighbors(v)) {
        if (placed[static_cast<std::size_t>(u)]) ++conn;
      }
      if (conn > best_conn || (conn == best_conn && h.degree(v) > best_deg)) {
        best = v;
        best_conn = conn;
        best_deg = h.degree(v);
      }
    }
    placed[static_cast<std::size_t>(best)] = true;
    order.push_back(best);
  }
  return order;
}

// Greedy (first-fit) upper bound on chi(g), O(n + m).
int greedy_coloring_bound(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  std::vector<char> taken;
  int num_colors = 0;
  for (int v = 0; v < n; ++v) {
    // A vertex either reuses one of the num_colors existing colors or
    // opens color num_colors, so index num_colors is always available.
    taken.assign(static_cast<std::size_t>(num_colors) + 1, 0);
    for (int u : g.neighbors(v)) {
      const int cu = color[static_cast<std::size_t>(u)];
      if (cu >= 0) taken[static_cast<std::size_t>(cu)] = 1;
    }
    int c = 0;
    while (taken[static_cast<std::size_t>(c)] != 0) ++c;
    color[static_cast<std::size_t>(v)] = c;
    if (c == num_colors) ++num_colors;
  }
  return num_colors;
}

// Backtracking embedding search; if count_all, counts every embedding,
// otherwise stops at the first and records it in `embedding`.
std::uint64_t embed(const Graph& g, const Graph& h,
                    const std::vector<int>& order, std::size_t depth,
                    std::vector<int>& assignment, std::vector<bool>& used,
                    bool count_all, std::vector<int>* embedding) {
  if (depth == order.size()) {
    if (!count_all && embedding != nullptr) *embedding = assignment;
    return 1;
  }
  const int hv = order[depth];
  std::uint64_t found = 0;
  for (int gv = 0; gv < g.num_vertices(); ++gv) {
    if (used[static_cast<std::size_t>(gv)]) continue;
    if (g.degree(gv) < h.degree(hv)) continue;
    bool ok = true;
    for (int hu : h.neighbors(hv)) {
      int mapped = assignment[static_cast<std::size_t>(hu)];
      if (mapped >= 0 && !g.has_edge(gv, mapped)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    assignment[static_cast<std::size_t>(hv)] = gv;
    used[static_cast<std::size_t>(gv)] = true;
    found += embed(g, h, order, depth + 1, assignment, used, count_all, embedding);
    used[static_cast<std::size_t>(gv)] = false;
    assignment[static_cast<std::size_t>(hv)] = -1;
    if (found > 0 && !count_all) return found;
  }
  return found;
}

}  // namespace

bool contains_clique(const Graph& g, int k) {
  CC_REQUIRE(k >= 1, "clique size must be positive");
  if (k == 1) return g.num_vertices() >= 1;
  if (k == 2) return g.num_edges() >= 1;
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  std::vector<int> clique;
  return extend_clique(g, clique, all, k);
}

bool contains_subgraph(const Graph& g, const Graph& h) {
  return find_subgraph(g, h).has_value();
}

std::optional<std::vector<int>> find_subgraph(const Graph& g, const Graph& h) {
  if (h.num_vertices() > g.num_vertices()) return std::nullopt;
  if (h.num_vertices() == 0) return std::vector<int>{};
  // Coloring precheck: a copy of h in g forces chi(h) <= chi(g), and the
  // greedy bound dominates chi(g). This answers "no" in O(n + m) for the
  // cases where the backtracking search degenerates — odd patterns on
  // bipartite hosts (C5 in K_{n,n}) or K_{r+1} on r-partite hosts — which
  // otherwise enumerate nearly every |V(h)|-tuple before failing.
  if (h.num_vertices() <= 16 && h.num_edges() > 0) {
    // chi(h) <= |V(h)|, so a greedy bound of |V(h)| or more can never
    // trigger the reject — skip the exponential exact chi(h) in that case.
    const int greedy = greedy_coloring_bound(g);
    if (greedy < h.num_vertices() && greedy < chromatic_number(h)) {
      return std::nullopt;
    }
  }
  auto order = pattern_order(h);
  std::vector<int> assignment(static_cast<std::size_t>(h.num_vertices()), -1);
  std::vector<bool> used(static_cast<std::size_t>(g.num_vertices()), false);
  std::vector<int> embedding;
  if (embed(g, h, order, 0, assignment, used, /*count_all=*/false, &embedding) > 0) {
    return embedding;
  }
  return std::nullopt;
}

std::uint64_t count_subgraph_embeddings(const Graph& g, const Graph& h) {
  if (h.num_vertices() > g.num_vertices()) return 0;
  if (h.num_vertices() == 0) return 1;
  auto order = pattern_order(h);
  std::vector<int> assignment(static_cast<std::size_t>(h.num_vertices()), -1);
  std::vector<bool> used(static_cast<std::size_t>(g.num_vertices()), false);
  return embed(g, h, order, 0, assignment, used, /*count_all=*/true, nullptr);
}

namespace {

// Visitor-driven variant of embed(); returns false to stop enumeration.
bool embed_visit(const Graph& g, const Graph& h, const std::vector<int>& order,
                 std::size_t depth, std::vector<int>& assignment,
                 std::vector<bool>& used,
                 const std::function<bool(const std::vector<int>&)>& visitor) {
  if (depth == order.size()) return visitor(assignment);
  const int hv = order[depth];
  for (int gv = 0; gv < g.num_vertices(); ++gv) {
    if (used[static_cast<std::size_t>(gv)]) continue;
    if (g.degree(gv) < h.degree(hv)) continue;
    bool ok = true;
    for (int hu : h.neighbors(hv)) {
      int mapped = assignment[static_cast<std::size_t>(hu)];
      if (mapped >= 0 && !g.has_edge(gv, mapped)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    assignment[static_cast<std::size_t>(hv)] = gv;
    used[static_cast<std::size_t>(gv)] = true;
    const bool keep_going = embed_visit(g, h, order, depth + 1, assignment, used, visitor);
    used[static_cast<std::size_t>(gv)] = false;
    assignment[static_cast<std::size_t>(hv)] = -1;
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

void for_each_embedding(const Graph& g, const Graph& h,
                        const std::function<bool(const std::vector<int>&)>& visitor) {
  if (h.num_vertices() > g.num_vertices()) return;
  if (h.num_vertices() == 0) {
    visitor({});
    return;
  }
  auto order = pattern_order(h);
  std::vector<int> assignment(static_cast<std::size_t>(h.num_vertices()), -1);
  std::vector<bool> used(static_cast<std::size_t>(g.num_vertices()), false);
  embed_visit(g, h, order, 0, assignment, used, visitor);
}

bool contains_cycle(const Graph& g, int len) {
  CC_REQUIRE(len >= 3, "cycles have length >= 3");
  return contains_subgraph(g, cycle_graph(len));
}

int girth(const Graph& g) {
  const int n = g.num_vertices();
  int best = -1;
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::vector<int> queue;
  for (int s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(parent.begin(), parent.end(), -1);
    queue.clear();
    queue.push_back(s);
    dist[static_cast<std::size_t>(s)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      int v = queue[head];
      for (int u : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
          parent[static_cast<std::size_t>(u)] = v;
          queue.push_back(u);
        } else if (u != parent[static_cast<std::size_t>(v)]) {
          // Non-tree edge closes a cycle through the BFS root region.
          int cyc = dist[static_cast<std::size_t>(v)] + dist[static_cast<std::size_t>(u)] + 1;
          if (best < 0 || cyc < best) best = cyc;
        }
      }
    }
  }
  return best;
}

}  // namespace cclique
