#include "graph/ruzsa_szemeredi.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cclique {

namespace {

// Behrend's construction: vectors in {0..d-1}^k, mapped to integers in base
// 2d, restricted to a sphere |x|^2 = r. No three collinear points on a
// sphere => no 3-AP (base 2d prevents carries in x + y).
std::vector<std::uint64_t> behrend_shell(std::uint64_t m, int k, std::uint64_t d) {
  std::vector<std::vector<std::uint64_t>> by_norm;  // norm -> values
  std::vector<std::uint64_t> digits(static_cast<std::size_t>(k), 0);
  const std::uint64_t base = 2 * d;
  while (true) {
    // Evaluate current digit vector.
    std::uint64_t value = 0, norm = 0;
    bool overflow = false;
    std::uint64_t scale = 1;
    for (int i = 0; i < k; ++i) {
      value += digits[static_cast<std::size_t>(i)] * scale;
      if (value >= m) {
        overflow = true;
        break;
      }
      norm += digits[static_cast<std::size_t>(i)] * digits[static_cast<std::size_t>(i)];
      scale *= base;
    }
    if (!overflow) {
      if (by_norm.size() <= norm) by_norm.resize(norm + 1);
      by_norm[norm].push_back(value);
    }
    // Advance the digit odometer.
    int pos = 0;
    while (pos < k && digits[static_cast<std::size_t>(pos)] == d - 1) {
      digits[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == k) break;
    ++digits[static_cast<std::size_t>(pos)];
  }
  std::vector<std::uint64_t> best;
  for (auto& shell : by_norm) {
    if (shell.size() > best.size()) best = std::move(shell);
  }
  std::sort(best.begin(), best.end());
  return best;
}

std::vector<std::uint64_t> greedy_ap_free(std::uint64_t m) {
  std::vector<std::uint64_t> s;
  std::vector<bool> in_set(m, false);
  for (std::uint64_t x = 0; x < m; ++x) {
    bool ok = true;
    // x would close an AP (a, b, x) with b - a = x - b, i.e. a = 2b - x.
    for (std::uint64_t b : s) {
      if (2 * b >= x && 2 * b - x < m && 2 * b != 2 * x && in_set[2 * b - x] &&
          2 * b - x != b) {
        ok = false;
        break;
      }
    }
    if (ok) {
      s.push_back(x);
      in_set[x] = true;
    }
  }
  return s;
}

}  // namespace

std::vector<std::uint64_t> behrend_set(std::uint64_t m) {
  CC_REQUIRE(m >= 1, "behrend_set needs m >= 1");
  std::vector<std::uint64_t> best;
  if (m <= 4096) {
    best = greedy_ap_free(m);
  }
  // Try a spread of dimensions; k near sqrt(log m) is asymptotically best
  // but small m favors small k.
  const int max_k = std::max(1, static_cast<int>(std::sqrt(std::log(static_cast<double>(m) + 1.0)) * 2.0) + 2);
  for (int k = 1; k <= max_k; ++k) {
    // Largest d with (2d)^k <= m (so all digit vectors stay below m).
    std::uint64_t d = static_cast<std::uint64_t>(
        std::pow(static_cast<double>(m), 1.0 / k) / 2.0);
    if (d < 1) continue;
    auto shell = behrend_shell(m, k, d);
    if (shell.size() > best.size()) best = std::move(shell);
  }
  CC_CHECK(is_progression_free(best), "Behrend construction produced a 3-AP");
  return best;
}

bool is_progression_free(const std::vector<std::uint64_t>& s) {
  std::vector<std::uint64_t> sorted = s;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    for (std::size_t j = i + 1; j < sorted.size(); ++j) {
      // Is there z with sorted[i] + sorted[j] = 2z, z in the set, z distinct?
      const std::uint64_t sum = sorted[i] + sorted[j];
      if (sum % 2 != 0) continue;
      if (std::binary_search(sorted.begin(), sorted.end(), sum / 2) &&
          sum / 2 != sorted[i] && sum / 2 != sorted[j]) {
        return false;
      }
    }
  }
  return true;
}

RuzsaSzemerediGraph ruzsa_szemeredi_graph(int m) {
  CC_REQUIRE(m >= 1, "RS graph needs m >= 1");
  const auto s = behrend_set(static_cast<std::uint64_t>(m));
  RuzsaSzemerediGraph out;
  out.m = m;
  // X = [0, m), Y = [m, 3m) (offset m), Z = [3m, 6m) (offset 3m).
  const int yo = m;
  const int zo = 3 * m;
  out.graph = Graph(6 * m);
  for (int x = 0; x < m; ++x) {
    for (std::uint64_t su : s) {
      const int sv = static_cast<int>(su);
      const int y = x + sv;        // in [0, 2m)
      const int z = x + 2 * sv;    // in [0, 3m)
      out.graph.add_edge(x, yo + y);
      out.graph.add_edge(yo + y, zo + z);
      out.graph.add_edge(x, zo + z);
      int a = x, b = yo + y, c = zo + z;
      // Canonical triangle with sorted vertices (X < Y < Z offsets ensure order).
      out.triangles.push_back(Triangle{a, b, c});
    }
  }
  return out;
}

}  // namespace cclique
