#include "graph/extremal.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "graph/generators.h"
#include "util/math_util.h"

namespace cclique {

namespace {

// Canonical homogeneous coordinates for the points of PG(2, q), q prime:
// (1, a, b), (0, 1, b), (0, 0, 1) — exactly q^2 + q + 1 points.
std::vector<std::array<std::uint64_t, 3>> pg2_points(std::uint64_t q) {
  std::vector<std::array<std::uint64_t, 3>> pts;
  pts.reserve(q * q + q + 1);
  for (std::uint64_t a = 0; a < q; ++a) {
    for (std::uint64_t b = 0; b < q; ++b) pts.push_back({1, a, b});
  }
  for (std::uint64_t b = 0; b < q; ++b) pts.push_back({0, 1, b});
  pts.push_back({0, 0, 1});
  return pts;
}

std::uint64_t dot3(const std::array<std::uint64_t, 3>& x,
                   const std::array<std::uint64_t, 3>& y, std::uint64_t q) {
  return (x[0] * y[0] + x[1] * y[1] + x[2] * y[2]) % q;
}

// BFS distance from s to t, capped at `limit` (returns limit+1 if farther).
int bounded_distance(const Graph& g, int s, int t, int limit) {
  if (s == t) return 0;
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<int> queue{s};
  dist[static_cast<std::size_t>(s)] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int v = queue[head];
    if (dist[static_cast<std::size_t>(v)] >= limit) break;
    for (int u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        if (u == t) return dist[static_cast<std::size_t>(u)];
        queue.push_back(u);
      }
    }
  }
  return limit + 1;
}

}  // namespace

Graph turan_graph(int n, int r) {
  CC_REQUIRE(r >= 1, "Turán graph needs r >= 1 parts");
  Graph g(n);
  // part(v) = v mod r gives balanced parts.
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (u % r != v % r) g.add_edge(u, v);
    }
  }
  return g;
}

Graph polarity_graph(std::uint64_t q) {
  CC_REQUIRE(is_prime(q), "polarity graph needs a prime order");
  const auto pts = pg2_points(q);
  Graph g(static_cast<int>(pts.size()));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (dot3(pts[i], pts[j], q) == 0) {
        g.add_edge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return g;
}

Graph incidence_graph_pg2(std::uint64_t q) {
  CC_REQUIRE(is_prime(q), "incidence graph needs a prime order");
  const auto pts = pg2_points(q);  // lines share the same coordinates (duality)
  const int half = static_cast<int>(pts.size());
  Graph g(2 * half);
  for (int p = 0; p < half; ++p) {
    for (int l = 0; l < half; ++l) {
      if (dot3(pts[static_cast<std::size_t>(p)], pts[static_cast<std::size_t>(l)], q) == 0) {
        g.add_edge(p, half + l);
      }
    }
  }
  return g;
}

Graph high_girth_graph(int n, int min_girth_exclusive, Rng& rng) {
  CC_REQUIRE(min_girth_exclusive >= 3, "girth bound must be >= 3");
  Graph g(n);
  std::vector<std::pair<int, int>> candidates;
  candidates.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) candidates.emplace_back(u, v);
  }
  rng.shuffle(candidates);
  for (auto [u, v] : candidates) {
    // Adding {u,v} creates a cycle of length dist(u,v) + 1; keep the edge
    // only if every new cycle is strictly longer than the girth bound.
    if (bounded_distance(g, u, v, min_girth_exclusive - 1) >= min_girth_exclusive) {
      g.add_edge(u, v);
    }
  }
  return g;
}

Graph dense_cl_free_graph(int n, int l, Rng& rng) {
  CC_REQUIRE(l >= 3, "cycle length must be >= 3");
  if (l % 2 == 1) {
    // Bipartite graphs contain no odd cycle; balanced complete bipartite is
    // extremal (ex(n, C_odd) = floor(n^2/4) for n large enough).
    return complete_bipartite(n / 2, n - n / 2);
  }
  if (l == 4) {
    // Largest polarity graph fitting in n vertices, padded with isolated
    // vertices; below the smallest plane (q = 2, 7 points) fall back to the
    // greedy construction.
    std::uint64_t q = 0;
    for (std::uint64_t cand = 2; cand * cand + cand + 1 <= static_cast<std::uint64_t>(n); ++cand) {
      if (is_prime(cand)) q = cand;
    }
    if (q < 2) return high_girth_graph(n, 4, rng);
    Graph er = polarity_graph(q);
    Graph g(n);
    for (const Edge& e : er.edges()) g.add_edge(e.u, e.v);
    return g;
  }
  return high_girth_graph(n, l, rng);
}

Graph bipartite_c4_free_graph(int n) {
  std::uint64_t q = 0;
  for (std::uint64_t cand = 2;
       2 * (cand * cand + cand + 1) <= static_cast<std::uint64_t>(n); ++cand) {
    if (is_prime(cand)) q = cand;
  }
  if (q >= 2) {
    Graph inc = incidence_graph_pg2(q);
    Graph g(n);
    for (const Edge& e : inc.edges()) g.add_edge(e.u, e.v);
    return g;
  }
  // Below the smallest incidence graph (14 vertices): greedy bipartite
  // girth-6 construction between halves [0, n/2) and [n/2, n). Adding an
  // edge at cross-distance >= 4 only creates cycles of length >= 6.
  // Deterministic: derived RNG seeded by n.
  Rng rng(0xB1FA57EEULL + static_cast<std::uint64_t>(n));
  Graph g(n);
  const int half = n / 2;
  std::vector<std::pair<int, int>> candidates;
  for (int u = 0; u < half; ++u) {
    for (int v = half; v < n; ++v) candidates.emplace_back(u, v);
  }
  rng.shuffle(candidates);
  for (auto [u, v] : candidates) {
    if (bounded_distance(g, u, v, 3) >= 4) g.add_edge(u, v);
  }
  return g;
}

}  // namespace cclique
